// Command swapsim runs one atomic cross-chain swap scenario under the
// deterministic simulator and prints the event trace and per-party
// outcomes.
//
// Usage:
//
//	swapsim [flags]
//
//	-scenario  threeway | twoleader | cycle:N | clique:N | flower:KxL |
//	           bidir:N | random:N (default "threeway")
//	-kind      general | single-leader | uniform-timeout (default "general")
//	-adversary none | halt:V:TICK | silent:V | withhold:V | lastmoment:V |
//	           noclaim:V | eager:V (V = vertex index)
//	-seed      scheduler seed
//	-delta     Δ in ticks
//	-broadcast enable the Section 4.5 broadcast optimization
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	atomicswap "github.com/go-atomicswap/atomicswap"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func main() {
	var (
		scenario   = flag.String("scenario", "threeway", "swap digraph scenario")
		kindName   = flag.String("kind", "general", "protocol variant")
		adv        = flag.String("adversary", "none", "deviation to inject")
		seed       = flag.Int64("seed", 1, "scheduler and key seed")
		delta      = flag.Int64("delta", 10, "Δ in ticks")
		broadcast  = flag.Bool("broadcast", false, "enable the broadcast optimization")
		doAudit    = flag.Bool("audit", false, "run ledger fault attribution after the swap")
		concurrent = flag.Bool("concurrent", false, "run with goroutine parties on wall-clock Δ instead of the simulator")
	)
	flag.Parse()
	if err := run(*scenario, *kindName, *adv, *seed, *delta, *broadcast, *doAudit, *concurrent); err != nil {
		fmt.Fprintln(os.Stderr, "swapsim:", err)
		os.Exit(1)
	}
}

func run(scenario, kindName, adv string, seed, delta int64, broadcast, doAudit, concurrent bool) error {
	d, err := buildScenario(scenario)
	if err != nil {
		return err
	}
	kind, err := parseKind(kindName)
	if err != nil {
		return err
	}
	setup, err := atomicswap.NewSetup(d, atomicswap.Config{
		Kind:      kind,
		Delta:     vtime.Duration(delta),
		Start:     vtime.Ticks(10 * delta),
		Rand:      rand.New(rand.NewSource(seed)),
		Broadcast: broadcast,
	})
	if err != nil {
		return err
	}
	if concurrent {
		return runConcurrent(scenario, setup, adv)
	}
	r := atomicswap.NewRunner(setup, atomicswap.Options{Seed: seed})
	if err := applyAdversary(r, setup, adv); err != nil {
		return err
	}
	res, err := r.Run()
	if err != nil {
		return err
	}

	fmt.Printf("scenario %s  kind=%s  Δ=%d  start=%d  leaders=%v  diam≤%d\n\n",
		scenario, setup.Spec.Kind, setup.Spec.Delta, setup.Spec.Start,
		setup.Spec.Leaders, setup.Spec.DiamBound)
	fmt.Print(res.Log.Render())
	fmt.Println()
	for _, v := range setup.Spec.D.Vertices() {
		fmt.Printf("%-10s %v\n", setup.Spec.PartyOf(v), res.Report.Of(v))
	}
	fmt.Printf("\nall Deal: %v   storage: %d bytes   %s\n",
		res.Report.AllDeal(), res.StorageBytes, res.Counters.String())
	if doAudit {
		faults := atomicswap.Audit(setup.Spec, res)
		if len(faults) == 0 {
			fmt.Println("\naudit: no party failed an enabled transition")
		} else {
			fmt.Println("\naudit — parties at fault (Section 5 bond-slashing candidates):")
			for _, f := range faults {
				fmt.Printf("  %s\n", f)
			}
		}
	}
	return nil
}

// runConcurrent executes the scenario on the goroutine runtime (only
// conforming parties; adversaries are a simulator feature).
func runConcurrent(scenario string, setup *atomicswap.Setup, adv string) error {
	if adv != "none" && adv != "" {
		return fmt.Errorf("-concurrent supports conforming runs only")
	}
	res, err := atomicswap.RunConcurrent(setup, nil, atomicswap.ConcConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s on the concurrent runtime (1 goroutine per party, Δ on the wall clock)\n\n", scenario)
	fmt.Print(res.Log.Render())
	fmt.Println()
	for _, v := range setup.Spec.D.Vertices() {
		fmt.Printf("%-10s %v\n", setup.Spec.PartyOf(v), res.Report.Of(v))
	}
	fmt.Printf("\nall Deal: %v\n", res.Report.AllDeal())
	return nil
}

func buildScenario(s string) (*atomicswap.Digraph, error) {
	name, arg, _ := strings.Cut(s, ":")
	atoi := func(def int) (int, error) {
		if arg == "" {
			return def, nil
		}
		return strconv.Atoi(arg)
	}
	switch name {
	case "threeway":
		return atomicswap.ThreeWay(), nil
	case "twoleader":
		return atomicswap.TwoLeaderTriangle(), nil
	case "cycle":
		n, err := atoi(5)
		if err != nil {
			return nil, err
		}
		return atomicswap.Cycle(n), nil
	case "bidir":
		n, err := atoi(5)
		if err != nil {
			return nil, err
		}
		return atomicswap.BidirCycle(n), nil
	case "clique":
		n, err := atoi(4)
		if err != nil {
			return nil, err
		}
		return atomicswap.Clique(n), nil
	case "flower":
		k, petal := 3, 2
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%dx%d", &k, &petal); err != nil {
				return nil, fmt.Errorf("flower wants K×L, got %q", arg)
			}
		}
		return atomicswap.Flower(k, petal), nil
	case "random":
		n, err := atoi(8)
		if err != nil {
			return nil, err
		}
		return atomicswap.RandomStronglyConnected(n, 0.3, 42), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", s)
	}
}

func parseKind(s string) (atomicswap.Kind, error) {
	switch s {
	case "general":
		return atomicswap.KindGeneral, nil
	case "single-leader":
		return atomicswap.KindSingleLeader, nil
	case "uniform-timeout":
		return atomicswap.KindUniformTimeout, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", s)
	}
}

func applyAdversary(r *atomicswap.Runner, setup *atomicswap.Setup, spec string) error {
	if spec == "none" || spec == "" {
		return nil
	}
	parts := strings.Split(spec, ":")
	name := parts[0]
	vertex := 0
	if len(parts) > 1 {
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("adversary vertex: %w", err)
		}
		vertex = v
	}
	if vertex < 0 || vertex >= setup.Spec.D.NumVertices() {
		return fmt.Errorf("adversary vertex %d out of range", vertex)
	}
	v := atomicswap.Vertex(vertex)
	conforming := func() atomicswap.Behavior {
		if setup.Spec.Kind == atomicswap.KindGeneral {
			return atomicswap.NewConforming()
		}
		return atomicswap.NewConformingHTLC()
	}
	switch name {
	case "halt":
		tick := int64(setup.Spec.Start)
		if len(parts) > 2 {
			t, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return fmt.Errorf("halt tick: %w", err)
			}
			tick = t
		}
		r.SetBehavior(v, atomicswap.HaltAt(conforming(), vtime.Ticks(tick)))
	case "silent":
		idx, ok := setup.Spec.LeaderIndex(v)
		if !ok {
			return fmt.Errorf("vertex %d is not a leader", vertex)
		}
		r.SetBehavior(v, atomicswap.SilentLeader(idx))
	case "withhold":
		r.SetBehavior(v, atomicswap.WithholdPublications())
	case "lastmoment":
		if setup.Spec.Kind == atomicswap.KindGeneral {
			r.SetBehavior(v, atomicswap.LastMomentUnlocker())
		} else {
			r.SetBehavior(v, atomicswap.LastMomentRedeemer())
		}
	case "noclaim":
		r.SetBehavior(v, atomicswap.NoClaim())
	case "eager":
		r.SetBehavior(v, atomicswap.EagerPublisher())
	default:
		return fmt.Errorf("unknown adversary %q", name)
	}
	return nil
}
