// Command swapd is the clearing-engine load driver: it spins up an
// engine, floods it with generated barter-ring offers (optionally with
// adversarial swaps and deliberate double-spend attempts), drains, and
// reports service-level throughput.
//
// Usage:
//
//	swapd [-offers 3000] [-workers 64] [-ring-min 2] [-ring-max 5]
//	      [-adversary 0.1] [-conflicts 0.05] [-tick 2ms] [-delta 30]
//	      [-vtime] [-adaptive-delta] [-min-delta 4] [-max-delta 120]
//	      [-clear-ahead 64] [-seed 1] [-json]
//	swapd -arrival-rate 2000 [-profile poisson] [-party-pool 64]
//	      [-max-pending 4096] ...
//	swapd -shards 4 [-cross-ratio 0.1] ...
//	swapd -data-dir /tmp/swapd [-snapshot-every 4096] ...
//	swapd -confirm-depth 4 [-reorg-rate 0.15] ...
//
// With -shards N clearing is partitioned across N asset-sharded engines
// (each with its own order book, reservations, and clearing loop) plus a
// two-level coordinator that clears rings spanning shards; with
// -arrival-rate the generated rings are placed into per-shard chain
// pools, and -cross-ratio makes that fraction of rings span two shards.
// -shards composes with -data-dir: the whole deployment logs into one
// WAL and a restart may recover onto a different shard count.
//
// With -data-dir the engine logs every event to a durable write-ahead
// log (with periodic snapshot truncation) in that directory. On a
// restart against the same directory swapd recovers instead of starting
// fresh: the log is replayed, each swap that was in flight at the kill
// is resumed or refunded by its logged phase and remaining timelock
// budget, and the run continues with recovery counters in the report.
// Kill-and-restart demo: start a long run with -data-dir, `kill -9` it
// mid-flight, re-run the same command, and watch the recovery line.
//
// With -confirm-depth every asset chain runs under a confirmation-depth
// commitment model: a record is final only that many ticks after it
// lands, the timelock ladder stretches by the per-chain depth, and the
// report carries per-chain Δ. Adding -reorg-rate reverts each record
// with that seeded probability before it finalizes (transaction-level
// reorgs); reverted swaps re-settle or refund, and the report counts
// the reverted records.
//
// By default the whole book is submitted up front (closed loop). With
// -arrival-rate offers instead stream in open-loop from the -profile
// arrival process (constant, poisson, burst[:n], ramp[:from:to]) at the
// given average offers/sec on the engine's scheduler; the report then
// carries submit-to-settle latency percentiles and, under
// -adaptive-delta, the Δ trajectory. With -json the report is a single
// JSON object (the BENCH trajectory format); otherwise a human-readable
// summary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/durable"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/engine/shard"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

var chainNames = []string{"btc", "eth", "sol", "ada", "dot", "xmr", "ltc", "atom"}

// clearingEngine is the engine surface swapd drives: the single engine
// and the asset-sharded engine both satisfy it.
type clearingEngine interface {
	loadgen.DriveTarget
	Start() error
}

// runOpenLoop streams an open-loop load into the started engine and
// reports, mirroring the closed-loop tail of main.
func runOpenLoop(eng clearingEngine, rate float64, profile string,
	offers, ringMin, ringMax, partyPool, maxPending, shards int,
	crossRatio float64, seed int64, timeout time.Duration, jsonOut bool,
	fairShed bool, floodFactor, floodParties int) {
	proc, err := loadgen.ParseProfile(profile)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	rep, err := loadgen.Drive(ctx, eng, loadgen.Config{
		Offers:       offers,
		RingMin:      ringMin,
		RingMax:      ringMax,
		Rate:         rate,
		Process:      proc,
		PartyPool:    partyPool,
		MaxPending:   maxPending,
		Seed:         seed,
		Shards:       shards,
		CrossRatio:   crossRatio,
		FairShed:     fairShed,
		FloodFactor:  floodFactor,
		FloodParties: floodParties,
	})
	if err != nil {
		log.Fatalf("open-loop run: %v", err)
	}
	if jsonOut {
		b, err := json.Marshal(rep)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("open-loop load: %s arrivals at %.0f offers/sec over ticks [%d, %d]\n",
			rep.Profile, rep.OfferedRate, rep.Load.FirstTick, rep.Load.LastTick)
		fmt.Printf("intake: %d offered, %d submitted, %d shed, %d refused, conservation verified\n\n",
			rep.Load.Offered, rep.Load.Submitted, rep.Load.Shed, rep.Load.Refused)
		fmt.Println(rep.Throughput)
	}
}

// durableEngine builds the -data-dir engine: recover from the
// directory when it holds state (a restart), otherwise open a fresh
// store and log into it. Either way the engine keeps appending, so the
// next kill-and-restart recovers again.
func durableEngine(cfg engine.Config, dir string, snapEvery int) (*engine.Engine, error) {
	eng, rec, err := durable.Recover(cfg, durable.RecoverOptions{
		Dir:           dir,
		Attach:        true,
		SnapshotEvery: snapEvery,
	})
	if err == nil {
		fmt.Fprintf(os.Stderr,
			"recovered %s: %d events replayed, %d orders resumed, %d refunded, resuming at tick %d (%.1fms)\n",
			dir, rec.Events, rec.Resumed, rec.Refunded, rec.Tick, rec.WallMs)
		return eng, nil
	}
	if !errors.Is(err, durable.ErrNoState) {
		return nil, err
	}
	store, err := durable.Open(durable.Options{Dir: dir, SnapshotEvery: snapEvery})
	if err != nil {
		return nil, err
	}
	cfg.Store = store
	return engine.New(cfg), nil
}

// durableShardedEngine is durableEngine for -shards: the whole sharded
// deployment logs into one WAL, and recovery re-partitions the folded
// state onto the (possibly different) shard count of this run.
func durableShardedEngine(cfg shard.Config, dir string, snapEvery int) (*shard.ShardedEngine, error) {
	eng, rec, err := shard.Recover(cfg, durable.RecoverOptions{
		Dir:           dir,
		Attach:        true,
		SnapshotEvery: snapEvery,
	})
	if err == nil {
		fmt.Fprintf(os.Stderr,
			"recovered %s onto %d shards: %d events replayed, %d orders resumed, %d refunded (%.1fms)\n",
			dir, cfg.Shards, rec.Events, rec.Resumed, rec.Refunded, rec.WallMs)
		return eng, nil
	}
	if !errors.Is(err, durable.ErrNoState) {
		return nil, err
	}
	store, err := durable.Open(durable.Options{Dir: dir, SnapshotEvery: snapEvery})
	if err != nil {
		return nil, err
	}
	cfg.Engine.Store = store
	return shard.New(cfg), nil
}

func main() {
	var (
		offers    = flag.Int("offers", 3000, "approximate number of offers to submit")
		workers   = flag.Int("workers", 64, "executor pool size (concurrent swaps)")
		ringMin   = flag.Int("ring-min", 2, "smallest barter-ring size")
		ringMax   = flag.Int("ring-max", 5, "largest barter-ring size")
		adversary = flag.Float64("adversary", 0, "fraction of swaps given a silent leader")
		conflicts = flag.Float64("conflicts", 0, "fraction of rings that re-spend an earlier asset")
		tick      = flag.Duration("tick", 2*time.Millisecond, "wall duration of one virtual tick")
		delta     = flag.Int("delta", 30, "per-swap delta in ticks")
		vtimeMode = flag.Bool("vtime", false, "run on the virtual-time scheduler (ticks advance as callbacks drain; CPU-bound)")
		adaptive  = flag.Bool("adaptive-delta", false, "adapt delta each clearing round from observed delivery latency")
		minDelta  = flag.Int("min-delta", 0, "adaptive delta floor in ticks (0 = engine default)")
		maxDelta  = flag.Int("max-delta", 0, "adaptive delta cap in ticks (0 = engine default)")
		clrAhead  = flag.Int("clear-ahead", 0, "max swaps cleared ahead of execution (0 = unlimited; adaptive-delta defaults it to workers)")
		seed      = flag.Int64("seed", 1, "load-generation seed")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		timeout   = flag.Duration("timeout", 10*time.Minute, "drain deadline")

		arrivalRate = flag.Float64("arrival-rate", 0, "open-loop intake: average offered load in offers/sec (0 = closed-loop, book pre-loaded)")
		profile     = flag.String("profile", "poisson", "arrival process for -arrival-rate: constant, poisson, burst[:n], ramp[:from:to]")
		partyPool   = flag.Int("party-pool", 0, "open-loop: reuse this many ring-group identities (0 = fresh parties per ring)")
		maxPending  = flag.Int("max-pending", 0, "open-loop shed threshold on the pending book (0 = default, negative = never shed)")
		fairShed    = flag.Bool("fair-shed", false, "open-loop: per-party fair shedding — at the -max-pending threshold only parties at or past their share of the book shed (a flooding coalition starves itself, not its victims)")
		floodFactor = flag.Int("flood-factor", 0, "open-loop: ride this many coalition flood rings (from a small reused identity pool) on every organic ring")
		floodParty  = flag.Int("flood-parties", 0, "with -flood-factor: flooder identity-pool size in ring groups (0 = 2)")

		shards     = flag.Int("shards", 0, "partition clearing across N asset-sharded engines plus a cross-shard coordinator (0 = single engine)")
		crossRatio = flag.Float64("cross-ratio", 0, "with -shards and -arrival-rate: fraction of generated rings that span two shards (cross-shard escalation load)")

		dataDir   = flag.String("data-dir", "", "durable state directory: log engine events to a WAL and recover from it on restart")
		snapEvery = flag.Int("snapshot-every", 4096, "with -data-dir, snapshot and truncate the WAL every N events")

		confirmDepth = flag.Int("confirm-depth", 0, "chain realism: a record is final only this many ticks after it lands (0 = instant finality); the timelock ladder stretches to match")
		reorgRate    = flag.Float64("reorg-rate", 0, "with -confirm-depth >= 2: seeded per-record probability that an applied record reverts before finalizing")
	)
	flag.Parse()
	if *ringMin < 2 || *ringMax < *ringMin {
		log.Fatal("need 2 <= ring-min <= ring-max")
	}
	if *arrivalRate > 0 && *conflicts > 0 {
		log.Fatal("-conflicts is a closed-loop feature; drop it or -arrival-rate")
	}
	if (*fairShed || *floodFactor > 0 || *floodParty > 0) && *arrivalRate <= 0 {
		log.Fatal("-fair-shed, -flood-factor, and -flood-parties are open-loop features; add -arrival-rate")
	}
	if *reorgRate < 0 || *reorgRate > 1 {
		log.Fatal("-reorg-rate must be in [0, 1]")
	}
	if *reorgRate > 0 && *confirmDepth < 2 {
		log.Fatal("-reorg-rate needs -confirm-depth >= 2 (a revert must land before finality)")
	}

	cfg := engine.Config{
		Workers:       *workers,
		MaxBatch:      4096,
		Tick:          *tick,
		Delta:         vtime.Duration(*delta),
		AdversaryRate: *adversary,
		Seed:          *seed,
		Virtual:       *vtimeMode,
		AdaptiveDelta: *adaptive,
		MinDelta:      vtime.Duration(*minDelta),
		MaxDelta:      vtime.Duration(*maxDelta),
		MaxClearAhead: *clrAhead,
		Commitment: engine.CommitmentConfig{
			ConfirmDepth: vtime.Duration(*confirmDepth),
			ReorgRate:    *reorgRate,
			Seed:         *seed,
		},
	}
	if *crossRatio > 0 && (*shards <= 1 || *arrivalRate <= 0) {
		log.Fatal("-cross-ratio needs -shards > 1 and -arrival-rate")
	}
	var eng clearingEngine
	var err error
	switch {
	case *shards > 0 && *dataDir != "":
		eng, err = durableShardedEngine(shard.Config{Shards: *shards, Engine: cfg}, *dataDir, *snapEvery)
	case *shards > 0:
		eng = shard.New(shard.Config{Shards: *shards, Engine: cfg})
	case *dataDir != "":
		eng, err = durableEngine(cfg, *dataDir, *snapEvery)
	default:
		eng = engine.New(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}

	if *arrivalRate > 0 {
		runOpenLoop(eng, *arrivalRate, *profile, *offers, *ringMin, *ringMax,
			*partyPool, *maxPending, *shards, *crossRatio, *seed, *timeout, *jsonOut,
			*fairShed, *floodFactor, *floodParty)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	submitted, rejected := 0, 0
	var lastRingAsset core.ProposedTransfer
	var lastRingParty chain.PartyID
	for ring := 0; submitted < *offers; ring++ {
		size := *ringMin + rng.Intn(*ringMax-*ringMin+1)
		members := make([]chain.PartyID, size)
		for i := range members {
			members[i] = chain.PartyID(fmt.Sprintf("r%d-p%d", ring, i))
		}
		respend := *conflicts > 0 && rng.Float64() < *conflicts && lastRingParty != ""
		for i, p := range members {
			tr := core.ProposedTransfer{
				To:     members[(i+1)%size],
				Chain:  chainNames[rng.Intn(len(chainNames))],
				Asset:  chain.AssetID(fmt.Sprintf("asset-r%d-%d", ring, i)),
				Amount: uint64(1 + rng.Intn(1000)),
			}
			party := p
			if respend && i == 0 {
				// Deliberate double-spend attempt: the earlier ring's party
				// offers the same asset again into this ring. The engine
				// must serialize or reject it, never double-commit.
				party = lastRingParty
				tr.Chain, tr.Asset, tr.Amount = lastRingAsset.Chain, lastRingAsset.Asset, lastRingAsset.Amount
			}
			if _, err := eng.Submit(core.Offer{Party: party, Give: []core.ProposedTransfer{tr}}); err != nil {
				rejected++
				continue
			}
			submitted++
			if i == 0 && !respend {
				lastRingParty, lastRingAsset = party, tr
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := eng.Stop(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	// A recovered engine is held to ledger integrity, not strict
	// conservation: a hard kill mid-settlement can orphan an escrowed
	// leg by design (see internal/durable).
	audit, auditName := eng.VerifyConservation, "conservation"
	if eng.Recovered() {
		audit, auditName = eng.VerifyLedgerIntegrity, "ledger integrity"
	}
	if err := audit(); err != nil {
		log.Fatalf("CONSERVATION VIOLATED: %v", err)
	}

	rep := eng.Report()
	if *jsonOut {
		fmt.Println(rep.JSON())
		return
	}
	fmt.Printf("load: %d offers submitted (%d refused at intake), %s verified\n\n",
		submitted, rejected, auditName)
	fmt.Println(rep)
	if rep.SwapsFailed > 0 {
		os.Exit(1)
	}
}
