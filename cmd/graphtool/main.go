// Command graphtool analyzes a swap digraph: strong connectivity,
// feedback vertex sets (the protocol's leader candidates), diameter, and
// Graphviz DOT output.
//
// Usage:
//
//	graphtool [-dot] "<n>: <head>-<tail>, <head>-<tail>, ..."
//
// For example, the paper's three-way swap:
//
//	graphtool "3: 0-1, 1-2, 2-0"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	atomicswap "github.com/go-atomicswap/atomicswap"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of analysis")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphtool [-dot] \"<n>: 0-1, 1-2, ...\"")
		os.Exit(2)
	}
	d, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", err)
		os.Exit(1)
	}
	if *dot {
		leaders, _ := d.MinFVS()
		highlight := make(map[digraph.Vertex]bool, len(leaders))
		for _, l := range leaders {
			highlight[l] = true
		}
		fmt.Print(d.DOT("swap", highlight))
		return
	}
	analyze(d)
}

func parse(s string) (*atomicswap.Digraph, error) {
	nStr, arcsStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("missing vertex count prefix %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(nStr))
	if err != nil {
		return nil, fmt.Errorf("vertex count: %w", err)
	}
	d := atomicswap.NewDigraph()
	for i := 0; i < n; i++ {
		d.AddVertex("")
	}
	for _, part := range strings.Split(arcsStr, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		headStr, tailStr, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("arc %q wants head-tail", part)
		}
		head, err := strconv.Atoi(strings.TrimSpace(headStr))
		if err != nil {
			return nil, fmt.Errorf("arc %q head: %w", part, err)
		}
		tail, err := strconv.Atoi(strings.TrimSpace(tailStr))
		if err != nil {
			return nil, fmt.Errorf("arc %q tail: %w", part, err)
		}
		if _, err := d.AddArc(atomicswap.Vertex(head), atomicswap.Vertex(tail)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func analyze(d *atomicswap.Digraph) {
	fmt.Printf("vertexes: %d   arcs: %d\n", d.NumVertices(), d.NumArcs())
	fmt.Printf("strongly connected: %v (required by Theorem 3.5)\n", d.StronglyConnected())
	diam, exact := d.Diameter()
	kind := "exact"
	if !exact {
		kind = "upper bound"
	}
	fmt.Printf("diameter: %d (%s)\n", diam, kind)
	fvs, optimal := d.MinFVS()
	fvsKind := "minimum"
	if !optimal {
		fvsKind = "greedy"
	}
	fmt.Printf("feedback vertex set (%s): %v — these would be the swap leaders\n", fvsKind, fvs)
	if len(fvs) == 1 {
		fmt.Println("single leader: the Section 4.6 timeout-only protocol applies")
	} else {
		fmt.Println("multiple leaders: the general hashkey protocol is required")
	}
	comps := d.SCCs()
	if len(comps) > 1 {
		fmt.Printf("strongly connected components (%d):\n", len(comps))
		for i, c := range comps {
			fmt.Printf("  %d: %v\n", i, c)
		}
	}
}
