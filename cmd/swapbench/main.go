// Command swapbench runs the full experiment suite — one table per figure
// or quantitative claim of the paper (see DESIGN.md §4) — and prints the
// tables EXPERIMENTS.md records.
//
// Usage:
//
//	swapbench [-only E5[,E9,...]]
//	swapbench -engine-json
//
// With -engine-json it instead sweeps the clearing engine at 1, 8, and 64
// concurrent swaps and emits one JSON object per line (the BENCH
// trajectory format), skipping the experiment tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/expt"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// engineSweep pushes a fixed ring load through the engine at increasing
// concurrency and prints {"concurrency":N,...} JSON lines.
func engineSweep() error {
	for _, workers := range []int{1, 8, 64} {
		rep, err := engine.RunLoad(engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         vtime.Duration(20),
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          int64(workers),
		}, 2*workers, 3)
		if err != nil {
			return fmt.Errorf("engine sweep at %d: %w", workers, err)
		}
		fmt.Printf("{\"bench\":\"engine_throughput\",\"concurrency\":%d,\"report\":%s}\n",
			workers, rep.JSON())
	}
	return nil
}

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	engineJSON := flag.Bool("engine-json", false, "emit engine throughput sweep as JSON and exit")
	flag.Parse()

	if *engineJSON {
		if err := engineSweep(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := 0
	for _, e := range expt.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
