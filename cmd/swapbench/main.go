// Command swapbench runs the full experiment suite — one table per figure
// or quantitative claim of the paper (see DESIGN.md §4) — and prints the
// tables EXPERIMENTS.md records.
//
// Usage:
//
//	swapbench [-only E5[,E9,...]]
//	swapbench -engine-json
//	swapbench -bench-json
//
// With -engine-json it instead sweeps the clearing engine at 1, 8, and 64
// concurrent swaps and emits one JSON object per line (the BENCH
// trajectory format), skipping the experiment tables. With -bench-json it
// emits the full trajectory point: the engine sweep plus the hot-path
// micro-benchmarks (hashkey verification cached/uncached, keyring vs
// fresh-keygen setup) — the format committed as BENCH_NN.json files.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/expt"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// engineSweep pushes a fixed ring load through the engine at increasing
// concurrency and prints {"concurrency":N,...} JSON lines.
func engineSweep() error {
	for _, workers := range []int{1, 8, 64} {
		rep, err := engine.RunLoad(engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         vtime.Duration(20),
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          int64(workers),
		}, 2*workers, 3)
		if err != nil {
			return fmt.Errorf("engine sweep at %d: %w", workers, err)
		}
		fmt.Printf("{\"bench\":\"engine_throughput\",\"concurrency\":%d,\"report\":%s}\n",
			workers, rep.JSON())
	}
	return nil
}

// timeOp reports the mean ns/op of fn over enough iterations to fill
// roughly 200ms, with a floor of 10 iterations.
func timeOp(fn func()) float64 {
	fn() // warm up
	iters := 10
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	for elapsed := time.Since(start); elapsed < 200*time.Millisecond; elapsed = time.Since(start) {
		more := iters
		for i := 0; i < more; i++ {
			fn()
		}
		iters += more
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// hashkeyMicro measures verification at path length hops, cached and not,
// over the same fixture BenchmarkHashkey uses.
func hashkeyMicro(hops int) error {
	fx, err := hashkey.NewFixture(hops, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	cache := hashkey.NewVerifyCache(0)
	cached := timeOp(func() {
		if err := fx.Key.VerifyExtended(fx.Lock, fx.D, 0, fx.Dir, cache); err != nil {
			panic(err)
		}
	})
	uncached := timeOp(func() {
		if err := fx.Key.Verify(fx.Lock, fx.D, 0, fx.Dir); err != nil {
			panic(err)
		}
	})
	fmt.Printf("{\"bench\":\"hashkey_verify\",\"path_len\":%d,\"cached_ns_op\":%.0f,\"uncached_ns_op\":%.0f,\"speedup\":%.1f}\n",
		hops, cached, uncached, uncached/cached)
	return nil
}

// keyringMicro measures three-party setup cost with fresh per-swap keygen
// vs a persistent keyring, mirroring BenchmarkKeyring.
func keyringMicro() {
	d := graphgen.ThreeWay()
	seed := int64(0)
	fresh := timeOp(func() {
		seed++
		if _, err := core.NewSetup(d, core.Config{Rand: rand.New(rand.NewSource(seed))}); err != nil {
			panic(err)
		}
	})
	k := core.NewKeyring(rand.New(rand.NewSource(7)))
	cache := hashkey.NewVerifyCache(0)
	keyring := timeOp(func() {
		seed++
		cfg := core.Config{Rand: rand.New(rand.NewSource(seed)), Keyring: k, Cache: cache}
		if _, err := core.NewSetup(d, cfg); err != nil {
			panic(err)
		}
	})
	fmt.Printf("{\"bench\":\"keyring_setup\",\"fresh_ns_op\":%.0f,\"keyring_ns_op\":%.0f,\"speedup\":%.1f}\n",
		fresh, keyring, fresh/keyring)
}

// benchJSON emits the full trajectory point: micro-benchmarks plus the
// engine sweep, one JSON object per line.
func benchJSON() error {
	for _, hops := range []int{0, 4, 12} {
		if err := hashkeyMicro(hops); err != nil {
			return err
		}
	}
	keyringMicro()
	return engineSweep()
}

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	engineJSON := flag.Bool("engine-json", false, "emit engine throughput sweep as JSON and exit")
	fullBenchJSON := flag.Bool("bench-json", false, "emit micro-benchmarks plus engine sweep as JSON and exit")
	flag.Parse()

	if *engineJSON || *fullBenchJSON {
		var err error
		if *fullBenchJSON {
			err = benchJSON()
		} else {
			err = engineSweep()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := 0
	for _, e := range expt.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
