// Command swapbench runs the full experiment suite — one table per figure
// or quantitative claim of the paper (see DESIGN.md §4) — and prints the
// tables EXPERIMENTS.md records.
//
// Usage:
//
//	swapbench [-only E5[,E9,...]]
//	swapbench -engine-json [-vtime] [-adaptive-delta]
//	swapbench -bench-json
//
// With -engine-json it instead sweeps the clearing engine at 1, 8, and 64
// concurrent swaps and emits one JSON object per line (the BENCH
// trajectory format), skipping the experiment tables. -vtime runs the
// sweep on the virtual-time scheduler (CPU-bound, fast, deterministic
// timing); -adaptive-delta enables the observed-latency Δ controller.
// With -bench-json it emits the full trajectory point: the engine sweep
// in all three time modes plus the hot-path micro-benchmarks (hashkey
// verification cached/uncached, keyring vs fresh-keygen setup) — the
// format committed as BENCH_NN.json files.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/expt"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// engineSweep pushes a fixed ring load through the engine at increasing
// concurrency and prints {"concurrency":N,...} JSON lines. Virtual mode
// reuses a worker-sized party pool (4 waves of repeat customers), the
// same shape BenchmarkEngineThroughput/vtime-swaps-N measures.
func engineSweep(virtual, adaptive bool) error {
	bench := "engine_throughput"
	switch {
	case virtual && adaptive:
		bench = "engine_throughput_vtime_adaptive"
	case virtual:
		bench = "engine_throughput_vtime"
	case adaptive:
		bench = "engine_throughput_adaptive"
	}
	for _, workers := range []int{1, 8, 64} {
		cfg := engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         vtime.Duration(20),
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          int64(workers),
			Virtual:       virtual,
			AdaptiveDelta: adaptive,
		}
		rings, ringSize := 2*workers, 3
		var opts []engine.LoadOption
		if virtual || adaptive {
			// Repeat customers in waves: the shape virtual mode is
			// benchmarked in, and the shape adaptive Δ needs — later
			// waves clear at the Δ the first wave's observations tuned.
			rings = 4 * workers
			opts = append(opts, engine.WithPartyPool(workers))
		}
		rep, err := engine.RunLoad(cfg, rings, ringSize, opts...)
		if err != nil {
			return fmt.Errorf("engine sweep at %d: %w", workers, err)
		}
		fmt.Printf("{\"bench\":%q,\"concurrency\":%d,\"report\":%s}\n",
			bench, workers, rep.JSON())
	}
	return nil
}

// adaptivePair runs the adaptive-Δ comparison: the same wide-Δ waved load
// with the controller off and on, reporting both so the trajectory can
// carry the speedup.
func adaptivePair() error {
	for _, adaptive := range []bool{false, true} {
		const workers = 8
		cfg := engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         100,
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          7,
			MaxClearAhead: workers,
			AdaptiveDelta: adaptive,
			MinDelta:      8,
		}
		rep, err := engine.RunLoad(cfg, 3*workers, 3, engine.WithPartyPool(workers))
		if err != nil {
			return fmt.Errorf("adaptive pair (adaptive=%v): %w", adaptive, err)
		}
		name := "engine_widefixed"
		if adaptive {
			name = "engine_wideadaptive"
		}
		fmt.Printf("{\"bench\":%q,\"concurrency\":%d,\"report\":%s}\n", name, workers, rep.JSON())
	}
	return nil
}

// timeOp reports the mean ns/op of fn over enough iterations to fill
// roughly 200ms, with a floor of 10 iterations.
func timeOp(fn func()) float64 {
	fn() // warm up
	iters := 10
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	for elapsed := time.Since(start); elapsed < 200*time.Millisecond; elapsed = time.Since(start) {
		more := iters
		for i := 0; i < more; i++ {
			fn()
		}
		iters += more
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// hashkeyMicro measures verification at path length hops, cached and not,
// over the same fixture BenchmarkHashkey uses.
func hashkeyMicro(hops int) error {
	fx, err := hashkey.NewFixture(hops, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	cache := hashkey.NewVerifyCache(0)
	cached := timeOp(func() {
		if err := fx.Key.VerifyExtended(fx.Lock, fx.D, 0, fx.Dir, cache); err != nil {
			panic(err)
		}
	})
	uncached := timeOp(func() {
		if err := fx.Key.Verify(fx.Lock, fx.D, 0, fx.Dir); err != nil {
			panic(err)
		}
	})
	fmt.Printf("{\"bench\":\"hashkey_verify\",\"path_len\":%d,\"cached_ns_op\":%.0f,\"uncached_ns_op\":%.0f,\"speedup\":%.1f}\n",
		hops, cached, uncached, uncached/cached)
	return nil
}

// keyringMicro measures three-party setup cost with fresh per-swap keygen
// vs a persistent keyring, mirroring BenchmarkKeyring.
func keyringMicro() {
	d := graphgen.ThreeWay()
	seed := int64(0)
	fresh := timeOp(func() {
		seed++
		if _, err := core.NewSetup(d, core.Config{Rand: rand.New(rand.NewSource(seed))}); err != nil {
			panic(err)
		}
	})
	k := core.NewKeyring(rand.New(rand.NewSource(7)))
	cache := hashkey.NewVerifyCache(0)
	keyring := timeOp(func() {
		seed++
		cfg := core.Config{Rand: rand.New(rand.NewSource(seed)), Keyring: k, Cache: cache}
		if _, err := core.NewSetup(d, cfg); err != nil {
			panic(err)
		}
	})
	fmt.Printf("{\"bench\":\"keyring_setup\",\"fresh_ns_op\":%.0f,\"keyring_ns_op\":%.0f,\"speedup\":%.1f}\n",
		fresh, keyring, fresh/keyring)
}

// benchJSON emits the full trajectory point: micro-benchmarks plus the
// engine sweep in all three time modes, one JSON object per line.
func benchJSON() error {
	for _, hops := range []int{0, 4, 12} {
		if err := hashkeyMicro(hops); err != nil {
			return err
		}
	}
	keyringMicro()
	if err := engineSweep(false, false); err != nil {
		return err
	}
	if err := engineSweep(true, false); err != nil {
		return err
	}
	return adaptivePair()
}

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	engineJSON := flag.Bool("engine-json", false, "emit engine throughput sweep as JSON and exit")
	fullBenchJSON := flag.Bool("bench-json", false, "emit micro-benchmarks plus engine sweeps (all time modes) as JSON and exit")
	vtimeFlag := flag.Bool("vtime", false, "run the -engine-json sweep on the virtual-time scheduler")
	adaptiveFlag := flag.Bool("adaptive-delta", false, "enable the observed-latency adaptive-Δ controller in the -engine-json sweep")
	flag.Parse()

	if *engineJSON || *fullBenchJSON {
		var err error
		if *fullBenchJSON {
			err = benchJSON()
		} else {
			err = engineSweep(*vtimeFlag, *adaptiveFlag)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := 0
	for _, e := range expt.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
