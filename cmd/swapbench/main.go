// Command swapbench runs the full experiment suite — one table per figure
// or quantitative claim of the paper (see DESIGN.md §4) — and prints the
// tables EXPERIMENTS.md records.
//
// Usage:
//
//	swapbench [-only E5[,E9,...]]
//	swapbench -engine-json [-vtime] [-adaptive-delta]
//	swapbench -engine-json -arrival-rate 4000 [-profile poisson] [-vtime]
//	swapbench -openloop-json
//	swapbench -bench-json
//	swapbench -scenario all [-scenario-seed N] [-scenario-parallel] [-scenario-shards N]
//	swapbench -recovery-json
//	swapbench -reorg-json
//	swapbench -parallel-json [-parallel-repeat N] [-parallel-rings N]
//	swapbench -shard-json [-shard-repeat N] [-shard-rings N]
//
// With -scenario it runs seed-replayable adversarial scenarios (open-
// loop load with injected deviation strategies on the deterministic
// engine) and emits one replay-stable digest JSON line per scenario:
// the same invocation always prints the same bytes, so CI can diff two
// runs to prove determinism. See internal/engine/scenario.
//
// With -recovery-json it emits the crash-recovery point CI archives:
// the engine-crash@tick scenario digest (kill mid-run, recover from the
// WAL, finish on the recovered engine) with its resume/refund split and
// measured recovery cost, plus a synthetic 10k-event log recovery that
// must finish inside the one-second smoke bound.
//
// With -engine-json it instead sweeps the clearing engine at 1, 8, and 64
// concurrent swaps and emits one JSON object per line (the BENCH
// trajectory format), skipping the experiment tables. -vtime runs the
// sweep on the virtual-time scheduler (CPU-bound, fast, deterministic
// timing); -adaptive-delta enables the observed-latency Δ controller.
// Adding -arrival-rate switches the sweep from closed-loop (whole book
// submitted up front) to open-loop: offers arrive from the -profile
// arrival process (constant, poisson, burst[:n], ramp[:from:to]) at the
// given average offers/sec, and the report carries latency percentiles.
// With -openloop-json it emits the open-loop trajectory point committed
// as BENCH_03.json: a virtual-time rate sweep (latency percentiles vs
// offered load) plus the fixed-Δ vs adaptive-Δ pair at equal offered
// load on the real scheduler. With -bench-json it emits the full older
// trajectory point: the engine sweep in all three time modes plus the
// hot-path micro-benchmarks (hashkey verification cached/uncached,
// keyring vs fresh-keygen setup) — the format committed as BENCH_NN.json
// files. With -reorg-json it emits the BENCH_06 chain-realism sweep:
// confirmation depth crossed with reorg rate on a fixed scenario load,
// reporting what each point costs in clearing rounds, settle latency,
// and reverted records. With -parallel-json it emits the BENCH_04 dispatch-mode sweep
// (worker ladder × serial-det/parallel-det/concurrent with a
// batch-verify ablation), and with -shard-json the BENCH_05 sharded
// sweep (shard-count ladder × cross-shard traffic ratio on the
// striped-parallel dispatcher).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/durable"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/engine/scenario"
	"github.com/go-atomicswap/atomicswap/internal/engine/shard"
	"github.com/go-atomicswap/atomicswap/internal/expt"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// engineSweep pushes a fixed ring load through the engine at increasing
// concurrency and prints {"concurrency":N,...} JSON lines. Virtual mode
// reuses a worker-sized party pool (4 waves of repeat customers), the
// same shape BenchmarkEngineThroughput/vtime-swaps-N measures.
func engineSweep(virtual, adaptive bool) error {
	bench := "engine_throughput"
	switch {
	case virtual && adaptive:
		bench = "engine_throughput_vtime_adaptive"
	case virtual:
		bench = "engine_throughput_vtime"
	case adaptive:
		bench = "engine_throughput_adaptive"
	}
	for _, workers := range []int{1, 8, 64} {
		cfg := engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         vtime.Duration(20),
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          int64(workers),
			Virtual:       virtual,
			AdaptiveDelta: adaptive,
		}
		rings, ringSize := 2*workers, 3
		var opts []engine.LoadOption
		if virtual || adaptive {
			// Repeat customers in waves: the shape virtual mode is
			// benchmarked in, and the shape adaptive Δ needs — later
			// waves clear at the Δ the first wave's observations tuned.
			rings = 4 * workers
			opts = append(opts, engine.WithPartyPool(workers))
		}
		rep, err := engine.RunLoad(cfg, rings, ringSize, opts...)
		if err != nil {
			return fmt.Errorf("engine sweep at %d: %w", workers, err)
		}
		fmt.Printf("{\"bench\":%q,\"concurrency\":%d,\"report\":%s}\n",
			bench, workers, rep.JSON())
	}
	return nil
}

// adaptivePair runs the adaptive-Δ comparison: the same wide-Δ waved load
// with the controller off and on, reporting both so the trajectory can
// carry the speedup.
func adaptivePair() error {
	for _, adaptive := range []bool{false, true} {
		const workers = 8
		cfg := engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         100,
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          7,
			MaxClearAhead: workers,
			AdaptiveDelta: adaptive,
			MinDelta:      8,
		}
		rep, err := engine.RunLoad(cfg, 3*workers, 3, engine.WithPartyPool(workers))
		if err != nil {
			return fmt.Errorf("adaptive pair (adaptive=%v): %w", adaptive, err)
		}
		name := "engine_widefixed"
		if adaptive {
			name = "engine_wideadaptive"
		}
		fmt.Printf("{\"bench\":%q,\"concurrency\":%d,\"report\":%s}\n", name, workers, rep.JSON())
	}
	return nil
}

// openLoopPoint runs one open-loop load and prints its JSON line: the
// engine report (latency percentiles, Δ trajectory) plus the generator's
// intake accounting.
func openLoopPoint(bench string, workers int, cfg engine.Config, lcfg loadgen.Config) error {
	rep, err := loadgen.RunOpenLoad(cfg, lcfg)
	if err != nil {
		return fmt.Errorf("%s at %d workers: %w", bench, workers, err)
	}
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	fmt.Printf("{\"bench\":%q,\"concurrency\":%d,\"report\":%s}\n", bench, workers, body)
	return nil
}

// openLoopSweep replaces the closed-loop engine sweep when an arrival
// rate is given: the same 1/8/64 concurrency ladder, but offers stream
// in from the arrival process instead of pre-loading the book.
func openLoopSweep(rate float64, p loadgen.Process, virtual, adaptive bool) error {
	bench := "engine_openloop"
	switch {
	case virtual && adaptive:
		bench = "engine_openloop_vtime_adaptive"
	case virtual:
		bench = "engine_openloop_vtime"
	case adaptive:
		bench = "engine_openloop_adaptive"
	}
	for _, workers := range []int{1, 8, 64} {
		cfg := engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         vtime.Duration(20),
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          int64(workers),
			Virtual:       virtual,
			AdaptiveDelta: adaptive,
		}
		lcfg := loadgen.Config{
			Offers:    12 * workers,
			Rate:      rate,
			Process:   p,
			PartyPool: workers,
			Seed:      int64(workers),
		}
		if err := openLoopPoint(bench, workers, cfg, lcfg); err != nil {
			return err
		}
	}
	return nil
}

// openLoopTrajectory emits the BENCH_03 point: tail latency versus
// offered load under virtual time (including a burst profile), then the
// adaptive-Δ payoff measured the way it is actually felt — submit-to-
// settle latency percentiles at equal offered load on the real
// scheduler, wide fixed Δ versus the controller.
func openLoopTrajectory() error {
	const workers = 8
	vcfg := func(seed int64) engine.Config {
		return engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         vtime.Duration(20),
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          seed,
			Virtual:       true,
		}
	}
	// Latency vs offered load, Poisson arrivals on virtual time.
	for _, rate := range []float64{1000, 4000, 16000} {
		lcfg := loadgen.Config{
			Offers: 240, Rate: rate, Process: loadgen.Poisson{},
			PartyPool: workers, Seed: 11,
		}
		if err := openLoopPoint("engine_openloop_vtime", workers, vcfg(int64(rate)), lcfg); err != nil {
			return err
		}
	}
	// Synchronized spikes: same average rate, bursts of 16.
	if err := openLoopPoint("engine_openloop_vtime_burst", workers, vcfg(5), loadgen.Config{
		Offers: 240, Rate: 4000, Process: loadgen.Burst{Size: 16},
		PartyPool: workers, Seed: 11,
	}); err != nil {
		return err
	}
	// Fixed wide Δ vs adaptive Δ at equal offered load, real scheduler:
	// the latency the conservative timelock width costs, and how much of
	// it the controller gives back.
	for _, adaptive := range []bool{false, true} {
		cfg := engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         100,
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          7,
			MaxClearAhead: workers,
			AdaptiveDelta: adaptive,
			MinDelta:      8,
		}
		bench := "engine_openloop_widefixed"
		if adaptive {
			bench = "engine_openloop_adaptive"
		}
		lcfg := loadgen.Config{
			Offers: 120, Rate: 600, Process: loadgen.Poisson{},
			PartyPool: workers, Seed: 13,
		}
		if err := openLoopPoint(bench, workers, cfg, lcfg); err != nil {
			return err
		}
	}
	return nil
}

// runScenarios executes one named scenario (or the whole built-in
// suite) deterministically and prints one replay-stable JSON line per
// run: the canonical digest plus its sha256 fingerprint. Two
// invocations with the same arguments must emit byte-identical output —
// the CI replay job diffs exactly that, and diffs a -scenario-parallel
// run against the serial one too (parallel dispatch is an execution
// knob, not a schedule knob). A safety violation fails the command.
func runScenarios(name string, seedOffset int64, parallel bool, shards int) error {
	var scs []scenario.Scenario
	if name == "all" {
		scs = scenario.Suite(seedOffset)
	} else {
		sc, err := scenario.ByName(name, seedOffset)
		if err != nil {
			return err
		}
		scs = []scenario.Scenario{sc}
	}
	violations := 0
	for _, sc := range scs {
		sc.Parallel = parallel
		sc.ExecShards = shards
		res, err := scenario.Run(sc)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		fmt.Printf("{\"bench\":\"scenario\",\"hash\":%q,\"digest\":%s}\n",
			res.Digest.Hash(), res.Digest.JSON())
		violations += len(res.Violations)
	}
	if violations > 0 {
		return fmt.Errorf("scenarios reported %d safety violations", violations)
	}
	return nil
}

// recoveryJSON emits the crash-recovery point CI archives as
// recovery-metrics.json: the engine-crash@tick scenario digest (replay-
// stable bytes) with its resume/refund split and measured recovery
// cost, plus a synthetic 10k-event WAL recovery that must finish inside
// the one-second smoke bound.
func recoveryJSON() error {
	sc, err := scenario.ByName("engine-crash@tick", 0)
	if err != nil {
		return err
	}
	res, err := scenario.Run(sc)
	if err != nil {
		return err
	}
	fmt.Printf("{\"bench\":\"scenario\",\"hash\":%q,\"digest\":%s}\n",
		res.Digest.Hash(), res.Digest.JSON())
	rec := res.Recovery
	fmt.Printf("{\"bench\":\"crash_recovery\",\"scenario\":%q,\"crash_tick\":%d,"+
		"\"events_replayed\":%d,\"orders_resumed\":%d,\"orders_refunded\":%d,\"recover_wall_ms\":%.3f}\n",
		sc.Name, sc.CrashTick, rec.Events, rec.Resumed, rec.Refunded, rec.WallMs)
	if n := len(res.Violations); n > 0 {
		return fmt.Errorf("crash scenario reported %d safety violations", n)
	}

	// Synthetic scale point: a 10k-event log (5k booked+settled orders)
	// recovered cold.
	dir, err := os.MkdirTemp("", "swapbench-recovery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		return err
	}
	const events = 10_000
	for i := 1; i <= events/2; i++ {
		id := engine.OrderID(i)
		st.Append(engine.Event{Kind: engine.EvBooked, Tick: vtime.Ticks(i), Order: id})
		st.Append(engine.Event{
			Kind: engine.EvSettled, Tick: vtime.Ticks(i + 1),
			Order: id, Swap: "swap-000001", Class: int(outcome.Deal),
		})
	}
	if err := st.Close(); err != nil {
		return err
	}
	e, rec10k, err := durable.Recover(engine.Config{Workers: 2, Virtual: true},
		durable.RecoverOptions{Dir: dir})
	if err != nil {
		return err
	}
	defer e.Stop(context.Background())
	fmt.Printf("{\"bench\":\"recovery_10k\",\"events_replayed\":%d,\"recover_wall_ms\":%.3f}\n",
		rec10k.Events, rec10k.WallMs)
	if rec10k.WallMs >= 1000 {
		return fmt.Errorf("10k-event recovery took %.1fms, smoke bound is 1000ms", rec10k.WallMs)
	}
	return nil
}

// timeOp reports the mean ns/op of fn over enough iterations to fill
// roughly 200ms, with a floor of 10 iterations.
func timeOp(fn func()) float64 {
	fn() // warm up
	iters := 10
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	for elapsed := time.Since(start); elapsed < 200*time.Millisecond; elapsed = time.Since(start) {
		more := iters
		for i := 0; i < more; i++ {
			fn()
		}
		iters += more
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// hashkeyMicro measures verification at path length hops, cached and not,
// over the same fixture BenchmarkHashkey uses.
func hashkeyMicro(hops int) error {
	fx, err := hashkey.NewFixture(hops, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	cache := hashkey.NewVerifyCache(0)
	cached := timeOp(func() {
		if err := fx.Key.VerifyExtended(fx.Lock, fx.D, 0, fx.Dir, cache); err != nil {
			panic(err)
		}
	})
	uncached := timeOp(func() {
		if err := fx.Key.Verify(fx.Lock, fx.D, 0, fx.Dir); err != nil {
			panic(err)
		}
	})
	fmt.Printf("{\"bench\":\"hashkey_verify\",\"path_len\":%d,\"cached_ns_op\":%.0f,\"uncached_ns_op\":%.0f,\"speedup\":%.1f}\n",
		hops, cached, uncached, uncached/cached)
	return nil
}

// keyringMicro measures three-party setup cost with fresh per-swap keygen
// vs a persistent keyring, mirroring BenchmarkKeyring.
func keyringMicro() {
	d := graphgen.ThreeWay()
	seed := int64(0)
	fresh := timeOp(func() {
		seed++
		if _, err := core.NewSetup(d, core.Config{Rand: rand.New(rand.NewSource(seed))}); err != nil {
			panic(err)
		}
	})
	k := core.NewKeyring(rand.New(rand.NewSource(7)))
	cache := hashkey.NewVerifyCache(0)
	keyring := timeOp(func() {
		seed++
		cfg := core.Config{Rand: rand.New(rand.NewSource(seed)), Keyring: k, Cache: cache}
		if _, err := core.NewSetup(d, cfg); err != nil {
			panic(err)
		}
	})
	fmt.Printf("{\"bench\":\"keyring_setup\",\"fresh_ns_op\":%.0f,\"keyring_ns_op\":%.0f,\"speedup\":%.1f}\n",
		fresh, keyring, fresh/keyring)
}

// reorgSweep is the BENCH_06 measurement: the chain-realism cost
// surface. Confirmation depth (2/4/8 ticks) is crossed with reorg rate
// (0/10/25% per record) on the reorg-depth scenario's load shape, plus
// the instant-finality baseline, and every point reports what realism
// costs: clearing rounds, last settle tick, and the revert count. Each
// line carries the digest hash — the runs are seeded scenarios, so the
// whole sweep is replay-stable and CI can diff two invocations.
func reorgSweep() error {
	run := func(depth vtime.Duration, rate float64) error {
		sc := scenario.Scenario{
			Name:         fmt.Sprintf("reorg-sweep-d%d-r%d", depth, int(100*rate)),
			Seed:         909,
			Offers:       48,
			Rate:         2000,
			Profile:      "poisson",
			ConfirmDepth: depth,
			ReorgRate:    rate,
		}
		res, err := scenario.Run(sc)
		if err != nil {
			return fmt.Errorf("reorg sweep depth %d rate %.2f: %w", depth, rate, err)
		}
		d := res.Digest
		fmt.Printf("{\"bench\":\"engine_reorg\",\"confirm_depth\":%d,\"reorg_rate\":%.2f,"+
			"\"reverts\":%d,\"clear_rounds\":%d,\"last_settle_tick\":%d,"+
			"\"swaps_finished\":%d,\"swaps_failed\":%d,\"conservation\":%q,\"hash\":%q}\n",
			depth, rate, d.Reverts, d.ClearRounds, d.LastSettleTick,
			d.SwapsFinished, d.SwapsFailed, d.Conservation, d.Hash())
		if n := len(res.Violations); n > 0 {
			return fmt.Errorf("reorg sweep depth %d rate %.2f: %d safety violations (first: %s)",
				depth, rate, n, res.Violations[0].Detail)
		}
		return nil
	}
	// Instant-finality baseline: the pre-commitment-model engine.
	if err := run(0, 0); err != nil {
		return err
	}
	for _, depth := range []vtime.Duration{2, 4, 8} {
		for _, rate := range []float64{0, 0.10, 0.25} {
			if err := run(depth, rate); err != nil {
				return err
			}
		}
	}
	return nil
}

// benchJSON emits the full trajectory point: micro-benchmarks plus the
// engine sweep in all three time modes, one JSON object per line.
// parallelSweep is the BENCH_04 measurement: a worker ladder crossed with
// the three scheduler modes — serial-det (Deterministic: serialized
// virtual dispatch), parallel-det (striped parallel dispatch with the
// per-tick barrier, digest-identical to serial-det), and concurrent (the
// free-running virtual scheduler, BENCH_02's mode) — on the vtime load
// shape: 3-party rings over a worker-sized party pool. Each point also
// carries a batch-verify-off ablation at the top worker count, and the
// ladder ends with the BENCH_02-comparable point (32 rings at 8 workers,
// concurrent) so the trajectory stays honest. Every point reports the
// best of `repeat` runs: throughput points measure capability, and on a
// shared box the max is the least noisy estimator of it.
//
// Each ladder point's JSON carries "concurrency" (the worker count) and
// "rings" (the point's TOTAL ring load, -parallel-rings × workers).
func parallelSweep(repeat, ringsPerWorker int) error {
	if repeat < 1 {
		repeat = 1
	}
	type mode struct {
		name string
		mut  func(cfg *engine.Config)
	}
	modes := []mode{
		{"serial-det", func(cfg *engine.Config) { cfg.Deterministic = true }},
		{"parallel-det", func(cfg *engine.Config) { cfg.Parallel = true }},
		{"concurrent", func(cfg *engine.Config) { cfg.Virtual = true }},
	}
	run := func(name string, workers, rings int, batch bool, mut func(cfg *engine.Config)) error {
		var best *metrics.Throughput
		for r := 0; r < repeat; r++ {
			cfg := engine.Config{
				Workers:            workers,
				Tick:               time.Millisecond,
				Delta:              vtime.Duration(20),
				ClearInterval:      time.Millisecond,
				MaxBatch:           4096,
				Seed:               int64(workers + r),
				DisableBatchVerify: !batch,
			}
			mut(&cfg)
			rep, err := engine.RunLoad(cfg, rings, 3, engine.WithPartyPool(workers))
			if err != nil {
				return fmt.Errorf("parallel sweep %s at %d workers: %w", name, workers, err)
			}
			if rep.SwapsFinished != rings || rep.SwapsFailed != 0 {
				return fmt.Errorf("parallel sweep %s at %d workers: %d/%d swaps finished, %d failed",
					name, workers, rep.SwapsFinished, rings, rep.SwapsFailed)
			}
			if best == nil || rep.SwapsPerSec > best.SwapsPerSec {
				best = &rep
			}
		}
		fmt.Printf("{\"bench\":\"engine_parallel\",\"mode\":%q,\"concurrency\":%d,\"rings\":%d,\"batch_verify\":%v,\"report\":%s}\n",
			name, workers, rings, batch, best.JSON())
		return nil
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, m := range modes {
			if err := run(m.name, workers, ringsPerWorker*workers, true, m.mut); err != nil {
				return err
			}
		}
	}
	// Ablation: batch verification off at the top of the ladder.
	for _, m := range modes {
		if err := run(m.name+"/no-batch-verify", 8, ringsPerWorker*8, false, m.mut); err != nil {
			return err
		}
	}
	// BENCH_02-comparable point: exactly the engine_throughput_vtime shape
	// (4 rings per worker, concurrent mode, worker-sized pool).
	return run("bench02-comparable", 8, 32, true,
		func(cfg *engine.Config) { cfg.Virtual = true })
}

// shardSweep is the BENCH_05 measurement: the sharded clearing engine
// across a shard-count ladder (1/2/4/8) crossed with cross-shard traffic
// ratios (0/10/50%), on striped-parallel deterministic dispatch — the
// mode where shards are the dispatch stripes, so this is the sweep
// behind the "shards are the unit of multicore scaling" claim. The load
// is a fixed total ring budget (strong scaling: more shards, same work),
// generated against each point's own shard placement map; at 1 shard
// every ring is necessarily local, so the three ratio rows collapse to
// the same single-book baseline the speedups are measured against.
// Every run drives loadgen.Drive's full contract — drain, conservation
// audit over every shard ledger, zero failed swaps — and each point
// reports the best of `repeat` runs, same estimator as -parallel-json.
func shardSweep(repeat, rings int) error {
	if repeat < 1 {
		repeat = 1
	}
	run := func(shards int, ratio float64) error {
		offers := 3 * rings
		var best *loadgen.Report
		for r := 0; r < repeat; r++ {
			scfg := shard.Config{
				Shards: shards,
				Engine: engine.Config{
					Workers:    8,
					Tick:       time.Millisecond,
					Delta:      vtime.Duration(20),
					ClearEvery: 2,
					MaxBatch:   4096,
					Seed:       int64(1000*shards) + int64(100*ratio) + int64(r),
					Parallel:   true,
					// Deterministic mode forgoes clear-ahead backpressure;
					// let the whole book go live so the sweep measures
					// clearing capacity, not the default live gate.
					MaxLive: offers + 64,
				},
			}
			rep, err := loadgen.RunShardedOpenLoad(scfg, loadgen.Config{
				Offers: offers,
				Rate:   2e4,
				Seed:   int64(1000*shards) + int64(100*ratio),
				// Shedding would make points at different shard counts
				// serve different books; overload here is deliberate.
				MaxPending: -1,
				Shards:     shards,
				CrossRatio: ratio,
			})
			if err != nil {
				return fmt.Errorf("shard sweep %d shards, cross %.0f%%: %w",
					shards, 100*ratio, err)
			}
			if best == nil || rep.SwapsPerSec > best.SwapsPerSec {
				best = &rep
			}
		}
		body, err := json.Marshal(best)
		if err != nil {
			return err
		}
		fmt.Printf("{\"bench\":\"engine_sharded\",\"mode\":\"parallel-det\",\"shards\":%d,\"cross_ratio\":%.2f,\"rings\":%d,\"report\":%s}\n",
			shards, ratio, rings, body)
		return nil
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, ratio := range []float64{0, 0.1, 0.5} {
			if err := run(shards, ratio); err != nil {
				return err
			}
		}
	}
	return nil
}

// econSweep is the BENCH_07 measurement: the griefing-cost surface
// across coalition size × formation rate, for both in-swap coalition
// strategies, over 5-party rings (so every size up to 4 leaves at least
// one conforming victim). Each point is a deterministic scenario run —
// the numbers are tick-domain integrals, replayable byte-for-byte from
// the seed — reporting what the coalition cost conforming parties
// (griefing cost), what it staked itself (deviant lock), and the ratio
// (griefing factor: token-ticks of honest lockup per token-tick of
// adversarial stake). The leading rate-0 baseline pins the empty
// coalition at exactly zero griefing cost.
func econSweep() error {
	run := func(strategy string, size int, rate float64) error {
		sc := scenario.Scenario{
			Name:    fmt.Sprintf("econ-sweep-%s-k%d-r%d", strategy, size, int(100*rate)),
			Seed:    1414,
			Offers:  60,
			Rate:    2000,
			Profile: "poisson",
			RingMin: 5,
			RingMax: 5,
		}
		if rate > 0 {
			sc.Coalitions = []scenario.Coalition{{Strategy: strategy, Rate: rate, Size: size}}
		}
		res, err := scenario.Run(sc)
		if err != nil {
			return fmt.Errorf("econ sweep %s k=%d rate %.2f: %w", strategy, size, rate, err)
		}
		d := res.Digest
		var cost, dlock, clock, gain uint64
		var griefed int
		var factor float64
		var margin int64
		if e := d.Economics; e != nil {
			cost, dlock, clock = e.GriefingCostTokenTicks, e.DeviantLockTokenTicks, e.ConformingLockTokenTicks
			griefed, factor = e.GriefedSwaps, e.GriefingFactor
			margin, gain = e.BriberySafetyMargin, e.BestCoalitionGain
		}
		fmt.Printf("{\"bench\":\"engine_econ\",\"strategy\":%q,\"size\":%d,\"rate\":%.2f,"+
			"\"griefing_cost_token_ticks\":%d,\"griefed_swaps\":%d,\"griefing_factor\":%.4f,"+
			"\"conforming_lock_token_ticks\":%d,\"deviant_lock_token_ticks\":%d,"+
			"\"bribery_safety_margin\":%d,\"best_coalition_gain\":%d,"+
			"\"swaps_finished\":%d,\"last_settle_tick\":%d,\"conservation\":%q,\"hash\":%q}\n",
			strategy, size, rate, cost, griefed, factor, clock, dlock, margin, gain,
			d.SwapsFinished, d.LastSettleTick, d.Conservation, d.Hash())
		if rate == 0 && cost != 0 {
			return fmt.Errorf("econ sweep baseline: empty coalition reported griefing cost %d", cost)
		}
		if n := len(res.Violations); n > 0 {
			return fmt.Errorf("econ sweep %s k=%d rate %.2f: %d safety violations (first: %s)",
				strategy, size, rate, n, res.Violations[0].Detail)
		}
		return nil
	}
	// Empty-coalition baseline: all the capital, none of the griefing.
	if err := run("none", 0, 0); err != nil {
		return err
	}
	for _, strategy := range []string{"punishment", "cartel"} {
		for _, size := range []int{2, 3, 4} {
			for _, rate := range []float64{0.25, 0.5, 1.0} {
				if err := run(strategy, size, rate); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func benchJSON() error {
	for _, hops := range []int{0, 4, 12} {
		if err := hashkeyMicro(hops); err != nil {
			return err
		}
	}
	keyringMicro()
	if err := engineSweep(false, false); err != nil {
		return err
	}
	if err := engineSweep(true, false); err != nil {
		return err
	}
	return adaptivePair()
}

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	engineJSON := flag.Bool("engine-json", false, "emit engine throughput sweep as JSON and exit")
	fullBenchJSON := flag.Bool("bench-json", false, "emit micro-benchmarks plus engine sweeps (all time modes) as JSON and exit")
	openLoopJSON := flag.Bool("openloop-json", false, "emit the open-loop trajectory point (latency vs offered load, fixed vs adaptive Δ) as JSON and exit")
	vtimeFlag := flag.Bool("vtime", false, "run the -engine-json sweep on the virtual-time scheduler")
	adaptiveFlag := flag.Bool("adaptive-delta", false, "enable the observed-latency adaptive-Δ controller in the -engine-json sweep")
	arrivalRate := flag.Float64("arrival-rate", 0, "open-loop intake: average offered load in offers/sec (0 = closed-loop, book pre-loaded)")
	profileFlag := flag.String("profile", "poisson", "arrival process for -arrival-rate: constant, poisson, burst[:n], ramp[:from:to]")
	scenarioFlag := flag.String("scenario", "", "run a deterministic adversarial scenario by name ('all' = built-in suite) and emit replay-stable digest JSON")
	scenarioSeed := flag.Int64("scenario-seed", 0, "seed offset applied to every -scenario run (same offset ⇒ byte-identical output)")
	scenarioParallel := flag.Bool("scenario-parallel", false, "run -scenario on the striped-parallel dispatcher (digests must stay byte-identical; CI diffs serial vs parallel output)")
	scenarioShards := flag.Int("scenario-shards", 0, "run -scenario on a sharded engine with this many shards (0 = the scenario's own shard count; digests of shard-local scenarios must stay byte-identical to 1-shard runs — CI diffs them)")
	recoveryFlag := flag.Bool("recovery-json", false, "emit the crash-recovery point (engine-crash@tick digest + 10k-event WAL recovery timing) as JSON and exit")
	reorgJSON := flag.Bool("reorg-json", false, "emit the BENCH_06 chain-realism sweep (confirmation depth 2/4/8 × reorg rate 0/10/25% + instant baseline) as JSON and exit")
	parallelJSON := flag.Bool("parallel-json", false, "emit the BENCH_04 dispatch-mode sweep (worker ladder × serial-det/parallel-det/concurrent, batch-verify ablation) as JSON and exit")
	parallelRepeat := flag.Int("parallel-repeat", 3, "runs per -parallel-json point (best-of)")
	parallelRings := flag.Int("parallel-rings", 16, "rings per worker at each -parallel-json ladder point (the JSON \"rings\" field is this × \"concurrency\")")
	shardJSON := flag.Bool("shard-json", false, "emit the BENCH_05 sharded sweep (1/2/4/8 shards × cross-shard ratio 0/10/50%, striped-parallel dispatch) as JSON and exit")
	shardRepeat := flag.Int("shard-repeat", 3, "runs per -shard-json point (best-of)")
	shardRings := flag.Int("shard-rings", 192, "total rings at every -shard-json point (fixed across shard counts: strong scaling)")
	econJSON := flag.Bool("econ-json", false, "emit the BENCH_07 griefing-cost surface (coalition strategy × size × rate, plus the empty-coalition baseline) as JSON and exit")
	flag.Parse()

	if *econJSON {
		if err := econSweep(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *shardJSON {
		if err := shardSweep(*shardRepeat, *shardRings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *parallelJSON {
		if err := parallelSweep(*parallelRepeat, *parallelRings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *reorgJSON {
		if err := reorgSweep(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *recoveryFlag {
		if err := recoveryJSON(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *scenarioFlag != "" {
		if err := runScenarios(*scenarioFlag, *scenarioSeed, *scenarioParallel, *scenarioShards); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *arrivalRate > 0 && (*fullBenchJSON || *openLoopJSON) {
		fmt.Fprintln(os.Stderr, "-arrival-rate configures the -engine-json sweep; -bench-json and -openloop-json fix their own loads")
		os.Exit(2)
	}
	// -arrival-rate implies the engine sweep: silently falling through to
	// the closed-loop experiment tables would measure the wrong thing.
	if *engineJSON || *fullBenchJSON || *openLoopJSON || *arrivalRate > 0 {
		var err error
		switch {
		case *openLoopJSON:
			err = openLoopTrajectory()
		case *fullBenchJSON:
			err = benchJSON()
		case *arrivalRate > 0:
			var p loadgen.Process
			if p, err = loadgen.ParseProfile(*profileFlag); err == nil {
				err = openLoopSweep(*arrivalRate, p, *vtimeFlag, *adaptiveFlag)
			}
		default:
			err = engineSweep(*vtimeFlag, *adaptiveFlag)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := 0
	for _, e := range expt.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
