// Command swapbench runs the full experiment suite — one table per figure
// or quantitative claim of the paper (see DESIGN.md §4) — and prints the
// tables EXPERIMENTS.md records.
//
// Usage:
//
//	swapbench [-only E5[,E9,...]]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/go-atomicswap/atomicswap/internal/expt"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	failed := 0
	for _, e := range expt.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(tbl.Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
