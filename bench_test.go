package atomicswap_test

// Benchmarks mirroring the experiment index of DESIGN.md §4 — one bench
// per figure/claim of the paper plus micro-benches for the primitives.
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/baseline"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/pebble"
)

// benchRun times protocol execution with setup fully outside the timed
// region: the timer only covers Runner.Run, and per-swap setup cost is
// reported as its own metric instead of hiding in StopTimer noise — which
// is what makes keyring gains (setup-side) visible next to run-side wins.
func benchRun(b *testing.B, d *digraph.Digraph, cfg core.Config) {
	b.Helper()
	b.ReportAllocs()
	var setupNS, runNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := cfg
		cfg.Rand = rand.New(rand.NewSource(int64(i)))
		t0 := time.Now()
		setup, err := core.NewSetup(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := core.NewRunner(setup, core.Options{Seed: int64(i)})
		setupNS += time.Since(t0)
		b.StartTimer()
		t1 := time.Now()
		res, err := r.Run()
		runNS += time.Since(t1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Report.AllDeal() {
			b.Fatal("bench run not AllDeal")
		}
	}
	b.ReportMetric(float64(setupNS.Nanoseconds())/float64(b.N), "setup-ns/op")
	b.ReportMetric(float64(runNS.Nanoseconds())/float64(b.N), "run-ns/op")
}

// BenchmarkThreeWaySwap is E1: the Figures 1–2 swap end to end.
func BenchmarkThreeWaySwap(b *testing.B) {
	benchRun(b, graphgen.ThreeWay(), core.Config{})
}

// BenchmarkFullSwap is E2: full-protocol runs across the sweep families.
func BenchmarkFullSwap(b *testing.B) {
	families := []struct {
		name string
		d    *digraph.Digraph
	}{
		{"cycle4", graphgen.Cycle(4)},
		{"cycle8", graphgen.Cycle(8)},
		{"cycle12", graphgen.Cycle(12)},
		{"clique4", graphgen.Clique(4)},
		{"clique6", graphgen.Clique(6)},
		{"twoleader", graphgen.TwoLeaderTriangle()},
		{"bidir7", graphgen.BidirCycle(7)},
		{"random10", graphgen.RandomStronglyConnected(10, 0.25, 5)},
	}
	for _, f := range families {
		b.Run(f.name, func(b *testing.B) { benchRun(b, f.d, core.Config{}) })
	}
}

// BenchmarkSingleLeader is E8: the Section 4.6 timeout-staircase variant.
func BenchmarkSingleLeader(b *testing.B) {
	b.Run("threeway", func(b *testing.B) {
		benchRun(b, graphgen.ThreeWay(), core.Config{Kind: core.KindSingleLeader})
	})
	b.Run("flower4x2", func(b *testing.B) {
		d := graphgen.Flower(4, 2)
		center, _ := d.VertexByName("L")
		benchRun(b, d, core.Config{Kind: core.KindSingleLeader, Leaders: []digraph.Vertex{center}})
	})
}

// BenchmarkBroadcast is E15: Phase Two with the shared broadcast chain.
func BenchmarkBroadcast(b *testing.B) {
	b.Run("cycle8-plain", func(b *testing.B) { benchRun(b, graphgen.Cycle(8), core.Config{}) })
	b.Run("cycle8-broadcast", func(b *testing.B) { benchRun(b, graphgen.Cycle(8), core.Config{Broadcast: true}) })
}

// BenchmarkAdversarialRun is E5: a full run under a colluding coalition.
func BenchmarkAdversarialRun(b *testing.B) {
	d := graphgen.TwoLeaderTriangle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		setup, err := core.NewSetup(d, core.Config{Rand: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			b.Fatal(err)
		}
		r := core.NewRunner(setup, core.Options{Seed: int64(i)})
		for v, bhv := range adversary.Coalition(adversary.CoalitionConfig{
			Setup: setup, Members: []digraph.Vertex{0, 2}, Seed: int64(i), DropProb: 0.3, HaltProb: 0.3,
		}) {
			r.SetBehavior(v, bhv)
		}
		b.StartTimer()
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialBaseline is E11's non-atomic baseline.
func BenchmarkSequentialBaseline(b *testing.B) {
	d := graphgen.Cycle(6)
	assets := baseline.DefaultAssets(d)
	parties := baseline.PartyNames(d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Sequential(d, assets, parties, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecurrent is E13: five piggybacked rounds.
func BenchmarkRecurrent(b *testing.B) {
	d := graphgen.ThreeWay()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunRecurrent(d, 5, true, rand.New(rand.NewSource(int64(i))), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput is E18: the clearing engine end to end at
// 1, 8, and 64 concurrent swaps, in three time modes. Each iteration
// pushes a full load of three-party barter rings through a fresh engine
// over shared chains and reports offers/sec and swaps/sec (wall-clock
// service rates, so run with -benchtime=1x or a small count).
//
//   - swaps-N: the fixed-Δ real-time baseline (wall-clock-bound: swaps
//     wait out Δ-scaled protocol deadlines), fresh parties per ring — the
//     BENCH_01-comparable series.
//   - vtime-swaps-N: the virtual-time scheduler; ticks advance as fast
//     as callbacks drain, so throughput is CPU-bound. Rings reuse a
//     worker-sized party pool (repeat customers), the keyring's designed
//     load shape.
//   - fixedwide-swaps-N / adaptive-swaps-N: the adaptive-Δ comparison
//     pair. Both start from a conservatively wide production Δ (100
//     ticks) and clear in worker-sized waves; the adaptive engine shrinks
//     Δ toward the delivery latency it actually observes, the fixed one
//     pays the full width on every wave.
func BenchmarkEngineThroughput(b *testing.B) {
	engineCfg := func(workers, i int) engine.Config {
		return engine.Config{
			Workers:       workers,
			Tick:          time.Millisecond,
			Delta:         20,
			ClearInterval: time.Millisecond,
			MaxBatch:      4096,
			Seed:          int64(i + 1),
		}
	}
	runMode := func(b *testing.B, workers, rings int, mut func(*engine.Config), opts ...engine.LoadOption) {
		var offers, swaps float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := engineCfg(workers, i)
			if mut != nil {
				mut(&cfg)
			}
			rep, err := engine.RunLoad(cfg, rings, 3, opts...)
			if err != nil {
				b.Fatal(err)
			}
			// SwapsFailed counts execution errors only; a jitter-induced
			// refund on a noisy CI box still finishes (outcome NoDeal),
			// so this assertion cannot flake on scheduler noise.
			if rep.SwapsFinished != rings || rep.SwapsFailed != 0 {
				b.Fatalf("finished %d swaps (%d failed), want %d clean",
					rep.SwapsFinished, rep.SwapsFailed, rings)
			}
			offers += rep.OffersClearedPerSec
			swaps += rep.SwapsPerSec
		}
		b.ReportMetric(offers/float64(b.N), "offers/sec")
		b.ReportMetric(swaps/float64(b.N), "swaps/sec")
	}
	for _, workers := range []int{1, 8, 64} {
		workers := workers
		b.Run(fmt.Sprintf("swaps-%d", workers), func(b *testing.B) {
			runMode(b, workers, 2*workers, nil)
		})
	}
	for _, workers := range []int{8, 64} {
		workers := workers
		b.Run(fmt.Sprintf("vtime-swaps-%d", workers), func(b *testing.B) {
			runMode(b, workers, 4*workers,
				func(cfg *engine.Config) { cfg.Virtual = true },
				engine.WithPartyPool(workers))
		})
	}
	wide := func(adaptive bool) func(*engine.Config) {
		return func(cfg *engine.Config) {
			cfg.Delta = 100
			cfg.MaxClearAhead = cfg.Workers
			if adaptive {
				cfg.AdaptiveDelta = true
				cfg.MinDelta = 8
			}
		}
	}
	b.Run("fixedwide-swaps-8", func(b *testing.B) {
		runMode(b, 8, 3*8, wide(false), engine.WithPartyPool(8))
	})
	b.Run("adaptive-swaps-8", func(b *testing.B) {
		runMode(b, 8, 3*8, wide(true), engine.WithPartyPool(8))
	})
	// openloop-vtime-8: the open-loop series — offers stream in from a
	// Poisson arrival process on the shared scheduler instead of
	// pre-loading the book, and the interesting output is tail latency
	// (p95/p99 of submit-to-settle) under sustained intake.
	b.Run("openloop-vtime-8", func(b *testing.B) {
		var swaps, p95, p99 float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := engineCfg(8, i)
			cfg.Virtual = true
			rep, err := loadgen.RunOpenLoad(cfg, loadgen.Config{
				Offers:    96,
				Rate:      4000,
				Process:   loadgen.Poisson{},
				PartyPool: 8,
				Seed:      int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Load.Shed != 0 || rep.Load.Submitted != rep.Load.Offered {
				b.Fatalf("open-loop load degraded: %+v / %+v", rep.Throughput, rep.Load)
			}
			if rep.P95LatencyMs <= 0 {
				b.Fatalf("zeroed p95 under virtual time: %+v", rep.Throughput)
			}
			swaps += rep.SwapsPerSec
			p95 += rep.P95LatencyMs
			p99 += rep.P99LatencyMs
		}
		b.ReportMetric(swaps/float64(b.N), "swaps/sec")
		b.ReportMetric(p95/float64(b.N), "p95-ms")
		b.ReportMetric(p99/float64(b.N), "p99-ms")
	})
}

// BenchmarkPebble is E10: the two games of Section 4.4.
func BenchmarkPebble(b *testing.B) {
	d := graphgen.RandomStronglyConnected(12, 0.25, 7)
	leaders := d.GreedyFVS()
	dt := d.Transpose()
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := pebble.Lazy(d, leaders); !res.Complete {
				b.Fatal("incomplete")
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := pebble.Eager(dt, leaders[0]); !res.Complete {
				b.Fatal("incomplete")
			}
		}
	})
}

// hashkeyBench builds the shared verification fixture (hashkey.NewFixture)
// deterministically for a bench.
func hashkeyBench(b *testing.B, hops int) (*digraph.Digraph, hashkey.Directory, hashkey.Lock, hashkey.Hashkey, []*hashkey.Signer) {
	b.Helper()
	fx, err := hashkey.NewFixture(hops, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return fx.D, fx.Dir, fx.Lock, fx.Key, fx.Signers
}

// BenchmarkHashkey covers the crypto primitives: chain extension and
// verification at Figure 7-like path lengths. The verify-pN variants use
// the amortizing cache (as every contract built from a Spec now does);
// verify-pN-uncached is the full O(|p|) chain walk for comparison.
func BenchmarkHashkey(b *testing.B) {
	for _, hops := range []int{0, 4, 12} {
		hops := hops
		b.Run(fmt.Sprintf("verify-p%d", hops), func(b *testing.B) {
			d, dir, lock, key, _ := hashkeyBench(b, hops)
			cache := hashkey.NewVerifyCache(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := key.VerifyExtended(lock, d, 0, dir, cache); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("verify-p%d-uncached", hops), func(b *testing.B) {
			d, dir, lock, key, _ := hashkeyBench(b, hops)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := key.Verify(lock, d, 0, dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// verify-extend-fastpath is the protocol's actual unlock pattern: the
	// presented key is a one-link extension of a chain some other contract
	// already verified, so the timed cost is a single ed25519 verification
	// regardless of |p|. Each iteration seeds a fresh cache with only the
	// suffix (timer stopped), then times the first sight of the extension.
	b.Run("verify-extend-fastpath", func(b *testing.B) {
		const hops = 12
		d, dir, lock, key, signers := hashkeyBench(b, hops)
		suffix := hashkey.New(key.Secret, signers[0])
		for i := 1; i < hops; i++ {
			suffix = suffix.Extend(signers[i])
		}
		ext := suffix.Extend(signers[hops])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := hashkey.NewVerifyCache(0)
			if err := suffix.VerifyExtended(lock, d, 0, dir, cache); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := ext.VerifyExtended(lock, d, 0, dir, cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extend", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		s0, _ := hashkey.NewSigner(0, rng)
		s1, _ := hashkey.NewSigner(1, rng)
		secret, _ := hashkey.NewSecret(rng)
		key := hashkey.New(secret, s0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = key.Extend(s1)
		}
	})
}

// BenchmarkKeyring measures what the persistent keyring takes off the
// clearing round: setup-fresh regenerates every party identity per swap
// (the pre-keyring engine), setup-keyring reuses persistent identities,
// and signer-for is the per-party rebinding cost on the hot path.
func BenchmarkKeyring(b *testing.B) {
	d := graphgen.ThreeWay()
	b.Run("setup-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSetup(d, core.Config{Rand: rand.New(rand.NewSource(int64(i)))}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("setup-keyring", func(b *testing.B) {
		k := core.NewKeyring(rand.New(rand.NewSource(7)))
		cache := hashkey.NewVerifyCache(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSetup(d, core.Config{
				Rand: rand.New(rand.NewSource(int64(i))), Keyring: k, Cache: cache,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("signer-for", func(b *testing.B) {
		k := core.NewKeyring(rand.New(rand.NewSource(8)))
		if _, err := k.Ensure("alice"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.SignerFor("alice", digraph.Vertex(i%16)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGraphAlgorithms covers the digraph machinery the spec builder
// runs: SCC, diameter, and feedback vertex sets.
func BenchmarkGraphAlgorithms(b *testing.B) {
	d := graphgen.RandomStronglyConnected(12, 0.3, 9)
	b.Run("scc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !d.StronglyConnected() {
				b.Fatal("should be SC")
			}
		}
	})
	b.Run("diameter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if diam, _ := d.Diameter(); diam <= 0 {
				b.Fatal("bad diameter")
			}
		}
	})
	b.Run("fvs-exact", func(b *testing.B) {
		small := graphgen.RandomStronglyConnected(8, 0.3, 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fvs := small.ExactMinFVS(); len(fvs) == 0 {
				b.Fatal("empty FVS on cyclic digraph")
			}
		}
	})
	b.Run("fvs-greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fvs := d.GreedyFVS(); len(fvs) == 0 {
				b.Fatal("empty FVS on cyclic digraph")
			}
		}
	})
}
