package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk format. Each segment file starts with the 6-byte magic
// "ASWAL1" (name + format version — bumping the format bumps the magic)
// followed by frames:
//
//	[4-byte LE payload length][4-byte LE IEEE CRC32 of payload][payload]
//
// The payload is one JSON-encoded engine.Event. The snapshot file is a
// single frame in the same format whose payload is a JSON snapshot
// envelope (see snapshot.go).
var walMagic = []byte("ASWAL1")

// frameHeader is the per-frame overhead: length + checksum.
const frameHeader = 8

// maxFrame bounds a single frame's payload; a length prefix beyond it is
// corruption, not a huge event.
const maxFrame = 16 << 20

// ErrCorrupt marks log damage recovery must not paper over: a checksum
// mismatch or truncation anywhere except the final frame of the final
// segment. (That one spot is the torn tail an append-time crash
// legitimately leaves behind, and is silently dropped instead.)
var ErrCorrupt = errors.New("durable: corrupt log")

// appendFrame appends one framed payload to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// errTorn is the internal marker for a frame that ends mid-write: a
// short header, a length running past EOF, or a checksum mismatch on the
// file's final frame. parseSegment converts it to either a silent drop
// (final segment) or ErrCorrupt (anywhere else).
var errTorn = errors.New("torn frame")

// parseFrames walks the framed region of one segment (after the magic)
// and returns the payloads. A torn tail is reported as (payloads so far,
// errTorn); damage that cannot be a torn tail — a checksum mismatch with
// more data after it — is ErrCorrupt.
func parseFrames(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		if len(data) < frameHeader {
			return out, errTorn
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n > maxFrame {
			return out, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
		}
		if int(n) > len(data)-frameHeader {
			return out, errTorn
		}
		payload := data[frameHeader : frameHeader+int(n)]
		rest := data[frameHeader+int(n):]
		if crc32.ChecksumIEEE(payload) != sum {
			if len(rest) == 0 {
				// Bad checksum on the very last frame: a torn append.
				return out, errTorn
			}
			return out, fmt.Errorf("%w: checksum mismatch with %d bytes following", ErrCorrupt, len(rest))
		}
		out = append(out, payload)
		data = rest
	}
	return out, nil
}

// parseSegment validates a whole segment file. last marks the final
// segment of the log, the only place a torn tail is legitimate: there it
// is dropped (the append it belonged to never happened, durably
// speaking); anywhere else every byte must check out.
func parseSegment(name string, data []byte, last bool) ([][]byte, error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return nil, fmt.Errorf("%w: segment %s: bad magic (version skew or not a WAL segment)", ErrCorrupt, name)
	}
	frames, err := parseFrames(data[len(walMagic):])
	if err != nil {
		if errors.Is(err, errTorn) {
			if last {
				return frames, nil
			}
			return nil, fmt.Errorf("%w: segment %s: torn frame in non-final segment", ErrCorrupt, name)
		}
		return nil, fmt.Errorf("segment %s: %w", name, err)
	}
	return frames, nil
}
