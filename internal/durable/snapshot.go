package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/go-atomicswap/atomicswap/internal/engine"
)

// snapshotVersion is the snapshot envelope schema version. A snapshot
// written by a different version is an error, never a guess: state
// folded under one schema must not seed a fold under another.
const snapshotVersion = 1

// snapshotFile is the snapshot's name inside the store directory.
const snapshotFile = "snapshot.json"

// snapshot is the envelope persisted as the snapshot file's single
// frame: the folded state plus the schema version that folded it.
type snapshot struct {
	Version int    `json:"version"`
	State   *State `json:"state"`
}

// writeSnapshot atomically replaces the snapshot file: the framed
// envelope goes to a temp file, is fsynced, and renamed into place. A
// crash anywhere in between leaves either the old snapshot or the new
// one, never a half-written hybrid — and the frame checksum catches the
// rename-raced remainder case.
func writeSnapshot(dir string, st *State) error {
	payload, err := json.Marshal(snapshot{Version: snapshotVersion, State: st})
	if err != nil {
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, snapshotFile))
}

// readSnapshot loads the snapshot file if present. A missing file means
// "no snapshot yet" (nil, nil); a present-but-damaged or version-skewed
// file is an error — the snapshot is the fold's foundation, and unlike a
// log tail there is no safe prefix to salvage.
func readSnapshot(dir string) (*State, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	frames, err := parseFrames(data)
	if err != nil || len(frames) != 1 {
		return nil, fmt.Errorf("%w: snapshot: bad frame", ErrCorrupt)
	}
	var snap snapshot
	if err := json.Unmarshal(frames[0], &snap); err != nil {
		return nil, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("durable: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	if snap.State == nil {
		return nil, fmt.Errorf("%w: snapshot: empty state", ErrCorrupt)
	}
	// Maps inside a decoded State may be nil when empty; normalize so
	// Apply can fold into them directly.
	if snap.State.Identities == nil {
		snap.State.Identities = make(map[string][]byte)
	}
	if snap.State.Assets == nil {
		snap.State.Assets = make(map[string]*AssetState)
	}
	if snap.State.Orders == nil {
		snap.State.Orders = make(map[engine.OrderID]*OrderState)
	}
	if snap.State.Swaps == nil {
		snap.State.Swaps = make(map[string]*SwapState)
	}
	return snap.State, nil
}
