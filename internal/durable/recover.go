package durable

import (
	"errors"
	"fmt"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// ErrNoState marks a Recover against a directory with nothing in it —
// the "fresh start, not a restart" case callers branch on (swapd opens
// a new store and a new engine instead).
var ErrNoState = errors.New("durable: no recoverable state")

// RecoverOptions parameterizes Recover.
type RecoverOptions struct {
	// Dir is the store directory to recover from.
	Dir string
	// CutTick, when positive, replays only events stamped at or before
	// it — the crash-scenario mode, where the kill tick is known and the
	// store may hold appends that raced past it. Requires a
	// snapshot-free log (see Options.SnapshotEvery). 0 replays
	// everything, resuming at the log's own max tick.
	CutTick vtime.Ticks
	// Attach keeps the store attached to the recovered engine: the
	// resolved state is written as a fresh snapshot (making resolution
	// idempotent across repeated crashes), the log is truncated, and the
	// engine's Config.Store is pointed at the store, which then keeps
	// logging. The store stays open; closing it is the caller's job.
	// Without Attach the store is closed and the recovered engine runs
	// in-memory — the deterministic-replay shape.
	Attach bool
	// SnapshotEvery configures the attached store's auto-snapshot cadence
	// (ignored without Attach).
	SnapshotEvery int
}

// Recovery reports what a Recover did.
type Recovery struct {
	// Events is how many WAL events were folded.
	Events int
	// Resumed and Refunded split the orders in flight at the crash.
	Resumed  int
	Refunded int
	// Reverts is the pre-crash commitment-model reorg revert count
	// folded from the log (0 on Instant runs).
	Reverts int
	// Tick is the virtual tick the engine resumed at.
	Tick vtime.Ticks
	// WallMs is the wall-clock cost of the whole recovery.
	WallMs float64
	// Store is the attached store (nil without RecoverOptions.Attach).
	Store *Store
}

// Recover rebuilds an engine from a durable store: read snapshot + tail,
// fold, resolve every in-flight swap (resume or refund — see
// State.Resolve for the rule), and hand the result to
// engine.NewRecovered. The returned engine has not been Started; the
// caller Starts it exactly like a fresh one, and the recovered pending
// book (original pending orders plus resumed ones) re-clears on the
// first rounds.
func Recover(ecfg engine.Config, opts RecoverOptions) (*engine.Engine, *Recovery, error) {
	begin := time.Now()
	st, err := Open(Options{Dir: opts.Dir, SnapshotEvery: opts.SnapshotEvery})
	if err != nil {
		return nil, nil, err
	}
	if !st.HasData() {
		st.Close()
		return nil, nil, fmt.Errorf("%w in %s", ErrNoState, opts.Dir)
	}
	resolved, err := st.ResolvedState(opts.CutTick)
	if err != nil {
		st.Close()
		return nil, nil, err
	}

	recTick := resolved.MaxTick
	if opts.CutTick > 0 && opts.CutTick > recTick {
		recTick = opts.CutTick
	}
	delta := ecfg.Delta
	if delta <= 0 {
		delta = core.DefaultDelta
	}
	recState, resumed, refunded := resolved.Resolve(recTick, delta)

	if opts.Attach {
		if err := st.AttachResolved(resolved); err != nil {
			st.Close()
			return nil, nil, err
		}
		ecfg.Store = st
	} else {
		if err := st.Close(); err != nil {
			return nil, nil, err
		}
		ecfg.Store = nil
	}

	e, err := engine.NewRecovered(ecfg, recState)
	if err != nil {
		if opts.Attach {
			st.Close()
		}
		return nil, nil, err
	}
	rec := &Recovery{
		Events:   resolved.Events,
		Resumed:  resumed,
		Refunded: refunded,
		Reverts:  resolved.Reverts,
		Tick:     recTick,
		WallMs:   float64(time.Since(begin)) / float64(time.Millisecond),
	}
	if opts.Attach {
		rec.Store = st
	}
	e.SetRecoveryStats(metrics.RecoveryStats{
		Replayed: rec.Events,
		Resumed:  rec.Resumed,
		Refunded: rec.Refunded,
		WallMs:   rec.WallMs,
	})
	return e, rec, nil
}
