package durable

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// TestKillRecoverInFlight is the headline crash-recovery test: an
// engine with a durable store takes a ring-swap load, is killed with at
// least 50 swaps in flight (the store closed at the same instant —
// appends after the "crash" are lost, exactly like a dead process's),
// and a second engine is recovered from the directory.
// Every order the first engine ever accepted must terminate — settled
// through a resumed swap, refunded at the recovery tick, or rejected —
// with no conforming party underwater and the recovered ledgers intact.
func TestKillRecoverInFlight(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(Options{Dir: dir, SnapshotEvery: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Virtual time with a tiny worker pool: one clearing round dispatches
	// all 120 swaps, so the in-flight count jumps far past 50 while the
	// two workers have barely started draining the queue — the poll below
	// catches the threshold immediately instead of racing wall-clock
	// settles (and the test stays cheap enough not to starve tick-
	// sensitive tests in concurrently running packages).
	const rings, ringSize = 120, 3
	cfgA := engine.Config{
		Workers:       2,
		Seed:          7,
		AdversaryRate: 0.15,
		Virtual:       true,
		Store:         store,
		// The live-run gate would cap in-flight at 16×Workers=32; this
		// test's whole point is a crash with ≥50 swaps mid-air.
		MaxLive: rings,
	}
	a := engine.New(cfgA)
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for r := 0; r < rings; r++ {
		for i := 0; i < ringSize; i++ {
			if _, err := a.Submit(engine.LoadOffer(r, i, ringSize, r)); err != nil {
				t.Fatalf("Submit ring %d offer %d: %v", r, i, err)
			}
		}
	}

	// Wait for the clearing loop to put at least 50 swaps in flight,
	// then crash: kill the engine and close the store in the same
	// breath, so whatever the dying swaps append afterwards never
	// reaches disk.
	deadline := time.Now().Add(10 * time.Second)
	inflight := 0
	for time.Now().Before(deadline) {
		if inflight = a.InFlight(); inflight >= 50 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if inflight < 50 {
		t.Fatalf("never reached 50 in-flight swaps (got %d)", inflight)
	}
	a.Kill()
	store.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Stop(ctx); err != nil {
		t.Fatalf("Stop(A): %v", err)
	}

	cfgB := engine.Config{Workers: 8, Seed: 7, Virtual: true}
	b, rec, err := Recover(cfgB, RecoverOptions{Dir: dir, Attach: true, SnapshotEvery: 256})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Store == nil {
		t.Fatalf("attached recovery returned no store")
	}
	defer rec.Store.Close()
	if rec.Resumed+rec.Refunded < 50 {
		t.Errorf("resolved %d+%d in-flight orders at recovery, want >= 50 (kill saw %d in-flight swaps)",
			rec.Resumed, rec.Refunded, inflight)
	}
	if err := b.Start(); err != nil {
		t.Fatalf("Start(B): %v", err)
	}
	if err := b.Stop(ctx); err != nil {
		t.Fatalf("Stop(B): %v", err)
	}

	total, settled, rejected := 0, 0, 0
	for _, o := range b.Orders() {
		total++
		switch o.Status {
		case engine.StatusSettled:
			settled++
			if o.Deviant == "" && o.Class == outcome.Underwater {
				t.Errorf("conforming order %d (party %s, swap %s) underwater after recovery", o.ID, o.Party, o.Swap)
			}
		case engine.StatusRejected:
			rejected++
		default:
			t.Errorf("order %d not terminal after recovered run: %v", o.ID, o.Status)
		}
	}
	if total != rings*ringSize {
		t.Errorf("recovered engine carries %d orders, want %d", total, rings*ringSize)
	}
	if settled == 0 {
		t.Errorf("no orders settled across crash and recovery (rejected=%d)", rejected)
	}
	if err := b.VerifyLedgerIntegrity(); err != nil {
		t.Errorf("recovered ledger integrity: %v", err)
	}
	snap := b.Report()
	if snap.Recovery == nil {
		t.Errorf("recovered engine's report carries no recovery stats")
	} else if snap.Recovery.Replayed != rec.Events {
		t.Errorf("report says %d events replayed, Recover said %d", snap.Recovery.Replayed, rec.Events)
	}

	// Idempotence: the attached recovery snapshotted the RESOLVED state,
	// and engine B then ran to quiescence, so recovering the directory
	// once more must find nothing left in flight to resume or refund —
	// crashes do not compound.
	c, rec2, err := Recover(engine.Config{Workers: 2, Seed: 7, Virtual: true}, RecoverOptions{Dir: dir})
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	defer c.Stop(context.Background())
	if rec2.Resumed != 0 || rec2.Refunded != 0 {
		t.Errorf("second recovery re-resolved %d resumed / %d refunded orders, want 0/0", rec2.Resumed, rec2.Refunded)
	}
}

// seedStore writes n synthetic booked+settled order events through a
// store and closes it, returning the order count.
func seedStore(t *testing.T, dir string, events int, opts Options) {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeEvents(s, events)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// writeEvents appends `events` synthetic events (half bookings, half
// settles, so the fold ends with every order terminal).
func writeEvents(s *Store, events int) {
	orders := events / 2
	for i := 1; i <= orders; i++ {
		id := engine.OrderID(i)
		s.Append(engine.Event{Kind: engine.EvBooked, Tick: vtime.Ticks(i), Order: id})
		s.Append(engine.Event{
			Kind: engine.EvSettled, Tick: vtime.Ticks(i + 1),
			Order: id, Swap: "swap-000001", Class: int(outcome.Deal),
		})
	}
}

// TestTornTailDropped: garbage after the last full frame of the final
// segment — the signature of an append cut short by a crash — is
// silently dropped; everything before it survives.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 20, Options{})

	names, err := segmentNames(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("segmentNames: %v (%d segments)", err, len(names))
	}
	last := filepath.Join(dir, names[len(names)-1])
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open last segment: %v", err)
	}
	// A torn frame: a plausible header promising more bytes than exist.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer s.Close()
	st, err := s.ResolvedState(0)
	if err != nil {
		t.Fatalf("ResolvedState: %v", err)
	}
	if len(st.Orders) != 10 {
		t.Errorf("torn tail: folded %d orders, want 10", len(st.Orders))
	}
}

// TestMidStreamCorruptionFatal: a checksum mismatch anywhere except the
// final frame cannot be a torn tail and must fail loudly, not be
// skipped.
func TestMidStreamCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 20, Options{})

	names, _ := segmentNames(dir)
	// Find a segment that actually has frames (Open creates a trailing
	// empty one per session).
	var target string
	for _, name := range names {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && fi.Size() > int64(len(walMagic)) {
			target = filepath.Join(dir, name)
			break
		}
	}
	if target == "" {
		t.Fatalf("no non-empty segment found")
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Flip one payload byte of the FIRST frame: bytes follow it, so this
	// can never be mistaken for a torn tail.
	data[len(walMagic)+frameHeader] ^= 0x40
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatalf("write corrupted segment: %v", err)
	}

	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-stream corruption: got %v, want ErrCorrupt", err)
	}
}

// TestTornFrameInNonFinalSegmentFatal: a torn frame is only legal at the
// very end of the log; one in an earlier segment means the log was
// damaged after being written, and recovery must refuse.
func TestTornFrameInNonFinalSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation, so the log spans >1 segment.
	seedStore(t, dir, 40, Options{SegmentBytes: 256})

	names, _ := segmentNames(dir)
	if len(names) < 2 {
		t.Fatalf("expected multiple segments, got %v", names)
	}
	first := filepath.Join(dir, names[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Truncate the first segment mid-frame.
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("truncate segment: %v", err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on torn non-final segment: got %v, want ErrCorrupt", err)
	}
}

// TestSnapshotVersionSkew: a snapshot written by a different schema
// version is an error, never a best-effort fold.
func TestSnapshotVersionSkew(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeEvents(s, 10)
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	// Rewrite the snapshot claiming a future version; the payload is
	// re-framed so only the version check can object.
	raw, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	frames, err := parseFrames(raw)
	if err != nil || len(frames) != 1 {
		t.Fatalf("parse snapshot: %v", err)
	}
	payload := []byte(`{"version":99,"state":` + `{"max_tick":0,"events":0}}`)
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), appendFrame(nil, payload), 0o644); err != nil {
		t.Fatalf("write skewed snapshot: %v", err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatalf("Open accepted snapshot version 99")
	}
}

// TestSnapshotTruncatesLog: an automatic snapshot folds the log into the
// snapshot file and deletes the sealed segments, and a reopened store
// folds to the identical state.
func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SnapshotEvery: 8, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeEvents(s, 64)
	before, err := s.ResolvedState(0)
	if err != nil {
		t.Fatalf("ResolvedState: %v", err)
	}
	s.Close()

	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	after, err := r.ResolvedState(0)
	if err != nil {
		t.Fatalf("ResolvedState after reopen: %v", err)
	}
	if len(after.Orders) != len(before.Orders) || after.MaxTick != before.MaxTick {
		t.Errorf("reopened fold diverged: %d orders max tick %d, want %d orders max tick %d",
			len(after.Orders), after.MaxTick, len(before.Orders), before.MaxTick)
	}
	for id, o := range before.Orders {
		got := after.Orders[id]
		if got == nil || got.Status != o.Status {
			t.Errorf("order %d: reopened status %+v, want %+v", id, got, o)
		}
	}
}

// TestCutTickFiltersRacedAppends: events stamped after the cut — appends
// that raced past the crash instant — are invisible to a cut replay.
func TestCutTickFiltersRacedAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Append(engine.Event{Kind: engine.EvBooked, Tick: 5, Order: 1})
	s.Append(engine.Event{Kind: engine.EvCleared, Tick: 8, Swap: "swap-000001", Orders: []engine.OrderID{1}})
	// This settle is stamped after the cut: it must not survive a cut-8
	// replay even though it sits in the file.
	s.Append(engine.Event{Kind: engine.EvSettled, Tick: 12, Order: 1, Swap: "swap-000001", Class: int(outcome.Deal)})
	s.Close()

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	st, err := r.ResolvedState(8)
	if err != nil {
		t.Fatalf("ResolvedState(8): %v", err)
	}
	if o := st.Orders[1]; o == nil || o.Status != "cleared" {
		t.Fatalf("cut replay sees order 1 as %+v, want cleared", st.Orders[1])
	}
	// And the cut refuses to run on top of a snapshot that may already
	// bake in post-cut events.
	if err := r.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := r.ResolvedState(8); err == nil {
		t.Fatalf("cut replay over a later snapshot succeeded, want error")
	}
}

// TestRecovery10kEventsUnderSecond is the CI smoke bound from the issue:
// folding a 10k-event log back into a live engine stays under a second.
func TestRecovery10kEventsUnderSecond(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 10_000, Options{})

	e, rec, err := Recover(engine.Config{Workers: 2, Virtual: true}, RecoverOptions{Dir: dir})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer e.Stop(context.Background())
	if rec.Events < 10_000 {
		t.Errorf("replayed %d events, want >= 10000", rec.Events)
	}
	if rec.WallMs >= 1000 {
		t.Errorf("recovery took %.1fms, want < 1000ms", rec.WallMs)
	}
}

// TestResolveRefundRules pins the resume-vs-refund policy: reveal-phase
// swaps refund, budget-starved swaps refund, early-phase swaps with
// budget resume.
func TestResolveRefundRules(t *testing.T) {
	st := NewState()
	mk := func(id engine.OrderID, swap string, phase string, deadline vtime.Ticks) {
		st.Apply(engine.Event{Kind: engine.EvBooked, Tick: 1, Order: id})
		st.Apply(engine.Event{Kind: engine.EvCleared, Tick: 2, Swap: swap, Orders: []engine.OrderID{id}})
		if phase != "" {
			st.Apply(engine.Event{Kind: engine.EvPhase, Tick: 3, Swap: swap, Phase: phase, Deadline: deadline})
		}
	}
	mk(1, "swap-000001", "reveal", 1000) // reveal ⇒ refund, budget notwithstanding
	mk(2, "swap-000002", "escrow", 119)  // 119-100 < 2Δ=20 ⇒ refund
	mk(3, "swap-000003", "escrow", 1000) // plenty of budget ⇒ resume
	mk(4, "swap-000004", "", 0)          // never started ⇒ resume

	rs, resumed, refunded := st.Resolve(100, 10)
	if resumed != 2 || refunded != 2 {
		t.Fatalf("Resolve: %d resumed, %d refunded; want 2, 2", resumed, refunded)
	}
	byID := map[engine.OrderID]engine.RecoveredOrder{}
	for _, o := range rs.Orders {
		byID[o.ID] = o
	}
	for _, id := range []engine.OrderID{1, 2} {
		o := byID[id]
		if o.Status != engine.StatusSettled || o.Class != outcome.NoDeal || o.SettledTick != 100 {
			t.Errorf("order %d: %+v, want refunded (settled NoDeal at tick 100)", id, o)
		}
	}
	for _, id := range []engine.OrderID{3, 4} {
		if o := byID[id]; o.Status != engine.StatusPending || o.Swap != "" {
			t.Errorf("order %d: %+v, want resumed (pending, no swap)", id, o)
		}
	}
	if rs.NextSwap != 4 {
		t.Errorf("NextSwap = %d, want 4", rs.NextSwap)
	}
}
