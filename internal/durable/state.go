// Package durable gives the clearing engine crash durability: an
// append-only, checksummed, segment-rotating write-ahead log of engine
// events, periodic snapshots that truncate the log, and a Recover path
// that folds snapshot-plus-tail back into a running engine — resuming or
// refunding every swap that was in flight at the crash.
//
// The division of labor with internal/engine: the engine emits Events
// (engine.Store interface) and knows how to resurrect itself from an
// engine.RecoveredState; this package owns everything in between — disk
// framing, torn-tail tolerance, the order-insensitive fold, and the
// resume-vs-refund policy.
package durable

import (
	"sort"
	"strconv"
	"strings"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// State is the fold of a WAL event stream: everything recovery needs,
// keyed so that folding is insensitive to the append interleaving of
// events from different engine goroutines. It is the snapshot payload,
// so every field is JSON-serializable.
//
// Order-insensitivity is load-bearing: worker-side events carry virtual
// tick stamps (a pure function of the schedule) but their append ORDER
// races across swaps, and a cut-tick filter can drop events from the
// middle of the file. Each apply therefore only ever moves an order or
// swap forward in a rank order (pending < cleared < terminal;
// start < escrow < reveal) and resolves asset-ownership conflicts by
// (tick, swap) recency — never by file position.
type State struct {
	// Identities maps party → ed25519 seed.
	Identities map[string][]byte `json:"identities,omitempty"`
	// Assets maps "chain/asset" → minted asset and its current owner.
	Assets map[string]*AssetState `json:"assets,omitempty"`
	// Orders maps order ID → recovered order state.
	Orders map[engine.OrderID]*OrderState `json:"orders,omitempty"`
	// Swaps maps swap tag → in-flight swap progress.
	Swaps map[string]*SwapState `json:"swaps,omitempty"`
	// Shed is the cumulative pre-intake shed count.
	Shed int `json:"shed,omitempty"`
	// Reverts is the cumulative commitment-model reorg revert count — a
	// commutative counter (order-insensitive by construction), kept so a
	// recovered run's report still shows how reorg-disturbed the
	// pre-crash history was.
	Reverts int `json:"reverts,omitempty"`
	// MaxTick is the largest event tick folded — the tick recovery
	// resumes at when no explicit cut is given.
	MaxTick vtime.Ticks `json:"max_tick"`
	// Events counts folded events (snapshot folds carry their count
	// forward), reported as RecoveryStats.Replayed.
	Events int `json:"events"`
}

// AssetState is one minted asset and its most recently logged owner.
type AssetState struct {
	Chain  string        `json:"chain"`
	Asset  chain.AssetID `json:"asset"`
	Amount uint64        `json:"amount"`
	// Owner is a party ID, or an "escrow:<swap>" pseudo-party for assets
	// stranded in contract escrow by a completed-but-sabotaged swap.
	Owner string `json:"owner"`
	// OwnerTick/OwnerSwap order competing ownership updates: the greater
	// (tick, swap) pair wins, independent of file position.
	OwnerTick vtime.Ticks `json:"owner_tick"`
	OwnerSwap string      `json:"owner_swap,omitempty"`
}

// OrderState is one order's folded lifecycle.
type OrderState struct {
	Offer         core.Offer  `json:"offer"`
	SubmittedTick vtime.Ticks `json:"submitted_tick"`
	// Status is "pending", "cleared", "settled", or "rejected".
	Status      string      `json:"status"`
	Reason      string      `json:"reason,omitempty"`
	Class       int         `json:"class,omitempty"`
	Swap        string      `json:"swap,omitempty"`
	Deviant     string      `json:"deviant,omitempty"`
	SettledTick vtime.Ticks `json:"settled_tick,omitempty"`
}

// SwapState is one dispatched swap's folded progress: which orders it
// holds and how far its protocol run got before the log ends.
type SwapState struct {
	Orders []engine.OrderID `json:"orders"`
	// Phase is the highest-ranked logged phase: "" (dispatched only),
	// "start", "escrow", or "reveal".
	Phase string `json:"phase,omitempty"`
	// Deadline is the swap's outermost timelock (max over parties), the
	// budget the refund rule checks.
	Deadline vtime.Ticks `json:"deadline,omitempty"`
	// Prepared marks an AC3 prepare record (cross-shard coordinator:
	// every involved asset reserved, commit not yet logged); Spans is
	// the number of shards the swap's assets live on. Prepared without a
	// commit (EvCleared) means the orders are still "pending" in the
	// fold and resume normally — the in-memory reservations died with
	// the crash, which is the refund of the prepare.
	Prepared bool `json:"prepared,omitempty"`
	Spans    int  `json:"spans,omitempty"`
}

// NewState returns an empty fold.
func NewState() *State {
	return &State{
		Identities: make(map[string][]byte),
		Assets:     make(map[string]*AssetState),
		Orders:     make(map[engine.OrderID]*OrderState),
		Swaps:      make(map[string]*SwapState),
	}
}

// statusRank orders the order lifecycle; apply never moves backwards.
func statusRank(s string) int {
	switch s {
	case "cleared":
		return 1
	case "settled", "rejected":
		return 2
	default: // "", "pending"
		return 0
	}
}

// phaseRank orders swap phases; apply never moves backwards.
func phaseRank(p string) int {
	switch p {
	case "start":
		return 1
	case "escrow":
		return 2
	case "reveal":
		return 3
	default:
		return 0
	}
}

func (s *State) order(id engine.OrderID) *OrderState {
	o := s.Orders[id]
	if o == nil {
		o = &OrderState{Status: "pending"}
		s.Orders[id] = o
	}
	return o
}

func (s *State) swap(tag string) *SwapState {
	sw := s.Swaps[tag]
	if sw == nil {
		sw = &SwapState{}
		s.Swaps[tag] = sw
	}
	return sw
}

// Apply folds one event into the state.
func (s *State) Apply(ev engine.Event) {
	s.Events++
	if ev.Tick > s.MaxTick {
		s.MaxTick = ev.Tick
	}
	switch ev.Kind {
	case engine.EvIdentity:
		if _, ok := s.Identities[ev.Party]; !ok {
			s.Identities[ev.Party] = append([]byte(nil), ev.Seed...)
		}
	case engine.EvMinted:
		key := ev.Chain + "/" + string(ev.Asset)
		if s.Assets[key] == nil {
			s.Assets[key] = &AssetState{
				Chain: ev.Chain, Asset: ev.Asset, Amount: ev.Amount,
				Owner: ev.Party, OwnerTick: ev.Tick,
			}
		}
	case engine.EvBooked:
		o := s.order(ev.Order)
		if ev.Offer != nil {
			o.Offer = *ev.Offer
		}
		o.SubmittedTick = ev.Tick
	case engine.EvCleared:
		sw := s.swap(ev.Swap)
		sw.Orders = append([]engine.OrderID(nil), ev.Orders...)
		for _, id := range ev.Orders {
			o := s.order(id)
			if statusRank(o.Status) < statusRank("cleared") {
				o.Status = "cleared"
				o.Swap = ev.Swap
			}
		}
	case engine.EvPrepared:
		sw := s.swap(ev.Swap)
		sw.Prepared = true
		if ev.Count > sw.Spans {
			sw.Spans = ev.Count
		}
	case engine.EvReserved:
		// Reservations are engine-lifetime state: a recovered engine
		// rebuilds them when resumed orders re-clear. Nothing to fold.
	case engine.EvReleased:
		if a := s.Assets[ev.Chain+"/"+string(ev.Asset)]; a != nil {
			if ev.Tick > a.OwnerTick || (ev.Tick == a.OwnerTick && ev.Swap > a.OwnerSwap) {
				a.Owner = ev.Party
				a.OwnerTick = ev.Tick
				a.OwnerSwap = ev.Swap
			}
		}
	case engine.EvPhase:
		sw := s.swap(ev.Swap)
		if phaseRank(ev.Phase) > phaseRank(sw.Phase) {
			sw.Phase = ev.Phase
		}
		if ev.Deadline > sw.Deadline {
			sw.Deadline = ev.Deadline
		}
	case engine.EvSettled:
		o := s.order(ev.Order)
		o.Status = "settled"
		o.Class = ev.Class
		o.Swap = ev.Swap
		o.Deviant = ev.Deviant
		o.SettledTick = ev.Tick
	case engine.EvRejected:
		o := s.order(ev.Order)
		if statusRank(o.Status) < statusRank("rejected") {
			o.Status = "rejected"
			o.Reason = ev.Reason
			o.SettledTick = ev.Tick
		}
	case engine.EvShed:
		s.Shed += ev.Count
	case engine.EvReverted:
		// A chain reorg rolled back one of the swap's records. The run
		// re-settled or refunded on its own (those outcomes have their
		// own events); only the disturbance count is worth folding, and a
		// swap that was mid-reorg at the crash resolves exactly like any
		// other in-flight swap.
		s.Reverts++
	case engine.EvKilled:
		// The kill marker carries the cut tick for whoever reads the log;
		// the fold itself has nothing to record.
	}
}

// Resolve decides the fate of every order that was in flight (cleared
// but not terminal) when the log ends, mutating the state in place and
// returning the engine-shaped recovered state plus the resumed/refunded
// split. recTick is the tick the recovered engine resumes at; delta is
// the engine's Δ.
//
// The rule, per swap: a logged "reveal" phase means a secret may already
// be circulating — the conservative move is to refund, never to re-run.
// Otherwise the swap is safe to retry iff its timelock budget still
// clears 2Δ at the recovery tick; a swap that never logged a phase has
// no deadline on record and simply re-clears. Refunded orders settle
// NoDeal at recTick (every conforming party keeps its asset — the
// paper's status-quo ending); resumed orders return to the pending book
// and re-clear into fresh swaps.
func (s *State) Resolve(recTick vtime.Ticks, delta vtime.Duration) (engine.RecoveredState, int, int) {
	resumed, refunded := 0, 0
	for _, o := range s.Orders {
		if o.Status != "cleared" {
			continue
		}
		refund := false
		if sw := s.Swaps[o.Swap]; sw != nil {
			if phaseRank(sw.Phase) >= phaseRank("reveal") {
				refund = true
			} else if sw.Deadline > 0 && sw.Deadline-recTick < vtime.Ticks(2*delta) {
				refund = true
			}
		}
		if refund {
			o.Status = "settled"
			o.Class = int(outcome.NoDeal)
			o.SettledTick = recTick
			refunded++
		} else {
			o.Status = "pending"
			o.Swap = ""
			o.Deviant = ""
			resumed++
		}
	}

	rs := engine.RecoveredState{Tick: recTick, Shed: s.Shed}
	for p := range s.Identities {
		rs.Identities = append(rs.Identities, engine.RecoveredIdentity{
			Party: p, Seed: s.Identities[p],
		})
	}
	sort.Slice(rs.Identities, func(i, j int) bool {
		return rs.Identities[i].Party < rs.Identities[j].Party
	})
	keys := make([]string, 0, len(s.Assets))
	for k := range s.Assets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := s.Assets[k]
		rs.Assets = append(rs.Assets, engine.RecoveredAsset{
			Chain: a.Chain, Asset: a.Asset, Amount: a.Amount, Owner: a.Owner,
		})
	}
	ids := make([]engine.OrderID, 0, len(s.Orders))
	for id := range s.Orders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := s.Orders[id]
		ro := engine.RecoveredOrder{
			ID:            id,
			Offer:         o.Offer,
			Reason:        o.Reason,
			Class:         outcome.Class(o.Class),
			Swap:          o.Swap,
			Deviant:       o.Deviant,
			SubmittedTick: o.SubmittedTick,
			SettledTick:   o.SettledTick,
		}
		switch o.Status {
		case "settled":
			ro.Status = engine.StatusSettled
		case "rejected":
			ro.Status = engine.StatusRejected
		default:
			ro.Status = engine.StatusPending
		}
		rs.Orders = append(rs.Orders, ro)
		if uint64(id) > rs.NextOrder {
			rs.NextOrder = uint64(id)
		}
	}
	for tag := range s.Swaps {
		if n, ok := parseSwapTag(tag); ok && n > rs.NextSwap {
			rs.NextSwap = n
		}
	}
	return rs, resumed, refunded
}

// parseSwapTag extracts N from the engine's "swap-%06d" tags.
func parseSwapTag(tag string) (uint64, bool) {
	rest, ok := strings.CutPrefix(tag, "swap-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
