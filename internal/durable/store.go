package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Options parameterizes a Store.
type Options struct {
	// Dir is the store directory (created if missing).
	Dir string
	// SegmentBytes rotates the active segment when it grows past this
	// size (default 1 MiB).
	SegmentBytes int
	// SnapshotEvery, when positive, writes a snapshot and truncates the
	// log every that-many appended events. 0 disables automatic
	// snapshots — the crash-scenario configuration, where a cut-tick
	// replay needs the raw event stream (a snapshot bakes in every event
	// it covers, including ones stamped after the cut).
	SnapshotEvery int
}

// Store is the disk-backed engine.Store: an append-only checksummed WAL
// with segment rotation and snapshot truncation, plus the live fold of
// everything appended so far. Safe for concurrent Append from the
// engine's intake, clearing, and worker goroutines.
//
// Append never returns an error (the engine has no useful response to a
// failed append mid-flight); the first write failure latches, later
// appends become no-ops, and Err/Close surface it.
type Store struct {
	mu   sync.Mutex
	opts Options

	seg     *os.File // active segment
	segIdx  int      // its index (wal-%08d.seg)
	segSize int      // bytes written to it

	// base is the fold as of the last snapshot (empty fold if none);
	// tail is every event appended since. live = base ⊕ tail, kept
	// current on each append. ResolvedState re-folds base ⊕ filter(tail)
	// when a cut tick applies.
	base    *State
	tail    []engine.Event
	live    *State
	hasData bool

	sinceSnap int
	err       error
	closed    bool
}

// Open opens (or initializes) a store directory: the snapshot is loaded
// if present, every segment is parsed — torn tail tolerated only at the
// very end — and the fold is rebuilt. The returned store is ready to be
// handed to an engine as Config.Store, or resolved for recovery.
func Open(opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{opts: opts}

	base, err := readSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}
	if base != nil {
		s.hasData = true
	} else {
		base = NewState()
	}
	s.base = base

	names, err := segmentNames(opts.Dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		data, err := os.ReadFile(filepath.Join(opts.Dir, name))
		if err != nil {
			return nil, err
		}
		frames, err := parseSegment(name, data, i == len(names)-1)
		if err != nil {
			return nil, err
		}
		for _, payload := range frames {
			var ev engine.Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				return nil, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, name, err)
			}
			s.tail = append(s.tail, ev)
		}
		if len(frames) > 0 {
			s.hasData = true
		}
	}
	s.live = cloneState(s.base)
	for _, ev := range s.tail {
		s.live.Apply(ev)
	}

	// Resume appending to a fresh segment after the existing ones: a
	// possibly-torn tail segment is never appended to, so its torn frame
	// stays final (where it is legal) forever.
	next := 0
	if n := len(names); n > 0 {
		last, _ := segmentIndex(names[n-1])
		next = last + 1
	}
	if err := s.openSegment(next); err != nil {
		return nil, err
	}
	return s, nil
}

// HasData reports whether the directory held any snapshot or log data
// when opened — the "is this a restart?" test.
func (s *Store) HasData() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasData
}

// openSegment starts segment idx as the active one. Caller holds s.mu
// (or is still single-threaded in Open).
func (s *Store) openSegment(idx int) error {
	f, err := os.OpenFile(
		filepath.Join(s.opts.Dir, fmt.Sprintf("wal-%08d.seg", idx)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		return err
	}
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = f
	s.segIdx = idx
	s.segSize = len(walMagic)
	return nil
}

// Append implements engine.Store: frame the event, write it, rotate the
// segment if full, and fold it into the live state. After Close (the
// crash model's "power is off") or a latched error it is a no-op.
func (s *Store) Append(ev engine.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		s.err = fmt.Errorf("durable: encoding event: %w", err)
		return
	}
	frame := appendFrame(nil, payload)
	if _, err := s.seg.Write(frame); err != nil {
		s.err = err
		return
	}
	s.segSize += len(frame)
	s.tail = append(s.tail, ev)
	s.live.Apply(ev)
	s.hasData = true
	s.sinceSnap++

	if s.segSize >= s.opts.SegmentBytes {
		if err := s.openSegment(s.segIdx + 1); err != nil {
			s.err = err
			return
		}
	}
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			s.err = err
		}
	}
}

// Snapshot forces a snapshot + log truncation now.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	if s.err != nil {
		return s.err
	}
	return s.snapshotLocked()
}

// snapshotLocked persists the live fold as the new snapshot, deletes
// every sealed segment, and starts a fresh one. Caller holds s.mu.
func (s *Store) snapshotLocked() error {
	if err := writeSnapshot(s.opts.Dir, s.live); err != nil {
		return err
	}
	names, err := segmentNames(s.opts.Dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := os.Remove(filepath.Join(s.opts.Dir, name)); err != nil {
			return err
		}
	}
	if err := s.openSegment(s.segIdx + 1); err != nil {
		return err
	}
	s.base = cloneState(s.live)
	s.tail = nil
	s.sinceSnap = 0
	return nil
}

// ResolvedState returns an independent fold of the log, filtered to
// events stamped at or before cut when cut > 0. With a cut, the base
// fold must be snapshot-free history (the crash-scenario mode — see
// Options.SnapshotEvery); a snapshot may already bake in post-cut
// events, which is unrecoverable, so that combination errors.
func (s *Store) ResolvedState(cut vtime.Ticks) (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cut <= 0 {
		return cloneState(s.live), nil
	}
	if s.base.Events > 0 && s.base.MaxTick > cut {
		return nil, fmt.Errorf("durable: cut tick %d predates snapshot (max tick %d): cut replay needs a snapshot-free log", cut, s.base.MaxTick)
	}
	st := cloneState(s.base)
	for _, ev := range s.tail {
		if ev.Tick <= cut {
			st.Apply(ev)
		}
	}
	return st, nil
}

// AttachResolved replaces the store's contents with the post-resolution
// state: write it as the new snapshot, truncate every segment, and make
// it the live fold. This is the attached-recovery step that makes
// resolution idempotent — a second crash recovers from the resolved
// snapshot instead of re-deciding (and double-refunding) the same
// in-flight swaps.
func (s *Store) AttachResolved(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	if s.err != nil {
		return s.err
	}
	s.live = cloneState(st)
	return s.snapshotLocked()
}

// Err reports the latched append error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close syncs and closes the active segment and latches the store shut:
// every later Append is silently dropped, which is exactly the crash
// model (a killed process's unflushed appends never happened). Returns
// the first append error if one was latched.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil && s.err == nil {
			s.err = err
		}
		if err := s.seg.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.seg = nil
	}
	return s.err
}

// cloneState deep-copies a fold via its JSON form — the same round-trip
// a snapshot would take, so a clone can never diverge from what a
// restart would read back.
func cloneState(st *State) *State {
	data, err := json.Marshal(st)
	if err != nil {
		panic(fmt.Sprintf("durable: state not serializable: %v", err))
	}
	out := NewState()
	if err := json.Unmarshal(data, out); err != nil {
		panic(fmt.Sprintf("durable: state round-trip: %v", err))
	}
	if out.Identities == nil {
		out.Identities = make(map[string][]byte)
	}
	if out.Assets == nil {
		out.Assets = make(map[string]*AssetState)
	}
	if out.Orders == nil {
		out.Orders = make(map[engine.OrderID]*OrderState)
	}
	if out.Swaps == nil {
		out.Swaps = make(map[string]*SwapState)
	}
	return out
}

// segmentNames lists the directory's segment files in index order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := segmentIndex(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// segmentIndex parses wal-%08d.seg names; ok is false for other files.
func segmentIndex(name string) (int, bool) {
	var idx int
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &idx); err != nil {
		return 0, false
	}
	if fmt.Sprintf("wal-%08d.seg", idx) != name {
		return 0, false
	}
	return idx, true
}
