// Package pebble implements the two pebble games of Section 4.4, the
// combinatorial skeleton of the protocol's timing analysis:
//
//   - the lazy game models Phase One (contract deployment): pebbles start
//     on the arcs leaving each leader, and a vertex pebbles its leaving
//     arcs once every entering arc is pebbled;
//   - the eager game models each secret's Phase Two dissemination on the
//     transpose digraph: a single start vertex is pebbled, and a vertex
//     pebbles its leaving arcs once any entering arc is pebbled.
//
// Lemmas 4.1–4.3 state that both games pebble every arc within diam(D)
// rounds; the experiments verify that and cross-check the protocol's
// phase timing against these reference dynamics.
package pebble

import "github.com/go-atomicswap/atomicswap/internal/digraph"

// Result reports a completed pebble game.
type Result struct {
	// Round[arcID] is the round the arc was pebbled (leaders' initial
	// placement is round 0), or -1 if it never was.
	Round []int
	// Rounds is the number of rounds until no more pebbles could be
	// placed (the maximum over Round when complete).
	Rounds int
	// Complete reports whether every arc was pebbled.
	Complete bool
}

// Lazy plays the lazy pebble game on d with the given leaders. Per the
// paper's Phase One: round 0 pebbles every arc leaving a leader; in each
// later round, every vertex whose entering arcs are all pebbled (and which
// has an unpebbled leaving arc) pebbles its leaving arcs.
func Lazy(d *digraph.Digraph, leaders []digraph.Vertex) Result {
	round := make([]int, d.NumArcs())
	for i := range round {
		round[i] = -1
	}
	isLeader := make(map[digraph.Vertex]bool, len(leaders))
	for _, l := range leaders {
		isLeader[l] = true
	}
	for _, l := range leaders {
		for _, id := range d.Out(l) {
			round[id] = 0
		}
	}
	cur := 0
	for {
		var newly []int
		for v := 0; v < d.NumVertices(); v++ {
			vx := digraph.Vertex(v)
			if isLeader[vx] {
				continue // leaders placed in round 0 and never re-place
			}
			ready := true
			for _, id := range d.In(vx) {
				if round[id] < 0 || round[id] > cur {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			for _, id := range d.Out(vx) {
				if round[id] < 0 {
					newly = append(newly, id)
				}
			}
		}
		if len(newly) == 0 {
			break
		}
		cur++
		for _, id := range newly {
			round[id] = cur
		}
	}
	return finish(round, cur)
}

// Eager plays the eager pebble game on d starting from z: round 0 pebbles
// the arcs leaving z; in each later round, every vertex with any pebbled
// entering arc pebbles its leaving arcs. (The paper starts with a pebble
// "on z"; pebbling z's leaving arcs in round 0 is the equivalent arc-level
// formulation.)
func Eager(d *digraph.Digraph, z digraph.Vertex) Result {
	round := make([]int, d.NumArcs())
	for i := range round {
		round[i] = -1
	}
	for _, id := range d.Out(z) {
		round[id] = 0
	}
	cur := 0
	for {
		var newly []int
		for v := 0; v < d.NumVertices(); v++ {
			vx := digraph.Vertex(v)
			if vx == z {
				continue
			}
			ready := false
			for _, id := range d.In(vx) {
				if round[id] >= 0 && round[id] <= cur {
					ready = true
					break
				}
			}
			if !ready {
				continue
			}
			for _, id := range d.Out(vx) {
				if round[id] < 0 {
					newly = append(newly, id)
				}
			}
		}
		if len(newly) == 0 {
			break
		}
		cur++
		for _, id := range newly {
			round[id] = cur
		}
	}
	return finish(round, cur)
}

func finish(round []int, rounds int) Result {
	complete := true
	for _, r := range round {
		if r < 0 {
			complete = false
			break
		}
	}
	return Result{Round: round, Rounds: rounds, Complete: complete}
}
