package pebble

import (
	"testing"
	"testing/quick"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

func TestLazyThreeCycle(t *testing.T) {
	d := graphgen.ThreeWay()
	res := Lazy(d, []digraph.Vertex{0})
	if !res.Complete {
		t.Fatal("lazy game must complete on a strongly connected digraph with an FVS")
	}
	// Alice pebbles arc 0 in round 0; Bob arc 1 in round 1; Carol arc 2 in
	// round 2 — exactly Figure 1's deployment order.
	want := []int{0, 1, 2}
	for id, r := range want {
		if res.Round[id] != r {
			t.Errorf("arc %d pebbled in round %d, want %d", id, res.Round[id], r)
		}
	}
	if res.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2 = diam", res.Rounds)
	}
}

func TestLazyStallsWithoutFVS(t *testing.T) {
	// Leaders {A} on the two-leader triangle: the B<->C 2-cycle never
	// becomes ready, so the game stops incomplete (Lemma 4.1's premise is
	// violated).
	d := graphgen.TwoLeaderTriangle()
	res := Lazy(d, []digraph.Vertex{0})
	if res.Complete {
		t.Fatal("game should stall when leaders are not an FVS")
	}
}

func TestLazyTwoLeaders(t *testing.T) {
	d := graphgen.TwoLeaderTriangle()
	res := Lazy(d, []digraph.Vertex{0, 1})
	if !res.Complete {
		t.Fatal("two leaders form an FVS; game must complete")
	}
	diam, _ := d.Diameter()
	if res.Rounds > diam {
		t.Errorf("Rounds = %d exceeds diam = %d (Lemma 4.3)", res.Rounds, diam)
	}
}

func TestEagerThreeCycle(t *testing.T) {
	// Phase Two disseminates on the transpose; eager from Alice on D^T
	// reaches every arc.
	d := graphgen.ThreeWay().Transpose()
	res := Eager(d, 0)
	if !res.Complete {
		t.Fatal("eager game must complete on a strongly connected digraph")
	}
	diam, _ := d.Diameter()
	if res.Rounds > diam {
		t.Errorf("Rounds = %d exceeds diam = %d (Lemma 4.3)", res.Rounds, diam)
	}
}

func TestEagerNotStronglyConnected(t *testing.T) {
	// From the X side of a one-way X->Y graph the game completes; from Y it
	// cannot reach X (Lemma 4.2 needs strong connectivity).
	d := graphgen.NotStronglyConnected(3, 3)
	if res := Eager(d, 0); !res.Complete {
		t.Error("from X every arc is reachable")
	}
	if res := Eager(d, 3); res.Complete {
		t.Error("from Y the X arcs must stay unpebbled")
	}
}

// TestLemmas41to43 is the property-test form of the paper's pebble lemmas:
// on random strongly connected digraphs with an exact-minimum FVS as
// leaders, both games pebble every arc within diam(D) rounds.
func TestLemmas41to43(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(seed%7+7)%7 // 3..9 vertexes
		d := graphgen.RandomStronglyConnected(n, 0.3, seed)
		leaders := d.ExactMinFVS()
		diam, _ := d.Diameter()

		lazy := Lazy(d, leaders)
		if !lazy.Complete || lazy.Rounds > diam {
			return false
		}
		// Eager on the transpose from every possible leader.
		dt := d.Transpose()
		for _, l := range leaders {
			eager := Eager(dt, l)
			if !eager.Complete || eager.Rounds > diam {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLazyRoundsMonotone(t *testing.T) {
	// A vertex's leaving arcs are pebbled strictly after its entering arcs
	// unless it is a leader.
	d := graphgen.Cycle(6)
	res := Lazy(d, []digraph.Vertex{0})
	if !res.Complete {
		t.Fatal("cycle with leader must complete")
	}
	for v := 1; v < 6; v++ {
		in := d.In(digraph.Vertex(v))
		out := d.Out(digraph.Vertex(v))
		if res.Round[out[0]] != res.Round[in[0]]+1 {
			t.Errorf("vertex %d: out round %d, in round %d; want out = in+1",
				v, res.Round[out[0]], res.Round[in[0]])
		}
	}
}

func TestResultRoundCopySemantics(t *testing.T) {
	d := graphgen.Cycle(3)
	res := Lazy(d, []digraph.Vertex{0})
	if len(res.Round) != d.NumArcs() {
		t.Errorf("Round has %d entries, want %d", len(res.Round), d.NumArcs())
	}
}
