package chain

import (
	"fmt"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// This file is the registry's commitment-model and per-chain-probe
// surface: a factory that assigns each chain its model at creation, one
// shared settlement pump that drains every modeled chain in canonical
// order, and chain-keyed delivery probes for heterogeneous-Δ adaptation.

// SetCommitmentModels installs a factory deciding each chain's
// commitment model: it is called once per chain at creation, and a nil
// return leaves that chain Instant. It must be called before any chain
// is created (models must be installed before a chain's first record),
// and the registry's clock must be a scheduler so settlement passes can
// be pumped at finalize/revert ticks.
func (r *Registry) SetCommitmentModels(f func(name string) CommitmentModel) error {
	if f == nil {
		return nil
	}
	if _, ok := r.clock.(tailScheduler); !ok {
		if _, ok := r.clock.(timerScheduler); !ok {
			return fmt.Errorf("chain: commitment models need a scheduling clock")
		}
	}
	if n := len(r.all()); n > 0 {
		return fmt.Errorf("chain: commitment models must be installed before any chain is created (%d exist)", n)
	}
	r.modelMu.Lock()
	defer r.modelMu.Unlock()
	r.modelFn = f
	if r.pumpAt == nil {
		r.pumpAt = make(map[vtime.Ticks]struct{})
	}
	return nil
}

// applyCreationHooks runs the model factory and the per-chain probe
// factory for a chain being created. Called with the chain's registry
// shard locked, before the chain is visible; neither hook path takes a
// shard lock, so the ordering is clean.
func (r *Registry) applyCreationHooks(c *Chain, name string) {
	r.modelMu.Lock()
	modelFn := r.modelFn
	r.modelMu.Unlock()
	if modelFn != nil {
		if m := modelFn(name); m != nil {
			if err := c.SetCommitmentModel(m, r.scheduleDue); err != nil {
				// Unreachable in practice: the chain is brand new (no
				// records) and onDue is non-nil. Fail loudly, not silently.
				panic(err)
			}
			if _, instant := m.(Instant); !instant {
				r.modelMu.Lock()
				// Insert sorted by name: the pump drains in canonical order
				// so downstream scheduler insertions are replay-stable.
				i := sort.Search(len(r.modeled), func(i int) bool {
					return r.modeled[i].Name() >= name
				})
				r.modeled = append(r.modeled, nil)
				copy(r.modeled[i+1:], r.modeled[i:])
				r.modeled[i] = c
				r.modelMu.Unlock()
			}
		}
	}
	r.chainProbeMu.Lock()
	if r.chainProbeFn != nil {
		if p := r.chainProbeFn(name); p != nil {
			if r.chainProbes == nil {
				r.chainProbes = make(map[string]DeliveryProbe)
			}
			r.chainProbes[name] = p
		}
	}
	r.chainProbeMu.Unlock()
}

// scheduleDue arms one settlement pass at tick t. All modeled chains
// share this pump: it runs at the commitment tail level (above protocol
// dispatch, shard clearing, the escalation sweep, and the coordinator)
// on a single stripe, and drains every modeled chain in sorted-name
// order — so the finalize/revert notifications of a tick, and the
// scheduler insertions they cause, occur in one deterministic sequence
// regardless of how the tick's appends interleaved across stripes.
func (r *Registry) scheduleDue(t vtime.Ticks) {
	r.modelMu.Lock()
	if r.pumpAt == nil {
		r.pumpAt = make(map[vtime.Ticks]struct{})
	}
	if _, dup := r.pumpAt[t]; dup {
		r.modelMu.Unlock()
		return
	}
	r.pumpAt[t] = struct{}{}
	r.modelMu.Unlock()
	run := func() {
		r.modelMu.Lock()
		delete(r.pumpAt, t)
		chains := append([]*Chain(nil), r.modeled...)
		r.modelMu.Unlock()
		now := r.clock.Now()
		if now < t {
			now = t
		}
		for _, c := range chains {
			c.SettleCommitments(now)
		}
	}
	if ts, ok := r.clock.(tailScheduler); ok {
		ts.AtTailN(t, commitLevel, 0, run)
		return
	}
	if s, ok := r.clock.(timerScheduler); ok {
		s.At(t, run)
	}
}

// SettleAll forces a settlement pass over every modeled chain at the
// clock's current tick (tests and shutdown sweeps).
func (r *Registry) SettleAll() {
	r.modelMu.Lock()
	chains := append([]*Chain(nil), r.modeled...)
	r.modelMu.Unlock()
	now := r.clock.Now()
	for _, c := range chains {
		c.SettleCommitments(now)
	}
}

// ModeledChains returns the names of chains carrying a non-Instant
// commitment model, in canonical (sorted) order.
func (r *Registry) ModeledChains() []string {
	r.modelMu.Lock()
	names := make([]string, len(r.modeled))
	for i, c := range r.modeled {
		names[i] = c.Name()
	}
	r.modelMu.Unlock()
	return names
}

// SetChainProbeFactory installs a factory building one delivery probe
// per chain. It applies to chains created later and (immediately) to
// chains that already exist; a nil return skips that chain.
func (r *Registry) SetChainProbeFactory(f func(name string) DeliveryProbe) {
	r.chainProbeMu.Lock()
	r.chainProbeFn = f
	r.chainProbeMu.Unlock()
	if f == nil {
		return
	}
	for _, c := range r.all() {
		name := c.Name()
		r.chainProbeMu.Lock()
		if _, exists := r.chainProbes[name]; !exists {
			if p := f(name); p != nil {
				if r.chainProbes == nil {
					r.chainProbes = make(map[string]DeliveryProbe)
				}
				r.chainProbes[name] = p
			}
		}
		r.chainProbeMu.Unlock()
	}
}

// SetChainDeliveryProbe installs (or replaces) the probe for one chain.
func (r *Registry) SetChainDeliveryProbe(name string, p DeliveryProbe) {
	if p == nil {
		return
	}
	r.chainProbeMu.Lock()
	if r.chainProbes == nil {
		r.chainProbes = make(map[string]DeliveryProbe)
	}
	r.chainProbes[name] = p
	r.chainProbeMu.Unlock()
}

// ChainDeliveryProbe returns the named chain's probe, or nil. Feeding a
// per-chain probe is in addition to — never instead of — the global one.
func (r *Registry) ChainDeliveryProbe(name string) DeliveryProbe {
	r.chainProbeMu.RLock()
	p := r.chainProbes[name]
	r.chainProbeMu.RUnlock()
	return p
}

// ChainProbeNames returns the sorted names of chains with a probe.
func (r *Registry) ChainProbeNames() []string {
	r.chainProbeMu.RLock()
	names := make([]string, 0, len(r.chainProbes))
	for name := range r.chainProbes {
		names = append(names, name)
	}
	r.chainProbeMu.RUnlock()
	sort.Strings(names)
	return names
}
