package chain

import (
	"errors"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// fakeContract is a minimal contract for exercising the chain: method
// "take" transfers the asset to the configured target, "noop" records an
// invocation, "fail" always errors.
type fakeContract struct {
	id     ContractID
	party  PartyID
	asset  AssetID
	size   int
	target Owner
	calls  []Call
}

func (f *fakeContract) ContractID() ContractID { return f.id }
func (f *fakeContract) Party() PartyID         { return f.party }
func (f *fakeContract) AssetID() AssetID       { return f.asset }
func (f *fakeContract) StorageSize() int       { return f.size }

var errFake = errors.New("fake failure")

func (f *fakeContract) Invoke(call Call) (Result, error) {
	f.calls = append(f.calls, call)
	switch call.Method {
	case "take":
		t := f.target
		return Result{Transfer: &t, Note: "taken", Event: call.Args}, nil
	case "noop":
		return Result{Note: "noop"}, nil
	default:
		return Result{}, errFake
	}
}

type fixedClock vtime.Ticks

func (f fixedClock) Now() vtime.Ticks { return vtime.Ticks(f) }

func newTestChain() *Chain { return New("test", fixedClock(100)) }

func TestRegisterAndOwnership(t *testing.T) {
	c := newTestChain()
	if err := c.RegisterAsset(Asset{ID: "coin", Amount: 5}, "alice"); err != nil {
		t.Fatalf("RegisterAsset: %v", err)
	}
	owner, ok := c.OwnerOf("coin")
	if !ok || owner != ByParty("alice") {
		t.Errorf("OwnerOf = (%v, %v), want alice", owner, ok)
	}
	if err := c.RegisterAsset(Asset{ID: "coin"}, "bob"); !errors.Is(err, ErrDuplicateAsset) {
		t.Errorf("duplicate register err = %v, want ErrDuplicateAsset", err)
	}
	if _, ok := c.Asset("coin"); !ok {
		t.Error("Asset(coin) should exist")
	}
	if _, ok := c.OwnerOf("ghost"); ok {
		t.Error("unregistered asset should have no owner")
	}
}

func TestPublishContractEscrows(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	fc := &fakeContract{id: "swap1", party: "alice", asset: "coin", size: 64, target: ByParty("bob")}
	if err := c.PublishContract("alice", fc); err != nil {
		t.Fatalf("PublishContract: %v", err)
	}
	owner, _ := c.OwnerOf("coin")
	if owner != ByEscrow("swap1") {
		t.Errorf("asset owner = %v, want escrow:swap1", owner)
	}
	if got, ok := c.Contract("swap1"); !ok || got != Contract(fc) {
		t.Error("Contract(swap1) lookup failed")
	}
	if c.StorageBytes() < 64 {
		t.Errorf("StorageBytes = %d, want at least the contract size", c.StorageBytes())
	}
}

func TestPublishContractRejections(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	tests := []struct {
		name     string
		sender   PartyID
		contract *fakeContract
		want     error
	}{
		{
			name:     "sender does not own asset",
			sender:   "bob",
			contract: &fakeContract{id: "x", party: "bob", asset: "coin"},
			want:     ErrNotOwner,
		},
		{
			name:     "contract names a different party",
			sender:   "alice",
			contract: &fakeContract{id: "x", party: "bob", asset: "coin"},
			want:     ErrNotOwner,
		},
		{
			name:     "unregistered asset",
			sender:   "alice",
			contract: &fakeContract{id: "x", party: "alice", asset: "ghost"},
			want:     ErrContractAssetGap,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := c.PublishContract(tt.sender, tt.contract); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}

	// Duplicate ID.
	ok := &fakeContract{id: "dup", party: "alice", asset: "coin"}
	if err := c.PublishContract("alice", ok); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	mustRegister(t, c, "coin2", "alice")
	dup := &fakeContract{id: "dup", party: "alice", asset: "coin2"}
	if err := c.PublishContract("alice", dup); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate publish err = %v, want ErrDuplicateID", err)
	}
}

func TestEscrowedAssetCannotBeReEscrowed(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	first := &fakeContract{id: "one", party: "alice", asset: "coin"}
	if err := c.PublishContract("alice", first); err != nil {
		t.Fatalf("publish: %v", err)
	}
	second := &fakeContract{id: "two", party: "alice", asset: "coin"}
	if err := c.PublishContract("alice", second); !errors.Is(err, ErrNotOwner) {
		t.Errorf("re-escrow err = %v, want ErrNotOwner", err)
	}
}

func TestInvokeTransfersAndCloses(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	fc := &fakeContract{id: "s", party: "alice", asset: "coin", target: ByParty("bob")}
	if err := c.PublishContract("alice", fc); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := c.Invoke("bob", "s", "take", "payload", 11); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	owner, _ := c.OwnerOf("coin")
	if owner != ByParty("bob") {
		t.Errorf("owner after take = %v, want bob", owner)
	}
	if !c.Closed("s") {
		t.Error("contract should be closed after transfer")
	}
	// Further invokes are rejected.
	if err := c.Invoke("bob", "s", "take", nil, 0); !errors.Is(err, ErrContractClosed) {
		t.Errorf("invoke on closed err = %v, want ErrContractClosed", err)
	}
	// The contract saw the chain clock, not a caller-supplied time.
	if fc.calls[0].Now != 100 {
		t.Errorf("contract saw now=%d, want chain clock 100", fc.calls[0].Now)
	}
}

func TestInvokeErrorsRevert(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	fc := &fakeContract{id: "s", party: "alice", asset: "coin"}
	if err := c.PublishContract("alice", fc); err != nil {
		t.Fatalf("publish: %v", err)
	}
	before := len(c.Records())
	storage := c.StorageBytes()
	if err := c.Invoke("bob", "s", "fail", nil, 99); !errors.Is(err, errFake) {
		t.Fatalf("Invoke err = %v, want errFake", err)
	}
	if len(c.Records()) != before {
		t.Error("failed invoke must not append records")
	}
	if c.StorageBytes() != storage {
		t.Error("failed invoke must not charge storage")
	}
	if err := c.Invoke("x", "ghost", "noop", nil, 0); !errors.Is(err, ErrUnknownContract) {
		t.Errorf("unknown contract err = %v, want ErrUnknownContract", err)
	}
}

func TestObserverNotifications(t *testing.T) {
	c := newTestChain()
	var notes []Notification
	c.SetObserver(func(n Notification) { notes = append(notes, n) })
	mustRegister(t, c, "coin", "alice")
	fc := &fakeContract{id: "s", party: "alice", asset: "coin", target: ByParty("bob")}
	if err := c.PublishContract("alice", fc); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := c.Invoke("bob", "s", "take", "the-hashkey", 3); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	kinds := make([]NoteKind, 0, len(notes))
	for _, n := range notes {
		kinds = append(kinds, n.Kind)
	}
	want := []NoteKind{NoteAssetRegistered, NoteContractPublished, NoteInvocation, NoteTransfer}
	if len(kinds) != len(want) {
		t.Fatalf("notifications = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("notification %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// The publish notification carries the contract; the invocation event
	// carries the call payload.
	if notes[1].Event != Contract(fc) {
		t.Error("publish notification should carry the contract")
	}
	if notes[2].Event != any("the-hashkey") {
		t.Errorf("invoke notification event = %v, want the call payload", notes[2].Event)
	}
}

func TestPublishData(t *testing.T) {
	c := newTestChain()
	var got []Notification
	c.SetObserver(func(n Notification) { got = append(got, n) })
	c.PublishData("market", "plan", []int{1, 2}, 42)
	if len(got) != 1 || got[0].Kind != NoteData {
		t.Fatalf("notifications = %+v, want one NoteData", got)
	}
	if c.StorageBytes() != 42 {
		t.Errorf("StorageBytes = %d, want 42", c.StorageBytes())
	}
}

func TestLedgerHashChain(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	c.PublishData("x", "note", nil, 1)
	if !c.VerifyLedger() {
		t.Error("fresh ledger should verify")
	}
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[1].PrevHash != recs[0].Hash {
		t.Error("records not hash-chained")
	}
	// Tampering with a copy must not affect the chain.
	recs[0].Note = "evil"
	if !c.VerifyLedger() {
		t.Error("Records() should return a defensive copy")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := newTestChain()
	mustRegister(t, c, "coin", "alice")
	snap := c.Snapshot()
	snap["coin"] = ByParty("mallory")
	owner, _ := c.OwnerOf("coin")
	if owner != ByParty("alice") {
		t.Error("Snapshot should be a copy")
	}
}

func TestOwnerString(t *testing.T) {
	if ByParty("a").String() != "party:a" {
		t.Error("party owner string")
	}
	if ByEscrow("c").String() != "escrow:c" {
		t.Error("escrow owner string")
	}
	if (Owner{}).String() != "owner(unset)" {
		t.Error("zero owner string")
	}
}

func TestNoteKindString(t *testing.T) {
	if NoteContractPublished.String() != "contract-published" {
		t.Error("NoteContractPublished name")
	}
	if NoteKind(99).String() != "note(99)" {
		t.Error("unknown kind fallback")
	}
}

func mustRegister(t *testing.T, c *Chain, id AssetID, owner PartyID) {
	t.Helper()
	if err := c.RegisterAsset(Asset{ID: id, Amount: 1}, owner); err != nil {
		t.Fatalf("RegisterAsset(%s): %v", id, err)
	}
}
