package chain

import (
	"testing"
)

func TestRegistryCreatesOnDemand(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	a := r.Chain("alpha")
	b := r.Chain("alpha")
	if a != b {
		t.Error("same name should return the same chain")
	}
	if a.Name() != "alpha" {
		t.Errorf("Name = %q, want alpha", a.Name())
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Chain(n)
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestTotalStorageBytes(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	r.Chain("a").PublishData("x", "d", nil, 10)
	r.Chain("b").PublishData("x", "d", nil, 32)
	if got := r.TotalStorageBytes(); got != 42 {
		t.Errorf("TotalStorageBytes = %d, want 42", got)
	}
}

func TestSetObserverAll(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	r.Chain("a")
	r.Chain("b")
	count := 0
	r.SetObserverAll(func(Notification) { count++ })
	r.Chain("a").PublishData("x", "", nil, 0)
	r.Chain("b").PublishData("x", "", nil, 0)
	if count != 2 {
		t.Errorf("observer fired %d times, want 2", count)
	}
}

func TestVerifyAllLedgers(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	r.Chain("a").PublishData("x", "", nil, 0)
	if !r.VerifyAllLedgers() {
		t.Error("fresh ledgers should verify")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	if err := r.Chain("a").RegisterAsset(Asset{ID: "coin"}, "alice"); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap["a"]["coin"] != ByParty("alice") {
		t.Errorf("snapshot = %v", snap)
	}
}
