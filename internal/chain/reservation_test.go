package chain

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func TestReserveLifecycle(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	if err := r.Chain("btc").RegisterAsset(Asset{ID: "utxo-1", Amount: 5}, "alice"); err != nil {
		t.Fatal(err)
	}

	if err := r.Reserve("btc", "utxo-1", "alice", "swap-1"); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	// Re-reserving under the same holder is idempotent.
	if err := r.Reserve("btc", "utxo-1", "alice", "swap-1"); err != nil {
		t.Fatalf("same-holder reserve: %v", err)
	}
	// A different swap must be refused.
	if err := r.Reserve("btc", "utxo-1", "alice", "swap-2"); !errors.Is(err, ErrAssetReserved) {
		t.Fatalf("conflicting reserve: err = %v, want ErrAssetReserved", err)
	}
	// Release by a non-holder is a no-op.
	r.Release("btc", "utxo-1", "swap-2")
	if _, held := r.ReservationHolder("btc", "utxo-1"); !held {
		t.Fatal("non-holder release dropped the reservation")
	}
	r.Release("btc", "utxo-1", "swap-1")
	if err := r.Reserve("btc", "utxo-1", "alice", "swap-2"); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
}

func TestReserveReportsReservedBeforeUnavailable(t *testing.T) {
	// While another swap holds an asset, contenders must see "reserved"
	// (retry later) even if the ownership check would also fail — e.g.
	// because the holder's swap has escrowed or moved the asset. A
	// permanent "unavailable" here would wrongly reject an offer that
	// could clear once the holder releases.
	r := NewRegistry(fixedClock(0))
	if err := r.Chain("btc").RegisterAsset(Asset{ID: "x", Amount: 1}, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.Reserve("btc", "x", "alice", "swap-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Chain("btc").Transfer("alice", "x", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := r.Reserve("btc", "x", "alice", "swap-2"); !errors.Is(err, ErrAssetReserved) {
		t.Fatalf("contender during hold: err = %v, want ErrAssetReserved", err)
	}
	r.Release("btc", "x", "swap-1")
	if err := r.Reserve("btc", "x", "alice", "swap-2"); !errors.Is(err, ErrAssetUnavailable) {
		t.Fatalf("after release, spent asset: err = %v, want ErrAssetUnavailable", err)
	}
}

func TestReserveChecksOwnership(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	if err := r.Chain("btc").RegisterAsset(Asset{ID: "utxo-1", Amount: 5}, "alice"); err != nil {
		t.Fatal(err)
	}
	// Not the owner.
	if err := r.Reserve("btc", "utxo-1", "mallory", "swap-1"); !errors.Is(err, ErrAssetUnavailable) {
		t.Fatalf("wrong owner: err = %v, want ErrAssetUnavailable", err)
	}
	// Unknown asset.
	if err := r.Reserve("btc", "nope", "alice", "swap-1"); !errors.Is(err, ErrAssetUnavailable) {
		t.Fatalf("unknown asset: err = %v, want ErrAssetUnavailable", err)
	}
	// Spent asset: after a transfer the old owner cannot reserve it.
	if err := r.Chain("btc").Transfer("alice", "utxo-1", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := r.Reserve("btc", "utxo-1", "alice", "swap-1"); !errors.Is(err, ErrAssetUnavailable) {
		t.Fatalf("spent asset: err = %v, want ErrAssetUnavailable", err)
	}
	if err := r.Reserve("btc", "utxo-1", "bob", "swap-1"); err != nil {
		t.Fatalf("new owner reserve: %v", err)
	}
}

func TestReserveConcurrentSingleWinner(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	if err := r.Chain("btc").RegisterAsset(Asset{ID: "utxo-1", Amount: 1}, "alice"); err != nil {
		t.Fatal(err)
	}
	const swaps = 64
	var wg sync.WaitGroup
	wins := make(chan string, swaps)
	for i := 0; i < swaps; i++ {
		holder := fmt.Sprintf("swap-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.Reserve("btc", "utxo-1", "alice", holder); err == nil {
				wins <- holder
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("want exactly one winning reservation, got %d", n)
	}
}

// TestReserveShardedAcrossChains hammers the sharded reservation table
// from many goroutines over many chains: per-chain mutual exclusion must
// hold while disjoint chains proceed independently, and every reservation
// must be released cleanly.
func TestReserveShardedAcrossChains(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	const chains = 40
	for c := 0; c < chains; c++ {
		name := fmt.Sprintf("chain-%d", c)
		if err := r.Chain(name).RegisterAsset(Asset{ID: "hot", Amount: 1}, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	winners := make([]int, chains)
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		holder := fmt.Sprintf("swap-%d", g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < chains; c++ {
				name := fmt.Sprintf("chain-%d", c)
				if err := r.Reserve(name, "hot", "alice", holder); err == nil {
					mu.Lock()
					winners[c]++
					mu.Unlock()
					r.Release(name, "hot", holder)
				} else if !errors.Is(err, ErrAssetReserved) {
					t.Errorf("unexpected reserve error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	for c, n := range winners {
		if n == 0 {
			t.Fatalf("chain %d never reserved", c)
		}
	}
	if r.Reservations() != 0 {
		t.Fatalf("reservations leaked: %d", r.Reservations())
	}
}

type countingProbe struct {
	mu   sync.Mutex
	lags []int64
}

func (p *countingProbe) Observe(lag vtime.Duration) {
	p.mu.Lock()
	p.lags = append(p.lags, int64(lag))
	p.mu.Unlock()
}

func TestDeliveryProbeInstallAndFeed(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	if r.DeliveryProbe() != nil {
		t.Fatal("fresh registry has a probe")
	}
	r.SetDeliveryProbe(nil) // ignored
	if r.DeliveryProbe() != nil {
		t.Fatal("nil probe installed")
	}
	p := &countingProbe{}
	r.SetDeliveryProbe(p)
	got := r.DeliveryProbe()
	if got == nil {
		t.Fatal("probe not installed")
	}
	got.Observe(3)
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.lags) != 1 || p.lags[0] != 3 {
		t.Fatalf("probe fed %v", p.lags)
	}
}

func TestSubscribeAllCoversFutureChains(t *testing.T) {
	r := NewRegistry(fixedClock(3))
	var mu sync.Mutex
	var got []string
	r.SubscribeAll("watcher", func(n Notification) {
		mu.Lock()
		got = append(got, n.Chain+":"+n.Kind.String())
		mu.Unlock()
	})
	// Chain created after the subscription must still notify.
	if err := r.Chain("later").RegisterAsset(Asset{ID: "x", Amount: 1}, "p"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("want 1 notification, got %d (%v)", n, got)
	}
	r.UnsubscribeAll("watcher")
	if err := r.Chain("later").RegisterAsset(Asset{ID: "y", Amount: 1}, "p"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n = len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("notification after unsubscribe: %v", got)
	}
}

func TestMultipleSubscribersCoexist(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	c := r.Chain("x")
	var mu sync.Mutex
	counts := map[string]int{}
	for _, key := range []string{"a", "b"} {
		key := key
		c.Subscribe(key, func(Notification) {
			mu.Lock()
			counts[key]++
			mu.Unlock()
		})
	}
	// Legacy SetObserver is a third, independent slot.
	c.SetObserver(func(Notification) {
		mu.Lock()
		counts["legacy"]++
		mu.Unlock()
	})
	if err := c.RegisterAsset(Asset{ID: "x", Amount: 1}, "p"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, key := range []string{"a", "b", "legacy"} {
		if counts[key] != 1 {
			t.Fatalf("subscriber %q saw %d notifications, want 1", key, counts[key])
		}
	}
}

func TestRegistryShardedConcurrentAccess(t *testing.T) {
	r := NewRegistry(fixedClock(0))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("chain-%d", i%50)
				ch := r.Chain(name)
				asset := AssetID(fmt.Sprintf("a-%d-%d", g, i))
				_ = ch.RegisterAsset(Asset{ID: asset, Amount: 1}, "p")
				_ = r.TotalStorageBytes()
			}
		}()
	}
	wg.Wait()
	if got := len(r.Names()); got != 50 {
		t.Fatalf("want 50 chains, got %d", got)
	}
	if !r.VerifyAllLedgers() {
		t.Fatal("ledger hash chain broken under concurrency")
	}
}
