package chain

import (
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// This file is the pluggable commitment model: how (and when) a chain's
// applied records become final.
//
// Herlihy's model treats every chain as an ideal serializer — a record
// is final the instant it is appended, and one global Δ bounds
// publish-plus-confirm everywhere. Real chains confirm probabilistically
// (a record is trustworthy only K blocks deep), reorg (an applied record
// can be reverted before it is that deep), and have heterogeneous
// latencies. A CommitmentModel parameterizes all three per chain while
// keeping the ledger abstraction the protocol layer sees: append-only,
// hash-chained, tamper-evident. A revert never rewrites history — it
// appends NoteReverted records and rolls the *state* back, so the hash
// chain stays intact and the reorg itself is auditable.
//
// Determinism contract: fates are drawn from a pure hash of
// (seed, chain, contract, per-contract record index) — never from
// execution order. Chain-level record sequence numbers are NOT part of
// the fate key: under striped-parallel dispatch two swaps sharing a
// chain may interleave their same-tick appends in either order, and the
// digest-equality contract (serial vs parallel vs sharded) requires the
// fate of every record to be independent of that interleaving. For the
// same reason a revert rolls back a suffix of ONE contract's record
// stream (transaction-level reorg), not a suffix of the whole chain:
// which unrelated contract's records sit above the fated one on the
// shared ledger is an artifact of dispatch interleaving, but the set of
// records belonging to the fated contract is not.

// Timing is a chain's timing parameters as the protocol layers consume
// them. The zero value means "inherit the global spec Δ, instant
// finality" — exactly the ideal chain the paper models.
type Timing struct {
	// Delta, when positive, overrides the swap spec's global Δ for
	// events on this chain: the publish-plus-observe bound the conc
	// runtime uses to schedule deliveries sourced from this chain.
	Delta vtime.Duration
	// ConfirmDepth is how many ticks after application a record becomes
	// final. 0 is instant finality.
	ConfirmDepth vtime.Duration
}

// DeliveryDelay converts a base Δ into the modeled notification delay
// for events sourced from a chain with this timing: the chain's own Δ
// when it has one (else base), minus the conforming party's reaction
// margin. The margin rule reproduces, exactly, the historical conc
// heuristic (delta - delta/4, clamped to stay ≥ 1 under tiny Δ) so the
// Instant model is delivery-schedule-identical to the pre-model code —
// the regression test in conc pins that equivalence.
func (t Timing) DeliveryDelay(base vtime.Duration) vtime.Duration {
	delta := base
	if t.Delta > 0 {
		delta = t.Delta
	}
	if margin := delta / 4; margin >= 1 {
		delta -= margin
	} else if delta > 1 {
		delta--
	}
	return delta
}

// EffectiveDelta is the publish-plus-confirm bound for this chain given
// the global base Δ: the chain's own Δ (else base) plus its
// confirmation depth. This is the paper's Δ as a per-chain quantity —
// an event is not "observed" until it is final — and it is what the
// engine feeds core's timelock ladder per chain.
func (t Timing) EffectiveDelta(base vtime.Duration) vtime.Duration {
	delta := base
	if t.Delta > 0 {
		delta = t.Delta
	}
	return delta + t.ConfirmDepth
}

// Fate is a record's commitment schedule, drawn once when the record is
// applied. The zero Fate is instant finality.
type Fate struct {
	// FinalAfter is how many ticks after application the record
	// finalizes (0 = immediately).
	FinalAfter vtime.Duration
	// RevertAfter, when positive, schedules a revert that many ticks
	// after application instead; it must be < FinalAfter. The revert
	// rolls back the record and every not-yet-final record of the same
	// contract above it.
	RevertAfter vtime.Duration
}

// CommitmentModel decides each record's commitment schedule. Models
// must be pure: Fate must depend only on its arguments (and the model's
// own immutable parameters), so replays and different execution shapes
// draw identical fates.
type CommitmentModel interface {
	// Name labels the model in traces and reports.
	Name() string
	// Timing reports the chain's timing parameters.
	Timing() Timing
	// Fate draws the commitment schedule for the idx-th fated record of
	// the given contract on the given chain.
	Fate(chain string, contract ContractID, idx int) Fate
}

// Instant is the compatibility default: every record is final the
// moment it is applied — the ideal chain of the paper's model.
type Instant struct{}

// Name implements CommitmentModel.
func (Instant) Name() string { return "instant" }

// Timing implements CommitmentModel.
func (Instant) Timing() Timing { return Timing{} }

// Fate implements CommitmentModel.
func (Instant) Fate(string, ContractID, int) Fate { return Fate{} }

// Depth finalizes every record K ticks after application — the
// confirmation-depth policy of a chain that never reorgs but whose
// records are only trusted K deep.
type Depth struct {
	// K is the confirmation depth in ticks.
	K vtime.Duration
	// Delta optionally overrides the chain's Δ (0 = inherit).
	Delta vtime.Duration
}

// Name implements CommitmentModel.
func (d Depth) Name() string { return fmt.Sprintf("depth(%d)", d.K) }

// Timing implements CommitmentModel.
func (d Depth) Timing() Timing { return Timing{Delta: d.Delta, ConfirmDepth: d.K} }

// Fate implements CommitmentModel.
func (d Depth) Fate(string, ContractID, int) Fate { return Fate{FinalAfter: d.K} }

// Reorg is Depth plus seeded reverts: each record independently reverts
// with probability Rate at a seeded uniform depth in [1, K-1] ticks
// after application (a revert always lands before the record would have
// finalized). K must be at least 2 for any revert to be schedulable.
// The draw is a pure hash of (Seed, chain, contract, record index), so
// a Reorg chain replays byte-identical record streams from the same
// seed — on any scheduler, any shard count.
type Reorg struct {
	// K is the confirmation depth in ticks (≥ 2 for reverts to occur).
	K vtime.Duration
	// Rate is the per-record revert probability in [0, 1].
	Rate float64
	// Seed drives the fate hash.
	Seed int64
	// Delta optionally overrides the chain's Δ (0 = inherit).
	Delta vtime.Duration
}

// Name implements CommitmentModel.
func (r Reorg) Name() string { return fmt.Sprintf("reorg(%d,%g)", r.K, r.Rate) }

// Timing implements CommitmentModel.
func (r Reorg) Timing() Timing { return Timing{Delta: r.Delta, ConfirmDepth: r.K} }

// Fate implements CommitmentModel.
func (r Reorg) Fate(chain string, contract ContractID, idx int) Fate {
	f := Fate{FinalAfter: r.K}
	if r.Rate <= 0 || r.K < 2 {
		return f
	}
	h := fateHash(uint64(r.Seed), chain, contract, idx)
	// 53 high bits → uniform [0,1): the standard float64 lattice.
	u := float64(h>>11) / (1 << 53)
	if u >= r.Rate {
		return f
	}
	// Independent second draw for the revert depth, in [1, K-1].
	d := fateHash(h, chain, contract, idx)
	f.RevertAfter = 1 + vtime.Duration(d%uint64(r.K-1))
	return f
}

// fateHash is FNV-1a 64 over the fate key. Inline and allocation-free:
// it runs once per fated record.
func fateHash(seed uint64, chain string, contract ContractID, idx int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(chain); i++ {
		mix(chain[i])
	}
	mix(0)
	for i := 0; i < len(contract); i++ {
		mix(contract[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(idx) >> (8 * i)))
	}
	return h
}

// RevertibleContract is implemented by contracts whose state the chain
// can snapshot and restore — the capability a reorg needs to roll an
// invocation back. A contract that does not implement it is treated as
// instant-final on every chain (its records can never be caught in a
// revert), preserving safety for foreign contracts at the cost of
// realism.
type RevertibleContract interface {
	// StateSnapshot returns an opaque copy of the contract's mutable
	// state, taken before an invocation is applied.
	StateSnapshot() any
	// StateRestore restores state captured by StateSnapshot.
	StateRestore(snap any)
}
