package chain

import (
	"fmt"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// This file is the commitment-model runtime on a Chain: fate tracking
// for applied records, the finalize/revert settlement pass, and the
// re-apply queue. See commitment.go for the model semantics and the
// determinism contract.

// timerScheduler is the slice of sched.Scheduler the commitment pump
// needs; every scheduler implementation satisfies it.
type timerScheduler interface {
	At(t vtime.Ticks, fn func()) sched.Timer
}

// tailScheduler is satisfied by sched.Virtual: commitment events run at
// a tail level above the whole clearing ladder (protocol 0, shard
// clearing 1, escalation sweep 2, coordinator 3), so every finalize and
// revert of a tick sees that tick's fully-cleared state — and they run
// on a single stripe, so the order of downstream event insertions is
// deterministic under striped-parallel dispatch.
type tailScheduler interface {
	AtTailN(t vtime.Ticks, level int8, key uint64, fn func()) sched.Timer
}

// commitLevel is the dispatch-ladder level commitment events run at.
const commitLevel = 4

// revertRecordBytes is the modeled ledger cost of one revert record.
const revertRecordBytes = 8

// SetCommitmentModel installs the chain's commitment model. It must be
// called before the first record is appended. onDue, when non-nil, is
// invoked (outside the chain lock) with every tick at which
// SettleCommitments must run — the registry passes its shared pump
// here. With a nil onDue the chain schedules its own settlement
// callbacks, which requires the chain's clock to be a scheduler.
// Installing Instant (or nil) is a no-op beyond caching the timing:
// the append path keeps its one-nil-check ideal-chain shape.
func (c *Chain) SetCommitmentModel(m CommitmentModel, onDue func(vtime.Ticks)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.records) > 0 {
		return fmt.Errorf("chain %s: commitment model must be set before any record", c.name)
	}
	if m == nil {
		return nil
	}
	c.timing = m.Timing()
	if _, ok := m.(Instant); ok {
		return nil
	}
	c.model = m
	c.commits = make(map[ContractID][]commitEntry)
	c.fated = make(map[ContractID]int)
	c.revertible = make(map[ContractID]bool)
	if onDue != nil {
		c.onDue = onDue
		return nil
	}
	s, ok := c.clock.(timerScheduler)
	if !ok {
		c.model = nil
		return fmt.Errorf("chain %s: commitment model %s needs a scheduling clock or an onDue hook",
			c.name, m.Name())
	}
	c.selfPumpAt = make(map[vtime.Ticks]struct{})
	c.onDue = func(t vtime.Ticks) {
		c.selfPumpMu.Lock()
		if _, dup := c.selfPumpAt[t]; dup {
			c.selfPumpMu.Unlock()
			return
		}
		c.selfPumpAt[t] = struct{}{}
		c.selfPumpMu.Unlock()
		s.At(t, func() {
			c.selfPumpMu.Lock()
			delete(c.selfPumpAt, t)
			c.selfPumpMu.Unlock()
			now := c.clock.Now()
			if now < t {
				now = t
			}
			c.SettleCommitments(now)
		})
	}
	return nil
}

// Timing reports the chain's timing parameters (zero for Instant).
func (c *Chain) Timing() Timing { return c.timing }

// CommitmentModelName names the chain's model ("instant" by default).
func (c *Chain) CommitmentModelName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.model == nil {
		return Instant{}.Name()
	}
	return c.model.Name()
}

// PendingCommitments counts applied-but-not-final records (tests).
func (c *Chain) PendingCommitments() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, entries := range c.commits {
		n += len(entries)
	}
	return n
}

// drawFateLocked draws the next fate for a contract's record (or record
// pair — an invocation and the transfer it causes share one fate, so a
// revert can never split a claim from its asset movement). The caller
// must hold c.mu. ok reports whether the record should be tracked.
func (c *Chain) drawFateLocked(id ContractID) (Fate, bool) {
	if c.model == nil || id == "" || !c.revertible[id] {
		return Fate{}, false
	}
	idx := c.fated[id]
	c.fated[id] = idx + 1
	f := c.model.Fate(c.name, id, idx)
	if f.FinalAfter <= 0 {
		return Fate{}, false
	}
	return f, true
}

// trackLocked registers the just-appended record (the last in
// c.records) under fate f and returns true — the caller marks its
// notification Provisional. The caller must hold c.mu.
func (c *Chain) trackLocked(kind NoteKind, id ContractID, u undoEntry, f Fate) bool {
	rec := c.records[len(c.records)-1]
	e := commitEntry{seq: rec.Seq, kind: kind, finalAt: rec.At.Add(f.FinalAfter), undo: u}
	if f.RevertAfter > 0 && f.RevertAfter < f.FinalAfter {
		e.revertAt = rec.At.Add(f.RevertAfter)
	}
	c.commits[id] = append(c.commits[id], e)
	c.dueQueue = append(c.dueQueue, e.finalAt)
	if e.revertAt > 0 {
		c.dueQueue = append(c.dueQueue, e.revertAt)
	}
	return true
}

// flushDue hands queued settlement ticks to the onDue hook, outside the
// chain lock (the hook inserts scheduler events; holding c.mu across a
// foreign lock is asking for an ordering bug).
func (c *Chain) flushDue() {
	c.mu.Lock()
	if len(c.dueQueue) == 0 {
		c.mu.Unlock()
		return
	}
	due := c.dueQueue
	c.dueQueue = nil
	onDue := c.onDue
	c.mu.Unlock()
	if onDue == nil {
		return
	}
	for _, t := range due {
		onDue(t)
	}
}

// SettleCommitments runs the settlement pass for every commitment due
// at or before now: reverts first (rolling back each fated contract's
// non-final suffix, appending NoteReverted records, queueing
// re-applies), then finalizations (emitting NoteFinalized for
// transfers), then due re-applies through the normal public paths.
// Safe to call at any time; a chain with nothing due does nothing.
func (c *Chain) SettleCommitments(now vtime.Ticks) {
	c.mu.Lock()
	if c.model == nil || (len(c.commits) == 0 && len(c.replays) == 0) {
		c.mu.Unlock()
		return
	}
	notes := c.settleLocked(now)
	var replays []replayOp
	rest := c.replays[:0]
	for _, op := range c.replays {
		if op.at <= now {
			replays = append(replays, op)
		} else {
			rest = append(rest, op)
		}
	}
	c.replays = rest
	c.mu.Unlock()
	c.flushDue()
	c.emit(notes...)
	for _, op := range replays {
		c.reapply(op)
	}
}

// settleLocked processes due reverts and finalizations. Contracts are
// visited in sorted ID order — never map order — so the emitted
// notification sequence is replay-stable. The caller must hold c.mu.
func (c *Chain) settleLocked(now vtime.Ticks) []Notification {
	ids := make([]ContractID, 0, len(c.commits))
	for id := range c.commits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var notes []Notification
	for _, id := range ids {
		entries := c.commits[id]
		// The earliest due revert takes the contract's whole non-final
		// suffix with it (finality is monotone per contract, so the
		// entries above the fated one are exactly the revertable ones).
		cut := -1
		for i, e := range entries {
			if e.revertAt > 0 && e.revertAt <= now {
				cut = i
				break
			}
		}
		if cut >= 0 {
			suffix := entries[cut:]
			for i := len(suffix) - 1; i >= 0; i-- {
				c.undoLocked(id, suffix[i])
			}
			for i := range suffix {
				e := suffix[i]
				n := c.appendLocked(NoteReverted, id, e.undo.sender, revertRecordBytes,
					fmt.Sprintf("revert %s seq %d", e.kind, e.seq), nil)
				n.Reverted = e.kind
				notes = append(notes, n)
				switch e.kind {
				case NoteContractPublished:
					c.replays = append(c.replays, replayOp{
						at: now.Add(1), kind: e.kind, sender: e.undo.sender,
						id: id, contract: e.undo.contract,
					})
				case NoteInvocation:
					c.replays = append(c.replays, replayOp{
						at: now.Add(1), kind: e.kind, sender: e.undo.sender,
						id: id, method: e.undo.method, args: e.undo.args, argsSize: e.undo.argsSize,
					})
				}
			}
			entries = entries[:cut]
			c.dueQueue = append(c.dueQueue, now.Add(1))
		}
		keep := 0
		for _, e := range entries {
			if e.finalAt <= now {
				if e.kind == NoteTransfer {
					notes = append(notes, Notification{
						Chain:    c.name,
						At:       now,
						Kind:     NoteFinalized,
						Contract: id,
						Sender:   e.undo.sender,
					})
				}
				continue
			}
			entries[keep] = e
			keep++
		}
		entries = entries[:keep]
		if len(entries) == 0 {
			delete(c.commits, id)
		} else {
			c.commits[id] = entries
		}
	}
	return notes
}

// undoLocked rolls one record's state effects back. Undos run
// newest-first, so an invocation's snapshot restore always finds its
// contract still published. The caller must hold c.mu.
func (c *Chain) undoLocked(id ContractID, e commitEntry) {
	switch e.kind {
	case NoteContractPublished:
		delete(c.contracts, id)
		c.owners[e.undo.asset] = e.undo.prevOwner
	case NoteInvocation:
		if rc, ok := c.contracts[id].(RevertibleContract); ok {
			rc.StateRestore(e.undo.snapshot)
		}
	case NoteTransfer:
		c.owners[e.undo.asset] = e.undo.prevOwner
		delete(c.closed, id)
	}
}

// reapply re-runs one reverted operation through the normal public
// paths — fresh records, fresh fates — the way a mempool re-includes a
// transaction a reorg dropped. Failures are dropped silently: the
// post-reorg chain may have legitimately invalidated the operation
// (a refund raced in while the claim was off the chain, say), and a
// dropped transaction is exactly what happens to it in the real system.
func (c *Chain) reapply(op replayOp) {
	switch op.kind {
	case NoteContractPublished:
		_ = c.PublishContract(op.sender, op.contract)
	case NoteInvocation:
		_ = c.Invoke(op.sender, op.id, op.method, op.args, op.argsSize)
	}
}
