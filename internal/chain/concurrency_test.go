package chain

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentChainAccess hammers one chain from many goroutines: the
// goroutine runtime shares chains between parties, so every public method
// must be safe under the race detector.
func TestConcurrentChainAccess(t *testing.T) {
	c := newTestChain()
	var observed sync.Map
	c.SetObserver(func(n Notification) { observed.Store(n.Note, true) })

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			owner := PartyID(fmt.Sprintf("p%d", w))
			for i := 0; i < 50; i++ {
				asset := AssetID(fmt.Sprintf("a%d-%d", w, i))
				if err := c.RegisterAsset(Asset{ID: asset, Amount: 1}, owner); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				fc := &fakeContract{
					id:     ContractID(fmt.Sprintf("c%d-%d", w, i)),
					party:  owner,
					asset:  asset,
					target: ByParty("sink"),
				}
				if err := c.PublishContract(owner, fc); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
				if err := c.Invoke("sink", fc.id, "take", nil, 1); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				c.Records()
				c.StorageBytes()
				c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if !c.VerifyLedger() {
		t.Error("ledger must verify after concurrent traffic")
	}
	if got := len(c.Records()); got != workers*50*4 {
		t.Errorf("records = %d, want %d", got, workers*50*4)
	}
}

// TestConcurrentTransfers races direct transfers of one asset: exactly
// one owner must win each hop and the ledger must stay consistent.
func TestConcurrentTransfers(t *testing.T) {
	c := newTestChain()
	if err := c.RegisterAsset(Asset{ID: "hot", Amount: 1}, "p0"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := PartyID(fmt.Sprintf("p%d", w))
			to := PartyID(fmt.Sprintf("p%d", w+1))
			// Only the current owner's attempt succeeds; the rest get
			// ErrNotOwner. Either way the call must be safe.
			for i := 0; i < 20; i++ {
				_ = c.Transfer(from, "hot", to)
			}
		}()
	}
	wg.Wait()
	owner, ok := c.OwnerOf("hot")
	if !ok || owner.Kind != OwnerParty {
		t.Errorf("asset lost: %v", owner)
	}
	if !c.VerifyLedger() {
		t.Error("ledger must verify")
	}
}
