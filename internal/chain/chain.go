// Package chain implements the blockchain substrate the swap protocol runs
// on: append-only, hash-chained ledgers that track asset ownership, host
// smart contracts, escrow contract assets, and notify observers of state
// changes.
//
// The paper's analysis is independent of any particular blockchain
// algorithm; all it requires is a publicly readable, tamper-proof ledger
// where publishing a contract (or changing its state) plus the
// counterparty's confirmation takes at most Δ. This package provides
// exactly that abstraction, instrumented so experiments can measure the
// bytes stored on every chain (Theorem 4.10) and the bytes moved by
// contract calls (the communication-complexity claim).
package chain

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// PartyID identifies a protocol participant across all chains.
type PartyID string

// AssetID identifies an asset within its chain.
type AssetID string

// ContractID identifies a published contract within its chain.
type ContractID string

// OwnerKind distinguishes party ownership from contract escrow.
type OwnerKind int

// Owner kinds.
const (
	// OwnerParty marks an asset held directly by a party.
	OwnerParty OwnerKind = iota + 1
	// OwnerEscrow marks an asset held by a published contract.
	OwnerEscrow
)

// Owner is the current holder of an asset: a party, or a contract holding
// it in escrow.
type Owner struct {
	Kind     OwnerKind
	Party    PartyID    // set when Kind == OwnerParty
	Contract ContractID // set when Kind == OwnerEscrow
}

// ByParty returns a party owner.
func ByParty(p PartyID) Owner { return Owner{Kind: OwnerParty, Party: p} }

// ByEscrow returns a contract-escrow owner.
func ByEscrow(c ContractID) Owner { return Owner{Kind: OwnerEscrow, Contract: c} }

// String renders the owner for traces.
func (o Owner) String() string {
	switch o.Kind {
	case OwnerParty:
		return "party:" + string(o.Party)
	case OwnerEscrow:
		return "escrow:" + string(o.Contract)
	default:
		return "owner(unset)"
	}
}

// Asset is a unit of value registered on a chain — a lump of coins, a car
// title. Arcs of the swap digraph each transfer one asset whole.
type Asset struct {
	ID          AssetID
	Description string
	Amount      uint64
}

// Call is a contract invocation as the hosting chain presents it to the
// contract: the chain, not the caller, supplies the timestamp.
type Call struct {
	Method   string
	Sender   PartyID
	Now      vtime.Ticks
	Args     any
	ArgsSize int // bytes charged to on-chain storage for this call's payload
}

// Result is what a successful contract invocation tells the chain to do.
type Result struct {
	// Transfer, when set, moves the escrowed asset to this owner and
	// closes the contract.
	Transfer *Owner
	// Note is recorded on the ledger and shown in traces.
	Note string
	// Event is an opaque payload delivered to observers (for example the
	// hashkey that unlocked a hashlock, which is how secrets propagate).
	Event any
}

// Contract is code hosted on a chain. Implementations must be
// deterministic: all state transitions flow through Invoke with
// chain-supplied timestamps.
type Contract interface {
	// ContractID returns the chain-unique contract identifier.
	ContractID() ContractID
	// Party returns the asset owner who published the contract.
	Party() PartyID
	// AssetID returns the asset the contract escrows.
	AssetID() AssetID
	// StorageSize returns the bytes this contract occupies on-chain.
	StorageSize() int
	// Invoke applies one call and reports what the chain should do.
	// Returning an error reverts the call: nothing is recorded.
	Invoke(call Call) (Result, error)
}

// NoteKind classifies ledger records and observer notifications.
type NoteKind int

// Notification kinds.
const (
	// NoteAssetRegistered records an asset coming into existence.
	NoteAssetRegistered NoteKind = iota + 1
	// NoteContractPublished records a contract (and its escrow) appearing.
	NoteContractPublished
	// NoteInvocation records a successful contract call.
	NoteInvocation
	// NoteTransfer records the escrowed asset changing owner (claim or
	// refund); it accompanies the NoteInvocation that caused it.
	NoteTransfer
	// NoteData records a bare data publication (market-clearing plans,
	// the Phase Two broadcast optimization).
	NoteData
	// NoteReverted records a commitment-model revert: an applied but
	// not-yet-final record was rolled back (see CommitmentModel). The
	// ledger stays append-only — the revert is itself a record.
	NoteReverted
	// NoteFinalized is a notification-only kind (never a ledger record):
	// a previously provisional transfer reached its chain's confirmation
	// depth and is now final.
	NoteFinalized
)

var noteNames = map[NoteKind]string{
	NoteAssetRegistered:   "asset-registered",
	NoteContractPublished: "contract-published",
	NoteInvocation:        "invocation",
	NoteTransfer:          "transfer",
	NoteData:              "data",
	NoteReverted:          "reverted",
	NoteFinalized:         "finalized",
}

// String returns the note-kind name.
func (k NoteKind) String() string {
	if s, ok := noteNames[k]; ok {
		return s
	}
	return fmt.Sprintf("note(%d)", int(k))
}

// Notification is delivered to chain observers on every recorded state
// change. Observers see it after the runner's modeled latency, never
// before the change is on the ledger.
type Notification struct {
	Chain    string
	At       vtime.Ticks
	Kind     NoteKind
	Contract ContractID
	Method   string
	Sender   PartyID
	Event    any
	Note     string
	// Provisional marks a record that is applied but not yet final under
	// the chain's commitment model: it may still be reverted. Instant
	// chains never set it, so the zero value preserves the ideal-chain
	// reading of every pre-model notification.
	Provisional bool
	// Reverted, on a NoteReverted notification, is the kind of the
	// record that was rolled back.
	Reverted NoteKind
}

// Record is one entry of the append-only ledger. Records are hash-chained:
// each record's hash covers its content and the previous hash, which is
// what makes the ledger tamper-evident.
type Record struct {
	Seq      int
	At       vtime.Ticks
	Kind     NoteKind
	Contract ContractID
	Sender   PartyID
	Size     int
	Note     string
	PrevHash [32]byte
	Hash     [32]byte
}

// Errors returned by chain operations.
var (
	ErrUnknownAsset     = errors.New("chain: unknown asset")
	ErrDuplicateAsset   = errors.New("chain: asset already registered")
	ErrNotOwner         = errors.New("chain: sender does not own the asset")
	ErrDuplicateID      = errors.New("chain: contract ID already in use")
	ErrUnknownContract  = errors.New("chain: unknown contract")
	ErrContractClosed   = errors.New("chain: contract already settled")
	ErrContractAssetGap = errors.New("chain: contract references an unregistered asset")
)

// Chain is one mock blockchain. Create with New. Chain is safe for
// concurrent use; under the discrete-event runner all access is
// single-threaded anyway.
type Chain struct {
	name  string
	clock vtime.Clock

	mu        sync.Mutex
	assets    map[AssetID]Asset
	owners    map[AssetID]Owner
	contracts map[ContractID]Contract
	closed    map[ContractID]bool
	records   []Record
	storage   int
	observers map[string]func(Notification)
	// obsKeys mirrors the observer map's keys in sorted order, maintained
	// incrementally: a (un)subscribe does one binary search plus a memmove
	// instead of re-sorting the whole key set — which matters when many
	// concurrent runs churn subscriptions on a shared chain.
	obsKeys []string
	// obsList is the key-sorted immutable snapshot of observers, rebuilt
	// on (un)subscribe and published atomically, so the per-notification
	// fanout neither sorts, copies the subscriber map, nor touches c.mu
	// at all.
	obsList atomic.Pointer[[]func(Notification)]
	// routes delivers notifications carrying a contract ID to only the
	// observers registered for that exact contract — O(1) per record where
	// the broadcast obsList is O(subscribers). Shared-chain runtimes route
	// almost everything this way: a contract belongs to exactly one swap,
	// so fanning its records out to every live swap (each discarding the
	// note after a map probe) was the dominant shared-registry cost under
	// load. Guarded by its own RWMutex rather than c.mu or copy-on-write:
	// emit reads must not contend with ledger writes, and subscription
	// churn (six route edits per swap) must not copy the table.
	routesMu sync.RWMutex
	routes   map[ContractID]map[string]func(Notification)

	// Commitment-model state (nil/empty on Instant chains — the default
	// — so the ideal-chain hot path pays one nil check per append).
	// model draws each record's fate; timing caches model.Timing();
	// onDue asks the owner (registry pump or self-scheduler) to call
	// SettleCommitments at a tick. commits holds each contract's
	// non-final record suffix, fated counts per-contract fate indices,
	// revertible caches which contracts can be rolled back, replays is
	// the re-apply queue (reverted operations re-entering at their
	// scheduled tick, like transactions re-mined after a reorg), and
	// dueQueue carries ticks to hand to onDue once c.mu is released.
	model      CommitmentModel
	timing     Timing
	onDue      func(vtime.Ticks)
	commits    map[ContractID][]commitEntry
	fated      map[ContractID]int
	revertible map[ContractID]bool
	replays    []replayOp
	dueQueue   []vtime.Ticks
	selfPumpMu sync.Mutex
	selfPumpAt map[vtime.Ticks]struct{}
}

// commitEntry is one applied-but-not-final record awaiting its fate.
type commitEntry struct {
	seq      int
	kind     NoteKind
	finalAt  vtime.Ticks
	revertAt vtime.Ticks // 0 = no revert scheduled
	undo     undoEntry
}

// undoEntry is everything needed to roll one record back and, for
// publish/invocation records, to re-apply it after the revert.
type undoEntry struct {
	contract  Contract // publish: the contract object (for re-apply)
	snapshot  any      // invocation: pre-call contract state
	asset     AssetID  // publish/transfer: escrow to unwind
	prevOwner Owner    // publish/transfer: owner to restore
	sender    PartyID
	method    string // invocation re-apply
	args      any
	argsSize  int
}

// replayOp is one reverted operation queued for re-application — the
// mempool re-including a transaction the reorg dropped.
type replayOp struct {
	at       vtime.Ticks
	kind     NoteKind
	sender   PartyID
	id       ContractID
	contract Contract
	method   string
	args     any
	argsSize int
}

// New creates an empty chain with the given name, reading timestamps from
// clock.
func New(name string, clock vtime.Clock) *Chain {
	return &Chain{
		name:      name,
		clock:     clock,
		assets:    make(map[AssetID]Asset),
		owners:    make(map[AssetID]Owner),
		contracts: make(map[ContractID]Contract),
		closed:    make(map[ContractID]bool),
		observers: make(map[string]func(Notification)),
	}
}

// Name returns the chain name.
func (c *Chain) Name() string { return c.name }

// SetObserver registers the default observer callback, invoked synchronously
// (at ledger time) for every recorded change. The runner fans out to
// watching parties with the modeled Δ latency. SetObserver replaces only a
// previous SetObserver; keyed subscriptions are unaffected.
func (c *Chain) SetObserver(fn func(Notification)) {
	c.Subscribe("", fn)
}

// Subscribe registers (or replaces) an observer under the given key.
// Many subscribers can watch one chain — this is what lets concurrent
// swap runtimes share chains, each filtering for its own contracts.
func (c *Chain) Subscribe(key string, fn func(Notification)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fn == nil {
		c.dropKeyLocked(key)
		delete(c.observers, key)
	} else {
		if _, ok := c.observers[key]; !ok {
			at := sort.SearchStrings(c.obsKeys, key)
			c.obsKeys = append(c.obsKeys, "")
			copy(c.obsKeys[at+1:], c.obsKeys[at:])
			c.obsKeys[at] = key
		}
		c.observers[key] = fn
	}
	c.rebuildObsLocked()
}

// Unsubscribe removes the observer registered under key, if any.
func (c *Chain) Unsubscribe(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropKeyLocked(key)
	delete(c.observers, key)
	c.rebuildObsLocked()
}

// dropKeyLocked removes key from the sorted key mirror if present. The
// caller must hold c.mu.
func (c *Chain) dropKeyLocked(key string) {
	if _, ok := c.observers[key]; !ok {
		return
	}
	at := sort.SearchStrings(c.obsKeys, key)
	c.obsKeys = append(c.obsKeys[:at], c.obsKeys[at+1:]...)
}

// rebuildObsLocked regenerates the observer snapshot from the sorted key
// mirror. Keys stay sorted for deterministic delivery under the
// discrete-event runtime. The caller must hold c.mu.
func (c *Chain) rebuildObsLocked() {
	list := make([]func(Notification), len(c.obsKeys))
	for i, k := range c.obsKeys {
		list[i] = c.observers[k]
	}
	c.obsList.Store(&list)
}

// SubscribeContract registers fn under key for notifications carrying
// exactly this contract ID (publication, invocations, the settling
// transfer). Unlike Subscribe, delivery costs O(1) per record regardless
// of how many contracts — or other subscribers — share the chain; it is
// the fanout shape for per-swap runtimes on shared chains, where each
// contract concerns exactly one of them.
func (c *Chain) SubscribeContract(key string, id ContractID, fn func(Notification)) {
	c.routesMu.Lock()
	defer c.routesMu.Unlock()
	if c.routes == nil {
		c.routes = make(map[ContractID]map[string]func(Notification))
	}
	inner := c.routes[id]
	if inner == nil {
		inner = make(map[string]func(Notification), 1)
		c.routes[id] = inner
	}
	inner[key] = fn
}

// UnsubscribeContract removes the keyed contract route, if present.
func (c *Chain) UnsubscribeContract(key string, id ContractID) {
	c.routesMu.Lock()
	defer c.routesMu.Unlock()
	inner, ok := c.routes[id]
	if !ok {
		return
	}
	delete(inner, key)
	if len(inner) == 0 {
		delete(c.routes, id)
	}
}

// routeTo appends the routed observers for a notification to dst, in
// key-sorted order when a contract (atypically) has more than one — the
// same determinism contract rebuildObsLocked keeps for broadcast
// observers. The callbacks must be invoked after routesMu is released.
func (c *Chain) routeTo(dst []func(Notification), n Notification) []func(Notification) {
	if n.Contract == "" {
		return dst
	}
	c.routesMu.RLock()
	defer c.routesMu.RUnlock()
	inner := c.routes[n.Contract]
	switch len(inner) {
	case 0:
		return dst
	case 1:
		for _, fn := range inner {
			dst = append(dst, fn)
		}
		return dst
	}
	keys := make([]string, 0, len(inner))
	for k := range inner {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = append(dst, inner[k])
	}
	return dst
}

// RegisterAsset mints an asset owned by the given party.
func (c *Chain) RegisterAsset(a Asset, owner PartyID) error {
	c.mu.Lock()
	if _, ok := c.assets[a.ID]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateAsset, a.ID)
	}
	c.assets[a.ID] = a
	c.owners[a.ID] = ByParty(owner)
	n := c.appendLocked(NoteAssetRegistered, "", owner, len(a.ID)+len(a.Description)+8,
		fmt.Sprintf("asset %s -> %s", a.ID, owner), nil)
	c.mu.Unlock()
	c.emit(n)
	return nil
}

// Asset returns a registered asset.
func (c *Chain) Asset(id AssetID) (Asset, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.assets[id]
	return a, ok
}

// OwnerOf returns the current owner of an asset.
func (c *Chain) OwnerOf(id AssetID) (Owner, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.owners[id]
	return o, ok
}

// PublishContract publishes a contract: the sender must own the contract's
// asset, which moves into escrow under the contract. The contract's
// storage size is charged to the chain.
func (c *Chain) PublishContract(sender PartyID, contract Contract) error {
	c.mu.Lock()
	id := contract.ContractID()
	if _, ok := c.contracts[id]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	assetID := contract.AssetID()
	if _, ok := c.assets[assetID]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrContractAssetGap, assetID)
	}
	owner := c.owners[assetID]
	if owner.Kind != OwnerParty || owner.Party != sender {
		c.mu.Unlock()
		return fmt.Errorf("%w: asset %s owned by %s, publish attempted by %s",
			ErrNotOwner, assetID, owner, sender)
	}
	if contract.Party() != sender {
		c.mu.Unlock()
		return fmt.Errorf("%w: contract names party %s, published by %s",
			ErrNotOwner, contract.Party(), sender)
	}
	if c.model != nil {
		_, rev := contract.(RevertibleContract)
		c.revertible[id] = rev
	}
	c.contracts[id] = contract
	c.owners[assetID] = ByEscrow(id)
	n := c.appendLocked(NoteContractPublished, id, sender, contract.StorageSize(),
		fmt.Sprintf("escrow %s", assetID), contract)
	if f, fated := c.drawFateLocked(id); fated {
		n.Provisional = c.trackLocked(NoteContractPublished, id, undoEntry{
			contract:  contract,
			asset:     assetID,
			prevOwner: ByParty(sender),
			sender:    sender,
		}, f)
	}
	c.mu.Unlock()
	c.flushDue()
	c.emit(n)
	return nil
}

// Contract returns a published contract.
func (c *Chain) Contract(id ContractID) (Contract, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ct, ok := c.contracts[id]
	return ct, ok
}

// Closed reports whether a contract has settled (claimed or refunded).
func (c *Chain) Closed(id ContractID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed[id]
}

// Invoke calls a contract method. Errors from the contract revert the
// call: nothing is recorded or charged and no notification is sent.
func (c *Chain) Invoke(sender PartyID, id ContractID, method string, args any, argsSize int) error {
	c.mu.Lock()
	contract, ok := c.contracts[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownContract, id)
	}
	if c.closed[id] {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrContractClosed, id)
	}
	// A fated invocation and the transfer it causes share one fate (drawn
	// before the call so the pre-call state can be snapshotted): a revert
	// can never split a claim from its asset movement.
	var fate Fate
	var fated bool
	var snap any
	if fate, fated = c.drawFateLocked(id); fated {
		snap = contract.(RevertibleContract).StateSnapshot()
	}
	res, err := contract.Invoke(Call{
		Method:   method,
		Sender:   sender,
		Now:      c.clock.Now(),
		Args:     args,
		ArgsSize: argsSize,
	})
	if err != nil {
		if fated {
			c.fated[id]-- // nothing recorded: give the fate index back
		}
		c.mu.Unlock()
		return fmt.Errorf("chain %s: %s.%s: %w", c.name, id, method, err)
	}
	// Stack-backed buffer: an invocation produces at most two
	// notifications, so the fanout allocates nothing per call.
	var notesBuf [2]Notification
	ni := c.appendLocked(NoteInvocation, id, sender, argsSize, method+": "+res.Note, res.Event)
	if fated {
		ni.Provisional = c.trackLocked(NoteInvocation, id, undoEntry{
			snapshot: snap,
			sender:   sender,
			method:   method,
			args:     args,
			argsSize: argsSize,
		}, fate)
	}
	notes := append(notesBuf[:0], ni)
	if res.Transfer != nil {
		assetID := contract.AssetID()
		prevOwner := c.owners[assetID]
		c.owners[assetID] = *res.Transfer
		c.closed[id] = true
		nt := c.appendLocked(NoteTransfer, id, sender, 0,
			fmt.Sprintf("asset %s -> %s", assetID, *res.Transfer), nil)
		if fated {
			nt.Provisional = c.trackLocked(NoteTransfer, id, undoEntry{
				asset:     assetID,
				prevOwner: prevOwner,
				sender:    sender,
			}, fate)
		}
		notes = append(notes, nt)
	}
	c.mu.Unlock()
	c.flushDue()
	c.emit(notes...)
	return nil
}

// Transfer moves an asset the sender owns directly to another party — an
// ordinary unconditional payment, used by the non-atomic baseline
// protocols. Escrowed assets cannot be transferred directly.
func (c *Chain) Transfer(sender PartyID, asset AssetID, to PartyID) error {
	c.mu.Lock()
	if _, ok := c.assets[asset]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownAsset, asset)
	}
	owner := c.owners[asset]
	if owner.Kind != OwnerParty || owner.Party != sender {
		c.mu.Unlock()
		return fmt.Errorf("%w: asset %s owned by %s, transfer attempted by %s",
			ErrNotOwner, asset, owner, sender)
	}
	c.owners[asset] = ByParty(to)
	n := c.appendLocked(NoteTransfer, "", sender, transferRecordBytes,
		fmt.Sprintf("asset %s -> %s", asset, to), nil)
	c.mu.Unlock()
	c.emit(n)
	return nil
}

// transferRecordBytes is the modeled ledger cost of a plain transfer.
const transferRecordBytes = 16

// PublishData appends a bare data record (no contract), e.g. a clearing
// plan or a broadcast secret.
func (c *Chain) PublishData(sender PartyID, note string, payload any, size int) {
	c.mu.Lock()
	n := c.appendLocked(NoteData, "", sender, size, note, payload)
	c.mu.Unlock()
	c.emit(n)
}

// emit delivers notifications to every observer outside the chain lock, so
// observers may freely read chain state. The snapshot slice is immutable
// (rebuilt wholesale on subscription changes) and published atomically, so
// the fanout takes no lock: a notify under heavy multi-swap load never
// contends with ledger writes or other emitters.
func (c *Chain) emit(notes ...Notification) {
	observers := c.obsList.Load()
	var routed []func(Notification)
	for _, n := range notes {
		if observers != nil {
			for _, fn := range *observers {
				fn(n)
			}
		}
		// Routed callbacks are copied out under RLock and invoked after it
		// is released: observers may re-enter the chain. The slice is
		// reused across notes in one emit call.
		routed = c.routeTo(routed[:0], n)
		for _, fn := range routed {
			fn(n)
		}
	}
}

// appendLocked adds a hash-chained record and returns the notification to
// emit once the lock is released. The caller must hold c.mu.
func (c *Chain) appendLocked(kind NoteKind, id ContractID, sender PartyID, size int, note string, event any) Notification {
	var prev [32]byte
	if n := len(c.records); n > 0 {
		prev = c.records[n-1].Hash
	}
	rec := Record{
		Seq:      len(c.records),
		At:       c.clock.Now(),
		Kind:     kind,
		Contract: id,
		Sender:   sender,
		Size:     size,
		Note:     note,
		PrevHash: prev,
	}
	rec.Hash = hashRecord(rec)
	c.records = append(c.records, rec)
	c.storage += size
	return Notification{
		Chain:    c.name,
		At:       rec.At,
		Kind:     kind,
		Contract: id,
		Method:   note,
		Sender:   sender,
		Event:    event,
		Note:     note,
	}
}

func hashRecord(r Record) [32]byte {
	// Hand-rolled encoding of the byte stream
	//   prevHash || "%d|%d|%d|%s|%s|%d|%s" (Seq, At, Kind, Contract, Sender, Size, Note)
	// — it must stay byte-identical to that fmt layout or every persisted
	// ledger hash breaks. One buffer + Sum256 keeps this off the allocator
	// and fmt's reflection path; it runs once per ledger record.
	var scratch [192]byte
	buf := append(scratch[:0], r.PrevHash[:]...)
	buf = strconv.AppendInt(buf, int64(r.Seq), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(r.At), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(int(r.Kind)), 10)
	buf = append(buf, '|')
	buf = append(buf, r.Contract...)
	buf = append(buf, '|')
	buf = append(buf, r.Sender...)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(r.Size), 10)
	buf = append(buf, '|')
	buf = append(buf, r.Note...)
	return sha256.Sum256(buf)
}

// Records returns a copy of the ledger.
func (c *Chain) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// VerifyLedger recomputes the hash chain and reports whether it is intact.
func (c *Chain) VerifyLedger() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	var prev [32]byte
	for _, r := range c.records {
		if r.PrevHash != prev {
			return false
		}
		if hashRecord(r) != r.Hash {
			return false
		}
		prev = r.Hash
	}
	return true
}

// StorageBytes returns the total bytes charged to this chain.
func (c *Chain) StorageBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storage
}

// Snapshot returns the current asset-ownership map, for conservation
// checks in tests.
func (c *Chain) Snapshot() map[AssetID]Owner {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[AssetID]Owner, len(c.owners))
	for k, v := range c.owners {
		out[k] = v
	}
	return out
}
