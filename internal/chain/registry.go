package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// regShards is the number of lock shards in the registry. Chain lookup is
// on the hot path of every contract call in a multi-swap run, so the chain
// map is sharded by name rather than guarded by one mutex.
const regShards = 32

// Registry is the set of chains a swap (or a whole clearing engine) spans.
// It provides the cross-chain aggregates the experiments measure, fans
// registry-wide subscriptions out to chains as they are created, and hosts
// the asset-reservation table that keeps concurrent swaps from
// double-committing the same asset.
type Registry struct {
	clock vtime.Clock

	shards [regShards]struct {
		mu     sync.RWMutex
		chains map[string]*Chain
	}

	// subMu guards registry-wide subscriptions, applied to every chain
	// including ones created later.
	subMu sync.Mutex
	subs  map[string]func(Notification)

	// resMu guards the reservation table: "chain\x00asset" -> holder.
	resMu sync.Mutex
	res   map[string]string
}

// Reservation errors.
var (
	// ErrAssetReserved means another in-flight swap holds the asset.
	ErrAssetReserved = errors.New("chain: asset reserved by another swap")
	// ErrAssetUnavailable means the asset does not exist or is not owned
	// directly by the reserving party (it may be escrowed or spent).
	ErrAssetUnavailable = errors.New("chain: asset not available to reserve")
)

// NewRegistry creates an empty registry whose chains share the clock.
func NewRegistry(clock vtime.Clock) *Registry {
	r := &Registry{
		clock: clock,
		subs:  make(map[string]func(Notification)),
		res:   make(map[string]string),
	}
	for i := range r.shards {
		r.shards[i].chains = make(map[string]*Chain)
	}
	return r
}

// shardOf is inline FNV-1a: Registry.Chain runs on every contract call,
// so the hash must not allocate.
func shardOf(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % regShards)
}

// Chain returns the named chain, creating it on first use. Creation
// installs every registry-wide subscription on the new chain.
func (r *Registry) Chain(name string) *Chain {
	s := &r.shards[shardOf(name)]
	s.mu.RLock()
	c, ok := s.chains[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	c, ok = s.chains[name]
	if !ok {
		c = New(name, r.clock)
		// Registry-wide subscriptions are applied before the chain becomes
		// visible (readers block on the shard lock until we release it), so
		// no notification can ever be emitted unobserved. A SubscribeAll
		// racing this creation either lands in r.subs first (we apply it
		// here) or sees the chain in its own sweep — double application is
		// an idempotent map write. Nobody acquires a shard lock while
		// holding subMu, so the s.mu → subMu order here cannot deadlock.
		r.subMu.Lock()
		for key, fn := range r.subs {
			c.Subscribe(key, fn)
		}
		r.subMu.Unlock()
		s.chains[name] = c
	}
	s.mu.Unlock()
	return c
}

// all returns every chain, unsorted.
func (r *Registry) all() []*Chain {
	var out []*Chain
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, c := range s.chains {
			out = append(out, c)
		}
		s.mu.RUnlock()
	}
	return out
}

// Names returns the sorted chain names.
func (r *Registry) Names() []string {
	chains := r.all()
	names := make([]string, len(chains))
	for i, c := range chains {
		names[i] = c.Name()
	}
	sort.Strings(names)
	return names
}

// TotalStorageBytes sums storage across all chains — the quantity bounded
// by Theorem 4.10.
func (r *Registry) TotalStorageBytes() int {
	total := 0
	for _, c := range r.all() {
		total += c.StorageBytes()
	}
	return total
}

// SetObserverAll installs the default observer on every existing chain and
// remembers nothing: call it after all chains are created, or create
// chains up front. Concurrent runtimes should use SubscribeAll instead.
func (r *Registry) SetObserverAll(fn func(Notification)) {
	for _, c := range r.all() {
		c.SetObserver(fn)
	}
}

// SubscribeAll registers fn under key on every chain, present and future.
// It is how each per-swap runtime watches shared chains without clobbering
// the other swaps' observers. UnsubscribeAll(key) removes it everywhere.
func (r *Registry) SubscribeAll(key string, fn func(Notification)) {
	r.subMu.Lock()
	r.subs[key] = fn
	r.subMu.Unlock()
	for _, c := range r.all() {
		c.Subscribe(key, fn)
	}
}

// UnsubscribeAll removes the keyed subscription from every chain and from
// the future-chain list.
func (r *Registry) UnsubscribeAll(key string) {
	r.subMu.Lock()
	delete(r.subs, key)
	r.subMu.Unlock()
	for _, c := range r.all() {
		c.Unsubscribe(key)
	}
}

func resKey(chainName string, asset AssetID) string {
	return chainName + "\x00" + string(asset)
}

// Reserve marks an asset as committed to one in-flight swap (the holder).
// It fails if the asset is not currently owned directly by owner, or if a
// different holder already reserved it. Reservation is the engine-level
// coordination lock; the chain's own ownership checks remain the safety
// net underneath it.
func (r *Registry) Reserve(chainName string, asset AssetID, owner PartyID, holder string) error {
	c := r.Chain(chainName)
	key := resKey(chainName, asset)
	// The reservation check comes first and the table stays locked across
	// the ownership read: an asset escrowed by an in-flight swap is still
	// reserved, and must report "reserved" (retry later), not
	// "unavailable" (permanent) — and two racing reservers must not both
	// pass the ownership check and overwrite each other.
	r.resMu.Lock()
	defer r.resMu.Unlock()
	if h, exists := r.res[key]; exists && h != holder {
		return fmt.Errorf("%w: %s/%s held by %s", ErrAssetReserved, chainName, asset, h)
	}
	cur, ok := c.OwnerOf(asset)
	if !ok || cur.Kind != OwnerParty || cur.Party != owner {
		return fmt.Errorf("%w: %s/%s (owner %s, want party %s)",
			ErrAssetUnavailable, chainName, asset, cur, owner)
	}
	r.res[key] = holder
	return nil
}

// Release drops a reservation if (and only if) holder still holds it.
func (r *Registry) Release(chainName string, asset AssetID, holder string) {
	key := resKey(chainName, asset)
	r.resMu.Lock()
	defer r.resMu.Unlock()
	if r.res[key] == holder {
		delete(r.res, key)
	}
}

// ReservationHolder reports which swap holds an asset, if any.
func (r *Registry) ReservationHolder(chainName string, asset AssetID) (string, bool) {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	h, ok := r.res[resKey(chainName, asset)]
	return h, ok
}

// Reservations returns the number of live reservations.
func (r *Registry) Reservations() int {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	return len(r.res)
}

// VerifyAllLedgers reports whether every chain's hash chain is intact.
func (r *Registry) VerifyAllLedgers() bool {
	for _, c := range r.all() {
		if !c.VerifyLedger() {
			return false
		}
	}
	return true
}

// Snapshot returns ownership across all chains keyed by chain name.
func (r *Registry) Snapshot() map[string]map[AssetID]Owner {
	out := make(map[string]map[AssetID]Owner)
	for _, c := range r.all() {
		out[c.Name()] = c.Snapshot()
	}
	return out
}
