package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// regShards is the number of lock shards in the registry. Chain lookup is
// on the hot path of every contract call in a multi-swap run, so the chain
// map is sharded by name rather than guarded by one mutex.
const regShards = 32

// Registry is the set of chains a swap (or a whole clearing engine) spans.
// It provides the cross-chain aggregates the experiments measure, fans
// registry-wide subscriptions out to chains as they are created, and hosts
// the asset-reservation table that keeps concurrent swaps from
// double-committing the same asset.
type Registry struct {
	clock vtime.Clock

	// Both the chain map and the reservation table are sharded by chain
	// name: chain lookup runs on every contract call, and under thousands
	// of concurrent clearing rounds the reservation table sees the same
	// contention (it was the last registry-wide mutex).
	shards [regShards]struct {
		mu     sync.RWMutex
		chains map[string]*Chain

		// resMu guards this shard's slice of the reservation table:
		// "chain\x00asset" -> holder, for chains hashing to this shard.
		resMu sync.Mutex
		res   map[string]string
	}

	// subMu guards registry-wide subscriptions, applied to every chain
	// including ones created later.
	subMu sync.Mutex
	subs  map[string]func(Notification)

	// probe, when set, receives observed event→party delivery latencies
	// from the runtimes sharing this registry (see DeliveryProbe).
	probe atomic.Value // of DeliveryProbe

	// chainProbeMu guards the per-chain probe table and its factory;
	// per-chain probes let adaptive Δ see heterogeneous lag instead of
	// one blended stream.
	chainProbeMu sync.RWMutex
	chainProbes  map[string]DeliveryProbe
	chainProbeFn func(name string) DeliveryProbe

	// modelMu guards the commitment-model factory, the modeled-chain
	// list the settlement pump drains, and the pump's per-tick dedupe.
	modelMu sync.Mutex
	modelFn func(name string) CommitmentModel
	modeled []*Chain
	pumpAt  map[vtime.Ticks]struct{}
}

// DeliveryProbe receives observed notification latencies: how many ticks
// past its scheduled delivery target an event actually reached a party.
// The registry is the rendezvous — the clearing engine installs one probe
// and every runtime executing over the shared chains feeds it — so the
// engine can adapt Δ to the latencies the hardware actually exhibits.
type DeliveryProbe interface {
	Observe(lag vtime.Duration)
}

// Reservation errors.
var (
	// ErrAssetReserved means another in-flight swap holds the asset.
	ErrAssetReserved = errors.New("chain: asset reserved by another swap")
	// ErrAssetUnavailable means the asset does not exist or is not owned
	// directly by the reserving party (it may be escrowed or spent).
	ErrAssetUnavailable = errors.New("chain: asset not available to reserve")
)

// NewRegistry creates an empty registry whose chains share the clock.
func NewRegistry(clock vtime.Clock) *Registry {
	r := &Registry{
		clock: clock,
		subs:  make(map[string]func(Notification)),
	}
	for i := range r.shards {
		r.shards[i].chains = make(map[string]*Chain)
		r.shards[i].res = make(map[string]string)
	}
	return r
}

// probeBox wraps the interface so atomic.Value always stores one concrete
// type — successive probes of different implementations would otherwise
// panic Store's consistency check.
type probeBox struct{ p DeliveryProbe }

// SetDeliveryProbe installs the latency probe runtimes feed. A nil probe
// is ignored (use a fresh registry to detach).
func (r *Registry) SetDeliveryProbe(p DeliveryProbe) {
	if p != nil {
		r.probe.Store(probeBox{p})
	}
}

// DeliveryProbe returns the installed probe, or nil.
func (r *Registry) DeliveryProbe() DeliveryProbe {
	b, _ := r.probe.Load().(probeBox)
	return b.p
}

// shardOf is inline FNV-1a: Registry.Chain runs on every contract call,
// so the hash must not allocate.
func shardOf(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % regShards)
}

// Chain returns the named chain, creating it on first use. Creation
// installs every registry-wide subscription on the new chain.
func (r *Registry) Chain(name string) *Chain {
	s := &r.shards[shardOf(name)]
	s.mu.RLock()
	c, ok := s.chains[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	c, ok = s.chains[name]
	if !ok {
		c = New(name, r.clock)
		// Registry-wide subscriptions are applied before the chain becomes
		// visible (readers block on the shard lock until we release it), so
		// no notification can ever be emitted unobserved. A SubscribeAll
		// racing this creation either lands in r.subs first (we apply it
		// here) or sees the chain in its own sweep — double application is
		// an idempotent map write. Nobody acquires a shard lock while
		// holding subMu, so the s.mu → subMu order here cannot deadlock.
		r.subMu.Lock()
		for key, fn := range r.subs {
			c.Subscribe(key, fn)
		}
		r.subMu.Unlock()
		r.applyCreationHooks(c, name)
		s.chains[name] = c
	}
	s.mu.Unlock()
	return c
}

// all returns every chain, unsorted.
func (r *Registry) all() []*Chain {
	var out []*Chain
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, c := range s.chains {
			out = append(out, c)
		}
		s.mu.RUnlock()
	}
	return out
}

// Names returns the sorted chain names.
func (r *Registry) Names() []string {
	chains := r.all()
	names := make([]string, len(chains))
	for i, c := range chains {
		names[i] = c.Name()
	}
	sort.Strings(names)
	return names
}

// TotalStorageBytes sums storage across all chains — the quantity bounded
// by Theorem 4.10.
func (r *Registry) TotalStorageBytes() int {
	total := 0
	for _, c := range r.all() {
		total += c.StorageBytes()
	}
	return total
}

// SetObserverAll installs the default observer on every existing chain and
// remembers nothing: call it after all chains are created, or create
// chains up front. Concurrent runtimes should use SubscribeAll instead.
func (r *Registry) SetObserverAll(fn func(Notification)) {
	for _, c := range r.all() {
		c.SetObserver(fn)
	}
}

// SubscribeAll registers fn under key on every chain, present and future.
// It is how each per-swap runtime watches shared chains without clobbering
// the other swaps' observers. UnsubscribeAll(key) removes it everywhere.
func (r *Registry) SubscribeAll(key string, fn func(Notification)) {
	r.subMu.Lock()
	r.subs[key] = fn
	r.subMu.Unlock()
	for _, c := range r.all() {
		c.Subscribe(key, fn)
	}
}

// SubscribeContract registers a contract-keyed route on the named chain
// (creating the chain if needed): fn sees only records carrying that
// contract ID. See Chain.SubscribeContract for the fanout contract.
func (r *Registry) SubscribeContract(chainName, key string, id ContractID, fn func(Notification)) {
	r.Chain(chainName).SubscribeContract(key, id, fn)
}

// UnsubscribeContract removes a contract-keyed route installed with
// SubscribeContract.
func (r *Registry) UnsubscribeContract(chainName, key string, id ContractID) {
	r.Chain(chainName).UnsubscribeContract(key, id)
}

// UnsubscribeAll removes the keyed subscription from every chain and from
// the future-chain list.
func (r *Registry) UnsubscribeAll(key string) {
	r.subMu.Lock()
	delete(r.subs, key)
	r.subMu.Unlock()
	for _, c := range r.all() {
		c.Unsubscribe(key)
	}
}

func resKey(chainName string, asset AssetID) string {
	return chainName + "\x00" + string(asset)
}

// Reserve marks an asset as committed to one in-flight swap (the holder).
// It fails if the asset is not currently owned directly by owner, or if a
// different holder already reserved it. Reservation is the engine-level
// coordination lock; the chain's own ownership checks remain the safety
// net underneath it. The table is sharded by chain name, so clearing
// rounds touching disjoint chains never contend.
func (r *Registry) Reserve(chainName string, asset AssetID, owner PartyID, holder string) error {
	c := r.Chain(chainName)
	s := &r.shards[shardOf(chainName)]
	key := resKey(chainName, asset)
	// The reservation check comes first and the shard stays locked across
	// the ownership read: an asset escrowed by an in-flight swap is still
	// reserved, and must report "reserved" (retry later), not
	// "unavailable" (permanent) — and two racing reservers must not both
	// pass the ownership check and overwrite each other.
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if h, exists := s.res[key]; exists && h != holder {
		return fmt.Errorf("%w: %s/%s held by %s", ErrAssetReserved, chainName, asset, h)
	}
	cur, ok := c.OwnerOf(asset)
	if !ok || cur.Kind != OwnerParty || cur.Party != owner {
		return fmt.Errorf("%w: %s/%s (owner %s, want party %s)",
			ErrAssetUnavailable, chainName, asset, cur, owner)
	}
	s.res[key] = holder
	return nil
}

// Release drops a reservation if (and only if) holder still holds it.
func (r *Registry) Release(chainName string, asset AssetID, holder string) {
	s := &r.shards[shardOf(chainName)]
	key := resKey(chainName, asset)
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.res[key] == holder {
		delete(s.res, key)
	}
}

// ReservationHolder reports which swap holds an asset, if any.
func (r *Registry) ReservationHolder(chainName string, asset AssetID) (string, bool) {
	s := &r.shards[shardOf(chainName)]
	s.resMu.Lock()
	defer s.resMu.Unlock()
	h, ok := s.res[resKey(chainName, asset)]
	return h, ok
}

// Reservations returns the number of live reservations.
func (r *Registry) Reservations() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.resMu.Lock()
		n += len(s.res)
		s.resMu.Unlock()
	}
	return n
}

// VerifyAllLedgers reports whether every chain's hash chain is intact.
func (r *Registry) VerifyAllLedgers() bool {
	for _, c := range r.all() {
		if !c.VerifyLedger() {
			return false
		}
	}
	return true
}

// Snapshot returns ownership across all chains keyed by chain name.
func (r *Registry) Snapshot() map[string]map[AssetID]Owner {
	out := make(map[string]map[AssetID]Owner)
	for _, c := range r.all() {
		out[c.Name()] = c.Snapshot()
	}
	return out
}
