package chain

import (
	"sort"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Registry is the set of chains a swap spans — one per asset class, or one
// per arc; the protocol does not care. It provides the cross-chain
// aggregates the experiments measure.
type Registry struct {
	clock vtime.Clock

	mu     sync.Mutex
	chains map[string]*Chain
}

// NewRegistry creates an empty registry whose chains share the clock.
func NewRegistry(clock vtime.Clock) *Registry {
	return &Registry{clock: clock, chains: make(map[string]*Chain)}
}

// Chain returns the named chain, creating it on first use.
func (r *Registry) Chain(name string) *Chain {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.chains[name]
	if !ok {
		c = New(name, r.clock)
		r.chains[name] = c
	}
	return c
}

// Names returns the sorted chain names.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.chains))
	for n := range r.chains {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalStorageBytes sums storage across all chains — the quantity bounded
// by Theorem 4.10.
func (r *Registry) TotalStorageBytes() int {
	total := 0
	for _, name := range r.Names() {
		total += r.Chain(name).StorageBytes()
	}
	return total
}

// SetObserverAll installs the observer on every existing chain and
// remembers nothing: call it after all chains are created, or create
// chains up front.
func (r *Registry) SetObserverAll(fn func(Notification)) {
	for _, name := range r.Names() {
		r.Chain(name).SetObserver(fn)
	}
}

// VerifyAllLedgers reports whether every chain's hash chain is intact.
func (r *Registry) VerifyAllLedgers() bool {
	for _, name := range r.Names() {
		if !r.Chain(name).VerifyLedger() {
			return false
		}
	}
	return true
}

// Snapshot returns ownership across all chains keyed by chain name.
func (r *Registry) Snapshot() map[string]map[AssetID]Owner {
	out := make(map[string]map[AssetID]Owner)
	for _, name := range r.Names() {
		out[name] = r.Chain(name).Snapshot()
	}
	return out
}
