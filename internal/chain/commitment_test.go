package chain

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// movClock is a manually advanced clock for driving commitment ticks.
type movClock struct{ now vtime.Ticks }

func (m *movClock) Now() vtime.Ticks { return m.now }

// revContract is fakeContract plus snapshot/restore over a bump counter —
// the minimal RevertibleContract. Method "bump" increments the counter,
// "take" increments and transfers the asset to the configured target.
type revContract struct {
	fakeContract
	count int
}

func (r *revContract) Invoke(call Call) (Result, error) {
	switch call.Method {
	case "bump":
		r.count++
		return Result{Note: fmt.Sprintf("bump=%d", r.count)}, nil
	case "take":
		r.count++
		tgt := r.target
		return Result{Transfer: &tgt, Note: "taken"}, nil
	}
	return Result{}, errFake
}

func (r *revContract) StateSnapshot() any { return r.count }
func (r *revContract) StateRestore(s any) { r.count = s.(int) }

// driveCommitmentChain runs a fixed scripted workload — six contracts,
// each published then bumped then claimed on consecutive ticks — against
// the given commitment model, pumping SettleCommitments at every tick so
// fates mature on schedule, then drains until the chain quiesces.
func driveCommitmentChain(t *testing.T, model CommitmentModel) *Chain {
	t.Helper()
	clk := &movClock{}
	c := New("btc", clk)
	if err := c.SetCommitmentModel(model, func(vtime.Ticks) {}); err != nil {
		t.Fatalf("SetCommitmentModel: %v", err)
	}
	const parties = 6
	for i := 0; i < parties; i++ {
		owner := PartyID(fmt.Sprintf("p%d", i))
		asset := AssetID(fmt.Sprintf("coin%d", i))
		if err := c.RegisterAsset(Asset{ID: asset, Amount: 1}, owner); err != nil {
			t.Fatalf("RegisterAsset(%s): %v", asset, err)
		}
	}
	step := func() {
		clk.now++
		c.SettleCommitments(clk.now)
	}
	for i := 0; i < parties; i++ {
		owner := PartyID(fmt.Sprintf("p%d", i))
		id := ContractID(fmt.Sprintf("rc%d", i))
		rc := &revContract{fakeContract: fakeContract{
			id: id, party: owner, asset: AssetID(fmt.Sprintf("coin%d", i)),
			size: 32, target: ByParty("taker"),
		}}
		if err := c.PublishContract(owner, rc); err != nil {
			t.Fatalf("PublishContract(%s): %v", id, err)
		}
		// The scripted invocations may race a reorg that has (for now)
		// dropped the contract off the chain; the error is as seeded and
		// replay-stable as a success, so it stays in the stream.
		step()
		_ = c.Invoke(owner, id, "bump", nil, 8)
		step()
		_ = c.Invoke(owner, id, "take", nil, 8)
		step()
	}
	// Re-applied records draw fresh fates and may revert again; the seed
	// decides when the chain quiesces, and 512 extra ticks is far beyond
	// any plausible revert cascade for a six-contract script.
	for i := 0; i < 512; i++ {
		step()
	}
	if n := c.PendingCommitments(); n != 0 {
		t.Fatalf("chain did not quiesce: %d commitments still pending", n)
	}
	return c
}

func countKind(recs []Record, kind NoteKind) int {
	n := 0
	for _, r := range recs {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// TestReorgReplayByteIdentical is the chain-level determinism witness:
// the same seeded Reorg model replays a byte-identical record stream —
// hashes included — while a different seed diverges. Run under
// -count=2 -race like the suite-level digest tests.
func TestReorgReplayByteIdentical(t *testing.T) {
	model := Reorg{K: 4, Rate: 0.5, Seed: 42}
	a := driveCommitmentChain(t, model)
	b := driveCommitmentChain(t, model)
	ra, rb := a.Records(), b.Records()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("same seed produced different record streams: %d vs %d records", len(ra), len(rb))
	}
	if n := countKind(ra, NoteReverted); n == 0 {
		t.Fatal("seeded Reorg at rate 0.5 produced no reverts; the model is not firing")
	}
	if !a.VerifyLedger() || !b.VerifyLedger() {
		t.Fatal("hash chain broken after reorg replay")
	}
	other := driveCommitmentChain(t, Reorg{K: 4, Rate: 0.5, Seed: 43})
	if reflect.DeepEqual(ra, other.Records()) {
		t.Error("different seed replayed an identical record stream; fates ignore the seed")
	}
}

// revertOnce is a scripted model: the contract's second fated record
// (idx 1, the bump) reverts at depth 2; everything else finalizes at
// depth 4. It makes the revert path deterministic without probability.
type revertOnce struct{}

func (revertOnce) Name() string   { return "revert-once" }
func (revertOnce) Timing() Timing { return Timing{ConfirmDepth: 4} }
func (revertOnce) Fate(_ string, _ ContractID, idx int) Fate {
	f := Fate{FinalAfter: 4}
	if idx == 1 {
		f.RevertAfter = 2
	}
	return f
}

// TestRevertKeepsHashChainIntact pins the append-only reorg semantics: a
// revert never rewrites history — the pre-revert record prefix survives
// byte-for-byte, NoteReverted records are appended above it, the hash
// chain still verifies, and the reverted operations re-apply so the
// contract ends in the state a revert-free run would have reached.
func TestRevertKeepsHashChainIntact(t *testing.T) {
	clk := &movClock{}
	c := New("eth", clk)
	if err := c.SetCommitmentModel(revertOnce{}, func(vtime.Ticks) {}); err != nil {
		t.Fatalf("SetCommitmentModel: %v", err)
	}
	mustRegister(t, c, "coin", "alice")
	rc := &revContract{fakeContract: fakeContract{
		id: "rc", party: "alice", asset: "coin", size: 32, target: ByParty("bob"),
	}}
	if err := c.PublishContract("alice", rc); err != nil {
		t.Fatalf("PublishContract: %v", err)
	}
	clk.now = 1
	if err := c.Invoke("alice", "rc", "bump", nil, 8); err != nil {
		t.Fatalf("Invoke(bump): %v", err)
	}
	clk.now = 2
	if err := c.Invoke("alice", "rc", "take", nil, 8); err != nil {
		t.Fatalf("Invoke(take): %v", err)
	}
	pre := c.Records()

	// The bump's revert is due at tick 3 (applied tick 1, depth 2) and
	// takes the claim above it in the same cut: three records go — the
	// bump, plus the take's invocation-and-transfer pair (one shared
	// fate, never split).
	clk.now = 3
	c.SettleCommitments(3)
	recs := c.Records()
	if got := countKind(recs, NoteReverted); got != 3 {
		t.Fatalf("reverted records = %d, want 3 (bump + take pair)", got)
	}
	if len(recs) < len(pre) || !reflect.DeepEqual(recs[:len(pre)], pre) {
		t.Fatal("revert rewrote ledger history; pre-revert prefix changed")
	}
	if !c.VerifyLedger() {
		t.Fatal("hash chain broken after revert")
	}
	if rc.count != 0 {
		t.Fatalf("contract state after revert = %d, want 0 (both invocations rolled back)", rc.count)
	}
	if owner, _ := c.OwnerOf("coin"); owner != ByEscrow("rc") {
		t.Fatalf("asset owner after revert = %v, want back in escrow", owner)
	}

	// Re-applies land at tick 4 and finalize by tick 8.
	for clk.now < 10 {
		clk.now++
		c.SettleCommitments(clk.now)
	}
	if n := c.PendingCommitments(); n != 0 {
		t.Fatalf("pending commitments after drain = %d, want 0", n)
	}
	if rc.count != 2 {
		t.Fatalf("contract state after re-apply = %d, want 2", rc.count)
	}
	if owner, _ := c.OwnerOf("coin"); owner != ByParty("bob") {
		t.Fatalf("asset owner after re-apply = %v, want bob", owner)
	}
	if !c.VerifyLedger() {
		t.Fatal("hash chain broken after re-apply")
	}
}

// TestDepthFinalityNotifications pins the Depth model's two-phase
// notification contract: records arrive Provisional, a transfer gets
// exactly one NoteFinalized exactly K ticks after application, and the
// pending set drains to zero once everything is final.
func TestDepthFinalityNotifications(t *testing.T) {
	clk := &movClock{}
	c := New("sol", clk)
	if err := c.SetCommitmentModel(Depth{K: 3}, func(vtime.Ticks) {}); err != nil {
		t.Fatalf("SetCommitmentModel: %v", err)
	}
	mustRegister(t, c, "coin", "alice")
	var notes []Notification
	c.Subscribe("test", func(n Notification) { notes = append(notes, n) })
	rc := &revContract{fakeContract: fakeContract{
		id: "d1", party: "alice", asset: "coin", size: 16, target: ByParty("bob"),
	}}
	if err := c.PublishContract("alice", rc); err != nil {
		t.Fatalf("PublishContract: %v", err)
	}
	clk.now = 1
	if err := c.Invoke("alice", "d1", "take", nil, 8); err != nil {
		t.Fatalf("Invoke(take): %v", err)
	}
	for _, n := range notes {
		if !n.Provisional {
			t.Errorf("%s notification not provisional under Depth{K:3}", n.Kind)
		}
	}
	// Transfer applied at tick 1: nothing final before tick 4.
	for clk.now < 3 {
		clk.now++
		c.SettleCommitments(clk.now)
	}
	if got := finalizedCount(notes, "d1"); got != 0 {
		t.Fatalf("finalized notifications before depth K = %d, want 0", got)
	}
	if c.PendingCommitments() == 0 {
		t.Fatal("pending commitments drained before depth K")
	}
	clk.now = 4
	c.SettleCommitments(4)
	if got := finalizedCount(notes, "d1"); got != 1 {
		t.Fatalf("finalized notifications at depth K = %d, want exactly 1", got)
	}
	for _, n := range notes {
		if n.Kind == NoteFinalized && n.At != 4 {
			t.Errorf("NoteFinalized at tick %d, want 4 (applied 1 + K 3)", n.At)
		}
	}
	if n := c.PendingCommitments(); n != 0 {
		t.Fatalf("pending commitments after finality = %d, want 0", n)
	}
}

func finalizedCount(notes []Notification, id ContractID) int {
	n := 0
	for _, note := range notes {
		if note.Kind == NoteFinalized && note.Contract == id {
			n++
		}
	}
	return n
}

// TestFatePurity pins the determinism contract on the model itself:
// Fate is a pure function of (seed, chain, contract, index) — repeated
// calls and call order cannot change a draw.
func TestFatePurity(t *testing.T) {
	m := Reorg{K: 6, Rate: 0.4, Seed: 7}
	forward := make([]Fate, 32)
	for i := range forward {
		forward[i] = m.Fate("btc", "c1", i)
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := m.Fate("btc", "c1", i); got != forward[i] {
			t.Fatalf("Fate(btc, c1, %d) = %+v on re-draw, want %+v", i, got, forward[i])
		}
	}
	if m.Fate("btc", "c1", 0) == m.Fate("eth", "c1", 0) &&
		m.Fate("btc", "c1", 1) == m.Fate("eth", "c1", 1) &&
		m.Fate("btc", "c1", 2) == m.Fate("eth", "c1", 2) {
		t.Error("fates identical across chains for three straight draws; chain name ignored")
	}
	for i := 0; i < 64; i++ {
		f := m.Fate("btc", "c2", i)
		if f.FinalAfter != m.K {
			t.Fatalf("Fate idx %d: FinalAfter = %d, want K=%d", i, f.FinalAfter, m.K)
		}
		if f.RevertAfter < 0 || f.RevertAfter >= f.FinalAfter {
			t.Fatalf("Fate idx %d: RevertAfter = %d out of [0, K)", i, f.RevertAfter)
		}
	}
}
