package shard

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/durable"
	"github.com/go-atomicswap/atomicswap/internal/engine"
)

func detConfig(shards int, seed int64) Config {
	return Config{
		Shards: shards,
		Engine: engine.Config{
			Deterministic: true,
			Workers:       4,
			Seed:          seed,
			MaxLive:       1 << 10,
		},
	}
}

// submitRing books one barter ring whose member chains follow the given
// list (cycled), returning the order IDs.
func submitRing(t *testing.T, s *ShardedEngine, ring, size int, chains []string) []engine.OrderID {
	t.Helper()
	ids := make([]engine.OrderID, 0, size)
	for i := 0; i < size; i++ {
		id, err := s.Submit(engine.LoadOfferOn(ring, i, size, ring, chains[i%len(chains)]))
		if err != nil {
			t.Fatalf("ring %d offer %d: %v", ring, i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestShardLocalRingClearsLocally: a ring drawn entirely from one
// shard's chain pool settles in that shard — the coordinator never
// books an order, which is the whole point of sharding (per-round
// clearing cost is O(shard book), not O(global book)).
func TestShardLocalRingClearsLocally(t *testing.T) {
	s := New(detConfig(2, 11))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	pool := s.ShardMap().Pools(2)
	ids := submitRing(t, s, 0, 3, pool[1])
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		snap, ok := s.Order(id)
		if !ok || snap.Status != engine.StatusSettled {
			t.Fatalf("order %d: %+v, want settled", id, snap)
		}
	}
	if n := len(s.Coordinator().Orders()); n != 0 {
		t.Fatalf("coordinator booked %d orders for a shard-local ring", n)
	}
	if err := s.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestShardEscalationClearsCrossRing: a ring whose members' chains live
// in different shards cannot clear in any one shard book. Its offers
// age past the escalation cutoff, the sweep withdraws them to the
// coordinator, and the cross-shard ring settles there — with every
// asset accounted for afterwards.
func TestShardEscalationClearsCrossRing(t *testing.T) {
	s := New(detConfig(2, 12))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	pool := s.ShardMap().Pools(2)
	// Members alternate shards: offers 0,2 in shard 0's pool, offer 1 in
	// shard 1's.
	ids := submitRing(t, s, 0, 3, []string{pool[0][0], pool[1][0]})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		snap, ok := s.Order(id)
		if !ok || snap.Status != engine.StatusSettled {
			t.Fatalf("order %d: %+v, want settled", id, snap)
		}
		if snap.Swap == "" {
			t.Fatalf("order %d settled with no swap tag", id)
		}
	}
	// The settle must have happened on the coordinator: escalation
	// withdraws the orders from the shard books and re-books them there.
	coordOrders := s.Coordinator().Orders()
	if len(coordOrders) != 3 {
		t.Fatalf("coordinator holds %d orders, want the whole 3-ring", len(coordOrders))
	}
	if err := s.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.SwapsFinished != 1 {
		t.Fatalf("SwapsFinished = %d, want 1", rep.SwapsFinished)
	}
}

// TestShardRemapRefoldsLedgers: the same offer stream executed on 1, 2,
// and 4 shards must fold to the same ledgers — identical per-chain
// asset totals and identical swap counts. Remapping is an execution
// choice; the economics cannot move.
func TestShardRemapRefoldsLedgers(t *testing.T) {
	// The stream is generated against the 4-shard pools whatever the
	// execution shard count, exactly like the scenario harness does.
	gen := NewMap(4).Pools(2)
	run := func(shards int) (map[string]uint64, int) {
		s := New(detConfig(shards, 13))
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for ring := 0; ring < 8; ring++ {
			home := ring % 4
			chains := gen[home]
			if ring%3 == 0 { // every third ring spans two generation pools
				chains = []string{gen[home][0], gen[(home+1)%4][0]}
			}
			submitRing(t, s, ring, 3, chains)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Fatal(err)
		}
		if err := s.VerifyConservation(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		totals := make(map[string]uint64)
		for _, name := range s.Registry().Names() {
			ch := s.Registry().Chain(name)
			for id := range ch.Snapshot() {
				a, ok := ch.Asset(id)
				if !ok {
					t.Fatalf("shards=%d: asset %s vanished from %s", shards, id, name)
				}
				totals[name] += a.Amount
			}
		}
		return totals, s.Report().SwapsFinished
	}
	baseTotals, baseSwaps := run(1)
	for _, n := range []int{2, 4} {
		totals, swaps := run(n)
		if swaps != baseSwaps {
			t.Fatalf("shards=%d finished %d swaps, 1-shard finished %d", n, swaps, baseSwaps)
		}
		if len(totals) != len(baseTotals) {
			t.Fatalf("shards=%d has %d chains, 1-shard has %d", n, len(totals), len(baseTotals))
		}
		for name, amt := range baseTotals {
			if totals[name] != amt {
				t.Fatalf("shards=%d: chain %s totals %d, 1-shard %d", n, name, totals[name], amt)
			}
		}
	}
}

// TestShardSharedCacheBatchWorkers: the hashkey batch-verify pool is
// sized ONCE from the machine-wide worker budget — N shards on one box
// must not stack N default-sized pools (the oversubscription this PR
// fixes). Every inner engine shares the one injected cache.
func TestShardSharedCacheBatchWorkers(t *testing.T) {
	cfg := detConfig(4, 14)
	cfg.Engine.Workers = 8
	s := New(cfg)
	want := 8
	if n := runtime.GOMAXPROCS(0); want > n {
		want = n
	}
	if got := s.vcache.BatchWorkers(); got != want {
		t.Fatalf("shared cache batch workers = %d, want min(total Workers, GOMAXPROCS) = %d", got, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	s.Stop(ctx)

	off := detConfig(4, 14)
	off.Engine.DisableBatchVerify = true
	s2 := New(off)
	if got := s2.vcache.BatchWorkers(); got != 1 {
		t.Fatalf("DisableBatchVerify: batch workers = %d, want 1", got)
	}
	s2.Stop(ctx)
}

// TestShardSignsPerSwap pins the ed25519 signing floor across the
// sharded deployment: identities live in ONE shared keyring, so a party
// whose offers land in different shards still signs under one cached
// expanded key, and the merged report's signature count comes from that
// single meter (never summed per engine). A 3-ring general-kind swap
// needs one plan signature per member; re-running the same parties
// through more rings must not re-derive or re-count identities.
func TestShardSignsPerSwap(t *testing.T) {
	s := New(detConfig(2, 15))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	pool := s.ShardMap().Pools(2)
	for ring := 0; ring < 6; ring++ {
		chains := pool[ring%2]
		if ring%3 == 0 {
			chains = []string{pool[0][0], pool[1][0]}
		}
		submitRing(t, s, ring, 3, chains)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.SwapsFinished != 6 {
		t.Fatalf("SwapsFinished = %d, want 6", rep.SwapsFinished)
	}
	if rep.Signs != s.Keyring().Signs() {
		t.Fatalf("report signs %d != keyring meter %d", rep.Signs, s.Keyring().Signs())
	}
	if rep.Signs == 0 || rep.SignsPerSwap <= 0 {
		t.Fatalf("no signatures metered: %+v", rep)
	}
	// Signing floor: each of the 18 distinct parties signs its hashkey
	// chain links, but identity derivation is once-per-party, so the
	// per-swap figure stays bounded (one order of magnitude headroom over
	// the 3-party plan; a regression that re-signs per verification or
	// per hop blows straight past this).
	if rep.SignsPerSwap > 30 {
		t.Fatalf("signs per swap = %.1f, want <= 30", rep.SignsPerSwap)
	}
}

// TestShardCrashRecovery: kill the whole sharded deployment mid-run and
// rebuild it from the single shared WAL. Recovery folds the log once,
// re-partitions orders by the same asset→shard map, restores identities
// into the shared keyring, and the second life drains every resumed or
// still-pending order with ledgers intact — including orders that had
// already escalated to the coordinator before the crash (they fold back
// to their home shards and re-escalate by age).
func TestShardCrashRecovery(t *testing.T) {
	dir, err := os.MkdirTemp("", "shard-crash-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	cfg := detConfig(2, 16)
	cfg.Engine.Store = store
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	pool := s.ShardMap().Pools(2)
	for ring := 0; ring < 6; ring++ {
		chains := pool[ring%2]
		if ring%2 == 0 { // half the rings are cross-shard: they exercise escalation state
			chains = []string{pool[0][0], pool[1][0]}
		}
		submitRing(t, s, ring, 3, chains)
	}
	// Crash from a scheduler callback so the cut is one well-defined tick
	// across all engines, mid-clearing rather than at quiescence.
	cutCh := make(chan struct{})
	var cut = s.Scheduler().Now()
	s.Scheduler().At(cut.Add(6), func() {
		cut = s.Kill()
		close(cutCh)
	})
	select {
	case <-cutCh:
	case <-time.After(time.Minute):
		t.Fatal("kill never fired")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life on a different shard count: the WAL carries
	// shard-independent identities, so the fold re-partitions cleanly
	// onto any map.
	b, rec, err := Recover(detConfig(4, 16), durable.RecoverOptions{Dir: dir, CutTick: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Recovered() {
		t.Fatal("recovered engine does not report Recovered")
	}
	if rec.Events == 0 {
		t.Fatal("recovery replayed no events")
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyLedgerIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Every order the first life booked at or before the cut must exist
	// in the second life, terminal.
	orders := b.Orders()
	if len(orders) == 0 {
		t.Fatal("no orders recovered")
	}
	for _, o := range orders {
		if o.Status != engine.StatusSettled && o.Status != engine.StatusRejected {
			t.Fatalf("recovered order %d left non-terminal: %+v", o.ID, o)
		}
	}
	rep := b.Report()
	if rep.SwapsFailed > 0 {
		t.Fatalf("%d swaps failed after recovery", rep.SwapsFailed)
	}
}
