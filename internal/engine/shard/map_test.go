package shard

import (
	"fmt"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
)

// TestShardMapRoutesUniquely: every offer resolves to exactly one home
// shard, in range, and the resolution is a pure function — the same
// offer routes identically however many times (and wherever) it is
// asked. This is the property that lets intake, recovery, and the CI
// baseline diff all compute placement independently.
func TestShardMapRoutesUniquely(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		m := NewMap(n)
		if m.Shards() != n {
			t.Fatalf("NewMap(%d).Shards() = %d", n, m.Shards())
		}
		for ring := 0; ring < 40; ring++ {
			for i := 0; i < 3; i++ {
				off := engine.LoadOfferOn(ring, i, 3, ring, fmt.Sprintf("c%03d", (ring*7+i)%32))
				home, _ := m.OfOffer(off)
				if home < 0 || home >= n {
					t.Fatalf("n=%d: home %d out of range", n, home)
				}
				again, _ := m.OfOffer(off)
				if again != home {
					t.Fatalf("n=%d: OfOffer not deterministic: %d then %d", n, home, again)
				}
				if home != m.Of(off.Give[0].Chain) {
					t.Fatalf("n=%d: home %d disagrees with give-chain shard %d",
						n, home, m.Of(off.Give[0].Chain))
				}
			}
		}
	}
	if NewMap(0).Shards() != 1 || NewMap(-3).Shards() != 1 {
		t.Fatal("NewMap must floor the shard count at 1")
	}
}

// TestShardMapCrossDetection: an offer is flagged intake-cross exactly
// when the shards of its own give chains span more than one engine —
// the digraph-reachability criterion restricted to what intake can see
// (arcs the offer itself contributes). A single-transfer offer is never
// intake-cross by construction.
func TestShardMapCrossDetection(t *testing.T) {
	m := NewMap(4)
	chains := make([]string, 16)
	for i := range chains {
		chains[i] = fmt.Sprintf("c%03d", i)
	}
	mk := func(names ...string) core.Offer {
		off := engine.LoadOfferOn(0, 0, 3, 0, names[0])
		for _, nm := range names[1:] {
			tr := off.Give[0]
			tr.Chain = nm
			tr.Asset = tr.Asset + "-x"
			off.Give = append(off.Give, tr)
		}
		return off
	}
	for a := 0; a < len(chains); a++ {
		if _, cross := m.OfOffer(mk(chains[a])); cross {
			t.Fatalf("single-transfer offer on %s flagged cross", chains[a])
		}
		for b := 0; b < len(chains); b++ {
			off := mk(chains[a], chains[b])
			home, cross := m.OfOffer(off)
			want := m.Of(chains[a]) != m.Of(chains[b])
			if cross != want {
				t.Fatalf("offer %s+%s: cross=%v, want %v", chains[a], chains[b], cross, want)
			}
			if home != m.Of(chains[a]) {
				t.Fatalf("offer %s+%s: home %d, want first-give shard %d",
					chains[a], chains[b], home, m.Of(chains[a]))
			}
		}
	}
}

// TestShardMapPools: the generated pools are disjoint, sized as asked,
// and internally consistent — every name in pool s hashes to shard s
// under the same map, so a ring drawn from one pool is shard-local by
// construction and one mixing two pools is cross-shard.
func TestShardMapPools(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		m := NewMap(n)
		pools := m.Pools(4)
		if len(pools) != n {
			t.Fatalf("n=%d: %d pools", n, len(pools))
		}
		seen := map[string]bool{}
		for s, pool := range pools {
			if len(pool) != 4 {
				t.Fatalf("n=%d: pool %d has %d chains, want 4", n, s, len(pool))
			}
			for _, name := range pool {
				if seen[name] {
					t.Fatalf("n=%d: chain %s appears in two pools", n, name)
				}
				seen[name] = true
				if m.Of(name) != s {
					t.Fatalf("n=%d: chain %s in pool %d but maps to shard %d",
						n, name, s, m.Of(name))
				}
			}
		}
	}
}
