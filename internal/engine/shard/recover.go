package shard

import (
	"fmt"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/durable"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
)

// Recover rebuilds a ShardedEngine from a durable store. The sharded
// deployment logs into ONE write-ahead log — every inner engine appends
// to the same store, and events carry shard-independent identities
// (router-assigned order IDs, canonical swap tags) — so recovery folds
// the log exactly once with durable's standard machinery and then
// re-partitions the result: identities into the shared keyring, assets
// re-minted once into the shared registry, orders routed to their home
// shards by the same map intake uses. A shard crash mid-escalation
// resolves like any other in-flight state: an order the sweep had moved
// to the coordinator folds back to its booked offer, recovers into its
// home shard, and — its submit tick being long past the cutoff —
// re-escalates on the first sweep. A swap the coordinator had PREPARED
// (EvPrepared logged, reservations held on every involved shard) but not
// committed folds to pending orders: the reservations died with the
// process, so the prepare is refunded and the orders resume. See
// DESIGN.md §11.
//
// The returned engine has not been Started; the caller Starts it exactly
// like a fresh one.
func Recover(cfg Config, opts durable.RecoverOptions) (*ShardedEngine, *durable.Recovery, error) {
	begin := time.Now()
	st, err := durable.Open(durable.Options{Dir: opts.Dir, SnapshotEvery: opts.SnapshotEvery})
	if err != nil {
		return nil, nil, err
	}
	if !st.HasData() {
		st.Close()
		return nil, nil, fmt.Errorf("%w in %s", durable.ErrNoState, opts.Dir)
	}
	resolved, err := st.ResolvedState(opts.CutTick)
	if err != nil {
		st.Close()
		return nil, nil, err
	}

	recTick := resolved.MaxTick
	if opts.CutTick > 0 && opts.CutTick > recTick {
		recTick = opts.CutTick
	}
	delta := cfg.Engine.Delta
	if delta <= 0 {
		delta = core.DefaultDelta
	}
	recState, resumed, refunded := resolved.Resolve(recTick, delta)

	if opts.Attach {
		if err := st.AttachResolved(resolved); err != nil {
			st.Close()
			return nil, nil, err
		}
		cfg.Engine.Store = st
	} else {
		if err := st.Close(); err != nil {
			return nil, nil, err
		}
		cfg.Engine.Store = nil
	}

	s, err := NewRecovered(cfg, recState)
	if err != nil {
		if opts.Attach {
			st.Close()
		}
		return nil, nil, err
	}
	rec := &durable.Recovery{
		Events:   resolved.Events,
		Resumed:  resumed,
		Refunded: refunded,
		Tick:     recTick,
		WallMs:   float64(time.Since(begin)) / float64(time.Millisecond),
	}
	if opts.Attach {
		rec.Store = st
	}
	// Recovery counters ride on shard 0's aggregate; Merge copies them
	// into the merged report (exactly one engine carries them).
	s.shards[0].SetRecoveryStats(metrics.RecoveryStats{
		Replayed: rec.Events,
		Resumed:  rec.Resumed,
		Refunded: rec.Refunded,
		WallMs:   rec.WallMs,
	})
	return s, rec, nil
}
