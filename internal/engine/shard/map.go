// Package shard partitions the clearing engine by asset chain: a
// ShardedEngine runs N full engines — each with its own order book,
// clearing loop, and scheduler stripe — over ONE shared scheduler, chain
// registry, keyring, verification cache, and trace ring. A deterministic
// asset→shard map routes every intake offer to the engine owning its
// give-chain; offers whose transfers span shards, and shard-local offers
// that age out unmatched (their counterparties live in other shards'
// books), escalate to a two-level coordinator engine that assembles the
// cross-shard ring and drives the swap through the same conc/htlc
// machinery, with AC3-style prepared/committed bookkeeping in the durable
// WAL. See DESIGN.md §11.
package shard

import (
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/core"
)

// FNV-1a 64-bit constants (hash/fnv, inlined to keep Of allocation-free
// on the intake path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Map is the deterministic asset→shard partition: a chain's shard is
// FNV-1a(chain name) mod N. It is a pure function of the name and the
// shard count — every process (router, coordinator, recovery, CI baseline
// diff) computes the same placement with no shared state, and remapping
// to a different shard count re-folds the same chains onto fewer or more
// engines without touching ledger contents.
type Map struct {
	n int
}

// NewMap builds the partition for n shards (floored at 1).
func NewMap(n int) Map {
	if n < 1 {
		n = 1
	}
	return Map{n: n}
}

// Shards reports the shard count.
func (m Map) Shards() int { return m.n }

// Of maps a chain name to its owning shard in [0, Shards).
func (m Map) Of(chainName string) int {
	h := uint64(fnvOffset64)
	for i := 0; i < len(chainName); i++ {
		h ^= uint64(chainName[i])
		h *= fnvPrime64
	}
	return int(h % uint64(m.n))
}

// OfOffer resolves an offer's home shard — the shard of its first give
// transfer's chain — and reports whether the offer is intake-cross: its
// own transfers span more than one shard, so no single shard engine can
// even reserve its legs and it routes straight to the coordinator. A
// single-transfer offer is never intake-cross; when its COUNTERPARTIES
// live on other shards the ring is cross-shard in a way intake cannot
// see (matching is what discovers counterparties), and the escalation
// sweep catches it by age instead.
func (m Map) OfOffer(offer core.Offer) (home int, cross bool) {
	if len(offer.Give) == 0 {
		return 0, false
	}
	home = m.Of(offer.Give[0].Chain)
	for _, tr := range offer.Give[1:] {
		if m.Of(tr.Chain) != home {
			cross = true
			break
		}
	}
	return home, cross
}

// Pools builds deterministic per-shard chain-name pools of perShard
// chains each, by walking a canonical name sequence ("c000", "c001", …)
// and keeping each name for the shard it hashes to. The load generator
// uses them to make ring placement a controlled variable: a ring built
// entirely from pool s is shard-local under this map, one mixing two
// pools is cross-shard. The walk is a pure function of (Shards,
// perShard), so generators, tests, and CI baselines agree on the pools
// without coordination.
func (m Map) Pools(perShard int) [][]string {
	if perShard < 1 {
		perShard = 1
	}
	pools := make([][]string, m.n)
	filled := 0
	for i := 0; filled < m.n; i++ {
		name := fmt.Sprintf("c%03d", i)
		s := m.Of(name)
		if len(pools[s]) < perShard {
			pools[s] = append(pools[s], name)
			if len(pools[s]) == perShard {
				filled++
			}
		}
	}
	return pools
}
