package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Config parameterizes a ShardedEngine.
type Config struct {
	// Shards is the number of shard engines (default 4). The coordinator
	// is one more engine on top.
	Shards int
	// EscalateAfter is how many ticks an order may sit unmatched in a
	// shard book before the sweep escalates it to the coordinator
	// (default 4× the clearing cadence — four shard-local rounds get
	// first shot at every order). The cutoff is applied to the order's
	// ORIGINAL submit tick, so escalation timing is independent of the
	// shard count — the property the 4-vs-1 digest equality rests on.
	EscalateAfter vtime.Duration
	// Engine is the base configuration every inner engine is built from.
	// Workers is the TOTAL executor budget, split evenly across the
	// shards and the coordinator. The injection fields (Scheduler,
	// Registry, Keyring, Cache, Tracer, Probe, ShardStripe, TailPrio,
	// CanonicalSwapTags, LogPrepared, ShardOfChain) belong to the
	// ShardedEngine and must be left unset.
	Engine engine.Config
}

type shardedState int

const (
	shardedRunning shardedState = iota
	shardedDraining
	shardedStopped
)

// ShardedEngine is the two-level clearing service: N shard engines
// clearing shard-local rings in parallel, one coordinator engine
// clearing the cross-shard remainder. All N+1 engines share one
// scheduler (shard clearing stripes run concurrently under
// striped-parallel dispatch), one chain registry (a single reservation
// table spans every shard, so a cross-shard swap's prepare holds assets
// on all involved shards), one keyring, one verification cache, and one
// trace ring. Per-round clearing cost drops from O(global book) to
// O(shard book): each engine partitions only the offers routed to it.
//
// The deterministic tick ladder on the shared scheduler is
//
//	level 0  protocol events (deliveries, horizons)
//	level 1  shard clearing, one stripe per shard
//	level 2  escalation sweep
//	level 3  coordinator clearing
//
// with a dispatch barrier between levels, so every shard's clearing pass
// sees the same pre-tick state, the sweep sees every shard's post-
// clearing book, and the coordinator sees every escalation of its tick.
type ShardedEngine struct {
	cfg Config
	m   Map

	sch    sched.Scheduler
	vsched *sched.Virtual // sch when virtual, nil otherwise

	reg     *chain.Registry
	keyring *core.Keyring
	vcache  *hashkey.VerifyCache
	tracer  *trace.Log

	shards  []*engine.Engine
	coord   *engine.Engine
	engines []*engine.Engine // shards then coordinator: the fixed merge order

	// nextID is the global order sequence: the router assigns IDs at
	// intake so an order's identity (and everything derived from it —
	// swap tags, seeds, stripes) is independent of which engine books it.
	nextID atomic.Uint64

	clearEvery vtime.Duration
	escAfter   vtime.Duration

	// startedAt is the deployment's metrics epoch: the merged report is
	// assembled at report time, so it inherits this instant instead of
	// measuring a zero-length run.
	startedAt time.Time

	// The escalation sweep mirrors the engine's clearing loop: a
	// self-rescheduling timer, a stopped flag, a parked flag re-armed by
	// intake, and a WaitGroup so Stop can wait out a tick in flight.
	escMu      sync.Mutex
	escTimer   sched.Timer
	escStopped bool
	escParked  bool
	escWG      sync.WaitGroup

	mu     sync.Mutex
	state  shardedState
	killed bool

	// recovered marks an engine rebuilt by Recover; recMinted is the
	// recovery-time re-mint audit list (the inner engines' own minted
	// lists only cover post-recovery intake — see NewRecovered).
	recovered bool
	recMinted []recMint
}

type recMint struct {
	chain  string
	asset  chain.AssetID
	amount uint64
}

// New creates a sharded engine. Call Start, Submit from any goroutine,
// and Drain/Stop to wind down — the same lifecycle as engine.Engine.
func New(cfg Config) *ShardedEngine {
	s, _ := build(cfg, nil)
	return s
}

// build assembles the shared infrastructure and the N+1 inner engines.
// rst, when non-nil, is a recovered state to resurrect from (see
// NewRecovered); nil builds a fresh engine.
func build(cfg Config, rst *engine.RecoveredState) (*ShardedEngine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	base := cfg.Engine
	// Normalize the knobs this package reads before engine.New applies
	// its own (identical) defaults to each inner copy.
	if base.Workers <= 0 {
		base.Workers = 8
	}
	if base.Tick <= 0 {
		base.Tick = time.Millisecond
	}
	if base.ClearInterval <= 0 {
		base.ClearInterval = 2 * time.Millisecond
	}
	if base.ClearEvery <= 0 {
		base.ClearEvery = vtime.Duration(base.ClearInterval / base.Tick)
		if base.ClearEvery < 1 {
			base.ClearEvery = 1
		}
	}
	if base.Parallel {
		base.Deterministic = true
	}
	if base.Deterministic {
		base.Virtual = true
	}
	if cfg.EscalateAfter <= 0 {
		cfg.EscalateAfter = 4 * base.ClearEvery
	}

	s := &ShardedEngine{
		cfg:        cfg,
		m:          NewMap(cfg.Shards),
		clearEvery: base.ClearEvery,
		escAfter:   cfg.EscalateAfter,
		startedAt:  time.Now(),
	}

	// One scheduler for everything. The stripe key space is partitioned
	// by construction: swap runs stripe on their canonical sequence,
	// shard clearing on 1..N at level 1, the sweep on N+2 at level 2,
	// coordinator clearing on N+1 at level 3.
	switch {
	case base.Parallel:
		s.vsched = sched.NewVirtualParallel(base.Workers)
		s.sch = s.vsched
	case base.Deterministic:
		s.vsched = sched.NewVirtual()
		s.sch = s.vsched
	case base.Virtual:
		s.vsched = sched.NewVirtualConcurrent()
		s.sch = s.vsched
	default:
		s.sch = sched.NewReal(base.Tick)
	}

	s.reg = chain.NewRegistry(s.sch)
	if base.Commitment.Enabled() {
		// One commitment model set for the whole deployment, installed on
		// the SHARED registry before any chain exists: every shard's view
		// of a chain's finality (and its fate stream) is the same object,
		// which is what makes serial and sharded digests agree.
		if err := s.reg.SetCommitmentModels(base.Commitment.Model); err != nil {
			return nil, err
		}
		s.reg.SetChainProbeFactory(func(string) chain.DeliveryProbe {
			return sched.NewLatencyProbe()
		})
	}
	s.keyring = core.NewKeyring(rand.New(rand.NewSource(base.Seed + 2)))
	s.vcache = hashkey.NewVerifyCache(0)
	if !base.DisableBatchVerify {
		// Size the shared batch-verify pool ONCE from the machine's total
		// budget. Each inner engine sees an injected cache and leaves the
		// sizing alone — N shards never stack N default pools on one box.
		bw := base.Workers
		if n := runtime.GOMAXPROCS(0); bw > n {
			bw = n
		}
		s.vcache.SetBatchWorkers(bw)
	}
	s.tracer = trace.NewLog(trace.DefaultCap)

	// Partition a recovered order book by home shard before the engines
	// exist: terminal orders are history and belong wherever their offer
	// would route today; pending ones re-enter that book and re-clear
	// (an order escalated to the coordinator before the crash goes back
	// to its home shard — its submit tick is old, so the first sweep
	// re-escalates it immediately).
	var parts [][]engine.RecoveredOrder
	if rst != nil {
		parts = make([][]engine.RecoveredOrder, cfg.Shards+1)
		for _, ro := range rst.Orders {
			home, cross := s.m.OfOffer(ro.Offer)
			if cross {
				home = cfg.Shards
			}
			parts[home] = append(parts[home], ro)
		}
	}

	perW := base.Workers / cfg.Shards
	if perW < 1 {
		perW = 1
	}
	probes := make([]*sched.LatencyProbe, 0, cfg.Shards+1)
	newEngine := func(ec engine.Config, part int) (*engine.Engine, error) {
		if rst == nil {
			return engine.New(ec), nil
		}
		es := engine.RecoveredState{
			Orders:    parts[part],
			NextOrder: rst.NextOrder,
			NextSwap:  rst.NextSwap,
			// Identities, Assets, and Tick are deliberately zero: the
			// keyring, registry, and clock are shared, restored once at
			// the sharded level below.
		}
		if part == 0 {
			es.Shed = rst.Shed
		}
		return engine.NewRecovered(ec, es)
	}
	for i := 0; i < cfg.Shards; i++ {
		p := sched.NewLatencyProbe()
		probes = append(probes, p)
		ec := base
		ec.Workers = perW
		ec.Scheduler = s.sch
		ec.Registry = s.reg
		ec.Keyring = s.keyring
		ec.Cache = s.vcache
		ec.Tracer = s.tracer
		ec.Probe = p
		ec.ShardStripe = uint64(i + 1)
		ec.TailPrio = 1
		ec.CanonicalSwapTags = true
		eng, err := newEngine(ec, i)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, eng)
	}
	cp := sched.NewLatencyProbe()
	probes = append(probes, cp)
	cc := base
	cc.Workers = perW
	cc.Scheduler = s.sch
	cc.Registry = s.reg
	cc.Keyring = s.keyring
	cc.Cache = s.vcache
	cc.Tracer = s.tracer
	cc.Probe = cp
	cc.ShardStripe = uint64(cfg.Shards + 1)
	cc.TailPrio = 3
	cc.CanonicalSwapTags = true
	cc.LogPrepared = true
	cc.ShardOfChain = s.m.Of
	coord, err := newEngine(cc, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s.coord = coord
	s.engines = append(append([]*engine.Engine{}, s.shards...), s.coord)

	// The registry reports delivery lag with no notion of which shard's
	// swap produced it; fan every observation out so each engine's
	// adaptive-Δ controller sees the machine-wide evidence (a safe upper
	// bound on its own — Δ adapts to the slowest observed delivery).
	s.reg.SetDeliveryProbe(probeFan(probes))

	if rst != nil {
		s.recovered = true
		for _, id := range rst.Identities {
			if err := s.keyring.Restore(chain.PartyID(id.Party), id.Seed); err != nil {
				return nil, err
			}
		}
		// Re-mint once into the shared registry; the per-engine minted
		// audit lists only see post-recovery intake, so the sharded level
		// keeps its own list and audits it in verifyLedgers.
		for _, a := range rst.Assets {
			if err := s.reg.Chain(a.Chain).RegisterAsset(chain.Asset{
				ID: a.Asset, Amount: a.Amount,
			}, chain.PartyID(a.Owner)); err != nil {
				return nil, fmt.Errorf("shard: recovery re-mint %s/%s: %w", a.Chain, a.Asset, err)
			}
			s.recMinted = append(s.recMinted, recMint{chain: a.Chain, asset: a.Asset, amount: a.Amount})
		}
		s.nextID.Store(rst.NextOrder)
		// Advance the shared virtual clock to the recovery tick, once
		// (the inner engines were built with Tick 0 and skipped their own
		// advance).
		if s.vsched != nil && rst.Tick > 0 {
			done := make(chan struct{})
			s.sch.At(rst.Tick, func() { close(done) })
			<-done
		}
	}
	// Identity persistence is wired AFTER restore: a restored identity is
	// already in the log. The shared keyring gets exactly one hook; the
	// inner engines see an injected keyring and wire nothing.
	if base.Store != nil {
		st := base.Store
		s.keyring.OnCreate(func(p chain.PartyID, seed []byte) {
			st.Append(engine.Event{
				Kind: engine.EvIdentity, Tick: s.sch.Now(),
				Party: string(p), Seed: seed,
			})
		})
	}
	return s, nil
}

// NewRecovered builds a sharded engine from a recovered durable state:
// identities restored into the shared keyring, assets re-minted once
// into the shared registry, orders re-routed to their home shards (the
// same map intake uses), ID sequences resumed globally, and the shared
// clock advanced to the recovery tick. See Recover for the full
// store-to-engine path.
func NewRecovered(cfg Config, rst engine.RecoveredState) (*ShardedEngine, error) {
	return build(cfg, &rst)
}

// probeFan broadcasts one registry delivery observation to every
// engine's latency probe.
type probeFan []*sched.LatencyProbe

func (f probeFan) Observe(lag vtime.Duration) {
	for _, p := range f {
		p.Observe(lag)
	}
}

// ShardMap exposes the asset→shard partition.
func (s *ShardedEngine) ShardMap() Map { return s.m }

// Shards reports the shard count (excluding the coordinator).
func (s *ShardedEngine) Shards() int { return s.cfg.Shards }

// Scheduler exposes the shared time scheduler (for load generators).
func (s *ShardedEngine) Scheduler() sched.Scheduler { return s.sch }

// Tick reports the configured wall duration of one virtual tick.
func (s *ShardedEngine) Tick() time.Duration { return s.shards[0].Tick() }

// Registry exposes the shared chain registry.
func (s *ShardedEngine) Registry() *chain.Registry { return s.reg }

// Keyring exposes the shared party keyring.
func (s *ShardedEngine) Keyring() *core.Keyring { return s.keyring }

// VerifyCacheStats snapshots the shared hashkey verification cache.
func (s *ShardedEngine) VerifyCacheStats() hashkey.CacheStats { return s.vcache.Stats() }

// Recovered reports whether this engine was rebuilt from a durable log.
func (s *ShardedEngine) Recovered() bool { return s.recovered }

// Coordinator exposes the cross-shard coordinator engine (tests and
// diagnostics; routing belongs to Submit).
func (s *ShardedEngine) Coordinator() *engine.Engine { return s.coord }

// Shard exposes shard engine i (tests and diagnostics).
func (s *ShardedEngine) Shard(i int) *engine.Engine { return s.shards[i] }

// Start launches every inner engine and the escalation sweep.
func (s *ShardedEngine) Start() error {
	for _, e := range s.engines {
		if err := e.Start(); err != nil {
			return err
		}
	}
	s.scheduleSweep()
	return nil
}

// Submit routes one offer: assign the next global order ID, resolve the
// home shard from the give-chain map, and book it there — or on the
// coordinator directly when the offer's own transfers span shards.
// Safe to call from many goroutines (deterministic runs submit from
// scheduler callbacks, exactly like the single engine).
func (s *ShardedEngine) Submit(offer core.Offer) (engine.OrderID, error) {
	s.mu.Lock()
	running := s.state == shardedRunning
	s.mu.Unlock()
	if !running {
		return 0, engine.ErrNotRunning
	}
	home, cross := s.m.OfOffer(offer)
	target := s.coord
	if !cross {
		target = s.shards[home]
	}
	// The ID is drawn before booking, so a rejected offer burns one;
	// gaps are harmless (nothing assumes density), and the alternative —
	// allocating under a router-wide lock held across booking — would
	// serialize intake across shards.
	id := engine.OrderID(s.nextID.Add(1))
	err := target.SubmitRouted(engine.Routed{
		ID:            id,
		Offer:         offer,
		SubmittedTick: s.sch.Now(),
		SubmittedAt:   time.Now(),
	})
	if err != nil {
		return 0, err
	}
	s.ensureSweep()
	return id, nil
}

// NoteShed records dropped arrivals (on shard 0, whose aggregate the
// merged report folds in like any other).
func (s *ShardedEngine) NoteShed(n int) { s.shards[0].NoteShed(n) }

// NoteShedFrom is NoteShed with party attribution (fair shedding's WAL
// trail); recorded on shard 0 like NoteShed.
func (s *ShardedEngine) NoteShedFrom(party chain.PartyID, n int) {
	s.shards[0].NoteShedFrom(party, n)
}

// PendingOf reports the named party's pending-order count across every
// shard and the coordinator (a party may have orders on several shards,
// and escalated ones sit in the coordinator's book).
func (s *ShardedEngine) PendingOf(party chain.PartyID) int {
	n := 0
	for _, e := range s.engines {
		n += e.PendingOf(party)
	}
	return n
}

// PendingParties reports distinct parties with pending orders, summed
// per engine: a party straddling shards counts once per book it occupies,
// which keeps the fair-share quota conservative (never larger than the
// true per-party share).
func (s *ShardedEngine) PendingParties() int {
	n := 0
	for _, e := range s.engines {
		n += e.PendingParties()
	}
	return n
}

// sweepAt schedules fn at tick t on the escalation level of the ladder.
func (s *ShardedEngine) sweepAt(t vtime.Ticks, fn func()) sched.Timer {
	if s.vsched != nil {
		return s.vsched.AtTailN(t, 2, uint64(s.cfg.Shards+2), fn)
	}
	return s.sch.At(t, fn)
}

// nextSweepTick aligns the sweep to the same ClearEvery grid the
// deterministic clearing loops run on: at any grid tick the ladder is
// shard clearing → sweep → coordinator clearing, whatever the shard
// count — the alignment the digest-equality contract needs.
func (s *ShardedEngine) nextSweepTick() vtime.Ticks {
	now := s.sch.Now()
	if s.vsched == nil || !s.cfg.Engine.Deterministic {
		return now.Add(s.clearEvery)
	}
	every := int64(s.clearEvery)
	return vtime.Ticks((int64(now)/every + 1) * every)
}

func (s *ShardedEngine) scheduleSweep() {
	s.escMu.Lock()
	defer s.escMu.Unlock()
	if s.escStopped {
		return
	}
	s.escTimer = s.sweepAt(s.nextSweepTick(), func() {
		s.escMu.Lock()
		if s.escStopped {
			s.escMu.Unlock()
			return
		}
		s.escWG.Add(1)
		s.escMu.Unlock()
		defer s.escWG.Done()
		if s.sweepTick() {
			s.scheduleSweep()
		}
	})
}

// ensureSweep re-arms a parked sweep (no-op otherwise).
func (s *ShardedEngine) ensureSweep() {
	s.escMu.Lock()
	parked := s.escParked
	s.escParked = false
	s.escMu.Unlock()
	if parked {
		s.scheduleSweep()
	}
}

// stopSweep cancels the sweep timer; wait, when set, additionally waits
// out a tick in flight (Stop waits; Kill — callable from scheduler
// callbacks — must not).
func (s *ShardedEngine) stopSweep(wait bool) {
	s.escMu.Lock()
	s.escStopped = true
	t := s.escTimer
	s.escMu.Unlock()
	if t != nil {
		t.Stop()
	}
	if wait {
		s.escWG.Wait()
	}
}

// sweepTick is one escalation round: withdraw every order that has aged
// past the cutoff from every shard book and re-book it — same ID, same
// original submit instants — on the coordinator, in global ID order.
// Runs at level 2 of the tick ladder: after every shard's clearing pass
// of the tick (an order a shard can still match locally is matched, not
// escalated), before the coordinator's. The return value says whether to
// stay armed: with every shard book empty the sweep parks and intake
// re-arms it.
func (s *ShardedEngine) sweepTick() bool {
	cutoff := s.sch.Now().Add(-s.escAfter)
	var moved []engine.Routed
	for _, sh := range s.shards {
		moved = append(moved, sh.TakeEscalatable(cutoff)...)
	}
	// Each shard returns its own book in ID order; merge to global ID
	// order so the coordinator's book order — and therefore its batch
	// scan — is independent of the shard count.
	sort.Slice(moved, func(i, j int) bool { return moved[i].ID < moved[j].ID })
	for _, r := range moved {
		if err := s.coord.SubmitRouted(r); err != nil {
			// Only a dying coordinator refuses (Kill raced the sweep); the
			// order is part of the crash the WAL already covers.
			break
		}
	}
	rem := 0
	for _, sh := range s.shards {
		rem += sh.Pending()
	}
	if rem == 0 {
		s.escMu.Lock()
		s.escParked = true
		s.escMu.Unlock()
		// Re-check under the parked flag: an order booked between the
		// count and the park saw an armed sweep and did not re-arm it.
		for _, sh := range s.shards {
			if sh.Pending() > 0 {
				s.ensureSweep()
				break
			}
		}
		return false
	}
	return true
}

// Pending reports the total book depth across every engine.
func (s *ShardedEngine) Pending() int {
	n := 0
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// InFlight reports the total cleared swaps queued or executing.
func (s *ShardedEngine) InFlight() int {
	n := 0
	for _, e := range s.engines {
		n += e.InFlight()
	}
	return n
}

// Order returns one order's snapshot, wherever it currently lives.
func (s *ShardedEngine) Order(id engine.OrderID) (engine.OrderSnapshot, bool) {
	for _, e := range s.engines {
		if snap, ok := e.Order(id); ok {
			return snap, true
		}
	}
	return engine.OrderSnapshot{}, false
}

// Orders snapshots every order across every engine, in global ID order.
// The sets are disjoint by construction: escalation WITHDRAWS an order
// from its shard before the coordinator re-books it.
func (s *ShardedEngine) Orders() []engine.OrderSnapshot {
	var out []engine.OrderSnapshot
	for _, e := range s.engines {
		out = append(out, e.Orders()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Report assembles the merged service-level metrics: every engine's
// aggregate folded in fixed shard order, with the signature count taken
// once from the shared keyring (never summed per engine — they all meter
// into the same counter).
func (s *ShardedEngine) Report() metrics.Throughput {
	agg := metrics.NewAggregate()
	agg.SetStartedAt(s.startedAt)
	for _, e := range s.engines {
		e.MergeMetricsInto(agg)
	}
	agg.SetSigns(s.keyring.Signs())
	if s.cfg.Engine.Commitment.Enabled() {
		base := s.coord.CurrentDelta()
		deltas := make(map[string]int)
		for _, name := range s.reg.ModeledChains() {
			deltas[name] = int(s.reg.Chain(name).Timing().EffectiveDelta(base))
		}
		if len(deltas) > 0 {
			agg.SetChainDeltas(deltas)
		}
	}
	return agg.Snapshot()
}

// CurrentDelta reports the coordinator's current Δ (under adaptive Δ all
// engines adapt from the same fanned-out evidence, so any engine's value
// is representative).
func (s *ShardedEngine) CurrentDelta() vtime.Duration { return s.coord.CurrentDelta() }

// ClearRounds reports the merged active-round count. Deterministic runs
// merge per-engine round tick SETS — a tick where k engines all had live
// work counts once, exactly as the same work would in a 1-shard run —
// so the count is comparable across shard counts. Non-deterministic
// runs report the plain sum. Call only after Stop.
func (s *ShardedEngine) ClearRounds() int {
	if s.cfg.Engine.Deterministic || s.cfg.Engine.Parallel {
		ticks := make(map[vtime.Ticks]bool)
		for _, e := range s.engines {
			for _, t := range e.ClearRoundTicks() {
				ticks[t] = true
			}
		}
		return len(ticks)
	}
	n := 0
	for _, e := range s.engines {
		n += e.ClearRounds()
	}
	return n
}

// Kill stops the whole sharded engine abruptly — the crash-model
// shutdown. One process hosts every shard, so one crash takes all of
// them: the sweep stops, every engine is killed, and the returned cut
// tick bounds what recovery replays. Call from a scheduler callback (as
// the crash scenarios do) and the cut is one well-defined tick across
// all engines. Call Stop afterwards to release workers and the
// scheduler.
func (s *ShardedEngine) Kill() vtime.Ticks {
	s.mu.Lock()
	if s.state == shardedRunning {
		s.state = shardedDraining
	}
	s.killed = true
	s.mu.Unlock()
	s.stopSweep(false)
	var cut vtime.Ticks
	for _, e := range s.engines {
		cut = e.Kill()
	}
	return cut
}

// Drain stops intake and waits for every book and every executor pool
// to empty. Shard books drain first — the sweep escalates anything
// their local rounds cannot match — then the coordinator, whose
// drain-stall detection rejects the true unmatchables.
func (s *ShardedEngine) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.state == shardedRunning {
		s.state = shardedDraining
	}
	killed := s.killed
	s.mu.Unlock()
	if !killed {
		// Wait out the shard books: local rounds clear what they can,
		// the sweep moves the rest to the coordinator, and under virtual
		// time the clock free-runs through both. Coarse poll — every
		// transition is scheduler-driven, this loop only observes it.
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			n := 0
			for _, sh := range s.shards {
				n += sh.Pending()
			}
			if n == 0 {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick.C:
			}
		}
	}
	for _, sh := range s.shards {
		if err := sh.Drain(ctx); err != nil {
			return err
		}
	}
	return s.coord.Drain(ctx)
}

// Stop gracefully shuts the sharded engine down: drain everything, stop
// the sweep, stop every inner engine, and close the shared scheduler
// (once — the inner engines know it is injected and leave it alone).
func (s *ShardedEngine) Stop(ctx context.Context) error {
	drainErr := s.Drain(ctx)
	s.mu.Lock()
	if s.state == shardedStopped {
		s.mu.Unlock()
		return drainErr
	}
	s.state = shardedStopped
	s.mu.Unlock()
	s.stopSweep(true)
	for _, e := range s.engines {
		if err := e.Stop(ctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if s.vsched != nil {
		s.vsched.Close()
	}
	return drainErr
}

// VerifyConservation checks the no-double-spend invariant across the
// whole sharded deployment: every engine's minted assets, plus every
// asset recovery re-minted at the sharded level, still exist exactly
// once with their recorded amounts, and every ledger hash chain is
// intact. When nothing is in flight anywhere it additionally requires
// party ownership (no stranded escrow).
func (s *ShardedEngine) VerifyConservation() error { return s.verifyLedgers(true) }

// VerifyLedgerIntegrity is VerifyConservation without the stranded-
// escrow check (crash-faulted scenarios — see the engine counterpart).
func (s *ShardedEngine) VerifyLedgerIntegrity() error { return s.verifyLedgers(false) }

func (s *ShardedEngine) verifyLedgers(strandCheck bool) error {
	for i, e := range s.engines {
		var err error
		if strandCheck {
			err = e.VerifyConservation()
		} else {
			err = e.VerifyLedgerIntegrity()
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// The recovery re-mints bypass the inner engines' audit lists.
	if len(s.recMinted) == 0 {
		return nil
	}
	if !s.reg.VerifyAllLedgers() {
		return errors.New("shard: ledger hash chain broken")
	}
	quiescent := s.InFlight() == 0
	for _, m := range s.recMinted {
		ch := s.reg.Chain(m.chain)
		a, ok := ch.Asset(m.asset)
		if !ok {
			return fmt.Errorf("shard: recovered asset %s/%s vanished", m.chain, m.asset)
		}
		if a.Amount != m.amount {
			return fmt.Errorf("shard: recovered asset %s/%s amount changed: minted %d, now %d",
				m.chain, m.asset, m.amount, a.Amount)
		}
		owner, ok := ch.OwnerOf(m.asset)
		if !ok {
			return fmt.Errorf("shard: recovered asset %s/%s has no owner", m.chain, m.asset)
		}
		if strandCheck && quiescent && owner.Kind != chain.OwnerParty {
			return fmt.Errorf("shard: recovered asset %s/%s stranded in escrow (%s)",
				m.chain, m.asset, owner)
		}
	}
	return nil
}
