package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// testConfig gives each swap generous wall-clock slack per Δ: the timeout
// arithmetic assumes chain events are observed within Δ, and on a loaded
// single-core CI box scheduler jitter must stay well inside that bound.
func testConfig() Config {
	tick := 2 * time.Millisecond
	if raceEnabled {
		tick = 10 * time.Millisecond
	}
	return Config{
		Workers:       16,
		ClearInterval: time.Millisecond,
		Tick:          tick,
		Delta:         15,
		Seed:          42,
	}
}

// ringOffers builds an n-party barter ring with unique per-party assets.
func ringOffers(tag string, parties ...string) []core.Offer {
	offers := make([]core.Offer, len(parties))
	for i, p := range parties {
		next := parties[(i+1)%len(parties)]
		offers[i] = core.Offer{
			Party: chain.PartyID(tag + "-" + p),
			Give: []core.ProposedTransfer{{
				To:     chain.PartyID(tag + "-" + next),
				Chain:  fmt.Sprintf("chain-%s-%s", tag, p),
				Asset:  chain.AssetID(fmt.Sprintf("asset-%s-%s", tag, p)),
				Amount: 1,
			}},
		}
	}
	return offers
}

func drainAndStop(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestEngineLifecycleSingleSwap(t *testing.T) {
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var ids []OrderID
	for _, o := range ringOffers("r1", "alice", "bob", "carol") {
		id, err := e.Submit(o)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	drainAndStop(t, e)

	for _, id := range ids {
		snap, ok := e.Order(id)
		if !ok {
			t.Fatalf("order %d lost", id)
		}
		if snap.Status != StatusSettled || snap.Class != outcome.Deal {
			t.Fatalf("order %d: status %s class %s, want settled Deal", id, snap.Status, snap.Class)
		}
		if snap.Latency <= 0 {
			t.Fatalf("order %d: non-positive latency", id)
		}
	}
	rep := e.Report()
	if rep.OffersSubmitted != 3 || rep.OffersCleared != 3 || rep.SwapsFinished != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	if e.Registry().Reservations() != 0 {
		t.Fatal("reservations leaked")
	}
	// Assets actually moved: alice's asset now belongs to bob.
	owner, _ := e.Registry().Chain("chain-r1-alice").OwnerOf("asset-r1-alice")
	if owner != chain.ByParty("r1-bob") {
		t.Fatalf("asset-r1-alice owned by %s, want r1-bob", owner)
	}
}

// TestEngineKeyringAndCacheReuse pins the hot-path amortizations: a party
// submitting repeatedly keeps one identity across all its swaps (keygen at
// first intake only), and the engine-wide verification cache answers
// extended-hashkey verifications without re-walking chains — re-presented
// extensions are seeded by their presenter, so contracts see pure hits
// (zero signature checks), not even the one-signature fast path.
func TestEngineKeyringAndCacheReuse(t *testing.T) {
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	parties := []string{"alice", "bob", "carol"}
	// The same three parties trade twice over distinct assets: the book
	// clears one offer per party per round, and the second swap must reuse
	// the identities minted for the first.
	for round := 0; round < 2; round++ {
		for i, p := range parties {
			next := parties[(i+1)%len(parties)]
			_, err := e.Submit(core.Offer{
				Party: chain.PartyID(p),
				Give: []core.ProposedTransfer{{
					To:     chain.PartyID(next),
					Chain:  fmt.Sprintf("chain-%s", p),
					Asset:  chain.AssetID(fmt.Sprintf("asset-%s-%d", p, round)),
					Amount: 1,
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	drainAndStop(t, e)

	if got := e.Keyring().Len(); got != len(parties) {
		t.Errorf("keyring holds %d identities after 2 swaps of %d parties, want %d",
			got, len(parties), len(parties))
	}
	st := e.VerifyCacheStats()
	if st.Hits == 0 {
		t.Errorf("no cached verifications under load: %+v", st)
	}
	if st.Hits <= st.Misses {
		t.Errorf("cache mostly missing under repeat traffic: %+v", st)
	}
	rep := e.Report()
	if rep.SwapsFinished != 2 || rep.SwapsFailed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineManyConcurrentSwaps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-swap load test")
	}
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	const rings = 40
	var ids []OrderID
	for i := 0; i < rings; i++ {
		for _, o := range ringOffers(fmt.Sprintf("g%d", i), "a", "b", "c") {
			id, err := e.Submit(o)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	drainAndStop(t, e)

	for _, id := range ids {
		snap, _ := e.Order(id)
		if snap.Status != StatusSettled || snap.Class != outcome.Deal {
			t.Fatalf("order %d: %s/%s", id, snap.Status, snap.Class)
		}
	}
	rep := e.Report()
	if rep.SwapsFinished != rings {
		t.Fatalf("want %d swaps, got %d", rings, rep.SwapsFinished)
	}
	if rep.PeakConcurrent < 2 {
		t.Fatalf("no concurrency observed: peak %d", rep.PeakConcurrent)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDoubleSpendPrevented(t *testing.T) {
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Alice offers the SAME asset into two different pairings. Only one
	// may ever execute; once it settles, the asset belongs to bob and the
	// duplicate must be rejected as spent — never double-committed.
	first := core.Offer{Party: "alice", Give: []core.ProposedTransfer{
		{To: "bob", Chain: "btc", Asset: "alice-utxo", Amount: 7},
	}}
	second := core.Offer{Party: "alice", Give: []core.ProposedTransfer{
		{To: "carol", Chain: "btc", Asset: "alice-utxo", Amount: 7},
	}}
	bob := core.Offer{Party: "bob", Give: []core.ProposedTransfer{
		{To: "alice", Chain: "eth", Asset: "bob-coin", Amount: 3},
	}}
	carol := core.Offer{Party: "carol", Give: []core.ProposedTransfer{
		{To: "alice", Chain: "sol", Asset: "carol-coin", Amount: 2},
	}}
	id1, err := e.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	idB, _ := e.Submit(bob)
	idC, _ := e.Submit(carol)
	drainAndStop(t, e)

	s1, _ := e.Order(id1)
	s2, _ := e.Order(id2)
	sB, _ := e.Order(idB)
	sC, _ := e.Order(idC)
	if s1.Status != StatusSettled || s1.Class != outcome.Deal {
		t.Fatalf("first spend: %s/%s", s1.Status, s1.Class)
	}
	if sB.Status != StatusSettled {
		t.Fatalf("bob: %s", sB.Status)
	}
	if s2.Status != StatusRejected {
		t.Fatalf("duplicate spend not rejected: %s", s2.Status)
	}
	// Carol's counterparty evaporated, so her order is rejected unmatched.
	if sC.Status != StatusRejected {
		t.Fatalf("carol: %s", sC.Status)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	owner, _ := e.Registry().Chain("btc").OwnerOf("alice-utxo")
	if owner != chain.ByParty("bob") {
		t.Fatalf("alice-utxo owned by %s, want bob exactly once", owner)
	}
}

func TestEngineRejectsBadOffers(t *testing.T) {
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(core.Offer{Party: "a"}); !errors.Is(err, ErrBadOffer) {
		t.Fatalf("empty offer: %v", err)
	}
	if _, err := e.Submit(core.Offer{Party: "a", Give: []core.ProposedTransfer{
		{To: "a", Chain: "c", Asset: "s", Amount: 1},
	}}); !errors.Is(err, ErrBadOffer) {
		t.Fatalf("self transfer: %v", err)
	}
	if _, err := e.Submit(core.Offer{Party: "a", Give: []core.ProposedTransfer{
		{To: "b", Chain: "c", Asset: "s", Amount: 5},
	}}); err != nil {
		t.Fatalf("valid offer refused: %v", err)
	}
	// Same asset, different amount: the ledger says 5.
	if _, err := e.Submit(core.Offer{Party: "a", Give: []core.ProposedTransfer{
		{To: "b", Chain: "c", Asset: "s", Amount: 6},
	}}); !errors.Is(err, ErrAssetMismatch) {
		t.Fatalf("amount mismatch: %v", err)
	}
	// One asset backing two transfers in one offer.
	if _, err := e.Submit(core.Offer{Party: "d", Give: []core.ProposedTransfer{
		{To: "b", Chain: "c2", Asset: "dup", Amount: 1},
		{To: "e", Chain: "c2", Asset: "dup", Amount: 1},
	}}); !errors.Is(err, ErrBadOffer) {
		t.Fatalf("duplicate asset in offer: %v", err)
	}
	drainAndStop(t, e)
	if _, err := e.Submit(core.Offer{Party: "x", Give: []core.ProposedTransfer{
		{To: "y", Chain: "c", Asset: "z", Amount: 1},
	}}); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("submit after stop: %v", err)
	}
}

func TestEngineUnmatchedOfferRejectedAtDrain(t *testing.T) {
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	id, err := e.Submit(core.Offer{Party: "lonely", Give: []core.ProposedTransfer{
		{To: "ghost", Chain: "c", Asset: "s", Amount: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	drainAndStop(t, e)
	snap, _ := e.Order(id)
	if snap.Status != StatusRejected {
		t.Fatalf("unmatched offer: %s, want rejected", snap.Status)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineGracefulShutdownUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Hammer intake from several goroutines while the engine drains.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var submitted []OrderID
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, o := range ringOffers(fmt.Sprintf("w%d-%d", g, i), "a", "b") {
					id, err := e.Submit(o)
					if err != nil {
						return // intake closed mid-drain: expected
					}
					mu.Lock()
					submitted = append(submitted, id)
					mu.Unlock()
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Stop(ctx); err != nil {
		t.Fatalf("Stop under load: %v", err)
	}
	wg.Wait()
	// Every accepted order must be terminal: settled or rejected, never
	// stuck pending/executing.
	for _, id := range submitted {
		snap, ok := e.Order(id)
		if !ok {
			t.Fatalf("order %d lost", id)
		}
		if snap.Status != StatusSettled && snap.Status != StatusRejected {
			t.Fatalf("order %d not terminal: %s", id, snap.Status)
		}
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	if e.Registry().Reservations() != 0 {
		t.Fatal("reservations leaked across shutdown")
	}
}

func TestEngineAdversarialTrafficRefundsSafely(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial load test")
	}
	cfg := testConfig()
	cfg.AdversaryRate = 1.0 // every swap gets a silent leader
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var ids []OrderID
	for i := 0; i < 4; i++ {
		for _, o := range ringOffers(fmt.Sprintf("adv%d", i), "a", "b", "c") {
			id, err := e.Submit(o)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	drainAndStop(t, e)
	for _, id := range ids {
		snap, _ := e.Order(id)
		if snap.Status != StatusSettled {
			t.Fatalf("order %d: %s", id, snap.Status)
		}
		// The silent leader griefs the swap: no conforming party may end
		// Underwater — they refund to NoDeal (the leader itself may
		// technically classify differently, but with everyone refunding
		// the uniform outcome is NoDeal).
		if snap.Class == outcome.Underwater {
			t.Fatalf("order %d: conforming party Underwater", id)
		}
	}
	rep := e.Report()
	if rep.Outcomes["NoDeal"] == 0 {
		t.Fatalf("expected aborted swaps, outcomes: %v", rep.Outcomes)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineVirtualTimeMode runs a full load under the virtual scheduler:
// identical outcomes, conservation intact, and the whole load clears in
// CPU time even with a Δ that would mean minutes of wall-clock waiting.
func TestEngineVirtualTimeMode(t *testing.T) {
	cfg := testConfig()
	cfg.Virtual = true
	cfg.Delta = 5000 // ≥ 75s per swap at the real-mode tick; irrelevant here
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var ids []OrderID
	for i := 0; i < 10; i++ {
		for _, o := range ringOffers(fmt.Sprintf("v%d", i), "a", "b", "c") {
			id, err := e.Submit(o)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	start := time.Now()
	drainAndStop(t, e)
	elapsed := time.Since(start)
	// The speed claim, asserted in virtual time rather than against an
	// absolute wall-clock bound (which flaked on slow CI): the virtual
	// clock must have covered more protocol time than the wall time the
	// drain took at the configured tick — i.e. the swaps did NOT wait out
	// their Δ-scaled deadlines in wall time. With Δ=5000 the protocol
	// spans ≥ 2Δ = 10000 ticks ≥ 20s of tick-equivalent time per wave,
	// so a real-scheduler run could never satisfy this.
	vticks := e.Scheduler().Now()
	if equivalent := time.Duration(vticks) * cfg.Tick; equivalent <= elapsed {
		t.Fatalf("virtual clock covered %v (%d ticks) in %v of wall time — no speedup over real time",
			equivalent, vticks, elapsed)
	}
	for _, id := range ids {
		snap, _ := e.Order(id)
		if snap.Status != StatusSettled || snap.Class != outcome.Deal {
			t.Fatalf("order %d: %s/%s", id, snap.Status, snap.Class)
		}
	}
	rep := e.Report()
	if rep.SwapsFinished != 10 || rep.SwapsFailed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDrainRaceVirtualTime hammers intake from several goroutines
// while the engine drains under virtual time: every accepted order must
// reach a terminal state, nothing may leak, and the virtual clock's holds
// must all settle (Stop would hang otherwise).
func TestEngineDrainRaceVirtualTime(t *testing.T) {
	cfg := testConfig()
	cfg.Virtual = true
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var submitted []OrderID
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, o := range ringOffers(fmt.Sprintf("dv%d-%d", g, i), "a", "b", "c") {
					id, err := e.Submit(o)
					if err != nil {
						return // intake closed mid-drain: expected
					}
					mu.Lock()
					submitted = append(submitted, id)
					mu.Unlock()
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let some swaps get in flight
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Stop(ctx); err != nil {
		t.Fatalf("Stop under virtual-time load: %v", err)
	}
	wg.Wait()
	for _, id := range submitted {
		snap, ok := e.Order(id)
		if !ok {
			t.Fatalf("order %d lost", id)
		}
		if snap.Status != StatusSettled && snap.Status != StatusRejected {
			t.Fatalf("order %d not terminal: %s", id, snap.Status)
		}
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	if e.Registry().Reservations() != 0 {
		t.Fatal("reservations leaked across virtual-time shutdown")
	}
}

// TestEngineAdaptiveDelta drives the Δ controller directly through the
// public probe: enough zero-lag observations must shrink Δ to the floor,
// and swaps cleared at the adapted Δ must still all Deal.
func TestEngineAdaptiveDelta(t *testing.T) {
	cfg := testConfig()
	cfg.AdaptiveDelta = true
	cfg.Delta = 30
	cfg.MinDelta = 8
	cfg.MaxDelta = 120
	e := New(cfg)
	if got := e.CurrentDelta(); got != 30 {
		t.Fatalf("initial delta %d, want 30", got)
	}
	// Feed a healthy window and run the controller directly, before Start
	// launches the clearing goroutine (so nothing races the confined
	// state): zero observed lag → Δ = 4·(2·0+1) = 4, clamped up to
	// MinDelta. Driving adaptDelta synchronously replaces the old
	// wall-clock poll loop, which flaked when CI stalled past its
	// 10-second deadline.
	probe := e.Registry().DeliveryProbe()
	for i := 0; i < 64; i++ {
		probe.Observe(0)
	}
	e.adaptDelta()
	if got := e.CurrentDelta(); got != cfg.MinDelta {
		t.Fatalf("delta %d after a zero-lag window, want floor %d (probe %+v)",
			got, cfg.MinDelta, e.LatencyStats())
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// The running clearLoop must dispatch adaptations on its own too:
	// feed a second full window and wait for a trajectory point recorded
	// by the loop (Round ≥ 1 — the manual decision above was Round 0).
	// The wait is condition-based with a wide safety bound, not a tuned
	// wall-clock budget: the loop ticks every ClearInterval (1ms).
	for i := 0; i < 64; i++ {
		probe.Observe(0)
	}
	loopAdapted := func() bool {
		traj := e.Report().DeltaTrajectory
		return len(traj) > 0 && traj[len(traj)-1].Round >= 1
	}
	for deadline := time.Now().Add(60 * time.Second); !loopAdapted(); {
		if time.Now().After(deadline) {
			t.Fatalf("clearLoop never dispatched an adaptation: trajectory %+v (probe %+v)",
				e.Report().DeltaTrajectory, e.LatencyStats())
		}
		time.Sleep(time.Millisecond)
	}
	// Swaps cleared at the shrunken Δ still complete correctly; their own
	// deliveries keep feeding the probe, and Δ stays within bounds.
	for _, o := range ringOffers("ad", "a", "b", "c") {
		if _, err := e.Submit(o); err != nil {
			t.Fatal(err)
		}
	}
	drainAndStop(t, e)
	if d := e.CurrentDelta(); d < cfg.MinDelta || d > cfg.MaxDelta {
		t.Fatalf("delta %d outside [%d, %d]", d, cfg.MinDelta, cfg.MaxDelta)
	}
	rep := e.Report()
	if rep.SwapsFinished != 1 || rep.SwapsFailed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Outcomes["Deal"] != 3 {
		t.Fatalf("outcomes: %v", rep.Outcomes)
	}
	// The controller's decisions surface as telemetry: at least the
	// zero-lag adaptation above must be on the trajectory, with its
	// window evidence attached.
	if len(rep.DeltaTrajectory) == 0 {
		t.Fatal("adaptive run recorded no delta trajectory")
	}
	first := rep.DeltaTrajectory[0]
	if first.DeltaTicks != int(cfg.MinDelta) || first.WindowSamples < adaptMinSamples {
		t.Fatalf("first trajectory point %+v, want Δ=%d from ≥%d samples",
			first, cfg.MinDelta, adaptMinSamples)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAdversarialConcurrentSubmit exercises the clearing path's
// adversary selection (the goroutine-confined rng draw) while many
// goroutines hammer Submit: under -race this is the regression test for
// the rng's confinement contract, and under any build every accepted
// order must still reach a terminal state with conservation intact.
func TestEngineAdversarialConcurrentSubmit(t *testing.T) {
	cfg := testConfig()
	cfg.Virtual = true
	cfg.AdversaryRate = 0.5
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var submitted []OrderID
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, o := range ringOffers(fmt.Sprintf("ar%d-%d", g, i), "a", "b", "c") {
					id, err := e.Submit(o)
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					mu.Lock()
					submitted = append(submitted, id)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	drainAndStop(t, e)
	sabotaged := 0
	for _, id := range submitted {
		snap, ok := e.Order(id)
		if !ok {
			t.Fatalf("order %d lost", id)
		}
		if snap.Status != StatusSettled {
			t.Fatalf("order %d not settled: %s", id, snap.Status)
		}
		if snap.Class == outcome.Underwater {
			t.Fatalf("order %d: conforming party Underwater", id)
		}
		if snap.Class == outcome.NoDeal {
			sabotaged++
		}
	}
	// With AdversaryRate 0.5 over 40 swaps, both branches of the rng draw
	// must have fired: some swaps aborted, some dealt.
	if sabotaged == 0 || sabotaged == len(submitted) {
		t.Fatalf("adversary rate 0.5 produced %d/%d NoDeal orders — rng draw not exercised both ways",
			sabotaged, len(submitted))
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineVirtualStopWithoutStart pins the lifecycle contract: a
// virtual engine owns its scheduler's dispatcher goroutine, and Stop
// releases it even when Start was never called.
func TestEngineVirtualStopWithoutStart(t *testing.T) {
	cfg := testConfig()
	cfg.Virtual = true
	e := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Stop(ctx); err != nil {
		t.Fatalf("Stop without Start: %v", err)
	}
}

// TestEngineDeterministicReplay pins the engine-level replay contract
// underneath the scenario harness: the same seeded offer schedule,
// driven through the scheduler of a Deterministic engine, yields
// identical tick traces (submit and settle ticks per order) on every
// run. The clearing loop rides the shared scheduler now — on a
// wall-clock ticker this diverged run to run.
func TestEngineDeterministicReplay(t *testing.T) {
	trace := func() []OrderSnapshot {
		cfg := testConfig()
		cfg.Deterministic = true
		e := New(cfg)
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		// Install the arrival schedule under a hold, like loadgen does:
		// ring i's three offers land at ticks 4i+1..4i+3.
		sc := e.Scheduler()
		release := sc.Hold()
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			offers := ringOffers(fmt.Sprintf("det%d", i), "a", "b", "c")
			for j, o := range offers {
				o := o
				wg.Add(1)
				sc.At(vtime.Ticks(4*i+j+1), func() {
					defer wg.Done()
					if _, err := e.Submit(o); err != nil {
						t.Errorf("submit: %v", err)
					}
				})
			}
		}
		release()
		wg.Wait()
		drainAndStop(t, e)
		if err := e.VerifyConservation(); err != nil {
			t.Fatal(err)
		}
		return e.Orders()
	}
	a, b := trace(), trace()
	if len(a) != 18 || len(b) != 18 {
		t.Fatalf("traces hold %d/%d orders, want 18", len(a), len(b))
	}
	for i := range a {
		if a[i].SubmittedTick != b[i].SubmittedTick || a[i].SettledTick != b[i].SettledTick ||
			a[i].Status != b[i].Status || a[i].Class != b[i].Class || a[i].Swap != b[i].Swap {
			t.Fatalf("replay diverged at order %d:\n%+v\nvs\n%+v", i, a[i], b[i])
		}
		if a[i].Status == StatusSettled && a[i].SettledTick <= a[i].SubmittedTick {
			t.Fatalf("order %d settled tick %d not after submit tick %d",
				i, a[i].SettledTick, a[i].SubmittedTick)
		}
	}
}

// TestEngineBehaviorFactory exercises the deviation-injection hook: a
// factory that marks one vertex per swap as a silent leader must tag the
// victim order as deviant, count the swap's orders as sabotaged, and
// still leave every conforming party acceptable.
func TestEngineBehaviorFactory(t *testing.T) {
	cfg := testConfig()
	cfg.Virtual = true
	cfg.Behaviors = func(setup *core.Setup, seed int64) SwapBehaviors {
		spec := setup.Spec
		lv := spec.Leaders[0]
		idx, _ := spec.LeaderIndex(lv)
		return SwapBehaviors{
			Behaviors: map[digraph.Vertex]core.Behavior{lv: adversary.SilentLeader(idx)},
			Deviants:  map[digraph.Vertex]string{lv: "silent-leader"},
		}
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, o := range ringOffers(fmt.Sprintf("bf%d", i), "a", "b", "c") {
			if _, err := e.Submit(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	drainAndStop(t, e)
	deviants := 0
	for _, snap := range e.Orders() {
		if snap.Status != StatusSettled {
			t.Fatalf("order %d: %s", snap.ID, snap.Status)
		}
		if snap.Deviant != "" {
			deviants++
			continue
		}
		if !snap.Class.Acceptable() {
			t.Fatalf("conforming order %d ended %s", snap.ID, snap.Class)
		}
	}
	if deviants != 3 {
		t.Fatalf("%d deviant orders, want 3 (one per swap)", deviants)
	}
	rep := e.Report()
	if rep.OrdersSabotaged != 9 {
		t.Fatalf("sabotaged %d orders, want all 9", rep.OrdersSabotaged)
	}
	if rep.Deviations["silent-leader"] != 3 {
		t.Fatalf("deviations: %v", rep.Deviations)
	}
	if rep.OrdersRefunded == 0 {
		t.Fatalf("silent leaders aborted nothing: %v", rep.Outcomes)
	}
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDoubleStartFails(t *testing.T) {
	e := New(testConfig())
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
	drainAndStop(t, e)
	// Stop is idempotent.
	if err := e.Stop(context.Background()); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}
