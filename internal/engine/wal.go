package engine

import (
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// EventKind discriminates write-ahead-log events. Kinds are stable
// strings, not iota constants: they are the on-disk schema.
type EventKind string

// Write-ahead-log event kinds.
const (
	// EvIdentity: a party's signing identity was generated; Party and
	// Seed carry the persisted form.
	EvIdentity EventKind = "identity"
	// EvMinted: an unseen asset was deposited at intake; Chain, Asset,
	// Amount, Party (the owner).
	EvMinted EventKind = "minted"
	// EvBooked: an order entered the pending book; Order, Offer.
	EvBooked EventKind = "booked"
	// EvCleared: a clearing round matched orders into a swap and
	// dispatched it; Swap, Orders.
	EvCleared EventKind = "cleared"
	// EvPrepared: AC3-style prepare record, logged by a cross-shard
	// coordinator after a group's reservations are ALL held and before
	// the swap commits (EvCleared); Swap, Orders, Count (distinct shards
	// the swap spans). A prepared-but-never-cleared swap folds to
	// pending orders — its reservations died with the crash, so the
	// prepare is refunded and the orders resume.
	EvPrepared EventKind = "prepared"
	// EvReserved: the swap acquired an asset reservation; Swap, Chain,
	// Asset.
	EvReserved EventKind = "reserved"
	// EvReleased: the swap released an asset reservation at completion;
	// Swap, Chain, Asset, Party (the asset's post-swap owner, or an
	// "escrow:<swap>" pseudo-party when the asset ended stranded in
	// contract escrow).
	EvReleased EventKind = "released"
	// EvPhase: a swap's protocol run crossed a coarse phase boundary
	// (start, escrow, reveal); Swap, Phase, Deadline.
	EvPhase EventKind = "phase"
	// EvSettled: an order settled; Order, Swap, Class, Deviant, with Tick
	// holding the swap's virtual settle tick.
	EvSettled EventKind = "settled"
	// EvRejected: an order was rejected; Order, Reason.
	EvRejected EventKind = "rejected"
	// EvShed: arrivals were dropped before intake; Count.
	EvShed EventKind = "shed"
	// EvKilled: the engine was killed (crash-model shutdown); Tick is the
	// cut — recovery replays nothing stamped after it.
	EvKilled EventKind = "killed"
	// EvReverted: a chain reorg rolled back one of the swap's records
	// before it reached confirmation depth; Swap, Chain, Phase (the
	// reverted record's kind name). The protocol run re-settles or
	// refunds on its own — the event exists so recovery can count how
	// much of a swap's trajectory was reorg-disturbed.
	EvReverted EventKind = "reverted"
)

// Event is one durable engine state transition. Exactly the fields the
// kind documents are set; everything else is zero and omitted from JSON.
// Tick is always the virtual-time stamp of the transition — virtual, not
// wall, so a deterministic run's event set (filtered by a cut tick) is a
// pure function of the schedule even though the append order of
// worker-side events is not.
type Event struct {
	Kind EventKind   `json:"kind"`
	Tick vtime.Ticks `json:"tick"`

	Party string `json:"party,omitempty"`
	Seed  []byte `json:"seed,omitempty"`

	Order  OrderID     `json:"order,omitempty"`
	Offer  *core.Offer `json:"offer,omitempty"`
	Orders []OrderID   `json:"orders,omitempty"`

	Swap    string `json:"swap,omitempty"`
	Class   int    `json:"class,omitempty"`
	Deviant string `json:"deviant,omitempty"`
	Reason  string `json:"reason,omitempty"`

	Chain  string        `json:"chain,omitempty"`
	Asset  chain.AssetID `json:"asset,omitempty"`
	Amount uint64        `json:"amount,omitempty"`

	Phase    string      `json:"phase,omitempty"`
	Deadline vtime.Ticks `json:"deadline,omitempty"`

	Count int `json:"count,omitempty"`
}

// Store is the engine's durability hook: every state transition the
// engine would need to rebuild itself after a crash is appended as one
// Event. nil Store keeps the engine fully in-memory (the historical
// behavior).
//
// Append must be safe for concurrent use, must not block for long, and
// must never call back into the engine: it runs on the intake, clearing,
// and worker paths, sometimes with engine locks held. It returns no
// error — a store that fails should record the failure internally and
// surface it when closed; the engine has no useful response to a failed
// append mid-flight.
type Store interface {
	Append(ev Event)
}

// logEvent appends ev to the configured store, if any.
func (e *Engine) logEvent(ev Event) {
	if e.cfg.Store != nil {
		e.cfg.Store.Append(ev)
	}
}
