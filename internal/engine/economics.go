package engine

import (
	"github.com/go-atomicswap/atomicswap/internal/conc"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
)

// swapEconomics prices one finished run:
//
//   - Capital lock: each escrow span (publish tick → resolve-or-horizon
//     tick, from conc) charges the escrowing party — the arc's Head, who
//     deployed the contract — amount × duration token-ticks. Locks split
//     conforming vs deviant by the injected-behavior map; the conforming
//     side's lock inside a deviant-carrying swap is the swap's griefing
//     cost.
//   - Net transfers: a triggered arc's value moved Head → Tail
//     (triggered means claimable — a lazily unclaimed bearer right is
//     still the tail's, matching the outcome classes). A conforming
//     cohort's negative net is a Theorem 4.9 violation in value terms; a
//     deviant cohort's positive net is what a briber could promise.
//
// Everything is tick-domain, so the result is replay-identical and safe
// to pin in digests. The per-vertex lock map feeds order.lockCost.
func swapEconomics(spec *core.Spec, res *conc.Result, deviants map[digraph.Vertex]string) (metrics.SwapEconomics, map[digraph.Vertex]uint64) {
	locks := make(map[digraph.Vertex]uint64, spec.D.NumVertices())
	for _, span := range res.Escrows {
		amount := spec.Assets[span.ArcID].Amount
		locks[spec.D.Arc(span.ArcID).Head] += amount * uint64(span.To-span.From)
	}
	nets := make(map[digraph.Vertex]int64, spec.D.NumVertices())
	for id := 0; id < spec.D.NumArcs(); id++ {
		if !res.Triggered[id] {
			continue
		}
		arc := spec.D.Arc(id)
		amount := int64(spec.Assets[id].Amount)
		nets[arc.Head] -= amount
		nets[arc.Tail] += amount
	}
	se := metrics.SwapEconomics{Deviant: len(deviants) > 0}
	for v := 0; v < spec.D.NumVertices(); v++ {
		vx := digraph.Vertex(v)
		if _, dev := deviants[vx]; dev {
			se.DeviantLock += locks[vx]
			if n := nets[vx]; n > 0 {
				se.CoalitionGain += uint64(n)
			}
		} else {
			se.ConformingLock += locks[vx]
			if n := nets[vx]; n < 0 {
				se.ConformingLoss += uint64(-n)
			}
		}
	}
	return se, locks
}
