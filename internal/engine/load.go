package engine

import (
	"context"
	"fmt"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
)

// loadChains is the shared chain set RunLoad spreads its swaps over.
var loadChains = []string{"btc", "eth", "sol", "ada"}

// LoadOffer builds offer i of generated barter ring `ring` (size parties,
// identity group `group`): the one offer shape both load harnesses —
// closed-loop RunLoad and the open-loop generator in loadgen — submit,
// so their measurements describe the same workload.
func LoadOffer(ring, i, size, group int) core.Offer {
	return LoadOfferOn(ring, i, size, group, loadChains[(ring+i)%len(loadChains)])
}

// LoadOfferOn is LoadOffer with an explicit chain: the sharded load
// generator picks chains from per-shard pools (so ring placement is a
// controlled variable), everything else about the workload stays
// byte-identical to the classic shape.
func LoadOfferOn(ring, i, size, group int, chainName string) core.Offer {
	return core.Offer{
		Party: chain.PartyID(fmt.Sprintf("r%d-p%d", group, i)),
		Give: []core.ProposedTransfer{{
			To:     chain.PartyID(fmt.Sprintf("r%d-p%d", group, (i+1)%size)),
			Chain:  chainName,
			Asset:  chain.AssetID(fmt.Sprintf("asset-%d-%d", ring, i)),
			Amount: uint64(1 + ring%89),
		}},
	}
}

// FloodPartyPrefix marks offers generated for a flooding coalition: the
// flooder identity pool's party names start with it, so intake fairness
// audits — and the scenario digest's shed split — can tell coalition
// traffic from organic load by name alone.
const FloodPartyPrefix = "flood"

// FloodOffer builds offer i of flooding ring `ring`: the LoadOffer shape
// (classic chain set) re-identified onto a small reused flooder pool
// ("flood<G>-p<I>"), so a handful of identities can hold arbitrarily many
// pending offers at once — the saturation pattern per-party fair shedding
// exists to contain.
func FloodOffer(ring, i, size, group int) core.Offer {
	o := LoadOffer(ring, i, size, group)
	o.Party = chain.PartyID(fmt.Sprintf("%s%d-p%d", FloodPartyPrefix, group, i))
	o.Give[0].To = chain.PartyID(fmt.Sprintf("%s%d-p%d", FloodPartyPrefix, group, (i+1)%size))
	return o
}

// LoadOption tweaks RunLoad's generated traffic.
type LoadOption func(*loadOpts)

type loadOpts struct {
	partyPool int
}

// WithPartyPool makes rings reuse a fixed pool of ring-group identities
// instead of minting fresh parties per ring: ring r uses group r mod n.
// Repeat customers are the keyring's whole point (identity cost is paid
// once, not per swap), and the book's one-offer-per-party-per-round rule
// then naturally pipelines same-group rings into successive waves.
func WithPartyPool(n int) LoadOption {
	return func(o *loadOpts) { o.partyPool = n }
}

// RunLoad drives one complete load through a fresh engine: rings barter
// rings of ringSize parties each, submitted up front, then drained to
// completion. It verifies the conservation invariant before returning the
// aggregate report. This is the common harness for benchmarks and the
// swapbench throughput trajectory.
func RunLoad(cfg Config, rings, ringSize int, opts ...LoadOption) (metrics.Throughput, error) {
	var o loadOpts
	for _, opt := range opts {
		opt(&o)
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		return metrics.Throughput{}, err
	}
	for r := 0; r < rings; r++ {
		group := r
		if o.partyPool > 0 {
			group = r % o.partyPool
		}
		for i := 0; i < ringSize; i++ {
			if _, err := e.Submit(LoadOffer(r, i, ringSize, group)); err != nil {
				return metrics.Throughput{}, fmt.Errorf("engine: load submit: %w", err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := e.Stop(ctx); err != nil {
		return metrics.Throughput{}, fmt.Errorf("engine: load drain: %w", err)
	}
	if err := e.VerifyConservation(); err != nil {
		return metrics.Throughput{}, err
	}
	rep := e.Report()
	if rep.SwapsFailed > 0 {
		return rep, fmt.Errorf("engine: load: %d swaps failed outright", rep.SwapsFailed)
	}
	return rep, nil
}
