// Package engine turns the one-shot swap protocol into a long-running
// clearing service: a continuous stream of offers flows in, a periodic
// clearing loop matches them into disjoint swap digraphs (Section 4.2
// market clearing, batched), and an executor pool runs many swaps
// concurrently over one shared chain registry. Per-swap asset reservation
// guarantees that two in-flight swaps never commit the same asset, and an
// aggregate metrics layer reports service-level throughput: offers/sec,
// swaps/sec, end-to-end latency, and per-outcome counts.
//
// The pipeline is
//
//	Submit → pending book → clearing round → reservation → executor pool
//	       → conc.Run over shared chains → settle orders → release
//
// Each stage is concurrency-safe: intake can run from any number of
// goroutines while swaps execute.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/conc"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// seededRand is a splitmix64 byte stream: the deterministic randomness
// source for per-swap secrets and keys. Unlike rand.NewSource — whose
// Lehmer generator seeds 607 words up front — construction is O(1), which
// matters when every cleared swap gets its own stream.
type seededRand struct {
	state uint64
}

func newSeededRand(seed uint64) *seededRand { return &seededRand{state: seed} }

func (s *seededRand) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		s.state += 0x9e3779b97f4a7c15
		z := s.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		for j := i; j < i+8 && j < len(p); j++ {
			p[j] = byte(z)
			z >>= 8
		}
	}
	return len(p), nil
}

// Config parameterizes an Engine. The zero value is usable: 8 workers,
// 2ms clearing interval, 1ms ticks, Δ = core.DefaultDelta.
type Config struct {
	// Workers is the executor-pool size: how many swaps run concurrently.
	Workers int
	// ClearInterval is the period of the batch clearing loop, in wall
	// time. It is converted to scheduler ticks (see ClearEvery): the
	// clearing loop runs on the engine's shared scheduler, not on a
	// wall-clock ticker, so under virtual time clearing rounds land at
	// deterministic ticks interleaved with arrivals and protocol events.
	ClearInterval time.Duration
	// ClearEvery, when positive, sets the clearing cadence directly in
	// virtual ticks, overriding the ClearInterval/Tick conversion.
	ClearEvery vtime.Duration
	// MaxBatch caps the offers considered per clearing round.
	MaxBatch int
	// Tick is the wall duration of one virtual tick on the shared
	// real-time scheduler. Ignored under Virtual.
	Tick time.Duration
	// Delta is the per-swap Δ in ticks (the fixed value, and the adaptive
	// mode's starting point).
	Delta vtime.Duration
	// Kind is the protocol variant each swap runs (default KindGeneral).
	Kind core.Kind
	// AdversaryRate injects a silent leader into this fraction of swaps:
	// the swap aborts and every conforming party refunds, exercising the
	// abort path under load. Ignored when Behaviors is set.
	AdversaryRate float64
	// Behaviors, when set, builds the (possibly deviating) behaviors for
	// every cleared swap — the scenario harness's deviation-injection
	// hook. It must be a pure function of its arguments (it may be called
	// from any goroutine, and deterministic replay depends on it): derive
	// randomness from the seed, never from shared state.
	Behaviors BehaviorFactory
	// Seed drives per-swap key generation and adversary selection.
	Seed int64
	// QueueDepth is the executor job-queue capacity (default 1024).
	QueueDepth int

	// Virtual switches the engine onto a shared virtual-time scheduler:
	// ticks advance as fast as callbacks drain, so swaps stop waiting out
	// Δ-scaled deadlines in wall time and throughput becomes CPU-bound.
	// Outcomes are unchanged — the protocol sees the same tick arithmetic.
	// A virtual engine owns the scheduler's dispatcher goroutine; call
	// Stop (valid even if Start was never called) to release it.
	Virtual bool
	// AdaptiveDelta lets the engine retune Δ each clearing round from the
	// latencies the delivery probe actually observes, within
	// [MinDelta, MaxDelta]. Already-cleared swaps keep the Δ they were
	// built with; only new rounds see the updated value. Pointless (but
	// harmless) under Virtual, where observed lag is ~0.
	AdaptiveDelta bool
	// MinDelta floors the adaptive Δ (default 4 ticks — the smallest Δ
	// whose quarter-Δ jitter margin is still a whole tick).
	MinDelta vtime.Duration
	// MaxDelta caps the adaptive Δ (default 4×Delta), bounding how far a
	// loaded box backs off.
	MaxDelta vtime.Duration
	// Deterministic runs the engine in seed-replayable mode: virtual time
	// on a serialized scheduler (same-tick events in schedule order, not
	// in parallel), swap setup pinned inside the clearing tick, and
	// synchronous deliveries, so the same seed and the same (serially
	// submitted) offer stream produce the identical run — intake ticks,
	// clearing rounds, Δ trajectory, and settle order. Implies Virtual.
	// Trades multicore throughput for replayability: this is the scenario
	// harness's mode, not the production shape. Submissions must come
	// from scheduler callbacks (loadgen arrivals) or a single goroutine;
	// racing Submit calls reintroduce the nondeterminism this removes.
	Deterministic bool
	// Parallel upgrades Deterministic mode to striped-parallel dispatch
	// (implies Deterministic): same-tick events are partitioned by swap
	// onto a Workers-sized pool with a per-tick barrier, so each swap
	// still sees the serialized schedule — digests stay byte-identical to
	// plain Deterministic runs — while independent swaps use every core.
	// See DESIGN.md §10 for the determinism argument.
	Parallel bool
	// DisableBatchVerify keeps cold hashkey-chain verifications strictly
	// serial instead of fanning links across the worker pool — the
	// benchmark ablation knob. Off (batching enabled) by default.
	DisableBatchVerify bool
	// Store, when set, receives a write-ahead Event for every durable
	// state transition: identities, mints, bookings, clearings,
	// reservations, phase transitions, settles, rejections, sheds. nil
	// keeps the engine fully in-memory — the historical behavior, and the
	// tier-1 test configuration. See internal/durable for the
	// disk-backed implementation and Recover for the way back.
	Store Store
	// MaxClearAhead, when positive, stops clearing rounds from running
	// more than this many swaps ahead of execution: a round dispatches no
	// new swap while that many are queued or in flight. Backpressure
	// keeps a deep book from being cleared all at once — which matters
	// under AdaptiveDelta, where a swap's Δ is fixed at clear time and
	// clearing the whole book up front would pin every swap to the
	// not-yet-adapted value; AdaptiveDelta therefore defaults this to
	// Workers. Otherwise 0 means unlimited (clear-everything, the
	// historical behavior).
	MaxClearAhead int
	// MaxLive overrides the virtual-time live-run gate (default
	// 16×Workers, the empirical throughput knee — see DESIGN.md §10).
	// The gate bounds how many swaps are virtually in flight at once;
	// tests that need the historical clear-everything burst (e.g. "crash
	// with ≥N swaps mid-air") set it at least as high as the burst.
	MaxLive int
	// Commitment selects the chains' commitment model: zero value keeps
	// every chain Instant (a record is final the tick it lands — the
	// historical behavior, byte-identical digests). A positive
	// ConfirmDepth makes records final only after that many ticks, and a
	// positive ReorgRate on top makes not-yet-final records revert with
	// that seeded probability. See internal/chain and DESIGN.md §12.
	Commitment CommitmentConfig

	// The fields below are the shard-runtime injection surface, set by
	// internal/engine/shard when this engine is one shard (or the
	// coordinator) of a ShardedEngine. A sharded deployment runs N inner
	// engines over ONE scheduler, chain registry, keyring, verify cache,
	// and trace ring; each injected field replaces the corresponding
	// engine-owned resource, and the engine never closes or re-wires a
	// resource it did not create (Stop leaves an injected scheduler
	// running, an injected registry keeps its owner's delivery probe, an
	// injected cache keeps its owner's batch-worker sizing — see
	// DESIGN.md §11). All-nil keeps the engine fully self-contained: the
	// historical single-engine shape.

	// Scheduler, when set, is the shared time source the engine runs on
	// instead of creating its own.
	Scheduler sched.Scheduler
	// Registry, when set, is the shared chain registry (one reservation
	// table spanning every shard — cross-shard swaps reserve assets on
	// every involved shard through it).
	Registry *chain.Registry
	// Keyring, when set, is the shared party keyring (parties may submit
	// to any shard; their identity must not depend on which).
	Keyring *core.Keyring
	// Cache, when set, is the shared hashkey verification cache. The
	// engine then leaves its batch-worker sizing alone: the owner sizes
	// the pool once from the machine's total workers, so N shards do not
	// oversubscribe the box with N independent default pools.
	Cache *hashkey.VerifyCache
	// Tracer, when set, is the shared trace flight recorder.
	Tracer *trace.Log
	// Probe, when set, replaces the engine-created delivery-lag probe
	// (the shard owner fans registry observations out to per-shard
	// probes so each shard's adaptive-Δ window consumes only its own
	// evidence deterministically).
	Probe *sched.LatencyProbe

	// ShardStripe keys this engine's clearing ticks on the shared
	// virtual scheduler: clearing passes of distinct shards run
	// concurrently under striped-parallel dispatch while each shard's
	// own pass stays serialized. 0 (the single-engine default) is the
	// unkeyed serial stripe.
	ShardStripe uint64
	// TailPrio is the tail level clearing ticks run at (default 1).
	// The sharded tick ladder is: protocol events (0) → shard clearing
	// (1) → escalation sweep (2) → coordinator clearing (3), with a
	// determinism barrier between levels.
	TailPrio int8
	// CanonicalSwapTags derives each swap's tag, seed, and stripe from
	// the minimum order ID in its cleared group instead of an
	// engine-local ordinal. With router-assigned global order IDs this
	// makes swap identity a pure function of WHAT cleared, not which
	// engine cleared it — the property that lets a 4-shard run and a
	// 1-shard run of the same scenario produce byte-identical digests.
	CanonicalSwapTags bool
	// LogPrepared makes clearGroup append an AC3-style EvPrepared record
	// after a group's reservations are all held and before the swap is
	// committed (EvCleared). The coordinator engine sets it: a crash
	// between the two records folds back to pending orders whose
	// reservations died with the process — prepare is refunded, the
	// orders resume and re-clear. See DESIGN.md §11.
	LogPrepared bool
	// ShardOfChain, when set with LogPrepared, maps a chain name to its
	// shard so EvPrepared can record how many shards a cross-shard swap
	// spans (a hook, not an import: engine must not depend on shard).
	ShardOfChain func(chainName string) int
}

// CommitmentConfig parameterizes the commitment model every asset chain
// is created with. The zero value is the Instant model (historical
// behavior). The broadcast side-channel is always Instant regardless —
// it is the protocol's own gossip medium, not a modeled ledger.
type CommitmentConfig struct {
	// ConfirmDepth, when positive, makes records final only this many
	// ticks after application (chain.Depth), and raises each chain's
	// effective Δ — and therefore the swap timelock ladder — by the same
	// amount.
	ConfirmDepth vtime.Duration
	// ReorgRate, with ConfirmDepth ≥ 2, independently reverts each
	// record with this probability at a seeded depth before it finalizes
	// (chain.Reorg). 0 means no reorgs.
	ReorgRate float64
	// Seed drives the reorg fate hash (chains replay identical revert
	// schedules from the same seed).
	Seed int64
}

// Enabled reports whether any non-Instant model is configured.
func (c CommitmentConfig) Enabled() bool { return c.ConfirmDepth > 0 }

// Model returns the commitment model for the named chain, or nil to
// leave it Instant.
func (c CommitmentConfig) Model(name string) chain.CommitmentModel {
	if !c.Enabled() || name == core.BroadcastChain {
		return nil
	}
	if c.ReorgRate > 0 {
		return chain.Reorg{K: c.ConfirmDepth, Rate: c.ReorgRate, Seed: c.Seed}
	}
	return chain.Depth{K: c.ConfirmDepth}
}

// Engine errors.
var (
	ErrNotRunning    = errors.New("engine: not accepting offers")
	ErrBadOffer      = errors.New("engine: malformed offer")
	ErrAssetMismatch = errors.New("engine: offer amount differs from the registered asset")
)

type engineState int

const (
	stateNew engineState = iota
	stateRunning
	stateDraining
	stateStopped
)

// SwapBehaviors is one cleared swap's behavior assignment: overrides for
// deviating parties (conforming defaults apply elsewhere) plus the
// deviation name per deviating vertex, for per-outcome accounting.
type SwapBehaviors struct {
	Behaviors map[digraph.Vertex]core.Behavior
	Deviants  map[digraph.Vertex]string
}

// BehaviorFactory builds the behaviors for one cleared swap from its
// setup and deterministic per-swap seed. See Config.Behaviors.
type BehaviorFactory func(setup *core.Setup, seed int64) SwapBehaviors

// job is one cleared swap handed to the executor pool.
type job struct {
	swapID      string
	setup       *core.Setup
	orders      []*order
	resv        []resvKey
	adversarial bool
	seed        int64
	// seq is the engine-wide swap ordinal — the run's scheduler stripe key.
	seq uint64
	// running is the already-prepared run (Deterministic mode: setup
	// happened inside the clearing tick); nil means the worker prepares.
	running  *conc.Running
	deviants map[digraph.Vertex]string
}

type resvKey struct {
	chain string
	asset chain.AssetID
}

type mintRec struct {
	chain  string
	asset  chain.AssetID
	amount uint64
}

// Engine is the clearing service. Create with New, call Start, Submit
// offers from any goroutine, and Drain/Stop to wind down.
type Engine struct {
	cfg Config
	// maxLive caps virtually-live runs on virtual schedulers (see
	// liveRuns): enough concurrency to saturate the stripe pool, bounded
	// so observer fanout stays flat.
	maxLive int
	reg     *chain.Registry
	sched   sched.Scheduler
	// vsched is sched when running under virtual time (for Close), nil
	// otherwise.
	vsched *sched.Virtual
	// probe collects observed delivery lag from every run over the shared
	// registry; adaptive Δ is computed from it.
	probe *sched.LatencyProbe
	// chainProbes holds per-chain delivery-lag probes (commitment-model
	// runs only): conc feeds each observation to the global probe AND the
	// source chain's probe, so adaptive Δ can respect the slowest chain
	// and the report can break lag down per chain. Keyed by chain name;
	// guarded by chainProbeMu (chain creation may race intake).
	chainProbeMu sync.Mutex
	chainProbes  map[string]*sched.LatencyProbe
	// delta is the Δ handed to newly cleared swaps — cfg.Delta, or the
	// adaptive controller's current value.
	delta atomic.Int64
	agg   *metrics.Aggregate

	// keyring holds every party's persistent signing identity, created at
	// first intake — clearing rounds never pay for key generation.
	keyring *core.Keyring
	// vcache is the engine-wide hashkey verification cache shared by every
	// swap's contracts (content-addressed, so cross-swap sharing is safe).
	vcache *hashkey.VerifyCache
	// tracer is the engine-wide trace flight recorder: one fixed-size ring
	// shared by every swap run, so per-swap trace state costs nothing.
	tracer *trace.Log

	jobs     chan *job
	workerWG sync.WaitGroup

	// drainCh wakes Drain the moment the engine may have gone idle
	// (in-flight count reached zero, book emptied, or Kill), replacing the
	// wall-clock poll that used to put a fixed tail on every run.
	drainCh chan struct{}

	// The clearing loop is a self-rescheduling timer on the shared
	// scheduler: clearMu guards the live timer and the stop flag, clearWG
	// tracks a tick callback in flight so Stop can wait it out. Rounds
	// are strictly sequential (each tick schedules the next only when it
	// finishes), so everything confined to "the clearing goroutine"
	// remains confined to one callback at a time.
	clearMu      sync.Mutex
	clearTimer   sched.Timer
	clearStopped bool
	// clearParked marks a deterministic clearing loop that stopped
	// rescheduling itself because the engine went virtually idle (empty
	// book, empty scheduler queue); Submit re-arms it. Parked rounds are
	// exactly the rounds the active-round count never included, so digests
	// are unaffected — but the virtual clock stops free-running, instead
	// of burning CPU on empty rounds until Drain notices at wall speed.
	clearParked bool
	clearWG     sync.WaitGroup
	clearEvery  vtime.Duration

	// bookSeq counts orders ever booked. The deterministic clearing loop
	// uses it to close the park race on a STUCK book (non-empty but
	// nothing dispatchable and nothing live — e.g. partial rings left by
	// shedding): the usual Pending()>0 re-check cannot tell a new arrival
	// from the stuck remainder, a sequence number can.
	bookSeq atomic.Int64

	// shedPulse accumulates arrivals shed since the adaptive-Δ
	// controller last looked: sustained shedding means intake is
	// outrunning clearing, and the controller responds by widening Δ
	// (buying per-swap robustness while the book drains) instead of
	// tightening into the overload. Incremented from NoteShed (arrival
	// callbacks), consumed by adaptDelta (clearing tick) — both
	// schedule-pure in deterministic mode.
	shedPulse atomic.Int64

	// liveRuns counts virtually-live swap runs: incremented when a swap is
	// dispatched, decremented by the run's OnHorizon hook — which fires
	// inside a scheduler event, so under deterministic dispatch the count
	// read by a clearing tick is a pure function of the virtual schedule
	// (unlike inflight, whose decrement is wall-speed worker bookkeeping).
	// Clearing rounds gate dispatch on it: an unbounded pile of live runs
	// makes the shared chains' per-record observer fanout O(live runs) —
	// quadratic over a big book.
	liveRuns atomic.Int64

	mu      sync.Mutex
	state   engineState
	orders  map[OrderID]*order
	pending []*order
	// pendingBy counts the pending book per offering party — the fair-
	// shedding surface (PendingOf/PendingParties): one flooding identity
	// pool can no longer exhaust a global MaxPending budget for everyone.
	// Maintained wherever orders enter or leave StatusPending; entries
	// are deleted at zero so PendingParties counts live parties only.
	pendingBy map[chain.PartyID]int
	nextOrder OrderID
	nextSwap  uint64
	inflight  int // cleared jobs queued or executing
	minted    []mintRec
	// killed marks a crash-model shutdown (Kill): intake and clearing are
	// dead, but pending orders are deliberately left unresolved — they are
	// the recovery subsystem's input, not Drain's.
	killed bool

	// recovered marks an engine rebuilt by NewRecovered: its history
	// includes a crash, so audits hold it to ledger integrity rather
	// than strict no-stranded-escrow conservation (a hard crash mid-
	// settlement can orphan an escrowed leg by design).
	recovered bool

	// ownSched marks a scheduler the engine created (and must close on
	// Stop); an injected one belongs to the shard owner.
	ownSched bool

	// rng drives adversary selection. It is NOT safe for concurrent use
	// and is confined to the clearing tick (clearTick → clearRound →
	// clearGroup, sequential by construction): never touch it from
	// Submit, workers, or any other goroutine. clearRounds and
	// drainStall are confined the same way.
	rng         *rand.Rand
	clearRounds int
	drainStall  int
	// roundTicks records the tick of every active round in deterministic
	// mode (confined to the clearing goroutine, read after Stop): the
	// sharded engine merges per-shard tick SETS, not counts, so the
	// merged round count of a 4-shard run equals the 1-shard run's.
	roundTicks []vtime.Ticks
	// activeRounds is the count of clearing rounds that had live work
	// (non-empty book, scheduled events, or a dispatch). Unlike
	// clearRounds — which keeps ticking at wall speed while Drain polls —
	// it is a pure function of the virtual schedule in deterministic
	// mode, so digests and budget assertions are built from it. Confined
	// to the clearing goroutine like clearRounds.
	activeRounds int
}

// New creates an engine with its own shared clock and chain registry.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.ClearInterval <= 0 {
		cfg.ClearInterval = 2 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.Delta <= 0 {
		cfg.Delta = core.DefaultDelta
	}
	if cfg.Kind == 0 {
		cfg.Kind = core.KindGeneral
	}
	if cfg.Parallel {
		cfg.Deterministic = true
	}
	if cfg.Deterministic {
		cfg.Virtual = true
		// Backpressure reads the in-flight count, which is decremented by
		// worker bookkeeping at wall speed — a nondeterministic input.
		// Deterministic runs clear everything the book offers and lean on
		// a deep job queue instead (jobs advance via the scheduler whether
		// or not a worker has picked them up, so depth is cheap). The
		// floor is not negotiable: the clearing tick enqueues jobs from a
		// scheduler callback that holds the serialized clock, so a send
		// blocking on a small queue would deadlock the dispatcher.
		cfg.MaxClearAhead = 0
		if cfg.QueueDepth < 1<<16 {
			cfg.QueueDepth = 1 << 16
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.ClearEvery <= 0 {
		cfg.ClearEvery = vtime.Duration(cfg.ClearInterval / cfg.Tick)
		if cfg.ClearEvery < 1 {
			cfg.ClearEvery = 1
		}
	}
	if cfg.MinDelta <= 0 {
		cfg.MinDelta = 4
	}
	if cfg.MaxDelta <= 0 {
		cfg.MaxDelta = 4 * cfg.Delta
	}
	if cfg.MaxDelta < cfg.MinDelta {
		cfg.MaxDelta = cfg.MinDelta
	}
	if cfg.AdaptiveDelta && cfg.MaxClearAhead <= 0 && !cfg.Deterministic {
		// Adaptive Δ without backpressure is self-defeating: an up-front
		// book would clear entirely at the initial Δ before the probe has
		// a single window of evidence. (Deterministic mode forgoes
		// backpressure entirely — see above.)
		cfg.MaxClearAhead = cfg.Workers
	}
	if cfg.Virtual && (cfg.MaxClearAhead <= 0 || cfg.MaxClearAhead > cfg.QueueDepth) && !cfg.Deterministic {
		// The clearing tick runs as a scheduler callback, which under
		// virtual time holds the clock. If it blocked on a full job queue
		// the swaps that would free the queue could never advance; capping
		// clear-ahead at the queue depth makes the send non-blocking.
		cfg.MaxClearAhead = cfg.QueueDepth
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 16 * cfg.Workers
	}
	if cfg.TailPrio < 1 {
		cfg.TailPrio = 1
	}
	e := &Engine{
		cfg:        cfg,
		maxLive:    cfg.MaxLive,
		probe:      cfg.Probe,
		agg:        metrics.NewAggregate(),
		keyring:    cfg.Keyring,
		vcache:     cfg.Cache,
		tracer:     cfg.Tracer,
		jobs:       make(chan *job, cfg.QueueDepth),
		orders:     make(map[OrderID]*order),
		pendingBy:  make(map[chain.PartyID]int),
		rng:        rand.New(rand.NewSource(cfg.Seed + 1)),
		drainCh:    make(chan struct{}, 1),
		clearEvery: cfg.ClearEvery,
	}
	if e.probe == nil {
		e.probe = sched.NewLatencyProbe()
	}
	if e.keyring == nil {
		e.keyring = core.NewKeyring(rand.New(rand.NewSource(cfg.Seed + 2)))
	}
	if e.tracer == nil {
		e.tracer = trace.NewLog(trace.DefaultCap)
	}
	if e.vcache == nil {
		e.vcache = hashkey.NewVerifyCache(0)
		if !cfg.DisableBatchVerify {
			// Cold chain walks may fan links across the pool — capped at the
			// machine's parallelism, where extra fan-out is pure overhead.
			// An injected cache is deliberately left alone: its owner sizes
			// the batch pool once for ALL engines sharing it, so N shards
			// never stack N default-sized pools on one box.
			bw := cfg.Workers
			if n := runtime.GOMAXPROCS(0); bw > n {
				bw = n
			}
			e.vcache.SetBatchWorkers(bw)
		}
	}
	if cfg.Scheduler != nil {
		e.sched = cfg.Scheduler
		if v, ok := cfg.Scheduler.(*sched.Virtual); ok {
			e.vsched = v
		}
	} else {
		e.ownSched = true
		switch {
		case cfg.Parallel:
			// Striped-parallel dispatch: per-swap stripes on a worker pool
			// with a per-tick barrier — replayable AND multicore.
			e.vsched = sched.NewVirtualParallel(cfg.Workers)
			e.sched = e.vsched
		case cfg.Deterministic:
			// Serialized dispatch: same-tick events run in schedule order on
			// one dispatcher goroutine — the replayable mode.
			e.vsched = sched.NewVirtual()
			e.sched = e.vsched
		case cfg.Virtual:
			// Concurrent dispatch: same-tick callbacks (contract verification
			// above all) spread across cores, matching the real scheduler's
			// concurrency instead of serializing the whole engine on one
			// dispatcher goroutine.
			e.vsched = sched.NewVirtualConcurrent()
			e.sched = e.vsched
		default:
			e.sched = sched.NewReal(cfg.Tick)
		}
	}
	if cfg.Registry != nil {
		// Shared registry: the owner wires the delivery probe (fanning it
		// out per shard); installing ours here would steal it.
		e.reg = cfg.Registry
	} else {
		e.reg = chain.NewRegistry(e.sched)
		e.reg.SetDeliveryProbe(e.probe)
		if cfg.Commitment.Enabled() {
			// The registry is brand new (no chains) and every engine
			// scheduler can pump settlement ticks, so this cannot fail.
			if err := e.reg.SetCommitmentModels(cfg.Commitment.Model); err != nil {
				panic(err)
			}
			e.reg.SetChainProbeFactory(e.newChainProbe)
		}
	}
	e.delta.Store(int64(cfg.Delta))
	if cfg.Store != nil && cfg.Keyring == nil {
		// Persist identities as they are generated: the ed25519 seed is an
		// identity's durable form (see core.Keyring.OnCreate). A shared
		// keyring gets exactly one such hook, wired by its owner.
		e.keyring.OnCreate(func(p chain.PartyID, seed []byte) {
			cfg.Store.Append(Event{
				Kind: EvIdentity, Tick: e.sched.Now(),
				Party: string(p), Seed: seed,
			})
		})
	}
	return e
}

// Registry exposes the shared chain registry (for invariant checks).
func (e *Engine) Registry() *chain.Registry { return e.reg }

// Scheduler exposes the engine's shared time scheduler, so load
// generators can drive arrival processes on the same clock the swaps run
// against (real or virtual).
func (e *Engine) Scheduler() sched.Scheduler { return e.sched }

// Tick reports the configured wall duration of one virtual tick (the
// rate-to-ticks conversion factor for schedules driven through
// Scheduler).
func (e *Engine) Tick() time.Duration { return e.cfg.Tick }

// Keyring exposes the persistent party keyring.
func (e *Engine) Keyring() *core.Keyring { return e.keyring }

// VerifyCacheStats snapshots the engine-wide hashkey verification cache
// counters.
func (e *Engine) VerifyCacheStats() hashkey.CacheStats { return e.vcache.Stats() }

// CurrentDelta reports the Δ newly cleared swaps will be built with:
// cfg.Delta, or the adaptive controller's current value.
func (e *Engine) CurrentDelta() vtime.Duration { return vtime.Duration(e.delta.Load()) }

// LatencyStats snapshots the delivery-lag probe feeding adaptive Δ.
func (e *Engine) LatencyStats() sched.LatencySnapshot { return e.probe.Snapshot() }

// newChainProbe builds (and remembers) the delivery-lag probe for one
// chain. Installed as the registry's chain-probe factory when a
// commitment model is configured: per-chain lag evidence keeps adaptive
// Δ honest across heterogeneous chains, and the report breaks delivery
// lag down by chain.
func (e *Engine) newChainProbe(name string) chain.DeliveryProbe {
	p := sched.NewLatencyProbe()
	e.chainProbeMu.Lock()
	if e.chainProbes == nil {
		e.chainProbes = make(map[string]*sched.LatencyProbe)
	}
	e.chainProbes[name] = p
	e.chainProbeMu.Unlock()
	return p
}

// ChainLatencyStats snapshots each per-chain delivery probe. Empty
// unless a commitment model installed per-chain probes.
func (e *Engine) ChainLatencyStats() map[string]sched.LatencySnapshot {
	e.chainProbeMu.Lock()
	defer e.chainProbeMu.Unlock()
	out := make(map[string]sched.LatencySnapshot, len(e.chainProbes))
	for name, p := range e.chainProbes {
		out[name] = p.Snapshot()
	}
	return out
}

// adaptDelta retunes Δ from observed delivery lag. Deliveries aim a
// quarter-Δ inside the detection bound (see conc), so safety requires the
// jitter beyond target to stay under Δ/4: Δ must be at least 4× the
// observed worst lag, and we double the lag for headroom before a +1 tick
// floor. The result is clamped to [MinDelta, MaxDelta] — Δ never drops
// below what the hardware has actually been seen to need, plus margin.
func (e *Engine) adaptDelta() {
	// Let the window keep accumulating across clearing rounds until it
	// holds enough evidence; only then consume and act on it.
	if e.probe.Snapshot().WindowSamples < adaptMinSamples {
		return
	}
	s := e.probe.TakeWindow()
	est := s.EstimateTicks()
	// Per-chain probes (commitment-model runs): Δ must respect the
	// slowest chain's evidence, not just the global blend — a fast chain
	// dominating the sample count would otherwise drag Δ below what the
	// slow chain needs. The global window gates (above) and is consumed
	// first, so the trajectory is unchanged when no chain probe exists.
	e.chainProbeMu.Lock()
	for _, p := range e.chainProbes {
		if p.Snapshot().WindowSamples == 0 {
			continue
		}
		if ce := p.TakeWindow().EstimateTicks(); ce > est {
			est = ce
		}
	}
	e.chainProbeMu.Unlock()
	target := 4 * (2*est + 1)
	// Shed feedback: arrivals dropped since the last decision mean intake
	// is outrunning clearing. Tightening Δ into an overload is the unsafe
	// direction — deliveries queue behind the backlog — so a shedding
	// window doubles the lag-derived target (still clamped below). The
	// pulse is consumed only when the controller acts, so sheds during
	// under-sampled windows still count toward the next decision.
	if e.shedPulse.Swap(0) > 0 {
		target *= 2
	}
	if target < e.cfg.MinDelta {
		target = e.cfg.MinDelta
	}
	if target > e.cfg.MaxDelta {
		target = e.cfg.MaxDelta
	}
	e.delta.Store(int64(target))
	e.agg.AddDeltaPoint(metrics.DeltaPoint{
		Round:          e.clearRounds,
		DeltaTicks:     int(target),
		WindowEWMA:     s.EWMA,
		WindowMaxTicks: int(s.WindowMax),
		WindowSamples:  int(s.WindowSamples),
	})
}

// adaptMinSamples is how many delivery observations a window needs before
// the controller trusts it: a near-empty window says nothing about tail
// jitter, and shrinking Δ on no evidence is exactly the unsafe direction.
const adaptMinSamples = 32

// Start launches the executor pool and the clearing loop.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.state != stateNew {
		e.mu.Unlock()
		return fmt.Errorf("engine: already started")
	}
	e.state = stateRunning
	e.mu.Unlock()

	for i := 0; i < e.cfg.Workers; i++ {
		e.workerWG.Add(1)
		go e.worker()
	}
	e.scheduleClear()
	return nil
}

// validateOffer is the static (state-free) intake check shared by Submit
// and SubmitRouted.
func validateOffer(offer core.Offer) error {
	if len(offer.Give) == 0 || offer.Party == "" {
		return fmt.Errorf("%w: empty offer or party", ErrBadOffer)
	}
	dup := make(map[resvKey]bool, len(offer.Give))
	for _, tr := range offer.Give {
		if tr.To == offer.Party {
			return fmt.Errorf("%w: self transfer", ErrBadOffer)
		}
		if tr.To == "" || tr.Chain == "" || tr.Asset == "" || tr.Amount == 0 {
			return fmt.Errorf("%w: incomplete transfer", ErrBadOffer)
		}
		// One asset can back only one transfer: catching this at intake
		// keeps a malformed offer from dragging matched counterparties
		// into a swap that cannot publish.
		k := resvKey{chain: tr.Chain, asset: tr.Asset}
		if dup[k] {
			return fmt.Errorf("%w: asset %s/%s offered twice", ErrBadOffer, tr.Chain, tr.Asset)
		}
		dup[k] = true
	}
	return nil
}

// Submit accepts one offer into the pending book, minting any asset the
// party deposits for the first time. Safe to call from many goroutines.
func (e *Engine) Submit(offer core.Offer) (OrderID, error) {
	if err := validateOffer(offer); err != nil {
		return 0, err
	}
	// Quick state gate so offers to a stopped engine mint nothing.
	e.mu.Lock()
	running := e.state == stateRunning
	e.mu.Unlock()
	if !running {
		return 0, ErrNotRunning
	}
	// Persistent identity at first intake: the ed25519 keygen runs here —
	// after static validation, before the order is booked — once per party
	// ever, outside the engine lock. Booking the order only afterwards
	// means the clearing round can never race ahead and pay for keygen
	// itself. (An offer that still fails the stateful checks below may
	// leave an identity behind; identities are tiny and reused on the
	// party's next attempt.)
	if _, err := e.keyring.Ensure(offer.Party); err != nil {
		return 0, err
	}
	id, err := e.bookOrder(offer, 0, e.sched.Now(), time.Now())
	if err == nil {
		e.ensureClearing()
	}
	return id, err
}

// Routed is one order delivered to an inner engine by a sharded router:
// the router (not the engine) assigned the order ID, and the submission
// instants are the ORIGINAL ones — an order escalated from a shard to the
// coordinator keeps the tick it first entered the system at, so its
// escalation age and digest row are independent of how many hops it took.
type Routed struct {
	ID            OrderID
	Offer         core.Offer
	SubmittedTick vtime.Ticks
	SubmittedAt   time.Time
}

// SubmitRouted books an offer under a router-assigned order ID. Besides
// the caller-controlled identity it behaves exactly like Submit: the
// offer is validated, unseen assets are minted (an escalated order's
// assets already exist and just amount-check), and the clearing loop is
// re-armed. The engine's own ID sequence jumps past the routed ID, so
// mixing Submit and SubmitRouted on one engine cannot collide.
func (e *Engine) SubmitRouted(r Routed) error {
	if r.ID == 0 {
		return fmt.Errorf("%w: routed order ID 0", ErrBadOffer)
	}
	if err := validateOffer(r.Offer); err != nil {
		return err
	}
	e.mu.Lock()
	running := e.state == stateRunning
	e.mu.Unlock()
	if !running {
		return ErrNotRunning
	}
	if _, err := e.keyring.Ensure(r.Offer.Party); err != nil {
		return err
	}
	if r.SubmittedAt.IsZero() {
		r.SubmittedAt = time.Now()
	}
	_, err := e.bookOrder(r.Offer, r.ID, r.SubmittedTick, r.SubmittedAt)
	if err == nil {
		e.ensureClearing()
	}
	return err
}

// TakeEscalatable withdraws and returns every pending order submitted at
// or before the cutoff tick, in ID order — the shard half of the
// escalation protocol. Withdrawn orders leave the book and the order map
// entirely (the coordinator re-books them under the same ID via
// SubmitRouted, so the merged order set never shows a duplicate), and
// the submitted-counter is decremented to balance the re-count at
// re-booking. Call from the sharded escalation sweep only: it runs at
// its own tail level, after this engine's clearing pass of the tick.
func (e *Engine) TakeEscalatable(cutoff vtime.Ticks) []Routed {
	e.mu.Lock()
	if e.killed {
		e.mu.Unlock()
		return nil
	}
	var out []Routed
	kept := e.pending[:0]
	for _, o := range e.pending {
		if o.status == StatusPending && !o.submittedTick.After(cutoff) {
			out = append(out, Routed{
				ID:            o.id,
				Offer:         o.offer,
				SubmittedTick: o.submittedTick,
				SubmittedAt:   o.submittedAt,
			})
			delete(e.orders, o.id)
			e.decPendingLocked(o.offer.Party)
			continue
		}
		kept = append(kept, o)
	}
	e.pending = kept
	empty := len(e.pending) == 0
	e.mu.Unlock()
	if len(out) > 0 {
		e.agg.AddSubmitted(-len(out))
	}
	if empty {
		e.notifyDrain()
	}
	return out
}

// bookOrder validates the offer against engine state, mints unseen
// assets, and books the order, all under the engine lock. id 0 draws the
// next engine-local ID (plain Submit); a router-assigned id books under
// that identity and advances the local sequence past it.
func (e *Engine) bookOrder(offer core.Offer, id OrderID, tick vtime.Ticks, wall time.Time) (OrderID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateRunning {
		return 0, ErrNotRunning
	}
	if id != 0 {
		if _, dup := e.orders[id]; dup {
			return 0, fmt.Errorf("%w: order %d already booked", ErrBadOffer, id)
		}
	}
	// Deposit-on-intake: mint unseen assets under the offering party.
	// Known assets must match amount; ownership is enforced later, at
	// reservation time, so an offer whose asset is tied up in an earlier
	// swap waits instead of failing.
	for _, tr := range offer.Give {
		ch := e.reg.Chain(tr.Chain)
		if a, ok := ch.Asset(tr.Asset); ok {
			if a.Amount != tr.Amount {
				return 0, fmt.Errorf("%w: %s/%s has amount %d, offer says %d",
					ErrAssetMismatch, tr.Chain, tr.Asset, a.Amount, tr.Amount)
			}
			continue
		}
		if err := ch.RegisterAsset(chain.Asset{ID: tr.Asset, Amount: tr.Amount}, offer.Party); err != nil {
			return 0, fmt.Errorf("engine: minting %s/%s: %w", tr.Chain, tr.Asset, err)
		}
		e.minted = append(e.minted, mintRec{chain: tr.Chain, asset: tr.Asset, amount: tr.Amount})
		e.logEvent(Event{
			Kind: EvMinted, Tick: e.sched.Now(),
			Chain: tr.Chain, Asset: tr.Asset, Amount: tr.Amount,
			Party: string(offer.Party),
		})
	}
	if id == 0 {
		e.nextOrder++
		id = e.nextOrder
	} else if id > e.nextOrder {
		e.nextOrder = id
	}
	o := &order{
		id:            id,
		offer:         offer,
		status:        StatusPending,
		submittedAt:   wall,
		submittedTick: tick,
	}
	e.orders[o.id] = o
	e.pending = append(e.pending, o)
	e.pendingBy[offer.Party]++
	e.bookSeq.Add(1)
	e.agg.AddSubmitted(1)
	e.logEvent(Event{
		Kind: EvBooked, Tick: o.submittedTick,
		Order: o.id, Offer: &o.offer,
	})
	return o.id, nil
}

// Order returns a snapshot of one order's state.
func (e *Engine) Order(id OrderID) (OrderSnapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, ok := e.orders[id]
	if !ok {
		return OrderSnapshot{}, false
	}
	return o.snapshot(), true
}

// Orders snapshots every order the engine ever accepted, in submission
// order — the scenario harness's raw material for digests and
// invariant checks.
func (e *Engine) Orders() []OrderSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]OrderSnapshot, 0, len(e.orders))
	for id := OrderID(1); id <= e.nextOrder; id++ {
		if o, ok := e.orders[id]; ok {
			out = append(out, o.snapshot())
		}
	}
	return out
}

// NoteShed records arrivals dropped before intake (the open-loop
// generator's bounded-intake backstop), so shedding shows up in the
// engine's own per-outcome accounting.
func (e *Engine) NoteShed(n int) {
	e.agg.AddShed(n)
	e.shedPulse.Add(int64(n))
	e.logEvent(Event{Kind: EvShed, Tick: e.sched.Now(), Count: n})
}

// NoteShedFrom is NoteShed with party attribution: the shed arrival's
// offering party rides along in the WAL event, so a recovered run — and
// any fairness audit over the log — can tell whose traffic the backstop
// turned away.
func (e *Engine) NoteShedFrom(party chain.PartyID, n int) {
	e.agg.AddShed(n)
	e.shedPulse.Add(int64(n))
	e.logEvent(Event{Kind: EvShed, Tick: e.sched.Now(), Count: n, Party: string(party)})
}

// decPendingLocked balances pendingBy when an order leaves
// StatusPending. Call with e.mu held.
func (e *Engine) decPendingLocked(party chain.PartyID) {
	if n := e.pendingBy[party]; n > 1 {
		e.pendingBy[party] = n - 1
	} else {
		delete(e.pendingBy, party)
	}
}

// PendingOf reports how many of the named party's orders are pending.
func (e *Engine) PendingOf(party chain.PartyID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pendingBy[party]
}

// PendingParties reports how many distinct parties have pending orders.
func (e *Engine) PendingParties() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pendingBy)
}

// scheduleClear arms the next clearing tick on the shared scheduler.
// Driving the clearing loop from the scheduler — instead of the
// wall-clock ticker it used through PR 4 — is what makes virtual-time
// runs deterministic end to end: clearing rounds land at fixed virtual
// ticks, interleaved with arrivals and protocol events in schedule
// order, rather than whenever the host OS ran a ticker goroutine.
// clearAt schedules fn for tick t at tail priority on virtual schedulers:
// the clearing pass then runs only after every protocol event of its tick
// has fully drained, which gives serialized and striped-parallel dispatch
// the identical pre-clearing queue state — the liveness gate below reads
// it — and makes the clearing tick the canonical last word of its tick.
func (e *Engine) clearAt(t vtime.Ticks, fn func()) sched.Timer {
	if e.vsched != nil {
		return e.vsched.AtTailN(t, e.cfg.TailPrio, e.cfg.ShardStripe, fn)
	}
	return e.sched.At(t, fn)
}

// nextClearTick is the tick the next clearing round runs at. Deterministic
// engines align rounds to the ClearEvery grid (the next multiple strictly
// after now) rather than now+ClearEvery: a loop re-armed mid-phase after
// parking would otherwise drift off-grid, and the sharded determinism
// contract needs every engine's rounds — across any shard count — to land
// on the same tick grid.
func (e *Engine) nextClearTick() vtime.Ticks {
	now := e.sched.Now()
	if !e.cfg.Deterministic {
		return now.Add(e.clearEvery)
	}
	every := int64(e.clearEvery)
	return vtime.Ticks((int64(now)/every + 1) * every)
}

func (e *Engine) scheduleClear() {
	e.clearMu.Lock()
	defer e.clearMu.Unlock()
	if e.clearStopped {
		return
	}
	e.clearTimer = e.clearAt(e.nextClearTick(), func() {
		e.clearMu.Lock()
		if e.clearStopped {
			e.clearMu.Unlock()
			return
		}
		e.clearWG.Add(1)
		e.clearMu.Unlock()
		defer e.clearWG.Done()
		if e.clearTick() {
			e.scheduleClear()
		}
	})
}

// ensureClearing re-arms a parked clearing loop (no-op otherwise). Called
// after intake books an order, outside the engine lock.
func (e *Engine) ensureClearing() {
	e.clearMu.Lock()
	parked := e.clearParked
	e.clearParked = false
	e.clearMu.Unlock()
	if parked {
		e.scheduleClear()
	}
}

// stopClearing cancels the clearing timer and waits out a tick in
// flight. After it returns no clearing round can run.
func (e *Engine) stopClearing() {
	e.clearMu.Lock()
	e.clearStopped = true
	t := e.clearTimer
	e.clearMu.Unlock()
	if t != nil {
		t.Stop()
	}
	e.clearWG.Wait()
}

// clearTick is one round of the batch clearing service: it partitions
// the pending book into executable swaps. While draining it also detects
// a stalled book (offers that can never match) and rejects it. The return
// value says whether to keep the loop armed: a deterministic engine with
// nothing virtually live parks instead (Submit re-arms; see clearParked).
func (e *Engine) clearTick() bool {
	e.clearRounds++
	// Virtual liveness: the book is non-empty, or swaps this engine
	// dispatched are still virtually live (liveRuns is decremented by the
	// run's OnHorizon hook, which fires at level 0 of its tick — before
	// any clearing tick of the same tick reads the count, so the gate is
	// a pure function of the virtual schedule). Once both are zero the
	// engine's own run is over in virtual terms — so anything that must
	// replay identically (Δ adaptations, the active-round count) is gated
	// on it, and the loop parks rather than spin empty rounds on the
	// free-running virtual clock until Drain notices at wall speed. The
	// engine's OWN liveness, not the global queue: on a shared sharded
	// scheduler the queue holds every other shard's events, and a
	// per-shard gate must not read cross-shard state (it would also be
	// racy across concurrently-running shard stripes). The in-flight
	// count (decremented by worker bookkeeping at wall speed)
	// deliberately plays no part.
	live := !e.cfg.Deterministic || e.Pending() > 0 || e.liveRuns.Load() > 0
	if live {
		e.activeRounds++
		if e.cfg.Deterministic {
			e.roundTicks = append(e.roundTicks, e.sched.Now())
		}
	} else if e.cfg.Deterministic {
		e.clearMu.Lock()
		e.clearParked = true
		e.clearMu.Unlock()
		// Re-check under the parked flag: an order booked between the gate
		// read and the park would otherwise wait forever (its ensureClearing
		// saw the loop still armed).
		if e.Pending() > 0 || e.liveRuns.Load() > 0 {
			e.ensureClearing()
		}
		e.notifyDrain()
		return false
	}
	if !e.cfg.Deterministic && e.vsched != nil {
		// A free-running virtual clock turns any round with nothing to
		// dispatch into a spin: with no swap events between now and the next
		// clearing tick, the loop burns one empty round per tick at CPU
		// speed — millions per wall second on this box — starving the
		// wall-speed worker bookkeeping (and Drain) it is waiting on. That
		// happens when the book is empty, and equally when the live-run gate
		// is saturated (dispatch blocked until horizons fire). Park instead;
		// intake (ensureClearing on Submit) and the gate (OnHorizon) both
		// re-arm. A reservation-conflicted group stays in the book with the
		// gate open, so retry rounds are never parked away.
		empty := e.Pending() == 0
		gated := !empty && e.liveRuns.Load() >= int64(e.maxLive)
		if empty || gated {
			e.clearMu.Lock()
			e.clearParked = true
			e.clearMu.Unlock()
			// Re-check under the parked flag: an order booked (or a horizon
			// fired) between the gate read and the park would otherwise have
			// seen the loop still armed and not re-armed it.
			if (empty && e.Pending() > 0) ||
				(gated && e.liveRuns.Load() < int64(e.maxLive)) {
				e.ensureClearing()
			}
			e.notifyDrain()
			return false
		}
	}
	if e.cfg.AdaptiveDelta && live {
		e.adaptDelta()
	}
	seq := e.bookSeq.Load()
	dispatched := e.clearRound()
	e.mu.Lock()
	stalled := e.state == stateDraining && !dispatched &&
		e.inflight == 0 && len(e.pending) > 0
	e.mu.Unlock()
	if stalled {
		e.drainStall++
	} else {
		e.drainStall = 0
	}
	if e.drainStall >= 3 {
		// Three quiet rounds with nothing in flight: the remaining
		// offers have no counterparties coming. Reject them so
		// Drain can finish.
		e.rejectPending("unmatched: no counterparties before drain")
		e.drainStall = 0
	}
	if e.cfg.Deterministic && !dispatched && e.liveRuns.Load() == 0 && e.Pending() > 0 {
		// Stuck book: offers that cannot form a swap (partial rings left
		// by shedding) with nothing virtually live. Nothing about the next
		// round can differ until a new order books, so spinning would only
		// burn wall-dependent rounds into the active-round count — the
		// digest's determinism hangs on parking here. Submit re-arms;
		// Drain rejects a book still stuck at drain time. liveRuns (not
		// inflight) keeps the gate schedule-pure: a run past its horizon
		// can settle orders but never book one.
		e.clearMu.Lock()
		e.clearParked = true
		e.clearMu.Unlock()
		// Close the park race with a booking sequence check — an arrival
		// between the pre-dispatch read and the park saw an armed loop.
		if e.bookSeq.Load() != seq {
			e.ensureClearing()
		}
		e.notifyDrain()
		return false
	}
	return true
}

// clearRound runs one clearing pass and reports whether any swap was
// dispatched to the executor pool.
func (e *Engine) clearRound() bool {
	// Dispatch capacity this round, in swaps. When the virtual live-run
	// gate is saturated there is no point partitioning the book at all —
	// on a deep book that scan (and its graph partition) is the dominant
	// per-round cost, and a gated round can dispatch nothing anyway. The
	// gate count is schedule-pure (see liveRuns), so deterministic engines
	// replay this short-circuit identically.
	capSwaps := -1 // unbounded
	if e.vsched != nil {
		capSwaps = e.maxLive - int(e.liveRuns.Load())
		if capSwaps <= 0 {
			return false
		}
	}

	// One offer per party per round: a party's later orders wait for its
	// earlier ones, which also serializes conflicting same-asset offers.
	e.mu.Lock()
	if len(e.pending) < 2 {
		// Nothing can match; skip the per-round map allocation — most
		// rounds of a loaded virtual run find the book momentarily empty.
		e.mu.Unlock()
		return false
	}
	limit := e.cfg.MaxBatch
	if capSwaps > 0 {
		// Scan only what this round can plausibly dispatch: groups are
		// small (a handful of offers each), so 8 offers per free slot —
		// floored so thin capacity still sees enough of the book to form
		// matches — keeps partitioning O(capacity), not O(book). Offers
		// beyond the window just wait; the book is FIFO, so nothing is
		// starved, and later rounds see whatever this one left behind.
		if w := 8 * capSwaps; w < limit {
			if w < 64 {
				w = 64
			}
			limit = w
		}
	}
	seen := make(map[chain.PartyID]bool)
	var batch []*order
	for _, o := range e.pending {
		if len(batch) >= limit {
			break
		}
		if seen[o.offer.Party] {
			continue
		}
		seen[o.offer.Party] = true
		batch = append(batch, o)
	}
	e.mu.Unlock()
	if len(batch) < 2 {
		return false
	}

	offers := make([]core.Offer, len(batch))
	byParty := make(map[chain.PartyID]*order, len(batch))
	for i, o := range batch {
		offers[i] = o.offer
		byParty[o.offer.Party] = o
	}
	b, err := core.PartitionOffers(offers)
	if err != nil {
		// Cannot happen for submit-validated offers; reject defensively
		// rather than spinning on a poisoned batch.
		e.rejectOrders(batch, "clearing: "+err.Error())
		return false
	}
	dispatched := false
	for _, g := range b.Groups {
		if e.cfg.MaxClearAhead > 0 && e.InFlight() >= e.cfg.MaxClearAhead {
			break // backpressure: leave the rest pending for later rounds
		}
		if e.vsched != nil && e.liveRuns.Load() >= int64(e.maxLive) {
			// Virtual-time backpressure: the count of virtually-live runs
			// is schedule-pure (see liveRuns), so deterministic engines can
			// gate on it where wall-speed in-flight counts would break
			// replay. Keeping live runs bounded also keeps the shared
			// chains' per-record observer fanout O(workers), not O(book).
			break
		}
		if e.clearGroup(g, byParty) {
			dispatched = true
		}
	}
	return dispatched
}

// clearGroup reserves a matched group's assets, clears it into a swap
// setup, and hands it to the executor pool. Returns false if the group
// must wait (reservation contention) or was rejected.
func (e *Engine) clearGroup(g []core.Offer, byParty map[chain.PartyID]*order) bool {
	var seq uint64
	if e.cfg.CanonicalSwapTags {
		// Sharded identity: tag, seed, and stripe derive from the minimum
		// order ID in the group. Router-assigned IDs are globally unique
		// and arrival-ordered, so the identity is the same whichever
		// engine (shard, coordinator, or the 1-shard baseline) clears the
		// group — and distinct concurrent groups never share a stripe.
		for _, o := range g {
			if id := uint64(byParty[o.Party].id); seq == 0 || id < seq {
				seq = id
			}
		}
	} else {
		e.mu.Lock()
		e.nextSwap++
		seq = e.nextSwap
		e.mu.Unlock()
	}
	swapID := fmt.Sprintf("swap-%06d", seq)
	seed := e.cfg.Seed + int64(seq)
	// The rng draw needs no lock: clearGroup only ever runs on the
	// clearing goroutine, to which e.rng is confined (see the field doc).
	adversarial := e.cfg.AdversaryRate > 0 && e.rng.Float64() < e.cfg.AdversaryRate

	var held []resvKey
	release := func() {
		for _, r := range held {
			e.reg.Release(r.chain, r.asset, swapID)
		}
	}
	for _, o := range g {
		for _, tr := range o.Give {
			if err := e.reg.Reserve(tr.Chain, tr.Asset, o.Party, swapID); err != nil {
				release()
				if errors.Is(err, chain.ErrAssetReserved) {
					// Another in-flight swap holds it; the whole group
					// retries next round.
					e.agg.AddReservationConflict()
					return false
				}
				// The asset was spent or never owned: this offer can never
				// execute. Reject it; the rest of the group rematches.
				e.rejectOrders([]*order{byParty[o.Party]}, err.Error())
				return false
			}
			held = append(held, resvKey{chain: tr.Chain, asset: tr.Asset})
		}
	}
	if e.cfg.LogPrepared && e.cfg.Store != nil {
		// AC3 prepare record: every involved asset is now reserved (the
		// shared registry's reservation table spans all shards), but the
		// swap is not yet committed — that is EvCleared, below. A crash
		// between the two folds back to pending orders; the reservations
		// die with the process, so the prepare is implicitly refunded and
		// the orders resume and re-clear after recovery.
		ids := make([]OrderID, 0, len(g))
		for _, o := range g {
			ids = append(ids, byParty[o.Party].id)
		}
		spans := 0
		if e.cfg.ShardOfChain != nil {
			seen := make(map[int]bool, len(held))
			for _, r := range held {
				seen[e.cfg.ShardOfChain(r.chain)] = true
			}
			spans = len(seen)
		}
		e.logEvent(Event{
			Kind: EvPrepared, Tick: e.sched.Now(),
			Swap: swapID, Orders: ids, Count: spans,
		})
	}

	// rejectGroup is the shared recovery path for a group that cleared
	// structurally but cannot run: drop the reservations, reject every
	// member.
	rejectGroup := func(reason string) {
		release()
		group := make([]*order, 0, len(g))
		for _, o := range g {
			group = append(group, byParty[o.Party])
		}
		e.rejectOrders(group, reason)
	}

	delta := e.CurrentDelta()
	// Under a commitment model each chain's effective Δ includes its
	// confirmation depth: the timelock ladder must wait out finality,
	// not just delivery. Only chains whose effective Δ differs from the
	// base carry an entry, and the map stays nil under Instant — core's
	// historical single-Δ arithmetic is untouched byte-for-byte.
	var chainDeltas map[string]vtime.Duration
	if e.cfg.Commitment.Enabled() {
		for _, r := range held {
			if _, dup := chainDeltas[r.chain]; dup {
				continue
			}
			if eff := e.reg.Chain(r.chain).Timing().EffectiveDelta(delta); eff != delta {
				if chainDeltas == nil {
					chainDeltas = make(map[string]vtime.Duration)
				}
				chainDeltas[r.chain] = eff
			}
		}
	}

	setup, err := core.Clear(g, core.Config{
		Kind:        e.cfg.Kind,
		Tag:         swapID,
		Delta:       delta,
		ChainDeltas: chainDeltas,
		// A splitmix stream seeds per-swap secrets and keys in O(1)
		// instead of math/rand's O(607) Lehmer state initialization —
		// a measurable per-swap cost at clearing rates, with the same
		// determinism guarantee (the stream is a pure function of seed).
		Rand:    newSeededRand(uint64(seed)),
		Keyring: e.keyring,
		Cache:   e.vcache,
	})
	if err != nil {
		rejectGroup("clearing: " + err.Error())
		return false
	}

	j := &job{
		swapID:      swapID,
		setup:       setup,
		resv:        held,
		adversarial: adversarial,
		seed:        seed,
		seq:         seq,
	}
	if e.cfg.Deterministic {
		// Swap setup happens inside the clearing tick, on the serialized
		// scheduler's dispatcher: the protocol start is pinned relative to
		// this round's tick, so the whole run is a pure function of the
		// arrival schedule and the seed. The worker only waits for the
		// result and settles the books.
		sb := e.buildBehaviors(setup, seed, adversarial)
		j.deviants = sb.Deviants
		rn, err := conc.Prepare(setup, sb.Behaviors, e.runConfig(setup.Spec, seed, j.seq))
		if err != nil {
			rejectGroup("execution: " + err.Error())
			return false
		}
		j.running = rn
	}
	// Counted live from dispatch until the run's horizon event fires (see
	// liveRuns). The non-deterministic path prepares in the worker; a
	// Prepare failure there un-counts the run itself (runSwap).
	e.liveRuns.Add(1)
	e.mu.Lock()
	for _, o := range g {
		ord := byParty[o.Party]
		ord.status = StatusExecuting
		ord.swap = swapID
		e.decPendingLocked(ord.offer.Party)
		j.orders = append(j.orders, ord)
	}
	e.compactPendingLocked()
	e.inflight++
	e.mu.Unlock()
	e.agg.AddCleared(len(j.orders))
	if e.cfg.Store != nil {
		now := e.sched.Now()
		for _, r := range held {
			e.logEvent(Event{
				Kind: EvReserved, Tick: now,
				Swap: swapID, Chain: r.chain, Asset: r.asset,
			})
		}
		ids := make([]OrderID, len(j.orders))
		for i, o := range j.orders {
			ids[i] = o.id
		}
		e.logEvent(Event{Kind: EvCleared, Tick: now, Swap: swapID, Orders: ids})
	}
	e.jobs <- j
	return true
}

// worker executes cleared swaps from the queue until it closes.
func (e *Engine) worker() {
	defer e.workerWG.Done()
	for j := range e.jobs {
		e.runSwap(j)
	}
}

// buildBehaviors assembles one swap's behavior overrides: the Behaviors
// factory when configured, else the legacy AdversaryRate silent leader.
// Deviation tallies happen at settle time (runSwap), not here, so a
// swap rejected before it ran never counts its injected deviations.
func (e *Engine) buildBehaviors(setup *core.Setup, seed int64, adversarial bool) SwapBehaviors {
	var sb SwapBehaviors
	spec := setup.Spec
	switch {
	case e.cfg.Behaviors != nil:
		sb = e.cfg.Behaviors(setup, seed)
	case adversarial:
		// A silent leader completes Phase One and never reveals: the swap
		// aborts, every conforming party refunds (never Underwater).
		lv := spec.Leaders[seed%int64(len(spec.Leaders))]
		idx, _ := spec.LeaderIndex(lv)
		sb = SwapBehaviors{
			Behaviors: map[digraph.Vertex]core.Behavior{lv: adversary.SilentLeader(idx)},
			Deviants:  map[digraph.Vertex]string{lv: "silent-leader"},
		}
	}
	return sb
}

// runConfig is the conc configuration every engine swap runs with. The
// 2Δ start offset leaves deployment headroom; a deterministic per-swap
// stagger inside one Δ spreads the event bursts of swaps dispatched in
// the same wave.
func (e *Engine) runConfig(spec *core.Spec, seed int64, stripe uint64) conc.Config {
	stagger := vtime.Duration(seed % int64(spec.Delta))
	cfg := conc.Config{
		Scheduler:   e.sched,
		StartOffset: vtime.Scale(2, spec.Delta) + stagger,
		Registry:    e.reg,
		// Early exit trims the horizon wait. Deterministic runs play to
		// the horizon instead: early teardown cancels trailing deliveries
		// at wall speed, and whether a given delivery fired or was
		// cancelled would differ across replays.
		EarlyExit:      !e.cfg.Deterministic,
		Cache:          e.vcache,
		SyncDeliveries: e.cfg.Deterministic,
		// Per-swap stripes let the striped-parallel scheduler run this
		// swap serialized against itself but concurrent with the others;
		// the shared ring replaces per-run trace logs.
		StripeKey: stripe,
		Log:       e.tracer,
		OnHorizon: func() {
			e.liveRuns.Add(-1)
			// A saturated gate parks the non-deterministic clearing loop;
			// the horizon that opened the gate re-arms it. No-op when the
			// loop is armed (or deterministic: its ticks stay scheduled).
			if e.Pending() > 0 {
				e.ensureClearing()
			}
		},
	}
	if e.cfg.Store != nil {
		// Phase transitions go to the WAL: recovery's resume-vs-refund
		// rule reads the furthest phase a swap reached and its deadline.
		tag := spec.Tag
		cfg.OnPhase = func(ev conc.PhaseEvent) {
			e.cfg.Store.Append(Event{
				Kind: EvPhase, Tick: ev.At,
				Swap: tag, Phase: ev.Phase, Deadline: ev.Deadline,
			})
		}
	}
	if e.cfg.Commitment.Enabled() {
		// Reorg reverts are counted per chain and (when durable) logged:
		// recovery can then tell how much of a swap's trajectory was
		// reorg-disturbed before the crash.
		tag := spec.Tag
		cfg.OnRevert = func(ev conc.RevertEvent) {
			e.agg.AddReverted(ev.Chain)
			e.logEvent(Event{
				Kind: EvReverted, Tick: ev.At,
				Swap: tag, Chain: ev.Chain, Phase: ev.Kind.String(),
			})
		}
	}
	return cfg
}

// runSwap executes one swap over the shared registry and settles its
// orders.
func (e *Engine) runSwap(j *job) {
	e.agg.SwapStarted()
	spec := j.setup.Spec
	var res *conc.Result
	var err error
	if j.running != nil {
		// Deterministic mode: the run was prepared inside the clearing
		// tick; the protocol is already playing out on the scheduler.
		res = j.running.Wait()
	} else {
		// The start time is pinned only inside conc.Run, when a worker
		// actually picks the swap up: queue latency must not eat into the
		// protocol's deadlines, and under virtual time the clock could
		// advance between a Now read here and the run's setup (StartOffset
		// pins it atomically under a scheduler hold).
		sb := e.buildBehaviors(j.setup, j.seed, j.adversarial)
		j.deviants = sb.Deviants
		res, err = conc.Run(j.setup, sb.Behaviors, e.runConfig(spec, j.seed, j.seq))
		if err != nil {
			// Prepare failed before the horizon hook could be armed; the
			// dispatch-time count must come back down here.
			e.liveRuns.Add(-1)
		}
	}
	// The virtual tick this swap's durable events carry: its settle tick.
	// Worker bookkeeping runs at wall speed, so the append ORDER of these
	// events is racy — but their tick stamp is a pure function of the
	// schedule, which is what crash-replay determinism filters on.
	doneTick := e.sched.Now()
	if res != nil {
		doneTick = res.SettleTick
	}
	for _, r := range j.resv {
		e.reg.Release(r.chain, r.asset, j.swapID)
		if e.cfg.Store != nil {
			// Record the asset's post-swap owner — ground truth from the
			// chain, so recovery re-mints under whoever actually holds it.
			// An asset stranded in contract escrow (a crashed or
			// claim-withholding deviant walked away) is recorded under an
			// escrow pseudo-party: a restarted engine cannot resurrect
			// another chain's contract state, only represent the loss.
			ownerParty := "escrow:" + j.swapID
			if owner, ok := e.reg.Chain(r.chain).OwnerOf(r.asset); ok && owner.Kind == chain.OwnerParty {
				ownerParty = string(owner.Party)
			}
			e.logEvent(Event{
				Kind: EvReleased, Tick: doneTick,
				Swap: j.swapID, Chain: r.chain, Asset: r.asset,
				Party: ownerParty,
			})
		}
	}

	var econ metrics.SwapEconomics
	var locks map[digraph.Vertex]uint64
	if err == nil && res != nil {
		econ, locks = swapEconomics(spec, res, j.deviants)
	}

	now := time.Now()
	e.mu.Lock()
	for _, o := range j.orders {
		if err != nil {
			o.status = StatusRejected
			o.reason = "execution: " + err.Error()
			e.logEvent(Event{
				Kind: EvRejected, Tick: doneTick,
				Order: o.id, Reason: o.reason,
			})
			continue
		}
		o.status = StatusSettled
		o.settledAt = now
		o.settledTick = res.SettleTick
		if v, ok := spec.VertexOf(o.offer.Party); ok {
			o.class = res.Report.Of(v)
			o.deviant = j.deviants[v]
			o.lockCost = locks[v]
		}
		e.logEvent(Event{
			Kind: EvSettled, Tick: res.SettleTick,
			Order: o.id, Swap: j.swapID,
			Class: int(o.class), Deviant: o.deviant,
		})
	}
	e.inflight--
	idle := e.inflight == 0
	e.mu.Unlock()
	if idle {
		e.notifyDrain()
	}

	if err != nil {
		e.agg.AddRejected(len(j.orders))
		e.agg.SwapFinished(true)
		return
	}
	if len(j.deviants) > 0 {
		e.agg.AddSabotaged(len(j.orders))
		for _, name := range j.deviants {
			e.agg.AddDeviation(name)
		}
	}
	for _, o := range j.orders {
		e.agg.AddOutcome(o.class.String(), now.Sub(o.submittedAt))
	}
	e.agg.AddEconomics(econ)
	e.agg.SwapFinished(false)
}

// rejectPending rejects every still-pending order.
func (e *Engine) rejectPending(reason string) {
	e.mu.Lock()
	batch := append([]*order(nil), e.pending...)
	e.mu.Unlock()
	e.rejectOrders(batch, reason)
}

// rejectOrders marks orders rejected (skipping any that already left the
// pending state) and removes them from the book.
func (e *Engine) rejectOrders(batch []*order, reason string) {
	now := e.sched.Now()
	e.mu.Lock()
	n := 0
	for _, o := range batch {
		if o.status != StatusPending {
			continue
		}
		o.status = StatusRejected
		o.reason = reason
		e.decPendingLocked(o.offer.Party)
		n++
		e.logEvent(Event{Kind: EvRejected, Tick: now, Order: o.id, Reason: reason})
	}
	e.compactPendingLocked()
	empty := len(e.pending) == 0
	e.mu.Unlock()
	if n > 0 {
		e.agg.AddRejected(n)
	}
	if empty {
		e.notifyDrain()
	}
}

// notifyDrain wakes a blocked Drain without ever blocking the caller.
func (e *Engine) notifyDrain() {
	select {
	case e.drainCh <- struct{}{}:
	default:
	}
}

// compactPendingLocked drops every non-pending order from the book. The
// caller holds e.mu.
func (e *Engine) compactPendingLocked() {
	kept := e.pending[:0]
	for _, o := range e.pending {
		if o.status == StatusPending {
			kept = append(kept, o)
		}
	}
	e.pending = kept
}

// Kill stops the engine abruptly — the crash-model shutdown the durable
// subsystem recovers from. Intake closes and the clearing loop stops,
// but unlike Stop nothing is drained: pending orders stay pending and
// in-flight swaps are left to play out (their settle events carry ticks
// past the cut, so recovery ignores them). It returns the cut tick —
// the virtual instant of the crash; durable.Recover replays only events
// stamped at or before it, making the recovered state a pure function
// of the schedule. Call Stop afterwards to release workers and the
// scheduler. Safe from any goroutine, including scheduler callbacks
// (it never waits on a clearing tick in flight).
func (e *Engine) Kill() vtime.Ticks {
	e.mu.Lock()
	if e.state == stateRunning || e.state == stateNew {
		e.state = stateDraining
	}
	e.killed = true
	e.mu.Unlock()
	e.clearMu.Lock()
	e.clearStopped = true
	t := e.clearTimer
	e.clearMu.Unlock()
	if t != nil {
		t.Stop()
	}
	cut := e.sched.Now()
	e.logEvent(Event{Kind: EvKilled, Tick: cut})
	e.notifyDrain()
	return cut
}

// Drain stops intake and waits for the book and the executor pool to
// empty. Offers that cannot match are rejected after a few quiet rounds.
// After Kill the book is deliberately ignored: pending orders are the
// recovery subsystem's input, and no clearing round is left to resolve
// them anyway.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if e.state == stateRunning {
		e.state = stateDraining
	}
	e.mu.Unlock()
	// Event-driven wait: workers, rejections, parking, and Kill all signal
	// drainCh the instant the engine may have gone idle, so virtual runs
	// no longer pay a fixed wall-clock poll interval as a shutdown tail.
	// The coarse ticker is a belt-and-braces fallback only.
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		e.mu.Lock()
		idle := (len(e.pending) == 0 || e.killed) && e.inflight == 0
		stuck := !idle && len(e.pending) > 0 && e.inflight == 0
		e.mu.Unlock()
		if idle {
			return nil
		}
		if stuck && e.liveRuns.Load() == 0 {
			// A deterministic clearing loop parks on a stuck book (see
			// clearTick) instead of spinning drainStall up; the remaining
			// offers have no counterparties coming, so reject them here.
			// The parked virtual clock is frozen at the schedule's last
			// event, so the rejection tick — and the digest — stays a pure
			// function of the seed.
			e.clearMu.Lock()
			parked := e.clearParked
			e.clearMu.Unlock()
			if parked {
				e.rejectPending("unmatched: no counterparties before drain")
				continue
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-e.drainCh:
		case <-tick.C:
		}
	}
}

// Stop gracefully shuts the engine down: drain the book, stop the
// clearing loop, and wait for every in-flight swap to finish.
func (e *Engine) Stop(ctx context.Context) error {
	drainErr := e.Drain(ctx)
	e.mu.Lock()
	if e.state == stateStopped {
		e.mu.Unlock()
		return drainErr
	}
	e.state = stateStopped
	e.mu.Unlock()
	e.stopClearing()
	close(e.jobs)
	e.workerWG.Wait()
	if e.vsched != nil && e.ownSched {
		// All runs have drained their scheduler holds; stop the virtual
		// dispatcher so the engine leaves no goroutine behind. An
		// injected (shared) scheduler is the shard owner's to close,
		// once, after every engine sharing it has stopped.
		e.vsched.Close()
	}
	return drainErr
}

// Report snapshots the service-level metrics. The signature count comes
// from the keyring meter at snapshot time; with a shared (sharded)
// keyring it is the global count — the sharded report overrides it once
// after merging, so it is never summed across shards.
func (e *Engine) Report() metrics.Throughput {
	e.agg.SetSigns(e.keyring.Signs())
	if e.cfg.Commitment.Enabled() {
		// Surface each probed chain's effective Δ (chain Δ + confirmation
		// depth) so heterogeneous-finality runs show their real ladder.
		base := e.CurrentDelta()
		deltas := make(map[string]int)
		for _, name := range e.reg.ModeledChains() {
			deltas[name] = int(e.reg.Chain(name).Timing().EffectiveDelta(base))
		}
		if len(deltas) > 0 {
			e.agg.SetChainDeltas(deltas)
		}
	}
	return e.agg.Snapshot()
}

// MergeMetricsInto folds this engine's aggregate metrics into dst — the
// sharded engine's report assembly. Call in a fixed shard order after
// the engines have stopped so the merged Δ trajectory is deterministic.
func (e *Engine) MergeMetricsInto(dst *metrics.Aggregate) { dst.Merge(e.agg) }

// TakeLatencyWindow snapshots and resets the per-interval latency
// histogram: the percentiles of every order settled since the previous
// call (or since start). Long runs poll it to see steady-state tails
// instead of lifetime mush.
func (e *Engine) TakeLatencyWindow() metrics.LatencyWindow { return e.agg.TakeLatencyWindow() }

// SetRecoveryStats records crash-recovery counters on the engine's
// metrics (durable.Recover calls it on the engine it rebuilds).
func (e *Engine) SetRecoveryStats(rs metrics.RecoveryStats) { e.agg.SetRecovery(rs) }

// ClearRounds reports how many clearing rounds had live work to look at
// (see the activeRounds field doc: trailing empty rounds while Drain
// polls are excluded, so the count replays identically in deterministic
// mode). Call only after Stop — the count is confined to the clearing
// goroutine while the engine runs.
func (e *Engine) ClearRounds() int { return e.activeRounds }

// ClearRoundTicks returns the tick of every active clearing round
// (recorded in deterministic mode only; nil otherwise). Like ClearRounds,
// call only after Stop. The sharded engine merges per-shard tick SETS so
// a round where k shards all had work counts once, exactly as the same
// work would in a 1-shard run.
func (e *Engine) ClearRoundTicks() []vtime.Ticks { return e.roundTicks }

// Pending returns the current book depth.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// InFlight returns the number of cleared swaps queued or executing.
func (e *Engine) InFlight() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inflight
}

// VerifyConservation checks the registry invariant that rules out
// double-spends: every asset the engine ever minted still exists exactly
// once, with its recorded amount, on its chain, and every ledger's hash
// chain is intact. When nothing is in flight it additionally requires
// every asset to be party-owned (no stranded escrow).
func (e *Engine) VerifyConservation() error { return e.verifyLedgers(true) }

// VerifyLedgerIntegrity is VerifyConservation without the stranded-
// escrow check: ledgers intact, every minted asset present exactly once
// with its recorded amount and a well-defined owner. Scenarios with
// crash-faulted or claim-withholding deviants use it — a crashed party
// legitimately leaves its escrow unclaimed forever, which is its own
// loss, not a conservation violation.
func (e *Engine) VerifyLedgerIntegrity() error { return e.verifyLedgers(false) }

// Recovered reports whether this engine was rebuilt from a durable log
// (engine.NewRecovered) rather than started fresh.
func (e *Engine) Recovered() bool { return e.recovered }

func (e *Engine) verifyLedgers(strandCheck bool) error {
	e.mu.Lock()
	minted := append([]mintRec(nil), e.minted...)
	quiescent := e.inflight == 0
	e.mu.Unlock()

	if !e.reg.VerifyAllLedgers() {
		return errors.New("engine: ledger hash chain broken")
	}
	for _, m := range minted {
		ch := e.reg.Chain(m.chain)
		a, ok := ch.Asset(m.asset)
		if !ok {
			return fmt.Errorf("engine: minted asset %s/%s vanished", m.chain, m.asset)
		}
		if a.Amount != m.amount {
			return fmt.Errorf("engine: asset %s/%s amount changed: minted %d, now %d",
				m.chain, m.asset, m.amount, a.Amount)
		}
		owner, ok := ch.OwnerOf(m.asset)
		if !ok {
			return fmt.Errorf("engine: asset %s/%s has no owner", m.chain, m.asset)
		}
		if strandCheck && quiescent && owner.Kind != chain.OwnerParty {
			return fmt.Errorf("engine: asset %s/%s stranded in escrow (%s)",
				m.chain, m.asset, owner)
		}
	}
	return nil
}
