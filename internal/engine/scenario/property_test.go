package scenario

import (
	"fmt"
	"testing"
)

// TestConformingSafetyMatrix is the property test behind Theorem 4.9's
// uniformity claim, engine-scale: across a seeded matrix of deviation
// rates × arrival profiles, no conforming party's net asset position
// may decrease. Concretely per settled order: a conforming party ends
// in an acceptable class (Deal — traded evenly; NoDeal — refunded
// whole; Discount/FreeRide — strictly ahead), never Underwater (paid
// without being paid), and the ledgers conserve every minted asset.
// Deviants are allowed any fate; that asymmetry is the theorem.
func TestConformingSafetyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix")
	}
	profiles := []string{"constant", "poisson", "burst:6", "ramp:0.5:2"}
	rates := []float64{0.05, 0.25}
	// Rotate through strategy pairs so the matrix covers the whole
	// taxonomy without running |strategies| × |profiles| × |rates| cells.
	pairs := [][2]string{
		{"silent-leader", "crash"},
		{"withhold-publish", "stall-past-timelock"},
		{"no-claim", "corrupt-publish"},
		{"eager-publish", "premature-reveal"},
	}
	seed := int64(7000)
	for pi, profile := range profiles {
		for _, rate := range rates {
			seed++
			pair := pairs[pi%len(pairs)]
			name := fmt.Sprintf("%s/rate=%.2f/%s+%s", profile, rate, pair[0], pair[1])
			t.Run(name, func(t *testing.T) {
				res, err := Run(Scenario{
					Name:    name,
					Seed:    seed,
					Offers:  30,
					Rate:    2000,
					Profile: profile,
					Deviations: []Deviation{
						{Strategy: pair[0], Rate: rate},
						{Strategy: pair[1], Rate: rate},
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("safety violations at %s: %+v", name, res.Violations)
				}
				if res.Digest.Conservation != "ok" {
					t.Fatalf("conservation: %s", res.Digest.Conservation)
				}
				// Every order reached a terminal state; intake accounting
				// closes.
				for _, o := range res.Digest.Orders {
					if o.Status != "settled" && o.Status != "rejected" {
						t.Fatalf("order %d not terminal: %s", o.ID, o.Status)
					}
				}
				st := res.Load
				if st.Submitted+st.Shed+st.Refused != st.Offered {
					t.Fatalf("intake accounting leaks: %+v", st)
				}
			})
		}
	}
}

// TestSabotageAccounting pins the per-outcome counters: with a heavy
// deviation rate the engine must report sabotaged orders and injected
// deviations, and settled+refunded must cover the conforming outcomes.
func TestSabotageAccounting(t *testing.T) {
	res, err := Run(Scenario{
		Name:    "accounting",
		Seed:    55,
		Offers:  30,
		Rate:    2000,
		Profile: "poisson",
		Deviations: []Deviation{
			{Strategy: "silent-leader", Rate: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.OrdersSabotaged == 0 {
		t.Fatalf("no sabotaged orders at 50%% injection: %+v", rep.Outcomes)
	}
	if rep.Deviations["silent-leader"] == 0 {
		t.Fatalf("no deviations tallied: %v", rep.Deviations)
	}
	if rep.OrdersSettled != rep.Outcomes["Deal"] || rep.OrdersRefunded != rep.Outcomes["NoDeal"] {
		t.Fatalf("settled/refunded counters disagree with outcomes: %+v vs %v",
			rep, rep.Outcomes)
	}
	if rep.OrdersSettled == 0 || rep.OrdersRefunded == 0 {
		t.Fatalf("one-sided outcomes at 50%% injection: %v", rep.Outcomes)
	}
}
