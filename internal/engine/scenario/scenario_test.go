package scenario

import (
	"strings"
	"testing"
)

// mixScenario is the determinism workhorse: open-loop Poisson load with
// five deviation strategies injected, adaptive Δ on, so the digest
// covers intake, clearing, the Δ controller, and the abort paths all at
// once.
func mixScenario(seed int64) Scenario {
	return Scenario{
		Name:          "determinism-mix",
		Seed:          seed,
		Offers:        45,
		Rate:          2500,
		Profile:       "poisson",
		AdaptiveDelta: true,
		Deviations: []Deviation{
			{Strategy: "silent-leader", Rate: 0.12},
			{Strategy: "withhold-publish", Rate: 0.10},
			{Strategy: "crash", Rate: 0.10},
			{Strategy: "stall-past-timelock", Rate: 0.10},
			{Strategy: "no-claim", Rate: 0.08},
		},
	}
}

// TestDeterminism is the replay contract: the same seeded open-loop
// adversarial scenario, run twice, must produce byte-identical digests
// — same intake ticks, same clearing decisions, same Δ trajectory, same
// settle order. Before the scheduler-driven clearing loop this failed:
// rounds fired off a wall-clock ticker, so the round at which each ring
// cleared (and hence every downstream tick) varied run to run. CI runs
// this under -race too, and `go test -run Determinism -count=2`
// additionally replays across process-internal state.
func TestDeterminism(t *testing.T) {
	sc := mixScenario(9001)
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := first.Digest.JSON(), second.Digest.JSON()
	if a != b {
		t.Fatalf("same seed diverged:\nrun1: %s\nrun2: %s", a, b)
	}
	if first.Digest.Hash() != second.Digest.Hash() {
		t.Fatal("digest hashes diverged")
	}

	// The run must actually have exercised the adversarial machinery:
	// at least 4 distinct deviation strategies injected, under open-loop
	// load, with the safety invariant checked and intact.
	if got := len(first.Digest.Deviations); got < 4 {
		t.Fatalf("only %d deviation strategies injected (%v), want >= 4",
			got, first.Digest.Deviations)
	}
	if first.Digest.Submitted == 0 || first.Digest.SwapsFinished == 0 {
		t.Fatalf("no load flowed: %+v", first.Digest)
	}
	if len(first.Violations) != 0 {
		t.Fatalf("safety violations: %+v", first.Violations)
	}
	if first.Digest.Safety != "ok" || first.Digest.Conservation != "ok" {
		t.Fatalf("digest safety %q conservation %q", first.Digest.Safety, first.Digest.Conservation)
	}
	// Aborted swaps must exist (the deviants did something) alongside
	// clean Deals, and the settle-order trace must cover every finished
	// swap.
	if first.Digest.Outcomes["NoDeal"] == 0 || first.Digest.Outcomes["Deal"] == 0 {
		t.Fatalf("deviation mix produced one-sided outcomes: %v", first.Digest.Outcomes)
	}
	if len(first.Digest.SettleOrder) != first.Digest.SwapsFinished {
		t.Fatalf("settle order has %d swaps, report says %d finished",
			len(first.Digest.SettleOrder), first.Digest.SwapsFinished)
	}
}

// TestDeterminismSeedSensitivity: different seeds must actually produce
// different runs — a digest that never changes is vacuously identical.
func TestDeterminismSeedSensitivity(t *testing.T) {
	a, err := Run(mixScenario(9001))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mixScenario(9002))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest.JSON() == b.Digest.JSON() {
		t.Fatal("different seeds produced identical digests")
	}
}

// TestAdaptiveDeltaTrajectoryReplay pins the Δ controller into the
// replay contract: with AdaptiveDelta on, the decision series itself
// (rounds, ticks, window evidence) must be byte-stable.
func TestAdaptiveDeltaTrajectoryReplay(t *testing.T) {
	sc := Scenario{
		Name:          "adaptive-replay",
		Seed:          31,
		Offers:        36,
		Rate:          1500,
		Profile:       "constant",
		AdaptiveDelta: true,
		Delta:         30,
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Digest.DeltaTrajectory) == 0 {
		t.Fatal("adaptive scenario recorded no delta trajectory")
	}
	if a.Digest.JSON() != b.Digest.JSON() {
		t.Fatalf("adaptive trajectory diverged:\n%v\nvs\n%v",
			a.Digest.DeltaTrajectory, b.Digest.DeltaTrajectory)
	}
}

// TestSuiteReplays runs the shipped corpus end to end: every scenario
// must replay byte-identically and finish with safety intact. This is
// the same property the CI smoke job checks via swapbench -scenario.
func TestSuiteReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite replay")
	}
	for _, sc := range Suite(0) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest.JSON() != b.Digest.JSON() {
				t.Fatalf("suite scenario %q diverged across replays", sc.Name)
			}
			if len(a.Violations) != 0 {
				t.Fatalf("violations: %+v", a.Violations)
			}
		})
	}
}

// TestValidation rejects malformed scenarios up front.
func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"no offers", Scenario{Rate: 100}, "Offers"},
		{"no rate", Scenario{Offers: 10}, "Rate"},
		{"bad strategy", Scenario{Offers: 10, Rate: 100,
			Deviations: []Deviation{{Strategy: "bribe-the-miners", Rate: 0.1}}}, "unknown strategy"},
		{"bad rate", Scenario{Offers: 10, Rate: 100,
			Deviations: []Deviation{{Strategy: "crash", Rate: 1.5}}}, "outside [0,1]"},
		{"rates sum past 1", Scenario{Offers: 10, Rate: 100,
			Deviations: []Deviation{{Strategy: "crash", Rate: 0.6}, {Strategy: "no-claim", Rate: 0.6}}}, "sum"},
		{"bad profile", Scenario{Offers: 10, Rate: 100, Profile: "fibonacci"}, "unknown profile"},
	}
	for _, tc := range cases {
		if _, err := Run(tc.sc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestStrategiesListed pins the taxonomy surface: every documented
// strategy resolves, and the registry stays sorted and stable.
func TestStrategiesListed(t *testing.T) {
	want := []string{
		"corrupt-publish", "crash", "eager-publish", "no-claim",
		"premature-reveal", "silent-leader", "stall-past-timelock", "withhold-publish",
	}
	got := Strategies()
	if len(got) != len(want) {
		t.Fatalf("strategies %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strategies %v, want %v", got, want)
		}
	}
}
