package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/engine"
)

// Coalition injects a CORRELATED adversarial group: where a Deviation
// flips an independent coin per party, a coalition entry draws once per
// cleared swap and, on a hit, converts a contiguous block of the swap's
// parties into one coordinated cohort. That correlation is the point —
// Herlihy's adversary is "any coalition", and k colluding parties can do
// strictly more than k independent deviants (shared secrets travel
// coalition-only signature paths; see adversary.Coalition).
//
// Strategies:
//
//	cartel      secret-sharing cartel (adversary.Coalition): members
//	            share leader secrets off-chain, unlock entering arcs
//	            early, and randomly withhold action categories (Drop);
//	            Halt additionally crashes members at a random phase.
//	            Withheld claims/refunds can strand escrow.
//	punishment  Lemma 4.11 cartel (adversary.Punishment): members escrow
//	            nothing at all — no publish, no unlock — forcing every
//	            conforming counterparty to wait out its timelocks and
//	            refund. Individually rational and non-stranding; the
//	            canonical griefing attack the economics layer prices.
//	flood       intake flooding: the coalition is not drawn per swap but
//	            materialized in the offer stream itself — Rate decides
//	            the flood fraction of total offered load, generated from
//	            a small reused identity pool (engine.FloodOffer) riding
//	            on top of the organic schedule. Pair with FairShed to
//	            audit that shedding lands on the flooders.
type Coalition struct {
	// Strategy is "cartel", "punishment", or "flood".
	Strategy string `json:"strategy"`
	// Rate: for cartel/punishment, the per-swap probability that the
	// coalition forms in that swap (cumulative across entries, like
	// Deviation rates). For flood, the fraction of total offered load
	// that is coalition traffic, in (0, 1) — 0.75 means three flood
	// offers ride on every organic one.
	Rate float64 `json:"rate"`
	// Size: for cartel/punishment, the coalition's party count per swap
	// (clamped to [2, n-1]; 0 means about half the ring). For flood, the
	// flooder identity-pool size in ring groups (0 means 2).
	Size int `json:"size,omitempty"`
	// Drop is the cartel's per-action-category withholding probability
	// (0 means 0.2; ignored by other strategies).
	Drop float64 `json:"drop,omitempty"`
	// Halt is the per-member probability of a crash fault on top of the
	// strategy (cartel only).
	Halt float64 `json:"halt,omitempty"`
}

// coalitionStrategies names the valid Coalition.Strategy values. Kept
// separate from the per-party strategy taxonomy: coalitions are drawn
// per swap as a correlated group, so they live in their own DSL field.
var coalitionStrategies = map[string]bool{
	"cartel":     true,
	"punishment": true,
	"flood":      true,
}

// validateCoalitions checks the scenario's coalition entries.
func (sc Scenario) validateCoalitions() error {
	total, floods := 0.0, 0
	for _, c := range sc.Coalitions {
		if !coalitionStrategies[c.Strategy] {
			return fmt.Errorf("scenario %q: unknown coalition strategy %q (want cartel, punishment, or flood)",
				sc.Name, c.Strategy)
		}
		if c.Rate < 0 || c.Rate > 1 {
			return fmt.Errorf("scenario %q: coalition %s rate %v outside [0,1]",
				sc.Name, c.Strategy, c.Rate)
		}
		if c.Drop < 0 || c.Drop > 1 || c.Halt < 0 || c.Halt > 1 {
			return fmt.Errorf("scenario %q: coalition %s Drop/Halt outside [0,1]", sc.Name, c.Strategy)
		}
		if c.Strategy == "flood" {
			floods++
			if c.Rate <= 0 || c.Rate >= 1 {
				return fmt.Errorf("scenario %q: flood coalition rate %v outside (0,1)", sc.Name, c.Rate)
			}
			continue
		}
		total += c.Rate
	}
	if total > 1 {
		return fmt.Errorf("scenario %q: coalition rates sum to %v > 1", sc.Name, total)
	}
	if floods > 1 {
		return fmt.Errorf("scenario %q: at most one flood coalition", sc.Name)
	}
	return nil
}

// floodCoalition returns the scenario's flood entry, if any.
func (sc Scenario) floodCoalition() (Coalition, bool) {
	for _, c := range sc.Coalitions {
		if c.Strategy == "flood" {
			return c, true
		}
	}
	return Coalition{}, false
}

// floodFactor converts a flood fraction r of total offered load into the
// generator's whole-ring multiplier: factor extra flood rings per
// organic ring means a flood fraction of factor/(1+factor), so factor =
// round(r/(1−r)), at least 1.
func floodFactor(rate float64) int {
	f := int(math.Round(rate / (1 - rate)))
	if f < 1 {
		f = 1
	}
	return f
}

// swapCoalitions is the per-swap coalition ladder: the cartel/punishment
// entries, in declaration order (flood lives in the offer stream, not
// the draw).
func (sc Scenario) swapCoalitions() []Coalition {
	out := make([]Coalition, 0, len(sc.Coalitions))
	for _, c := range sc.Coalitions {
		if c.Strategy != "flood" {
			out = append(out, c)
		}
	}
	return out
}

// applyCoalition materializes one coalition inside one cleared swap: a
// contiguous block of k vertices starting at a seeded position (ring
// adjacency is what gives a cartel its coalition-only signature paths),
// behaviors from the matching adversary constructor, every member tagged
// "coalition-<strategy>". Halt wraps members in the scenario's lazy
// crash shim — the halt tick depends on the spec's start, pinned only at
// run setup, so adversary.Coalition's own eager HaltProb cannot be used
// here (it would read a zero start and halt everyone at tick ~0).
func applyCoalition(c Coalition, setup *core.Setup, rng *rand.Rand, seed int64,
	sb *engine.SwapBehaviors, claimed map[digraph.Vertex]bool) {

	n := setup.Spec.D.NumVertices()
	if n < 3 {
		return // no room for both a coalition (≥2) and a conforming victim
	}
	k := c.Size
	if k <= 0 {
		k = (n + 1) / 2
	}
	if k < 2 {
		k = 2
	}
	if k > n-1 {
		k = n - 1
	}
	start := rng.Intn(n)
	members := make([]digraph.Vertex, k)
	for i := range members {
		members[i] = digraph.Vertex((start + i) % n)
	}

	var behaviors map[digraph.Vertex]core.Behavior
	switch c.Strategy {
	case "punishment":
		behaviors = adversary.Punishment(members)
	case "cartel":
		drop := c.Drop
		if drop <= 0 {
			drop = 0.2
		}
		behaviors = adversary.Coalition(adversary.CoalitionConfig{
			Setup:    setup,
			Members:  members,
			Seed:     seed ^ 0x7c0a11,
			DropProb: drop,
			HaltProb: 0, // see doc comment: halts are applied lazily below
		})
	}

	if sb.Behaviors == nil {
		sb.Behaviors = make(map[digraph.Vertex]core.Behavior)
		sb.Deviants = make(map[digraph.Vertex]string)
	}
	// adversary constructors sort their member sets, so iterating the
	// members slice (already contiguous from start) keeps the rng draw
	// order — and therefore the halt assignment — replay-stable.
	for _, v := range members {
		b := behaviors[v]
		if c.Halt > 0 && rng.Float64() < c.Halt {
			b = &crashBehavior{phase: rng.Intn(3), base: b}
		}
		sb.Behaviors[v] = b
		sb.Deviants[v] = "coalition-" + c.Strategy
		claimed[v] = true
	}
}

// tagFloodParties marks a swap's flooder-identity vertices as
// "coalition-flood" deviants. Flooders run the conforming protocol —
// their attack is volume, not protocol deviation — but the tag routes
// their capital into the DeviantLock side of the economics split and
// keeps Theorem 4.9's conforming-party quantifier honest: a flooded
// run's safety check still covers exactly the organic parties.
func tagFloodParties(setup *core.Setup, sb *engine.SwapBehaviors, claimed map[digraph.Vertex]bool) {
	spec := setup.Spec
	for v := 0; v < spec.D.NumVertices(); v++ {
		vx := digraph.Vertex(v)
		if claimed[vx] {
			continue
		}
		if strings.HasPrefix(string(spec.PartyOf(vx)), engine.FloodPartyPrefix) {
			if sb.Deviants == nil {
				sb.Behaviors = make(map[digraph.Vertex]core.Behavior)
				sb.Deviants = make(map[digraph.Vertex]string)
			}
			sb.Deviants[vx] = "coalition-flood"
			claimed[vx] = true
		}
	}
}
