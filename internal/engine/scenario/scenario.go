// Package scenario is the deterministic scenario harness for the
// clearing engine: a small DSL that composes an open-loop arrival
// profile (internal/engine/loadgen) with per-party deviation strategies
// (internal/adversary) injected at configurable rates, runs the whole
// thing on the engine's deterministic scheduler mode, and checks the
// paper's safety invariant afterwards.
//
// Herlihy's Theorem 4.9 quantifies over conforming parties under
// arbitrary deviation, but a load harness that only ever drives
// fully-conforming swarms witnesses none of it. A Scenario turns "40%
// Poisson load with 10% silent leaders and 5% crash faults" into a
// one-struct experiment whose every run asserts: no conforming party
// ends Underwater, and the ledgers conserve every minted asset.
//
// Replayability is the second half of the contract. A scenario run is a
// pure function of its seed: the engine runs in Deterministic mode
// (serialized virtual scheduler, clearing rounds at fixed ticks, swap
// setup pinned inside the clearing tick, synchronous deliveries), so
// the same Scenario value produces a byte-identical Digest — intake
// ticks, clearing rounds, Δ trajectory, settle order, outcome counts —
// on every replay, on any machine. Every future performance PR can
// therefore be checked against a seeded adversarial corpus instead of a
// clean-room load.
package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/durable"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/engine/shard"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// clearing is the engine surface a scenario run drives: the single
// engine and the sharded engine both satisfy it, so the normal path and
// both lives of a crash run are written once.
type clearing interface {
	loadgen.DriveTarget
	Start() error
	Orders() []engine.OrderSnapshot
	ClearRounds() int
	Kill() vtime.Ticks
}

// Deviation injects one strategy from the taxonomy (see Strategies) at
// a per-party rate: each party of each cleared swap independently draws
// against the cumulative rates of the scenario's deviation list.
type Deviation struct {
	// Strategy names a registered deviation (Strategies lists them).
	Strategy string `json:"strategy"`
	// Rate is the per-party injection probability in [0, 1].
	Rate float64 `json:"rate"`
}

// Scenario is one seed-replayable experiment: an arrival profile, a
// deviation mix, and the engine knobs that matter to the schedule.
type Scenario struct {
	// Name labels the scenario in digests and reports.
	Name string `json:"name"`
	// Seed drives everything: arrivals, ring sizes, swap keys, deviation
	// draws. Same Scenario value ⇒ byte-identical Digest.
	Seed int64 `json:"seed"`

	// Offers is the approximate open-loop offer budget (rings are always
	// completed; see loadgen.Config.Offers).
	Offers int `json:"offers"`
	// Rate is the average offered load in offers per second of scheduler
	// time.
	Rate float64 `json:"rate"`
	// Profile is the arrival process: "constant", "poisson", "burst[:n]",
	// or "ramp[:from:to]" (default "poisson").
	Profile string `json:"profile"`
	// RingMin and RingMax bound generated barter-ring sizes (default 3/3).
	RingMin int `json:"ring_min,omitempty"`
	RingMax int `json:"ring_max,omitempty"`
	// PartyPool reuses a fixed pool of ring-group identities (0 mints
	// fresh parties per ring).
	PartyPool int `json:"party_pool,omitempty"`
	// MaxPending is the bounded-intake shed threshold (0 = loadgen
	// default, negative disables).
	MaxPending int `json:"max_pending,omitempty"`

	// Workers sizes the engine's executor pool (default 8).
	Workers int `json:"workers,omitempty"`
	// Parallel runs the deterministic schedule on the striped-parallel
	// dispatcher (engine.Config.Parallel) instead of the serialized one.
	// It is an execution knob, not a schedule knob: the digest must be
	// byte-identical either way, which is exactly what the determinism
	// suite asserts — so it is deliberately excluded from the scenario's
	// JSON identity.
	Parallel bool `json:"-"`
	// Delta is the per-swap Δ in ticks (default core.DefaultDelta).
	Delta vtime.Duration `json:"delta,omitempty"`
	// ClearEvery is the clearing cadence in ticks (default 2).
	ClearEvery vtime.Duration `json:"clear_every,omitempty"`
	// AdaptiveDelta enables the observed-latency Δ controller; its
	// decision trajectory becomes part of the digest.
	AdaptiveDelta bool `json:"adaptive_delta,omitempty"`

	// Deviations is the adversarial mix injected into the stream.
	Deviations []Deviation `json:"deviations,omitempty"`

	// Coalitions injects correlated adversarial groups: one draw per
	// cleared swap converts a contiguous block of its parties into a
	// coordinated cohort (cartel, punishment), or floods the intake from
	// a reused identity pool (flood). See the Coalition type.
	Coalitions []Coalition `json:"coalitions,omitempty"`
	// FairShed switches bounded intake from the global MaxPending rule to
	// per-party fair shedding (loadgen.Config.FairShed): at the
	// threshold, only parties at or past their share of the book shed —
	// the policy that keeps a flooding coalition's shed rate above the
	// organic parties'.
	FairShed bool `json:"fair_shed,omitempty"`

	// ConfirmDepth, when positive, runs every asset chain under a
	// confirmation-depth commitment model (engine.CommitmentConfig): a
	// record is final only ConfirmDepth ticks after it lands, and the
	// timelock ladder stretches to match. ReorgRate on top reverts each
	// record with that seeded probability before it finalizes. Both are
	// part of the scenario's identity. The "reorg@K" pseudo-strategy in
	// Deviations is sugar for the same knobs: its K is the depth, its
	// Rate the reorg rate.
	ConfirmDepth vtime.Duration `json:"confirm_depth,omitempty"`
	ReorgRate    float64        `json:"reorg_rate,omitempty"`

	// Shards, when positive, runs the scenario sharded: load generation
	// places rings into per-shard chain pools (shard.Map.Pools) and
	// execution runs a ShardedEngine of this many shards plus a
	// cross-shard coordinator. It is part of the scenario's identity —
	// generation depends on it — but the EXECUTION shard count can be
	// overridden with ExecShards, and for a CrossRatio-0 stream the
	// digest must be byte-identical whatever the execution shard count
	// (the property CI's sharded replay job diffs).
	Shards int `json:"shards,omitempty"`
	// CrossRatio is the fraction of generated rings that span two shards'
	// chain pools — the cross-shard escalation workload (0 keeps every
	// ring shard-local).
	CrossRatio float64 `json:"cross_ratio,omitempty"`
	// ExecShards overrides the execution shard count (generation keeps
	// using Shards). Like Parallel it is an execution knob excluded from
	// the scenario's JSON identity: the digest must not depend on it.
	ExecShards int `json:"-"`

	// CrashTick, when positive, turns the run into a crash-recovery
	// experiment: the engine runs with a durable write-ahead log, is
	// killed at this virtual tick (Engine.Kill — intake and clearing
	// stop, nothing drains), and a second engine is recovered from the
	// log with the kill tick as the replay cut. The digest then covers
	// the whole two-life run — recovered orders, resumed swaps, refunds —
	// and must still be a pure function of the seed.
	CrashTick vtime.Ticks `json:"crash_tick,omitempty"`

	// MaxClearRounds and MaxSettleTick are replay budgets pinned per
	// scenario: the run must finish within this many live clearing rounds
	// and settle its last order by this tick. Exceeding either is a
	// Violation (and therefore a digest change) — a scheduling regression
	// that slows clearing or stretches settles fails the suite even when
	// every safety property still holds. Zero disables the check.
	MaxClearRounds int         `json:"max_clear_rounds,omitempty"`
	MaxSettleTick  vtime.Ticks `json:"max_settle_tick,omitempty"`
	// MaxGriefingCost pins the run's griefing-cost ceiling in token-ticks
	// (metrics.EconomicsReport): a scheduling or timelock regression that
	// makes coalitions strictly more expensive for conforming parties is
	// a Violation even when safety holds. Zero disables the check.
	MaxGriefingCost uint64 `json:"max_griefing_cost,omitempty"`
}

// Violation is one failed safety check.
type Violation struct {
	// Order is the violating order (0 for run-level violations).
	Order engine.OrderID `json:"order,omitempty"`
	Party string         `json:"party,omitempty"`
	Swap  string         `json:"swap,omitempty"`
	// Detail says what went wrong.
	Detail string `json:"detail"`
}

// Result is a finished scenario run.
type Result struct {
	// Digest is the canonical replay-stable summary; two runs of the same
	// Scenario must produce byte-identical Digest.JSON().
	Digest Digest
	// Report is the engine's full service-level metrics (wall-clock
	// fields included — not replay-stable, excluded from the digest).
	Report metrics.Throughput
	// Load is the open-loop generator's intake accounting.
	Load loadgen.Stats
	// Violations lists every failed safety check (empty on a good run).
	Violations []Violation
	// Recovery reports the kill-and-recover step of a CrashTick run
	// (nil otherwise). Wall-clock fields are not replay-stable; the
	// digest carries only its tick/count facts.
	Recovery *durable.Recovery
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Name == "" {
		sc.Name = "scenario"
	}
	if sc.Profile == "" {
		sc.Profile = "poisson"
	}
	if sc.Workers <= 0 {
		sc.Workers = 8
	}
	if sc.Delta <= 0 {
		sc.Delta = core.DefaultDelta
	}
	if sc.ClearEvery <= 0 {
		sc.ClearEvery = 2
	}
	return sc
}

// validate checks the scenario's shape and strategy names.
func (sc Scenario) validate() error {
	if sc.Offers <= 0 {
		return fmt.Errorf("scenario %q: Offers must be positive", sc.Name)
	}
	if sc.Rate <= 0 {
		return fmt.Errorf("scenario %q: Rate must be positive", sc.Name)
	}
	total := 0.0
	for _, d := range sc.Deviations {
		if strings.HasPrefix(d.Strategy, "reorg@") {
			// The reorg pseudo-strategy deviates the CHAIN, not a party:
			// its rate is per-record, so it stays out of the per-party
			// probability ladder below.
			if k, ok := parseReorgStrategy(d.Strategy); !ok || k < 2 {
				return fmt.Errorf("scenario %q: bad strategy %q (want reorg@K with depth K ≥ 2)",
					sc.Name, d.Strategy)
			}
			if d.Rate < 0 || d.Rate > 1 {
				return fmt.Errorf("scenario %q: strategy %s rate %v outside [0,1]",
					sc.Name, d.Strategy, d.Rate)
			}
			continue
		}
		if _, ok := strategies[d.Strategy]; !ok {
			return fmt.Errorf("scenario %q: unknown strategy %q (want one of %v)",
				sc.Name, d.Strategy, Strategies())
		}
		if d.Rate < 0 || d.Rate > 1 {
			return fmt.Errorf("scenario %q: strategy %s rate %v outside [0,1]",
				sc.Name, d.Strategy, d.Rate)
		}
		total += d.Rate
	}
	if total > 1 {
		return fmt.Errorf("scenario %q: deviation rates sum to %v > 1", sc.Name, total)
	}
	if err := sc.validateCoalitions(); err != nil {
		return err
	}
	if sc.ReorgRate < 0 || sc.ReorgRate > 1 {
		return fmt.Errorf("scenario %q: ReorgRate %v outside [0,1]", sc.Name, sc.ReorgRate)
	}
	if sc.ReorgRate > 0 && sc.commitment().ConfirmDepth < 2 {
		return fmt.Errorf("scenario %q: ReorgRate needs ConfirmDepth ≥ 2", sc.Name)
	}
	return nil
}

// parseReorgStrategy recognizes the "reorg@K" pseudo-strategy and
// extracts its confirmation depth.
func parseReorgStrategy(name string) (vtime.Duration, bool) {
	rest, ok := strings.CutPrefix(name, "reorg@")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k <= 0 {
		return 0, false
	}
	return vtime.Duration(k), true
}

// commitment folds the scenario's chain-realism knobs — the explicit
// ConfirmDepth/ReorgRate fields, overridden by a "reorg@K" deviation
// entry — into the engine's commitment configuration.
func (sc Scenario) commitment() engine.CommitmentConfig {
	cc := engine.CommitmentConfig{
		ConfirmDepth: sc.ConfirmDepth,
		ReorgRate:    sc.ReorgRate,
		Seed:         sc.Seed,
	}
	for _, d := range sc.Deviations {
		if k, ok := parseReorgStrategy(d.Strategy); ok {
			cc.ConfirmDepth = k
			cc.ReorgRate = d.Rate
		}
	}
	return cc
}

// stranding reports whether the mix contains a strategy whose deviants
// may legitimately leave escrow unclaimed forever.
func (sc Scenario) strandingMix() bool {
	// A reorg cascade can push a claim's re-apply past its timelock and
	// drop it — the mempool loses the transaction for good — stranding
	// the escrow exactly the way a no-claim deviant does, so reorg runs
	// are audited for ledger integrity rather than strict conservation.
	if sc.commitment().ReorgRate > 0 {
		return true
	}
	for _, d := range sc.Deviations {
		if d.Rate > 0 && stranding[d.Strategy] {
			return true
		}
	}
	for _, c := range sc.Coalitions {
		// A cartel withholds random action categories — claims and refunds
		// included — and may crash mid-swap, so its escrow can strand.
		// Punishment never escrows and flooders play conforming protocol.
		if c.Strategy == "cartel" && c.Rate > 0 {
			return true
		}
	}
	return false
}

// factory compiles the deviation mix into the engine's behavior hook: a
// pure function of (setup, seed) — every draw comes from a rand seeded
// by the swap's own seed, never from shared state — which is what lets
// the engine call it on the clearing path and still replay
// byte-identically.
//
// Coalitions are drawn first and as a GROUP: one uniform draw per swap
// against the coalition ladder decides whether the whole cohort forms,
// before any party flips its independent deviation coin. Coalition
// members (and flooder identities) are then excluded from the
// independent ladder — a party belongs to at most one adversary.
func (sc Scenario) factory() engine.BehaviorFactory {
	devs := make([]Deviation, 0, len(sc.Deviations))
	for _, d := range sc.Deviations {
		if _, ok := parseReorgStrategy(d.Strategy); ok {
			// Chain-level, not party-level: handled by commitment().
			continue
		}
		devs = append(devs, d)
	}
	cos := sc.swapCoalitions()
	_, hasFlood := sc.floodCoalition()
	if len(devs) == 0 && len(cos) == 0 && !hasFlood {
		return nil
	}
	return func(setup *core.Setup, seed int64) engine.SwapBehaviors {
		rng := rand.New(rand.NewSource(seed ^ 0x5ce9a610))
		spec := setup.Spec
		var sb engine.SwapBehaviors
		claimed := make(map[digraph.Vertex]bool)
		if hasFlood {
			tagFloodParties(setup, &sb, claimed)
		}
		// Cartel/punishment draws cover ORGANIC swaps only: a flood ring
		// is already wholly coalition traffic, and an in-swap coalition
		// among flooders would grief nobody (griefing cost is conforming
		// lock, of which an all-coalition swap has none).
		if len(cos) > 0 && len(claimed) == 0 {
			u := rng.Float64()
			acc := 0.0
			for _, c := range cos {
				acc += c.Rate
				if u >= acc {
					continue
				}
				applyCoalition(c, setup, rng, seed, &sb, claimed)
				break
			}
		}
		for v := 0; v < spec.D.NumVertices(); v++ {
			if claimed[digraph.Vertex(v)] {
				continue
			}
			u := rng.Float64()
			acc := 0.0
			for _, d := range devs {
				acc += d.Rate
				if u >= acc {
					continue
				}
				if b, ok := strategies[d.Strategy](rng, spec, digraph.Vertex(v)); ok {
					if sb.Behaviors == nil {
						sb.Behaviors = make(map[digraph.Vertex]core.Behavior)
						sb.Deviants = make(map[digraph.Vertex]string)
					}
					sb.Behaviors[digraph.Vertex(v)] = b
					sb.Deviants[digraph.Vertex(v)] = d.Strategy
				}
				break
			}
		}
		return sb
	}
}

// engineConfig is the scenario's engine shape — shared by the normal
// path and both lives of a crash run, so a recovered engine replays
// under exactly the knobs the original ran with.
func (sc Scenario) engineConfig() engine.Config {
	cfg := engine.Config{
		Workers:       sc.Workers,
		Tick:          time.Millisecond,
		Delta:         sc.Delta,
		ClearEvery:    sc.ClearEvery,
		AdaptiveDelta: sc.AdaptiveDelta,
		Seed:          sc.Seed,
		Deterministic: true,
		Parallel:      sc.Parallel,
		Behaviors:     sc.factory(),
		Commitment:    sc.commitment(),
		// Deterministic mode forgoes clear-ahead backpressure, so the job
		// queue must hold every swap the book can produce.
		QueueDepth: sc.Offers + 64,
	}
	if sc.Shards > 0 {
		// Neutralize the virtual live-run gate: each engine's gate reads
		// its OWN live count, so a binding gate would fire at different
		// rounds under different shard counts. A ceiling above the whole
		// book makes the gate a no-op in every execution shape, keeping
		// the digest a function of the stream alone.
		cfg.MaxLive = sc.Offers + 64
	}
	return cfg
}

// execShards is the execution shard count: the ExecShards override, else
// the scenario's own Shards.
func (sc Scenario) execShards() int {
	if sc.ExecShards > 0 {
		return sc.ExecShards
	}
	return sc.Shards
}

// newEngine builds the scenario's execution engine — sharded when the
// scenario says so — with the given durable store (nil for in-memory).
func (sc Scenario) newEngine(store engine.Store) clearing {
	cfg := sc.engineConfig()
	cfg.Store = store
	if n := sc.execShards(); n > 0 {
		return shard.New(shard.Config{Shards: n, Engine: cfg})
	}
	return engine.New(cfg)
}

// recoverEngine rebuilds the scenario's engine from a durable store
// (the second life of a crash run), in the same shape newEngine built.
func (sc Scenario) recoverEngine(dir string, cut vtime.Ticks) (clearing, *durable.Recovery, error) {
	opts := durable.RecoverOptions{Dir: dir, CutTick: cut}
	if n := sc.execShards(); n > 0 {
		return shard.Recover(shard.Config{Shards: n, Engine: sc.engineConfig()}, opts)
	}
	return durable.Recover(sc.engineConfig(), opts)
}

// loadConfig is the scenario's open-loop generator shape.
func (sc Scenario) loadConfig(process loadgen.Process) loadgen.Config {
	cfg := loadgen.Config{
		Offers:     sc.Offers,
		RingMin:    sc.RingMin,
		RingMax:    sc.RingMax,
		Rate:       sc.Rate,
		Process:    process,
		PartyPool:  sc.PartyPool,
		MaxPending: sc.MaxPending,
		Seed:       sc.Seed,
		FairShed:   sc.FairShed,
		// Generation placement follows the scenario's OWN shard count,
		// never the ExecShards override: the stream is part of the
		// scenario's identity, the execution shape is not.
		Shards:     sc.Shards,
		CrossRatio: sc.CrossRatio,
	}
	if fc, ok := sc.floodCoalition(); ok {
		factor := floodFactor(fc.Rate)
		cfg.FloodFactor = factor
		cfg.FloodParties = fc.Size
		// Flood rings ride ON TOP of the organic budget, so the offered
		// rate scales with them: the organic inter-arrival pace — the
		// schedule the scenario's non-flood twin would run — is preserved
		// while the intake sees (1+factor)× the traffic.
		cfg.Rate *= float64(1 + factor)
	}
	return cfg
}

// Run executes the scenario once and returns its result. The error is
// for harness failures (bad scenario, engine refusing to run); safety
// findings go into Result.Violations and the digest, so callers can
// diff replays even when the invariant broke.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	process, err := loadgen.ParseProfile(sc.Profile)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	if sc.CrashTick > 0 {
		return runCrash(sc, process)
	}

	e := sc.newEngine(nil)
	if err := e.Start(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	stats, err := loadgen.Run(ctx, e, sc.loadConfig(process))
	if err != nil {
		e.Stop(ctx)
		return nil, fmt.Errorf("scenario %q: load: %w", sc.Name, err)
	}
	if err := e.Stop(ctx); err != nil {
		return nil, fmt.Errorf("scenario %q: drain: %w", sc.Name, err)
	}

	orders := e.Orders()
	res := &Result{
		Report:     e.Report(),
		Load:       stats,
		Violations: checkSafety(orders),
	}

	// Conservation audit: the full invariant (no stranded escrow) when
	// every deviant eventually walks away from its contracts, ledger
	// integrity plus minted-asset conservation when the mix can strand
	// escrow by design.
	conservation := "ok"
	audit := e.VerifyConservation
	if sc.strandingMix() {
		audit = e.VerifyLedgerIntegrity
	}
	if err := audit(); err != nil {
		conservation = err.Error()
		res.Violations = append(res.Violations, Violation{Detail: "conservation: " + err.Error()})
	}

	rounds := e.ClearRounds()
	res.Violations = append(res.Violations, sc.budgetViolations(rounds, orders, res.Report)...)
	res.Violations = append(res.Violations, sc.fairShedViolations(stats)...)
	res.Digest = buildDigest(sc, stats, res.Report, orders, res.Violations, conservation, rounds, nil)
	return res, nil
}

// budgetViolations applies the scenario's pinned replay budgets.
func (sc Scenario) budgetViolations(rounds int, orders []engine.OrderSnapshot, rep metrics.Throughput) []Violation {
	var out []Violation
	if sc.MaxClearRounds > 0 && rounds > sc.MaxClearRounds {
		out = append(out, Violation{Detail: fmt.Sprintf(
			"budget: %d live clearing rounds > pinned max %d", rounds, sc.MaxClearRounds)})
	}
	if last := lastSettleTick(orders); sc.MaxSettleTick > 0 && last > sc.MaxSettleTick {
		out = append(out, Violation{Detail: fmt.Sprintf(
			"budget: last settle at tick %d > pinned max %d", last, sc.MaxSettleTick)})
	}
	if sc.MaxGriefingCost > 0 {
		var cost uint64
		if e := rep.Economics; e != nil {
			cost = e.GriefingCostTokenTicks
		}
		if cost > sc.MaxGriefingCost {
			out = append(out, Violation{Detail: fmt.Sprintf(
				"budget: griefing cost %d token-ticks > pinned max %d", cost, sc.MaxGriefingCost)})
		}
	}
	return out
}

// fairShedViolations audits the fair-shedding contract on a flooded run:
// with per-party fair shedding on and a flooding coalition in the
// stream, the organic (conforming) parties' shed rate must stay strictly
// below the coalition's — the policy exists precisely so a flood starves
// itself, not its victims. No-op unless both knobs are present and the
// run actually shed.
func (sc Scenario) fairShedViolations(stats loadgen.Stats) []Violation {
	if !sc.FairShed {
		return nil
	}
	if _, ok := sc.floodCoalition(); !ok {
		return nil
	}
	var org, flood loadgen.PartyStats
	for party, ps := range stats.Parties {
		if strings.HasPrefix(party, engine.FloodPartyPrefix) {
			flood.Offered += ps.Offered
			flood.Shed += ps.Shed
		} else {
			org.Offered += ps.Offered
			org.Shed += ps.Shed
		}
	}
	if org.Shed+flood.Shed == 0 || org.Offered == 0 || flood.Offered == 0 {
		return nil
	}
	orgRate := float64(org.Shed) / float64(org.Offered)
	floodRate := float64(flood.Shed) / float64(flood.Offered)
	if orgRate >= floodRate {
		return []Violation{{Detail: fmt.Sprintf(
			"fair-shed: conforming shed rate %.4f (%d/%d) not below coalition's %.4f (%d/%d)",
			orgRate, org.Shed, org.Offered, floodRate, flood.Shed, flood.Offered)}}
	}
	return nil
}

// lastSettleTick is the latest settle tick across the run's orders.
func lastSettleTick(orders []engine.OrderSnapshot) vtime.Ticks {
	var last vtime.Ticks
	for _, o := range orders {
		if o.Status == engine.StatusSettled && o.SettledTick > last {
			last = o.SettledTick
		}
	}
	return last
}

// checkSafety applies the paper's uniformity invariant to every settled
// order: a party that ran the conforming protocol may end with any
// acceptable class (Deal, NoDeal, Discount, FreeRide) but never
// Underwater — only deviants can sink. Swaps that failed outright
// (execution errors) are violations too: the harness promises every
// accepted order a protocol-level outcome.
func checkSafety(orders []engine.OrderSnapshot) []Violation {
	var out []Violation
	for _, o := range orders {
		switch o.Status {
		case engine.StatusSettled:
			if o.Deviant == "" && !o.Class.Acceptable() {
				out = append(out, Violation{
					Order: o.ID, Party: o.Party, Swap: o.Swap,
					Detail: fmt.Sprintf("conforming party ended %s", o.Class),
				})
			}
		case engine.StatusRejected:
			if strings.HasPrefix(o.Reason, "execution:") {
				out = append(out, Violation{
					Order: o.ID, Party: o.Party, Swap: o.Swap,
					Detail: "swap failed outright: " + o.Reason,
				})
			}
		}
	}
	return out
}
