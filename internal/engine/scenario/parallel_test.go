package scenario

import "testing"

// withParallel flips the execution knob without touching the schedule
// identity: everything the digest hashes stays the same.
func withParallel(sc Scenario) Scenario {
	sc.Parallel = true
	return sc
}

// TestParallelDigestEquality is the striped-dispatch determinism
// contract: the same adversarial scenario run on the serialized
// deterministic scheduler and on the striped-parallel one must produce
// byte-identical digests — same intake ticks, same clearing rounds,
// same settle order, same outcome classes. Parallel dispatch is an
// execution strategy, not a schedule change; if this test fails, the
// stripe partitioning leaked cross-swap ordering. CI runs it under
// -race with -count=2.
func TestParallelDigestEquality(t *testing.T) {
	sc := mixScenario(9001)
	serial, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(withParallel(sc))
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Digest.JSON(), parallel.Digest.JSON()
	if a != b {
		t.Fatalf("serial vs parallel digests diverged:\nserial:   %s\nparallel: %s", a, b)
	}
	if serial.Digest.Hash() != parallel.Digest.Hash() {
		t.Fatal("digest hashes diverged")
	}
	// The parallel run must be a real run, not a degenerate no-op.
	if parallel.Digest.SwapsFinished == 0 || len(parallel.Violations) != 0 {
		t.Fatalf("parallel run degenerate: %+v violations %+v",
			parallel.Digest, parallel.Violations)
	}
}

// TestParallelSuiteDigestEquality runs the whole shipped corpus under
// both dispatchers and diffs each digest pair. This includes
// engine-crash@tick, whose digest spans both engine lives — the kill,
// the WAL replay, and the recovered drain all happen under striped
// dispatch too, so the two-life arc must be schedule-pure in either
// mode.
func TestParallelSuiteDigestEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite serial-vs-parallel replay")
	}
	for _, sc := range Suite(0) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			serial, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(withParallel(sc))
			if err != nil {
				t.Fatal(err)
			}
			if serial.Digest.JSON() != parallel.Digest.JSON() {
				t.Fatalf("suite scenario %q: serial vs parallel digests diverged:\nserial:   %s\nparallel: %s",
					sc.Name, serial.Digest.JSON(), parallel.Digest.JSON())
			}
			if sc.CrashTick > 0 && parallel.Digest.Crash == nil {
				t.Fatalf("crash scenario %q recorded no crash digest under parallel dispatch", sc.Name)
			}
		})
	}
}
