package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strings"

	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
)

// Digest is a scenario run's canonical, replay-stable summary. It
// contains only tick-domain and count-valued facts — nothing derived
// from wall-clock time — so two runs of the same Scenario marshal to
// byte-identical JSON. That property is load-bearing: the determinism
// regression test and the CI replay job literally diff the bytes.
type Digest struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Profile  string `json:"profile"`

	// Intake accounting, in arrivals.
	Offered   int `json:"offered"`
	Submitted int `json:"submitted"`
	Shed      int `json:"shed"`
	Refused   int `json:"refused"`
	// ShedConforming and ShedCoalition split the shed count by side —
	// flooder identities (engine.FloodPartyPrefix) versus everyone else —
	// the digest-level witness of the fair-shedding contract. Absent on
	// scenarios without a flood coalition, keeping older digests stable.
	ShedConforming int `json:"shed_conforming,omitempty"`
	ShedCoalition  int `json:"shed_coalition,omitempty"`
	// FirstTick and LastTick span the arrival schedule.
	FirstTick int64 `json:"first_tick"`
	LastTick  int64 `json:"last_tick"`

	// Swap and order outcomes.
	SwapsFinished   int            `json:"swaps_finished"`
	SwapsFailed     int            `json:"swaps_failed"`
	Outcomes        map[string]int `json:"outcomes"`
	OrdersSabotaged int            `json:"orders_sabotaged"`
	Deviations      map[string]int `json:"deviations,omitempty"`
	// Reverts counts commitment-model reorg reverts observed by swap
	// runs — a pure function of the seed like everything else here.
	// Absent (0) on Instant runs, so pre-commitment-model digests are
	// byte-identical.
	Reverts int `json:"reverts,omitempty"`

	// ClearRounds counts live clearing rounds (rounds that had work to
	// look at) across the run — both engine lives on a crash run.
	// LastSettleTick is the latest settle tick. Together they are the
	// replay budget the scenario can pin (Scenario.MaxClearRounds /
	// MaxSettleTick).
	ClearRounds    int   `json:"clear_rounds"`
	LastSettleTick int64 `json:"last_settle_tick"`

	// Economics is the run's economic summary — capital-lock integrals,
	// griefing cost, bribery-safety margin. Every field is tick-domain,
	// so it replays byte-identically like the rest of the digest; absent
	// (nil) when no capital ever locked, keeping pre-economics digests
	// stable.
	Economics *metrics.EconomicsReport `json:"economics,omitempty"`

	// Crash summarizes the kill-and-recover step of a CrashTick run.
	Crash *CrashDigest `json:"crash,omitempty"`

	// DeltaTrajectory is the adaptive-Δ controller's decision series in
	// tick units (wall timestamps stripped).
	DeltaTrajectory []DeltaStep `json:"delta_trajectory,omitempty"`

	// SettleOrder lists swap tags in settle order — by settle tick, tag
	// breaking ties among same-tick settles.
	SettleOrder []string `json:"settle_order"`
	// Orders is the per-order trace in submission order.
	Orders []OrderDigest `json:"orders"`

	// Conservation is "ok" or the audit failure; Safety is "ok" or the
	// first violation.
	Conservation string `json:"conservation"`
	Safety       string `json:"safety"`
	Violations   int    `json:"violations"`
}

// CrashDigest is the replay-stable face of a crash run's recovery:
// the kill tick, what the WAL replay folded, and how the in-flight
// swaps were split between resume and refund. Wall-clock recovery cost
// lives in Result.Recovery, not here.
type CrashDigest struct {
	Tick     int64 `json:"tick"`
	Replayed int   `json:"events_replayed"`
	Resumed  int   `json:"orders_resumed"`
	Refunded int   `json:"orders_refunded"`
	// Reverts is the pre-crash reorg revert count folded from the WAL
	// (absent on Instant runs).
	Reverts int `json:"reverts,omitempty"`
}

// DeltaStep is one adaptive-Δ decision, tick-domain fields only.
type DeltaStep struct {
	Round          int     `json:"round"`
	DeltaTicks     int     `json:"delta_ticks"`
	WindowEWMA     float64 `json:"ewma_ticks"`
	WindowMaxTicks int     `json:"window_max_ticks"`
	WindowSamples  int     `json:"window_samples"`
}

// OrderDigest is one order's replay-stable trace entry.
type OrderDigest struct {
	ID         uint64 `json:"id"`
	Party      string `json:"party"`
	Status     string `json:"status"`
	Class      string `json:"class,omitempty"`
	Swap       string `json:"swap,omitempty"`
	Deviant    string `json:"deviant,omitempty"`
	SubmitTick int64  `json:"submit_tick"`
	SettleTick int64  `json:"settle_tick,omitempty"`
	// Lock is the party's capital-lock integral in this order's swap
	// (token-ticks; engine.OrderSnapshot.LockTickValue). Zero — and
	// absent — for unsettled orders and WAL-restored ones.
	Lock uint64 `json:"lock,omitempty"`
}

// JSON renders the digest as canonical JSON (encoding/json sorts map
// keys, struct fields marshal in declaration order).
func (d Digest) JSON() string {
	b, _ := json.Marshal(d)
	return string(b)
}

// Hash is the digest's sha256 in hex — the one-line replay fingerprint.
func (d Digest) Hash() string {
	sum := sha256.Sum256([]byte(d.JSON()))
	return hex.EncodeToString(sum[:])
}

// buildDigest assembles the canonical summary from the run's parts.
func buildDigest(sc Scenario, load loadgen.Stats, rep metrics.Throughput,
	orders []engine.OrderSnapshot, violations []Violation, conservation string,
	clearRounds int, crash *CrashDigest) Digest {

	d := Digest{
		Scenario:        sc.Name,
		Seed:            sc.Seed,
		Profile:         sc.Profile,
		Offered:         load.Offered,
		Submitted:       load.Submitted,
		Shed:            load.Shed,
		Refused:         load.Refused,
		FirstTick:       int64(load.FirstTick),
		LastTick:        int64(load.LastTick),
		SwapsFinished:   rep.SwapsFinished,
		SwapsFailed:     rep.SwapsFailed,
		Outcomes:        rep.Outcomes,
		OrdersSabotaged: rep.OrdersSabotaged,
		Deviations:      rep.Deviations,
		Reverts:         rep.Reverts,
		ClearRounds:     clearRounds,
		LastSettleTick:  int64(lastSettleTick(orders)),
		Economics:       rep.Economics,
		Crash:           crash,
		Conservation:    conservation,
		Safety:          "ok",
		Violations:      len(violations),
	}
	if _, ok := sc.floodCoalition(); ok {
		for party, ps := range load.Parties {
			if strings.HasPrefix(party, engine.FloodPartyPrefix) {
				d.ShedCoalition += ps.Shed
			} else {
				d.ShedConforming += ps.Shed
			}
		}
	}
	for _, p := range rep.DeltaTrajectory {
		d.DeltaTrajectory = append(d.DeltaTrajectory, DeltaStep{
			Round:          p.Round,
			DeltaTicks:     p.DeltaTicks,
			WindowEWMA:     p.WindowEWMA,
			WindowMaxTicks: p.WindowMaxTicks,
			WindowSamples:  p.WindowSamples,
		})
	}
	if len(violations) > 0 {
		d.Safety = violations[0].Detail
	}

	type settled struct {
		tick int64
		swap string
	}
	seen := make(map[string]settled)
	d.Orders = make([]OrderDigest, 0, len(orders))
	for _, o := range orders {
		od := OrderDigest{
			ID:         uint64(o.ID),
			Party:      o.Party,
			Status:     o.Status.String(),
			Swap:       o.Swap,
			Deviant:    o.Deviant,
			SubmitTick: int64(o.SubmittedTick),
		}
		if o.Status == engine.StatusSettled {
			od.Class = o.Class.String()
			od.SettleTick = int64(o.SettledTick)
			od.Lock = o.LockTickValue
			if _, ok := seen[o.Swap]; !ok {
				seen[o.Swap] = settled{tick: od.SettleTick, swap: o.Swap}
			}
		}
		d.Orders = append(d.Orders, od)
	}
	swaps := make([]settled, 0, len(seen))
	for _, s := range seen {
		swaps = append(swaps, s)
	}
	sort.Slice(swaps, func(i, j int) bool {
		if swaps[i].tick != swaps[j].tick {
			return swaps[i].tick < swaps[j].tick
		}
		return swaps[i].swap < swaps[j].swap
	})
	d.SettleOrder = make([]string, len(swaps))
	for i, s := range swaps {
		d.SettleOrder[i] = s.swap
	}
	return d
}
