package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// TestCoalitionSuiteReplays is the coalition corpus's replay contract:
// each coalition suite entry, run twice, must produce byte-identical
// digests — coalition draws, flood interleaving, fair-shed decisions,
// and the economics integrals are all pure functions of the seed. CI
// runs this under -race -count=2. Beyond replay stability each entry
// must actually witness its adversary: coalition deviants present, a
// nonzero griefing cost on the board, and (for the flood entry) every
// digest-visible shed landing on the flooders.
func TestCoalitionSuiteReplays(t *testing.T) {
	for _, name := range []string{"coalition-cartel", "coalition-punishment", "coalition-flood"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := ByName(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			first, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := first.Digest.JSON(), second.Digest.JSON(); a != b {
				t.Fatalf("coalition scenario %q diverged across replays:\nrun1: %s\nrun2: %s", name, a, b)
			}
			if len(first.Violations) != 0 {
				t.Fatalf("violations: %+v", first.Violations)
			}

			d := first.Digest
			coalition := 0
			for dev, n := range d.Deviations {
				if strings.HasPrefix(dev, "coalition-") {
					coalition += n
				}
			}
			if coalition == 0 {
				t.Fatalf("no coalition members drawn (deviations %v) — the scenario witnessed nothing", d.Deviations)
			}
			if d.Economics == nil || d.Economics.GriefingCostTokenTicks == 0 {
				t.Fatalf("griefing cost absent or zero: %+v", d.Economics)
			}
			if d.Economics.GriefedSwaps == 0 {
				t.Fatalf("griefing cost %d with zero griefed swaps", d.Economics.GriefingCostTokenTicks)
			}

			if name == "coalition-flood" {
				// The fair-shedding contract, digest-side: the run shed (the
				// book budget is tiny against 4× traffic), and the sheds hit
				// the flooder identities, not the organic parties. The
				// run-level rate comparison lives in fairShedViolations —
				// asserted empty above — this pins the digest witness.
				if d.ShedCoalition == 0 {
					t.Fatalf("flood run never shed coalition traffic: %+v", d)
				}
				if d.ShedConforming >= d.ShedCoalition {
					t.Fatalf("conforming sheds %d >= coalition sheds %d under fair shedding",
						d.ShedConforming, d.ShedCoalition)
				}
				if d.Shed != d.ShedConforming+d.ShedCoalition {
					t.Fatalf("shed split %d+%d does not cover total %d",
						d.ShedConforming, d.ShedCoalition, d.Shed)
				}
			}
		})
	}
}

// TestCoalitionCrashReplays is the two-life coalition run: the engine is
// killed mid-clearing with a punishment cartel in the stream, recovered
// from the WAL, and the whole arc — coalition draws before and after the
// kill included — must replay byte-identically. Coalition behavior
// factories are rebuilt from the scenario seed in the second life, so
// this is the regression test for "recovered engines re-draw the same
// coalitions".
func TestCoalitionCrashReplays(t *testing.T) {
	sc := Scenario{
		Name:      "coalition-crash",
		Seed:      4242,
		Offers:    48,
		Rate:      2500,
		Profile:   "poisson",
		RingMin:   3,
		RingMax:   5,
		CrashTick: 50,
		Coalitions: []Coalition{
			{Strategy: "punishment", Rate: 0.35},
		},
	}
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := first.Digest.JSON(), second.Digest.JSON(); a != b {
		t.Fatalf("coalition crash run diverged:\nrun1: %s\nrun2: %s", a, b)
	}
	if len(first.Violations) != 0 {
		t.Fatalf("violations: %+v", first.Violations)
	}

	cd := first.Digest.Crash
	if cd == nil {
		t.Fatal("crash digest missing")
	}
	if cd.Replayed == 0 {
		t.Fatal("recovery replayed no WAL events")
	}
	if cd.Resumed == 0 && cd.Refunded == 0 {
		t.Fatalf("kill at tick %d caught no in-flight swaps: %+v", cd.Tick, cd)
	}
	if n := first.Digest.Deviations["coalition-punishment"]; n == 0 {
		t.Fatalf("no punishment coalition drawn across both lives: %v", first.Digest.Deviations)
	}
	if first.Digest.Economics == nil || first.Digest.Economics.GriefingCostTokenTicks == 0 {
		t.Fatalf("two-life run priced no griefing: %+v", first.Digest.Economics)
	}
}

// TestCoalitionSafetyMatrix is Theorem 4.9 as a seeded matrix: for ANY
// coalition — both strategies, sizes 2 through 5, forming in every swap
// (rate 1.0) — no conforming party may end Underwater. Ring sizes are
// pinned one above the coalition so every swap has exactly one
// conforming victim, the hardest shape (a lone party against a cartel of
// everyone else).
func TestCoalitionSafetyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	for _, strategy := range []string{"punishment", "cartel"} {
		for _, size := range []int{2, 3, 4, 5} {
			strategy, size := strategy, size
			t.Run(fmt.Sprintf("%s-k%d", strategy, size), func(t *testing.T) {
				res, err := Run(Scenario{
					Name:    fmt.Sprintf("matrix-%s-%d", strategy, size),
					Seed:    7000 + int64(size),
					Offers:  18,
					Rate:    2000,
					Profile: "poisson",
					RingMin: size + 1,
					RingMax: size + 1,
					Coalitions: []Coalition{
						{Strategy: strategy, Rate: 1.0, Size: size},
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("conforming party harmed by %s coalition of %d: %+v",
						strategy, size, res.Violations)
				}
				d := res.Digest
				if d.Deviations["coalition-"+strategy] == 0 {
					t.Fatalf("rate-1.0 coalition never formed: %v", d.Deviations)
				}
				if d.Economics == nil || d.Economics.GriefedSwaps == 0 {
					t.Fatalf("every swap carries a coalition yet none griefed: %+v", d.Economics)
				}
				if d.Economics.WorstConformingLoss != 0 {
					t.Fatalf("Theorem 4.9 in value terms: conforming loss %d != 0",
						d.Economics.WorstConformingLoss)
				}
			})
		}
	}
}

// TestEmptyCoalitionGriefsNothing pins the other end of the griefing
// measure: a run with no adversary at all locks plenty of conforming
// capital, and its griefing cost is exactly zero — capital lockup alone
// is not griefing; only lockup forced inside deviant-carrying swaps is.
func TestEmptyCoalitionGriefsNothing(t *testing.T) {
	res, err := Run(Scenario{
		Name:    "empty-coalition",
		Seed:    31337,
		Offers:  24,
		Rate:    2000,
		Profile: "poisson",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	e := res.Digest.Economics
	if e == nil || e.ConformingLockTokenTicks == 0 {
		t.Fatalf("conforming run locked no capital: %+v", e)
	}
	if e.GriefingCostTokenTicks != 0 || e.GriefedSwaps != 0 || e.DeviantLockTokenTicks != 0 {
		t.Fatalf("empty coalition griefed: %+v", e)
	}
	if e.BriberySafetyMargin != 0 || e.BestCoalitionGain != 0 || e.WorstConformingLoss != 0 {
		t.Fatalf("empty coalition moved value: %+v", e)
	}
}

// TestCoalitionValidation rejects malformed coalition entries up front.
func TestCoalitionValidation(t *testing.T) {
	base := func(cos ...Coalition) Scenario {
		return Scenario{Offers: 10, Rate: 100, Coalitions: cos}
	}
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"unknown strategy", base(Coalition{Strategy: "bribery", Rate: 0.2}), "unknown coalition strategy"},
		{"rate above 1", base(Coalition{Strategy: "cartel", Rate: 1.5}), "outside [0,1]"},
		{"rates sum past 1", base(
			Coalition{Strategy: "cartel", Rate: 0.6},
			Coalition{Strategy: "punishment", Rate: 0.6}), "sum"},
		{"two floods", base(
			Coalition{Strategy: "flood", Rate: 0.5},
			Coalition{Strategy: "flood", Rate: 0.5}), "at most one flood"},
		{"flood rate 1", base(Coalition{Strategy: "flood", Rate: 1.0}), "outside (0,1)"},
		{"bad drop", base(Coalition{Strategy: "cartel", Rate: 0.2, Drop: 1.5}), "Drop/Halt"},
	}
	for _, tc := range cases {
		if _, err := Run(tc.sc); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
