package scenario

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/durable"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// runCrash is the CrashTick path: run the scenario's engine against a
// durable WAL, kill it at the crash tick, recover a second engine from
// the log, and let that one finish the run. The digest is built from
// the second life's books, so it witnesses the whole arc — orders
// restored, swaps resumed or refunded, recovered pending re-cleared —
// and must still replay byte-identically from the seed.
//
// Determinism hinges on the cut semantics: the first engine's in-flight
// swaps keep playing out after Kill (virtual time keeps running until
// Stop), and the store stays open through that drain, so the log holds
// exactly every event stamped at or before the cut plus a raced suffix
// stamped after it. Recover's CutTick filter drops the suffix, making
// the recovered state a pure function of the schedule no matter how the
// wall-clock race between Kill and the workers went.
func runCrash(sc Scenario, process loadgen.Process) (*Result, error) {
	dir, err := os.MkdirTemp("", "swap-crash-")
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}
	defer os.RemoveAll(dir)
	// Automatic snapshots stay off: a cut-tick replay needs the raw
	// event stream (see durable.Options.SnapshotEvery).
	store, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	a := sc.newEngine(store)
	if err := a.Start(); err != nil {
		return nil, err
	}
	// The kill is itself a scheduled event, so the crash instant is part
	// of the replayed schedule. The channel marks it fired: the arrival
	// schedule may end (and loadgen.Run return) before the crash tick,
	// and Stop must not tear the scheduler down under a pending kill.
	var cut vtime.Ticks
	killed := make(chan struct{})
	a.Scheduler().At(sc.CrashTick, func() {
		cut = a.Kill()
		close(killed)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	stats, err := loadgen.Run(ctx, a, sc.loadConfig(process))
	if err != nil {
		a.Stop(ctx)
		return nil, fmt.Errorf("scenario %q: load: %w", sc.Name, err)
	}
	select {
	case <-killed:
	case <-ctx.Done():
		a.Stop(ctx)
		return nil, fmt.Errorf("scenario %q: crash tick %d never fired", sc.Name, sc.CrashTick)
	}
	if err := a.Stop(ctx); err != nil {
		return nil, fmt.Errorf("scenario %q: post-kill drain: %w", sc.Name, err)
	}
	aRounds := a.ClearRounds()
	if err := store.Close(); err != nil {
		return nil, fmt.Errorf("scenario %q: store: %w", sc.Name, err)
	}

	// Second life: detached recovery (the store has served its purpose;
	// the replay cares about state, not continued logging) under the
	// same engine config, then a normal start-and-drain to finish every
	// resumed or still-pending order.
	b, rec, err := sc.recoverEngine(dir, cut)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: recover: %w", sc.Name, err)
	}
	if err := b.Start(); err != nil {
		return nil, err
	}
	if err := b.Stop(ctx); err != nil {
		return nil, fmt.Errorf("scenario %q: recovered drain: %w", sc.Name, err)
	}

	orders := b.Orders()
	res := &Result{
		Report:     b.Report(),
		Load:       stats,
		Violations: checkSafety(orders),
		Recovery:   rec,
	}

	// The crash itself can orphan contract escrow on the first life's
	// chains (those ledgers died with the process), so the recovered
	// engine is audited for ledger integrity — every asset accounted,
	// conforming balances whole — rather than full no-stranded-escrow
	// conservation.
	conservation := "ok"
	if err := b.VerifyLedgerIntegrity(); err != nil {
		conservation = err.Error()
		res.Violations = append(res.Violations, Violation{Detail: "conservation: " + err.Error()})
	}

	rounds := aRounds + b.ClearRounds()
	res.Violations = append(res.Violations, sc.budgetViolations(rounds, orders, res.Report)...)
	res.Violations = append(res.Violations, sc.fairShedViolations(stats)...)
	res.Digest = buildDigest(sc, stats, res.Report, orders, res.Violations, conservation, rounds, &CrashDigest{
		Tick:     int64(cut),
		Replayed: rec.Events,
		Resumed:  rec.Resumed,
		Refunded: rec.Refunded,
		Reverts:  rec.Reverts,
	})
	return res, nil
}
