package scenario

import "fmt"

// Suite is the built-in scenario corpus: one entry per workload shape
// the reproduction must keep witnessing. swapbench -scenario runs it,
// CI replays it twice and diffs the digests, and future perf PRs
// inherit it as a fixed adversarial regression set. The seed offset
// shifts every scenario's seed, so one flag re-rolls the whole corpus.
//
// Every entry pins replay budgets (MaxClearRounds, MaxSettleTick):
// measured values for the pinned seed plus roughly 50% headroom, so a
// scheduling regression that slows clearing or stretches settles fails
// the suite even while all safety properties still hold. Re-measure
// (run the suite, read Digest.ClearRounds / LastSettleTick) and re-pin
// when a PR intentionally changes the schedule.
func Suite(seedOffset int64) []Scenario {
	return []Scenario{
		{
			// The conforming baseline: every swap must Deal.
			Name:           "conforming-poisson",
			Seed:           101 + seedOffset,
			Offers:         48,
			Rate:           2000,
			Profile:        "poisson",
			MaxClearRounds: 115, // measured 75
			MaxSettleTick:  125, // measured 81
		},
		{
			// The paper's griefing attack at scale: a quarter of parties
			// refuse to unlock, stalling or silencing their swaps; every
			// conforming party must walk away whole.
			Name:    "griefing-mix",
			Seed:    202 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.15},
				{Strategy: "stall-past-timelock", Rate: 0.10},
			},
			MaxClearRounds: 120, // measured 78
			MaxSettleTick:  150, // measured 99
		},
		{
			// Crash/abort interleavings under bursty load — the AC3-style
			// fault schedule: deployment starvation, random-phase crashes,
			// withheld claims.
			Name:    "crash-swarm",
			Seed:    303 + seedOffset,
			Offers:  48,
			Rate:    3000,
			Profile: "burst:8",
			Deviations: []Deviation{
				{Strategy: "withhold-publish", Rate: 0.10},
				{Strategy: "crash", Rate: 0.10},
				{Strategy: "no-claim", Rate: 0.05},
			},
			MaxClearRounds: 110, // measured 72
			MaxSettleTick:  220, // measured 144
		},
		{
			// Everything at once on a climbing ramp with adaptive Δ: six
			// strategies, shed pressure, and the Δ controller all in one
			// replayable trace.
			Name:          "kitchen-sink-ramp",
			Seed:          404 + seedOffset,
			Offers:        60,
			Rate:          2500,
			Profile:       "ramp:0.5:2",
			RingMin:       3,
			RingMax:       4,
			AdaptiveDelta: true,
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.08},
				{Strategy: "withhold-publish", Rate: 0.06},
				{Strategy: "crash", Rate: 0.06},
				{Strategy: "stall-past-timelock", Rate: 0.06},
				{Strategy: "corrupt-publish", Rate: 0.06},
				{Strategy: "eager-publish", Rate: 0.06},
			},
			MaxClearRounds: 130, // measured 86
			MaxSettleTick:  260, // measured 173
		},
		{
			// Kill the engine mid-clearing and recover from the WAL: the
			// crash lands while swaps are in flight — some resume, some
			// refund on spent timelock budget — so the digest witnesses the
			// whole two-life arc and must still replay byte-identically
			// from the seed.
			Name:      "engine-crash@tick",
			Seed:      606 + seedOffset,
			Offers:    48,
			Rate:      2500,
			Profile:   "poisson",
			CrashTick: 50, // mid-execution: 36 swaps resume, 12 refund
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.1},
			},
			MaxClearRounds: 135, // measured 89, both lives
			MaxSettleTick:  175, // measured 115
		},
		{
			// Sharded clearing, zero cross-shard traffic: every ring lives
			// inside one shard's chain pool, so the run is pure parallel
			// shard-local clearing — and its digest must be byte-identical
			// whether executed on 4 shards or folded onto 1 (the CI
			// baseline diff).
			Name:           "sharded-local",
			Seed:           707 + seedOffset,
			Offers:         48,
			Rate:           2000,
			Profile:        "poisson",
			Shards:         4,
			MaxClearRounds: 110, // measured 74
			MaxSettleTick:  120, // measured 79
		},
		{
			// Sharded clearing with half the rings spanning two shard
			// pools: those rings cannot clear locally, age past the
			// escalation cutoff, and settle through the coordinator —
			// the two-level protocol under real cross-shard pressure.
			Name:           "sharded-cross",
			Seed:           808 + seedOffset,
			Offers:         48,
			Rate:           2000,
			Profile:        "poisson",
			Shards:         4,
			CrossRatio:     0.5,
			MaxClearRounds: 120, // measured 78
			MaxSettleTick:  135, // measured 88
		},
		{
			// Overload: arrivals far beyond capacity against a tiny shed
			// threshold — the backstop's accounting, adversarially seasoned.
			Name:       "overload-shed",
			Seed:       505 + seedOffset,
			Offers:     60,
			Rate:       1e5,
			Profile:    "burst:16",
			MaxPending: 12,
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.2},
			},
			MaxClearRounds: 100, // measured 65
			MaxSettleTick:  95,  // measured 61
		},
		{
			// Chain realism: every chain needs 4 ticks of confirmation
			// depth and reverts ~15% of not-yet-final records at seeded
			// depths. Swaps settle, get reorged out, and re-settle (or
			// refund when the replay loses the race) — all conserving
			// assets, all byte-identical on replay, serial or sharded.
			Name:    "reorg-depth",
			Seed:    909 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
			Deviations: []Deviation{
				{Strategy: "reorg@4", Rate: 0.15},
			},
			MaxClearRounds: 140, // measured 93
			MaxSettleTick:  140, // measured 93
		},
		{
			// Chain realism under sharded clearing: the reorg-depth knobs
			// on the sharded-local placement — every ring inside one
			// shard's chain pool, every chain behind a 4-tick confirmation
			// depth with seeded reverts. Fates are drawn from canonical
			// identities, so the digest must be byte-identical whether
			// executed on 4 shards or folded onto 1 (the CI baseline diff).
			Name:    "reorg-sharded",
			Seed:    1010 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
			Shards:  4,
			Deviations: []Deviation{
				{Strategy: "reorg@4", Rate: 0.15},
			},
			MaxClearRounds: 140, // measured 94
			MaxSettleTick:  140, // measured 94
		},
		{
			// The secret-sharing cartel as a correlated group: about a
			// third of swaps grow a coalition of roughly half their ring
			// that shares leader secrets, unlocks early, randomly withholds
			// action categories, and occasionally crashes. Withheld
			// claims/refunds strand escrow (ledger-integrity audit); every
			// conforming party must still walk away whole, and the run
			// reports a nonzero griefing cost.
			Name:    "coalition-cartel",
			Seed:    1111 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
			RingMin: 3,
			RingMax: 5,
			Coalitions: []Coalition{
				{Strategy: "cartel", Rate: 0.35, Drop: 0.25, Halt: 0.2},
			},
			MaxClearRounds: 145, // measured 95
			MaxSettleTick:  290, // measured 192
		},
		{
			// Lemma 4.11's punishment cartel: in ~30% of swaps a coalition
			// escrows nothing, forcing conforming counterparties to wait
			// out their timelocks and refund — the canonical griefing
			// attack, priced by the economics layer (griefing cost is the
			// conforming capital × ticks the coalition locked up for free).
			Name:    "coalition-punishment",
			Seed:    1212 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
			RingMin: 3,
			RingMax: 5,
			Coalitions: []Coalition{
				{Strategy: "punishment", Rate: 0.30},
			},
			MaxClearRounds: 135, // measured 88
			MaxSettleTick:  245, // measured 161
		},
		{
			// Intake flooding under per-party fair shedding: 3 flood offers
			// ride on every organic one from a 2-group flooder pool,
			// against a tiny book budget. Fair shedding must land the
			// sheds on the flooders — the run itself asserts the organic
			// shed rate stays strictly below the coalition's — while a
			// punishment rider keeps a nonzero griefing cost on the board.
			Name:       "coalition-flood",
			Seed:       1313 + seedOffset,
			Offers:     48,
			Rate:       2000,
			Profile:    "poisson",
			MaxPending: 16,
			FairShed:   true,
			Coalitions: []Coalition{
				{Strategy: "flood", Rate: 0.75, Size: 2},
				{Strategy: "punishment", Rate: 0.30},
			},
			MaxClearRounds: 115, // measured 76
			MaxSettleTick:  215, // measured 142
		},
	}
}

// ByName returns the suite scenario with the given name.
func ByName(name string, seedOffset int64) (Scenario, error) {
	for _, sc := range Suite(seedOffset) {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, 0)
	for _, sc := range Suite(0) {
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (want one of %v)", name, names)
}
