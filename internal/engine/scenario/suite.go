package scenario

import "fmt"

// Suite is the built-in scenario corpus: one entry per workload shape
// the reproduction must keep witnessing. swapbench -scenario runs it,
// CI replays it twice and diffs the digests, and future perf PRs
// inherit it as a fixed adversarial regression set. The seed offset
// shifts every scenario's seed, so one flag re-rolls the whole corpus.
func Suite(seedOffset int64) []Scenario {
	return []Scenario{
		{
			// The conforming baseline: every swap must Deal.
			Name:    "conforming-poisson",
			Seed:    101 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
		},
		{
			// The paper's griefing attack at scale: a quarter of parties
			// refuse to unlock, stalling or silencing their swaps; every
			// conforming party must walk away whole.
			Name:    "griefing-mix",
			Seed:    202 + seedOffset,
			Offers:  48,
			Rate:    2000,
			Profile: "poisson",
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.15},
				{Strategy: "stall-past-timelock", Rate: 0.10},
			},
		},
		{
			// Crash/abort interleavings under bursty load — the AC3-style
			// fault schedule: deployment starvation, random-phase crashes,
			// withheld claims.
			Name:    "crash-swarm",
			Seed:    303 + seedOffset,
			Offers:  48,
			Rate:    3000,
			Profile: "burst:8",
			Deviations: []Deviation{
				{Strategy: "withhold-publish", Rate: 0.10},
				{Strategy: "crash", Rate: 0.10},
				{Strategy: "no-claim", Rate: 0.05},
			},
		},
		{
			// Everything at once on a climbing ramp with adaptive Δ: six
			// strategies, shed pressure, and the Δ controller all in one
			// replayable trace.
			Name:          "kitchen-sink-ramp",
			Seed:          404 + seedOffset,
			Offers:        60,
			Rate:          2500,
			Profile:       "ramp:0.5:2",
			RingMin:       3,
			RingMax:       4,
			AdaptiveDelta: true,
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.08},
				{Strategy: "withhold-publish", Rate: 0.06},
				{Strategy: "crash", Rate: 0.06},
				{Strategy: "stall-past-timelock", Rate: 0.06},
				{Strategy: "corrupt-publish", Rate: 0.06},
				{Strategy: "eager-publish", Rate: 0.06},
			},
		},
		{
			// Overload: arrivals far beyond capacity against a tiny shed
			// threshold — the backstop's accounting, adversarially seasoned.
			Name:       "overload-shed",
			Seed:       505 + seedOffset,
			Offers:     60,
			Rate:       1e5,
			Profile:    "burst:16",
			MaxPending: 12,
			Deviations: []Deviation{
				{Strategy: "silent-leader", Rate: 0.2},
			},
		},
	}
}

// ByName returns the suite scenario with the given name.
func ByName(name string, seedOffset int64) (Scenario, error) {
	for _, sc := range Suite(seedOffset) {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, 0)
	for _, sc := range Suite(0) {
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (want one of %v)", name, names)
}
