package scenario

import (
	"math/rand"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// The deviation taxonomy: every named strategy the scenario DSL can
// inject, built from internal/adversary's primitives. A strategy is a
// constructor from (per-swap rng, spec, vertex) to a behavior; it
// reports ok=false when the deviation does not apply to that vertex
// (e.g. leader-only strategies on a follower), in which case the party
// stays conforming and is not counted as a deviant.
//
//	silent-leader        refuse-to-unlock: completes Phase One, never
//	                     reveals its secret; everyone refunds.
//	withhold-publish     premature abort: signs up, never deploys its
//	                     contracts; counterparties abandon and refund.
//	crash                crash fault at a random phase: halts 0–2 Δ
//	                     after the start, taking its refunds with it.
//	stall-past-timelock  delays every unlock past its contract's last
//	                     timelock; the late unlock bounces off the
//	                     closed contract, so the swap aborts.
//	no-claim             never claims entering arcs: claimable escrow
//	                     is left on the table (its own loss).
//	premature-reveal     leader presents its secret the moment an
//	                     entering contract exists (Section 1's
//	                     irrational Alice).
//	corrupt-publish      publishes contracts with an inflated timelock;
//	                     verifying counterparties must reject.
//	eager-publish        publishes leaving arcs before entering arcs
//	                     are covered, violating Lemma 4.11's ordering.
type strategyFn func(rng *rand.Rand, spec *core.Spec, v digraph.Vertex) (core.Behavior, bool)

var strategies = map[string]strategyFn{
	"silent-leader": func(_ *rand.Rand, spec *core.Spec, v digraph.Vertex) (core.Behavior, bool) {
		idx, ok := spec.LeaderIndex(v)
		if !ok {
			return nil, false
		}
		return adversary.SilentLeader(idx), true
	},
	"withhold-publish": func(*rand.Rand, *core.Spec, digraph.Vertex) (core.Behavior, bool) {
		return adversary.WithholdPublications(), true
	},
	"crash": func(rng *rand.Rand, _ *core.Spec, _ digraph.Vertex) (core.Behavior, bool) {
		return &crashBehavior{phase: rng.Intn(3)}, true
	},
	"stall-past-timelock": func(_ *rand.Rand, spec *core.Spec, _ digraph.Vertex) (core.Behavior, bool) {
		return adversary.Filtered(core.NewConforming(), adversary.Filter{
			DelayUnlock: func(arcID, lockIdx int) (vtime.Ticks, bool) {
				// MaxTimelock is read lazily, at action time, once the
				// engine has pinned the spec's start: one tick past the
				// last timelock is strictly after every unlock deadline
				// yet 4Δ inside the run horizon, so the bounced unlock
				// lands at a replay-stable tick instead of racing
				// teardown.
				return spec.MaxTimelock().Add(1), true
			},
		}), true
	},
	"no-claim": func(*rand.Rand, *core.Spec, digraph.Vertex) (core.Behavior, bool) {
		return adversary.NoClaim(), true
	},
	"premature-reveal": func(_ *rand.Rand, spec *core.Spec, v digraph.Vertex) (core.Behavior, bool) {
		if !spec.IsLeader(v) {
			return nil, false
		}
		return adversary.PrematureRevealer(), true
	},
	"corrupt-publish": func(*rand.Rand, *core.Spec, digraph.Vertex) (core.Behavior, bool) {
		return adversary.CorruptPublisher(), true
	},
	"eager-publish": func(*rand.Rand, *core.Spec, digraph.Vertex) (core.Behavior, bool) {
		return adversary.EagerPublisher(), true
	},
}

// stranding marks strategies whose deviants can legitimately leave
// assets escrowed forever (a crashed party never refunds; a claim
// withholder leaves claimable escrow; a corrupt publisher's inflated
// timelock outlives its own refund alarm). Scenarios containing them
// audit ledger integrity without the stranded-escrow check.
var stranding = map[string]bool{
	"crash":           true,
	"no-claim":        true,
	"corrupt-publish": true,
}

// Strategies lists every known deviation strategy name, sorted.
func Strategies() []string {
	out := make([]string, 0, len(strategies))
	for name := range strategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// crashBehavior halts a party `phase`·Δ after the protocol start —
// wrapping base (conforming when nil, a coalition member when the crash
// rides on a coalition draw). The halt tick depends on the spec's pinned
// start, which the engine assigns only at run setup — after behaviors
// are built — so the wrapped HaltAt is materialized on the first
// callback.
type crashBehavior struct {
	phase int
	base  core.Behavior
	inner core.Behavior
}

func (c *crashBehavior) resolve(e core.Env) core.Behavior {
	if c.inner == nil {
		spec := e.Spec()
		at := spec.Start.Add(vtime.Scale(c.phase, spec.Delta))
		base := c.base
		if base == nil {
			base = core.NewConforming()
		}
		c.inner = adversary.HaltAt(base, at)
	}
	return c.inner
}

func (c *crashBehavior) Init(e core.Env) { c.resolve(e).Init(e) }
func (c *crashBehavior) OnContract(e core.Env, arcID int, ct chain.Contract) {
	c.resolve(e).OnContract(e, arcID, ct)
}
func (c *crashBehavior) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	c.resolve(e).OnUnlock(e, arcID, lockIdx, key)
}
func (c *crashBehavior) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	c.resolve(e).OnRedeem(e, arcID, secret)
}
func (c *crashBehavior) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	c.resolve(e).OnBroadcast(e, lockIdx, key)
}
func (c *crashBehavior) OnSettled(e core.Env, arcID int, claimed bool) {
	c.resolve(e).OnSettled(e, arcID, claimed)
}
