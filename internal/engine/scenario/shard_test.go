package scenario

import "testing"

// withExecShards overrides the execution shard count without touching
// the scenario's identity: the offer stream, seeds, and schedule stay
// fixed (ExecShards is excluded from the digest's JSON), only the
// engine topology changes.
func withExecShards(sc Scenario, n int) Scenario {
	sc.ExecShards = n
	return sc
}

// TestShardScenarioReplays: the sharded suite entries — parallel
// shard-local clearing, and the two-level escalation path under 50%
// cross-shard load — must replay byte-identically from their seeds,
// with safety and conservation intact. CI runs this under -race with
// -count=2.
func TestShardScenarioReplays(t *testing.T) {
	for _, name := range []string{"sharded-local", "sharded-cross"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := ByName(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			a, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest.JSON() != b.Digest.JSON() {
				t.Fatalf("sharded scenario diverged across replays:\nrun1: %s\nrun2: %s",
					a.Digest.JSON(), b.Digest.JSON())
			}
			if len(a.Violations) != 0 {
				t.Fatalf("violations: %+v", a.Violations)
			}
			if a.Digest.SwapsFinished == 0 || a.Digest.Conservation != "ok" || a.Digest.Safety != "ok" {
				t.Fatalf("degenerate sharded run: %+v", a.Digest)
			}
		})
	}
}

// TestShardMergedDigestMatchesSingle is the tentpole's determinism
// contract: a scenario with zero cross-shard traffic executed on 4
// shards (each engine clearing only its own book, merged through the
// canonical-identity machinery) must produce a merged digest
// BYTE-IDENTICAL to the same scenario folded onto 1 shard — same
// intake ticks, same clearing rounds, same swap tags, same settle
// order. If this fails, some shard-count-dependent choice (IDs, swap
// seeds, clearing grid, escalation age) leaked into the schedule.
func TestShardMergedDigestMatchesSingle(t *testing.T) {
	sc, err := ByName("sharded-local", 0)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(withExecShards(sc, 4))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(withExecShards(sc, 1))
	if err != nil {
		t.Fatal(err)
	}
	a, b := four.Digest.JSON(), one.Digest.JSON()
	if a != b {
		t.Fatalf("4-shard vs 1-shard digests diverged:\n4: %s\n1: %s", a, b)
	}
	if four.Digest.Hash() != one.Digest.Hash() {
		t.Fatal("digest hashes diverged")
	}
	if four.Digest.SwapsFinished == 0 {
		t.Fatal("degenerate run")
	}
}

// TestShardMergedDigestMatchesSingleParallel stacks the two determinism
// contracts: striped-parallel dispatch across 4 shard stripes must
// still merge to the 1-shard serialized baseline, byte for byte.
func TestShardMergedDigestMatchesSingleParallel(t *testing.T) {
	sc, err := ByName("sharded-local", 0)
	if err != nil {
		t.Fatal(err)
	}
	par := withExecShards(sc, 4)
	par.Parallel = true
	four, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(withExecShards(sc, 1))
	if err != nil {
		t.Fatal(err)
	}
	if four.Digest.JSON() != one.Digest.JSON() {
		t.Fatalf("4-shard parallel vs 1-shard serial digests diverged:\n4: %s\n1: %s",
			four.Digest.JSON(), one.Digest.JSON())
	}
}

// TestShardReorgDigestMatchesSingle extends the merged-digest contract
// to the commitment model: the reorg-sharded scenario (confirmation
// depth 4, seeded 15% reverts, shard-local placement) must produce a
// 4-shard digest byte-identical to the 1-shard fold. Fates are drawn
// from canonical identities, so a divergence here means execution
// topology leaked into a fate key — exactly the bug class the
// interleave-independent fate hash exists to prevent.
func TestShardReorgDigestMatchesSingle(t *testing.T) {
	sc, err := ByName("reorg-sharded", 0)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(withExecShards(sc, 4))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(withExecShards(sc, 1))
	if err != nil {
		t.Fatal(err)
	}
	if four.Digest.JSON() != one.Digest.JSON() {
		t.Fatalf("4-shard vs 1-shard reorg digests diverged:\n4: %s\n1: %s",
			four.Digest.JSON(), one.Digest.JSON())
	}
	if four.Digest.Reverts == 0 {
		t.Fatal("reorg-sharded run observed no reverts; the commitment model is not firing under sharded execution")
	}
	if four.Digest.Conservation != "ok" || four.Digest.Safety != "ok" {
		t.Fatalf("degenerate reorg-sharded run: %+v", four.Digest)
	}
}

// TestShardSuiteRunsSharded forces the WHOLE shipped corpus — griefing,
// crash swarms, overload shedding, and the engine-crash@tick two-life
// arc — through the sharded engine, and requires every scenario to
// replay byte-identically. Cross-ring sabotage, WAL recovery, and shed
// accounting all have to survive the re-partition.
func TestShardSuiteRunsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sharded replay")
	}
	for _, sc := range Suite(0) {
		sc := withExecShards(sc, 4)
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest.JSON() != b.Digest.JSON() {
				t.Fatalf("suite scenario %q diverged across sharded replays", sc.Name)
			}
			if sc.CrashTick > 0 && a.Digest.Crash == nil {
				t.Fatalf("crash scenario %q recorded no crash digest under sharded execution", sc.Name)
			}
			if a.Digest.Safety != "ok" {
				t.Fatalf("safety: %s", a.Digest.Safety)
			}
		})
	}
}
