package scenario

import (
	"strings"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// TestCrashScenarioReplays is the crash-recovery replay contract: kill
// the engine mid-run, recover from the WAL, finish on the second
// engine — twice — and the digests (which now cover restored orders,
// the resume/refund split, and the second life's settles) must be
// byte-identical. This is what lets CI diff engine-crash@tick exactly
// like every other suite entry.
func TestCrashScenarioReplays(t *testing.T) {
	sc, err := ByName("engine-crash@tick", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest.JSON() != b.Digest.JSON() {
		t.Fatalf("crash scenario diverged across replays:\nrun1: %s\nrun2: %s",
			a.Digest.JSON(), b.Digest.JSON())
	}

	// The crash must have landed mid-execution and split the in-flight
	// swaps both ways — a run where nothing resumed (crashed too late)
	// or nothing refunded (crashed too early) witnesses only half the
	// recovery machinery.
	cd := a.Digest.Crash
	if cd == nil {
		t.Fatal("crash scenario produced no crash digest")
	}
	if cd.Tick != int64(sc.CrashTick) {
		t.Fatalf("crash at tick %d, want %d", cd.Tick, sc.CrashTick)
	}
	if cd.Replayed == 0 || cd.Resumed == 0 || cd.Refunded == 0 {
		t.Fatalf("recovery not exercised both ways: %+v", cd)
	}
	if a.Recovery == nil || a.Recovery.Events != cd.Replayed {
		t.Fatalf("result recovery %+v disagrees with digest %+v", a.Recovery, cd)
	}

	// Safety holds across the crash: every order terminated, no
	// conforming party underwater, ledgers intact.
	if len(a.Violations) != 0 {
		t.Fatalf("violations: %+v", a.Violations)
	}
	if a.Digest.Safety != "ok" || a.Digest.Conservation != "ok" {
		t.Fatalf("digest safety %q conservation %q", a.Digest.Safety, a.Digest.Conservation)
	}
	terminated := 0
	for _, od := range a.Digest.Orders {
		if od.Status == "settled" || od.Status == "rejected" {
			terminated++
		}
	}
	if terminated != len(a.Digest.Orders) {
		t.Fatalf("%d of %d orders left unterminated after recovery",
			len(a.Digest.Orders)-terminated, len(a.Digest.Orders))
	}
}

// TestBudgetViolations pins the replay-budget machinery: impossible
// budgets must surface as violations (and flip the digest's safety
// line), generous ones must not.
func TestBudgetViolations(t *testing.T) {
	sc := Scenario{
		Name:           "budget-bust",
		Seed:           77,
		Offers:         12,
		Rate:           2000,
		Profile:        "constant",
		MaxClearRounds: 1,
		MaxSettleTick:  1,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations %+v, want one per busted budget", res.Violations)
	}
	for _, v := range res.Violations {
		if !strings.HasPrefix(v.Detail, "budget:") {
			t.Fatalf("unexpected violation %+v", v)
		}
	}
	if !strings.HasPrefix(res.Digest.Safety, "budget:") {
		t.Fatalf("digest safety %q, want budget violation", res.Digest.Safety)
	}

	sc.MaxClearRounds = res.Digest.ClearRounds + 1
	sc.MaxSettleTick = 10 * (vtime.Ticks(res.Digest.LastSettleTick) + 1)
	ok, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok.Violations) != 0 {
		t.Fatalf("violations under generous budgets: %+v", ok.Violations)
	}
}
