package engine

import (
	"fmt"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// RecoveredState is the engine-shaped result of replaying a durable
// write-ahead log: everything NewRecovered needs to resurrect an Engine.
// internal/durable builds it — folding the event log is that package's
// job; turning the fold into a live engine is this one's.
//
// The in-flight resolution has already happened by the time this struct
// exists: orders whose swap was in flight at the crash arrive either as
// StatusPending (resumed — they re-enter the book and re-clear into
// fresh swaps) or as StatusSettled with Class NoDeal at the recovery
// tick (refunded).
type RecoveredState struct {
	// Identities are the persisted party keypairs, as ed25519 seeds.
	Identities []RecoveredIdentity
	// Assets are the minted assets with their last logged owner.
	Assets []RecoveredAsset
	// Orders is every order the log knows, in ID order.
	Orders []RecoveredOrder
	// NextOrder and NextSwap resume the ID sequences past everything
	// logged, so post-recovery swaps never collide with logged tags.
	NextOrder uint64
	NextSwap  uint64
	// Tick is the virtual tick the engine resumes at; a virtual-time
	// engine's clock is advanced to it before Start.
	Tick vtime.Ticks
	// Shed restores the pre-crash shed counter.
	Shed int
}

// RecoveredIdentity is one persisted party keypair.
type RecoveredIdentity struct {
	Party string
	Seed  []byte
}

// RecoveredAsset is one minted asset and its current owner. Owner may be
// an "escrow:<swap>" pseudo-party for assets stranded in contract escrow
// by a deviant before the crash.
type RecoveredAsset struct {
	Chain  string
	Asset  chain.AssetID
	Amount uint64
	Owner  string
}

// RecoveredOrder is one order's recovered terminal (or pending) state.
type RecoveredOrder struct {
	ID            OrderID
	Offer         core.Offer
	Status        OrderStatus
	Reason        string
	Class         outcome.Class
	Swap          string
	Deviant       string
	SubmittedTick vtime.Ticks
	SettledTick   vtime.Ticks
}

// NewRecovered builds an engine from a recovered state: identities
// restored into the keyring, assets re-minted under their logged owners,
// orders re-booked (pending ones re-enter the book and will re-clear
// once Start runs), ID sequences resumed, metrics counters restored, and
// — under virtual time — the clock advanced to the recovery tick so
// post-recovery events continue the pre-crash tick line. The caller
// Starts the engine afterwards, exactly like one built with New.
//
// Wall-clock latency history does not survive a crash: restored metrics
// carry the pre-crash counts and outcome tallies, but the latency
// histogram restarts empty (tick-domain digests never depended on it).
func NewRecovered(cfg Config, st RecoveredState) (*Engine, error) {
	e := New(cfg)
	e.recovered = true
	for _, id := range st.Identities {
		if err := e.keyring.Restore(chain.PartyID(id.Party), id.Seed); err != nil {
			return nil, err
		}
	}
	for _, a := range st.Assets {
		if err := e.reg.Chain(a.Chain).RegisterAsset(chain.Asset{
			ID: a.Asset, Amount: a.Amount,
		}, chain.PartyID(a.Owner)); err != nil {
			return nil, fmt.Errorf("engine: recovery re-mint %s/%s: %w", a.Chain, a.Asset, err)
		}
		e.minted = append(e.minted, mintRec{chain: a.Chain, asset: a.Asset, amount: a.Amount})
	}

	now := time.Now()
	for _, ro := range st.Orders {
		o := &order{
			id:            ro.ID,
			offer:         ro.Offer,
			status:        ro.Status,
			reason:        ro.Reason,
			class:         ro.Class,
			swap:          ro.Swap,
			deviant:       ro.Deviant,
			submittedAt:   now,
			settledAt:     now,
			submittedTick: ro.SubmittedTick,
			settledTick:   ro.SettledTick,
		}
		e.orders[o.id] = o
		if o.status == StatusPending {
			e.pending = append(e.pending, o)
			e.pendingBy[o.offer.Party]++
		}
	}
	e.nextOrder = OrderID(st.NextOrder)
	e.nextSwap = st.NextSwap
	e.agg.Restore(restoredCounts(st.Orders, st.Shed))

	// Advance a virtual clock to the recovery tick: schedule a marker at
	// it and wait for the dispatcher to run it. With nothing else queued
	// the clock jumps straight there; pre-crash submit ticks stay in the
	// past, where they belong. A real scheduler's clock is wall-derived
	// and restarts at zero — tick continuity is a virtual-time property.
	if e.vsched != nil && st.Tick > 0 {
		done := make(chan struct{})
		e.sched.At(st.Tick, func() { close(done) })
		<-done
	}
	return e, nil
}

// restoredCounts rebuilds the aggregate counters a crash wiped, from the
// recovered orders: intake and terminal tallies, outcome classes, and
// the per-swap deviation accounting (a swap counts as sabotaged for all
// its orders if any of its parties deviated — same rule runSwap applies
// at settle time).
func restoredCounts(orders []RecoveredOrder, shed int) metrics.RestoredCounts {
	rc := metrics.RestoredCounts{
		Shed:       shed,
		Outcomes:   make(map[string]int),
		Deviations: make(map[string]int),
	}
	type swapAgg struct {
		orders   int
		deviants int
	}
	swaps := make(map[string]*swapAgg)
	for _, ro := range orders {
		rc.Submitted++
		switch ro.Status {
		case StatusRejected:
			rc.Rejected++
		case StatusSettled:
			rc.Outcomes[ro.Class.String()]++
			if ro.Swap != "" {
				rc.Cleared++
				sa := swaps[ro.Swap]
				if sa == nil {
					sa = &swapAgg{}
					swaps[ro.Swap] = sa
				}
				sa.orders++
				if ro.Deviant != "" {
					sa.deviants++
					rc.Deviations[ro.Deviant]++
				}
			}
		}
	}
	for range swaps {
		rc.SwapsStarted++
		rc.SwapsFinished++
	}
	for _, sa := range swaps {
		if sa.deviants > 0 {
			rc.Sabotaged += sa.orders
		}
	}
	return rc
}
