package engine

import (
	"time"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// OrderID identifies a submitted offer for its whole lifetime.
type OrderID uint64

// OrderStatus is an order's position in the intake → clearing → execution
// pipeline.
type OrderStatus int

// Order statuses.
const (
	// StatusPending: accepted, waiting for counterparties in the book.
	StatusPending OrderStatus = iota + 1
	// StatusExecuting: matched into a swap whose assets are reserved and
	// whose protocol run is queued or in flight.
	StatusExecuting
	// StatusSettled: the swap finished; Class holds the party's payoff.
	StatusSettled
	// StatusRejected: the engine refused the order; Reason says why.
	StatusRejected
)

var statusNames = map[OrderStatus]string{
	StatusPending:   "pending",
	StatusExecuting: "executing",
	StatusSettled:   "settled",
	StatusRejected:  "rejected",
}

// String names the status.
func (s OrderStatus) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return "unknown"
}

// order is the engine's mutable record of one offer (guarded by the
// engine mutex).
type order struct {
	id      OrderID
	offer   core.Offer
	status  OrderStatus
	reason  string
	class   outcome.Class
	swap    string // tag of the swap that absorbed the order
	deviant string // injected deviation strategy, "" for conforming

	submittedAt time.Time
	settledAt   time.Time
	// Tick-domain counterparts: wall times vary run to run, but under a
	// deterministic scheduler the tick stamps are replay-identical, so
	// digests and traces are built from these.
	submittedTick vtime.Ticks
	settledTick   vtime.Ticks
	// lockCost is the party's capital-lock integral in this order's swap:
	// escrowed amount × ticks locked, summed over the party's leaving
	// arcs (token-ticks; tick-domain, so replay-identical). Valid once
	// settled; 0 for orders restored from a WAL, whose spans died with
	// the crashed process.
	lockCost uint64
}

// OrderSnapshot is the caller-visible copy of an order's state.
type OrderSnapshot struct {
	ID     OrderID
	Party  string
	Status OrderStatus
	// Reason explains a rejection.
	Reason string
	// Swap is the tag of the swap that executed the order.
	Swap string
	// Class is the party's payoff class, valid once settled.
	Class outcome.Class
	// Deviant names the deviation strategy injected into this order's
	// party, empty for a conforming party. A party can only be left
	// Underwater if it deviated — the invariant the scenario harness
	// checks on every run.
	Deviant string
	// Latency is submit-to-settle wall time, valid once settled.
	Latency time.Duration
	// SubmittedTick and SettledTick are the virtual-tick counterparts of
	// the wall timestamps (SettledTick valid once settled); identical
	// across replays of a deterministic run.
	SubmittedTick vtime.Ticks
	SettledTick   vtime.Ticks
	// LockTickValue is the party's capital-lock integral (token-ticks)
	// in the swap that settled this order — see order.lockCost.
	LockTickValue uint64
}

func (o *order) snapshot() OrderSnapshot {
	s := OrderSnapshot{
		ID:            o.id,
		Party:         string(o.offer.Party),
		Status:        o.status,
		Reason:        o.reason,
		Swap:          o.swap,
		Class:         o.class,
		Deviant:       o.deviant,
		SubmittedTick: o.submittedTick,
		SettledTick:   o.settledTick,
		LockTickValue: o.lockCost,
	}
	if o.status == StatusSettled {
		s.Latency = o.settledAt.Sub(o.submittedAt)
	}
	return s
}
