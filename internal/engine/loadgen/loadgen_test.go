package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/sim"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func vtimeConfig(workers int) engine.Config {
	return engine.Config{
		Workers:       workers,
		ClearInterval: time.Millisecond,
		Tick:          time.Millisecond,
		Delta:         20,
		Seed:          42,
		Virtual:       true,
	}
}

// checkPartyBalance asserts the per-party intake accounting closes: each
// party's own row balances (Offered == Submitted + Shed + Refused holds
// per party, not just in aggregate), and the rows sum back to the run
// totals — no arrival is attributed twice or to nobody.
func checkPartyBalance(t *testing.T, st Stats) {
	t.Helper()
	if len(st.Parties) == 0 {
		t.Fatal("no per-party stats recorded")
	}
	var off, sub, shed, ref int
	for party, ps := range st.Parties {
		if ps.Offered != ps.Submitted+ps.Shed+ps.Refused {
			t.Errorf("party %s accounting leaks: %+v", party, ps)
		}
		off += ps.Offered
		sub += ps.Submitted
		shed += ps.Shed
		ref += ps.Refused
	}
	if off != st.Offered || sub != st.Submitted || shed != st.Shed || ref != st.Refused {
		t.Errorf("party rows sum to %d/%d/%d/%d, run totals %d/%d/%d/%d",
			off, sub, shed, ref, st.Offered, st.Submitted, st.Shed, st.Refused)
	}
}

// TestScheduleDeterministic pins the reproducibility contract: a schedule
// is a pure function of (process, n, rate, tick, seed).
func TestScheduleDeterministic(t *testing.T) {
	procs := []Process{Constant{}, Poisson{}, Burst{Size: 4}, Ramp{}}
	for _, p := range procs {
		a := Schedule(p, 200, 1000, time.Millisecond, 7)
		b := Schedule(p, 200, 1000, time.Millisecond, 7)
		if len(a) != 200 || len(b) != 200 {
			t.Fatalf("%s: bad lengths %d/%d", p.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at %d: %v vs %v", p.Name(), i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: schedule not monotonic at %d", p.Name(), i)
			}
		}
	}
	// A randomized process must actually use its seed.
	a := Schedule(Poisson{}, 200, 1000, time.Millisecond, 7)
	c := Schedule(Poisson{}, 200, 1000, time.Millisecond, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("poisson: different seeds produced identical schedules")
	}
}

// TestScheduleDeterministicOnSim replays the same schedule on two
// deterministic sim.Schedulers: the fire order and fire ticks must match
// event for event.
func TestScheduleDeterministicOnSim(t *testing.T) {
	replay := func(seed int64) []vtime.Ticks {
		s := sim.New(seed)
		var fired []vtime.Ticks
		for _, at := range Schedule(Poisson{}, 150, 500, time.Millisecond, seed) {
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return fired
	}
	a, b := replay(3), replay(3)
	if len(a) != 150 || len(b) != 150 {
		t.Fatalf("fired %d/%d events, want 150", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed fired event %d at %v vs %v", i, a[i], b[i])
		}
	}
}

// TestProfileShapes checks each process produces its characteristic
// arrival pattern.
func TestProfileShapes(t *testing.T) {
	const n, rate = 400, 1000.0
	tick := time.Millisecond // mean gap = 1 tick

	// Constant: arrivals exactly one tick apart.
	c := Schedule(Constant{}, n, rate, tick, 1)
	for i := 1; i < n; i++ {
		if c[i]-c[i-1] != 1 {
			t.Fatalf("constant: gap %v at %d, want 1", c[i]-c[i-1], i)
		}
	}

	// Burst: arrivals cluster — far fewer distinct ticks than arrivals —
	// while the average rate holds (span ≈ n ticks).
	bu := Schedule(Burst{Size: 8}, n, rate, tick, 1)
	distinct := 1
	for i := 1; i < n; i++ {
		if bu[i] != bu[i-1] {
			distinct++
		}
	}
	if distinct > n/4 {
		t.Errorf("burst: %d distinct ticks for %d arrivals — not clustering", distinct, n)
	}
	if span := bu[n-1] - bu[0]; span < vtime.Ticks(n/2) || span > vtime.Ticks(2*n) {
		t.Errorf("burst: span %v ticks for %d arrivals at 1/tick — average rate not preserved", span, n)
	}

	// Ramp 0.2→2.0: the first quarter must be sparser than the last, and
	// the normalization must hold the configured average rate — total
	// span ≈ n ticks at one offer/tick (the unnormalized harmonic-mean
	// schedule would span ~28% longer).
	ra := Schedule(Ramp{}, n, rate, tick, 1)
	firstQuarter := ra[n/4] - ra[0]
	lastQuarter := ra[n-1] - ra[3*n/4]
	if firstQuarter <= lastQuarter {
		t.Errorf("ramp: first-quarter span %v not sparser than last-quarter %v", firstQuarter, lastQuarter)
	}
	if span := float64(ra[n-1] - ra[0]); span < 0.95*n || span > 1.05*n {
		t.Errorf("ramp: span %.0f ticks for %d arrivals at 1/tick — average rate not preserved", span, n)
	}
}

func TestParseProfile(t *testing.T) {
	good := map[string]string{
		"constant":   "constant",
		"poisson":    "poisson",
		"burst":      "burst:8",
		"burst:16":   "burst:16",
		"ramp":       "ramp:0.2:2",
		"ramp:0.5:4": "ramp:0.5:4",
	}
	for in, want := range good {
		p, err := ParseProfile(in)
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ParseProfile(%q).Name() = %q, want %q", in, p.Name(), want)
		}
	}
	for _, in := range []string{
		"uniform", "burst:0", "burst:x", "burst:4:5", "ramp:1", "ramp:0:2",
		"poisson:42", "constant:1",
	} {
		if _, err := ParseProfile(in); err == nil {
			t.Errorf("ParseProfile(%q): want error", in)
		}
	}
}

// TestOpenLoadVirtualTime is the end-to-end open-loop acceptance: a
// Poisson stream under virtual time clears completely, and the latency
// percentiles are non-zero even though every settle is sub-millisecond —
// the truncation bug this PR fixes would have zeroed them.
func TestOpenLoadVirtualTime(t *testing.T) {
	rep, err := RunOpenLoad(vtimeConfig(8), Config{
		Offers:    36,
		Rate:      4000,
		Process:   Poisson{},
		PartyPool: 4,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.Submitted != rep.Load.Offered || rep.Load.Shed != 0 || rep.Load.Refused != 0 {
		t.Fatalf("load stats: %+v", rep.Load)
	}
	if rep.SwapsFinished != 12 || rep.SwapsFailed != 0 {
		t.Fatalf("report: finished %d failed %d, want 12/0", rep.SwapsFinished, rep.SwapsFailed)
	}
	if rep.OffersCleared != rep.Load.Submitted {
		t.Fatalf("cleared %d of %d submitted", rep.OffersCleared, rep.Load.Submitted)
	}
	if rep.P50LatencyMs <= 0 || rep.P95LatencyMs <= 0 || rep.P99LatencyMs <= 0 {
		t.Fatalf("zeroed percentiles: p50=%v p95=%v p99=%v",
			rep.P50LatencyMs, rep.P95LatencyMs, rep.P99LatencyMs)
	}
	if rep.AvgLatencyMs <= 0 || rep.MaxLatencyMs < rep.P99LatencyMs {
		t.Fatalf("latency summary inconsistent: avg=%v max=%v p99=%v",
			rep.AvgLatencyMs, rep.MaxLatencyMs, rep.P99LatencyMs)
	}
	if rep.Profile != "poisson" || rep.OfferedRate != 4000 {
		t.Fatalf("report labels: %q %v", rep.Profile, rep.OfferedRate)
	}
}

// TestOpenLoadRealScheduler smokes the wall-clock path: a small constant
// stream on the real scheduler clears with sane accounting.
func TestOpenLoadRealScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load")
	}
	ecfg := engine.Config{
		Workers:       4,
		ClearInterval: time.Millisecond,
		Tick:          time.Millisecond,
		Delta:         15,
		Seed:          42,
	}
	rep, err := RunOpenLoad(ecfg, Config{Offers: 9, Rate: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapsFinished != 3 || rep.SwapsFailed != 0 {
		t.Fatalf("report: %+v", rep.Throughput)
	}
	if rep.Load.Submitted != 9 {
		t.Fatalf("load stats: %+v", rep.Load)
	}
}

// TestOpenLoadShedsInsteadOfGrowing pins the bounded-intake backstop: a
// flood far beyond the shed threshold must shed (not book) the excess,
// and the engine still drains clean.
func TestOpenLoadShedsInsteadOfGrowing(t *testing.T) {
	rep, err := RunOpenLoad(vtimeConfig(1), Config{
		Offers:     60,
		Rate:       1e6, // effectively simultaneous arrivals
		MaxPending: 4,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Load
	if st.Shed == 0 {
		t.Fatalf("no shedding under flood: %+v", st)
	}
	if st.Submitted+st.Shed+st.Refused != st.Offered {
		t.Fatalf("intake accounting leaks: %+v", st)
	}
	if st.Submitted == 0 {
		t.Fatalf("everything shed: %+v", st)
	}
	if rep.InFlight != 0 || rep.SwapsFailed != 0 {
		t.Fatalf("engine did not drain clean: %+v", rep.Throughput)
	}
	checkPartyBalance(t, st)
}

// TestRampDegenerateBounds pins ramp's edge cases: from==to must
// degenerate to the constant profile exactly (the normalization's
// to==from branch), and the parser must accept it.
func TestRampDegenerateBounds(t *testing.T) {
	const n, rate = 200, 1000.0
	tick := time.Millisecond
	flat := Schedule(Ramp{From: 1, To: 1}, n, rate, tick, 3)
	want := Schedule(Constant{}, n, rate, tick, 3)
	for i := range flat {
		if flat[i] != want[i] {
			t.Fatalf("ramp:1:1 diverged from constant at %d: %v vs %v", i, flat[i], want[i])
		}
	}
	// Degenerate bounds other than 1 still hold the configured rate.
	for _, v := range []float64{0.5, 2} {
		s := Schedule(Ramp{From: v, To: v}, n, rate, tick, 3)
		if span := float64(s[n-1] - s[0]); span < 0.95*n || span > 1.05*n {
			t.Errorf("ramp:%g:%g span %.0f ticks for %d arrivals — rate not preserved", v, v, span, n)
		}
	}
	p, err := ParseProfile("ramp:1:1")
	if err != nil {
		t.Fatalf("ParseProfile(ramp:1:1): %v", err)
	}
	if p.Name() != "ramp:1:1" {
		t.Fatalf("name %q", p.Name())
	}
}

// TestBurstLargerThanMaxPending floods whole bursts past the shed
// threshold: a burst bigger than MaxPending must shed its overflow
// ring-granularly (no partial rings stranded in the book), keep the
// accounting closed, and still drain clean.
func TestBurstLargerThanMaxPending(t *testing.T) {
	rep, err := RunOpenLoad(vtimeConfig(2), Config{
		Offers:     90,
		Rate:       4000,
		Process:    Burst{Size: 30}, // 30 back-to-back arrivals per burst
		MaxPending: 6,               // far below one burst
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Load
	if st.Shed == 0 {
		t.Fatalf("burst of 30 against MaxPending 6 shed nothing: %+v", st)
	}
	if st.Submitted+st.Shed+st.Refused != st.Offered {
		t.Fatalf("intake accounting leaks: %+v", st)
	}
	if st.Submitted == 0 {
		t.Fatalf("everything shed: %+v", st)
	}
	// Shedding is ring-granular: whatever was submitted must have cleared
	// into whole swaps, not lingered as unmatched fragments.
	if rep.InFlight != 0 || rep.SwapsFailed != 0 {
		t.Fatalf("engine did not drain clean: %+v", rep.Throughput)
	}
	// The engine's own counters carry the shed total (NoteShed wiring).
	if rep.OffersShed != st.Shed {
		t.Fatalf("engine counted %d shed, generator %d", rep.OffersShed, st.Shed)
	}
	checkPartyBalance(t, st)
}

// TestZeroRateRejected pins the zero- and negative-rate contract: the
// generator refuses them instead of dividing by zero into an infinite
// schedule.
func TestZeroRateRejected(t *testing.T) {
	e := engine.New(vtimeConfig(1))
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Stop(ctx)
	}()
	for _, rate := range []float64{0, -100} {
		if _, err := Run(context.Background(), e, Config{Offers: 3, Rate: rate, Seed: 1}); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
	// Zero offers is refused the same way.
	if _, err := Run(context.Background(), e, Config{Offers: 0, Rate: 100, Seed: 1}); err == nil {
		t.Error("zero offers accepted")
	}
}

// TestRunContextCancel checks a cancelled load stops scheduling and
// reports the partial stats instead of hanging.
func TestRunContextCancel(t *testing.T) {
	e := engine.New(engine.Config{
		Workers: 2, ClearInterval: time.Millisecond,
		Tick: time.Millisecond, Delta: 15, Seed: 1,
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, e, Config{Offers: 3000, Rate: 10, Seed: 1}) // 5-minute schedule
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	drainCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
	defer done()
	if err := e.Stop(drainCtx); err != nil {
		t.Fatalf("Stop after cancel: %v", err)
	}
}

// TestCancelledRunBalancesAccounting pins the aborted-run invariant:
// arrivals whose timers never fire — the schedule was cancelled under
// them — are counted as refused, so Offered == Submitted + Shed +
// Refused holds on every exit path, not just clean completions.
func TestCancelledRunBalancesAccounting(t *testing.T) {
	ecfg := engine.Config{
		Workers:       2,
		ClearInterval: time.Millisecond,
		Tick:          time.Millisecond,
		Delta:         20,
		Seed:          42,
	}
	e := engine.New(ecfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Stop(ctx)
	}()

	// A real-time schedule spread over ~10s of wall clock, cancelled
	// before it starts: almost every arrival timer is stopped unfired.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Run(ctx, e, Config{Offers: 30, Rate: 3, Seed: 9})
	if err == nil {
		t.Fatalf("cancelled run returned nil error")
	}
	if st.Offered == 0 {
		t.Fatalf("no offers generated")
	}
	if got := st.Submitted + st.Shed + st.Refused; got != st.Offered {
		t.Errorf("accounting leak on cancel: offered %d != submitted %d + shed %d + refused %d",
			st.Offered, st.Submitted, st.Shed, st.Refused)
	}
	if st.Refused == 0 {
		t.Errorf("cancelled schedule counted no refusals (submitted=%d shed=%d)", st.Submitted, st.Shed)
	}
	// The balance must hold per party on the abort path too: the cancel
	// sweep attributes every unfired arrival to its own party.
	checkPartyBalance(t, st)
}

// TestFloodOffersInterleave pins the flood generator's stream shape:
// FloodFactor extra rings from a FloodParties-sized identity pool ride
// on every organic ring, every flood identity carries the reserved
// prefix, the organic budget is still met, and no organic party name
// collides with the flood pool.
func TestFloodOffersInterleave(t *testing.T) {
	cfg := Config{Offers: 30, RingMin: 3, RingMax: 3, FloodFactor: 2, FloodParties: 3, Seed: 11}
	offers, ringOf := buildOffers(cfg.withDefaults())
	if len(offers) != len(ringOf) {
		t.Fatalf("ring map %d entries for %d offers", len(ringOf), len(offers))
	}
	organic, flood := 0, 0
	groups := make(map[string]bool)
	for _, o := range offers {
		if strings.HasPrefix(string(o.Party), engine.FloodPartyPrefix) {
			flood++
			// "flood<G>-p<I>" → group identity "flood<G>".
			name := string(o.Party)
			groups[name[:strings.Index(name, "-")]] = true
			if !strings.HasPrefix(string(o.Give[0].To), engine.FloodPartyPrefix) {
				t.Fatalf("flood offer gives to organic party: %+v", o)
			}
		} else {
			organic++
		}
	}
	if organic < cfg.Offers || organic >= cfg.Offers+cfg.RingMax {
		t.Fatalf("organic budget: %d offers for budget %d", organic, cfg.Offers)
	}
	// Fixed 3-rings: 2 flood rings per organic ring means exactly 2× the
	// organic offer count is flood traffic.
	if flood != 2*organic {
		t.Fatalf("flood offers %d, want %d (factor 2 of %d organic)", flood, 2*organic, organic)
	}
	if len(groups) != cfg.FloodParties {
		t.Fatalf("flood identities drawn from %d groups, want %d: %v", len(groups), cfg.FloodParties, groups)
	}
	// FloodFactor 0 must leave the classic stream untouched.
	cfg.FloodFactor = 0
	plain, _ := buildOffers(cfg.withDefaults())
	classic, _ := buildOffers(Config{Offers: 30, RingMin: 3, RingMax: 3, Seed: 11}.withDefaults())
	if len(plain) != len(classic) {
		t.Fatalf("factor-0 stream length %d, classic %d", len(plain), len(classic))
	}
	for i := range plain {
		if plain[i].Party != classic[i].Party {
			t.Fatalf("factor-0 stream diverged from classic at %d", i)
		}
	}
}

// TestFairShedProtectsOrganicParties is the fair-shedding policy's unit
// witness: a flood from a small reused identity pool against a tiny book
// budget, with per-party fair shedding on, must land its sheds on the
// flooders at a strictly higher rate than on the organic parties — the
// flooders hold the book, so they are the ones at quota.
func TestFairShedProtectsOrganicParties(t *testing.T) {
	rep, err := RunOpenLoad(vtimeConfig(1), Config{
		Offers:       24,
		Rate:         1e6, // effectively simultaneous arrivals
		MaxPending:   4,
		FairShed:     true,
		FloodFactor:  3,
		FloodParties: 2,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Load
	checkPartyBalance(t, st)
	var org, flood PartyStats
	for party, ps := range st.Parties {
		if strings.HasPrefix(party, engine.FloodPartyPrefix) {
			flood.Offered += ps.Offered
			flood.Shed += ps.Shed
		} else {
			org.Offered += ps.Offered
			org.Shed += ps.Shed
		}
	}
	if flood.Offered == 0 || org.Offered == 0 {
		t.Fatalf("stream not mixed: organic %+v flood %+v", org, flood)
	}
	if flood.Shed == 0 {
		t.Fatalf("flood was never shed: %+v (run %+v)", flood, st)
	}
	orgRate := float64(org.Shed) / float64(org.Offered)
	floodRate := float64(flood.Shed) / float64(flood.Offered)
	if orgRate >= floodRate {
		t.Fatalf("fair shedding failed its one job: organic shed rate %.3f (%d/%d) not below flood's %.3f (%d/%d)",
			orgRate, org.Shed, org.Offered, floodRate, flood.Shed, flood.Offered)
	}
	// NoteShedFrom feeds the same engine counter NoteShed does.
	if rep.OffersShed != st.Shed {
		t.Fatalf("engine counted %d shed, generator %d", rep.OffersShed, st.Shed)
	}
	if rep.InFlight != 0 || rep.SwapsFailed != 0 {
		t.Fatalf("engine did not drain clean: %+v", rep.Throughput)
	}
}
