// Package loadgen is the open-loop load harness for the clearing engine:
// instead of pre-loading the book (engine.RunLoad's closed-loop shape),
// it drives Engine.Submit from a configurable arrival process scheduled
// on the engine's own time scheduler, so latency can be measured under
// sustained intake at a controlled offered rate.
//
// Open-loop means arrivals are decided by the process alone — a slow
// engine does not slow the generator down, it just accumulates a deeper
// book. That is the standard methodology for commit-latency measurement
// (it is immune to coordinated omission: a stalled engine keeps
// receiving, and every queued offer's wait shows up in the percentiles,
// instead of the generator politely pausing and hiding the stall). A
// bounded-intake backstop sheds offers once the pending book exceeds a
// cap, so a hopelessly overloaded engine degrades by visible shedding
// rather than by unbounded memory growth.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Process is an arrival process: it generates the inter-arrival gap
// before each offer, in (possibly fractional) virtual ticks. mean is the
// gap that realizes the configured average rate; i and n locate the
// arrival within the run for shape-varying processes (ramps). Processes
// must be pure functions of (rng, i, n, mean) so a schedule is
// reproducible from its seed.
type Process interface {
	// Name identifies the process in reports and bench JSON.
	Name() string
	// Gap returns the gap in ticks before arrival i of n.
	Gap(rng *rand.Rand, i, n int, mean float64) float64
}

// Constant spaces arrivals exactly one mean gap apart — the
// deterministic baseline profile.
type Constant struct{}

// Name implements Process.
func (Constant) Name() string { return "constant" }

// Gap implements Process.
func (Constant) Gap(_ *rand.Rand, _, _ int, mean float64) float64 { return mean }

// Poisson draws exponentially distributed gaps: the memoryless arrival
// process of independent users, and the standard open-loop workload.
type Poisson struct{}

// Name implements Process.
func (Poisson) Name() string { return "poisson" }

// Gap implements Process.
func (Poisson) Gap(rng *rand.Rand, _, _ int, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Burst clusters arrivals: Size offers arrive back to back, then the
// line goes quiet for Size mean gaps, preserving the configured average
// rate while stressing the clearing loop with synchronized spikes.
type Burst struct {
	// Size is the burst length (default 8).
	Size int
}

// Name implements Process.
func (b Burst) Name() string { return fmt.Sprintf("burst:%d", b.size()) }

func (b Burst) size() int {
	if b.Size <= 0 {
		return 8
	}
	return b.Size
}

// Gap implements Process.
func (b Burst) Gap(_ *rand.Rand, i, _ int, mean float64) float64 {
	if i%b.size() == 0 {
		return float64(b.size()) * mean
	}
	return 0
}

// Ramp sweeps the rate linearly across the run: the instantaneous rate
// at position p ∈ [0,1] follows the shape From+(To-From)·p, normalized
// so the run's average rate is exactly the configured rate (without the
// normalization, index-uniform gap sampling realizes the harmonic — not
// arithmetic — mean of the multipliers and undershoots the configured
// load by ~20% on the default ramp). A 0.2→2.0 ramp starts at a tenth
// of its final rate — the shape that shows where latency diverges as
// offered load climbs through the engine's capacity.
type Ramp struct {
	// From and To set the relative rate shape (defaults 0.2 and 2.0).
	From, To float64
}

// Name implements Process.
func (r Ramp) Name() string {
	from, to := r.bounds()
	return fmt.Sprintf("ramp:%g:%g", from, to)
}

func (r Ramp) bounds() (float64, float64) {
	from, to := r.From, r.To
	if from <= 0 {
		from = 0.2
	}
	if to <= 0 {
		to = 2.0
	}
	return from, to
}

// Gap implements Process.
func (r Ramp) Gap(_ *rand.Rand, i, n int, mean float64) float64 {
	from, to := r.bounds()
	p := 0.0
	if n > 1 {
		p = float64(i) / float64(n-1)
	}
	rate := from + (to-from)*p
	// Normalize by E[1/rate] = ln(to/from)/(to-from) (the continuous
	// limit of the index-uniform sampling) so Σ gaps ≈ n·mean and the
	// realized average rate matches the configured one.
	norm := 1 / from
	if to != from {
		norm = math.Log(to/from) / (to - from)
	}
	return mean / (rate * norm)
}

// ParseProfile resolves a profile flag value to a Process:
// "constant", "poisson", "burst[:size]", or "ramp[:from:to]".
func ParseProfile(s string) (Process, error) {
	parts := strings.Split(strings.TrimSpace(strings.ToLower(s)), ":")
	switch parts[0] {
	case "", "constant", "poisson":
		if len(parts) > 1 {
			return nil, fmt.Errorf("loadgen: %s takes no parameters, got %q", parts[0], s)
		}
		if parts[0] == "poisson" {
			return Poisson{}, nil
		}
		return Constant{}, nil
	case "burst":
		b := Burst{}
		if len(parts) > 2 {
			return nil, fmt.Errorf("loadgen: burst wants burst or burst:n, got %q", s)
		}
		if len(parts) > 1 {
			n, err := strconv.Atoi(parts[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("loadgen: bad burst size %q", parts[1])
			}
			b.Size = n
		}
		return b, nil
	case "ramp":
		r := Ramp{}
		if len(parts) == 3 {
			from, err1 := strconv.ParseFloat(parts[1], 64)
			to, err2 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil || from <= 0 || to <= 0 {
				return nil, fmt.Errorf("loadgen: bad ramp bounds %q", s)
			}
			r.From, r.To = from, to
		} else if len(parts) != 1 {
			return nil, fmt.Errorf("loadgen: ramp wants ramp or ramp:from:to, got %q", s)
		}
		return r, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown profile %q (want constant, poisson, burst[:n], ramp[:from:to])", s)
	}
}

// Schedule materializes the arrival tick of each of n offers at the
// given average rate (offers per second, converted to ticks via the
// engine's tick duration). The schedule is a pure function of its
// arguments: same seed, same schedule — on any scheduler.
func Schedule(p Process, n int, rate float64, tick time.Duration, seed int64) []vtime.Ticks {
	rng := rand.New(rand.NewSource(seed))
	mean := 1.0 / (rate * tick.Seconds())
	out := make([]vtime.Ticks, n)
	at := 0.0
	for i := range out {
		at += p.Gap(rng, i, n, mean)
		out[i] = vtime.Ticks(math.Round(at))
	}
	return out
}
