package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/shard"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Target is the intake surface a load generator drives: the single
// engine and the sharded engine both satisfy it, so every arrival
// process, shed rule, and schedule in this package works unchanged
// against either.
type Target interface {
	Submit(offer core.Offer) (engine.OrderID, error)
	Pending() int
	NoteShed(n int)
	Scheduler() sched.Scheduler
	Tick() time.Duration
}

// PartyAccounting is the optional per-party intake surface fair shedding
// needs: both engines implement it, but Target keeps the minimal shape
// so simpler fakes and future fronts stay valid. When the target lacks
// it, sheds fall back to the global backstop and unattributed NoteShed.
type PartyAccounting interface {
	PendingOf(party chain.PartyID) int
	PendingParties() int
	NoteShedFrom(party chain.PartyID, n int)
}

// DriveTarget extends Target with the lifecycle Drive owns: stop/drain,
// the conservation audit, and the final report.
type DriveTarget interface {
	Target
	Stop(ctx context.Context) error
	Recovered() bool
	VerifyConservation() error
	VerifyLedgerIntegrity() error
	Report() metrics.Throughput
}

// DefaultMaxPending is the bounded-intake backstop: once the engine's
// pending book is this deep, further arrivals are shed instead of
// submitted, so an overloaded engine degrades by visible shedding rather
// than unbounded book growth.
const DefaultMaxPending = 4096

// Config parameterizes one open-loop load.
type Config struct {
	// Offers is the approximate number of offers to generate; the final
	// barter ring is always completed, so the actual count (Stats.Offered)
	// may overshoot by up to RingMax-1.
	Offers int
	// RingMin and RingMax bound generated barter-ring sizes (default 3/3).
	RingMin, RingMax int
	// Rate is the average offered load in offers per second of scheduler
	// time (converted to ticks via the engine's Tick). Required.
	Rate float64
	// Process shapes arrivals around the average rate (default Constant).
	Process Process
	// PartyPool reuses a fixed pool of ring-group identities (ring r uses
	// group r mod PartyPool); 0 mints fresh parties per ring.
	PartyPool int
	// MaxPending is the shed threshold on the engine's pending book
	// (default DefaultMaxPending; negative disables shedding).
	MaxPending int
	// Seed drives the arrival schedule and ring-size draws.
	Seed int64
	// Shards, when >1, switches ring generation to sharded placement:
	// chains come from per-shard pools (see shard.Map.Pools), ring r is
	// homed to shard r mod Shards, and a CrossRatio fraction of rings
	// deliberately mix two pools so their members land in different
	// shard books — the cross-shard escalation workload. This is the
	// GENERATION shard count: it fixes the offer stream, which stays
	// byte-identical whatever shard count the stream is executed on
	// (the 4-vs-1 digest-equality contract depends on exactly that).
	// 0 or 1 keeps the classic fixed chain set.
	Shards int
	// CrossRatio is the fraction of generated rings that span two
	// shards' chain pools (ignored unless Shards > 1).
	CrossRatio float64
	// FairShed switches the backstop from the global MaxPending rule
	// (book full → everyone sheds) to per-party fair shedding: when the
	// book is at MaxPending, an arrival is shed only if its party
	// already holds at least its fair share — MaxPending divided by the
	// parties currently in the book — of pending orders. A flooding
	// identity pool hits its quota and sheds; organic parties holding
	// little or nothing keep being admitted. A hard backstop at
	// 4×MaxPending still sheds everything, bounding the book against
	// sybil floods (fresh-named parties never exceed any quota).
	// Requires a PartyAccounting target; ignored otherwise.
	FairShed bool
	// FloodFactor injects a flooding coalition into the stream: after
	// each organic ring, this many extra rings are generated from a
	// small reused pool of flooder identities (engine.FloodOffer).
	// Organic rings alone satisfy the Offers budget; flood rings ride on
	// top, so the organic workload is unchanged while total offered
	// load multiplies by 1+FloodFactor.
	FloodFactor int
	// FloodParties is the flooder identity-pool size in ring groups
	// (default 2; only meaningful with FloodFactor > 0).
	FloodParties int
}

func (cfg Config) withDefaults() Config {
	if cfg.RingMin < 2 {
		cfg.RingMin = 3
	}
	if cfg.RingMax < cfg.RingMin {
		cfg.RingMax = cfg.RingMin
	}
	if cfg.Process == nil {
		cfg.Process = Constant{}
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.FloodFactor > 0 && cfg.FloodParties <= 0 {
		cfg.FloodParties = 2
	}
	return cfg
}

// PartyStats is one party's slice of the intake accounting; the
// aggregate conservation law Offered == Submitted + Shed + Refused holds
// per party too (every generated arrival meets exactly one fate, and
// each fate is attributed to the arrival's offering party).
type PartyStats struct {
	Offered   int `json:"offered"`
	Submitted int `json:"submitted"`
	Shed      int `json:"shed"`
	Refused   int `json:"refused"`
}

// Stats reports what the generator actually did.
type Stats struct {
	// Offered counts generated arrivals (submitted + shed + refused).
	Offered int `json:"offered"`
	// Submitted counts offers the engine accepted into the book.
	Submitted int `json:"submitted"`
	// Shed counts arrivals dropped by the bounded-intake backstop.
	Shed int `json:"shed"`
	// Refused counts offers the engine rejected at intake.
	Refused int `json:"refused"`
	// FirstTick and LastTick span the arrival schedule in virtual ticks.
	FirstTick vtime.Ticks `json:"first_tick"`
	LastTick  vtime.Ticks `json:"last_tick"`
	// Parties breaks the accounting down by offering party — the ground
	// truth behind fair-shedding audits (whose traffic was turned away).
	Parties map[string]PartyStats `json:"parties,omitempty"`
}

// Run drives one open-loop load into a started engine: every offer is
// submitted by a callback on the engine's scheduler at its scheduled
// arrival tick, and Run returns once the last arrival has fired (or ctx
// expires, cancelling the rest). The engine is left running — callers
// own Drain/Stop, so loads can be layered or followed by more traffic —
// but must not Stop it while Run is in flight (abort via ctx instead): a
// closed scheduler drops queued arrivals without firing them.
func Run(ctx context.Context, e Target, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 {
		return Stats{}, errors.New("loadgen: Rate must be positive")
	}
	if cfg.Offers <= 0 {
		return Stats{}, errors.New("loadgen: Offers must be positive")
	}
	offers, ringOf := buildOffers(cfg)
	ticks := Schedule(cfg.Process, len(offers), cfg.Rate, e.Tick(), cfg.Seed)

	// Party attribution runs whenever the target supports it; the fair
	// shed POLICY additionally needs the config knob.
	acct, _ := e.(PartyAccounting)
	fair := cfg.FairShed && acct != nil

	var (
		mu sync.Mutex
		st Stats
		wg sync.WaitGroup
		// shedRings makes shedding ring-granular: once any offer of a
		// ring is shed, the ring's remaining arrivals are shed too.
		// Per-offer shedding would strand partial rings in the book —
		// offers that can never match — so a transient overload could pin
		// Pending at the threshold and shed everything that follows.
		// (Concurrent same-tick arrivals can still split a ring right at
		// the threshold crossing; those stragglers are bounded per
		// overload episode and rejected at drain.)
		shedRings = make(map[int]bool)
		// fired marks arrivals whose fate is accounted, so the cancel
		// path's sweep and a late-firing callback never double-count.
		fired = make([]bool, len(offers))
	)
	st.Offered = len(offers)
	st.FirstTick, st.LastTick = ticks[0], ticks[len(offers)-1]
	st.Parties = make(map[string]PartyStats)
	party := func(o core.Offer, f func(*PartyStats)) {
		p := st.Parties[string(o.Party)]
		f(&p)
		st.Parties[string(o.Party)] = p
	}
	for _, o := range offers {
		party(o, func(p *PartyStats) { p.Offered++ })
	}

	sc := e.Scheduler()
	timers := make([]sched.Timer, len(offers))
	wg.Add(len(offers))
	// Hold the clock while the schedule is installed: on a free-running
	// virtual scheduler, time must not race past early arrival ticks
	// before the later ones are even queued (a real scheduler's Hold is a
	// no-op, and past-due timers fire immediately either way).
	release := sc.Hold()
	for i := range offers {
		i, offer, ring := i, offers[i], ringOf[i]
		timers[i] = sc.At(ticks[i], func() {
			defer wg.Done()
			mu.Lock()
			if fired[i] {
				mu.Unlock() // the cancel sweep already accounted this arrival
				return
			}
			fired[i] = true
			shed := shedRings[ring]
			if !shed && cfg.MaxPending > 0 && e.Pending() >= cfg.MaxPending {
				if fair {
					// Per-party fair shedding: the book budget apportioned
					// over the parties currently holding it. A party at or
					// past its share sheds; one below it (an organic party
					// facing a flood) is still admitted — up to the hard
					// 4× backstop that bounds the book absolutely.
					quota := cfg.MaxPending / acct.PendingParties()
					if quota < 1 {
						quota = 1
					}
					if acct.PendingOf(offer.Party) >= quota || e.Pending() >= 4*cfg.MaxPending {
						shedRings[ring] = true
						shed = true
					}
				} else {
					shedRings[ring] = true
					shed = true
				}
			}
			if shed {
				st.Shed++
				party(offer, func(p *PartyStats) { p.Shed++ })
				mu.Unlock()
				// Surface shedding in the engine's own counters, attributed
				// to the shed party when the target can record it.
				if acct != nil {
					acct.NoteShedFrom(offer.Party, 1)
				} else {
					e.NoteShed(1)
				}
				return
			}
			mu.Unlock()
			if _, err := e.Submit(offer); err != nil {
				mu.Lock()
				st.Refused++
				party(offer, func(p *PartyStats) { p.Refused++ })
				mu.Unlock()
				return
			}
			mu.Lock()
			st.Submitted++
			party(offer, func(p *PartyStats) { p.Submitted++ })
			mu.Unlock()
		})
	}
	release()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return st, nil
	case <-ctx.Done():
		// Arrivals that will never fire — timers cancelled here, or
		// dropped by a scheduler closed mid-run — were generated but
		// never reached the engine; count them as refused, attributed to
		// their parties, so the books balance (Offered == Submitted +
		// Shed + Refused, per party as well as in aggregate) even on an
		// aborted run.
		refuse := func(i int) {
			if fired[i] {
				return
			}
			fired[i] = true
			st.Refused++
			party(offers[i], func(p *PartyStats) { p.Refused++ })
		}
		for i, t := range timers {
			if t.Stop() {
				wg.Done()
				mu.Lock()
				refuse(i)
				mu.Unlock()
			}
		}
		// Wait out callbacks already in flight — but only briefly: a
		// scheduler closed mid-load (an engine stopped under the run,
		// against this function's contract) drops its callbacks without
		// firing them, and cancellation must not hang on events that
		// will never run.
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
		mu.Lock()
		for i := range offers {
			refuse(i)
		}
		out := st
		mu.Unlock()
		return out, ctx.Err()
	}
}

// buildOffers generates whole barter rings (via the shared
// engine.LoadOffer shape, so open- and closed-loop harnesses measure the
// same workload) until the offer budget is met, deterministically from
// the seed. ringOf maps each offer back to its ring for ring-granular
// shedding.
func buildOffers(cfg Config) (offers []core.Offer, ringOf []int) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1)) // distinct stream from Schedule
	offers = make([]core.Offer, 0, cfg.Offers+cfg.RingMax)
	ringOf = make([]int, 0, cfg.Offers+cfg.RingMax)
	// Sharded placement: ring r homes to shard r mod Shards and draws
	// chains from that shard's pool; a CrossRatio draw instead alternates
	// the home pool with the next shard's, splitting the ring's members
	// across two shard books. The pools are a pure function of the
	// generation shard count, so the stream is fixed before any engine
	// exists.
	var pools [][]string
	if cfg.Shards > 1 {
		pools = shard.NewMap(cfg.Shards).Pools(4)
	}
	// ring numbers every emitted ring (organic and flood alike) so
	// ring-granular shedding stays well-defined; organic tracks only the
	// organic offer count, which alone satisfies the Offers budget —
	// flood rings ride on top. With FloodFactor == 0 the two counters
	// coincide and the stream is byte-identical to the classic generator.
	ring, floodRing, organic := 0, 0, 0
	for organic < cfg.Offers {
		size := cfg.RingMin + rng.Intn(cfg.RingMax-cfg.RingMin+1)
		group := ring
		if cfg.PartyPool > 0 {
			group = ring % cfg.PartyPool
		}
		cross := false
		if pools != nil && cfg.CrossRatio > 0 {
			cross = rng.Float64() < cfg.CrossRatio
		}
		for i := 0; i < size; i++ {
			if pools == nil {
				offers = append(offers, engine.LoadOffer(ring, i, size, group))
			} else {
				home := ring % cfg.Shards
				pool := pools[home]
				if cross && i%2 == 1 {
					pool = pools[(home+1)%cfg.Shards]
				}
				offers = append(offers, engine.LoadOfferOn(ring, i, size, group, pool[(ring+i)%len(pool)]))
			}
			ringOf = append(ringOf, ring)
		}
		organic += size
		ring++
		// Interleave the flooding coalition: FloodFactor extra rings from
		// the reused flooder identity pool after every organic ring, so
		// the flood is spread across the whole schedule rather than
		// bursting at either end.
		for f := 0; f < cfg.FloodFactor; f++ {
			fsize := cfg.RingMin + rng.Intn(cfg.RingMax-cfg.RingMin+1)
			fgroup := floodRing % cfg.FloodParties
			for i := 0; i < fsize; i++ {
				offers = append(offers, engine.FloodOffer(ring, i, fsize, fgroup))
				ringOf = append(ringOf, ring)
			}
			ring++
			floodRing++
		}
	}
	return offers, ringOf
}

// Report is an open-loop run's full result: the engine's service-level
// throughput (with latency percentiles and, under AdaptiveDelta, the Δ
// trajectory) plus the generator's own accounting.
type Report struct {
	metrics.Throughput
	// Load is the generator's intake accounting.
	Load Stats `json:"load"`
	// Profile names the arrival process that shaped the load.
	Profile string `json:"profile"`
	// OfferedRate is the configured average offered load, offers/sec.
	OfferedRate float64 `json:"offered_rate_per_sec"`
}

// Drive streams one open-loop load through an already-started engine and
// finishes it: Run, Stop (drain), conservation check, combined report.
// This is the shared tail behind RunOpenLoad and swapd's -arrival-rate
// mode, so the benchmark harness and the CLI can never diverge on the
// drain/verify/report contract.
func Drive(ctx context.Context, e DriveTarget, lcfg Config) (Report, error) {
	lcfg = lcfg.withDefaults()
	stats, err := Run(ctx, e, lcfg)
	if err != nil {
		e.Stop(ctx)
		return Report{}, fmt.Errorf("loadgen: open-loop run: %w", err)
	}
	if err := e.Stop(ctx); err != nil {
		return Report{}, fmt.Errorf("loadgen: drain: %w", err)
	}
	// A recovered engine is held to ledger integrity, not strict
	// no-stranded-escrow conservation: a hard crash mid-settlement can
	// orphan an escrowed leg by design (recovery refunds what the log
	// proves; see internal/durable).
	audit := e.VerifyConservation
	if e.Recovered() {
		audit = e.VerifyLedgerIntegrity
	}
	if err := audit(); err != nil {
		return Report{}, err
	}
	rep := Report{
		Throughput:  e.Report(),
		Load:        stats,
		Profile:     lcfg.Process.Name(),
		OfferedRate: lcfg.Rate,
	}
	if rep.SwapsFailed > 0 {
		return rep, fmt.Errorf("loadgen: %d swaps failed outright", rep.SwapsFailed)
	}
	return rep, nil
}

// RunOpenLoad is the open-loop counterpart of engine.RunLoad: it creates
// a fresh engine, streams one open-loop load through it via Drive, and
// returns the combined report. This is the harness swapbench's rate
// sweep, the open-loop benchmarks, and the examples drive.
func RunOpenLoad(ecfg engine.Config, lcfg Config) (Report, error) {
	e := engine.New(ecfg)
	if err := e.Start(); err != nil {
		return Report{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	return Drive(ctx, e, lcfg)
}

// RunShardedOpenLoad is RunOpenLoad against a sharded engine: fresh
// ShardedEngine, one open-loop load (generated with the engine's own
// shard count unless lcfg.Shards already says otherwise), Drive's
// drain/verify/report tail. The swapbench shard sweep runs on this.
func RunShardedOpenLoad(scfg shard.Config, lcfg Config) (Report, error) {
	if lcfg.Shards == 0 {
		if scfg.Shards > 0 {
			lcfg.Shards = scfg.Shards
		} else {
			lcfg.Shards = 4 // shard.New's default
		}
	}
	e := shard.New(scfg)
	if err := e.Start(); err != nil {
		return Report{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	return Drive(ctx, e, lcfg)
}
