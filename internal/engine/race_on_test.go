//go:build race

package engine

// raceEnabled widens virtual ticks in tests: the race detector slows every
// operation by 5–20×, and wall-clock jitter must stay inside the Δ bound.
const raceEnabled = true
