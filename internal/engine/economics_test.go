package engine

import (
	"sync"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// TestGriefingCostFixture is the economics layer's hand-checked anchor:
// one three-party ring with distinct amounts (5, 7, 11) and a silent
// leader, on the deterministic scheduler, priced to exact token-tick
// constants.
//
// The silent leader completes Phase One — all three contracts publish —
// then never reveals its secret, so every party waits out its own
// timelock and refunds (NoDeal). The timelock ladder staggers the
// refunds, so each arc's lock DURATION (resolve − publish ticks) is
// fixed by the schedule alone, independent of the amounts:
//
//	leader a:   5 tokens × 76 ticks = 380 token-ticks  (deviant side)
//	follower b: 7 tokens × 49 ticks = 343 token-ticks  (conforming)
//	follower c: 11 tokens × 22 ticks = 242 token-ticks (conforming)
//
// Griefing cost = conforming lock inside the deviant-carrying swap =
// 343 + 242 = 585; deviant lock 380; factor 585/380. Nothing transfers
// in a NoDeal, so both bribery extremes — and the margin — are zero.
// Any drift in these constants means the schedule, the span capture, or
// the integral arithmetic changed.
func TestGriefingCostFixture(t *testing.T) {
	cfg := Config{
		Workers:       2,
		ClearInterval: time.Millisecond,
		Tick:          time.Millisecond,
		Delta:         15,
		Seed:          42,
		Deterministic: true,
	}
	cfg.Behaviors = func(setup *core.Setup, seed int64) SwapBehaviors {
		spec := setup.Spec
		lv := spec.Leaders[0]
		idx, _ := spec.LeaderIndex(lv)
		return SwapBehaviors{
			Behaviors: map[digraph.Vertex]core.Behavior{lv: adversary.SilentLeader(idx)},
			Deviants:  map[digraph.Vertex]string{lv: "silent-leader"},
		}
	}
	e := New(cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	amounts := map[string]uint64{"a": 5, "b": 7, "c": 11}
	parties := []string{"a", "b", "c"}
	sc := e.Scheduler()
	release := sc.Hold()
	var wg sync.WaitGroup
	for i, p := range parties {
		o := core.Offer{
			Party: chain.PartyID("fix-" + p),
			Give: []core.ProposedTransfer{{
				To:     chain.PartyID("fix-" + parties[(i+1)%3]),
				Chain:  "chain-" + p,
				Asset:  chain.AssetID("asset-" + p),
				Amount: amounts[p],
			}},
		}
		wg.Add(1)
		sc.At(vtime.Ticks(i+1), func() {
			defer wg.Done()
			if _, err := e.Submit(o); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	release()
	wg.Wait()
	drainAndStop(t, e)
	if err := e.VerifyConservation(); err != nil {
		t.Fatal(err)
	}

	econ := e.Report().Economics
	if econ == nil {
		t.Fatal("economics report missing")
	}
	if econ.ConformingLockTokenTicks != 585 || econ.DeviantLockTokenTicks != 380 {
		t.Fatalf("lock integrals %d/%d, want 585 conforming (7×49 + 11×22) / 380 deviant (5×76)",
			econ.ConformingLockTokenTicks, econ.DeviantLockTokenTicks)
	}
	if econ.GriefingCostTokenTicks != 585 || econ.GriefedSwaps != 1 {
		t.Fatalf("griefing %d over %d swaps, want the full conforming lock 585 over 1",
			econ.GriefingCostTokenTicks, econ.GriefedSwaps)
	}
	if want := 585.0 / 380.0; econ.GriefingFactor != want {
		t.Fatalf("griefing factor %v, want %v", econ.GriefingFactor, want)
	}
	if econ.BestCoalitionGain != 0 || econ.WorstConformingLoss != 0 || econ.BriberySafetyMargin != 0 {
		t.Fatalf("NoDeal moved value: %+v", econ)
	}

	// Per-order locks carry the same integrals (lock = amount × duration,
	// so the staggered refund ladder is visible as 76/49/22 tick holds),
	// and their sum closes against the report's split.
	wantLocks := map[string]uint64{"fix-a": 380, "fix-b": 343, "fix-c": 242}
	var sum uint64
	for _, o := range e.Orders() {
		if o.Status != StatusSettled {
			t.Fatalf("order %d not settled: %+v", o.ID, o)
		}
		if o.Class != outcome.NoDeal {
			t.Fatalf("order %d class %s, want NoDeal", o.ID, o.Class)
		}
		if o.LockTickValue != wantLocks[o.Party] {
			t.Fatalf("party %s locked %d token-ticks, want %d",
				o.Party, o.LockTickValue, wantLocks[o.Party])
		}
		sum += o.LockTickValue
	}
	if sum != econ.ConformingLockTokenTicks+econ.DeviantLockTokenTicks {
		t.Fatalf("per-order locks sum to %d, report splits to %d+%d",
			sum, econ.ConformingLockTokenTicks, econ.DeviantLockTokenTicks)
	}
}
