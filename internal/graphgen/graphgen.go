// Package graphgen builds the swap-digraph families used throughout the
// tests, examples, and experiments: the paper's own figures (the three-way
// swap of Figure 1, the two-leader triangle of Figures 7 and 8), classic
// families for scaling sweeps (directed cycles, bidirectional cycles,
// cliques, flowers), seeded random strongly-connected digraphs, and the
// counterexample shapes used by the impossibility experiments.
package graphgen

import (
	"fmt"
	"math/rand"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// ThreeWay returns the paper's Figure 1 digraph: Alice -> Bob (alt-coins),
// Bob -> Carol (bitcoins), Carol -> Alice (the Cadillac title). Alice is
// the natural single leader.
func ThreeWay() *digraph.Digraph {
	d := digraph.New()
	a := d.AddVertex("Alice")
	b := d.AddVertex("Bob")
	c := d.AddVertex("Carol")
	d.MustAddArc(a, b)
	d.MustAddArc(b, c)
	d.MustAddArc(c, a)
	return d
}

// TwoLeaderTriangle returns the complete digraph on three vertexes used in
// Figures 6 (right), 7, and 8: every follower subdigraph of a single vertex
// contains a 2-cycle, so any feedback vertex set needs two vertexes.
func TwoLeaderTriangle() *digraph.Digraph {
	d := digraph.New()
	a := d.AddVertex("A")
	b := d.AddVertex("B")
	c := d.AddVertex("C")
	d.MustAddArc(a, b)
	d.MustAddArc(b, a)
	d.MustAddArc(b, c)
	d.MustAddArc(c, b)
	d.MustAddArc(c, a)
	d.MustAddArc(a, c)
	return d
}

// Cycle returns the directed cycle on n >= 2 vertexes: the canonical
// single-leader swap ring. Diameter n-1.
func Cycle(n int) *digraph.Digraph {
	if n < 2 {
		panic(fmt.Sprintf("graphgen.Cycle: need n >= 2, got %d", n))
	}
	d := digraph.New()
	for i := 0; i < n; i++ {
		d.AddVertex(fmt.Sprintf("P%d", i))
	}
	for i := 0; i < n; i++ {
		d.MustAddArc(digraph.Vertex(i), digraph.Vertex((i+1)%n))
	}
	return d
}

// BidirCycle returns the cycle on n >= 3 vertexes with arcs in both
// directions: a 2|V|-arc strongly connected digraph whose minimum FVS
// grows with n (every 2-cycle must be broken).
func BidirCycle(n int) *digraph.Digraph {
	if n < 3 {
		panic(fmt.Sprintf("graphgen.BidirCycle: need n >= 3, got %d", n))
	}
	d := digraph.New()
	for i := 0; i < n; i++ {
		d.AddVertex(fmt.Sprintf("P%d", i))
	}
	for i := 0; i < n; i++ {
		next := digraph.Vertex((i + 1) % n)
		d.MustAddArc(digraph.Vertex(i), next)
		d.MustAddArc(next, digraph.Vertex(i))
	}
	return d
}

// Clique returns the complete digraph on n >= 2 vertexes: every ordered
// pair is an arc. Minimum FVS has n-1 vertexes; diameter n-1.
func Clique(n int) *digraph.Digraph {
	if n < 2 {
		panic(fmt.Sprintf("graphgen.Clique: need n >= 2, got %d", n))
	}
	d := digraph.New()
	for i := 0; i < n; i++ {
		d.AddVertex(fmt.Sprintf("P%d", i))
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				d.MustAddArc(digraph.Vertex(u), digraph.Vertex(v))
			}
		}
	}
	return d
}

// Flower returns k >= 1 directed petal cycles, each with petalLen >= 1
// internal vertexes, all sharing a single center vertex. The center alone
// is a feedback vertex set, which makes flowers the canonical single-leader
// family of Section 4.6 (Figure 6, left, is the k=1 case).
func Flower(k, petalLen int) *digraph.Digraph {
	if k < 1 || petalLen < 1 {
		panic(fmt.Sprintf("graphgen.Flower: need k, petalLen >= 1, got %d, %d", k, petalLen))
	}
	d := digraph.New()
	center := d.AddVertex("L")
	for p := 0; p < k; p++ {
		prev := center
		for i := 0; i < petalLen; i++ {
			v := d.AddVertex(fmt.Sprintf("P%d.%d", p, i))
			d.MustAddArc(prev, v)
			prev = v
		}
		d.MustAddArc(prev, center)
	}
	return d
}

// RandomStronglyConnected returns a random strongly connected digraph on n
// vertexes: a random Hamiltonian cycle guarantees strong connectivity, and
// every other ordered pair becomes an arc with probability density. The
// result is deterministic for a given (n, density, seed).
func RandomStronglyConnected(n int, density float64, seed int64) *digraph.Digraph {
	if n < 2 {
		panic(fmt.Sprintf("graphgen.RandomStronglyConnected: need n >= 2, got %d", n))
	}
	r := rand.New(rand.NewSource(seed))
	d := digraph.New()
	for i := 0; i < n; i++ {
		d.AddVertex(fmt.Sprintf("P%d", i))
	}
	perm := r.Perm(n)
	onCycle := make(map[[2]int]bool, n)
	for i := 0; i < n; i++ {
		u, v := perm[i], perm[(i+1)%n]
		d.MustAddArc(digraph.Vertex(u), digraph.Vertex(v))
		onCycle[[2]int{u, v}] = true
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || onCycle[[2]int{u, v}] {
				continue
			}
			if r.Float64() < density {
				d.MustAddArc(digraph.Vertex(u), digraph.Vertex(v))
			}
		}
	}
	return d
}

// NotStronglyConnected returns the Lemma 3.4 counterexample shape: two
// directed cycles X = {0..nx-1} and Y = {nx..nx+ny-1} joined by a single
// one-way arc from X to Y. Y cannot reach X, so coalition X can free-ride.
func NotStronglyConnected(nx, ny int) *digraph.Digraph {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("graphgen.NotStronglyConnected: need nx, ny >= 2, got %d, %d", nx, ny))
	}
	d := digraph.New()
	for i := 0; i < nx; i++ {
		d.AddVertex(fmt.Sprintf("X%d", i))
	}
	for i := 0; i < ny; i++ {
		d.AddVertex(fmt.Sprintf("Y%d", i))
	}
	for i := 0; i < nx; i++ {
		d.MustAddArc(digraph.Vertex(i), digraph.Vertex((i+1)%nx))
	}
	for i := 0; i < ny; i++ {
		d.MustAddArc(digraph.Vertex(nx+i), digraph.Vertex(nx+(i+1)%ny))
	}
	d.MustAddArc(digraph.Vertex(0), digraph.Vertex(nx))
	return d
}

// MultiArcPair returns a two-party swap where Alice transfers k parallel
// assets to Bob and Bob transfers one back — the directed-multigraph
// extension mentioned in Section 5.
func MultiArcPair(k int) *digraph.Digraph {
	if k < 1 {
		panic(fmt.Sprintf("graphgen.MultiArcPair: need k >= 1, got %d", k))
	}
	d := digraph.New()
	a := d.AddVertex("Alice")
	b := d.AddVertex("Bob")
	for i := 0; i < k; i++ {
		d.MustAddArc(a, b)
	}
	d.MustAddArc(b, a)
	return d
}
