package graphgen

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

func TestThreeWay(t *testing.T) {
	d := ThreeWay()
	if d.NumVertices() != 3 || d.NumArcs() != 3 {
		t.Fatalf("sizes = (%d, %d), want (3, 3)", d.NumVertices(), d.NumArcs())
	}
	if !d.StronglyConnected() {
		t.Error("three-way swap must be strongly connected")
	}
	alice, _ := d.VertexByName("Alice")
	if !d.IsFeedbackVertexSet([]digraph.Vertex{alice}) {
		t.Error("Alice alone should be an FVS")
	}
	if diam, _ := d.Diameter(); diam != 2 {
		t.Errorf("diameter = %d, want 2", diam)
	}
}

func TestTwoLeaderTriangle(t *testing.T) {
	d := TwoLeaderTriangle()
	if d.NumArcs() != 6 {
		t.Fatalf("NumArcs = %d, want 6", d.NumArcs())
	}
	if !d.StronglyConnected() {
		t.Error("must be strongly connected")
	}
	min := d.ExactMinFVS()
	if len(min) != 2 {
		t.Errorf("minimum FVS size = %d, want 2 (the paper's two-leader case)", len(min))
	}
	// No single vertex suffices.
	for v := 0; v < 3; v++ {
		if d.IsFeedbackVertexSet([]digraph.Vertex{digraph.Vertex(v)}) {
			t.Errorf("single vertex %d should not be an FVS", v)
		}
	}
}

func TestCycle(t *testing.T) {
	for _, n := range []int{2, 3, 7} {
		d := Cycle(n)
		if d.NumArcs() != n {
			t.Errorf("Cycle(%d) arcs = %d, want %d", n, d.NumArcs(), n)
		}
		if !d.StronglyConnected() {
			t.Errorf("Cycle(%d) should be strongly connected", n)
		}
		if min := d.ExactMinFVS(); len(min) != 1 {
			t.Errorf("Cycle(%d) min FVS = %v, want size 1", n, min)
		}
		if n <= digraph.MaxExactVertices {
			if diam, _ := d.Diameter(); diam != n-1 {
				t.Errorf("Cycle(%d) diameter = %d, want %d", n, diam, n-1)
			}
		}
	}
}

func TestBidirCycle(t *testing.T) {
	d := BidirCycle(5)
	if d.NumArcs() != 10 {
		t.Fatalf("arcs = %d, want 10", d.NumArcs())
	}
	if !d.StronglyConnected() {
		t.Error("should be strongly connected")
	}
	// Every 2-cycle (i, i+1) must lose a vertex, so a minimum FVS is a
	// minimum vertex cover of the undirected 5-cycle: ⌈5/2⌉ = 3.
	min := d.ExactMinFVS()
	if !d.IsFeedbackVertexSet(min) {
		t.Errorf("ExactMinFVS returned a non-FVS: %v", min)
	}
	if len(min) != 3 {
		t.Errorf("BidirCycle(5) min FVS size = %d, want 3", len(min))
	}
}

func TestClique(t *testing.T) {
	d := Clique(4)
	if d.NumArcs() != 12 {
		t.Fatalf("arcs = %d, want 12", d.NumArcs())
	}
	min := d.ExactMinFVS()
	if len(min) != 3 {
		t.Errorf("Clique(4) min FVS size = %d, want n-1 = 3", len(min))
	}
}

func TestFlower(t *testing.T) {
	d := Flower(3, 2)
	if d.NumVertices() != 7 { // center + 3 petals × 2
		t.Fatalf("vertexes = %d, want 7", d.NumVertices())
	}
	if !d.StronglyConnected() {
		t.Error("flower should be strongly connected")
	}
	center, _ := d.VertexByName("L")
	if !d.IsFeedbackVertexSet([]digraph.Vertex{center}) {
		t.Error("center should be a single-vertex FVS")
	}
	if min := d.ExactMinFVS(); len(min) != 1 {
		t.Errorf("min FVS = %v, want size 1", min)
	}
}

func TestRandomStronglyConnected(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		d := RandomStronglyConnected(8, 0.3, seed)
		if !d.StronglyConnected() {
			t.Errorf("seed %d: not strongly connected", seed)
		}
	}
	// Determinism: same seed, same graph.
	a := RandomStronglyConnected(8, 0.3, 7)
	b := RandomStronglyConnected(8, 0.3, 7)
	if !digraph.StructuralEqual(a, b) {
		t.Error("same seed should give the same graph")
	}
	c := RandomStronglyConnected(8, 0.3, 8)
	if digraph.StructuralEqual(a, c) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestNotStronglyConnected(t *testing.T) {
	d := NotStronglyConnected(3, 3)
	if d.StronglyConnected() {
		t.Fatal("must not be strongly connected")
	}
	// X can reach Y but not vice versa.
	if !d.Reachable(0, 3) {
		t.Error("X should reach Y")
	}
	if d.Reachable(3, 0) {
		t.Error("Y should not reach X")
	}
}

func TestMultiArcPair(t *testing.T) {
	d := MultiArcPair(3)
	if d.NumArcs() != 4 {
		t.Fatalf("arcs = %d, want 4", d.NumArcs())
	}
	if !d.StronglyConnected() {
		t.Error("pair should be strongly connected")
	}
	a, _ := d.VertexByName("Alice")
	b, _ := d.VertexByName("Bob")
	if got := len(d.ArcsBetween(a, b)); got != 3 {
		t.Errorf("parallel arcs = %d, want 3", got)
	}
	if got := len(d.ArcsBetween(b, a)); got != 1 {
		t.Errorf("return arcs = %d, want 1", got)
	}
}

func TestPanicsOnBadSizes(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"Cycle(1)", func() { Cycle(1) }},
		{"BidirCycle(2)", func() { BidirCycle(2) }},
		{"Clique(1)", func() { Clique(1) }},
		{"Flower(0,1)", func() { Flower(0, 1) }},
		{"RandomStronglyConnected(1)", func() { RandomStronglyConnected(1, 0.5, 1) }},
		{"NotStronglyConnected(1,2)", func() { NotStronglyConnected(1, 2) }},
		{"MultiArcPair(0)", func() { MultiArcPair(0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.fn()
		})
	}
}
