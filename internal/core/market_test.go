package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
)

// threeWayOffers is the paper's motivating deal as offers: Alice pays
// alt-coins to Bob, Bob pays bitcoins to Carol, Carol signs over the
// Cadillac title to Alice.
func threeWayOffers() []Offer {
	return []Offer{
		{Party: "alice", Give: []ProposedTransfer{{To: "bob", Chain: "altcoin", Asset: "alt-100", Amount: 100}}},
		{Party: "bob", Give: []ProposedTransfer{{To: "carol", Chain: "bitcoin", Asset: "btc-1", Amount: 1}}},
		{Party: "carol", Give: []ProposedTransfer{{To: "alice", Chain: "titles", Asset: "cadillac", Amount: 1}}},
	}
}

func TestClearThreeWay(t *testing.T) {
	setup, err := Clear(threeWayOffers(), Config{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatalf("Clear: %v", err)
	}
	spec := setup.Spec
	if spec.D.NumVertices() != 3 || spec.D.NumArcs() != 3 {
		t.Fatalf("digraph = %v", spec.D)
	}
	if !spec.D.StronglyConnected() {
		t.Error("cleared digraph must be strongly connected")
	}
	if len(spec.Leaders) != 1 {
		t.Errorf("leaders = %v, want a single leader for a 3-cycle", spec.Leaders)
	}
	// Parties are sorted: alice=0, bob=1, carol=2.
	if spec.PartyOf(0) != "alice" || spec.PartyOf(1) != "bob" || spec.PartyOf(2) != "carol" {
		t.Errorf("party order = %v", spec.Parties)
	}
	// The cleared swap actually runs to Deal.
	res, err := NewRunner(setup, Options{Seed: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Error("cleared swap should end AllDeal")
	}
}

func TestClearRejections(t *testing.T) {
	base := threeWayOffers()
	tests := []struct {
		name   string
		offers []Offer
		want   error
	}{
		{
			name:   "single offer",
			offers: base[:1],
			want:   ErrSpecShape,
		},
		{
			name: "empty give",
			offers: []Offer{
				{Party: "alice"},
				{Party: "bob", Give: []ProposedTransfer{{To: "alice", Chain: "c", Asset: "x"}}},
			},
			want: ErrEmptyOffer,
		},
		{
			name: "self transfer",
			offers: []Offer{
				{Party: "alice", Give: []ProposedTransfer{{To: "alice", Chain: "c", Asset: "x"}}},
				{Party: "bob", Give: []ProposedTransfer{{To: "alice", Chain: "c2", Asset: "y"}}},
			},
			want: ErrSelfTransfer,
		},
		{
			name: "unknown recipient",
			offers: []Offer{
				{Party: "alice", Give: []ProposedTransfer{{To: "mallory", Chain: "c", Asset: "x"}}},
				{Party: "bob", Give: []ProposedTransfer{{To: "alice", Chain: "c2", Asset: "y"}}},
			},
			want: ErrUnknownParty,
		},
		{
			name:   "duplicate party",
			offers: append(append([]Offer{}, base...), base[0]),
			want:   ErrDuplicateOffer,
		},
		{
			name: "not strongly connected",
			offers: []Offer{
				{Party: "alice", Give: []ProposedTransfer{{To: "bob", Chain: "c", Asset: "x"}}},
				{Party: "bob", Give: []ProposedTransfer{{To: "alice", Chain: "c2", Asset: "y"}}},
				{Party: "carol", Give: []ProposedTransfer{{To: "alice", Chain: "c3", Asset: "z"}}},
			},
			want: ErrNotStronglyConnected,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Clear(tt.offers, Config{Rand: rand.New(rand.NewSource(1))})
			if !errors.Is(err, tt.want) {
				t.Errorf("Clear err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestClearRejectsPresetPartiesOrAssets(t *testing.T) {
	if _, err := Clear(threeWayOffers(), Config{Parties: []chain.PartyID{"x"}}); !errors.Is(err, ErrSpecShape) {
		t.Errorf("preset parties err = %v, want ErrSpecShape", err)
	}
}

func TestVerifyPlan(t *testing.T) {
	offers := threeWayOffers()
	setup, err := Clear(offers, Config{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offers {
		if err := VerifyPlan(setup.Spec, o); err != nil {
			t.Errorf("VerifyPlan(%s): %v", o.Party, err)
		}
	}
	// A party not in the plan.
	if err := VerifyPlan(setup.Spec, Offer{Party: "mallory"}); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("unknown party err = %v, want ErrPlanMismatch", err)
	}
	// An offer whose transfer differs from the plan.
	bad := Offer{Party: "alice", Give: []ProposedTransfer{{To: "carol", Chain: "altcoin", Asset: "alt-100", Amount: 100}}}
	if err := VerifyPlan(setup.Spec, bad); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("tampered plan err = %v, want ErrPlanMismatch", err)
	}
	// An offer with a different amount.
	bad2 := Offer{Party: "alice", Give: []ProposedTransfer{{To: "bob", Chain: "altcoin", Asset: "alt-100", Amount: 999}}}
	if err := VerifyPlan(setup.Spec, bad2); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("amount mismatch err = %v, want ErrPlanMismatch", err)
	}
	// An offer with fewer transfers than the plan assigns.
	bad3 := Offer{Party: "alice", Give: nil}
	if err := VerifyPlan(setup.Spec, bad3); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("count mismatch err = %v, want ErrPlanMismatch", err)
	}
}

func TestClearBarterRing(t *testing.T) {
	// A five-party barter ring with one party giving two assets (multiple
	// leaving arcs), kidney-exchange style.
	offers := []Offer{
		{Party: "p1", Give: []ProposedTransfer{{To: "p2", Chain: "c1", Asset: "a1", Amount: 1}}},
		{Party: "p2", Give: []ProposedTransfer{{To: "p3", Chain: "c2", Asset: "a2", Amount: 1}}},
		{Party: "p3", Give: []ProposedTransfer{
			{To: "p4", Chain: "c3", Asset: "a3", Amount: 1},
			{To: "p1", Chain: "c5", Asset: "a5", Amount: 1},
		}},
		{Party: "p4", Give: []ProposedTransfer{{To: "p5", Chain: "c4", Asset: "a4", Amount: 1}}},
		{Party: "p5", Give: []ProposedTransfer{{To: "p1", Chain: "c6", Asset: "a6", Amount: 1}}},
	}
	setup, err := Clear(offers, Config{Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatalf("Clear: %v", err)
	}
	res, err := NewRunner(setup, Options{Seed: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Error("barter ring should end AllDeal")
	}
}
