package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
)

func give(to chain.PartyID, ch string, asset chain.AssetID) ProposedTransfer {
	return ProposedTransfer{To: to, Chain: ch, Asset: asset, Amount: 1}
}

func ring(parties ...chain.PartyID) []Offer {
	offers := make([]Offer, len(parties))
	for i, p := range parties {
		next := parties[(i+1)%len(parties)]
		offers[i] = Offer{Party: p, Give: []ProposedTransfer{
			give(next, "chain-"+string(p), chain.AssetID("asset-"+string(p))),
		}}
	}
	return offers
}

func TestPartitionDisjointRings(t *testing.T) {
	offers := append(ring("a", "b", "c"), ring("x", "y")...)
	b, err := PartitionOffers(offers)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Groups) != 2 {
		t.Fatalf("want 2 groups, got %d", len(b.Groups))
	}
	if len(b.Residual) != 0 {
		t.Fatalf("want no residual, got %d", len(b.Residual))
	}
	if len(b.Groups[0]) != 3 || b.Groups[0][0].Party != "a" {
		t.Fatalf("group 0 wrong: %+v", b.Groups[0])
	}
	if len(b.Groups[1]) != 2 || b.Groups[1][0].Party != "x" {
		t.Fatalf("group 1 wrong: %+v", b.Groups[1])
	}
}

func TestPartitionResidualMissingRecipient(t *testing.T) {
	// "c" transfers to "d", who submitted nothing: the whole a->b->c ring
	// cannot clear because dropping c breaks connectivity for a and b too.
	offers := ring("a", "b", "c")
	offers[2].Give = append(offers[2].Give, give("d", "xchain", "xasset"))
	b, err := PartitionOffers(offers)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Groups) != 0 {
		t.Fatalf("want no groups, got %d", len(b.Groups))
	}
	if len(b.Residual) != 3 {
		t.Fatalf("want 3 residual offers, got %d", len(b.Residual))
	}
}

func TestPartitionCascadingRemoval(t *testing.T) {
	// A healthy pair (x,y) plus a chain a->b->c->missing: the pair must
	// survive the cascade that removes a, b, and c.
	offers := append(ring("x", "y"),
		Offer{Party: "a", Give: []ProposedTransfer{give("b", "c1", "s1")}},
		Offer{Party: "b", Give: []ProposedTransfer{give("c", "c2", "s2")}},
		Offer{Party: "c", Give: []ProposedTransfer{give("nobody", "c3", "s3")}},
	)
	b, err := PartitionOffers(offers)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Groups) != 1 || len(b.Groups[0]) != 2 {
		t.Fatalf("want the (x,y) group to survive, got %+v", b.Groups)
	}
	if len(b.Residual) != 3 {
		t.Fatalf("want 3 residual, got %d", len(b.Residual))
	}
}

func TestPartitionRejectsStructuralErrors(t *testing.T) {
	if _, err := PartitionOffers([]Offer{{Party: "a"}}); !errors.Is(err, ErrEmptyOffer) {
		t.Fatalf("want ErrEmptyOffer, got %v", err)
	}
	dup := append(ring("a", "b"), Offer{Party: "a", Give: []ProposedTransfer{give("b", "c", "s")}})
	if _, err := PartitionOffers(dup); !errors.Is(err, ErrDuplicateOffer) {
		t.Fatalf("want ErrDuplicateOffer, got %v", err)
	}
	self := []Offer{{Party: "a", Give: []ProposedTransfer{give("a", "c", "s")}}}
	if _, err := PartitionOffers(self); !errors.Is(err, ErrSelfTransfer) {
		t.Fatalf("want ErrSelfTransfer, got %v", err)
	}
}

func TestClearBatchProducesValidTaggedSetups(t *testing.T) {
	offers := append(ring("a", "b", "c"), ring("x", "y")...)
	setups, residual, err := ClearBatch(offers, Config{
		Tag:  "round7",
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(setups) != 2 || len(residual) != 0 {
		t.Fatalf("want 2 setups and no residual, got %d/%d", len(setups), len(residual))
	}
	seen := map[chain.ContractID]bool{}
	for _, s := range setups {
		if err := s.Spec.Validate(false); err != nil {
			t.Fatalf("cleared spec invalid: %v", err)
		}
		if s.Spec.Tag == "" {
			t.Fatal("cleared spec missing tag")
		}
		for id := 0; id < s.Spec.D.NumArcs(); id++ {
			cid := s.Spec.ContractID(id)
			if seen[cid] {
				t.Fatalf("contract ID %s reused across swaps", cid)
			}
			seen[cid] = true
		}
	}
	// Every party can still verify the plan that contains it.
	for _, o := range offers {
		verified := false
		for _, s := range setups {
			if err := VerifyPlan(s.Spec, o); err == nil {
				verified = true
				break
			}
		}
		if !verified {
			t.Fatalf("offer from %s verifies against no cleared plan", o.Party)
		}
	}
}
