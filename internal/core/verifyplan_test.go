package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// These tests play a malicious clearing service: it publishes a plan that
// deviates from what the parties offered, and VerifyPlan (plus Validate)
// must catch every deviation before anyone escrows an asset.

func clearedRing(t *testing.T) ([]Offer, *Setup) {
	t.Helper()
	offers := ring("alice", "bob", "carol")
	setup, err := Clear(offers, Config{Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	return offers, setup
}

func TestVerifyPlanRejectsTamperedAmount(t *testing.T) {
	offers, setup := clearedRing(t)
	// The service inflates the amount on alice's leaving arc.
	v, _ := setup.Spec.VertexOf("alice")
	arcID := setup.Spec.D.Out(v)[0]
	setup.Spec.Assets[arcID].Amount += 41
	if err := VerifyPlan(setup.Spec, offers[0]); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("tampered amount: err = %v, want ErrPlanMismatch", err)
	}
	// The untouched parties still verify.
	for _, o := range offers[1:] {
		if err := VerifyPlan(setup.Spec, o); err != nil {
			t.Fatalf("untampered party %s: %v", o.Party, err)
		}
	}
}

func TestVerifyPlanRejectsSwappedRecipient(t *testing.T) {
	offers, setup := clearedRing(t)
	// The service relabels carol's vertex as "eve": bob's transfer now
	// pays a stranger instead of the recipient he named.
	carolV, _ := setup.Spec.VertexOf("carol")
	setup.Spec.Parties[carolV] = "eve"
	if err := VerifyPlan(setup.Spec, offers[1]); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("swapped recipient: err = %v, want ErrPlanMismatch", err)
	}
}

func TestVerifyPlanRejectsDroppedOffer(t *testing.T) {
	// The service drops carol entirely and publishes a two-party plan.
	offers := ring("alice", "bob", "carol")
	pair, err := Clear(ring("alice", "bob"), Config{Rand: rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPlan(pair.Spec, offers[2]); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("dropped party: err = %v, want ErrPlanMismatch", err)
	}
	// bob offered his asset to carol; the two-party plan reroutes it to
	// alice, which bob must also reject.
	if err := VerifyPlan(pair.Spec, offers[1]); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("rerouted transfer: err = %v, want ErrPlanMismatch", err)
	}
}

func TestVerifyPlanRejectsExtraObligation(t *testing.T) {
	// The service assigns bob an extra leaving transfer he never offered.
	rigged := ring("alice", "bob", "carol")
	rigged[1].Give = append(rigged[1].Give, give("alice", "bonus-chain", "bonus-asset"))
	setup, err := Clear(rigged, Config{Rand: rand.New(rand.NewSource(12))})
	if err != nil {
		t.Fatal(err)
	}
	honest := ring("alice", "bob", "carol")[1]
	if err := VerifyPlan(setup.Spec, honest); !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("extra obligation: err = %v, want ErrPlanMismatch", err)
	}
}

func TestValidateRejectsNonSCCPlan(t *testing.T) {
	// A plan whose digraph is not strongly connected must not validate:
	// a party could pay without any cycle guaranteeing payment back
	// (Theorem 3.5). The service cannot produce this via Clear, so build
	// the spec directly the way a rigged service would publish it.
	d := digraph.New()
	a := d.AddVertex("alice")
	b := d.AddVertex("bob")
	c := d.AddVertex("carol")
	d.MustAddArc(a, b)
	d.MustAddArc(b, c) // no arc back to alice
	_, err := NewSetup(d, Config{Rand: rand.New(rand.NewSource(13))})
	if !errors.Is(err, ErrNotStronglyConnected) {
		t.Fatalf("non-SCC plan: err = %v, want ErrNotStronglyConnected", err)
	}
}

func TestValidateRejectsNonFVSLeaders(t *testing.T) {
	// Leaders that do not break every cycle (Theorem 4.12): vertex 0 of a
	// 4-cycle with a chord leaves the 1->2->3->1 cycle leaderless... use
	// two disjoint cycles sharing no vertex with the chosen leader.
	d := digraph.New()
	for i := 0; i < 4; i++ {
		d.AddVertex("")
	}
	d.MustAddArc(0, 1)
	d.MustAddArc(1, 0)
	d.MustAddArc(2, 3)
	d.MustAddArc(3, 2)
	d.MustAddArc(1, 2)
	d.MustAddArc(2, 1)
	_, err := NewSetup(d, Config{
		Leaders: []digraph.Vertex{0},
		Rand:    rand.New(rand.NewSource(14)),
	})
	if !errors.Is(err, ErrLeadersNotFVS) {
		t.Fatalf("non-FVS leaders: err = %v, want ErrLeadersNotFVS", err)
	}
}
