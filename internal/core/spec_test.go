package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func TestNewSetupDefaults(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	spec := setup.Spec
	if spec.Kind != KindGeneral {
		t.Errorf("Kind = %v, want general", spec.Kind)
	}
	if spec.Delta != DefaultDelta {
		t.Errorf("Delta = %d, want %d", spec.Delta, DefaultDelta)
	}
	if spec.Start != vtime.Ticks(DefaultDelta) {
		t.Errorf("Start = %d, want %d", spec.Start, DefaultDelta)
	}
	if len(spec.Leaders) != 1 {
		t.Errorf("Leaders = %v, want exact min FVS of size 1", spec.Leaders)
	}
	if spec.DiamBound != 2 {
		t.Errorf("DiamBound = %d, want 2", spec.DiamBound)
	}
	if spec.PartyOf(0) != "Alice" {
		t.Errorf("PartyOf(0) = %s, want vertex name", spec.PartyOf(0))
	}
	if len(setup.Secrets) != 1 || !setup.Secrets[0].Matches(spec.Locks[0]) {
		t.Error("leader secret must open its lock")
	}
}

func TestNewSetupValidationErrors(t *testing.T) {
	r := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	tests := []struct {
		name string
		d    *digraph.Digraph
		cfg  Config
		want error
	}{
		{
			name: "not strongly connected",
			d:    graphgen.NotStronglyConnected(2, 2),
			cfg:  Config{Rand: r()},
			want: ErrNotStronglyConnected,
		},
		{
			name: "leaders not FVS",
			d:    graphgen.TwoLeaderTriangle(),
			cfg:  Config{Rand: r(), Leaders: []digraph.Vertex{0}},
			want: ErrLeadersNotFVS,
		},
		{
			name: "single vertex",
			d:    digraph.FromArcs(1),
			cfg:  Config{Rand: r()},
			want: ErrSpecShape,
		},
		{
			name: "single-leader kind with two leaders",
			d:    graphgen.TwoLeaderTriangle(),
			cfg:  Config{Rand: r(), Kind: KindSingleLeader},
			want: ErrSpecShape,
		},
		{
			name: "start before one delta",
			d:    graphgen.ThreeWay(),
			cfg:  Config{Rand: r(), Start: 5, Delta: 10},
			want: ErrSpecShape,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSetup(tt.d, tt.cfg)
			if !errors.Is(err, tt.want) {
				t.Errorf("NewSetup err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestNewSetupAllowUnsafe(t *testing.T) {
	d := graphgen.NotStronglyConnected(2, 2)
	if _, err := NewSetup(d, Config{Rand: rand.New(rand.NewSource(1)), AllowUnsafe: true}); err != nil {
		t.Errorf("AllowUnsafe should skip the strong-connectivity check: %v", err)
	}
}

func TestTimelockStaircase(t *testing.T) {
	// Three-cycle, leader Alice, Δ=10, start=100, diam=2. Timelocks per
	// arc for lock 0 are Start + (2 + maxpath(tail, Alice))·Δ:
	// arc 0 (A->B): tail B, maxpath 2 -> 140
	// arc 1 (B->C): tail C, maxpath 1 -> 130
	// arc 2 (C->A): tail A, maxpath 0 -> 120
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
	want := map[int]vtime.Ticks{0: 140, 1: 130, 2: 120}
	for arc, w := range want {
		tl := setup.Spec.Timelocks(arc)
		if len(tl) != 1 || tl[0] != w {
			t.Errorf("Timelocks(%d) = %v, want [%d]", arc, tl, w)
		}
	}
	// The staircase property of Lemma 4.13: each arc entering a follower
	// expires strictly later than the arcs leaving it.
	if !setup.Spec.Timelocks(0)[0].After(setup.Spec.Timelocks(1)[0]) {
		t.Error("entering Bob should outlive leaving Bob")
	}
}

func TestHTLCTimeoutStaircase(t *testing.T) {
	// Section 4.6: (diam + D(v, leader) + 1)·Δ over the three-cycle:
	// arc 0 -> (2+2+1)Δ = 150, arc 1 -> (2+1+1)Δ = 140, arc 2 -> (2+0+1)Δ = 130.
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Kind: KindSingleLeader, Delta: 10, Start: 100})
	want := map[int]vtime.Ticks{0: 150, 1: 140, 2: 130}
	for arc, w := range want {
		if got := setup.Spec.HTLCTimeout(arc); got != w {
			t.Errorf("HTLCTimeout(%d) = %d, want %d", arc, got, w)
		}
	}
}

func TestUniformTimeoutsAreEqual(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Kind: KindUniformTimeout, Delta: 10, Start: 100})
	first := setup.Spec.HTLCTimeout(0)
	for arc := 1; arc < 3; arc++ {
		if setup.Spec.HTLCTimeout(arc) != first {
			t.Errorf("uniform timeouts differ: arc %d", arc)
		}
	}
}

func TestContractParamsConsistency(t *testing.T) {
	setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{})
	spec := setup.Spec
	for id := 0; id < spec.D.NumArcs(); id++ {
		p := spec.ContractParams(id)
		arc := spec.D.Arc(id)
		if p.Party != spec.PartyOf(arc.Head) || p.Counter != spec.PartyOf(arc.Tail) {
			t.Errorf("arc %d party/counter mismatch", id)
		}
		if len(p.Locks) != len(spec.Leaders) || len(p.Timelocks) != len(spec.Leaders) {
			t.Errorf("arc %d lock vector shape", id)
		}
		if p.ID != spec.ContractID(id) {
			t.Errorf("arc %d contract ID mismatch", id)
		}
	}
}

func TestLeaderIndex(t *testing.T) {
	setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{})
	spec := setup.Spec
	for i, l := range spec.Leaders {
		idx, ok := spec.LeaderIndex(l)
		if !ok || idx != i {
			t.Errorf("LeaderIndex(%d) = (%d, %v), want (%d, true)", l, idx, ok, i)
		}
		if !spec.IsLeader(l) {
			t.Errorf("IsLeader(%d) should be true", l)
		}
	}
	followers := 0
	for _, v := range spec.D.Vertices() {
		if !spec.IsLeader(v) {
			followers++
		}
	}
	if followers != spec.D.NumVertices()-len(spec.Leaders) {
		t.Error("follower count mismatch")
	}
}

func TestVertexOf(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	v, ok := setup.Spec.VertexOf("Bob")
	if !ok || v != 1 {
		t.Errorf("VertexOf(Bob) = (%d, %v)", v, ok)
	}
	if _, ok := setup.Spec.VertexOf("mallory"); ok {
		t.Error("unknown party should not resolve")
	}
}

func TestMaxTimelockAndHorizon(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
	if got := setup.Spec.MaxTimelock(); got != 140 {
		t.Errorf("MaxTimelock = %d, want 140", got)
	}
	if got := setup.Spec.Horizon(); got != 180 {
		t.Errorf("Horizon = %d, want 180", got)
	}
}

func TestKindString(t *testing.T) {
	if KindGeneral.String() != "general" || KindSingleLeader.String() != "single-leader" {
		t.Error("kind names")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind fallback")
	}
}

func TestSetupWithExplicitAssets(t *testing.T) {
	assets := []ArcAsset{
		{Chain: "altcoin", Asset: "alt", Amount: 100},
		{Chain: "bitcoin", Asset: "btc", Amount: 1},
		{Chain: "titles", Asset: "cadillac", Amount: 1},
	}
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Assets: assets})
	res := run(t, setup)
	if !res.Report.AllDeal() {
		t.Fatal("explicit-asset swap should end AllDeal")
	}
	owner, _ := res.Registry.Chain("titles").OwnerOf("cadillac")
	if owner != chain.ByParty("Alice") {
		t.Errorf("cadillac owner = %v, want Alice", owner)
	}
}

func TestRecurrentSwaps(t *testing.T) {
	d := graphgen.ThreeWay()
	rnd := rand.New(rand.NewSource(9))
	with, err := RunRecurrent(d, 3, true, rnd, 1)
	if err != nil {
		t.Fatalf("RunRecurrent(piggyback): %v", err)
	}
	rnd2 := rand.New(rand.NewSource(9))
	without, err := RunRecurrent(d, 3, false, rnd2, 1)
	if err != nil {
		t.Fatalf("RunRecurrent(no piggyback): %v", err)
	}
	for i, r := range with.Rounds {
		if !r.AllDeal {
			t.Errorf("piggyback round %d not AllDeal", i)
		}
	}
	if with.TotalTicks >= without.TotalTicks {
		t.Errorf("piggybacked rounds (%d ticks) should beat re-clearing (%d ticks)",
			with.TotalTicks, without.TotalTicks)
	}
	if _, err := RunRecurrent(d, 0, true, rnd, 1); err == nil {
		t.Error("zero rounds should error")
	}
}

func TestMultigraphSwap(t *testing.T) {
	// Section 5: parallel arcs — Alice sends three assets to Bob, Bob one
	// back. Every arc needs its own contract and all must trigger.
	setup := newTestSetup(t, graphgen.MultiArcPair(3), Config{})
	res := run(t, setup)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("multigraph swap should end AllDeal")
	}
	for id := 0; id < 4; id++ {
		if !res.Triggered[id] {
			t.Errorf("arc %d not triggered", id)
		}
	}
}
