package core

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/trace"
)

// mutePublisher publishes its leaving arcs like a leader should, then
// never reveals — a minimal in-package deviation for exercising the
// refund machinery without importing the adversary package.
type mutePublisher struct {
	NopBehavior
}

func (mutePublisher) Init(e Env) {
	for _, arc := range e.Spec().D.Out(e.Vertex()) {
		if err := e.Publish(arc); err != nil {
			e.Abandon("publish failed")
			return
		}
	}
}

func TestRefundsAfterMuteLeader(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
	r := NewRunner(setup, Options{Seed: 1})
	r.SetBehavior(0, mutePublisher{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The followers deployed and then reclaimed their escrow; the mute
	// leader scheduled no alarms, so its own contract stays locked.
	refunds := res.Log.OfKind(trace.KindRefunded)
	if len(refunds) != 2 {
		t.Fatalf("refunds = %d, want 2 (Bob's and Carol's)\n%s", len(refunds), res.Log.Render())
	}
	for _, v := range res.Spec.D.Vertices() {
		if got := res.Report.Of(v); got != outcome.NoDeal {
			t.Errorf("%s = %v, want NoDeal", res.Spec.PartyOf(v), got)
		}
	}
	// Bob's and Carol's assets are back; Alice's sits in escrow forever.
	for id := 1; id <= 2; id++ {
		aa := setup.Spec.Assets[id]
		owner, _ := res.Registry.Chain(aa.Chain).OwnerOf(aa.Asset)
		want := setup.Spec.PartyOf(setup.Spec.D.Arc(id).Head)
		if owner != chain.ByParty(want) {
			t.Errorf("asset %s owner = %v, want refunded to %s", aa.Asset, owner, want)
		}
	}
}

// wrongParamsPublisher publishes a contract with a tampered hashlock so
// the counterparty's verification must fail.
type wrongParamsPublisher struct {
	NopBehavior
}

func (wrongParamsPublisher) Init(e Env) {
	for _, arc := range e.Spec().D.Out(e.Vertex()) {
		p := e.Spec().ContractParams(arc)
		p.Locks[0] = hashkey.Lock{0xBA, 0xD}
		if err := e.PublishSwapParams(p); err != nil {
			e.Note(trace.KindUnlockFailed, arc, -1, err.Error())
		}
	}
}

func TestCounterpartyAbandonsOnWrongLock(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
	r := NewRunner(setup, Options{Seed: 1})
	r.SetBehavior(0, wrongParamsPublisher{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Log.OfKind(trace.KindContractRejected)); got != 1 {
		t.Errorf("rejections = %d, want 1 (Bob rejects Alice's contract)", got)
	}
	if got := len(res.Log.OfKind(trace.KindAbandoned)); got != 1 {
		t.Errorf("abandonments = %d, want 1", got)
	}
	// Nothing downstream of the rejection ever deploys.
	if got := len(res.Log.OfKind(trace.KindContractPublished)); got != 1 {
		t.Errorf("publications = %d, want only the corrupt one", got)
	}
	for _, v := range res.Spec.D.Vertices() {
		if got := res.Report.Of(v); got != outcome.NoDeal {
			t.Errorf("%s = %v, want NoDeal", res.Spec.PartyOf(v), got)
		}
	}
}

// TestAbandonIsIdempotent double-abandons through the env and checks a
// single trace event results.
type doubleAbandoner struct{ NopBehavior }

func (doubleAbandoner) Init(e Env) {
	e.Abandon("first")
	e.Abandon("second")
}

func TestAbandonIsIdempotent(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	r := NewRunner(setup, Options{Seed: 1})
	r.SetBehavior(1, doubleAbandoner{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Log.OfKind(trace.KindAbandoned)); got != 1 {
		t.Errorf("abandon events = %d, want 1", got)
	}
}
