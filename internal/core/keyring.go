package core

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
)

// Keyring is a persistent store of party signing identities. A long-running
// clearing service creates each party's ed25519 keypair exactly once — at
// first intake — and every subsequent swap the party joins reuses it,
// rebound to whatever vertex the clearing round assigns. This takes key
// generation entirely off the per-swap clearing path: NewSetup with a
// keyring performs zero keygens for known parties, and the stored signer
// holds the expanded ed25519 private key, so the seed→keypair derivation
// happens once per party rather than per sign — rebinding via Signer.At
// shares the already-derived key material.
//
// Every signer the keyring hands out carries a shared sign meter:
// Signs() reports the total ed25519 signatures produced under keyring
// identities, which Throughput turns into a signs-per-swap figure so
// signature-count regressions surface in benchmarks.
//
// The paper's security argument is indifferent to key lifetime: hashkey
// verification binds signatures to the public keys in the published
// directory, and reusing a keypair across swaps only means the same
// directory entry appears in several plans (exactly how real chain
// identities behave). Keyring is safe for concurrent use.
type Keyring struct {
	mu   sync.RWMutex
	rand io.Reader
	keys map[chain.PartyID]*hashkey.Signer
	// onCreate, when set, observes every freshly generated identity with
	// the ed25519 seed it derives from — the durable-store hook that makes
	// identities recoverable. Called under the keyring lock; it must not
	// call back into the keyring.
	onCreate func(p chain.PartyID, seed []byte)
	// signs counts every Sign made under a keyring identity (any vertex
	// binding; see hashkey.Signer.SetMeter).
	signs atomic.Uint64
}

// NewKeyring creates an empty keyring drawing key material from r
// (crypto/rand when nil).
func NewKeyring(r io.Reader) *Keyring {
	if r == nil {
		r = hashkey.CryptoRand()
	}
	return &Keyring{rand: r, keys: make(map[chain.PartyID]*hashkey.Signer)}
}

// Ensure returns the party's canonical signer, generating it on first use.
// Generation happens under the keyring lock so a party's identity is
// created exactly once even under concurrent intake.
func (k *Keyring) Ensure(p chain.PartyID) (*hashkey.Signer, error) {
	k.mu.RLock()
	s, ok := k.keys[p]
	k.mu.RUnlock()
	if ok {
		return s, nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if s, ok := k.keys[p]; ok {
		return s, nil
	}
	// Draw the ed25519 seed explicitly instead of letting GenerateKey read
	// it: ed25519.GenerateKey consumes exactly SeedSize bytes, so this
	// leaves the randomness stream bit-identical to the pre-durability
	// behavior (deterministic replays are unchanged) while giving the
	// onCreate hook the persisted form of the identity.
	seed := make([]byte, ed25519.SeedSize)
	if _, err := io.ReadFull(k.rand, seed); err != nil {
		return nil, fmt.Errorf("core: keyring: drawing seed for %s: %w", p, err)
	}
	s, err := hashkey.NewSignerFromSeed(0, seed)
	if err != nil {
		return nil, fmt.Errorf("core: keyring: generating identity for %s: %w", p, err)
	}
	s.SetMeter(&k.signs)
	k.keys[p] = s
	if k.onCreate != nil {
		k.onCreate(p, seed)
	}
	return s, nil
}

// Signs reports the total number of ed25519 signatures produced by
// keyring identities since creation.
func (k *Keyring) Signs() uint64 { return k.signs.Load() }

// OnCreate registers a callback observing every identity generated from
// here on (party plus ed25519 seed). The durable engine wires this to its
// write-ahead log so identities survive a crash. Restore does not fire
// it — a restored identity is already logged.
func (k *Keyring) OnCreate(fn func(p chain.PartyID, seed []byte)) {
	k.mu.Lock()
	k.onCreate = fn
	k.mu.Unlock()
}

// Restore installs a previously persisted identity from its ed25519 seed.
// An identity the keyring already holds is left untouched (restore is
// idempotent); the onCreate hook is not invoked.
func (k *Keyring) Restore(p chain.PartyID, seed []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.keys[p]; ok {
		return nil
	}
	s, err := hashkey.NewSignerFromSeed(0, seed)
	if err != nil {
		return fmt.Errorf("core: keyring: restoring identity for %s: %w", p, err)
	}
	s.SetMeter(&k.signs)
	k.keys[p] = s
	return nil
}

// SignerFor returns the party's persistent identity bound to vertex v,
// generating the keypair if the party is new. The returned signer shares
// key material with the canonical one — no allocation-heavy keygen runs
// for known parties.
func (k *Keyring) SignerFor(p chain.PartyID, v digraph.Vertex) (*hashkey.Signer, error) {
	s, err := k.Ensure(p)
	if err != nil {
		return nil, err
	}
	return s.At(v), nil
}

// Has reports whether the party already has an identity.
func (k *Keyring) Has(p chain.PartyID) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	_, ok := k.keys[p]
	return ok
}

// Len returns the number of stored identities.
func (k *Keyring) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.keys)
}

// Parties returns the sorted party IDs with stored identities.
func (k *Keyring) Parties() []chain.PartyID {
	k.mu.RLock()
	out := make([]chain.PartyID, 0, len(k.keys))
	for p := range k.keys {
		out = append(out, p)
	}
	k.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
