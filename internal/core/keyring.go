package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
)

// Keyring is a persistent store of party signing identities. A long-running
// clearing service creates each party's ed25519 keypair exactly once — at
// first intake — and every subsequent swap the party joins reuses it,
// rebound to whatever vertex the clearing round assigns. This takes key
// generation entirely off the per-swap clearing path: NewSetup with a
// keyring performs zero keygens for known parties.
//
// The paper's security argument is indifferent to key lifetime: hashkey
// verification binds signatures to the public keys in the published
// directory, and reusing a keypair across swaps only means the same
// directory entry appears in several plans (exactly how real chain
// identities behave). Keyring is safe for concurrent use.
type Keyring struct {
	mu   sync.RWMutex
	rand io.Reader
	keys map[chain.PartyID]*hashkey.Signer
}

// NewKeyring creates an empty keyring drawing key material from r
// (crypto/rand when nil).
func NewKeyring(r io.Reader) *Keyring {
	if r == nil {
		r = hashkey.CryptoRand()
	}
	return &Keyring{rand: r, keys: make(map[chain.PartyID]*hashkey.Signer)}
}

// Ensure returns the party's canonical signer, generating it on first use.
// Generation happens under the keyring lock so a party's identity is
// created exactly once even under concurrent intake.
func (k *Keyring) Ensure(p chain.PartyID) (*hashkey.Signer, error) {
	k.mu.RLock()
	s, ok := k.keys[p]
	k.mu.RUnlock()
	if ok {
		return s, nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if s, ok := k.keys[p]; ok {
		return s, nil
	}
	s, err := hashkey.NewSigner(0, k.rand)
	if err != nil {
		return nil, fmt.Errorf("core: keyring: generating identity for %s: %w", p, err)
	}
	k.keys[p] = s
	return s, nil
}

// SignerFor returns the party's persistent identity bound to vertex v,
// generating the keypair if the party is new. The returned signer shares
// key material with the canonical one — no allocation-heavy keygen runs
// for known parties.
func (k *Keyring) SignerFor(p chain.PartyID, v digraph.Vertex) (*hashkey.Signer, error) {
	s, err := k.Ensure(p)
	if err != nil {
		return nil, err
	}
	return s.At(v), nil
}

// Has reports whether the party already has an identity.
func (k *Keyring) Has(p chain.PartyID) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	_, ok := k.keys[p]
	return ok
}

// Len returns the number of stored identities.
func (k *Keyring) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.keys)
}

// Parties returns the sorted party IDs with stored identities.
func (k *Keyring) Parties() []chain.PartyID {
	k.mu.RLock()
	out := make([]chain.PartyID, 0, len(k.keys))
	for p := range k.keys {
		out = append(out, p)
	}
	k.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
