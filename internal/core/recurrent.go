package core

import (
	"fmt"
	"io"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Recurrent swaps (Section 5): "the swap protocol can be made recurrent by
// having the leaders distribute the next round's hashlocks in Phase Two of
// the previous round." Each round is a full protocol execution; with
// piggybacking, round r+1 can start the moment round r settles, instead of
// paying an extra clearing round-trip (modeled as 2Δ: publish the new
// locks, parties confirm) between rounds.

// RoundStats reports one round of a recurrent swap.
type RoundStats struct {
	Start   vtime.Ticks
	Settled vtime.Ticks
	AllDeal bool
}

// RecurrentResult reports a multi-round run.
type RecurrentResult struct {
	Rounds     []RoundStats
	TotalTicks vtime.Duration
	Piggyback  bool
}

// RunRecurrent executes `rounds` back-to-back swaps over the same digraph
// and parties, with fresh secrets (and fresh per-round assets) each round.
// When piggyback is true, next-round hashlocks ride in the previous
// round's Phase Two, so rounds chain with no setup gap; otherwise each
// round pays a 2Δ clearing gap first.
func RunRecurrent(d *digraph.Digraph, rounds int, piggyback bool, rnd io.Reader, seed int64) (*RecurrentResult, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("%w: rounds %d", ErrSpecShape, rounds)
	}
	res := &RecurrentResult{Piggyback: piggyback}
	var clock vtime.Ticks
	for r := 0; r < rounds; r++ {
		gap := vtime.Duration(0)
		if !piggyback || r == 0 {
			// Initial setup (and per-round re-clearing without
			// piggybacking) costs one publish-and-confirm round trip.
			gap = 2 * DefaultDelta
		}
		start := clock.Add(gap + vtime.Duration(DefaultDelta))
		setup, err := NewSetup(d, Config{Start: start, Rand: rnd})
		if err != nil {
			return nil, fmt.Errorf("core: recurrent round %d: %w", r, err)
		}
		// Per-round assets need distinct IDs across rounds.
		for id := range setup.Spec.Assets {
			setup.Spec.Assets[id].Asset = chain.AssetID(fmt.Sprintf("%s-r%d", setup.Spec.Assets[id].Asset, r))
			setup.Spec.Assets[id].Chain = fmt.Sprintf("%s-r%d", setup.Spec.Assets[id].Chain, r)
		}
		out, err := NewRunner(setup, Options{Seed: seed + int64(r)}).Run()
		if err != nil {
			return nil, fmt.Errorf("core: recurrent round %d: %w", r, err)
		}
		settled := out.Timing.AllDone
		if settled == 0 {
			settled = setup.Spec.Horizon()
		}
		res.Rounds = append(res.Rounds, RoundStats{
			Start:   start,
			Settled: settled,
			AllDeal: out.Report.AllDeal(),
		})
		clock = settled
	}
	res.TotalTicks = clock.Sub(0)
	return res, nil
}
