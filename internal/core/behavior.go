package core

import (
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Env is the world as one party sees it: its identity and keys, clock,
// scheduled wake-ups, and chain actions. Actions execute immediately (the
// party's transaction lands and is timestamped now); other parties observe
// the change Δ later. Adversary behaviors interpose on Env to drop, delay,
// or corrupt actions.
type Env interface {
	// Now returns the current virtual time.
	Now() vtime.Ticks
	// Spec returns the public swap plan.
	Spec() *Spec
	// Vertex returns the party's vertex in the swap digraph.
	Vertex() digraph.Vertex
	// Party returns the party's chain identity.
	Party() chain.PartyID
	// Signer returns the party's signing identity.
	Signer() *hashkey.Signer
	// Secret returns the party's secret and hashlock index when it is a
	// leader.
	Secret() (hashkey.Secret, int, bool)
	// Contract reads the current contract on an arc's chain, if published.
	Contract(arcID int) (chain.Contract, bool)
	// Resolved reports whether an arc's contract has settled and how.
	Resolved(arcID int) (settled, claimed bool)

	// Publish builds and publishes the canonical contract for an arc the
	// party is the head of.
	Publish(arcID int) error
	// PublishSwapParams publishes a Swap contract with explicit,
	// possibly non-canonical parameters (deviation hook).
	PublishSwapParams(p htlc.SwapParams) error
	// Unlock presents a hashkey for one hashlock of an arc's Swap contract.
	Unlock(arcID, lockIdx int, key hashkey.Hashkey) error
	// Redeem presents the secret to an arc's classic HTLC.
	Redeem(arcID int, secret hashkey.Secret) error
	// Claim takes the asset of a fully unlocked Swap contract.
	Claim(arcID int) error
	// Refund reclaims the asset of an expired contract.
	Refund(arcID int) error
	// Broadcast publishes a leader hashkey on the shared broadcast chain
	// (Section 4.5 optimization; no-op unless the spec enables it).
	Broadcast(lockIdx int, key hashkey.Hashkey)

	// At schedules fn at tick t (the party's own alarm).
	At(t vtime.Ticks, fn func())
	// Abandon halts protocol participation: no further events are
	// delivered to the behavior. Scheduled alarms still fire, so the
	// party keeps refunding its own contracts.
	Abandon(reason string)
	// Note records a trace event attributed to this party.
	Note(kind trace.Kind, arcID, lockIdx int, detail string)
}

// Behavior is a party's protocol logic, driven by chain observations. The
// runner delivers events for incident arcs only, Δ after the underlying
// action. Conforming implements the paper's protocol; the adversary
// package builds deviations by wrapping behaviors and environments.
type Behavior interface {
	// Init runs at the protocol start time T.
	Init(e Env)
	// OnContract fires when a contract appears on an incident arc.
	OnContract(e Env, arcID int, c chain.Contract)
	// OnUnlock fires when a hashlock opens on an incident arc's Swap
	// contract, carrying the (public) hashkey that opened it.
	OnUnlock(e Env, arcID, lockIdx int, key hashkey.Hashkey)
	// OnRedeem fires when an incident arc's classic HTLC is redeemed,
	// revealing the secret.
	OnRedeem(e Env, arcID int, secret hashkey.Secret)
	// OnBroadcast fires when a leader hashkey appears on the broadcast
	// chain (delivered to every party).
	OnBroadcast(e Env, lockIdx int, key hashkey.Hashkey)
	// OnSettled fires when an incident arc's contract settles.
	OnSettled(e Env, arcID int, claimed bool)
}

// NopBehavior ignores every event. Embed it to implement only the events a
// behavior cares about.
type NopBehavior struct{}

// Init implements Behavior.
func (NopBehavior) Init(Env) {}

// OnContract implements Behavior.
func (NopBehavior) OnContract(Env, int, chain.Contract) {}

// OnUnlock implements Behavior.
func (NopBehavior) OnUnlock(Env, int, int, hashkey.Hashkey) {}

// OnRedeem implements Behavior.
func (NopBehavior) OnRedeem(Env, int, hashkey.Secret) {}

// OnBroadcast implements Behavior.
func (NopBehavior) OnBroadcast(Env, int, hashkey.Hashkey) {}

// OnSettled implements Behavior.
func (NopBehavior) OnSettled(Env, int, bool) {}

// Conforming is the paper's protocol for the general (multi-leader,
// hashkey) variant, for both leader and follower roles:
//
// Phase One — a leader publishes contracts on its leaving arcs at T and
// waits; a follower publishes on its leaving arcs once verified contracts
// sit on all its entering arcs. A bad contract on an entering arc makes
// the party abandon.
//
// Phase Two — once a leader's entering arcs all carry contracts, it
// presents its degenerate hashkey on each of them (and broadcasts it when
// the optimization is on). Whenever a party first sees hashlock i opened
// on one of its leaving arcs, it extends the hashkey with its own
// signature and presents it on all its entering arcs. A party claims an
// entering arc as soon as every hashlock on it is open, and refunds its
// leaving arcs when a lock is dead.
type Conforming struct {
	entering []int
	leaving  []int
	seen     map[int]bool
	// published tracks Phase One completion for this party's leaving arcs.
	published bool
	// revealed tracks the leader's Phase Two start.
	revealed bool
	// keys holds, per hashlock index, the extended hashkey this party
	// presents on its entering arcs. Presence means the lock was handled.
	keys map[int]hashkey.Hashkey
	// claimed tracks entering arcs already claimed.
	claimed map[int]bool
}

// NewConforming returns a fresh conforming behavior.
func NewConforming() *Conforming {
	return &Conforming{
		seen:    make(map[int]bool),
		keys:    make(map[int]hashkey.Hashkey),
		claimed: make(map[int]bool),
	}
}

// Init implements Behavior.
func (b *Conforming) Init(e Env) {
	spec := e.Spec()
	b.entering = spec.D.In(e.Vertex())
	b.leaving = spec.D.Out(e.Vertex())
	sort.Ints(b.entering)
	sort.Ints(b.leaving)

	scheduleRefundAlarms(e, b.leaving)

	if spec.IsLeader(e.Vertex()) || len(b.entering) == 0 {
		// Leaders open Phase One. (A follower without entering arcs can
		// only occur in unsafe digraphs; its wait is vacuous.)
		b.publishLeaving(e)
	}
	b.maybeStartPhaseTwo(e)
}

// scheduleRefundAlarms arms one alarm per distinct deadline of each
// leaving arc, one tick past the inclusive unlock deadline. The alarm
// refunds when the contract is refundable; alarms run even after the
// party abandons, because reclaiming its own escrow is pure self-interest.
func scheduleRefundAlarms(e Env, leaving []int) {
	spec := e.Spec()
	for _, arc := range leaving {
		arc := arc
		ticks := make(map[vtime.Ticks]bool)
		switch spec.Kind {
		case KindGeneral:
			for _, tl := range spec.Timelocks(arc) {
				ticks[tl.Add(1)] = true
			}
		default:
			ticks[spec.HTLCTimeout(arc)] = true
		}
		sorted := make([]vtime.Ticks, 0, len(ticks))
		for t := range ticks {
			sorted = append(sorted, t)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, t := range sorted {
			e.At(t, func() { tryRefund(e, arc) })
		}
	}
}

// tryRefund refunds arc if its contract exists, is unsettled, and is
// refundable now.
func tryRefund(e Env, arcID int) {
	if settled, _ := e.Resolved(arcID); settled {
		return
	}
	c, ok := e.Contract(arcID)
	if !ok {
		return
	}
	refundable := false
	switch ct := c.(type) {
	case *htlc.Swap:
		refundable = ct.Refundable(e.Now())
	case *htlc.HTLC:
		refundable = !e.Now().Before(ct.Params().Timeout)
	}
	if refundable {
		_ = e.Refund(arcID)
	}
}

func (b *Conforming) publishLeaving(e Env) {
	if b.published {
		return
	}
	b.published = true
	for _, arc := range b.leaving {
		if err := e.Publish(arc); err != nil {
			e.Note(trace.KindAbandoned, arc, -1, "publish failed: "+err.Error())
			e.Abandon("publish failed")
			return
		}
	}
}

// maybeStartPhaseTwo begins secret release for leaders whose entering arcs
// all carry verified contracts.
func (b *Conforming) maybeStartPhaseTwo(e Env) {
	if b.revealed {
		return
	}
	secret, idx, isLeader := e.Secret()
	if !isLeader || !b.allEnteringSeen() {
		return
	}
	b.revealed = true
	key := hashkey.New(secret, e.Signer())
	// The degenerate key is valid by construction — it is the leader's own
	// signature over its own secret. Seeding it spares every contract the
	// one full-chain walk that used to be the cache's only miss.
	if spec := e.Spec(); spec.Cache != nil {
		_ = key.SeedVerified(spec.Locks[idx], spec.Leaders[idx], spec.Keys, spec.Cache)
	}
	b.keys[idx] = key
	e.Note(trace.KindSecretRevealed, -1, idx, "leader releases secret")
	if e.Spec().Broadcast {
		e.Broadcast(idx, key)
	}
	for _, arc := range b.entering {
		if err := e.Unlock(arc, idx, key); err != nil {
			e.Note(trace.KindUnlockFailed, arc, idx, err.Error())
		}
	}
	b.claimWhereComplete(e)
}

func (b *Conforming) allEnteringSeen() bool {
	for _, arc := range b.entering {
		if !b.seen[arc] {
			return false
		}
	}
	return true
}

// OnContract implements Behavior: verify, record, and advance Phase One.
func (b *Conforming) OnContract(e Env, arcID int, c chain.Contract) {
	isEntering := containsInt(b.entering, arcID)
	if !isEntering {
		return // our own leaving-arc publications need no verification
	}
	sw, ok := c.(*htlc.Swap)
	if !ok || !swapParamsMatch(sw.Params(), e.Spec().ContractParams(arcID)) {
		e.Note(trace.KindContractRejected, arcID, -1, "contract does not match the swap plan")
		e.Abandon("incorrect contract on entering arc")
		return
	}
	b.seen[arcID] = true
	if b.allEnteringSeen() {
		if !e.Spec().IsLeader(e.Vertex()) {
			b.publishLeaving(e)
		}
		b.maybeStartPhaseTwo(e)
	}
	// Phase Two can race Phase One on other parts of the digraph: keys
	// learned before this contract appeared must be presented now.
	b.presentKeys(e, arcID, sw)
	b.claimWhereComplete(e)
}

// presentKeys unlocks every known hashlock on one entering arc's contract.
func (b *Conforming) presentKeys(e Env, arcID int, sw *htlc.Swap) {
	open := sw.Unlocked()
	for i := 0; i < len(e.Spec().Locks); i++ {
		key, ok := b.keys[i]
		if !ok || open[i] {
			continue
		}
		if err := e.Unlock(arcID, i, key); err != nil {
			e.Note(trace.KindUnlockFailed, arcID, i, err.Error())
		}
	}
}

// OnUnlock implements Behavior: propagate secrets backwards (Phase Two)
// and claim completed entering arcs.
func (b *Conforming) OnUnlock(e Env, arcID, lockIdx int, key hashkey.Hashkey) {
	if containsInt(b.leaving, arcID) {
		b.learnKey(e, lockIdx, key)
	}
	b.claimWhereComplete(e)
}

// learnKey handles the first observation of hashlock lockIdx opening:
// extend the hashkey and present it on every entering arc that already
// carries a contract. Arcs whose contracts are still propagating are
// covered by the retry in OnContract.
func (b *Conforming) learnKey(e Env, lockIdx int, key hashkey.Hashkey) {
	if _, done := b.keys[lockIdx]; done {
		return
	}
	if key.Path.Contains(e.Vertex()) {
		// We already signed this chain once; Lemma 4.8's second case.
		return
	}
	mine := key.Extend(e.Signer())
	// The extension is valid by construction — our fresh signature over a
	// chain that was just verified (by a contract on-chain, or by
	// OnBroadcast for the virtual length-1 broadcast path). Seeding it
	// makes every contract that verifies our re-presentation a pure cache
	// hit instead of a one-signature fast path.
	if spec := e.Spec(); spec.Cache != nil {
		_ = mine.SeedVerified(spec.Locks[lockIdx], spec.Leaders[lockIdx], spec.Keys, spec.Cache)
	}
	b.keys[lockIdx] = mine
	for _, arc := range b.entering {
		if _, published := e.Contract(arc); !published {
			continue
		}
		if err := e.Unlock(arc, lockIdx, mine); err != nil {
			e.Note(trace.KindUnlockFailed, arc, lockIdx, err.Error())
		}
	}
}

// OnRedeem implements Behavior; the general protocol uses Swap contracts,
// so classic redeems never reach it.
func (b *Conforming) OnRedeem(Env, int, hashkey.Secret) {}

// OnBroadcast implements Behavior: the Section 4.5 short-circuit. The
// party verifies the leader's broadcast hashkey and treats it as a learned
// secret with the virtual length-1 path.
func (b *Conforming) OnBroadcast(e Env, lockIdx int, key hashkey.Hashkey) {
	spec := e.Spec()
	if !spec.Broadcast || lockIdx < 0 || lockIdx >= len(spec.Locks) {
		return
	}
	if _, done := b.keys[lockIdx]; done {
		return
	}
	if key.Leader() == e.Vertex() {
		return // our own broadcast
	}
	if err := key.VerifyCryptoExtended(spec.Locks[lockIdx], spec.Leaders[lockIdx], spec.Keys, spec.Cache); err != nil {
		e.Note(trace.KindUnlockFailed, -1, lockIdx, "bad broadcast: "+err.Error())
		return
	}
	b.learnKey(e, lockIdx, key)
	b.claimWhereComplete(e)
}

// OnSettled implements Behavior.
func (b *Conforming) OnSettled(e Env, arcID int, claimed bool) {
	if claimed {
		b.claimed[arcID] = true
	}
}

// claimWhereComplete claims every entering arc whose contract is fully
// unlocked. Our own unlocks take effect immediately, so the check runs
// after every action that might have completed a contract.
func (b *Conforming) claimWhereComplete(e Env) {
	for _, arc := range b.entering {
		if b.claimed[arc] {
			continue
		}
		c, ok := e.Contract(arc)
		if !ok {
			continue
		}
		sw, ok := c.(*htlc.Swap)
		if !ok || !sw.AllUnlocked() {
			continue
		}
		if settled, _ := e.Resolved(arc); settled {
			b.claimed[arc] = true
			continue
		}
		if err := e.Claim(arc); err == nil {
			b.claimed[arc] = true
		}
	}
}

// swapParamsMatch compares a published contract's parameters with the
// canonical ones derived from the spec.
func swapParamsMatch(got, want htlc.SwapParams) bool {
	if got.ID != want.ID || got.ArcID != want.ArcID ||
		got.Party != want.Party || got.PartyV != want.PartyV ||
		got.Counter != want.Counter || got.CounterV != want.CounterV ||
		got.Asset != want.Asset || got.Start != want.Start ||
		got.Delta != want.Delta || got.DiamBound != want.DiamBound ||
		got.Broadcast != want.Broadcast {
		return false
	}
	if len(got.Leaders) != len(want.Leaders) || len(got.Locks) != len(want.Locks) ||
		len(got.Timelocks) != len(want.Timelocks) {
		return false
	}
	for i := range got.Leaders {
		if got.Leaders[i] != want.Leaders[i] || got.Locks[i] != want.Locks[i] ||
			got.Timelocks[i] != want.Timelocks[i] {
			return false
		}
	}
	if got.Digraph == nil || !digraph.StructuralEqual(got.Digraph, want.Digraph) {
		return false
	}
	for i := 0; i < want.Digraph.NumArcs(); i++ {
		if got.Digraph.Arc(i) != want.Digraph.Arc(i) {
			return false
		}
	}
	if len(got.Directory) != len(want.Directory) {
		return false
	}
	for v, pk := range want.Directory {
		gpk, ok := got.Directory[v]
		if !ok || len(gpk) != len(pk) {
			return false
		}
		for i := range pk {
			if gpk[i] != pk[i] {
				return false
			}
		}
	}
	return true
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
