package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

func TestKeyringGeneratesOncePerParty(t *testing.T) {
	k := NewKeyring(rand.New(rand.NewSource(5)))
	s1, err := k.Ensure("alice")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := k.Ensure("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Public(), s2.Public()) {
		t.Error("second Ensure returned a different identity")
	}
	if k.Len() != 1 {
		t.Errorf("Len = %d, want 1", k.Len())
	}
	sb, err := k.Ensure("bob")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1.Public(), sb.Public()) {
		t.Error("distinct parties share an identity")
	}
}

func TestKeyringVertexRebinding(t *testing.T) {
	k := NewKeyring(rand.New(rand.NewSource(6)))
	s3, err := k.SignerFor("alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	s7, err := k.SignerFor("alice", 7)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Vertex() != 3 || s7.Vertex() != 7 {
		t.Errorf("vertexes = %d, %d; want 3, 7", s3.Vertex(), s7.Vertex())
	}
	if !bytes.Equal(s3.Public(), s7.Public()) {
		t.Error("rebinding changed the key material")
	}
	msg := []byte("cross-swap message")
	if !bytes.Equal(s3.Sign(msg), s7.Sign(msg)) {
		t.Error("rebinding changed signatures")
	}
}

func TestKeyringConcurrentEnsure(t *testing.T) {
	// crypto/rand here: the keyring must serialize access to the reader
	// internally, and a math/rand source would only hide ordering races.
	k := NewKeyring(nil)
	const workers = 16
	pubs := make([][]byte, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := k.Ensure("shared-party")
			if err != nil {
				t.Error(err)
				return
			}
			pubs[i] = s.Public()
		}()
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if !bytes.Equal(pubs[0], pubs[i]) {
			t.Fatalf("worker %d saw a different identity", i)
		}
	}
	if k.Len() != 1 {
		t.Errorf("Len = %d, want 1", k.Len())
	}
}

// TestNewSetupReusesKeyring is the clearing-engine contract: consecutive
// setups over the same parties perform keygen only once, the directories
// agree, and runs still complete.
func TestNewSetupReusesKeyring(t *testing.T) {
	k := NewKeyring(rand.New(rand.NewSource(9)))
	d := graphgen.ThreeWay()
	cfg := Config{Rand: rand.New(rand.NewSource(1)), Keyring: k}
	s1, err := NewSetup(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != d.NumVertices() {
		t.Fatalf("keyring holds %d identities, want %d", k.Len(), d.NumVertices())
	}
	cfg2 := Config{Rand: rand.New(rand.NewSource(2)), Keyring: k}
	s2, err := NewSetup(d, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != d.NumVertices() {
		t.Fatalf("second setup minted identities: %d", k.Len())
	}
	for v := range s1.Signers {
		if !bytes.Equal(s1.Spec.Keys[s1.Signers[v].Vertex()], s2.Spec.Keys[s2.Signers[v].Vertex()]) {
			t.Errorf("vertex %d: directories disagree across setups", v)
		}
	}
	// The persistent identities must actually run the protocol.
	res, err := NewRunner(s2, Options{Seed: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Fatalf("keyring-backed swap not AllDeal:\n%s", res.Log.Render())
	}
}

// TestKeyringPartiesSorted pins the deterministic enumeration order.
func TestKeyringPartiesSorted(t *testing.T) {
	k := NewKeyring(rand.New(rand.NewSource(10)))
	for _, p := range []chain.PartyID{"zed", "alice", "mid"} {
		if _, err := k.Ensure(p); err != nil {
			t.Fatal(err)
		}
	}
	got := k.Parties()
	want := []chain.PartyID{"alice", "mid", "zed"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Parties() = %v, want %v", got, want)
		}
	}
}
