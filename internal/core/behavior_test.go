package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func TestSwapParamsMatch(t *testing.T) {
	setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{Delta: 10, Start: 100})
	canonical := setup.Spec.ContractParams(0)

	if !swapParamsMatch(canonical, setup.Spec.ContractParams(0)) {
		t.Fatal("canonical params should match themselves")
	}
	mutations := []struct {
		name   string
		mutate func(*htlc.SwapParams)
	}{
		{"contract id", func(p *htlc.SwapParams) { p.ID = "evil" }},
		{"arc id", func(p *htlc.SwapParams) { p.ArcID = 3 }},
		{"party", func(p *htlc.SwapParams) { p.Party = "mallory" }},
		{"counterparty vertex", func(p *htlc.SwapParams) { p.CounterV = 0 }},
		{"asset", func(p *htlc.SwapParams) { p.Asset = "fake" }},
		{"start", func(p *htlc.SwapParams) { p.Start = 999 }},
		{"delta", func(p *htlc.SwapParams) { p.Delta = 1 }},
		{"diam bound", func(p *htlc.SwapParams) { p.DiamBound = 9 }},
		{"broadcast flag", func(p *htlc.SwapParams) { p.Broadcast = true }},
		{"timelock", func(p *htlc.SwapParams) { p.Timelocks[1] = p.Timelocks[1].Add(1) }},
		{"lock", func(p *htlc.SwapParams) { p.Locks[0] = hashkey.Lock{1} }},
		{"leader", func(p *htlc.SwapParams) { p.Leaders[0] = 2 }},
		{"dropped lock", func(p *htlc.SwapParams) {
			p.Locks = p.Locks[:1]
			p.Leaders = p.Leaders[:1]
			p.Timelocks = p.Timelocks[:1]
		}},
		{"different digraph", func(p *htlc.SwapParams) { p.Digraph = graphgen.ThreeWay() }},
		{"nil digraph", func(p *htlc.SwapParams) { p.Digraph = nil }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			p := setup.Spec.ContractParams(0)
			tt.mutate(&p)
			if swapParamsMatch(p, canonical) {
				t.Errorf("mutation %q should not match", tt.name)
			}
		})
	}
}

func TestSwapParamsMatchDirectory(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	canonical := setup.Spec.ContractParams(0)

	// Missing key.
	p := setup.Spec.ContractParams(0)
	p.Directory = hashkey.Directory{}
	if swapParamsMatch(p, canonical) {
		t.Error("empty directory should not match")
	}
	// Substituted key.
	other, err := hashkey.NewSigner(0, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	p2 := setup.Spec.ContractParams(0)
	dir := make(hashkey.Directory, len(p2.Directory))
	for k, v := range p2.Directory {
		dir[k] = v
	}
	dir[0] = other.Public()
	p2.Directory = dir
	if swapParamsMatch(p2, canonical) {
		t.Error("substituted public key should not match")
	}
}

func TestNopBehaviorIsInert(t *testing.T) {
	// NopBehavior as every party: nothing ever happens, the runner
	// terminates at its horizon with all assets untouched.
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	r := NewRunner(setup, Options{Seed: 1})
	for _, v := range setup.Spec.D.Vertices() {
		r.SetBehavior(v, NopBehavior{})
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triggered) != 0 {
		t.Errorf("nop parties triggered arcs: %v", res.Triggered)
	}
	for id := 0; id < 3; id++ {
		aa := setup.Spec.Assets[id]
		owner, _ := res.Registry.Chain(aa.Chain).OwnerOf(aa.Asset)
		want := setup.Spec.PartyOf(setup.Spec.D.Arc(id).Head)
		if owner != chain.ByParty(want) {
			t.Errorf("asset %s moved to %v without any protocol action", aa.Asset, owner)
		}
	}
}

func TestSpecValidateEdgeCases(t *testing.T) {
	base := func() *Spec {
		setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
		return setup.Spec
	}
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unknown kind", func(s *Spec) { s.Kind = 99 }},
		{"no leaders", func(s *Spec) { s.Leaders = nil; s.Locks = nil }},
		{"lock count mismatch", func(s *Spec) { s.Locks = append(s.Locks, hashkey.Lock{}) }},
		{"leader out of range", func(s *Spec) { s.Leaders = []digraph.Vertex{9} }},
		{"duplicate leaders", func(s *Spec) {
			s.Leaders = []digraph.Vertex{0, 0}
			s.Locks = append(s.Locks, hashkey.Lock{})
		}},
		{"party count mismatch", func(s *Spec) { s.Parties = s.Parties[:2] }},
		{"empty party id", func(s *Spec) { s.Parties[1] = "" }},
		{"duplicate party ids", func(s *Spec) { s.Parties[1] = s.Parties[0] }},
		{"missing public key", func(s *Spec) { delete(s.Keys, 1) }},
		{"asset count mismatch", func(s *Spec) { s.Assets = s.Assets[:1] }},
		{"empty asset", func(s *Spec) { s.Assets[0].Asset = "" }},
		{"duplicate asset", func(s *Spec) { s.Assets[1] = s.Assets[0] }},
		{"zero delta", func(s *Spec) { s.Delta = 0 }},
		{"diam bound too small", func(s *Spec) { s.DiamBound = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base()
			tt.mutate(s)
			if err := s.Validate(false); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

// TestClearVerifyPlanRoundTrip: any ring of offers that clears also
// verifies for every offering party (property test).
func TestClearVerifyPlanRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		offers := make([]Offer, n)
		for i := range offers {
			party := chain.PartyID(string(rune('a' + i)))
			next := chain.PartyID(string(rune('a' + (i+1)%n)))
			offers[i] = Offer{Party: party, Give: []ProposedTransfer{{
				To:     next,
				Chain:  string(rune('a'+i)) + "-chain",
				Asset:  chain.AssetID(string(rune('a'+i)) + "-asset"),
				Amount: uint64(1 + rng.Intn(100)),
			}}}
		}
		setup, err := Clear(offers, Config{Rand: rng})
		if err != nil {
			return false
		}
		for _, o := range offers {
			if VerifyPlan(setup.Spec, o) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUnlockTrafficIsArcTimesLeaders pins the communication-complexity
// shape on conforming runs: exactly |A|·|L| unlock calls.
func TestUnlockTrafficIsArcTimesLeaders(t *testing.T) {
	for _, d := range []*digraph.Digraph{
		graphgen.ThreeWay(),
		graphgen.TwoLeaderTriangle(),
		graphgen.Clique(4),
		graphgen.BidirCycle(5),
	} {
		setup := newTestSetup(t, d, Config{})
		res := run(t, setup)
		want := d.NumArcs() * len(setup.Spec.Leaders)
		if res.Counters.UnlockCalls != want {
			t.Errorf("%v: unlock calls = %d, want |A|·|L| = %d",
				d, res.Counters.UnlockCalls, want)
		}
		if res.Counters.FailedCalls != 0 {
			t.Errorf("%v: conforming run made %d failed calls", d, res.Counters.FailedCalls)
		}
	}
}

func TestRunnerAccessors(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	r := NewRunner(setup, Options{Seed: 1})
	if r.Log() == nil || r.Scheduler() == nil || r.Registry() == nil {
		t.Fatal("accessors should be non-nil")
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Log != r.Log() {
		t.Error("result log should be the runner log")
	}
	if res.Timing.DeployDelta() == "" || res.Timing.TotalDelta() == "" {
		t.Error("timing should render")
	}
}

func TestHorizonOverride(t *testing.T) {
	// A tiny horizon cuts the run short: nothing beyond it executes.
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
	r := NewRunner(setup, Options{Seed: 1, Horizon: 95})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only Alice's deploy (at 90) fits before the horizon.
	if got := len(res.Log.Events()); got == 0 {
		t.Error("expected the pre-horizon deploy")
	}
	for _, ev := range res.Log.Events() {
		if ev.At.After(vtime.Ticks(95)) {
			t.Errorf("event after horizon: %+v", ev)
		}
	}
}
