package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/pebble"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// TestPhaseOneEqualsLazyPebbleGame cross-validates the runner against the
// paper's reference dynamics: with everyone conforming, the publication
// tick of every arc's contract is EXACTLY (Start − Δ) + round·Δ, where
// round is the arc's round in the lazy pebble game (Section 4.4). The
// protocol is the pebble game, tick for tick.
func TestPhaseOneEqualsLazyPebbleGame(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(seed%6+6)%6 // 3..8 vertexes
		d := graphgen.RandomStronglyConnected(n, 0.3, seed)
		setup, err := NewSetup(d, Config{Rand: rand.New(rand.NewSource(seed + 5))})
		if err != nil {
			return false
		}
		res, err := NewRunner(setup, Options{Seed: seed}).Run()
		if err != nil || !res.Report.AllDeal() {
			return false
		}
		game := pebble.Lazy(d, setup.Spec.Leaders)
		if !game.Complete {
			return false
		}
		pubAt := make(map[int]vtime.Ticks)
		for _, ev := range res.Log.OfKind(trace.KindContractPublished) {
			pubAt[ev.Arc] = ev.At
		}
		base := setup.Spec.Start.Add(-vtime.Duration(setup.Spec.Delta))
		for id := 0; id < d.NumArcs(); id++ {
			want := base.Add(vtime.Scale(game.Round[id], setup.Spec.Delta))
			if pubAt[id] != want {
				t.Logf("seed %d arc %d: published %d, pebble round %d predicts %d",
					seed, id, pubAt[id], game.Round[id], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPhaseTwoBoundedByEagerGame: every unlock of lock i lands no later
// than reveal'_i + round·Δ, where round is the arc's eager-game round on
// the transpose and reveal'_i = max(reveal_i, lastPublish+Δ) — a leader
// can reveal while Phase One still straggles elsewhere, and a hashkey
// cannot be presented on a contract that does not exist yet, so the
// eager dynamics are only guaranteed once every contract is visible.
func TestPhaseTwoBoundedByEagerGame(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(seed%6+6)%6
		d := graphgen.RandomStronglyConnected(n, 0.3, seed+100)
		setup, err := NewSetup(d, Config{Rand: rand.New(rand.NewSource(seed + 6))})
		if err != nil {
			return false
		}
		res, err := NewRunner(setup, Options{Seed: seed}).Run()
		if err != nil || !res.Report.AllDeal() {
			return false
		}
		// Per-lock reveal times from the trace, floored at the moment the
		// last contract became universally visible.
		lastPub, _ := res.Log.Last(trace.KindContractPublished)
		allVisible := lastPub.At.Add(vtime.Duration(setup.Spec.Delta))
		reveal := make(map[int]vtime.Ticks)
		for _, ev := range res.Log.OfKind(trace.KindSecretRevealed) {
			reveal[ev.Lock] = ev.At
			if ev.At.Before(allVisible) {
				reveal[ev.Lock] = allVisible
			}
		}
		dt := d.Transpose()
		for i, leader := range setup.Spec.Leaders {
			game := pebble.Eager(dt, leader)
			if !game.Complete {
				return false
			}
			for _, ev := range res.Log.OfKind(trace.KindUnlocked) {
				if ev.Lock != i {
					continue
				}
				bound := reveal[i].Add(vtime.Scale(game.Round[ev.Arc], setup.Spec.Delta))
				if ev.At.After(bound) {
					t.Logf("seed %d lock %d arc %d: unlocked %d after eager bound %d",
						seed, i, ev.Arc, ev.At, bound)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
