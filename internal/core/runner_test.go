package core

import (
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// newTestSetup builds a deterministic setup over d.
func newTestSetup(t *testing.T, d *digraph.Digraph, cfg Config) *Setup {
	t.Helper()
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(1))
	}
	setup, err := NewSetup(d, cfg)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	return setup
}

// run executes a fresh conforming run and returns the result.
func run(t *testing.T, setup *Setup) *Result {
	t.Helper()
	res, err := NewRunner(setup, Options{Seed: 7}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestThreeWayAllConformingDeal(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	res := run(t, setup)

	if !res.Report.AllDeal() {
		for _, v := range setup.Spec.D.Vertices() {
			t.Logf("%s: %v", setup.Spec.PartyOf(v), res.Report.Of(v))
		}
		t.Log("\n" + res.Log.Render())
		t.Fatal("all-conforming three-way swap must end AllDeal (Theorem 4.7)")
	}
	for id := 0; id < 3; id++ {
		if !res.Triggered[id] {
			t.Errorf("arc %d not triggered", id)
		}
	}
	// Theorem 4.7: triggered within 2·diam·Δ of the start.
	bound := setup.Spec.Start.Add(vtime.Scale(2*setup.Spec.DiamBound, setup.Spec.Delta))
	last, ok := res.Log.Last(trace.KindUnlocked)
	if !ok {
		t.Fatal("no unlock events")
	}
	if last.At.After(bound) {
		t.Errorf("last unlock at %d, bound %d", last.At, bound)
	}
	if !res.Registry.VerifyAllLedgers() {
		t.Error("ledgers must verify")
	}
}

func TestThreeWayTimeline(t *testing.T) {
	// Figures 1 and 2: Alice deploys ahead so her contract is confirmed at
	// T; Bob's lands at T, Carol's at T+Δ; then unlocks at T+2Δ (Alice's
	// own, exactly at her degenerate hashkey's deadline), T+3Δ (Carol),
	// T+4Δ (Bob) — finishing at exactly 2·diam·Δ, Theorem 4.7's bound.
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Delta: 10, Start: 100})
	res := run(t, setup)

	pubs := res.Log.OfKind(trace.KindContractPublished)
	if len(pubs) != 3 {
		t.Fatalf("publishes = %d, want 3", len(pubs))
	}
	wantPub := map[int]vtime.Ticks{0: 90, 1: 100, 2: 110}
	for _, ev := range pubs {
		if ev.At != wantPub[ev.Arc] {
			t.Errorf("arc %d published at %d, want %d", ev.Arc, ev.At, wantPub[ev.Arc])
		}
	}
	unlocks := res.Log.OfKind(trace.KindUnlocked)
	if len(unlocks) != 3 {
		t.Fatalf("unlocks = %d, want 3", len(unlocks))
	}
	// Alice (leader) unlocks her entering arc 2 at 120 (Phase One done for
	// her); Carol sees it at 130 and unlocks arc 1; Bob at 140 unlocks arc 0.
	wantUnlock := map[int]vtime.Ticks{2: 120, 1: 130, 0: 140}
	for _, ev := range unlocks {
		if ev.At != wantUnlock[ev.Arc] {
			t.Errorf("arc %d unlocked at %d, want %d", ev.Arc, ev.At, wantUnlock[ev.Arc])
		}
	}
	if !res.Report.AllDeal() {
		t.Error("want AllDeal")
	}
}

func TestTwoLeaderTriangleConforming(t *testing.T) {
	setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{})
	if len(setup.Spec.Leaders) != 2 {
		t.Fatalf("leaders = %v, want 2 leaders", setup.Spec.Leaders)
	}
	res := run(t, setup)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("two-leader triangle must end AllDeal")
	}
	// Every arc has two hashlocks; 6 arcs × 2 locks = 12 unlock events.
	if got := len(res.Log.OfKind(trace.KindUnlocked)); got != 12 {
		t.Errorf("unlock events = %d, want 12", got)
	}
}

func TestCompletionBoundAcrossFamilies(t *testing.T) {
	families := []struct {
		name string
		d    *digraph.Digraph
	}{
		{"cycle4", graphgen.Cycle(4)},
		{"cycle7", graphgen.Cycle(7)},
		{"clique4", graphgen.Clique(4)},
		{"clique5", graphgen.Clique(5)},
		{"bidir5", graphgen.BidirCycle(5)},
		{"flower3x2", graphgen.Flower(3, 2)},
		{"random8", graphgen.RandomStronglyConnected(8, 0.3, 11)},
		{"random10", graphgen.RandomStronglyConnected(10, 0.25, 12)},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			setup := newTestSetup(t, f.d, Config{})
			res := run(t, setup)
			if !res.Report.AllDeal() {
				t.Log("\n" + res.Log.Render())
				t.Fatalf("%s: all-conforming run must end AllDeal", f.name)
			}
			bound := setup.Spec.Start.Add(vtime.Scale(2*setup.Spec.DiamBound, setup.Spec.Delta))
			if last, ok := res.Log.Last(trace.KindUnlocked); ok && last.At.After(bound) {
				t.Errorf("last unlock at %d exceeds 2·diam·Δ bound %d", last.At, bound)
			}
			if !res.Registry.VerifyAllLedgers() {
				t.Error("ledger verification failed")
			}
		})
	}
}

func TestAssetsConserved(t *testing.T) {
	setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{})
	res := run(t, setup)
	// Every asset ends owned by its arc's counterparty.
	for id := 0; id < setup.Spec.D.NumArcs(); id++ {
		aa := setup.Spec.Assets[id]
		owner, ok := res.Registry.Chain(aa.Chain).OwnerOf(aa.Asset)
		if !ok {
			t.Fatalf("asset %s disappeared", aa.Asset)
		}
		want := setup.Spec.PartyOf(setup.Spec.D.Arc(id).Tail)
		if owner.Party != want {
			t.Errorf("asset %s owned by %v, want %s", aa.Asset, owner, want)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() string {
		setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{Rand: rand.New(rand.NewSource(5))})
		res := run(t, setup)
		return res.Log.Render()
	}
	if mk() != mk() {
		t.Error("two identical runs should produce identical traces")
	}
}

func TestRunnerSingleUse(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	r := NewRunner(setup, Options{})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestSingleLeaderKindConforming(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{Kind: KindSingleLeader})
	res := run(t, setup)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("single-leader protocol must end AllDeal on the three-cycle")
	}
	// No hashkey unlock events: everything is classic redeem.
	if got := len(res.Log.OfKind(trace.KindUnlocked)); got != 0 {
		t.Errorf("unlock events = %d, want 0 under the HTLC variant", got)
	}
}

func TestSingleLeaderFlower(t *testing.T) {
	d := graphgen.Flower(3, 2)
	center, _ := d.VertexByName("L")
	setup := newTestSetup(t, d, Config{Kind: KindSingleLeader, Leaders: []digraph.Vertex{center}})
	res := run(t, setup)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("flower swap must end AllDeal")
	}
}

func TestBroadcastOptimization(t *testing.T) {
	// With the broadcast chain, Phase Two completes in constant time: the
	// last unlock lands at most 2Δ after the first reveal, regardless of
	// diameter.
	d := graphgen.Cycle(8)
	plain := newTestSetup(t, d, Config{Rand: rand.New(rand.NewSource(2))})
	resPlain := run(t, plain)

	bc := newTestSetup(t, d, Config{Broadcast: true, Rand: rand.New(rand.NewSource(2))})
	resBC := run(t, bc)

	if !resPlain.Report.AllDeal() || !resBC.Report.AllDeal() {
		t.Fatal("both runs must end AllDeal")
	}
	lastPlain, _ := resPlain.Log.Last(trace.KindUnlocked)
	lastBC, _ := resBC.Log.Last(trace.KindUnlocked)
	if !lastBC.At.Before(lastPlain.At) {
		t.Errorf("broadcast run should finish Phase Two earlier: %d vs %d", lastBC.At, lastPlain.At)
	}
	reveal, ok := resBC.Log.First(trace.KindSecretRevealed)
	if !ok {
		t.Fatal("no reveal event")
	}
	if lastBC.At.Sub(reveal.At) > 2*vtime.Duration(bc.Spec.Delta) {
		t.Errorf("broadcast Phase Two took %d ticks, want ≤ 2Δ", lastBC.At.Sub(reveal.At))
	}
}

func TestBroadcastRepresentationsHitSeededCache(t *testing.T) {
	// Followers seed their own extension of a verified key into the spec
	// cache (learnKey), so the contracts verifying those re-presentations
	// never take even the one-signature fast path: after a broadcast run
	// every extension verification is a pure cache hit.
	cache := hashkey.NewVerifyCache(0)
	setup := newTestSetup(t, graphgen.Cycle(5), Config{
		Broadcast: true, Cache: cache, Rand: rand.New(rand.NewSource(4)),
	})
	res := run(t, setup)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("broadcast run must end AllDeal")
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits in a broadcast run: %+v", st)
	}
	if st.Fastpath != 0 {
		t.Errorf("re-presentation fell back to the fast path despite seeding: %+v", st)
	}
}

func TestOutcomeReportClasses(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	res := run(t, setup)
	for _, v := range setup.Spec.D.Vertices() {
		if res.Report.Of(v) != outcome.Deal {
			t.Errorf("vertex %d = %v, want Deal", v, res.Report.Of(v))
		}
	}
}
