package core

import (
	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// The waits-for digraph of Theorem 4.12. At any point in Phase One, W is
// the subdigraph of the transpose where (v, u) is an arc iff arc (u, v)
// has no published contract and v is a follower: v must wait for u's
// contract before it may publish its own leaving arcs. A follower can
// move only when it has indegree zero in W, so a cycle in W is a
// permanent deadlock — exactly what happens when the leaders are not a
// feedback vertex set.

// WaitsFor builds the current waits-for digraph from the set of arcs that
// already carry contracts. Vertex indexes match the swap digraph's.
func (s *Spec) WaitsFor(published map[int]bool) *digraph.Digraph {
	w := digraph.New()
	for _, v := range s.D.Vertices() {
		w.AddVertex(s.D.Name(v))
	}
	for _, a := range s.D.Arcs() {
		if published[a.ID] {
			continue
		}
		if s.IsLeader(a.Tail) {
			continue // leaders publish unconditionally; they wait for no one
		}
		w.MustAddArc(a.Tail, a.Head)
	}
	return w
}

// DeadlockCycle reports a waits-for cycle given the published-arc set, or
// nil when Phase One can still make progress. A non-nil cycle is
// permanent: no vertex on it will ever reach indegree zero.
func (s *Spec) DeadlockCycle(published map[int]bool) []digraph.Vertex {
	return s.WaitsFor(published).FindCycle()
}

// PublishedArcs reads the published-contract set off a finished or
// in-flight run's registry.
func (r *Runner) PublishedArcs() map[int]bool {
	out := make(map[int]bool, r.spec.D.NumArcs())
	for id := 0; id < r.spec.D.NumArcs(); id++ {
		if _, ok := r.reg.Chain(r.spec.Assets[id].Chain).Contract(r.spec.ContractID(id)); ok {
			out[id] = true
		}
	}
	return out
}
