package core

import (
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/sim"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Options configures a protocol run.
type Options struct {
	// Seed drives the deterministic scheduler.
	Seed int64
	// Horizon overrides the quiescence deadline (0 = spec.Horizon()).
	Horizon vtime.Ticks
}

// BroadcastMsg is the payload leaders publish on the shared broadcast
// chain under the Section 4.5 optimization: their degenerate hashkey, so
// followers can extend it with a verifiable signature chain. Tag carries
// the publishing swap's contract namespace so concurrent swaps sharing
// the broadcast chain can ignore each other's secrets.
type BroadcastMsg struct {
	Tag       string
	LockIndex int
	Key       hashkey.Hashkey
}

// Result reports a finished run.
type Result struct {
	Spec *Spec
	// Triggered reports, per arc, whether the transfer happened: the
	// contract was claimed, or is fully unlocked and therefore claimable
	// (a bearer right — see DESIGN.md).
	Triggered map[int]bool
	// Report classifies every party's payoff.
	Report *outcome.Report
	// Conforming lists the vertexes that ran the default conforming
	// behavior (never overridden with SetBehavior).
	Conforming []digraph.Vertex
	Log        *trace.Log
	Counters   metrics.Counters
	Timing     metrics.Timing
	// StorageBytes is the total stored across all chains (Theorem 4.10).
	StorageBytes int
	// Registry exposes final chain state for invariant checks.
	Registry *chain.Registry
}

// Runner executes one swap under the discrete-event model: actions land
// on chains instantly; every observer (party) is notified exactly Δ later,
// the paper's worst-case publish-and-detect latency.
type Runner struct {
	setup     *Setup
	spec      *Spec
	opts      Options
	sched     *sim.Scheduler
	reg       *chain.Registry
	log       *trace.Log
	counters  metrics.Counters
	behaviors []Behavior
	envs      []*partyEnv
	abandoned []bool
	custom    []bool // behaviors replaced via SetBehavior
	resolved  map[int]bool
	resClaim  map[int]bool
	lastPub   vtime.Ticks
	lastDone  vtime.Ticks
	ran       bool
}

// NewRunner prepares a run of the given setup. Every party defaults to the
// conforming behavior for the spec's protocol variant.
func NewRunner(setup *Setup, opts Options) *Runner {
	n := setup.Spec.D.NumVertices()
	r := &Runner{
		setup:     setup,
		spec:      setup.Spec,
		opts:      opts,
		sched:     sim.New(opts.Seed),
		log:       &trace.Log{},
		behaviors: make([]Behavior, n),
		envs:      make([]*partyEnv, n),
		abandoned: make([]bool, n),
		custom:    make([]bool, n),
		resolved:  make(map[int]bool),
		resClaim:  make(map[int]bool),
	}
	r.reg = chain.NewRegistry(r.sched)
	for v := 0; v < n; v++ {
		if setup.Spec.Kind == KindGeneral {
			r.behaviors[v] = NewConforming()
		} else {
			r.behaviors[v] = NewConformingHTLC()
		}
		r.envs[v] = &partyEnv{r: r, v: digraph.Vertex(v)}
	}
	return r
}

// SetBehavior replaces a party's behavior (adversaries, probes). The
// vertex no longer counts as conforming in the result.
func (r *Runner) SetBehavior(v digraph.Vertex, b Behavior) {
	r.behaviors[v] = b
	r.custom[v] = true
}

// Log exposes the live trace log (also available on the Result).
func (r *Runner) Log() *trace.Log { return r.log }

// Scheduler exposes the underlying scheduler, for tests that need to
// inject events.
func (r *Runner) Scheduler() *sim.Scheduler { return r.sched }

// Registry exposes the chain registry.
func (r *Runner) Registry() *chain.Registry { return r.reg }

// Run executes the protocol to quiescence and reports the outcome. A
// runner is single-use.
func (r *Runner) Run() (*Result, error) {
	if r.ran {
		return nil, fmt.Errorf("core: runner is single-use")
	}
	r.ran = true
	spec := r.spec

	// Mint every arc's asset, owned by the arc's head party.
	for id := 0; id < spec.D.NumArcs(); id++ {
		aa := spec.Assets[id]
		owner := spec.PartyOf(spec.D.Arc(id).Head)
		if err := r.reg.Chain(aa.Chain).RegisterAsset(chain.Asset{
			ID:          aa.Asset,
			Description: fmt.Sprintf("asset for arc %d", id),
			Amount:      aa.Amount,
		}, owner); err != nil {
			return nil, fmt.Errorf("core: registering assets: %w", err)
		}
	}
	if spec.Broadcast {
		r.reg.Chain(BroadcastChain)
	}
	r.reg.SetObserverAll(r.onNote)

	// Start every party at T−Δ, in vertex order. The market clearing sets
	// the start time "at least Δ in the future" precisely so leaders can
	// publish ahead: their contracts land by T−Δ and are confirmed by
	// every follower at T, which is what makes the paper's deadline
	// arithmetic exactly tight (the leader's degenerate hashkey expires
	// at T + diam·Δ, the very tick Phase One completes for it under
	// worst-case latency).
	initAt := spec.Start.Add(-vtime.Duration(spec.Delta))
	for v := range r.behaviors {
		v := v
		r.sched.At(initAt, func() { r.behaviors[v].Init(r.envs[v]) })
	}

	horizon := r.opts.Horizon
	if horizon == 0 {
		horizon = spec.Horizon()
	}
	r.sched.RunUntil(horizon)

	return r.buildResult(), nil
}

// onNote runs synchronously inside each chain mutation and fans the
// observation out to the watching parties Δ later.
func (r *Runner) onNote(n chain.Notification) {
	delta := vtime.Duration(r.spec.DeltaFor(n.Chain))
	switch n.Kind {
	case chain.NoteContractPublished:
		c, ok := n.Event.(chain.Contract)
		if !ok {
			return
		}
		arcID, ok := contractArc(c)
		if !ok {
			return
		}
		if n.At.After(r.lastPub) {
			r.lastPub = n.At
		}
		r.notifyIncident(arcID, delta, func(b Behavior, e Env) { b.OnContract(e, arcID, c) })
	case chain.NoteInvocation:
		switch ev := n.Event.(type) {
		case htlc.UnlockedEvent:
			r.notifyIncident(ev.ArcID, delta, func(b Behavior, e Env) {
				b.OnUnlock(e, ev.ArcID, ev.LockIndex, ev.Key)
			})
		case htlc.RedeemedEvent:
			r.notifyIncident(ev.ArcID, delta, func(b Behavior, e Env) {
				b.OnRedeem(e, ev.ArcID, ev.Secret)
			})
		}
	case chain.NoteTransfer:
		ch := r.reg.Chain(n.Chain)
		c, ok := ch.Contract(n.Contract)
		if !ok {
			return
		}
		arcID, ok := contractArc(c)
		if !ok {
			return
		}
		owner, _ := ch.OwnerOf(c.AssetID())
		claimed := owner == chain.ByParty(counterpartyOf(c))
		r.resolved[arcID] = true
		r.resClaim[arcID] = claimed
		if n.At.After(r.lastDone) {
			r.lastDone = n.At
		}
		r.notifyIncident(arcID, delta, func(b Behavior, e Env) { b.OnSettled(e, arcID, claimed) })
	case chain.NoteData:
		if n.Chain != BroadcastChain {
			return
		}
		msg, ok := n.Event.(BroadcastMsg)
		if !ok {
			return
		}
		for v := range r.behaviors {
			v := v
			r.sched.After(delta, func() {
				if r.abandoned[v] {
					return
				}
				r.behaviors[v].OnBroadcast(r.envs[v], msg.LockIndex, msg.Key)
			})
		}
	}
}

// notifyIncident schedules a behavior callback for the head and tail
// parties of an arc, after the detection latency.
func (r *Runner) notifyIncident(arcID int, after vtime.Duration, fn func(Behavior, Env)) {
	arc := r.spec.D.Arc(arcID)
	for _, v := range []digraph.Vertex{arc.Head, arc.Tail} {
		v := v
		r.sched.After(after, func() {
			if r.abandoned[v] {
				return
			}
			fn(r.behaviors[v], r.envs[v])
		})
	}
}

// RedeemedEvent carries the HTLC secret; UnlockedEvent the hashkey. Both
// carry their arc. contractArc recovers the arc for any contract type.
func contractArc(c chain.Contract) (int, bool) {
	switch ct := c.(type) {
	case *htlc.Swap:
		return ct.ArcID(), true
	case *htlc.HTLC:
		return ct.ArcID(), true
	default:
		return 0, false
	}
}

func counterpartyOf(c chain.Contract) chain.PartyID {
	switch ct := c.(type) {
	case *htlc.Swap:
		return ct.Params().Counter
	case *htlc.HTLC:
		return ct.Params().Counter
	default:
		return ""
	}
}

func (r *Runner) buildResult() *Result {
	spec := r.spec
	triggered := make(map[int]bool, spec.D.NumArcs())
	for id := 0; id < spec.D.NumArcs(); id++ {
		if r.resolved[id] {
			triggered[id] = r.resClaim[id]
			continue
		}
		c, ok := r.reg.Chain(spec.Assets[id].Chain).Contract(spec.ContractID(id))
		if !ok {
			continue
		}
		if sw, ok := c.(*htlc.Swap); ok && sw.AllUnlocked() {
			triggered[id] = true // claimable bearer right
		}
	}
	var conforming []digraph.Vertex
	for v := range r.behaviors {
		if !r.custom[v] {
			conforming = append(conforming, digraph.Vertex(v))
		}
	}
	return &Result{
		Spec:       spec,
		Triggered:  triggered,
		Report:     outcome.NewReport(spec.D, triggered),
		Conforming: conforming,
		Log:        r.log,
		Counters:   r.counters,
		Timing: metrics.Timing{
			Start:      spec.Start,
			Delta:      spec.Delta,
			DeployDone: r.lastPub,
			AllDone:    r.lastDone,
		},
		StorageBytes: r.reg.TotalStorageBytes(),
		Registry:     r.reg,
	}
}

// partyEnv implements Env for one vertex.
type partyEnv struct {
	r *Runner
	v digraph.Vertex
}

var _ Env = (*partyEnv)(nil)

func (e *partyEnv) Now() vtime.Ticks        { return e.r.sched.Now() }
func (e *partyEnv) Spec() *Spec             { return e.r.spec }
func (e *partyEnv) Vertex() digraph.Vertex  { return e.v }
func (e *partyEnv) Party() chain.PartyID    { return e.r.spec.PartyOf(e.v) }
func (e *partyEnv) Signer() *hashkey.Signer { return e.r.setup.Signers[e.v] }

func (e *partyEnv) Secret() (hashkey.Secret, int, bool) {
	idx, ok := e.r.spec.LeaderIndex(e.v)
	if !ok {
		return hashkey.Secret{}, 0, false
	}
	return e.r.setup.Secrets[idx], idx, true
}

func (e *partyEnv) chainOf(arcID int) *chain.Chain {
	return e.r.reg.Chain(e.r.spec.Assets[arcID].Chain)
}

func (e *partyEnv) Contract(arcID int) (chain.Contract, bool) {
	return e.chainOf(arcID).Contract(e.r.spec.ContractID(arcID))
}

func (e *partyEnv) Resolved(arcID int) (settled, claimed bool) {
	return e.r.resolved[arcID], e.r.resClaim[arcID]
}

func (e *partyEnv) Publish(arcID int) error {
	if e.r.spec.Kind == KindGeneral {
		return e.PublishSwapParams(e.r.spec.ContractParams(arcID))
	}
	h, err := htlc.NewHTLC(e.r.spec.HTLCParams(arcID))
	if err != nil {
		return err
	}
	return e.publishContract(arcID, h)
}

func (e *partyEnv) PublishSwapParams(p htlc.SwapParams) error {
	sw, err := htlc.NewSwap(p)
	if err != nil {
		return err
	}
	return e.publishContract(p.ArcID, sw)
}

func (e *partyEnv) publishContract(arcID int, c chain.Contract) error {
	if err := e.chainOf(arcID).PublishContract(e.Party(), c); err != nil {
		e.r.counters.AddFailed()
		return err
	}
	e.r.counters.AddPublish(c.StorageSize())
	e.Note(trace.KindContractPublished, arcID, -1, "")
	return nil
}

func (e *partyEnv) Unlock(arcID, lockIdx int, key hashkey.Hashkey) error {
	args := htlc.UnlockArgs{LockIndex: lockIdx, Key: key}
	err := e.chainOf(arcID).Invoke(e.Party(), e.r.spec.ContractID(arcID), htlc.MethodUnlock, args, args.WireSize())
	if err != nil {
		e.r.counters.AddFailed()
		return err
	}
	e.r.counters.AddUnlock(args.WireSize())
	e.Note(trace.KindUnlocked, arcID, lockIdx, fmt.Sprintf("path %v", key.Path))
	return nil
}

func (e *partyEnv) Redeem(arcID int, secret hashkey.Secret) error {
	args := htlc.RedeemArgs{Secret: secret}
	err := e.chainOf(arcID).Invoke(e.Party(), e.r.spec.ContractID(arcID), htlc.MethodRedeem, args, args.WireSize())
	if err != nil {
		e.r.counters.AddFailed()
		return err
	}
	e.r.counters.AddUnlock(args.WireSize())
	e.Note(trace.KindClaimed, arcID, -1, "redeemed")
	return nil
}

func (e *partyEnv) Claim(arcID int) error {
	if e.chainOf(arcID).Closed(e.r.spec.ContractID(arcID)) {
		return chain.ErrContractClosed
	}
	err := e.chainOf(arcID).Invoke(e.Party(), e.r.spec.ContractID(arcID), htlc.MethodClaim, nil, claimCallBytes)
	if err != nil {
		e.r.counters.AddFailed()
		return err
	}
	e.r.counters.AddClaim()
	e.Note(trace.KindClaimed, arcID, -1, "")
	return nil
}

func (e *partyEnv) Refund(arcID int) error {
	if e.chainOf(arcID).Closed(e.r.spec.ContractID(arcID)) {
		return chain.ErrContractClosed
	}
	err := e.chainOf(arcID).Invoke(e.Party(), e.r.spec.ContractID(arcID), htlc.MethodRefund, nil, claimCallBytes)
	if err != nil {
		e.r.counters.AddFailed()
		return err
	}
	e.r.counters.AddRefund()
	e.Note(trace.KindRefunded, arcID, -1, "")
	return nil
}

// claimCallBytes is the modeled on-chain size of a claim or refund call.
const claimCallBytes = 16

func (e *partyEnv) Broadcast(lockIdx int, key hashkey.Hashkey) {
	if !e.r.spec.Broadcast {
		return
	}
	msg := BroadcastMsg{Tag: e.r.spec.Tag, LockIndex: lockIdx, Key: key}
	e.r.reg.Chain(BroadcastChain).PublishData(e.Party(),
		fmt.Sprintf("secret for lock %d", lockIdx), msg, key.WireSize())
	e.Note(trace.KindBroadcast, -1, lockIdx, "")
}

func (e *partyEnv) At(t vtime.Ticks, fn func()) { e.r.sched.At(t, fn) }

func (e *partyEnv) Abandon(reason string) {
	if e.r.abandoned[e.v] {
		return
	}
	e.r.abandoned[e.v] = true
	e.Note(trace.KindAbandoned, -1, -1, reason)
}

func (e *partyEnv) Note(kind trace.Kind, arcID, lockIdx int, detail string) {
	e.r.log.Append(trace.Event{
		At:     e.r.sched.Now(),
		Kind:   kind,
		Party:  string(e.Party()),
		Arc:    arcID,
		Lock:   lockIdx,
		Detail: detail,
	})
}
