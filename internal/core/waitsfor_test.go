package core

import (
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

func quickRand(t *testing.T) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(77))
}

func TestWaitsForInitialState(t *testing.T) {
	// Three-cycle, leader Alice, nothing published: Bob waits for Alice,
	// Carol waits for Bob; Alice waits for no one. Acyclic — progress is
	// possible.
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	w := setup.Spec.WaitsFor(nil)
	if w.NumArcs() != 2 {
		t.Fatalf("waits-for arcs = %d, want 2", w.NumArcs())
	}
	if !w.HasArcBetween(1, 0) || !w.HasArcBetween(2, 1) {
		t.Errorf("waits-for structure wrong: %v", w)
	}
	if cyc := setup.Spec.DeadlockCycle(nil); cyc != nil {
		t.Errorf("FVS leaders must never deadlock, got cycle %v", cyc)
	}
}

func TestWaitsForDrainsAsContractsPublish(t *testing.T) {
	setup := newTestSetup(t, graphgen.ThreeWay(), Config{})
	published := map[int]bool{0: true} // Alice's A->B is up
	w := setup.Spec.WaitsFor(published)
	if w.HasArcBetween(1, 0) {
		t.Error("Bob should no longer wait for Alice")
	}
	published[1] = true
	published[2] = true
	if setup.Spec.WaitsFor(published).NumArcs() != 0 {
		t.Error("fully published swap should have an empty waits-for digraph")
	}
}

func TestWaitsForDetectsTheorem412Deadlock(t *testing.T) {
	// Leaders {A} on the two-leader triangle: B and C wait for each
	// other. The cycle is present from the initial state and survives
	// the leader's publications — the Theorem 4.12 argument, executable.
	setup, err := NewSetup(graphgen.TwoLeaderTriangle(), Config{
		Leaders:     []digraph.Vertex{0},
		AllowUnsafe: true,
		Rand:        quickRand(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	cyc := setup.Spec.DeadlockCycle(nil)
	if cyc == nil {
		t.Fatal("expected a waits-for cycle with non-FVS leaders")
	}
	// The cycle is exactly the leaderless 2-cycle {B, C}.
	inCycle := map[digraph.Vertex]bool{}
	for _, v := range cyc {
		inCycle[v] = true
	}
	if !inCycle[1] || !inCycle[2] || inCycle[0] {
		t.Errorf("cycle = %v, want exactly {B, C}", cyc)
	}

	// Run the protocol: the runner's final published set still shows the
	// same permanent deadlock.
	r := NewRunner(setup, Options{Seed: 3})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if cyc := setup.Spec.DeadlockCycle(r.PublishedArcs()); cyc == nil {
		t.Error("deadlock should persist after the leader's publications")
	}
}

func TestWaitsForCleanAfterConformingRun(t *testing.T) {
	setup := newTestSetup(t, graphgen.TwoLeaderTriangle(), Config{})
	r := NewRunner(setup, Options{Seed: 4})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if w := setup.Spec.WaitsFor(r.PublishedArcs()); w.NumArcs() != 0 {
		t.Errorf("conforming run should leave no one waiting, got %v", w)
	}
}
