// Package core implements the paper's contribution: the general atomic
// cross-chain swap protocol of Section 4. A Spec pins everything the
// parties must agree on (the digraph, the leaders and their hashlocks, Δ,
// the start time, the diameter bound, the per-arc/per-lock timelock
// vectors); Behaviors are the party state machines (the conforming
// protocol lives in behavior.go, deviations in the adversary package);
// the Runner wires parties, mock chains, and the discrete-event scheduler
// together and reports outcomes, timing, storage, and communication.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Kind selects the protocol variant a spec describes.
type Kind int

// Protocol variants.
const (
	// KindGeneral is the paper's main protocol (Section 4.5): hashlock
	// vectors opened by path-signed hashkeys on Swap contracts.
	KindGeneral Kind = iota + 1
	// KindSingleLeader is the Section 4.6 special case: one leader,
	// classic HTLCs with the timeout staircase
	// (diam(D) + D(v, leader) + 1)·Δ. No signatures needed.
	KindSingleLeader
	// KindUniformTimeout is the deliberately broken baseline from the
	// Section 1 discussion: classic HTLCs whose timeouts are all equal,
	// vulnerable to the last-moment-reveal attack. It exists so the
	// experiments can demonstrate why the staircase matters.
	KindUniformTimeout
)

var kindNames = map[Kind]string{
	KindGeneral:        "general",
	KindSingleLeader:   "single-leader",
	KindUniformTimeout: "uniform-timeout",
}

// String names the protocol variant.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DefaultDelta is the default Δ in ticks. Ten ticks keep sub-Δ ordering
// visible in traces.
const DefaultDelta vtime.Duration = 10

// ArcAsset names the asset an arc transfers and the chain it lives on.
type ArcAsset struct {
	Chain  string
	Asset  chain.AssetID
	Amount uint64
}

// Spec is the public swap plan: everything every party must agree on
// before the protocol starts. The market-clearing service publishes it;
// contract verification is a field-by-field comparison against it.
type Spec struct {
	Kind Kind
	// Tag namespaces the spec's contract IDs so many swaps can coexist on
	// shared chains (the clearing engine runs one swap per tag). Empty for
	// standalone runs, preserving the historical arcN@chain IDs.
	Tag     string
	D       *digraph.Digraph
	Leaders []digraph.Vertex // sorted, one hashlock each
	Locks   []hashkey.Lock   // Locks[i] belongs to Leaders[i]
	Parties []chain.PartyID  // by vertex
	Keys    hashkey.Directory
	Assets  []ArcAsset // by arc ID
	Start   vtime.Ticks
	Delta   vtime.Duration
	// ChainDeltas overrides Δ per chain: the effective
	// publish-plus-confirm bound of chains whose commitment model makes
	// them slower than the base Delta (a chain Δ override, confirmation
	// depth, or both). The timelock ladder is computed from the largest
	// involved Δ — the bound must hold on every chain a hashkey's path
	// crosses, so the ladder takes the conservative max. A nil or empty
	// map means every chain runs at Delta, which is the historical
	// single-Δ model bit-for-bit. Only chains that differ from Delta
	// should carry entries.
	ChainDeltas map[string]vtime.Duration
	// DiamBound is the diameter bound all contracts use — exact diam(D)
	// when computable, an upper bound otherwise. Safety holds for any
	// consistently used upper bound.
	DiamBound int
	// Broadcast enables the Section 4.5 Phase Two optimization: leaders
	// also publish their secrets on a shared broadcast chain, and
	// contracts accept the virtual length-1 path (counterparty, leader).
	Broadcast bool

	// Cache is the node-local hashkey verification cache threaded into
	// every contract built from this spec. It is runtime infrastructure,
	// not part of the published plan: plan verification ignores it, and
	// distinct nodes (or a whole clearing engine) may share one cache
	// across many specs because entries are content-addressed.
	Cache *hashkey.VerifyCache

	// longestFrom caches longest-simple-path lengths per start vertex.
	longestFrom map[digraph.Vertex][]int
	// tlMu guards the lazily filled Start-derived caches below, so a Spec
	// whose timelocks were never warmed (e.g. an engine swap before its
	// Start is pinned) can fill them safely from any goroutine.
	tlMu sync.Mutex
	// arcTimelocks caches the per-arc timelock vectors, shared read-only
	// by every contract of an arc.
	arcTimelocks [][]vtime.Ticks
	// maxTimelock caches MaxTimelock (0 = unset).
	maxTimelock vtime.Ticks
}

// Validation errors.
var (
	ErrNotStronglyConnected = errors.New("core: digraph is not strongly connected (Theorem 3.5)")
	ErrLeadersNotFVS        = errors.New("core: leaders are not a feedback vertex set (Theorem 4.12)")
	ErrSpecShape            = errors.New("core: malformed spec")
)

// Validate checks the spec against the protocol's preconditions. With
// allowUnsafe the game-theoretic preconditions (strong connectivity,
// leaders forming an FVS) are skipped so the impossibility experiments can
// run the protocol where the paper proves it cannot work.
func (s *Spec) Validate(allowUnsafe bool) error {
	if s.D == nil || s.D.NumVertices() < 2 || s.D.NumArcs() < 1 {
		return fmt.Errorf("%w: need at least 2 vertexes and 1 arc", ErrSpecShape)
	}
	switch s.Kind {
	case KindGeneral, KindSingleLeader, KindUniformTimeout:
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrSpecShape, int(s.Kind))
	}
	if len(s.Leaders) == 0 || len(s.Leaders) != len(s.Locks) {
		return fmt.Errorf("%w: %d leaders, %d locks", ErrSpecShape, len(s.Leaders), len(s.Locks))
	}
	if s.Kind != KindGeneral && len(s.Leaders) != 1 {
		return fmt.Errorf("%w: %s protocol needs exactly one leader", ErrSpecShape, s.Kind)
	}
	seen := make(map[digraph.Vertex]bool, len(s.Leaders))
	for _, l := range s.Leaders {
		if int(l) < 0 || int(l) >= s.D.NumVertices() {
			return fmt.Errorf("%w: leader %d out of range", ErrSpecShape, l)
		}
		if seen[l] {
			return fmt.Errorf("%w: duplicate leader %d", ErrSpecShape, l)
		}
		seen[l] = true
	}
	if len(s.Parties) != s.D.NumVertices() {
		return fmt.Errorf("%w: %d party IDs for %d vertexes", ErrSpecShape, len(s.Parties), s.D.NumVertices())
	}
	ids := make(map[chain.PartyID]bool, len(s.Parties))
	for v, p := range s.Parties {
		if p == "" {
			return fmt.Errorf("%w: vertex %d has empty party ID", ErrSpecShape, v)
		}
		if ids[p] {
			return fmt.Errorf("%w: duplicate party ID %q", ErrSpecShape, p)
		}
		ids[p] = true
		if _, ok := s.Keys[digraph.Vertex(v)]; !ok {
			return fmt.Errorf("%w: no public key for vertex %d", ErrSpecShape, v)
		}
	}
	if len(s.Assets) != s.D.NumArcs() {
		return fmt.Errorf("%w: %d arc assets for %d arcs", ErrSpecShape, len(s.Assets), s.D.NumArcs())
	}
	assetSeen := make(map[string]bool, len(s.Assets))
	for id, aa := range s.Assets {
		if aa.Chain == "" || aa.Asset == "" {
			return fmt.Errorf("%w: arc %d has empty chain or asset", ErrSpecShape, id)
		}
		key := aa.Chain + "/" + string(aa.Asset)
		if assetSeen[key] {
			return fmt.Errorf("%w: asset %s appears on two arcs", ErrSpecShape, key)
		}
		assetSeen[key] = true
	}
	if s.Delta <= 0 {
		return fmt.Errorf("%w: delta %d must be positive", ErrSpecShape, s.Delta)
	}
	for name, d := range s.ChainDeltas {
		if d <= 0 {
			return fmt.Errorf("%w: chain %s delta %d must be positive", ErrSpecShape, name, d)
		}
	}
	if s.Start < vtime.Ticks(s.Delta) {
		// Leaders deploy ahead of T; the clearing service must announce a
		// start "at least Δ in the future" (Section 4.2).
		return fmt.Errorf("%w: start %d must be at least one delta (%d)", ErrSpecShape, s.Start, s.Delta)
	}
	if diam, exact := s.D.Diameter(); s.DiamBound < diam || (!exact && s.DiamBound < s.D.NumVertices()-1) {
		return fmt.Errorf("%w: diameter bound %d below diameter %d", ErrSpecShape, s.DiamBound, diam)
	}
	if allowUnsafe {
		return nil
	}
	if !s.D.StronglyConnected() {
		return ErrNotStronglyConnected
	}
	if !s.D.IsFeedbackVertexSet(s.Leaders) {
		return ErrLeadersNotFVS
	}
	return nil
}

// SetStart rebases the protocol start time and invalidates every cached
// quantity derived from it (per-arc timelocks, the max-timelock bound).
// The clearing engine pins Start only when a worker picks the swap up, so
// assigning the field directly would leave stale deadlines behind.
func (s *Spec) SetStart(t vtime.Ticks) {
	s.Start = t
	s.tlMu.Lock()
	s.arcTimelocks = nil
	s.maxTimelock = 0
	s.tlMu.Unlock()
}

// LeaderIndex returns v's hashlock index and whether v is a leader.
func (s *Spec) LeaderIndex(v digraph.Vertex) (int, bool) {
	for i, l := range s.Leaders {
		if l == v {
			return i, true
		}
	}
	return 0, false
}

// IsLeader reports whether v is a leader.
func (s *Spec) IsLeader(v digraph.Vertex) bool {
	_, ok := s.LeaderIndex(v)
	return ok
}

// PartyOf returns the party ID of a vertex.
func (s *Spec) PartyOf(v digraph.Vertex) chain.PartyID { return s.Parties[v] }

// VertexOf returns the vertex of a party ID.
func (s *Spec) VertexOf(p chain.PartyID) (digraph.Vertex, bool) {
	for v, id := range s.Parties {
		if id == p {
			return digraph.Vertex(v), true
		}
	}
	return 0, false
}

// ContractID returns the canonical contract identifier for an arc,
// namespaced by the spec's tag when one is set.
func (s *Spec) ContractID(arcID int) chain.ContractID {
	if s.Tag != "" {
		return chain.ContractID(fmt.Sprintf("%s/arc%d@%s", s.Tag, arcID, s.Assets[arcID].Chain))
	}
	return chain.ContractID(fmt.Sprintf("arc%d@%s", arcID, s.Assets[arcID].Chain))
}

// BroadcastChain is the name of the shared chain used by the market
// clearing service and the Phase Two broadcast optimization.
const BroadcastChain = "broadcast"

// Precompute fills the longest-path cache for every vertex, the per-arc
// timelock vectors, and the max-timelock bound. NewSetup calls it so a
// finished Spec is read-only and safe for concurrent use (the goroutine
// runtime shares one Spec across parties), and so the per-contract hot
// path (ContractParams, refund alarms, deadline checks) never recomputes
// longest paths. Idempotent. The cached vectors also derive from D,
// Leaders, Delta, and DiamBound: a precomputed Spec treats those fields
// as frozen, and the one sanctioned post-hoc mutation — rebasing Start —
// must go through SetStart, which invalidates exactly these caches.
func (s *Spec) Precompute() {
	s.precomputePaths()
	s.tlMu.Lock()
	s.fillTimelocksLocked()
	if s.maxTimelock == 0 {
		s.maxTimelock = s.computeMaxTimelock()
	}
	s.tlMu.Unlock()
}

// precomputePaths fills the Start-independent longest-path cache. NewSetup
// stops here: the Start-derived timelock caches fill lazily (or in the
// runtime's Precompute), so an engine that rebases Start when a worker
// picks the swap up never pays for throwaway timelock vectors.
func (s *Spec) precomputePaths() {
	for _, v := range s.D.Vertices() {
		s.longestPathsFrom(v)
	}
}

// fillTimelocksLocked populates arcTimelocks if unset. Caller holds tlMu.
func (s *Spec) fillTimelocksLocked() {
	if s.arcTimelocks != nil {
		return
	}
	tls := make([][]vtime.Ticks, s.D.NumArcs())
	for id := range tls {
		tls[id] = s.computeTimelocks(id)
	}
	s.arcTimelocks = tls
}

// longestPathsFrom returns (caching) the longest-simple-path lengths from v.
func (s *Spec) longestPathsFrom(v digraph.Vertex) []int {
	if s.longestFrom == nil {
		s.longestFrom = make(map[digraph.Vertex][]int)
	}
	if got, ok := s.longestFrom[v]; ok {
		return got
	}
	best, _ := s.D.LongestPathsFrom(v)
	s.longestFrom[v] = best
	return best
}

// maxPathTo returns the longest-simple-path length from v to leader index
// i, clamped to the diameter bound (and to the bound when inexact or
// unreachable — a safe over-approximation).
func (s *Spec) maxPathTo(v digraph.Vertex, i int) int {
	best := s.longestPathsFrom(v)
	p := best[s.Leaders[i]]
	if p < 0 || p > s.DiamBound {
		return s.DiamBound
	}
	return p
}

// DeltaFor returns the effective Δ for events on the named chain: the
// per-chain override when one is set, else the base Delta.
func (s *Spec) DeltaFor(chainName string) vtime.Duration {
	if d, ok := s.ChainDeltas[chainName]; ok {
		return d
	}
	return s.Delta
}

// ladderDelta is the Δ the timelock ladder (and every deadline derived
// from it) is built on: the largest effective Δ of any chain carrying
// an override, floored at the base Delta. A hashkey's path may cross
// any chain of the swap, so the per-step bound must be the worst one.
func (s *Spec) ladderDelta() vtime.Duration {
	delta := s.Delta
	for _, d := range s.ChainDeltas {
		if d > delta {
			delta = d
		}
	}
	return delta
}

// Timelocks returns the per-lock absolute deadlines for an arc's Swap
// contract: Start + (DiamBound + maxpath(tail, leader_i))·Δ. A hashkey for
// lock i presented on this arc can never be valid after Timelocks[i], so
// the contract is refundable once a lock is still closed strictly after it.
// The returned slice is a fresh copy; the hot path uses timelocksShared.
func (s *Spec) Timelocks(arcID int) []vtime.Ticks {
	return append([]vtime.Ticks(nil), s.timelocksShared(arcID)...)
}

// timelocksShared returns the arc's timelock vector without copying —
// computed once per spec (lazily, under tlMu), shared read-only by every
// contract of the arc. Callers must not mutate it.
func (s *Spec) timelocksShared(arcID int) []vtime.Ticks {
	s.tlMu.Lock()
	s.fillTimelocksLocked()
	tl := s.arcTimelocks[arcID]
	s.tlMu.Unlock()
	return tl
}

// computeTimelocks derives one arc's timelock vector from scratch.
func (s *Spec) computeTimelocks(arcID int) []vtime.Ticks {
	tail := s.D.Arc(arcID).Tail
	delta := s.ladderDelta()
	out := make([]vtime.Ticks, len(s.Leaders))
	for i := range s.Leaders {
		out[i] = s.Start.Add(vtime.Scale(s.DiamBound+s.maxPathTo(tail, i), delta))
	}
	return out
}

// HTLCTimeout returns the single absolute timeout for an arc's classic
// HTLC under the single-leader or uniform-timeout variants.
func (s *Spec) HTLCTimeout(arcID int) vtime.Ticks {
	switch s.Kind {
	case KindSingleLeader:
		// (diam(D) + D(v, leader) + 1)·Δ, Lemma 4.13's staircase. The
		// follower subdigraph is acyclic (leader is an FVS), so the exact
		// polynomial computation applies at any scale.
		leader := s.Leaders[0]
		tail := s.D.Arc(arcID).Tail
		dist, ok := s.D.LongestPathsToSink(leader)
		d := s.DiamBound
		if ok && dist[tail] >= 0 && dist[tail] <= s.DiamBound {
			d = dist[tail]
		}
		return s.Start.Add(vtime.Scale(s.DiamBound+d+1, s.ladderDelta()))
	default:
		// Uniform: every arc expires together — the Section 1 mistake. The
		// value is generous enough for all-conforming runs to finish, so
		// only the last-moment-reveal attack exposes the flaw.
		return s.Start.Add(vtime.Scale(2*s.DiamBound+1, s.ladderDelta()))
	}
}

// ContractParams returns the canonical Swap-contract parameters for an
// arc. Followers verify published contracts against these (Phase One's
// "verifies that contract is a correct swap contract").
func (s *Spec) ContractParams(arcID int) htlc.SwapParams {
	arc := s.D.Arc(arcID)
	return htlc.SwapParams{
		ID:      s.ContractID(arcID),
		ArcID:   arcID,
		Digraph: s.D,
		Leaders: append([]digraph.Vertex(nil), s.Leaders...),
		Locks:   append([]hashkey.Lock(nil), s.Locks...),
		// Copied from the precomputed vector, not shared: deviation hooks
		// may mutate published params, which must never reach the spec.
		Timelocks: s.Timelocks(arcID),
		Party:     s.Parties[arc.Head],
		PartyV:    arc.Head,
		Counter:   s.Parties[arc.Tail],
		CounterV:  arc.Tail,
		Asset:     s.Assets[arcID].Asset,
		Start:     s.Start,
		// The ladder Δ, not the base: the contract's hashkey-validity
		// deadline (Start + (DiamBound + pathlen)·Δ) must agree with the
		// timelock ladder or claims near a deadline would break on a swap
		// that spans a slow chain.
		Delta:     s.ladderDelta(),
		DiamBound: s.DiamBound,
		Directory: s.Keys,
		Broadcast: s.Broadcast,
		Cache:     s.Cache,
	}
}

// HTLCParams returns the canonical classic-HTLC parameters for an arc
// under the single-leader and uniform-timeout variants.
func (s *Spec) HTLCParams(arcID int) htlc.HTLCParams {
	arc := s.D.Arc(arcID)
	return htlc.HTLCParams{
		ID:      s.ContractID(arcID),
		ArcID:   arcID,
		Lock:    s.Locks[0],
		Timeout: s.HTLCTimeout(arcID),
		Party:   s.Parties[arc.Head],
		Counter: s.Parties[arc.Tail],
		Asset:   s.Assets[arcID].Asset,
	}
}

// MaxTimelock returns the latest deadline any contract of this swap can
// reach — by when every conforming party's assets are settled or
// refundable. Computed once per spec (lazily, under tlMu).
func (s *Spec) MaxTimelock() vtime.Ticks {
	s.tlMu.Lock()
	if s.maxTimelock == 0 {
		s.fillTimelocksLocked()
		s.maxTimelock = s.computeMaxTimelock()
	}
	max := s.maxTimelock
	s.tlMu.Unlock()
	return max
}

// computeMaxTimelock derives the bound from the filled arcTimelocks cache.
// Caller holds tlMu with fillTimelocksLocked already run.
func (s *Spec) computeMaxTimelock() vtime.Ticks {
	max := s.Start
	for id := 0; id < s.D.NumArcs(); id++ {
		switch s.Kind {
		case KindGeneral:
			for _, tl := range s.arcTimelocks[id] {
				if tl.After(max) {
					max = tl
				}
			}
		default:
			if tl := s.HTLCTimeout(id); tl.After(max) {
				max = tl
			}
		}
	}
	return max
}

// Horizon returns the tick by which a run is certainly quiescent: the max
// timelock plus detection and settlement slack.
func (s *Spec) Horizon() vtime.Ticks {
	return s.MaxTimelock().Add(vtime.Scale(4, s.ladderDelta()))
}

// Setup couples the public Spec with the private material a simulation
// needs to play every party: signing keys per vertex and the leaders'
// secrets. A real deployment would never hold these in one place; the
// experiments must.
type Setup struct {
	Spec    *Spec
	Signers []*hashkey.Signer // by vertex
	Secrets []hashkey.Secret  // by leader index
}

// Config parameterizes NewSetup. The zero value picks sensible defaults:
// minimum-FVS leaders, Δ = DefaultDelta, start at Δ, vertex names as party
// IDs, one chain and one asset per arc.
type Config struct {
	Kind        Kind             // default KindGeneral
	Tag         string           // contract-ID namespace for shared chains
	Leaders     []digraph.Vertex // default: exact-min FVS (greedy when large)
	Delta       vtime.Duration   // default DefaultDelta
	Start       vtime.Ticks      // default: Delta
	Rand        io.Reader        // default: crypto/rand; pass seeded for determinism
	Parties     []chain.PartyID  // default: vertex display names
	Assets      []ArcAsset       // default: chain "chain-aN", asset "asset-aN"
	Broadcast   bool
	AllowUnsafe bool
	DiamBound   int // default: computed from D
	// ChainDeltas carries per-chain effective-Δ overrides into the spec
	// (see Spec.ChainDeltas). Leave nil for the single-Δ model.
	ChainDeltas map[string]vtime.Duration
	// Keyring, when set, supplies persistent party identities: signers for
	// known parties are reused (rebound to their vertex) and new parties
	// get a keypair generated once, in the keyring. When nil every setup
	// generates fresh identities from Rand, as a one-shot swap would.
	Keyring *Keyring
	// Cache, when set, is shared as the spec's hashkey verification cache;
	// when nil each setup gets its own. A clearing engine passes one cache
	// for all its swaps (entries are content-addressed, so sharing is safe).
	Cache *hashkey.VerifyCache
}

// NewSetup builds and validates a full swap setup over d.
func NewSetup(d *digraph.Digraph, cfg Config) (*Setup, error) {
	if cfg.Kind == 0 {
		cfg.Kind = KindGeneral
	}
	if cfg.Delta == 0 {
		cfg.Delta = DefaultDelta
	}
	if cfg.Start == 0 {
		cfg.Start = vtime.Ticks(cfg.Delta)
	}
	if cfg.Rand == nil {
		cfg.Rand = hashkey.CryptoRand()
	}
	leaders := cfg.Leaders
	if leaders == nil {
		leaders, _ = d.MinFVS()
		if len(leaders) == 0 && d.NumVertices() > 0 {
			// Acyclic graphs fail validation later anyway (not strongly
			// connected), but keep the shape sane for unsafe runs.
			leaders = []digraph.Vertex{0}
		}
	}
	leaders = append([]digraph.Vertex(nil), leaders...)
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })

	parties := cfg.Parties
	if parties == nil {
		parties = make([]chain.PartyID, d.NumVertices())
		for v := range parties {
			parties[v] = chain.PartyID(d.Name(digraph.Vertex(v)))
		}
	}
	assets := cfg.Assets
	if assets == nil {
		assets = make([]ArcAsset, d.NumArcs())
		for id := range assets {
			assets[id] = ArcAsset{
				Chain:  fmt.Sprintf("chain-a%d", id),
				Asset:  chain.AssetID(fmt.Sprintf("asset-a%d", id)),
				Amount: 1,
			}
		}
	}
	diamBound := cfg.DiamBound
	if diamBound == 0 {
		diamBound = d.DiameterBound()
	}

	signers := make([]*hashkey.Signer, d.NumVertices())
	for v := range signers {
		var s *hashkey.Signer
		var err error
		if cfg.Keyring != nil {
			// Persistent identity: keygen only if the party is new to the
			// keyring, and never from this setup's Rand.
			s, err = cfg.Keyring.SignerFor(parties[v], digraph.Vertex(v))
		} else {
			s, err = hashkey.NewSigner(digraph.Vertex(v), cfg.Rand)
		}
		if err != nil {
			return nil, fmt.Errorf("core: setup: %w", err)
		}
		signers[v] = s
	}
	secrets := make([]hashkey.Secret, len(leaders))
	locks := make([]hashkey.Lock, len(leaders))
	for i := range leaders {
		sec, err := hashkey.NewSecret(cfg.Rand)
		if err != nil {
			return nil, fmt.Errorf("core: setup: %w", err)
		}
		secrets[i] = sec
		locks[i] = sec.Lock()
	}

	cache := cfg.Cache
	if cache == nil {
		cache = hashkey.NewVerifyCache(0)
	}
	spec := &Spec{
		Kind:      cfg.Kind,
		Tag:       cfg.Tag,
		D:         d,
		Leaders:   leaders,
		Locks:     locks,
		Parties:   parties,
		Keys:      hashkey.NewDirectory(signers...),
		Assets:    assets,
		Start:     cfg.Start,
		Delta:     cfg.Delta,
		DiamBound: diamBound,
		Broadcast: cfg.Broadcast,
		Cache:     cache,
	}
	if len(cfg.ChainDeltas) > 0 {
		spec.ChainDeltas = make(map[string]vtime.Duration, len(cfg.ChainDeltas))
		for name, d := range cfg.ChainDeltas {
			spec.ChainDeltas[name] = d
		}
	}
	if err := spec.Validate(cfg.AllowUnsafe); err != nil {
		return nil, err
	}
	// Paths only: the Start-derived timelock caches fill lazily (or in the
	// runtime's Precompute), because the engine rebases Start after setup.
	spec.precomputePaths()
	return &Setup{Spec: spec, Signers: signers, Secrets: secrets}, nil
}
