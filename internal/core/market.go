package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Market clearing (Section 4.2). Parties send offers — the transfers they
// are willing to make — to a clearing service, which combines them into a
// swap digraph, chooses leaders forming a feedback vertex set, and
// publishes the swap plan (the Spec). The service is not trusted: every
// party can check the published plan against its own offer with
// VerifyPlan before participating.

// ProposedTransfer is one asset a party offers to hand over.
type ProposedTransfer struct {
	To     chain.PartyID
	Chain  string
	Asset  chain.AssetID
	Amount uint64
}

// Offer is a party's submission to the clearing service.
type Offer struct {
	Party chain.PartyID
	Give  []ProposedTransfer
}

// Clearing errors.
var (
	ErrEmptyOffer     = errors.New("core: offer proposes no transfers")
	ErrSelfTransfer   = errors.New("core: offer transfers to its own party")
	ErrUnknownParty   = errors.New("core: transfer to a party that submitted no offer")
	ErrDuplicateOffer = errors.New("core: party submitted more than one offer")
	ErrPlanMismatch   = errors.New("core: published plan does not match the offer")
)

// Clear combines offers into a validated swap setup. Parties are assigned
// vertexes in sorted-ID order; arcs follow the offers in the same order,
// so clearing is deterministic. Leaders, Δ, start time, and randomness
// come from cfg (cfg.Parties and cfg.Assets are derived from the offers
// and must be unset).
func Clear(offers []Offer, cfg Config) (*Setup, error) {
	if len(offers) < 2 {
		return nil, fmt.Errorf("%w: need at least two offers, got %d", ErrSpecShape, len(offers))
	}
	if cfg.Parties != nil || cfg.Assets != nil {
		return nil, fmt.Errorf("%w: Clear derives parties and assets from offers", ErrSpecShape)
	}
	byParty := make(map[chain.PartyID]Offer, len(offers))
	ids := make([]chain.PartyID, 0, len(offers))
	for _, o := range offers {
		if len(o.Give) == 0 {
			return nil, fmt.Errorf("%w: party %s", ErrEmptyOffer, o.Party)
		}
		if _, dup := byParty[o.Party]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateOffer, o.Party)
		}
		byParty[o.Party] = o
		ids = append(ids, o.Party)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	d := digraph.New()
	vertexOf := make(map[chain.PartyID]digraph.Vertex, len(ids))
	for _, id := range ids {
		vertexOf[id] = d.AddVertex(string(id))
	}
	var assets []ArcAsset
	for _, id := range ids {
		for _, tr := range byParty[id].Give {
			if tr.To == id {
				return nil, fmt.Errorf("%w: %s -> %s", ErrSelfTransfer, id, tr.To)
			}
			to, ok := vertexOf[tr.To]
			if !ok {
				return nil, fmt.Errorf("%w: %s -> %s", ErrUnknownParty, id, tr.To)
			}
			if _, err := d.AddArc(vertexOf[id], to); err != nil {
				return nil, fmt.Errorf("core: clearing: %w", err)
			}
			assets = append(assets, ArcAsset{Chain: tr.Chain, Asset: tr.Asset, Amount: tr.Amount})
		}
	}
	cfg.Parties = ids
	cfg.Assets = assets
	return NewSetup(d, cfg)
}

// VerifyPlan checks a published plan against one party's own offer: every
// transfer the party offered appears as an arc with the right recipient
// and asset, and the plan assigns the party no transfers it did not offer.
// This is the consistency check that makes the clearing service untrusted.
func VerifyPlan(spec *Spec, offer Offer) error {
	v, ok := spec.VertexOf(offer.Party)
	if !ok {
		return fmt.Errorf("%w: party %s not in plan", ErrPlanMismatch, offer.Party)
	}
	leaving := spec.D.Out(v)
	if len(leaving) != len(offer.Give) {
		return fmt.Errorf("%w: plan assigns %d transfers, offer has %d",
			ErrPlanMismatch, len(leaving), len(offer.Give))
	}
	matched := make([]bool, len(offer.Give))
	for _, arcID := range leaving {
		arc := spec.D.Arc(arcID)
		aa := spec.Assets[arcID]
		found := false
		for i, tr := range offer.Give {
			if matched[i] {
				continue
			}
			if spec.PartyOf(arc.Tail) == tr.To && aa.Chain == tr.Chain &&
				aa.Asset == tr.Asset && aa.Amount == tr.Amount {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: plan arc %d (to %s, asset %s) not in offer",
				ErrPlanMismatch, arcID, spec.PartyOf(arc.Tail), aa.Asset)
		}
	}
	return nil
}
