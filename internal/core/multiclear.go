package core

import (
	"fmt"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Multi-swap clearing: the batch generalization of Clear for the clearing
// engine. One clearing round looks at every pending offer at once and
// carves the offer graph into disjoint swap digraphs, each of which clears
// independently (and can then execute concurrently with the others). An
// offer joins a swap only if all of its recipients are in the same
// strongly connected component — the Theorem 3.5 precondition — so offers
// whose counterparties have not shown up yet stay pending for a later
// round rather than poisoning the batch.

// Batch is one clearing round's result: disjoint groups of offers that
// each form a strongly connected swap digraph, plus the residual offers
// that cannot clear yet (their recipients are missing or not mutually
// reachable).
type Batch struct {
	// Groups are disjoint clearable offer sets, deterministic order
	// (sorted by the smallest party ID in the group).
	Groups [][]Offer
	// Residual holds offers that no group could absorb this round.
	Residual []Offer
}

// PartitionOffers splits a batch of offers into disjoint clearable groups
// and a residual. An offer clears only when every one of its proposed
// recipients sits in the same strongly connected component of the offer
// graph; removing unclearable offers can break connectivity for others,
// so the partition iterates to a fixpoint. Structural offer errors
// (duplicate party, empty offer, self-transfer) are reported instead of
// silently shunted to the residual.
func PartitionOffers(offers []Offer) (*Batch, error) {
	byParty := make(map[chain.PartyID]Offer, len(offers))
	for _, o := range offers {
		if len(o.Give) == 0 {
			return nil, fmt.Errorf("%w: party %s", ErrEmptyOffer, o.Party)
		}
		if _, dup := byParty[o.Party]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateOffer, o.Party)
		}
		for _, tr := range o.Give {
			if tr.To == o.Party {
				return nil, fmt.Errorf("%w: %s -> %s", ErrSelfTransfer, o.Party, tr.To)
			}
		}
		byParty[o.Party] = o
	}

	// Active set shrinks monotonically until every remaining offer is
	// fully internal to its component.
	active := make(map[chain.PartyID]bool, len(byParty))
	for p := range byParty {
		active[p] = true
	}
	for {
		removed := false
		ids := sortedParties(active)
		vertexOf := make(map[chain.PartyID]digraph.Vertex, len(ids))
		d := digraph.New()
		for _, id := range ids {
			vertexOf[id] = d.AddVertex(string(id))
		}
		for _, id := range ids {
			for _, tr := range byParty[id].Give {
				if to, ok := vertexOf[tr.To]; ok {
					d.MustAddArc(vertexOf[id], to)
				}
			}
		}
		compOf := make(map[chain.PartyID]int, len(ids))
		for ci, comp := range d.SCCs() {
			for _, v := range comp {
				compOf[chain.PartyID(d.Name(v))] = ci
			}
		}
		// Drop any active offer with a recipient outside its component
		// (including recipients that never submitted an offer).
		for _, id := range ids {
			for _, tr := range byParty[id].Give {
				if !active[tr.To] || compOf[tr.To] != compOf[id] {
					delete(active, id)
					removed = true
					break
				}
			}
		}
		if !removed {
			// Fixpoint: group the survivors by component.
			grouped := make(map[int][]Offer)
			for _, id := range ids {
				grouped[compOf[id]] = append(grouped[compOf[id]], byParty[id])
			}
			b := &Batch{}
			for _, g := range grouped {
				if len(g) < 2 {
					// A singleton component at fixpoint means a party whose
					// only transfers point at itself-sized components; it
					// cannot form a swap.
					b.Residual = append(b.Residual, g...)
					continue
				}
				sort.Slice(g, func(i, j int) bool { return g[i].Party < g[j].Party })
				b.Groups = append(b.Groups, g)
			}
			for _, o := range offers {
				if !active[o.Party] {
					b.Residual = append(b.Residual, o)
				}
			}
			sort.Slice(b.Groups, func(i, j int) bool {
				return b.Groups[i][0].Party < b.Groups[j][0].Party
			})
			sort.Slice(b.Residual, func(i, j int) bool {
				return b.Residual[i].Party < b.Residual[j].Party
			})
			return b, nil
		}
	}
}

// ClearBatch partitions offers and clears every group into its own Setup.
// Each group's config starts from base; every group gets a distinct tag —
// the group index appended to base.Tag ("batch" when unset) — so the
// resulting swaps can execute concurrently over shared chains without
// contract-ID collisions. Residual offers are returned for the next round.
func ClearBatch(offers []Offer, base Config) ([]*Setup, []Offer, error) {
	b, err := PartitionOffers(offers)
	if err != nil {
		return nil, nil, err
	}
	prefix := base.Tag
	if prefix == "" {
		prefix = "batch"
	}
	setups := make([]*Setup, 0, len(b.Groups))
	for i, g := range b.Groups {
		cfg := base
		cfg.Parties, cfg.Assets, cfg.Leaders = nil, nil, nil
		cfg.Tag = fmt.Sprintf("%s-%d", prefix, i)
		setup, err := Clear(g, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: clearing group %d: %w", i, err)
		}
		setups = append(setups, setup)
	}
	return setups, b.Residual, nil
}

func sortedParties(set map[chain.PartyID]bool) []chain.PartyID {
	out := make([]chain.PartyID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
