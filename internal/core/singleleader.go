package core

import (
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/trace"
)

// ConformingHTLC is the paper's protocol for the single-leader special
// case (Section 4.6) and for the uniform-timeout baseline: classic HTLCs
// with static timeouts replace hashkeys and signatures.
//
// Phase One is identical to the general protocol. In Phase Two the leader
// redeems its entering arcs with the bare secret (which reveals it on
// those chains); every party that sees one of its leaving arcs redeemed
// learns the secret and redeems its own entering arcs. Redeeming claims
// immediately, so there is no separate claim step.
type ConformingHTLC struct {
	entering  []int
	leaving   []int
	seen      map[int]bool
	published bool
	revealed  bool
	secret    hashkey.Secret
	haveSec   bool
	redeemed  map[int]bool
}

// NewConformingHTLC returns a fresh conforming single-leader behavior.
func NewConformingHTLC() *ConformingHTLC {
	return &ConformingHTLC{
		seen:     make(map[int]bool),
		redeemed: make(map[int]bool),
	}
}

// Init implements Behavior.
func (b *ConformingHTLC) Init(e Env) {
	spec := e.Spec()
	b.entering = spec.D.In(e.Vertex())
	b.leaving = spec.D.Out(e.Vertex())
	sort.Ints(b.entering)
	sort.Ints(b.leaving)

	scheduleRefundAlarms(e, b.leaving)

	if sec, _, ok := e.Secret(); ok {
		b.secret, b.haveSec = sec, true
	}
	if b.haveSec || len(b.entering) == 0 {
		b.publishLeaving(e)
	}
	b.maybeReveal(e)
}

func (b *ConformingHTLC) publishLeaving(e Env) {
	if b.published {
		return
	}
	b.published = true
	for _, arc := range b.leaving {
		if err := e.Publish(arc); err != nil {
			e.Note(trace.KindAbandoned, arc, -1, "publish failed: "+err.Error())
			e.Abandon("publish failed")
			return
		}
	}
}

func (b *ConformingHTLC) allEnteringSeen() bool {
	for _, arc := range b.entering {
		if !b.seen[arc] {
			return false
		}
	}
	return true
}

// maybeReveal starts Phase Two for the leader: redeem every entering arc,
// which reveals the secret on those chains.
func (b *ConformingHTLC) maybeReveal(e Env) {
	if b.revealed || !b.haveSec || !b.allEnteringSeen() {
		return
	}
	b.revealed = true
	e.Note(trace.KindSecretRevealed, -1, 0, "leader redeems entering arcs")
	b.redeemEntering(e)
}

func (b *ConformingHTLC) redeemEntering(e Env) {
	for _, arc := range b.entering {
		if b.redeemed[arc] {
			continue
		}
		if settled, _ := e.Resolved(arc); settled {
			b.redeemed[arc] = true
			continue
		}
		if _, published := e.Contract(arc); !published {
			// Contract still propagating; OnContract retries.
			continue
		}
		if err := e.Redeem(arc, b.secret); err != nil {
			e.Note(trace.KindUnlockFailed, arc, -1, err.Error())
		} else {
			b.redeemed[arc] = true
		}
	}
}

// OnContract implements Behavior: verify entering contracts against the
// plan, advance Phase One.
func (b *ConformingHTLC) OnContract(e Env, arcID int, c chain.Contract) {
	if !containsInt(b.entering, arcID) {
		return
	}
	h, ok := c.(*htlc.HTLC)
	if !ok || h.Params() != e.Spec().HTLCParams(arcID) {
		e.Note(trace.KindContractRejected, arcID, -1, "contract does not match the swap plan")
		e.Abandon("incorrect contract on entering arc")
		return
	}
	b.seen[arcID] = true
	if b.allEnteringSeen() {
		if !b.haveSec {
			b.publishLeaving(e)
		}
		b.maybeReveal(e)
	}
	if b.haveSec && b.revealed {
		b.redeemEntering(e)
	} else if b.haveSec && !e.Spec().IsLeader(e.Vertex()) {
		// A follower that already learned the secret redeems newly
		// published entering contracts immediately.
		b.redeemEntering(e)
	}
}

// OnUnlock implements Behavior; classic HTLCs never emit unlock events.
func (b *ConformingHTLC) OnUnlock(Env, int, int, hashkey.Hashkey) {}

// OnRedeem implements Behavior: learn the secret from a redeemed leaving
// arc and redeem the entering arcs with it.
func (b *ConformingHTLC) OnRedeem(e Env, arcID int, secret hashkey.Secret) {
	if !containsInt(b.leaving, arcID) {
		return
	}
	if !secret.Matches(e.Spec().Locks[0]) {
		return
	}
	if !b.haveSec {
		b.secret, b.haveSec = secret, true
	}
	b.redeemEntering(e)
}

// OnBroadcast implements Behavior; the HTLC variants do not broadcast.
func (b *ConformingHTLC) OnBroadcast(Env, int, hashkey.Hashkey) {}

// OnSettled implements Behavior.
func (b *ConformingHTLC) OnSettled(e Env, arcID int, claimed bool) {
	if claimed && containsInt(b.entering, arcID) {
		b.redeemed[arcID] = true
	}
}
