package outcome

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

// TestClassificationIgnoresInternalArcs: a coalition's class must not
// change when the triggered status of its internal arcs flips.
func TestClassificationIgnoresInternalArcs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := graphgen.RandomStronglyConnected(3+rng.Intn(6), 0.35, seed)
		// Random coalition of 1..n-1 vertexes.
		n := d.NumVertices()
		var members []digraph.Vertex
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				members = append(members, digraph.Vertex(v))
			}
		}
		if len(members) == 0 {
			members = []digraph.Vertex{0}
		}
		if len(members) == n {
			members = members[1:]
		}
		inC := make(map[digraph.Vertex]bool)
		for _, v := range members {
			inC[v] = true
		}
		// Random trigger set.
		base := make(map[int]bool)
		flipped := make(map[int]bool)
		for _, a := range d.Arcs() {
			trig := rng.Intn(2) == 0
			base[a.ID] = trig
			if inC[a.Head] && inC[a.Tail] {
				flipped[a.ID] = !trig // internal: flip
			} else {
				flipped[a.ID] = trig
			}
		}
		return Classify(d, base, members...) == Classify(d, flipped, members...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEveryTriggerSetClassifies: Classify is total — every subset of
// triggered arcs maps each vertex to exactly one of the five classes.
func TestEveryTriggerSetClassifies(t *testing.T) {
	d := graphgen.ThreeWay()
	for mask := 0; mask < 8; mask++ {
		triggered := map[int]bool{}
		for id := 0; id < 3; id++ {
			triggered[id] = mask&(1<<id) != 0
		}
		for _, v := range d.Vertices() {
			c := Classify(d, triggered, v)
			switch c {
			case Underwater, NoDeal, Deal, Discount, FreeRide:
			default:
				t.Fatalf("mask %d vertex %d: invalid class %v", mask, v, c)
			}
		}
	}
}

// TestExactlyOneUnacceptableClass pins Figure 3's acceptability frontier.
func TestExactlyOneUnacceptableClass(t *testing.T) {
	unacceptable := 0
	for _, c := range []Class{Underwater, NoDeal, Deal, Discount, FreeRide} {
		if !c.Acceptable() {
			unacceptable++
		}
	}
	if unacceptable != 1 {
		t.Errorf("unacceptable classes = %d, want exactly Underwater", unacceptable)
	}
}

// TestPreferIsStrictPartialOrder: irreflexive, asymmetric, transitive
// over all 25 pairs.
func TestPreferIsStrictPartialOrder(t *testing.T) {
	classes := []Class{Underwater, NoDeal, Deal, Discount, FreeRide}
	for _, a := range classes {
		if Prefer(a, a) {
			t.Errorf("Prefer(%v, %v) must be false (irreflexive)", a, a)
		}
		for _, b := range classes {
			if Prefer(a, b) && Prefer(b, a) {
				t.Errorf("Prefer not asymmetric on (%v, %v)", a, b)
			}
			for _, c := range classes {
				if Prefer(a, b) && Prefer(b, c) && !Prefer(a, c) {
					t.Errorf("Prefer not transitive: %v > %v > %v", a, b, c)
				}
			}
		}
	}
}
