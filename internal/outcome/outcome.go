// Package outcome classifies how a swap ended for each party or coalition,
// following the paper's Section 3 taxonomy (Figure 3): Underwater, NoDeal,
// Deal, Discount, and FreeRide, together with the partial preference order
// the protocol design assumes and the uniformity predicate of
// Definition 3.1.
package outcome

import (
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Class is a payoff class for a party or coalition.
type Class int

// Payoff classes from worst to best along the acceptability axis. The
// order of declaration is not the preference order — see Prefer.
const (
	// Underwater: at least one entering arc untriggered and at least one
	// leaving arc triggered — the party paid without being fully paid.
	// The only class unacceptable to conforming parties.
	Underwater Class = iota + 1
	// NoDeal: no incident arc triggered; the status quo.
	NoDeal
	// Deal: every incident arc triggered; the intended outcome.
	Deal
	// Discount: all entering arcs triggered, at least one leaving arc not —
	// the party got everything and paid less.
	Discount
	// FreeRide: at least one entering arc triggered, no leaving arc
	// triggered — the party acquired assets for free.
	FreeRide
)

var classNames = map[Class]string{
	Underwater: "Underwater",
	NoDeal:     "NoDeal",
	Deal:       "Deal",
	Discount:   "Discount",
	FreeRide:   "FreeRide",
}

// String returns the paper's class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Acceptable reports whether a conforming party can be left with this
// class after failures or adversarial behavior (everything but
// Underwater — Section 3).
func (c Class) Acceptable() bool { return c != Underwater }

// Classify determines the payoff class of the coalition given by members
// (a single vertex for an individual party) on digraph d, where triggered
// reports per arc ID whether the transfer happened. Arcs internal to the
// coalition are ignored, mirroring the paper's "replace v with C".
func Classify(d *digraph.Digraph, triggered map[int]bool, members ...digraph.Vertex) Class {
	inC := make(map[digraph.Vertex]bool, len(members))
	for _, v := range members {
		inC[v] = true
	}
	var (
		enteringTriggered, enteringUntriggered bool
		leavingTriggered, leavingUntriggered   bool
	)
	for _, a := range d.Arcs() {
		headIn, tailIn := inC[a.Head], inC[a.Tail]
		switch {
		case headIn && tailIn: // internal to the coalition
			continue
		case tailIn: // enters the coalition
			if triggered[a.ID] {
				enteringTriggered = true
			} else {
				enteringUntriggered = true
			}
		case headIn: // leaves the coalition
			if triggered[a.ID] {
				leavingTriggered = true
			} else {
				leavingUntriggered = true
			}
		}
	}
	switch {
	case enteringUntriggered && leavingTriggered:
		return Underwater
	case !enteringTriggered && !leavingTriggered:
		return NoDeal
	case enteringTriggered && !leavingTriggered:
		return FreeRide
	case !enteringUntriggered && leavingUntriggered:
		return Discount
	default:
		return Deal
	}
}

// Prefer reports whether a party prefers class a to class b, per the
// partial order the protocol assumes (Section 3): Deal > NoDeal,
// Discount > Deal, FreeRide > NoDeal, every acceptable class > Underwater,
// plus transitive consequences (Discount > NoDeal). Classes like FreeRide
// vs Deal are incomparable: Prefer returns false both ways.
func Prefer(a, b Class) bool {
	if a == b {
		return false
	}
	if b == Underwater && a != Underwater {
		return true
	}
	better := map[Class]map[Class]bool{
		Deal:     {NoDeal: true},
		Discount: {Deal: true, NoDeal: true},
		FreeRide: {NoDeal: true},
	}
	return better[a][b]
}

// Report summarizes a finished run for every party.
type Report struct {
	classes map[digraph.Vertex]Class
}

// NewReport classifies every vertex of d individually.
func NewReport(d *digraph.Digraph, triggered map[int]bool) *Report {
	r := &Report{classes: make(map[digraph.Vertex]Class, d.NumVertices())}
	for _, v := range d.Vertices() {
		r.classes[v] = Classify(d, triggered, v)
	}
	return r
}

// Of returns the class of a vertex.
func (r *Report) Of(v digraph.Vertex) Class { return r.classes[v] }

// AllDeal reports whether every party finished with Deal — the
// all-conforming outcome required by Definition 3.1.
func (r *Report) AllDeal() bool {
	for _, c := range r.classes {
		if c != Deal {
			return false
		}
	}
	return true
}

// NoneUnderwater reports whether the vertexes in the given set all avoided
// Underwater — the uniformity condition for the conforming parties.
func (r *Report) NoneUnderwater(conforming []digraph.Vertex) bool {
	for _, v := range conforming {
		if r.classes[v] == Underwater {
			return false
		}
	}
	return true
}

// Histogram counts parties per class, for experiment tables.
func (r *Report) Histogram() map[Class]int {
	h := make(map[Class]int)
	for _, c := range r.classes {
		h[c]++
	}
	return h
}
