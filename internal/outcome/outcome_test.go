package outcome

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

// trig builds a triggered map for the given arc IDs.
func trig(ids ...int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestClassifySingleParty(t *testing.T) {
	// Three-cycle: arc 0 A->B, arc 1 B->C, arc 2 C->A.
	d := graphgen.ThreeWay()
	bob := digraph.Vertex(1) // entering: arc 0; leaving: arc 1
	tests := []struct {
		name      string
		triggered map[int]bool
		want      Class
	}{
		{name: "all triggered is Deal", triggered: trig(0, 1, 2), want: Deal},
		{name: "nothing triggered is NoDeal", triggered: trig(), want: NoDeal},
		{name: "only entering is FreeRide", triggered: trig(0), want: FreeRide},
		{name: "only leaving is Underwater", triggered: trig(1), want: Underwater},
		{name: "unrelated arc only is NoDeal", triggered: trig(2), want: NoDeal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(d, tt.triggered, bob); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassifyDiscount(t *testing.T) {
	// A party with two leaving arcs: entering all triggered, one leaving
	// not — Discount.
	d := digraph.New()
	a := d.AddVertex("A")
	b := d.AddVertex("B")
	c := d.AddVertex("C")
	arcBA := d.MustAddArc(b, a) // entering A
	arcAB := d.MustAddArc(a, b) // leaving A
	d.MustAddArc(a, c)          // leaving A, untriggered
	d.MustAddArc(c, b)
	if got := Classify(d, trig(arcBA, arcAB), a); got != Discount {
		t.Errorf("Classify = %v, want Discount", got)
	}
}

func TestClassifyCoalition(t *testing.T) {
	// Lemma 3.4 shape: X = {0,1,2} cycle, Y = {3,4,5} cycle, one arc X->Y.
	d := graphgen.NotStronglyConnected(3, 3)
	// X triggers its internal arcs (0,1,2) but not the X->Y arc (id 6).
	triggered := trig(0, 1, 2)
	// Coalition X: no entering arcs at all, leaving arc untriggered -> for
	// the coalition as a whole that is NoDeal...
	if got := Classify(d, triggered, 0, 1, 2); got != NoDeal {
		t.Errorf("coalition X = %v, want NoDeal", got)
	}
	// ...but the individual member with the Y-arc gets Discount: entering
	// triggered, one leaving arc untriggered. This is the deviation payoff
	// that breaks atomicity on non-strongly-connected digraphs.
	if got := Classify(d, triggered, 0); got != Discount {
		t.Errorf("vertex 0 = %v, want Discount", got)
	}
	// The other X members simply Deal among themselves.
	if got := Classify(d, triggered, 1); got != Deal {
		t.Errorf("vertex 1 = %v, want Deal", got)
	}
	// Y members see nothing: NoDeal.
	if got := Classify(d, triggered, 4); got != NoDeal {
		t.Errorf("vertex 4 = %v, want NoDeal", got)
	}
}

func TestClassifyCoalitionUnderwater(t *testing.T) {
	d := graphgen.ThreeWay()
	// Coalition {Alice, Bob}: entering arc is 2 (C->A), leaving arc is 1
	// (B->C). Leaving triggered, entering not: Underwater.
	if got := Classify(d, trig(1), 0, 1); got != Underwater {
		t.Errorf("coalition = %v, want Underwater", got)
	}
	// Internal arc 0 (A->B) is ignored entirely.
	if got := Classify(d, trig(0), 0, 1); got != NoDeal {
		t.Errorf("coalition with only internal arc = %v, want NoDeal", got)
	}
}

func TestAcceptable(t *testing.T) {
	for _, c := range []Class{NoDeal, Deal, Discount, FreeRide} {
		if !c.Acceptable() {
			t.Errorf("%v should be acceptable", c)
		}
	}
	if Underwater.Acceptable() {
		t.Error("Underwater must be unacceptable")
	}
}

func TestPrefer(t *testing.T) {
	tests := []struct {
		a, b Class
		want bool
	}{
		{Deal, NoDeal, true},
		{Discount, Deal, true},
		{Discount, NoDeal, true},
		{FreeRide, NoDeal, true},
		{Deal, Underwater, true},
		{NoDeal, Underwater, true},
		{FreeRide, Underwater, true},
		{Discount, Underwater, true},
		// Not preferred / incomparable pairs.
		{NoDeal, Deal, false},
		{Deal, Deal, false},
		{FreeRide, Deal, false},
		{Deal, FreeRide, false},
		{FreeRide, Discount, false},
		{Underwater, NoDeal, false},
	}
	for _, tt := range tests {
		if got := Prefer(tt.a, tt.b); got != tt.want {
			t.Errorf("Prefer(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if Deal.String() != "Deal" || Underwater.String() != "Underwater" {
		t.Error("class names")
	}
	if Class(42).String() != "Class(42)" {
		t.Error("unknown class fallback")
	}
}

func TestReport(t *testing.T) {
	d := graphgen.ThreeWay()
	all := NewReport(d, trig(0, 1, 2))
	if !all.AllDeal() {
		t.Error("all triggered should be AllDeal")
	}
	if !all.NoneUnderwater(d.Vertices()) {
		t.Error("no one should be underwater")
	}
	if all.Of(0) != Deal {
		t.Errorf("Of(0) = %v, want Deal", all.Of(0))
	}

	partial := NewReport(d, trig(1)) // only B->C triggered
	if partial.AllDeal() {
		t.Error("partial run is not AllDeal")
	}
	// Bob paid (arc 1 triggered) without being paid (arc 0 not).
	if partial.Of(1) != Underwater {
		t.Errorf("Bob = %v, want Underwater", partial.Of(1))
	}
	if partial.NoneUnderwater([]digraph.Vertex{1}) {
		t.Error("Bob is underwater")
	}
	if partial.NoneUnderwater([]digraph.Vertex{0, 2}) != true {
		t.Error("Alice and Carol are not underwater")
	}
	h := partial.Histogram()
	if h[Underwater] != 1 || h[FreeRide] != 1 || h[NoDeal]+h[Deal]+h[Discount] != 1 {
		t.Errorf("histogram = %v", h)
	}
}
