package conc

import (
	"math/rand"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
)

// tick is generous relative to goroutine scheduling noise so Δ ordering
// holds even on loaded CI machines.
const tick = 5 * time.Millisecond

func concSetup(t *testing.T, d *digraph.Digraph, cfg core.Config) *core.Setup {
	t.Helper()
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(3))
	}
	setup, err := core.NewSetup(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

func TestConcurrentThreeWayAllDeal(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent three-way swap should end AllDeal")
	}
	if !res.Registry.VerifyAllLedgers() {
		t.Error("ledgers must verify")
	}
}

func TestConcurrentTwoLeaderAllDeal(t *testing.T) {
	setup := concSetup(t, graphgen.TwoLeaderTriangle(), core.Config{})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent two-leader swap should end AllDeal")
	}
}

func TestConcurrentSingleLeaderVariant(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{Kind: core.KindSingleLeader})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent single-leader swap should end AllDeal")
	}
}

func TestConcurrentBroadcast(t *testing.T) {
	setup := concSetup(t, graphgen.Cycle(5), core.Config{Broadcast: true})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent broadcast swap should end AllDeal")
	}
}

func TestConcurrentHaltedPartySafe(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{})
	behaviors := map[digraph.Vertex]core.Behavior{
		1: adversary.HaltAt(core.NewConforming(), 0),
	}
	res, err := Run(setup, behaviors, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	// Conforming parties (0 and 2) must not be Underwater; with Bob dead
	// from the start everyone should simply refund to NoDeal.
	for _, v := range []digraph.Vertex{0, 2} {
		if got := res.Report.Of(v); got == outcome.Underwater {
			t.Log("\n" + res.Log.Render())
			t.Fatalf("conforming %d Underwater in concurrent run", v)
		}
	}
	if res.Report.AllDeal() {
		t.Error("swap should not complete with a dead party")
	}
}
