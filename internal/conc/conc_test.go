package conc

import (
	"math/rand"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// tick is generous relative to goroutine scheduling noise so Δ ordering
// holds even on loaded CI machines.
const tick = 5 * time.Millisecond

func concSetup(t *testing.T, d *digraph.Digraph, cfg core.Config) *core.Setup {
	t.Helper()
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(3))
	}
	setup, err := core.NewSetup(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

func TestConcurrentThreeWayAllDeal(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent three-way swap should end AllDeal")
	}
	if !res.Registry.VerifyAllLedgers() {
		t.Error("ledgers must verify")
	}
}

func TestConcurrentTwoLeaderAllDeal(t *testing.T) {
	setup := concSetup(t, graphgen.TwoLeaderTriangle(), core.Config{})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent two-leader swap should end AllDeal")
	}
}

func TestConcurrentSingleLeaderVariant(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{Kind: core.KindSingleLeader})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent single-leader swap should end AllDeal")
	}
}

func TestConcurrentBroadcast(t *testing.T) {
	setup := concSetup(t, graphgen.Cycle(5), core.Config{Broadcast: true})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("concurrent broadcast swap should end AllDeal")
	}
}

// traceKinds collapses a log to the set of event kinds it contains.
func traceKinds(l *trace.Log) map[trace.Kind]int {
	kinds := make(map[trace.Kind]int)
	for _, ev := range l.Events() {
		kinds[ev.Kind]++
	}
	return kinds
}

// TestVirtualRealEquivalence runs the same 3-party swap under the
// real-time and the virtual-time scheduler: outcomes must be identical
// per vertex and the runs must produce the same kinds of trace events
// (counts included — every publish/unlock/claim happens in both worlds).
func TestVirtualRealEquivalence(t *testing.T) {
	run := func(cfg Config) *Result {
		setup := concSetup(t, graphgen.ThreeWay(), core.Config{Rand: rand.New(rand.NewSource(9))})
		res, err := Run(setup, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	real := run(Config{Tick: tick})
	v := sched.NewVirtual()
	defer v.Close()
	virtual := run(Config{Scheduler: v})

	if !real.Report.AllDeal() || !virtual.Report.AllDeal() {
		t.Logf("real:\n%s\nvirtual:\n%s", real.Log.Render(), virtual.Log.Render())
		t.Fatal("both modes must end AllDeal")
	}
	for _, vx := range []digraph.Vertex{0, 1, 2} {
		if r, vv := real.Report.Of(vx), virtual.Report.Of(vx); r != vv {
			t.Errorf("vertex %d: real %v, virtual %v", vx, r, vv)
		}
	}
	rk, vk := traceKinds(real.Log), traceKinds(virtual.Log)
	for kind, n := range rk {
		if vk[kind] != n {
			t.Errorf("kind %v: real %d events, virtual %d\nreal:\n%s\nvirtual:\n%s",
				kind, n, vk[kind], real.Log.Render(), virtual.Log.Render())
		}
	}
	for kind := range vk {
		if _, ok := rk[kind]; !ok {
			t.Errorf("kind %v only in virtual run", kind)
		}
	}
}

// TestVirtualTimeIsCPUBound: under the virtual scheduler a swap with a
// huge Δ — hours of wall time in real mode — completes in the time the
// callbacks take to run.
func TestVirtualTimeIsCPUBound(t *testing.T) {
	v := sched.NewVirtual()
	defer v.Close()
	setup := concSetup(t, graphgen.Cycle(4), core.Config{Delta: 100_000})
	start := time.Now()
	res, err := Run(setup, nil, Config{Scheduler: v})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("virtual run took %v of wall time", elapsed)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("virtual swap should end AllDeal")
	}
}

// TestEarlyExitSkipsGrace: once every arc has settled, the teardown is
// immediate — the run no longer pays the full-Δ grace sleep it used to.
// The run's own scheduler tells us when it exited; the ledger tells us
// when the last transfer landed; the gap must be far under one Δ.
func TestEarlyExitSkipsGrace(t *testing.T) {
	const (
		delta    = 40
		wallTick = 5 * time.Millisecond
	)
	s := sched.NewReal(wallTick)
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{Delta: delta})
	res, err := Run(setup, nil, Config{Scheduler: s, EarlyExit: true})
	exitTick := s.Now()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Fatal("early-exit swap should end AllDeal")
	}
	var lastTransfer vtime.Ticks
	for _, name := range res.Registry.Names() {
		for _, rec := range res.Registry.Chain(name).Records() {
			if rec.Kind == chain.NoteTransfer && rec.At > lastTransfer {
				lastTransfer = rec.At
			}
		}
	}
	if lastTransfer == 0 {
		t.Fatal("no transfers recorded")
	}
	// The old teardown exited at lastTransfer + Δ (a full grace sleep);
	// the new one tears down as the final settle lands. Half a Δ of slack
	// absorbs scheduler jitter on both sides.
	if gap := exitTick.Sub(lastTransfer); gap >= delta/2 {
		t.Fatalf("teardown lagged the last transfer by %d ticks (Δ=%d): grace not skipped", gap, delta)
	}
	if exitTick >= setup.Spec.Horizon() {
		t.Fatalf("early exit ran to the horizon (%d >= %d)", exitTick, setup.Spec.Horizon())
	}
}

func TestConcurrentHaltedPartySafe(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{})
	behaviors := map[digraph.Vertex]core.Behavior{
		1: adversary.HaltAt(core.NewConforming(), 0),
	}
	res, err := Run(setup, behaviors, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	// Conforming parties (0 and 2) must not be Underwater; with Bob dead
	// from the start everyone should simply refund to NoDeal.
	for _, v := range []digraph.Vertex{0, 2} {
		if got := res.Report.Of(v); got == outcome.Underwater {
			t.Log("\n" + res.Log.Render())
			t.Fatalf("conforming %d Underwater in concurrent run", v)
		}
	}
	if res.Report.AllDeal() {
		t.Error("swap should not complete with a dead party")
	}
}
