package conc

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

// TestEscrowSpansConformingSwap pins the capital-lock trace on the happy
// path: every arc of a conforming three-way swap publishes, so every arc
// gets exactly one span, ordered by arc ID, resolved, with a sane
// publish→resolve interval bounded by the run's settle tick. These spans
// are the integrand of the griefing-cost measure — if one goes missing
// or stretches past the settle tick, the economics layer misprices the
// swap.
func TestEscrowSpansConformingSwap(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{})
	res, err := Run(setup, nil, Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Fatal("conforming three-way swap should end AllDeal")
	}
	spec := setup.Spec
	if len(res.Escrows) != spec.D.NumArcs() {
		t.Fatalf("%d spans for %d arcs — a published contract left no trace",
			len(res.Escrows), spec.D.NumArcs())
	}
	for i, span := range res.Escrows {
		if i > 0 && span.ArcID <= res.Escrows[i-1].ArcID {
			t.Fatalf("spans not ordered by arc ID: %+v", res.Escrows)
		}
		if !span.Resolved {
			t.Fatalf("arc %d unresolved in an AllDeal run: %+v", span.ArcID, span)
		}
		if span.To < span.From {
			t.Fatalf("arc %d span runs backwards: %+v", span.ArcID, span)
		}
		if span.To > res.SettleTick {
			t.Fatalf("arc %d resolved at %d, after the settle tick %d",
				span.ArcID, span.To, res.SettleTick)
		}
	}
}

// TestEscrowSpansWithheldPublication pins the other half of the span
// contract: a contract that never deployed locked nothing, so a
// publication-withholding party's leaving arcs must be ABSENT from the
// spans — charging a victim for capital an adversary never escrowed
// would inflate every griefing number downstream. Whatever did publish
// still resolves (the conforming parties refund), so no span is left
// dangling at the horizon.
func TestEscrowSpansWithheldPublication(t *testing.T) {
	setup := concSetup(t, graphgen.ThreeWay(), core.Config{})
	spec := setup.Spec
	// Withhold a follower's deployments: the leader still opens the swap,
	// so some arcs publish while the withheld party's never do.
	var withheld digraph.Vertex = 0
	if spec.IsLeader(withheld) {
		withheld = 1
	}
	res, err := Run(setup,
		map[digraph.Vertex]core.Behavior{withheld: adversary.WithholdPublications()},
		Config{Tick: tick})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.AllDeal() {
		t.Fatal("a withheld deployment cannot end AllDeal")
	}
	if len(res.Escrows) == 0 {
		t.Fatal("leader's deployment left no span")
	}
	if len(res.Escrows) >= spec.D.NumArcs() {
		t.Fatalf("all %d arcs have spans despite a withheld deployment", len(res.Escrows))
	}
	for _, span := range res.Escrows {
		if spec.D.Arc(span.ArcID).Head == withheld {
			t.Fatalf("arc %d: withholding party charged for capital it never escrowed", span.ArcID)
		}
		if !span.Resolved {
			t.Fatalf("arc %d stranded — conforming parties must refund: %+v", span.ArcID, span)
		}
	}
}
