// Package conc runs the swap protocol concurrently: each party is its own
// goroutine, the mock chains are shared thread-safe state, and virtual
// ticks come from a pluggable sched.Scheduler. The party logic is the same
// core.Behavior implementation the deterministic simulator drives — the
// point of this runtime is demonstrating that the protocol engine is
// runtime-agnostic and race-free.
//
// Two scheduler shapes matter:
//
//   - sched.Real (the default): ticks map onto wall-clock time. Runs are
//     not tick-deterministic (real scheduling jitter exists below the Δ
//     scale), so tests assert outcomes rather than traces. Pick a tick
//     duration comfortably above scheduler noise.
//   - sched.Virtual: ticks advance as fast as callbacks drain, making a
//     run CPU-bound instead of wall-clock-bound. Deliveries execute at
//     exactly their scheduled tick; only same-tick cross-party ordering
//     remains racy.
package conc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// DefaultTick is the default wall duration of one virtual tick.
const DefaultTick = sched.DefaultTick

// Config parameterizes a concurrent run.
type Config struct {
	// Tick is the wall duration of one virtual tick (DefaultTick if 0),
	// used to build the default real-time scheduler. Ignored when
	// Scheduler is set.
	Tick time.Duration
	// ExtraDelta pads the run horizon beyond spec.Horizon(), in Δ (2 if 0).
	ExtraDelta int
	// Registry, when set, is a shared chain registry: assets already
	// registered on it are reused (their ownership is verified), and the
	// run subscribes to chain events under a unique key instead of
	// claiming the chains' only observer slot. Many runs may then execute
	// concurrently over the same chains — the clearing engine's mode.
	Registry *chain.Registry
	// Scheduler, when set, is a shared time source so concurrent runs
	// agree on virtual time: sched.NewReal for wall-clock execution (what
	// a standalone run builds by default from Tick), sched.NewVirtual for
	// event-driven time that advances as fast as callbacks drain. The
	// spec's Start must be in the scheduler's future (or use StartOffset).
	Scheduler sched.Scheduler
	// StartOffset, when positive, pins spec.Start to the scheduler's
	// current tick plus the offset, atomically with run setup. Under
	// virtual time this is the only safe way to pin a start (the clock
	// may advance between a caller's Now and Run); the engine uses it for
	// its 2Δ-plus-stagger start.
	StartOffset vtime.Duration
	// EarlyExit stops the run as soon as every arc has settled instead of
	// sleeping to the worst-case horizon. Outcomes are unaffected (a
	// settled arc is final); only trailing trace events — the OnSettled
	// fanout of the last transfers — may be trimmed. No grace period is
	// paid: teardown is immediate.
	EarlyExit bool
	// Cache, when set, replaces the spec's hashkey verification cache so
	// many concurrent runs share one (the clearing engine's mode: a
	// hashkey chain verified by one swap's contract never pays full
	// price again anywhere in the engine). Note this deliberately
	// rewires the caller's Spec — later runs of the same Setup keep the
	// shared cache, which is the desired behavior for engine-owned
	// setups (one per cleared swap).
	Cache *hashkey.VerifyCache
	// SyncDeliveries makes every delivery synchronous with the scheduler:
	// the scheduled callback blocks until the party has actually executed
	// the delivered event. On a serialized virtual scheduler
	// (sched.NewVirtual) this removes the last concurrency from the run —
	// party actions execute one at a time, in (tick, schedule-order)
	// order — which is what makes an engine run seed-replayable. Pointless
	// (and a throughput hazard) on real or concurrent-virtual schedulers.
	//
	// When the scheduler additionally reports serialized dispatch
	// (sched.SerialDispatcher), SyncDeliveries switches the run to inline
	// delivery execution: party callbacks run directly on the scheduler
	// dispatch (or stripe worker) goroutine instead of round-tripping
	// through per-party mailbox goroutines. Semantically identical —
	// the mailbox path under SyncDeliveries already blocked the scheduler
	// until the party ran the callback — but without the channel handoffs,
	// goroutine stacks, and hold bookkeeping per delivery.
	SyncDeliveries bool
	// StripeKey, when nonzero on a sched.KeyedScheduler, tags every
	// scheduler event of this run with the key. Under striped-parallel
	// dispatch (sched.NewVirtualParallel) the run's events then serialize
	// among themselves in schedule order while distinct runs — distinct
	// swaps, in the engine — execute concurrently. Zero joins the shared
	// unkeyed stripe.
	StripeKey uint64
	// Log, when set, replaces the run's private trace log — the engine
	// passes one shared flight-recorder ring so per-swap log allocation
	// vanishes. Nil keeps a per-run log.
	Log *trace.Log
	// OnPhase, when set, observes the run's coarse phase transitions —
	// the durable engine's crash-recovery log hook. Each phase fires at
	// most once per run: "start" when the run is prepared, "escrow" when
	// the first of this swap's contracts is published, "reveal" when the
	// first secret leaves a party (unlock, redeem, or broadcast). The
	// callback runs on scheduler or chain-observer goroutines; it must be
	// cheap and must not call back into the run.
	OnPhase func(ev PhaseEvent)
	// OnHorizon, when set, fires exactly once when the run is virtually
	// over: inside the horizon event on the scheduler (so, under
	// deterministic dispatch, at a schedule-pure instant), or at teardown
	// for early-exiting runs whose horizon timer is cancelled. The
	// clearing engine uses it to count virtually-live runs — the
	// deterministic analogue of in-flight backpressure. Must be cheap and
	// must not call back into the run.
	OnHorizon func()
	// OnRevert, when set, observes commitment-model reverts touching this
	// run's contracts: a chain reorg rolled one of the swap's records
	// back. The engine logs these to the WAL and counts them. The callback
	// runs on chain-observer goroutines; it must be cheap and must not
	// call back into the run.
	OnRevert func(ev RevertEvent)
}

// RevertEvent is one reorged record of a run's contract (Config.OnRevert).
type RevertEvent struct {
	// ArcID is the swap arc whose contract the reverted record belongs to.
	ArcID int
	// Chain is the chain the reorg happened on.
	Chain string
	// Contract is the affected contract.
	Contract chain.ContractID
	// Kind is the kind of the record that was rolled back.
	Kind chain.NoteKind
	// At is the tick the revert was recorded at.
	At vtime.Ticks
}

// PhaseEvent is one coarse protocol phase transition (see Config.OnPhase).
type PhaseEvent struct {
	// Phase is "start", "escrow", or "reveal".
	Phase string
	// At is the virtual tick the transition was observed at.
	At vtime.Ticks
	// Deadline is the swap's max timelock — by when every conforming
	// party's assets are settled or refundable. Recovery measures its
	// remaining budget against this.
	Deadline vtime.Ticks
}

// EscrowSpan is one arc's capital-lock interval: the escrowed amount is
// unavailable to its owner from the tick the contract published until
// the arc resolved (claim or refund recorded final on chain). Spans are
// the integrand of the griefing-cost measure — amount × (To−From) in
// token-ticks — and, being tick-domain, are identical across replays of
// a deterministic run.
type EscrowSpan struct {
	// ArcID indexes spec.D / spec.Assets.
	ArcID int
	// From is the tick the arc's contract published (escrow locked).
	From vtime.Ticks
	// To is the tick the arc resolved; the run's horizon tick when it
	// never did (a stranded escrow stays locked to the bitter end).
	To vtime.Ticks
	// Resolved distinguishes a settled arc from a stranded one.
	Resolved bool
}

// Result reports a finished concurrent run.
type Result struct {
	Triggered map[int]bool
	Report    *outcome.Report
	Registry  *chain.Registry
	Log       *trace.Log
	// Escrows holds one span per arc whose contract actually published
	// (a withheld deployment locks nothing), ordered by arc ID.
	Escrows []EscrowSpan
	// SettleTick is the virtual tick at which the last arc resolved
	// (claim or refund recorded on chain). For runs where some arc never
	// resolved — a crashed party abandoning its own contract — it is the
	// run's horizon tick instead, the point at which the outcome became
	// final. Unlike wall-clock latencies, it is identical across replays
	// of a deterministic run.
	SettleTick vtime.Ticks
}

// Running is a prepared, in-flight concurrent run: the assets are
// verified, every party goroutine is live, and the protocol is playing
// out on the scheduler. Call Wait exactly once to block until the run
// finishes and collect the result. The Prepare/Wait split exists for the
// clearing engine's deterministic mode, where run setup must happen at a
// pinned virtual tick (inside the clearing callback, under the
// scheduler hold) while the blocking wait stays on an executor worker.
type Running struct {
	r         *runner
	cfg       Config
	cancel    context.CancelFunc
	partyWG   *sync.WaitGroup
	horizonCh chan struct{}
	subKey    string
	shared    bool
	// horizonOnce guards cfg.OnHorizon: normally fired by the horizon
	// event itself, but an EarlyExit teardown cancels that timer, so Wait
	// fires it as a fallback.
	horizonOnce sync.Once
}

// fireHorizon runs cfg.OnHorizon at most once.
func (rn *Running) fireHorizon() {
	if rn.cfg.OnHorizon == nil {
		return
	}
	rn.horizonOnce.Do(rn.cfg.OnHorizon)
}

// Run executes the setup with every party on its own goroutine. Behaviors
// defaults to the conforming implementation per vertex; entries override.
func Run(setup *core.Setup, behaviors map[digraph.Vertex]core.Behavior, cfg Config) (*Result, error) {
	rn, err := Prepare(setup, behaviors, cfg)
	if err != nil {
		return nil, err
	}
	return rn.Wait(), nil
}

// Prepare sets a concurrent run up — registers or verifies assets,
// spawns the party goroutines, schedules the protocol start — and
// returns without waiting for it. Setup runs atomically under a
// scheduler hold, so under virtual time the protocol start is pinned
// relative to the scheduler's tick at the moment Prepare was called.
func Prepare(setup *core.Setup, behaviors map[digraph.Vertex]core.Behavior, cfg Config) (*Running, error) {
	if cfg.ExtraDelta <= 0 {
		cfg.ExtraDelta = 2
	}
	spec := setup.Spec
	if cfg.Cache != nil {
		spec.Cache = cfg.Cache
	}

	scheduler := cfg.Scheduler
	if scheduler == nil {
		scheduler = sched.NewReal(cfg.Tick)
	}
	log := cfg.Log
	if log == nil {
		log = &trace.Log{}
	}
	r := &runner{
		setup:    setup,
		spec:     spec,
		sched:    scheduler,
		sync:     cfg.SyncDeliveries,
		stripe:   cfg.StripeKey,
		log:      log,
		timers:   make(map[int64]sched.Timer),
		resolved: make(map[int]bool),
		resClaim: make(map[int]bool),
		pubTicks: make(map[int]vtime.Ticks),
		resTicks: make(map[int]vtime.Ticks),
		done:     make(chan struct{}),
		cids:     make(map[chain.ContractID]int, spec.D.NumArcs()),
		onPhase:  cfg.OnPhase,
	}
	if ks, ok := scheduler.(sched.KeyedScheduler); ok && r.stripe != 0 {
		r.keyed = ks
	}
	// Inline deliveries: with synchronous deliveries on a scheduler that
	// serializes same-stripe dispatch, the mailbox goroutines buy nothing —
	// run party callbacks directly on the dispatching goroutine.
	if sd, ok := scheduler.(sched.SerialDispatcher); ok && cfg.SyncDeliveries && sd.SerializedDispatch() {
		r.inline = true
	}

	// Setup runs under a hold: under virtual time the clock must not jump
	// past the start while assets are registered and inits scheduled.
	release := scheduler.Hold()
	defer release() // no-op after the explicit release below
	if cfg.StartOffset > 0 {
		spec.SetStart(scheduler.Now().Add(cfg.StartOffset))
	}
	spec.Precompute()
	r.deadline = spec.MaxTimelock()
	// The "start" phase is stamped with the tick it is logged at (now,
	// inside the hold) — not spec.Start, which lies in the future and
	// would let a pre-crash log record carry a post-crash tick.
	r.notePhase("start")

	for id := 0; id < spec.D.NumArcs(); id++ {
		r.cids[spec.ContractID(id)] = id
	}
	shared := cfg.Registry != nil
	if shared {
		r.reg = cfg.Registry
	} else {
		r.reg = chain.NewRegistry(scheduler)
	}
	r.probe = r.reg.DeliveryProbe()
	for id := 0; id < spec.D.NumArcs(); id++ {
		aa := spec.Assets[id]
		owner := spec.PartyOf(spec.D.Arc(id).Head)
		ch := r.reg.Chain(aa.Chain)
		if a, exists := ch.Asset(aa.Asset); exists {
			// Shared chains: the asset was minted up front (by the engine's
			// intake); verify it is what the spec says and who owns it.
			cur, _ := ch.OwnerOf(aa.Asset)
			if a.Amount != aa.Amount || cur != chain.ByParty(owner) {
				return nil, fmt.Errorf("conc: asset %s/%s mismatch: amount %d owner %s",
					aa.Chain, aa.Asset, a.Amount, cur)
			}
			continue
		}
		if err := ch.RegisterAsset(chain.Asset{
			ID: aa.Asset, Amount: aa.Amount,
		}, owner); err != nil {
			return nil, fmt.Errorf("conc: registering assets: %w", err)
		}
	}
	if spec.Broadcast {
		r.reg.Chain(core.BroadcastChain)
	}

	// Cache each involved chain's delivery margin and per-chain probe.
	// The margin comes from the chain's commitment-model timing; an
	// Instant chain (zero Timing) reproduces the historical spec.Delta
	// margin bit-for-bit, so this block changes nothing for ideal chains.
	r.onRevert = cfg.OnRevert
	base := vtime.Duration(spec.Delta)
	r.delays = make(map[string]vtime.Duration, spec.D.NumArcs()+1)
	chainNames := make([]string, 0, spec.D.NumArcs()+1)
	for id := 0; id < spec.D.NumArcs(); id++ {
		chainNames = append(chainNames, spec.Assets[id].Chain)
	}
	if spec.Broadcast {
		chainNames = append(chainNames, core.BroadcastChain)
	}
	for _, name := range chainNames {
		if _, done := r.delays[name]; done {
			continue
		}
		ch := r.reg.Chain(name)
		r.delays[name] = ch.Timing().DeliveryDelay(base)
		if ch.CommitmentModelName() != "instant" {
			r.reorgAware = true
		}
		if p := r.reg.ChainDeliveryProbe(name); p != nil {
			if r.chainProbes == nil {
				r.chainProbes = make(map[string]chain.DeliveryProbe, len(chainNames))
			}
			r.chainProbes[name] = p
		}
	}

	horizon := spec.Horizon().Add(vtime.Scale(cfg.ExtraDelta, spec.Delta))
	r.horizonTick = horizon
	ctx, cancel := context.WithCancel(context.Background())
	r.ctx = ctx

	// One mailbox goroutine per party; all behavior callbacks and alarms
	// run there, so behaviors stay single-threaded. Inline mode skips the
	// goroutines entirely: the scheduler's same-stripe serialization is
	// the single-threading guarantee instead.
	n := spec.D.NumVertices()
	r.parties = make([]*party, n)
	wg := new(sync.WaitGroup)
	for v := 0; v < n; v++ {
		b := behaviors[digraph.Vertex(v)]
		if b == nil {
			if spec.Kind == core.KindGeneral {
				b = core.NewConforming()
			} else {
				b = core.NewConformingHTLC()
			}
		}
		p := &party{
			runner:   r,
			vertex:   digraph.Vertex(v),
			behavior: b,
		}
		p.envc.p = p
		r.parties[v] = p
		if r.inline {
			continue
		}
		// A small buffer suffices: deliveries are produced only by scheduler
		// dispatch goroutines (each holding the clock while its send is in
		// flight, with a ctx-cancel escape hatch), and the party loop drains
		// without ever blocking on another mailbox — a full buffer is
		// backpressure, not deadlock. An oversized channel here dominated
		// per-run allocations (~8 KiB × parties × runs).
		p.mailbox = make(chan func(), 16)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.loop(ctx)
		}()
	}
	subKey := fmt.Sprintf("conc-run-%d", atomic.AddUint64(&runSeq, 1))
	if shared {
		// Contract-keyed routes instead of a blanket subscription: every
		// record about one of this run's contracts reaches onNote in O(1),
		// and records about other swaps' contracts never do — on a shared
		// registry the blanket fanout made every ledger write cost O(live
		// runs). Only the broadcast chain still needs the firehose: its
		// data records carry a tag, not a contract ID, and onNote filters
		// them by spec tag.
		for id := 0; id < spec.D.NumArcs(); id++ {
			r.reg.SubscribeContract(spec.Assets[id].Chain, subKey, spec.ContractID(id), r.onNote)
		}
		r.reg.Chain(core.BroadcastChain).Subscribe(subKey, r.onNote)
	} else {
		r.reg.SetObserverAll(r.onNote)
	}

	// Start everyone at T−Δ (leaders deploy ahead; see core.Runner).
	initAt := spec.Start.Add(-vtime.Duration(spec.Delta))
	for _, p := range r.parties {
		p := p
		r.deliverAt(initAt, p, false, func() { p.behavior.Init(p.env()) })
	}
	horizonCh := make(chan struct{})
	rn := &Running{
		r:         r,
		cfg:       cfg,
		cancel:    cancel,
		partyWG:   wg,
		horizonCh: horizonCh,
		subKey:    subKey,
		shared:    shared,
	}
	r.schedule(horizon, func() { rn.fireHorizon(); close(horizonCh) })
	release()

	return rn, nil
}

// Wait blocks until the prepared run finishes, tears it down, and
// returns the result. Call it exactly once.
func (rn *Running) Wait() *Result {
	r := rn.r
	// Let the protocol play out to the horizon — or, with EarlyExit, only
	// until every arc settles. A settled arc is final, so nothing after
	// the last transfer can change an outcome: the full-Δ grace sleep the
	// runtime used to pay here bought only trailing OnSettled trace
	// events, which EarlyExit documents as trimmable. The horizon timer
	// is simply never waited on once all arcs resolve. (Deterministic
	// callers should leave EarlyExit off: cancelling not-yet-fired
	// trailing deliveries races wall time against the virtual clock,
	// which perturbs the delivery-probe sample stream across replays.)
	if rn.cfg.EarlyExit {
		select {
		case <-rn.horizonCh:
		case <-r.done:
		}
	} else {
		<-rn.horizonCh
	}
	// Teardown order matters, especially on a shared virtual scheduler:
	// (1) stop timers so no new callbacks start, (2) wait out callbacks
	// already past the stop check (their mailbox sends complete while the
	// parties still drain), (3) cancel and join the parties, (4) settle
	// any deliveries stranded in mailboxes — their scheduler holds must
	// be released or a shared virtual clock would stall forever.
	r.stopTimers()
	r.fnWG.Wait()
	rn.cancel()
	rn.partyWG.Wait()
	for _, p := range r.parties {
		if p.mailbox == nil {
			continue // inline mode: deliveries never queue
		}
	drain:
		for {
			select {
			case fn := <-p.mailbox:
				fn() // ctx guard skips the body; the deferred settle runs
			default:
				break drain
			}
		}
	}
	if rn.shared {
		for id := 0; id < r.spec.D.NumArcs(); id++ {
			r.reg.UnsubscribeContract(r.spec.Assets[id].Chain, rn.subKey, r.spec.ContractID(id))
		}
		r.reg.Chain(core.BroadcastChain).Unsubscribe(rn.subKey)
	}
	// EarlyExit teardown may have cancelled the horizon timer before it
	// fired; the run is over either way.
	rn.fireHorizon()

	return r.buildResult()
}

// runSeq issues unique subscription keys for runs over shared registries.
var runSeq uint64

type runner struct {
	setup *core.Setup
	spec  *core.Spec
	sched sched.Scheduler
	// keyed is non-nil when the scheduler supports stripe keys and the run
	// has one: every event the run schedules then carries stripe.
	keyed  sched.KeyedScheduler
	stripe uint64
	reg    *chain.Registry
	probe  chain.DeliveryProbe
	log    *trace.Log
	ctx    context.Context
	// sync makes deliveries block the scheduler callback until the party
	// executed them (Config.SyncDeliveries).
	sync bool
	// inline runs deliveries directly on the scheduler dispatch goroutine
	// (see Config.SyncDeliveries); parties then have no mailbox goroutine.
	inline bool
	// horizonTick is the run's scheduled end, for Result.SettleTick when
	// some arc never resolves.
	horizonTick vtime.Ticks

	// cids maps this swap's contract IDs to arc IDs — the filter that
	// keeps a run deaf to other swaps sharing the same chains.
	cids map[chain.ContractID]int

	// delays caches each involved chain's delivery margin, derived at
	// Prepare from the chain's commitment-model timing (for an Instant
	// chain this reproduces the historical single-Δ margin exactly).
	delays map[string]vtime.Duration
	// chainProbes caches the registry's per-chain delivery probes for the
	// involved chains; observations feed them alongside the global probe.
	chainProbes map[string]chain.DeliveryProbe
	// reorgAware is set when any involved chain can revert or delay
	// finality; it gates the re-delivery dedupe below and the
	// finality-gated resolution path. False keeps the historical
	// zero-overhead shape.
	reorgAware bool
	// seenEvents dedupes behavior deliveries a reorg re-apply would
	// repeat (OnContract, OnUnlock, OnRedeem, OnSettled). Guarded by mu;
	// nil unless reorgAware.
	seenEvents map[string]bool
	// onRevert is Config.OnRevert.
	onRevert func(RevertEvent)

	// onPhase reports coarse phase transitions (Config.OnPhase); deadline
	// is the spec's max timelock, fixed at Prepare. phaseSeen (under mu)
	// makes each phase fire at most once.
	onPhase   func(PhaseEvent)
	deadline  vtime.Ticks
	phaseSeen map[string]bool

	parties []*party

	// timers tracks this run's outstanding scheduler timers so teardown
	// can cancel them in one sweep instead of leaking them (or, worse,
	// leaving dead events in a long-lived shared scheduler). fnWG counts
	// timer callbacks past the stop check, so teardown can wait for their
	// mailbox sends to finish before the parties stop draining.
	timersMu sync.Mutex
	timers   map[int64]sched.Timer
	timerSeq int64
	stopped  bool
	fnWG     sync.WaitGroup

	mu       sync.Mutex
	resolved map[int]bool
	resClaim map[int]bool
	// pubTicks and resTicks bound each arc's escrow span: first publish
	// tick and first resolution tick (first-write wins — a reorg
	// re-publish does not restart the lock interval the owner already
	// paid for).
	pubTicks map[int]vtime.Ticks
	resTicks map[int]vtime.Ticks
	// lastResolve is the tick of the most recent arc resolution.
	lastResolve vtime.Ticks
	done        chan struct{}
	doneSent    bool
}

// schedule arms fn at virtual tick t, tracked for teardown cancellation.
// The callback re-checks the stopped flag under the timer lock, so after
// stopTimers returns no new callback body can start (fnWG covers the ones
// already past the check).
func (r *runner) schedule(t vtime.Ticks, fn func()) {
	r.timersMu.Lock()
	if r.stopped {
		r.timersMu.Unlock()
		return
	}
	id := r.timerSeq
	r.timerSeq++
	inner := func() {
		r.timersMu.Lock()
		if r.stopped {
			r.timersMu.Unlock()
			return
		}
		r.fnWG.Add(1)
		delete(r.timers, id)
		r.timersMu.Unlock()
		defer r.fnWG.Done()
		fn()
	}
	var tm sched.Timer
	if r.keyed != nil {
		tm = r.keyed.AtKeyed(t, r.stripe, inner)
	} else {
		tm = r.sched.At(t, inner)
	}
	r.timers[id] = tm
	r.timersMu.Unlock()
}

// stopTimers cancels every outstanding timer and blocks new ones.
func (r *runner) stopTimers() {
	r.timersMu.Lock()
	r.stopped = true
	timers := make([]sched.Timer, 0, len(r.timers))
	for _, tm := range r.timers {
		timers = append(timers, tm)
	}
	r.timers = map[int64]sched.Timer{}
	r.timersMu.Unlock()
	for _, tm := range timers {
		tm.Stop()
	}
}

// observeLag feeds one delivery's observed lag past its scheduled tick
// to the global probe and, when the delivery was sourced from a chain
// event, to that chain's probe — so adaptive Δ can see per-chain lag
// instead of one blended stream.
func (r *runner) observeLag(src string, t vtime.Ticks) {
	lag := r.sched.Now().Sub(t)
	if lag < 0 {
		lag = 0
	}
	if r.probe != nil {
		r.probe.Observe(lag)
	}
	if src != "" {
		if p := r.chainProbes[src]; p != nil {
			p.Observe(lag)
		}
	}
}

// deliverAt schedules fn for execution on p's mailbox at virtual tick t.
// From fire time until the mailbox runs (or drops) it, the delivery holds
// the scheduler, so virtual time cannot jump past a deadline while the
// action racing that deadline sits in a mailbox. Alarms bypass the
// abandon gate: refund alarms keep running for abandoned parties, as in
// the simulator runtime.
func (r *runner) deliverAt(t vtime.Ticks, p *party, alarm bool, fn func()) {
	r.deliverFrom(t, p, alarm, "", fn)
}

// deliverFrom is deliverAt for deliveries sourced from a chain event:
// src names the chain, so the observed lag also feeds its probe.
func (r *runner) deliverFrom(t vtime.Ticks, p *party, alarm bool, src string, fn func()) {
	if r.inline {
		// Inline mode: the scheduler dispatch IS the party execution — the
		// dispatcher (or this stripe's worker) already holds the clock for
		// the duration of the callback, and same-stripe serialization keeps
		// the behavior single-threaded. No hold, no handoff, no wait.
		r.schedule(t, func() {
			if r.ctx.Err() != nil {
				return
			}
			if !alarm && p.abandoned {
				return
			}
			r.observeLag(src, t)
			fn()
		})
		return
	}
	r.schedule(t, func() {
		settle := r.sched.Hold()
		// Under SyncDeliveries the scheduler callback additionally waits
		// for the party to execute the delivery: on a serialized virtual
		// scheduler this means exactly one party action runs at a time,
		// in (tick, schedule-order) order — the property deterministic
		// replay rests on. The party goroutine never blocks on the
		// scheduler, so the wait cannot deadlock; teardown closes done
		// via the mailbox drain if the party already exited.
		var done chan struct{}
		if r.sync {
			done = make(chan struct{})
		}
		wrapped := func() {
			defer settle()
			if done != nil {
				defer close(done)
			}
			if r.ctx.Err() != nil {
				return // teardown drain: settle without executing
			}
			if !alarm && p.abandoned {
				return
			}
			r.observeLag(src, t)
			fn()
		}
		select {
		case p.mailbox <- wrapped:
			if done != nil {
				select {
				case <-done:
				case <-r.ctx.Done():
					// The party may have exited without draining; the
					// teardown drain will run wrapped and settle the hold.
				}
			}
		case <-r.ctx.Done():
			settle()
		}
	})
}

// notePublished records an arc's first contract-publication tick — the
// open of its escrow span. Safe from any goroutine.
func (r *runner) notePublished(arcID int, at vtime.Ticks) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.pubTicks[arcID]; !ok {
		r.pubTicks[arcID] = at
	}
}

func (r *runner) setResolved(arcID int, claimed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resolved[arcID] = true
	r.resClaim[arcID] = claimed
	if _, ok := r.resTicks[arcID]; !ok {
		r.resTicks[arcID] = r.sched.Now()
	}
	if now := r.sched.Now(); now > r.lastResolve {
		r.lastResolve = now
	}
	if !r.doneSent && len(r.resolved) == r.spec.D.NumArcs() {
		r.doneSent = true
		close(r.done)
	}
}

// notePhase reports one coarse phase transition through Config.OnPhase,
// at most once per run per phase. Safe from any goroutine.
func (r *runner) notePhase(phase string) {
	if r.onPhase == nil {
		return
	}
	r.mu.Lock()
	if r.phaseSeen == nil {
		r.phaseSeen = make(map[string]bool, 3)
	}
	if r.phaseSeen[phase] {
		r.mu.Unlock()
		return
	}
	r.phaseSeen[phase] = true
	r.mu.Unlock()
	r.onPhase(PhaseEvent{Phase: phase, At: r.sched.Now(), Deadline: r.deadline})
}

func (r *runner) getResolved(arcID int) (bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resolved[arcID], r.resClaim[arcID]
}

// deliveryDelay returns the cached delivery margin for events sourced
// from the named chain. The fallback (an uncached chain, only possible
// for notes outside the swap's asset set) is the Instant formula on the
// spec's base Δ — exactly the historical value.
func (r *runner) deliveryDelay(name string) vtime.Duration {
	if d, ok := r.delays[name]; ok {
		return d
	}
	return chain.Timing{}.DeliveryDelay(vtime.Duration(r.spec.Delta))
}

// dupEvent records a behavior-delivery key and reports whether it was
// already delivered. Always false (and allocation-free) when no involved
// chain can reorg: re-deliveries only exist when a revert re-applies
// records, so ideal-chain runs never pay for the map.
func (r *runner) dupEvent(key string) bool {
	if !r.reorgAware {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seenEvents == nil {
		r.seenEvents = make(map[string]bool)
	}
	if r.seenEvents[key] {
		return true
	}
	r.seenEvents[key] = true
	return false
}

// onNote fans chain notifications out to the incident parties within Δ,
// mirroring core.Runner.onNote. Unlike the simulator — which realizes the
// worst case exactly and leans on inclusive deadlines — real scheduling
// adds jitter on top of the delivery target, so targets sit a quarter-Δ
// inside the bound (detection strictly within Δ, as the paper's model
// allows): the protocol's deadline margins then scale with Δ instead of
// being a fixed tick count, which is what lets a loaded box widen Δ to
// buy robustness — and, with the delivery probe watching actual lag, lets
// the engine shrink Δ back when the hardware is keeping up. The margin is
// per-chain: each chain's commitment-model timing decides it, and an
// Instant chain reproduces the historical spec.Delta margin exactly.
//
// On chains with delayed finality, parties still act on applied
// (provisional) events optimistically — that is what keeps the swap
// moving at chain speed — but an arc only RESOLVES when its closing
// transfer finalizes, and a revert re-applies records through the normal
// paths (with re-deliveries deduped, since behaviors already acted).
func (r *runner) onNote(n chain.Notification) {
	delta := r.deliveryDelay(n.Chain)
	deliverIncident := func(arcID int, fn func(core.Behavior, core.Env)) {
		arc := r.spec.D.Arc(arcID)
		at := n.At.Add(delta)
		for _, v := range []digraph.Vertex{arc.Head, arc.Tail} {
			p := r.parties[v]
			r.deliverFrom(at, p, false, n.Chain, func() { fn(p.behavior, p.env()) })
		}
	}
	switch n.Kind {
	case chain.NoteContractPublished:
		c, ok := n.Event.(chain.Contract)
		if !ok {
			return
		}
		arcID, mine := r.cids[n.Contract]
		if !mine {
			return // another swap's contract on a shared chain
		}
		r.notePublished(arcID, n.At)
		r.notePhase("escrow")
		if r.dupEvent(fmt.Sprintf("c:%d", arcID)) {
			return // reorg re-publish: parties already saw this contract
		}
		deliverIncident(arcID, func(b core.Behavior, e core.Env) { b.OnContract(e, arcID, c) })
	case chain.NoteInvocation:
		if _, mine := r.cids[n.Contract]; !mine {
			return
		}
		switch ev := n.Event.(type) {
		case htlc.UnlockedEvent:
			r.notePhase("reveal")
			if r.dupEvent(fmt.Sprintf("u:%d:%d", ev.ArcID, ev.LockIndex)) {
				return
			}
			deliverIncident(ev.ArcID, func(b core.Behavior, e core.Env) {
				b.OnUnlock(e, ev.ArcID, ev.LockIndex, ev.Key)
			})
		case htlc.RedeemedEvent:
			r.notePhase("reveal")
			if r.dupEvent(fmt.Sprintf("r:%d", ev.ArcID)) {
				return
			}
			deliverIncident(ev.ArcID, func(b core.Behavior, e core.Env) {
				b.OnRedeem(e, ev.ArcID, ev.Secret)
			})
		}
	case chain.NoteTransfer:
		arcID, mine := r.cids[n.Contract]
		if !mine {
			return
		}
		ch := r.reg.Chain(n.Chain)
		c, ok := ch.Contract(n.Contract)
		if !ok {
			return
		}
		counter := r.spec.PartyOf(r.spec.D.Arc(arcID).Tail)
		owner, _ := ch.OwnerOf(c.AssetID())
		claimed := owner == chain.ByParty(counter)
		if !r.dupEvent(fmt.Sprintf("s:%d:%t", arcID, claimed)) {
			deliverIncident(arcID, func(b core.Behavior, e core.Env) { b.OnSettled(e, arcID, claimed) })
		}
		if n.Provisional {
			return // resolution waits for the transfer to finalize
		}
		r.setResolved(arcID, claimed)
	case chain.NoteFinalized:
		arcID, mine := r.cids[n.Contract]
		if !mine {
			return
		}
		ch := r.reg.Chain(n.Chain)
		c, ok := ch.Contract(n.Contract)
		if !ok {
			return
		}
		counter := r.spec.PartyOf(r.spec.D.Arc(arcID).Tail)
		owner, _ := ch.OwnerOf(c.AssetID())
		r.setResolved(arcID, owner == chain.ByParty(counter))
	case chain.NoteReverted:
		arcID, mine := r.cids[n.Contract]
		if !mine {
			return
		}
		if r.onRevert != nil {
			r.onRevert(RevertEvent{
				ArcID:    arcID,
				Chain:    n.Chain,
				Contract: n.Contract,
				Kind:     n.Reverted,
				At:       n.At,
			})
		}
	case chain.NoteData:
		if n.Chain != core.BroadcastChain {
			return
		}
		msg, ok := n.Event.(core.BroadcastMsg)
		if !ok || msg.Tag != r.spec.Tag {
			return // another swap's secret on the shared broadcast chain
		}
		r.notePhase("reveal")
		at := n.At.Add(delta)
		for _, p := range r.parties {
			p := p
			r.deliverFrom(at, p, false, n.Chain, func() { p.behavior.OnBroadcast(p.env(), msg.LockIndex, msg.Key) })
		}
	}
}

func (r *runner) buildResult() *Result {
	spec := r.spec
	triggered := make(map[int]bool, spec.D.NumArcs())
	for id := 0; id < spec.D.NumArcs(); id++ {
		if settled, claimed := r.getResolved(id); settled {
			triggered[id] = claimed
			continue
		}
		c, ok := r.reg.Chain(spec.Assets[id].Chain).Contract(spec.ContractID(id))
		if !ok {
			continue
		}
		if sw, ok := c.(*htlc.Swap); ok && sw.AllUnlocked() {
			triggered[id] = true
		}
	}
	r.mu.Lock()
	settleTick := r.lastResolve
	allResolved := len(r.resolved) == spec.D.NumArcs()
	escrows := make([]EscrowSpan, 0, len(r.pubTicks))
	for id := 0; id < spec.D.NumArcs(); id++ {
		from, ok := r.pubTicks[id]
		if !ok {
			continue // never published: nothing was locked
		}
		span := EscrowSpan{ArcID: id, From: from, To: r.horizonTick}
		if to, ok := r.resTicks[id]; ok {
			span.To, span.Resolved = to, true
		}
		if span.To < span.From {
			span.To = span.From
		}
		escrows = append(escrows, span)
	}
	r.mu.Unlock()
	if !allResolved {
		settleTick = r.horizonTick
	}
	return &Result{
		Triggered:  triggered,
		Report:     outcome.NewReport(spec.D, triggered),
		Registry:   r.reg,
		Log:        r.log,
		Escrows:    escrows,
		SettleTick: settleTick,
	}
}

// party is one goroutine-backed participant (mailbox nil in inline mode,
// where the scheduler's same-stripe serialization replaces the goroutine).
type party struct {
	runner    *runner
	vertex    digraph.Vertex
	behavior  core.Behavior
	mailbox   chan func()
	envc      concEnv
	abandoned bool // touched only on the party goroutine / stripe
}

func (p *party) loop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case fn := <-p.mailbox:
			fn()
		}
	}
}

// env returns the party's cached Env. concEnv is stateless (one back
// pointer), and every callback of a party is serialized — on its mailbox
// goroutine or its stripe — so one value per party serves all callbacks
// without allocating per delivery.
func (p *party) env() core.Env { return &p.envc }

// concEnv implements core.Env against real chains and the shared scheduler.
type concEnv struct {
	p *party
}

var _ core.Env = (*concEnv)(nil)

func (e *concEnv) Now() vtime.Ticks       { return e.p.runner.sched.Now() }
func (e *concEnv) Spec() *core.Spec       { return e.p.runner.spec }
func (e *concEnv) Vertex() digraph.Vertex { return e.p.vertex }
func (e *concEnv) Party() chain.PartyID   { return e.p.runner.spec.PartyOf(e.p.vertex) }
func (e *concEnv) Signer() *hashkey.Signer {
	return e.p.runner.setup.Signers[e.p.vertex]
}

func (e *concEnv) Secret() (hashkey.Secret, int, bool) {
	idx, ok := e.p.runner.spec.LeaderIndex(e.p.vertex)
	if !ok {
		return hashkey.Secret{}, 0, false
	}
	return e.p.runner.setup.Secrets[idx], idx, true
}

func (e *concEnv) chainOf(arcID int) *chain.Chain {
	return e.p.runner.reg.Chain(e.p.runner.spec.Assets[arcID].Chain)
}

func (e *concEnv) Contract(arcID int) (chain.Contract, bool) {
	return e.chainOf(arcID).Contract(e.p.runner.spec.ContractID(arcID))
}

func (e *concEnv) Resolved(arcID int) (bool, bool) {
	return e.p.runner.getResolved(arcID)
}

func (e *concEnv) Publish(arcID int) error {
	spec := e.p.runner.spec
	if spec.Kind == core.KindGeneral {
		return e.PublishSwapParams(spec.ContractParams(arcID))
	}
	h, err := htlc.NewHTLC(spec.HTLCParams(arcID))
	if err != nil {
		return err
	}
	if err := e.chainOf(arcID).PublishContract(e.Party(), h); err != nil {
		return err
	}
	e.Note(trace.KindContractPublished, arcID, -1, "")
	return nil
}

func (e *concEnv) PublishSwapParams(p htlc.SwapParams) error {
	sw, err := htlc.NewSwap(p)
	if err != nil {
		return err
	}
	if err := e.chainOf(p.ArcID).PublishContract(e.Party(), sw); err != nil {
		return err
	}
	e.Note(trace.KindContractPublished, p.ArcID, -1, "")
	return nil
}

func (e *concEnv) Unlock(arcID, lockIdx int, key hashkey.Hashkey) error {
	args := htlc.UnlockArgs{LockIndex: lockIdx, Key: key}
	err := e.chainOf(arcID).Invoke(e.Party(), e.p.runner.spec.ContractID(arcID),
		htlc.MethodUnlock, args, args.WireSize())
	if err == nil {
		e.Note(trace.KindUnlocked, arcID, lockIdx, "")
	}
	return err
}

func (e *concEnv) Redeem(arcID int, secret hashkey.Secret) error {
	args := htlc.RedeemArgs{Secret: secret}
	err := e.chainOf(arcID).Invoke(e.Party(), e.p.runner.spec.ContractID(arcID),
		htlc.MethodRedeem, args, args.WireSize())
	if err == nil {
		e.Note(trace.KindClaimed, arcID, -1, "redeemed")
	}
	return err
}

func (e *concEnv) Claim(arcID int) error {
	id := e.p.runner.spec.ContractID(arcID)
	if e.chainOf(arcID).Closed(id) {
		return chain.ErrContractClosed
	}
	err := e.chainOf(arcID).Invoke(e.Party(), id, htlc.MethodClaim, nil, 16)
	if err == nil {
		e.Note(trace.KindClaimed, arcID, -1, "")
	}
	return err
}

func (e *concEnv) Refund(arcID int) error {
	id := e.p.runner.spec.ContractID(arcID)
	if e.chainOf(arcID).Closed(id) {
		return chain.ErrContractClosed
	}
	err := e.chainOf(arcID).Invoke(e.Party(), id, htlc.MethodRefund, nil, 16)
	if err == nil {
		e.Note(trace.KindRefunded, arcID, -1, "")
	}
	return err
}

func (e *concEnv) Broadcast(lockIdx int, key hashkey.Hashkey) {
	if !e.p.runner.spec.Broadcast {
		return
	}
	e.p.runner.reg.Chain(core.BroadcastChain).PublishData(e.Party(),
		fmt.Sprintf("secret for lock %d", lockIdx),
		core.BroadcastMsg{Tag: e.p.runner.spec.Tag, LockIndex: lockIdx, Key: key}, key.WireSize())
	e.Note(trace.KindBroadcast, -1, lockIdx, "")
}

func (e *concEnv) At(t vtime.Ticks, fn func()) {
	e.p.runner.deliverAt(t, e.p, true, fn)
}

func (e *concEnv) Abandon(reason string) {
	if e.p.abandoned {
		return
	}
	e.p.abandoned = true
	e.Note(trace.KindAbandoned, -1, -1, reason)
}

func (e *concEnv) Note(kind trace.Kind, arcID, lockIdx int, detail string) {
	e.p.runner.log.Append(trace.Event{
		At:     e.p.runner.sched.Now(),
		Kind:   kind,
		Party:  string(e.Party()),
		Arc:    arcID,
		Lock:   lockIdx,
		Detail: detail,
	})
}
