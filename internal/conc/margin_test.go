package conc

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// TestInstantMarginMatchesLegacyFormula pins the compatibility contract
// of the commitment-model refactor: under the Instant model (zero
// Timing), the per-chain delivery margin must reproduce the historical
// hardcoded heuristic — delta minus a quarter-Δ margin, clamped so tiny
// deltas still deliver strictly inside the bound — for every Δ. The
// engine's byte-identical-digest guarantee rests on this equivalence.
func TestInstantMarginMatchesLegacyFormula(t *testing.T) {
	legacy := func(delta vtime.Duration) vtime.Duration {
		if margin := delta / 4; margin >= 1 {
			delta -= margin
		} else if delta > 1 {
			delta--
		}
		return delta
	}
	for _, d := range []vtime.Duration{1, 2, 3, 4, 5, 6, 7, 8, 10, 13, 16, 40, 100, 1000} {
		if got, want := (chain.Timing{}).DeliveryDelay(d), legacy(d); got != want {
			t.Errorf("Timing{}.DeliveryDelay(%d) = %d, legacy formula = %d", d, got, want)
		}
	}
	// A chain Δ override replaces the base before the margin applies.
	if got, want := (chain.Timing{Delta: 20}).DeliveryDelay(10), legacy(20); got != want {
		t.Errorf("Timing{Delta:20}.DeliveryDelay(10) = %d, want %d", got, want)
	}
	// Confirmation depth does not stretch delivery: notifications arrive
	// when a record is applied; only finality (and the timelock ladder,
	// via EffectiveDelta) waits out the depth.
	if got, want := (chain.Timing{ConfirmDepth: 6}).DeliveryDelay(10), legacy(10); got != want {
		t.Errorf("Timing{ConfirmDepth:6}.DeliveryDelay(10) = %d, want %d", got, want)
	}
	if got := (chain.Timing{Delta: 8, ConfirmDepth: 6}).EffectiveDelta(10); got != 14 {
		t.Errorf("EffectiveDelta = %d, want 14 (chain Δ 8 + depth 6)", got)
	}
	if got := (chain.Timing{}).EffectiveDelta(10); got != 10 {
		t.Errorf("zero Timing EffectiveDelta = %d, want base 10", got)
	}
}
