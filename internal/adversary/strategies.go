package adversary

import (
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Named strategies covering every deviation the paper discusses.

// SilentLeader conforms through Phase One but never releases its own
// secret (no unlocks of its own lock, no broadcast). Everyone refunds;
// only lockup time is lost — the griefing DoS of Section 5.
func SilentLeader(lockIdx int) core.Behavior {
	return Filtered(core.NewConforming(), Filter{
		DropUnlock:    func(_, l int) bool { return l == lockIdx },
		DropBroadcast: func(l int) bool { return l == lockIdx },
	})
}

// WithholdPublications drops contract publication on the given arcs (all
// arcs when none are given) — a party that signs up and then starves the
// deployment phase.
func WithholdPublications(arcs ...int) core.Behavior {
	set := make(map[int]bool, len(arcs))
	for _, a := range arcs {
		set[a] = true
	}
	return Filtered(core.NewConforming(), Filter{
		DropPublish: func(arc int) bool { return len(set) == 0 || set[arc] },
	})
}

// NoClaim never claims its entering arcs: the contracts stay fully
// unlocked bearer rights. Demonstrates that a lazy counterparty harms
// only itself (and that "triggered" must mean claimable, not claimed).
func NoClaim() core.Behavior {
	return Filtered(core.NewConforming(), Filter{
		DropClaim: func(int) bool { return true },
	})
}

// LastMomentRedeemer conforms under an HTLC variant except that every
// redeem is postponed to the last tick its contract accepts (timeout−1).
// Against uniform timeouts this is the Section 1 attack that strands the
// upstream party; against the Section 4.6 staircase it is harmless.
func LastMomentRedeemer() core.Behavior {
	inner := core.NewConformingHTLC()
	return &lastMoment{inner: inner}
}

type lastMoment struct {
	inner core.Behavior
}

func (l *lastMoment) wrap(e core.Env) core.Env {
	return &filteredEnv{Env: e, f: Filter{
		DelayRedeem: func(arcID int) (vtime.Ticks, bool) {
			return e.Spec().HTLCTimeout(arcID).Add(-1), true
		},
	}}
}

func (l *lastMoment) Init(e core.Env) { l.inner.Init(l.wrap(e)) }
func (l *lastMoment) OnContract(e core.Env, arcID int, c chain.Contract) {
	l.inner.OnContract(l.wrap(e), arcID, c)
}
func (l *lastMoment) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	l.inner.OnUnlock(l.wrap(e), arcID, lockIdx, key)
}
func (l *lastMoment) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	l.inner.OnRedeem(l.wrap(e), arcID, secret)
}
func (l *lastMoment) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	l.inner.OnBroadcast(l.wrap(e), lockIdx, key)
}
func (l *lastMoment) OnSettled(e core.Env, arcID int, claimed bool) {
	l.inner.OnSettled(l.wrap(e), arcID, claimed)
}

// LastMomentUnlocker is the hashkey-protocol analogue: every unlock is
// postponed to its hashkey's inclusive deadline start + (diam+|p|)·Δ. The
// path-dependent deadlines make it harmless (experiment E11).
func LastMomentUnlocker() core.Behavior {
	inner := core.NewConforming()
	return &wrapped{inner: inner, wrap: func(e core.Env) core.Env {
		return &lastUnlockEnv{Env: e}
	}}
}

type lastUnlockEnv struct {
	core.Env
}

func (e *lastUnlockEnv) Unlock(arcID, lockIdx int, key hashkey.Hashkey) error {
	spec := e.Spec()
	deadline := spec.Start.Add(vtime.Scale(spec.DiamBound+key.PathLen(), spec.Delta))
	if deadline.After(e.Now()) {
		e.Note(trace.KindDeviation, arcID, lockIdx, "holding unlock to the deadline")
		e.Env.At(deadline, func() { _ = e.Env.Unlock(arcID, lockIdx, key) })
		return nil
	}
	return e.Env.Unlock(arcID, lockIdx, key)
}

// PrematureRevealer is the "irrational Alice" of Section 1: a leader that
// presents its secret on an entering arc's contract as soon as that
// contract exists, without waiting for Phase One to complete. Whoever is
// upstream learns the secret early; only the revealer can end up worse
// off.
func PrematureRevealer() core.Behavior {
	return &premature{inner: core.NewConforming()}
}

type premature struct {
	inner core.Behavior
}

func (p *premature) Init(e core.Env) { p.inner.Init(e) }

func (p *premature) OnContract(e core.Env, arcID int, c chain.Contract) {
	if secret, idx, ok := e.Secret(); ok {
		arc := e.Spec().D.Arc(arcID)
		if arc.Tail == e.Vertex() {
			key := hashkey.New(secret, e.Signer())
			e.Note(trace.KindDeviation, arcID, idx, "premature secret reveal")
			_ = e.Unlock(arcID, idx, key)
		}
	}
	p.inner.OnContract(e, arcID, c)
}

func (p *premature) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	p.inner.OnUnlock(e, arcID, lockIdx, key)
}
func (p *premature) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	p.inner.OnRedeem(e, arcID, secret)
}
func (p *premature) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	p.inner.OnBroadcast(e, lockIdx, key)
}
func (p *premature) OnSettled(e core.Env, arcID int, claimed bool) {
	p.inner.OnSettled(e, arcID, claimed)
}

// EagerPublisher violates Lemma 4.11: it publishes contracts on its
// leaving arcs at Init without waiting for its entering arcs. Combined
// with a withholding coalition this leaves it Underwater — the experiment
// that shows why Phase One's ordering is load-bearing.
func EagerPublisher() core.Behavior {
	return &eager{inner: core.NewConforming()}
}

type eager struct {
	inner core.Behavior
}

func (g *eager) Init(e core.Env) {
	g.inner.Init(e)
	for _, arc := range e.Spec().D.Out(e.Vertex()) {
		if _, published := e.Contract(arc); !published {
			e.Note(trace.KindDeviation, arc, -1, "publishing before entering arcs are covered")
			_ = e.Publish(arc)
		}
	}
}

func (g *eager) OnContract(e core.Env, arcID int, c chain.Contract) {
	g.inner.OnContract(e, arcID, c)
}
func (g *eager) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	g.inner.OnUnlock(e, arcID, lockIdx, key)
}
func (g *eager) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	g.inner.OnRedeem(e, arcID, secret)
}
func (g *eager) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	g.inner.OnBroadcast(e, lockIdx, key)
}
func (g *eager) OnSettled(e core.Env, arcID int, claimed bool) {
	g.inner.OnSettled(e, arcID, claimed)
}

// CorruptPublisher publishes deliberately wrong contracts on its leaving
// arcs: the asset is right but a timelock is inflated by one Δ, so a
// verifying counterparty must reject the contract and abandon (Phase
// One's "verifies that contract is a correct swap contract" check).
func CorruptPublisher() core.Behavior {
	return &corrupt{inner: core.NewConforming()}
}

type corrupt struct {
	inner core.Behavior
}

func (c *corrupt) wrap(e core.Env) core.Env { return &corruptEnv{Env: e} }

func (c *corrupt) Init(e core.Env) { c.inner.Init(c.wrap(e)) }
func (c *corrupt) OnContract(e core.Env, arcID int, ct chain.Contract) {
	c.inner.OnContract(c.wrap(e), arcID, ct)
}
func (c *corrupt) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	c.inner.OnUnlock(c.wrap(e), arcID, lockIdx, key)
}
func (c *corrupt) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	c.inner.OnRedeem(c.wrap(e), arcID, secret)
}
func (c *corrupt) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	c.inner.OnBroadcast(c.wrap(e), lockIdx, key)
}
func (c *corrupt) OnSettled(e core.Env, arcID int, claimed bool) {
	c.inner.OnSettled(c.wrap(e), arcID, claimed)
}

type corruptEnv struct {
	core.Env
}

func (e *corruptEnv) Publish(arcID int) error {
	p := e.Spec().ContractParams(arcID)
	p.Timelocks[len(p.Timelocks)-1] = p.Timelocks[len(p.Timelocks)-1].Add(vtime.Duration(p.Delta))
	e.Note(trace.KindDeviation, arcID, -1, "publishing a corrupted contract (inflated timelock)")
	return e.Env.PublishSwapParams(p)
}

// Step is one scripted action.
type Step struct {
	At vtime.Ticks
	Do func(e core.Env)
}

// Scripted runs explicit steps on top of an optional inner behavior
// (NopBehavior when nil) — the building block for bespoke coalition
// scenarios such as the Lemma 4.11 punishment.
func Scripted(inner core.Behavior, steps ...Step) core.Behavior {
	if inner == nil {
		inner = core.NopBehavior{}
	}
	return &scripted{inner: inner, steps: steps}
}

type scripted struct {
	inner core.Behavior
	steps []Step
}

func (s *scripted) Init(e core.Env) {
	for _, st := range s.steps {
		st := st
		e.At(st.At, func() { st.Do(e) })
	}
	s.inner.Init(e)
}

func (s *scripted) OnContract(e core.Env, arcID int, c chain.Contract) {
	s.inner.OnContract(e, arcID, c)
}
func (s *scripted) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	s.inner.OnUnlock(e, arcID, lockIdx, key)
}
func (s *scripted) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	s.inner.OnRedeem(e, arcID, secret)
}
func (s *scripted) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	s.inner.OnBroadcast(e, lockIdx, key)
}
func (s *scripted) OnSettled(e core.Env, arcID int, claimed bool) {
	s.inner.OnSettled(e, arcID, claimed)
}
