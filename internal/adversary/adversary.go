// Package adversary implements deviating parties for the swap protocol's
// game-theoretic experiments: crash faults, withheld publications, silent
// and premature leaders, last-moment reveals, out-of-order publications,
// scripted coalitions, and a randomized deviation fuzzer.
//
// Deviations compose from two primitives:
//
//   - an Env filter that drops, delays, or rewrites the actions an
//     otherwise-conforming behavior attempts (a deviator whose node
//     silently withholds transactions);
//   - behavior wrappers that change when and whether protocol events are
//     acted upon (crash faults, scripted extra actions).
//
// Theorem 4.9 quantifies over arbitrary deviations by coalitions; the
// fuzzer approximates that space with seeded random combinations of the
// primitives plus coalition secret-sharing, and the named strategies cover
// every attack the paper discusses explicitly.
package adversary

import (
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Filter selectively suppresses or delays a party's chain actions. A nil
// predicate means "never". Dropped actions report success to the inner
// behavior — the deviator's protocol engine believes it acted.
type Filter struct {
	DropPublish   func(arcID int) bool
	DropUnlock    func(arcID, lockIdx int) bool
	DropRedeem    func(arcID int) bool
	DropClaim     func(arcID int) bool
	DropRefund    func(arcID int) bool
	DropBroadcast func(lockIdx int) bool
	// DelayUnlock moves an unlock to a later tick (still subject to the
	// contract's deadline when it finally lands).
	DelayUnlock func(arcID, lockIdx int) (vtime.Ticks, bool)
	// DelayRedeem moves a classic-HTLC redeem to a later tick.
	DelayRedeem func(arcID int) (vtime.Ticks, bool)
}

// filteredEnv applies a Filter in front of a real Env.
type filteredEnv struct {
	core.Env
	f Filter
}

func (e *filteredEnv) Publish(arcID int) error {
	if e.f.DropPublish != nil && e.f.DropPublish(arcID) {
		e.Note(trace.KindDeviation, arcID, -1, "withheld contract publication")
		return nil
	}
	return e.Env.Publish(arcID)
}

func (e *filteredEnv) Unlock(arcID, lockIdx int, key hashkey.Hashkey) error {
	if e.f.DropUnlock != nil && e.f.DropUnlock(arcID, lockIdx) {
		e.Note(trace.KindDeviation, arcID, lockIdx, "withheld unlock")
		return nil
	}
	if e.f.DelayUnlock != nil {
		if at, ok := e.f.DelayUnlock(arcID, lockIdx); ok && at.After(e.Now()) {
			e.Note(trace.KindDeviation, arcID, lockIdx, "delayed unlock")
			e.Env.At(at, func() { _ = e.Env.Unlock(arcID, lockIdx, key) })
			return nil
		}
	}
	return e.Env.Unlock(arcID, lockIdx, key)
}

func (e *filteredEnv) Redeem(arcID int, secret hashkey.Secret) error {
	if e.f.DropRedeem != nil && e.f.DropRedeem(arcID) {
		e.Note(trace.KindDeviation, arcID, -1, "withheld redeem")
		return nil
	}
	if e.f.DelayRedeem != nil {
		if at, ok := e.f.DelayRedeem(arcID); ok && at.After(e.Now()) {
			e.Note(trace.KindDeviation, arcID, -1, "delayed redeem")
			e.Env.At(at, func() { _ = e.Env.Redeem(arcID, secret) })
			return nil
		}
	}
	return e.Env.Redeem(arcID, secret)
}

func (e *filteredEnv) Claim(arcID int) error {
	if e.f.DropClaim != nil && e.f.DropClaim(arcID) {
		e.Note(trace.KindDeviation, arcID, -1, "withheld claim")
		return nil
	}
	return e.Env.Claim(arcID)
}

func (e *filteredEnv) Refund(arcID int) error {
	if e.f.DropRefund != nil && e.f.DropRefund(arcID) {
		e.Note(trace.KindDeviation, arcID, -1, "withheld refund")
		return nil
	}
	return e.Env.Refund(arcID)
}

func (e *filteredEnv) Broadcast(lockIdx int, key hashkey.Hashkey) {
	if e.f.DropBroadcast != nil && e.f.DropBroadcast(lockIdx) {
		e.Note(trace.KindDeviation, -1, lockIdx, "withheld broadcast")
		return
	}
	e.Env.Broadcast(lockIdx, key)
}

// Filtered wraps a behavior so all its actions pass through the filter.
func Filtered(inner core.Behavior, f Filter) core.Behavior {
	return &wrapped{inner: inner, wrap: func(e core.Env) core.Env {
		return &filteredEnv{Env: e, f: f}
	}}
}

// wrapped routes every behavior callback through an Env transformation.
type wrapped struct {
	inner core.Behavior
	wrap  func(core.Env) core.Env
}

func (w *wrapped) Init(e core.Env) { w.inner.Init(w.wrap(e)) }

func (w *wrapped) OnContract(e core.Env, arcID int, c chain.Contract) {
	w.inner.OnContract(w.wrap(e), arcID, c)
}

func (w *wrapped) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	w.inner.OnUnlock(w.wrap(e), arcID, lockIdx, key)
}

func (w *wrapped) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	w.inner.OnRedeem(w.wrap(e), arcID, secret)
}

func (w *wrapped) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	w.inner.OnBroadcast(w.wrap(e), lockIdx, key)
}

func (w *wrapped) OnSettled(e core.Env, arcID int, claimed bool) {
	w.inner.OnSettled(w.wrap(e), arcID, claimed)
}

// HaltAt wraps a behavior as a crash fault: from tick t on, no events are
// processed and no scheduled alarm acts — the party is gone, including its
// refunds.
func HaltAt(inner core.Behavior, t vtime.Ticks) core.Behavior {
	return &halter{inner: inner, at: t}
}

type halter struct {
	inner core.Behavior
	at    vtime.Ticks
}

func (h *halter) dead(e core.Env) bool { return !e.Now().Before(h.at) }

func (h *halter) wrap(e core.Env) core.Env { return &haltEnv{Env: e, h: h} }

func (h *halter) Init(e core.Env) {
	if h.dead(e) {
		return
	}
	h.inner.Init(h.wrap(e))
}

func (h *halter) OnContract(e core.Env, arcID int, c chain.Contract) {
	if h.dead(e) {
		return
	}
	h.inner.OnContract(h.wrap(e), arcID, c)
}

func (h *halter) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	if h.dead(e) {
		return
	}
	h.inner.OnUnlock(h.wrap(e), arcID, lockIdx, key)
}

func (h *halter) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	if h.dead(e) {
		return
	}
	h.inner.OnRedeem(h.wrap(e), arcID, secret)
}

func (h *halter) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	if h.dead(e) {
		return
	}
	h.inner.OnBroadcast(h.wrap(e), lockIdx, key)
}

func (h *halter) OnSettled(e core.Env, arcID int, claimed bool) {
	if h.dead(e) {
		return
	}
	h.inner.OnSettled(h.wrap(e), arcID, claimed)
}

// haltEnv guards scheduled alarms: a crashed party's pending alarms do
// nothing.
type haltEnv struct {
	core.Env
	h *halter
}

func (e *haltEnv) At(t vtime.Ticks, fn func()) {
	e.Env.At(t, func() {
		if !e.Now().Before(e.h.at) {
			return
		}
		fn()
	})
}
