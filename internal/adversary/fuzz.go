package adversary

import (
	"math/rand"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// CoalitionConfig parameterizes a randomized colluding coalition.
type CoalitionConfig struct {
	Setup   *core.Setup
	Members []digraph.Vertex
	Seed    int64
	// DropProb is the per-action-category probability that a member
	// withholds that category of action (publish, unlock, claim, refund,
	// broadcast) on any given arc.
	DropProb float64
	// HaltProb is the probability that a member crashes at a random tick
	// before the horizon.
	HaltProb float64
}

// Coalition builds one behavior per member approximating the strongest
// deviation the model allows:
//
//   - members share the coalition's leader secrets off-chain immediately
//     and try to unlock their entering arcs as early as possible, using
//     signature paths composed entirely of coalition vertexes;
//   - each member independently withholds random action categories;
//   - members may crash at random ticks.
//
// The result is deterministic for a given config.
func Coalition(cfg CoalitionConfig) map[digraph.Vertex]core.Behavior {
	rng := rand.New(rand.NewSource(cfg.Seed))
	members := append([]digraph.Vertex(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	inCoalition := make(map[digraph.Vertex]bool, len(members))
	for _, v := range members {
		inCoalition[v] = true
	}
	out := make(map[digraph.Vertex]core.Behavior, len(members))
	for _, v := range members {
		early := earlyKeys(cfg.Setup, v, inCoalition)
		var b core.Behavior = &coalitionMember{
			inner: core.NewConforming(),
			early: early,
		}
		b = Filtered(b, randomFilter(rng, cfg.DropProb))
		if rng.Float64() < cfg.HaltProb {
			span := int64(cfg.Setup.Spec.Horizon() - cfg.Setup.Spec.Start)
			if span > 0 {
				halt := cfg.Setup.Spec.Start.Add(vtime.Duration(rng.Int63n(span)))
				b = HaltAt(b, halt)
			}
		}
		out[v] = b
	}
	return out
}

// earlyKeys builds, for every coalition leader reachable from v through
// coalition-only vertexes, the hashkey v can present without any honest
// party's help.
func earlyKeys(setup *core.Setup, v digraph.Vertex, inCoalition map[digraph.Vertex]bool) map[int]hashkey.Hashkey {
	spec := setup.Spec
	keys := make(map[int]hashkey.Hashkey)
	for i, leader := range spec.Leaders {
		if !inCoalition[leader] {
			continue
		}
		path := coalitionPath(spec.D, v, leader, inCoalition)
		if path == nil {
			continue
		}
		// Sign from the leader outward: path = (v, ..., leader).
		key := hashkey.New(setup.Secrets[i], setup.Signers[leader])
		for j := len(path) - 2; j >= 0; j-- {
			key = key.Extend(setup.Signers[path[j]])
		}
		keys[i] = key
	}
	return keys
}

// coalitionPath finds a shortest path from v to target using only
// coalition vertexes, or nil.
func coalitionPath(d *digraph.Digraph, v, target digraph.Vertex, allowed map[digraph.Vertex]bool) digraph.Path {
	if v == target {
		return digraph.Path{v}
	}
	if !allowed[v] || !allowed[target] {
		return nil
	}
	prev := map[digraph.Vertex]digraph.Vertex{v: v}
	queue := []digraph.Vertex{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range d.Out(u) {
			w := d.Arc(id).Tail
			if !allowed[w] {
				continue
			}
			if _, seen := prev[w]; seen {
				continue
			}
			prev[w] = u
			if w == target {
				var path digraph.Path
				for x := target; ; x = prev[x] {
					path = append(digraph.Path{x}, path...)
					if x == v {
						return path
					}
				}
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// coalitionMember plays the conforming protocol but additionally presents
// shared secrets on its entering arcs as soon as their contracts exist.
type coalitionMember struct {
	inner *core.Conforming
	early map[int]hashkey.Hashkey
	sent  map[[2]int]bool
}

func (m *coalitionMember) tryEarlyUnlocks(e core.Env) {
	if len(m.early) == 0 {
		return
	}
	if m.sent == nil {
		m.sent = make(map[[2]int]bool)
	}
	idxs := make([]int, 0, len(m.early))
	for i := range m.early {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, arc := range e.Spec().D.In(e.Vertex()) {
		if _, published := e.Contract(arc); !published {
			continue
		}
		for _, i := range idxs {
			if m.sent[[2]int{arc, i}] {
				continue
			}
			if e.Unlock(arc, i, m.early[i]) == nil {
				e.Note(trace.KindDeviation, arc, i, "coalition early unlock")
				m.sent[[2]int{arc, i}] = true
			}
		}
	}
}

func (m *coalitionMember) Init(e core.Env) {
	m.inner.Init(e)
	m.tryEarlyUnlocks(e)
}

func (m *coalitionMember) OnContract(e core.Env, arcID int, c chain.Contract) {
	m.inner.OnContract(e, arcID, c)
	m.tryEarlyUnlocks(e)
}

func (m *coalitionMember) OnUnlock(e core.Env, arcID, lockIdx int, key hashkey.Hashkey) {
	m.inner.OnUnlock(e, arcID, lockIdx, key)
}

func (m *coalitionMember) OnRedeem(e core.Env, arcID int, secret hashkey.Secret) {
	m.inner.OnRedeem(e, arcID, secret)
}

func (m *coalitionMember) OnBroadcast(e core.Env, lockIdx int, key hashkey.Hashkey) {
	m.inner.OnBroadcast(e, lockIdx, key)
}

func (m *coalitionMember) OnSettled(e core.Env, arcID int, claimed bool) {
	m.inner.OnSettled(e, arcID, claimed)
}

// randomFilter draws independent per-arc withholding decisions.
func randomFilter(rng *rand.Rand, p float64) Filter {
	if p <= 0 {
		return Filter{}
	}
	// Draw decision seeds eagerly so the filter is deterministic
	// regardless of call order.
	pubSeed, unlockSeed, claimSeed, refundSeed := rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63()
	decide := func(seed int64, a, b int) bool {
		r := rand.New(rand.NewSource(seed + int64(a)*1_000_003 + int64(b)*7919))
		return r.Float64() < p
	}
	return Filter{
		DropPublish:   func(arc int) bool { return decide(pubSeed, arc, 0) },
		DropUnlock:    func(arc, lock int) bool { return decide(unlockSeed, arc, lock) },
		DropClaim:     func(arc int) bool { return decide(claimSeed, arc, 0) },
		DropRefund:    func(arc int) bool { return decide(refundSeed, arc, 0) },
		DropBroadcast: func(lock int) bool { return decide(unlockSeed, lock, 1) },
	}
}
