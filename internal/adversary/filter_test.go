package adversary

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func TestDropRefundLeavesEscrowStuck(t *testing.T) {
	// Alice never refunds and the leader never reveals: her asset stays
	// in escrow forever. She harms only herself; classification treats
	// the arc as untriggered.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	idx, _ := setup.Spec.LeaderIndex(0)
	r := core.NewRunner(setup, core.Options{Seed: 2})
	r.SetBehavior(0, Filtered(core.NewConforming(), Filter{
		DropUnlock:    func(_, l int) bool { return l == idx }, // silent leader...
		DropBroadcast: func(int) bool { return true },
		DropRefund:    func(int) bool { return true }, // ...who also never refunds
	}))
	res := mustRun(t, r)
	assertConformingSafe(t, res)
	// Alice's leaving arc 0 contract was published and never settled.
	if settled := res.Registry.Chain(setup.Spec.Assets[0].Chain).Closed(setup.Spec.ContractID(0)); settled {
		t.Error("arc 0 should be stuck in escrow with refunds dropped")
	}
	// The conformers refunded theirs.
	if got := len(res.Log.OfKind(trace.KindRefunded)); got != 2 {
		t.Errorf("refunds = %d, want 2 (Bob's and Carol's)", got)
	}
}

func TestDelayedUnlockStillLands(t *testing.T) {
	// On the directed 3-cycle the schedule is exactly tight — any delay
	// misses a deadline (see E2: the 2·diam·Δ bound is met with
	// equality). The two-leader triangle has slack: C's |p|=1 hashkeys
	// stay valid until T+3Δ, so delaying her unlocks from T+3 ticks to
	// T+2.5Δ changes nothing.
	setup := mustSetup(t, graphgen.TwoLeaderTriangle(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 2})
	r.SetBehavior(2, Filtered(core.NewConforming(), Filter{
		DelayUnlock: func(int, int) (vtime.Ticks, bool) { return 125, true },
	}))
	res := mustRun(t, r)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Error("an in-deadline unlock delay should still complete the swap")
	}
}

func TestDropRedeemFilter(t *testing.T) {
	// Single-leader variant: Carol's redeems are dropped; she never takes
	// her bitcoins, so her entering arc refunds — but the secret reached
	// her leaving arc first, so everyone upstream is fine or better.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{
		Kind: core.KindSingleLeader, Delta: 10, Start: 100,
	})
	r := core.NewRunner(setup, core.Options{Seed: 2})
	r.SetBehavior(2, Filtered(core.NewConformingHTLC(), Filter{
		DropRedeem: func(int) bool { return true },
	}))
	res := mustRun(t, r)
	assertConformingSafe(t, res)
	if got := res.Report.Of(2); got == outcome.Deal {
		t.Error("Carol dropped her own redeems; she cannot have full Deal")
	}
}

func TestHalterSuppressesAlarms(t *testing.T) {
	// A party that crashes before its refund alarms must not refund: its
	// escrow stays locked even after the timelocks.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	idx, _ := setup.Spec.LeaderIndex(0)
	r := core.NewRunner(setup, core.Options{Seed: 2})
	// The leader goes silent so refunds are the only resolution...
	r.SetBehavior(0, SilentLeader(idx))
	// ...and Bob crashes right after publishing (t=100), before any
	// timelock fires.
	r.SetBehavior(1, HaltAt(core.NewConforming(), 101))
	res := mustRun(t, r)
	refundedArcs := map[int]bool{}
	for _, ev := range res.Log.OfKind(trace.KindRefunded) {
		refundedArcs[ev.Arc] = true
	}
	if refundedArcs[1] {
		t.Error("crashed Bob's alarm fired anyway: arc 1 should stay locked")
	}
	if !refundedArcs[0] || !refundedArcs[2] {
		t.Errorf("live parties should refund their arcs, got %v", refundedArcs)
	}
}

func TestCoalitionPathHelpers(t *testing.T) {
	d := graphgen.TwoLeaderTriangle()
	members := map[digraph.Vertex]bool{0: true, 2: true}
	// Direct arc inside the coalition.
	if p := coalitionPath(d, 2, 0, members); p == nil || p.Len() != 1 {
		t.Errorf("coalition path C->A = %v, want length 1", p)
	}
	// Target outside the coalition.
	if p := coalitionPath(d, 2, 1, members); p != nil {
		t.Errorf("path to non-member should be nil, got %v", p)
	}
	// Degenerate.
	if p := coalitionPath(d, 1, 1, map[digraph.Vertex]bool{1: true}); p == nil || p.Len() != 0 {
		t.Errorf("self path = %v, want degenerate", p)
	}
}
