package adversary

import (
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// hashkeyNewForTest builds the leader's degenerate hashkey from leaked
// material, as an out-of-band exploiter would.
func hashkeyNewForTest(secret hashkey.Secret, setup *core.Setup, leader digraph.Vertex) hashkey.Hashkey {
	return hashkey.New(secret, setup.Signers[leader])
}

func mustSetup(t *testing.T, d *digraph.Digraph, cfg core.Config) *core.Setup {
	t.Helper()
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(4))
	}
	setup, err := core.NewSetup(d, cfg)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	return setup
}

func mustRun(t *testing.T, r *core.Runner) *core.Result {
	t.Helper()
	res, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// assertConformingSafe fails if any vertex running the default conforming
// behavior ended Underwater — the Theorem 4.9 guarantee.
func assertConformingSafe(t *testing.T, res *core.Result) {
	t.Helper()
	for _, v := range res.Conforming {
		if got := res.Report.Of(v); got == outcome.Underwater {
			t.Errorf("conforming party %s ended Underwater", res.Spec.PartyOf(v))
			t.Log("\n" + res.Log.Render())
		}
	}
}

func TestHaltBeforePhaseOneAllRefund(t *testing.T) {
	// Bob crashes before the protocol starts: nothing he owes is
	// published, every deployed contract times out, everyone ends NoDeal.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(1, HaltAt(core.NewConforming(), 0))
	res := mustRun(t, r)

	assertConformingSafe(t, res)
	for _, v := range res.Spec.D.Vertices() {
		if got := res.Report.Of(v); got != outcome.NoDeal {
			t.Errorf("%s = %v, want NoDeal", res.Spec.PartyOf(v), got)
		}
	}
	// Alice deployed and must have been refunded.
	if got := len(res.Log.OfKind(trace.KindRefunded)); got == 0 {
		t.Error("expected at least one refund")
	}
}

func TestHaltDuringPhaseTwo(t *testing.T) {
	// Carol crashes right after Alice reveals: Alice has opened the lock
	// on Carol's leaving arc (C->A), so Alice can claim the title; Carol
	// never propagates the secret, so the other contracts refund. Carol —
	// the crashed party — is the only one Underwater.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	// Alice reveals (unlocks arc 2) at 120; Carol dies at 125, before she
	// can observe and propagate at 130.
	r.SetBehavior(2, HaltAt(core.NewConforming(), 125))
	res := mustRun(t, r)

	assertConformingSafe(t, res)
	if got := res.Report.Of(2); got != outcome.Underwater {
		t.Errorf("crashed Carol = %v, want Underwater (her deviation harms only her)", got)
	}
	if got := res.Report.Of(0); got != outcome.FreeRide {
		t.Errorf("Alice = %v, want FreeRide (got the title, alt-coins refunded)", got)
	}
	if got := res.Report.Of(1); got != outcome.NoDeal {
		t.Errorf("Bob = %v, want NoDeal", got)
	}
}

func TestSilentLeaderGriefing(t *testing.T) {
	// The Section 5 DoS: a leader that completes Phase One and never
	// reveals. All assets come back, bounded by the max timelock.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	idx, _ := setup.Spec.LeaderIndex(0)
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(0, SilentLeader(idx))
	res := mustRun(t, r)

	assertConformingSafe(t, res)
	for _, v := range res.Spec.D.Vertices() {
		if got := res.Report.Of(v); got != outcome.NoDeal {
			t.Errorf("%s = %v, want NoDeal", res.Spec.PartyOf(v), got)
		}
	}
	// Lockup is bounded: every refund lands within a tick of its
	// timelock, and no later than MaxTimelock+1.
	refunds := res.Log.OfKind(trace.KindRefunded)
	if len(refunds) != 3 {
		t.Fatalf("refunds = %d, want 3", len(refunds))
	}
	deadline := setup.Spec.MaxTimelock().Add(1)
	for _, ev := range refunds {
		if ev.At.After(deadline) {
			t.Errorf("refund of arc %d at %d, after bound %d", ev.Arc, ev.At, deadline)
		}
	}
}

func TestWithholdPublicationsIsSafe(t *testing.T) {
	setup := mustSetup(t, graphgen.TwoLeaderTriangle(), core.Config{})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(2, WithholdPublications()) // C publishes nothing
	res := mustRun(t, r)
	assertConformingSafe(t, res)
}

func TestNoClaimStillTriggers(t *testing.T) {
	// A counterparty that never claims leaves the contract as a fully
	// unlocked bearer right: the arc still counts as triggered, everyone
	// is Deal.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(1, NoClaim())
	res := mustRun(t, r)
	assertConformingSafe(t, res)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Error("lazy claimer should not change anyone's outcome class")
	}
}

func TestIntroLeakExploitsPlainHTLC(t *testing.T) {
	// Section 1's "irrational Alice" under the intro's plain-HTLC
	// protocol: Alice leaks s before Phase One completes (modeled by
	// handing her secret to the other behaviors out of band). "Bob can
	// take Alice's alt-coins, and perhaps Carol can take Bob's bitcoins,
	// but Alice will not get her Cadillac, so only she is worse off."
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{
		Kind: core.KindSingleLeader, Delta: 10, Start: 100,
	})
	leaked := setup.Secrets[0]
	r := core.NewRunner(setup, core.Options{Seed: 1})
	// Alice runs the protocol (her deviation is the leak itself, so she
	// is registered as non-conforming).
	r.SetBehavior(0, core.NewConformingHTLC())
	// Bob redeems Alice's contract with the leaked secret immediately.
	r.SetBehavior(1, Scripted(core.NewConformingHTLC(), Step{
		At: 100,
		Do: func(e core.Env) { _ = e.Redeem(0, leaked) },
	}))
	// Carol grabs Bob's bitcoins with the leaked secret and never
	// publishes the title contract.
	r.SetBehavior(2, Scripted(nil, Step{
		At: 110,
		Do: func(e core.Env) { _ = e.Redeem(1, leaked) },
	}))
	res := mustRun(t, r)

	if got := res.Report.Of(0); got != outcome.Underwater {
		t.Log("\n" + res.Log.Render())
		t.Errorf("leaking Alice = %v, want Underwater (only she is worse off)", got)
	}
	if got := res.Report.Of(1); got != outcome.Deal {
		t.Errorf("Bob = %v, want Deal", got)
	}
	if got := res.Report.Of(2); got != outcome.FreeRide {
		t.Errorf("Carol = %v, want FreeRide (bitcoins in, nothing paid)", got)
	}
}

func TestLeakedSecretUselessWithoutSignatures(t *testing.T) {
	// The same leak against the general (hashkey) protocol is harmless:
	// a bare secret cannot open a hashlock without a signature chain from
	// the presenting counterparty to the leader, and honest parties will
	// not sign early. Bob tries Carol's exploit and fails.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	leaked := setup.Secrets[0]
	leader := setup.Spec.Leaders[0]
	forged := hashkeyNewForTest(leaked, setup, leader)
	r := core.NewRunner(setup, core.Options{Seed: 1})
	var exploitErr error
	r.SetBehavior(1, Scripted(core.NewConforming(), Step{
		At: 105,
		Do: func(e core.Env) {
			// Bob presents the leader's degenerate hashkey on his
			// entering arc: the path does not start at him, so the
			// contract rejects it.
			exploitErr = e.Unlock(0, 0, forged)
		},
	}))
	res := mustRun(t, r)
	if exploitErr == nil {
		t.Error("bare-secret unlock should be rejected by the path check")
	}
	assertConformingSafe(t, res)
	if !res.Report.AllDeal() {
		t.Error("failed exploit should leave the swap unharmed")
	}
}

func TestPrematureRevealerHarmlessAmongConformers(t *testing.T) {
	// A leader that reveals on entering contracts as soon as they exist
	// (instead of waiting for all of them) cannot hurt anyone when the
	// rest conform — secrets just move a little earlier.
	setup := mustSetup(t, graphgen.TwoLeaderTriangle(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(0, PrematureRevealer())
	res := mustRun(t, r)
	assertConformingSafe(t, res)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Error("premature reveal among conformers should still reach AllDeal")
	}
}

func TestEagerFollowerPunished(t *testing.T) {
	// Lemma 4.11: Bob publishes his leaving contract before his entering
	// arc is covered. Withholding Alice plus fully conforming Carol
	// drain him: Bob ends Underwater.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(0, WithholdPublications(0)) // Alice never publishes A->B
	r.SetBehavior(1, EagerPublisher())
	res := mustRun(t, r)

	if got := res.Report.Of(1); got != outcome.Underwater {
		t.Log("\n" + res.Log.Render())
		t.Errorf("eager Bob = %v, want Underwater (ordering is load-bearing)", got)
	}
	// Carol conformed and must be safe.
	assertConformingSafe(t, res)
	if got := res.Report.Of(2); got.Acceptable() == false {
		t.Errorf("conforming Carol = %v, want acceptable", got)
	}
}

func TestLastMomentUnlockHarmlessInGeneralProtocol(t *testing.T) {
	// E11, hashkey side: delaying every unlock to its inclusive deadline
	// still completes the swap — path-dependent deadlines absorb it.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(2, LastMomentUnlocker())
	res := mustRun(t, r)
	assertConformingSafe(t, res)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Error("last-moment unlocking must not break the hashkey protocol")
	}
}

func TestUniformTimeoutAttack(t *testing.T) {
	// E11, the Section 1 attack: equal timeouts let Carol redeem at the
	// last moment, leaving conforming Bob Underwater. This is the broken
	// baseline — it is WHY timeouts must form a staircase.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{
		Kind: core.KindUniformTimeout, Delta: 10, Start: 100,
	})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(2, LastMomentRedeemer())
	res := mustRun(t, r)

	if got := res.Report.Of(1); got != outcome.Underwater {
		t.Log("\n" + res.Log.Render())
		t.Errorf("Bob = %v, want Underwater under uniform timeouts", got)
	}
}

func TestStaircaseDefeatsLastMomentAttack(t *testing.T) {
	// Same attack against the Section 4.6 staircase: Bob has a full Δ
	// after Carol's last-moment redeem and finishes the swap.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{
		Kind: core.KindSingleLeader, Delta: 10, Start: 100,
	})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(2, LastMomentRedeemer())
	res := mustRun(t, r)

	assertConformingSafe(t, res)
	if !res.Report.AllDeal() {
		t.Log("\n" + res.Log.Render())
		t.Error("staircase timeouts must absorb the last-moment reveal")
	}
}

func TestNonStronglyConnectedBreaksUniformity(t *testing.T) {
	// Lemma 3.4 / Theorem 3.5: on a non-strongly-connected digraph even
	// all-conforming execution cannot deliver Deal to everyone: the X
	// side completes its internal cycle (the bridge head even gets a
	// Discount), the Y side is structurally stuck at NoDeal.
	d := graphgen.NotStronglyConnected(3, 3)
	setup := mustSetup(t, d, core.Config{AllowUnsafe: true})
	res := mustRun(t, core.NewRunner(setup, core.Options{Seed: 1}))

	assertConformingSafe(t, res)
	if res.Report.AllDeal() {
		t.Fatal("non-SC digraph must not reach AllDeal")
	}
	if got := res.Report.Of(0); got != outcome.Discount {
		t.Errorf("bridge head X0 = %v, want Discount (the free-riding payoff)", got)
	}
	for v := 3; v < 6; v++ {
		if got := res.Report.Of(digraph.Vertex(v)); got != outcome.NoDeal {
			t.Errorf("Y%d = %v, want NoDeal", v-3, got)
		}
	}
}

func TestCorruptContractRejected(t *testing.T) {
	// Phase One's verification step: Alice publishes a contract whose
	// timelock disagrees with the plan. Bob must reject it and abandon,
	// the swap dies cleanly, and nobody ends Underwater.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	r.SetBehavior(0, CorruptPublisher())
	res := mustRun(t, r)

	assertConformingSafe(t, res)
	rejected := res.Log.OfKind(trace.KindContractRejected)
	if len(rejected) == 0 {
		t.Fatal("Bob should have rejected the corrupted contract")
	}
	abandoned := res.Log.OfKind(trace.KindAbandoned)
	if len(abandoned) == 0 {
		t.Fatal("Bob should have abandoned after rejecting")
	}
	if res.Report.AllDeal() {
		t.Error("swap with a corrupted contract must not complete")
	}
	for _, v := range res.Spec.D.Vertices() {
		if got := res.Report.Of(v); got != outcome.NoDeal {
			t.Errorf("%s = %v, want NoDeal", res.Spec.PartyOf(v), got)
		}
	}
}

func TestScriptedStep(t *testing.T) {
	// Scripted steps run at their scheduled times with the party's env.
	setup := mustSetup(t, graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100})
	r := core.NewRunner(setup, core.Options{Seed: 1})
	var firedAt vtime.Ticks
	r.SetBehavior(1, Scripted(core.NewConforming(), Step{
		At: 115,
		Do: func(e core.Env) { firedAt = e.Now() },
	}))
	res := mustRun(t, r)
	if firedAt != 115 {
		t.Errorf("scripted step fired at %d, want 115", firedAt)
	}
	assertConformingSafe(t, res)
}

// TestTheorem49Fuzz is the central safety property: across random
// strongly connected digraphs and random maximally-colluding coalitions
// (secret sharing, random withholding, random crashes), no conforming
// party ever ends Underwater.
func TestTheorem49Fuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	const runs = 120
	// One verification cache shared across every fuzz iteration, exactly
	// as the clearing engine shares one across all its swaps: coalition
	// chains must stay correctly judged even with a hot cross-swap cache.
	vcache := hashkey.NewVerifyCache(0)
	for seed := int64(0); seed < runs; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		d := graphgen.RandomStronglyConnected(n, 0.25+rng.Float64()*0.3, seed)
		cfg := core.Config{Rand: rand.New(rand.NewSource(seed + 1000)), Cache: vcache}
		if rng.Intn(3) == 0 {
			cfg.Broadcast = true
		}
		setup, err := core.NewSetup(d, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Random non-empty strict subset as the coalition.
		var members []digraph.Vertex
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				members = append(members, digraph.Vertex(v))
			}
		}
		if len(members) == n {
			members = members[1:]
		}
		r := core.NewRunner(setup, core.Options{Seed: seed})
		for v, b := range Coalition(CoalitionConfig{
			Setup:    setup,
			Members:  members,
			Seed:     seed,
			DropProb: 0.35,
			HaltProb: 0.3,
		}) {
			r.SetBehavior(v, b)
		}
		res := mustRun(t, r)
		for _, v := range res.Conforming {
			if res.Report.Of(v) == outcome.Underwater {
				t.Fatalf("seed %d: conforming %s Underwater\n%s",
					seed, res.Spec.PartyOf(v), res.Log.Render())
			}
		}
		if !res.Registry.VerifyAllLedgers() {
			t.Fatalf("seed %d: ledger corruption", seed)
		}
		// Conservation: every asset still exists, owned by the original
		// party, the counterparty, or an escrow — never anyone else.
		for id := 0; id < setup.Spec.D.NumArcs(); id++ {
			aa := setup.Spec.Assets[id]
			owner, ok := res.Registry.Chain(aa.Chain).OwnerOf(aa.Asset)
			if !ok {
				t.Fatalf("seed %d: asset %s vanished", seed, aa.Asset)
			}
			arc := setup.Spec.D.Arc(id)
			head, tail := setup.Spec.PartyOf(arc.Head), setup.Spec.PartyOf(arc.Tail)
			legal := owner.Kind == chain.OwnerEscrow ||
				owner.Party == head || owner.Party == tail
			if !legal {
				t.Fatalf("seed %d: asset %s leaked to %v", seed, aa.Asset, owner)
			}
		}
	}
	if st := vcache.Stats(); st.Misses == 0 {
		t.Error("shared verify cache saw no traffic; fuzz no longer exercises cached verification")
	}
}

// TestTheorem47Fuzz is the liveness side: with no adversary at all,
// random digraphs always reach AllDeal within 2·diam·Δ.
func TestTheorem47Fuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	for seed := int64(0); seed < 60; seed++ {
		n := 3 + int(seed%8)
		d := graphgen.RandomStronglyConnected(n, 0.3, seed)
		setup := mustSetup(t, d, core.Config{Rand: rand.New(rand.NewSource(seed + 99))})
		res := mustRun(t, core.NewRunner(setup, core.Options{Seed: seed}))
		if !res.Report.AllDeal() {
			t.Fatalf("seed %d: not AllDeal\n%s", seed, res.Log.Render())
		}
		bound := setup.Spec.Start.Add(vtime.Scale(2*setup.Spec.DiamBound, setup.Spec.Delta))
		if last, ok := res.Log.Last(trace.KindUnlocked); ok && last.At.After(bound) {
			t.Fatalf("seed %d: unlock at %d beyond bound %d", seed, last.At, bound)
		}
	}
}

// TestHaltSweepSingleLeader injects crashes at every Δ boundary of the
// single-leader protocol and checks the conforming parties stay safe.
func TestHaltSweepSingleLeader(t *testing.T) {
	for haltDelta := 0; haltDelta <= 6; haltDelta++ {
		for victim := 0; victim < 3; victim++ {
			setup := mustSetup(t, graphgen.ThreeWay(), core.Config{
				Kind: core.KindSingleLeader, Delta: 10, Start: 100,
				Rand: rand.New(rand.NewSource(int64(10*haltDelta + victim))),
			})
			r := core.NewRunner(setup, core.Options{Seed: 1})
			haltAt := setup.Spec.Start.Add(vtime.Scale(haltDelta, setup.Spec.Delta))
			r.SetBehavior(digraph.Vertex(victim), HaltAt(core.NewConformingHTLC(), haltAt))
			res := mustRun(t, r)
			assertConformingSafe(t, res)
		}
	}
}

// TestHaltSweepGeneral does the same for the hashkey protocol.
func TestHaltSweepGeneral(t *testing.T) {
	for haltDelta := 0; haltDelta <= 6; haltDelta++ {
		for victim := 0; victim < 3; victim++ {
			setup := mustSetup(t, graphgen.TwoLeaderTriangle(), core.Config{
				Delta: 10, Start: 100,
				Rand: rand.New(rand.NewSource(int64(10*haltDelta + victim))),
			})
			r := core.NewRunner(setup, core.Options{Seed: 1})
			haltAt := setup.Spec.Start.Add(vtime.Scale(haltDelta, setup.Spec.Delta))
			r.SetBehavior(digraph.Vertex(victim), HaltAt(core.NewConforming(), haltAt))
			res := mustRun(t, r)
			assertConformingSafe(t, res)
		}
	}
}
