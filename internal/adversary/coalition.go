package adversary

import (
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Punishment builds the Lemma 4.11 griefing coalition: each member runs
// the conforming protocol right up to the boundary the lemma permits —
// it accepts entering contracts but never deploys its own leaving arcs,
// never unlocks, never redeems, never broadcasts. Conforming
// counterparties escrowed against the coalition wait out their full
// timelocks and refund; the coalition itself escrows nothing, so its
// only cost is forgone trade while the victims' capital stays locked —
// pure griefing, the lemma's worst case. Claims and refunds are left
// intact (a member still collects any bearer rights that fall to it and
// refunds what it did escrow before joining, keeping the deviation
// individually rational).
//
// The returned behaviors are stateless per member and deterministic:
// the same member set always produces the same deviation.
func Punishment(members []digraph.Vertex) map[digraph.Vertex]core.Behavior {
	f := Filter{
		DropPublish:   func(int) bool { return true },
		DropUnlock:    func(int, int) bool { return true },
		DropRedeem:    func(int) bool { return true },
		DropBroadcast: func(int) bool { return true },
	}
	out := make(map[digraph.Vertex]core.Behavior, len(members))
	for _, v := range members {
		out[v] = Filtered(core.NewConforming(), f)
	}
	return out
}
