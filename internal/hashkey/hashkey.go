// Package hashkey implements the cryptographic machinery of the swap
// protocol: secrets and SHA-256 hashlocks, Ed25519 signing identities for
// the parties, and hashkeys — the (secret, path, signature-chain) triples
// of Section 4.1 that generalize hashed timelocks to multi-leader swaps.
//
// A hashkey for hashlock h on arc (u, v) is (s, p, σ): the secret with
// h = H(s), a simple path p = (u₀, ..., u_k) where u₀ = v is the presenting
// counterparty and u_k is the leader who generated s, and
// σ = sig(···sig(s, u_k), ..., u₀) — the secret signed by the leader, then
// each successive party wrapping the previous signature. A hashkey times
// out at (diam(D) + |p|)·Δ after the protocol start; the path-dependent
// deadline replaces the static timeout staircase of single-leader swaps.
package hashkey

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// SecretSize is the byte length of swap secrets.
const SecretSize = 32

// SigSize is the byte length of one signature link in a chain.
const SigSize = ed25519.SignatureSize

// Secret is a leader-generated preimage.
type Secret [SecretSize]byte

// Lock is the SHA-256 hashlock of a secret.
type Lock [sha256.Size]byte

// NewSecret draws a fresh secret from r (crypto/rand.Reader in production,
// a seeded reader in deterministic simulations).
func NewSecret(r io.Reader) (Secret, error) {
	var s Secret
	if _, err := io.ReadFull(r, s[:]); err != nil {
		return Secret{}, fmt.Errorf("hashkey: drawing secret: %w", err)
	}
	return s, nil
}

// Lock returns the hashlock H(s).
func (s Secret) Lock() Lock { return sha256.Sum256(s[:]) }

// Matches reports whether the secret opens the lock.
func (s Secret) Matches(l Lock) bool { return s.Lock() == l }

// String renders a short hex prefix, safe for traces (it is the lock that
// is public; secrets render redacted).
func (s Secret) String() string { return "secret(…" + hex.EncodeToString(s[28:])[0:8] + ")" }

// String renders a short hex prefix of the lock.
func (l Lock) String() string { return hex.EncodeToString(l[:4]) }

// Signer is a party's signing identity. The stored ed25519.PrivateKey is
// the expanded (seed ‖ public key) form, derived once at construction —
// signing never re-derives the keypair from the seed. (The per-sign
// SHA-512 prefix expansion is internal to crypto/ed25519 and has no
// public precomputation hook; the derivation this cache elides is the
// seed→keypair step.)
type Signer struct {
	vertex digraph.Vertex
	pub    ed25519.PublicKey
	priv   ed25519.PrivateKey
	// meter, when set, counts every Sign call. Views returned by At share
	// the meter, so a keyring-owned counter sees all signs made under any
	// vertex binding of the identity.
	meter *atomic.Uint64
}

// NewSigner creates a signing identity for the given vertex using
// randomness from r.
func NewSigner(vertex digraph.Vertex, r io.Reader) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("hashkey: generating key for vertex %d: %w", vertex, err)
	}
	return &Signer{vertex: vertex, pub: pub, priv: priv}, nil
}

// NewSignerFromSeed rebuilds a signing identity from a stored 32-byte
// ed25519 seed. ed25519.GenerateKey draws exactly SeedSize bytes from its
// reader and derives the keypair from them, so a signer rebuilt from the
// seed those bytes became is bit-identical to the one originally
// generated — the property the durable keyring persistence rests on.
func NewSignerFromSeed(vertex digraph.Vertex, seed []byte) (*Signer, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("hashkey: seed for vertex %d is %d bytes, want %d",
			vertex, len(seed), ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Signer{
		vertex: vertex,
		pub:    priv.Public().(ed25519.PublicKey),
		priv:   priv,
	}, nil
}

// Seed returns the 32-byte ed25519 seed this identity derives from — the
// persisted form of a signer (see NewSignerFromSeed).
func (s *Signer) Seed() []byte { return s.priv.Seed() }

// Vertex returns the vertex this identity signs for.
func (s *Signer) Vertex() digraph.Vertex { return s.vertex }

// Public returns the public key.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Sign signs msg.
func (s *Signer) Sign(msg []byte) []byte {
	if s.meter != nil {
		s.meter.Add(1)
	}
	return ed25519.Sign(s.priv, msg)
}

// SetMeter installs a counter incremented on every Sign. Signature count
// is part of the protocol's cost model (each swap needs exactly one
// leader sign per secret plus one wrap per chain extension), so metering
// makes signature-count regressions visible in throughput reports.
func (s *Signer) SetMeter(m *atomic.Uint64) { s.meter = m }

// At returns a view of the same signing identity bound to a different
// vertex. Key material (and the sign meter) is shared, not copied: this
// is how a persistent party identity (one keypair for the party's
// lifetime) is rebound to whatever vertex the party is assigned in each
// cleared swap.
func (s *Signer) At(vertex digraph.Vertex) *Signer {
	if s.vertex == vertex {
		return s
	}
	return &Signer{vertex: vertex, pub: s.pub, priv: s.priv, meter: s.meter}
}

// Directory maps vertexes to their public keys; contracts use it to verify
// signature chains. It is part of the public swap plan.
type Directory map[digraph.Vertex]ed25519.PublicKey

// NewDirectory builds a directory from signers.
func NewDirectory(signers ...*Signer) Directory {
	d := make(Directory, len(signers))
	for _, s := range signers {
		d[s.vertex] = s.pub
	}
	return d
}

// Errors returned by hashkey verification.
var (
	ErrWrongSecret   = errors.New("hashkey: secret does not match hashlock")
	ErrEmptyPath     = errors.New("hashkey: empty path")
	ErrWrongLeader   = errors.New("hashkey: path does not end at the secret's leader")
	ErrChainLength   = errors.New("hashkey: signature chain length does not match path")
	ErrBadSignature  = errors.New("hashkey: invalid signature in chain")
	ErrUnknownSigner = errors.New("hashkey: no public key for path vertex")
)

// Hashkey is the paper's (s, p, σ) triple. Sigs[i] is the signature by
// Path[i]: Sigs[k] (the leader's, k = len(Path)-1) signs the secret, and
// Sigs[i] for i < k signs Sigs[i+1]. The nested value the paper calls σ is
// Sigs[0]; the full chain is carried so each link can be verified.
type Hashkey struct {
	Secret Secret
	Path   digraph.Path
	Sigs   [][]byte
}

// New creates a leader's degenerate hashkey: path (leader), the leader's
// signature over the secret. This is the form leaders present on their own
// entering arcs at the start of Phase Two.
func New(secret Secret, leader *Signer) Hashkey {
	return Hashkey{
		Secret: secret,
		Path:   digraph.Path{leader.Vertex()},
		Sigs:   [][]byte{leader.Sign(secret[:])},
	}
}

// Extend returns the hashkey re-presented by v: path v + p, signature
// chain prefixed with v's signature over the current outermost signature.
// The receiver is unchanged.
func (h Hashkey) Extend(v *Signer) Hashkey {
	sigs := make([][]byte, 0, len(h.Sigs)+1)
	sigs = append(sigs, v.Sign(h.Sigs[0]))
	sigs = append(sigs, h.Sigs...)
	return Hashkey{
		Secret: h.Secret,
		Path:   h.Path.Prepend(v.Vertex()),
		Sigs:   sigs,
	}
}

// PathLen returns |p|, the number of arcs on the path. The timeout of a
// hashkey presented at time t is start + (diam + PathLen)·Δ.
func (h Hashkey) PathLen() int { return h.Path.Len() }

// Leader returns the final path vertex — the leader expected to have
// generated the secret.
func (h Hashkey) Leader() digraph.Vertex { return h.Path[len(h.Path)-1] }

// Presenter returns the first path vertex — the counterparty presenting
// the hashkey.
func (h Hashkey) Presenter() digraph.Vertex { return h.Path[0] }

// WireSize returns the serialized size in bytes (secret + path vertex ids
// + signatures), used for the communication-complexity accounting.
func (h Hashkey) WireSize() int {
	return SecretSize + 4*len(h.Path) + SigSize*len(h.Sigs)
}

// Verify checks the hashkey against a hashlock, the swap digraph, the
// expected leader, and the party directory:
//
//   - the secret opens the lock,
//   - the path is a simple path in d from presenter to leader,
//   - every link of the signature chain verifies under the corresponding
//     path vertex's public key.
//
// It returns nil when the hashkey is valid.
func (h Hashkey) Verify(lock Lock, d *digraph.Digraph, leader digraph.Vertex, dir Directory) error {
	if len(h.Path) != 0 && !d.IsPath(h.Path) {
		return fmt.Errorf("hashkey: %v is not a simple path in the swap digraph", h.Path)
	}
	return h.VerifyCrypto(lock, leader, dir)
}

// VerifyCrypto checks everything Verify does except membership of the
// path in a digraph. The Swap contract uses it together with its own path
// check, which must also admit the virtual (counterparty, leader) paths
// of the Section 4.5 broadcast optimization.
func (h Hashkey) VerifyCrypto(lock Lock, leader digraph.Vertex, dir Directory) error {
	if err := h.checkStructure(lock, leader); err != nil {
		return err
	}
	k := len(h.Path) - 1
	for i := 0; i <= k; i++ {
		pub, ok := dir[h.Path[i]]
		if !ok {
			return fmt.Errorf("%w: vertex %d", ErrUnknownSigner, h.Path[i])
		}
		var msg []byte
		if i == k {
			msg = h.Secret[:]
		} else {
			msg = h.Sigs[i+1]
		}
		if !ed25519.Verify(pub, msg, h.Sigs[i]) {
			return fmt.Errorf("%w: link %d (vertex %d)", ErrBadSignature, i, h.Path[i])
		}
	}
	return nil
}

// checkStructure runs the signature-independent validity checks shared by
// the cached and uncached verification paths: any check added here applies
// to both, which is what keeps their accept/reject decisions identical.
func (h Hashkey) checkStructure(lock Lock, leader digraph.Vertex) error {
	if len(h.Path) == 0 {
		return ErrEmptyPath
	}
	if !h.Secret.Matches(lock) {
		return ErrWrongSecret
	}
	if h.Leader() != leader {
		return fmt.Errorf("%w: path ends at %d, leader is %d", ErrWrongLeader, h.Leader(), leader)
	}
	if len(h.Sigs) != len(h.Path) {
		return fmt.Errorf("%w: %d signatures for %d path vertexes", ErrChainLength, len(h.Sigs), len(h.Path))
	}
	return nil
}

// Clone returns a deep copy, so contracts can retain hashkeys without
// aliasing caller-owned buffers. All signatures share one pre-sized
// backing buffer: a clone costs three allocations regardless of chain
// length instead of one per link.
func (h Hashkey) Clone() Hashkey {
	sigs := make([][]byte, len(h.Sigs))
	total := 0
	for _, s := range h.Sigs {
		total += len(s)
	}
	buf := make([]byte, 0, total)
	for i, s := range h.Sigs {
		buf = append(buf, s...)
		sigs[i] = buf[len(buf)-len(s) : len(buf) : len(buf)]
	}
	return Hashkey{Secret: h.Secret, Path: h.Path.Clone(), Sigs: sigs}
}

// CryptoRand returns the process-wide cryptographic randomness source.
func CryptoRand() io.Reader { return rand.Reader }
