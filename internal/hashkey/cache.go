package hashkey

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// VerifyCache memoizes successful signature-chain verifications so that
// re-verifying a hashkey — or verifying a one-link extension of an already
// verified hashkey — costs one signature check at most instead of |p|.
//
// Entries are content-addressed: the cache key is a SHA-256 digest over the
// secret, the hashlock, and every (vertex, public key, signature) triple of
// the chain, in order. A cached entry therefore asserts exactly "this
// secret, signed along this path by these keys, is a valid chain ending at
// this leader" — tampering with any byte of the secret, path, signatures,
// lock, or the directory keys in effect changes the digest and can never
// hit a stale entry. No negative results are cached, so the cache can turn
// an invalid hashkey into neither a false accept (the digest of a tampered
// key was never inserted) nor a false reject (misses fall back to the full
// chain walk).
//
// The protocol's unlock pattern makes this amortized O(1): when hashlock i
// opens on some arc with path p, the next party presents v+p on its own
// entering arcs; the suffix p was verified (and cached) by the previous
// contract, so only v's outer link needs a fresh ed25519 verification.
//
// VerifyCache is safe for concurrent use. Capacity is bounded with a
// two-generation (hot/cold) scheme: inserts go to the hot generation, and
// when it fills, it becomes the cold one and a fresh hot map starts —
// amortized O(1) per operation with memory bounded by 2·max entries.
type VerifyCache struct {
	mu   sync.Mutex
	max  int
	hot  map[[32]byte]struct{}
	cold map[[32]byte]struct{}

	// Counters are atomic so recording an outcome never re-takes mu: a
	// cache hit costs one mutex acquisition, not two.
	hits     atomic.Uint64
	fastpath atomic.Uint64
	misses   atomic.Uint64

	// batchWorkers > 1 lets miss-path chain walks spread their link
	// verifications across a worker pool (see SetBatchWorkers).
	batchWorkers atomic.Int32
}

// DefaultVerifyCacheEntries bounds each cache generation when NewVerifyCache
// is given a non-positive max. 64Ki digests ≈ 2 MiB per generation.
const DefaultVerifyCacheEntries = 1 << 16

// NewVerifyCache creates a cache holding at most max digests per
// generation (DefaultVerifyCacheEntries when max <= 0).
func NewVerifyCache(max int) *VerifyCache {
	if max <= 0 {
		max = DefaultVerifyCacheEntries
	}
	return &VerifyCache{max: max, hot: make(map[[32]byte]struct{})}
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts verifications answered entirely from the cache (zero
	// signature checks).
	Hits uint64
	// Fastpath counts extensions verified with a single signature check
	// against a cached inner suffix.
	Fastpath uint64
	// Misses counts verifications that had to walk the full chain.
	Misses uint64
	// Entries is the number of live digests across both generations.
	Entries int
}

// Stats returns the current counters.
func (c *VerifyCache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.hot) + len(c.cold)
	c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Fastpath: c.fastpath.Load(),
		Misses:   c.misses.Load(),
		Entries:  entries,
	}
}

// contains reports whether digest d is cached, promoting cold hits. The
// caller records the outcome (hit / fastpath / miss) once per
// verification, so probing both the full key and its suffix counts once.
func (c *VerifyCache) contains(d [32]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.hot[d]; ok {
		return true
	}
	if _, ok := c.cold[d]; ok {
		// Promote, removing the cold copy so Entries counts distinct
		// digests.
		delete(c.cold, d)
		c.hot[d] = struct{}{}
		c.rotateLocked()
		return true
	}
	return false
}

// SetBatchWorkers sets how many goroutines a cache-miss chain walk may
// fan its link verifications across (<= 1 keeps walks serial). The engine
// sets it to its worker count, so cold chains verify batch-style — all
// links in flight at once — instead of link by link.
func (c *VerifyCache) SetBatchWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.batchWorkers.Store(int32(n))
}

// BatchWorkers reports the current miss-path fan-out (minimum 1).
func (c *VerifyCache) BatchWorkers() int {
	if n := c.batchWorkers.Load(); n > 1 {
		return int(n)
	}
	return 1
}

func (c *VerifyCache) noteHit()      { c.hits.Add(1) }
func (c *VerifyCache) noteFastpath() { c.fastpath.Add(1) }
func (c *VerifyCache) noteMiss()     { c.misses.Add(1) }

// add inserts a verified digest, dropping any cold-generation copy so
// Entries counts distinct digests.
func (c *VerifyCache) add(d [32]byte) {
	c.mu.Lock()
	delete(c.cold, d)
	c.hot[d] = struct{}{}
	c.rotateLocked()
	c.mu.Unlock()
}

// rotateLocked starts a new hot generation when the current one is full.
// The caller must hold c.mu.
func (c *VerifyCache) rotateLocked() {
	if len(c.hot) >= c.max {
		c.cold = c.hot
		c.hot = make(map[[32]byte]struct{}, c.max/4)
	}
}

// chainDigest computes the content address of a (secret, path, sigs)
// chain bound to lock and to the public keys actually used to verify each
// link. All fields are either fixed-size or length-prefixed, so distinct
// inputs cannot collide by concatenation ambiguity.
func chainDigest(secret Secret, lock Lock, path digraph.Path, sigs [][]byte, pubs []ed25519.PublicKey) [32]byte {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(path)))
	h.Write(b[:])
	h.Write(secret[:])
	h.Write(lock[:])
	for i, v := range path {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		h.Write(b[:4])
		h.Write(pubs[i])
		binary.LittleEndian.PutUint32(b[:4], uint32(len(sigs[i])))
		h.Write(b[:4])
		h.Write(sigs[i])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// SeedVerified records h in the cache as a valid chain for lock under the
// directory's keys, without checking any signature. The caller asserts
// validity by construction; the legitimate cases are
//
//   - a key the party just built itself: its own signature over a chain it
//     verified a moment ago (the follower's re-presentation of a broadcast
//     or observed unlock), and
//   - a key whose validity an on-chain contract already established.
//
// Structural checks still run, and an unknown signer still fails: seeding
// can extend trust only from material the directory actually names. A nil
// cache is a no-op. The payoff is that the party's own later
// re-presentations — and every contract verifying them — start from a
// pure cache hit (zero signature checks) instead of the one-signature
// fast path.
func (h Hashkey) SeedVerified(lock Lock, leader digraph.Vertex, dir Directory, cache *VerifyCache) error {
	if cache == nil {
		return nil
	}
	if err := h.checkStructure(lock, leader); err != nil {
		return err
	}
	pubs := make([]ed25519.PublicKey, len(h.Path))
	for i, v := range h.Path {
		pub, ok := dir[v]
		if !ok {
			return fmt.Errorf("%w: vertex %d", ErrUnknownSigner, v)
		}
		pubs[i] = pub
	}
	cache.add(chainDigest(h.Secret, lock, h.Path, h.Sigs, pubs))
	return nil
}

// VerifyExtended is Verify with an amortizing cache: structurally identical
// checks, but signature-chain work already recorded in the cache is not
// redone. A nil cache degrades to Verify. See VerifyCryptoExtended for the
// caching contract.
func (h Hashkey) VerifyExtended(lock Lock, d *digraph.Digraph, leader digraph.Vertex, dir Directory, cache *VerifyCache) error {
	if len(h.Path) != 0 && !d.IsPath(h.Path) {
		return fmt.Errorf("hashkey: %v is not a simple path in the swap digraph", h.Path)
	}
	return h.VerifyCryptoExtended(lock, leader, dir, cache)
}

// VerifyCryptoExtended checks everything VerifyCrypto does and returns the
// same accept/reject decision, but amortizes the signature-chain cost:
//
//   - the cheap structural checks (secret opens the lock, path ends at the
//     leader, chain length, all signers known) always run;
//   - if the full chain was verified before under the same keys, no
//     signature is re-checked;
//   - if only the inner suffix (the hashkey this one extends) is cached,
//     exactly one signature — the new outermost link — is checked;
//   - otherwise the whole chain is walked and every verified suffix is
//     seeded into the cache, so later extensions of any of them hit.
//
// Only valid chains are inserted, keyed by content (see VerifyCache), so a
// tampered key can never be accepted off a stale entry.
func (h Hashkey) VerifyCryptoExtended(lock Lock, leader digraph.Vertex, dir Directory, cache *VerifyCache) error {
	if cache == nil {
		return h.VerifyCrypto(lock, leader, dir)
	}
	if err := h.checkStructure(lock, leader); err != nil {
		return err
	}
	pubs := make([]ed25519.PublicKey, len(h.Path))
	for i, v := range h.Path {
		pub, ok := dir[v]
		if !ok {
			return fmt.Errorf("%w: vertex %d", ErrUnknownSigner, v)
		}
		pubs[i] = pub
	}

	full := chainDigest(h.Secret, lock, h.Path, h.Sigs, pubs)
	if cache.contains(full) {
		cache.noteHit()
		return nil
	}
	if len(h.Path) > 1 {
		suffix := chainDigest(h.Secret, lock, h.Path[1:], h.Sigs[1:], pubs[1:])
		if cache.contains(suffix) {
			// The inner chain is known valid under these exact keys: only
			// the new outermost link needs checking.
			if !ed25519.Verify(pubs[0], h.Sigs[1], h.Sigs[0]) {
				return fmt.Errorf("%w: link 0 (vertex %d)", ErrBadSignature, h.Path[0])
			}
			cache.noteFastpath()
			cache.add(full)
			return nil
		}
	}

	// Slow path: verify the whole chain — batch-style across the worker
	// pool when the cache has one (all links are independent ed25519
	// checks) — then seed the cache with every suffix: a valid chain's
	// suffixes are themselves valid chains ending at the same leader.
	cache.noteMiss()
	k := len(h.Path) - 1
	links := chainLinks(&h, pubs, 0, k+1)
	if !verifyLinks(links, cache.BatchWorkers()) {
		for i := range links {
			if !links[i].ok {
				return fmt.Errorf("%w: link %d (vertex %d)", ErrBadSignature, i, h.Path[i])
			}
		}
	}
	cache.add(full)
	for i := 1; i <= k; i++ {
		cache.add(chainDigest(h.Secret, lock, h.Path[i:], h.Sigs[i:], pubs[i:]))
	}
	return nil
}
