package hashkey

import (
	"errors"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// cacheBench builds a 5-cycle (4 hops leader→presenter) with one signer
// per vertex: long enough that the suffix fast path is distinguishable
// from a full-chain walk.
func cacheBench(t *testing.T) (*digraph.Digraph, []*Signer, Directory) {
	t.Helper()
	const n = 5
	d := digraph.New()
	for i := 0; i < n; i++ {
		d.AddVertex("")
	}
	// A bidirectional ring, so (0, 1, ..., k) is a simple path for any k
	// and every extension used below stays inside the digraph.
	for i := 0; i < n; i++ {
		d.MustAddArc(digraph.Vertex(i), digraph.Vertex((i+1)%n))
		d.MustAddArc(digraph.Vertex((i+1)%n), digraph.Vertex(i))
	}
	r := detRand(11)
	signers := make([]*Signer, n)
	for i := range signers {
		s, err := NewSigner(digraph.Vertex(i), r)
		if err != nil {
			t.Fatalf("NewSigner: %v", err)
		}
		signers[i] = s
	}
	return d, signers, NewDirectory(signers...)
}

// chainOfLen builds the valid hashkey with path (0, 1, ..., leader) by
// extending the leader's degenerate key outward.
func chainOfLen(t *testing.T, signers []*Signer, leaderIdx int) (Secret, Hashkey) {
	t.Helper()
	secret, err := NewSecret(detRand(12))
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	key := New(secret, signers[leaderIdx])
	for i := leaderIdx - 1; i >= 0; i-- {
		key = key.Extend(signers[i])
	}
	return secret, key
}

func TestVerifyExtendedAgreesWithVerify(t *testing.T) {
	d, signers, dir := cacheBench(t)
	secret, key := chainOfLen(t, signers, 4)
	lock := secret.Lock()
	cache := NewVerifyCache(0)
	for round := 0; round < 3; round++ {
		if err := key.Verify(lock, d, 4, dir); err != nil {
			t.Fatalf("round %d: Verify: %v", round, err)
		}
		if err := key.VerifyExtended(lock, d, 4, dir, cache); err != nil {
			t.Fatalf("round %d: VerifyExtended: %v", round, err)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss then 2 hits", st)
	}
	// Nil cache must behave exactly like Verify.
	if err := key.VerifyExtended(lock, d, 4, dir, nil); err != nil {
		t.Errorf("nil-cache VerifyExtended: %v", err)
	}
}

func TestVerifyExtendedFastPath(t *testing.T) {
	d, signers, dir := cacheBench(t)
	secret, _ := chainOfLen(t, signers, 4)
	lock := secret.Lock()
	cache := NewVerifyCache(0)
	// Verify each successive extension, as the protocol's Phase Two does
	// arc by arc: every step after the first should take the suffix fast
	// path, never a full-chain walk.
	key := New(secret, signers[4])
	if err := key.VerifyExtended(lock, d, 4, dir, cache); err != nil {
		t.Fatalf("leader key: %v", err)
	}
	for i := 3; i >= 0; i-- {
		key = key.Extend(signers[i])
		if err := key.VerifyExtended(lock, d, 4, dir, cache); err != nil {
			t.Fatalf("extension at %d: %v", i, err)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Errorf("full-chain walks = %d, want exactly 1 (the leader's degenerate key)", st.Misses)
	}
	if st.Fastpath != 4 {
		t.Errorf("fast-path verifications = %d, want 4", st.Fastpath)
	}
}

// TestCachePoisoning is the adversarial core: a hashkey whose inner suffix
// is validly cached but whose outermost link, path, secret, or lock is
// tampered must still be rejected — the cache must never convert a hot
// suffix into acceptance of a bad chain.
// TestSeedVerified pins the broadcast re-presentation amortization: a
// party that extends a just-verified key and seeds its own extension makes
// every later verification of that extension a pure cache hit — zero
// signature checks, where an unseeded cache would take the one-signature
// fast path.
func TestSeedVerified(t *testing.T) {
	_, signers, dir := cacheBench(t)
	secret, base := chainOfLen(t, signers, 1) // the "broadcast" key (1)
	lock := secret.Lock()
	cache := NewVerifyCache(0)

	// The follower verifies the broadcast key (as OnBroadcast does)...
	if err := base.VerifyCryptoExtended(lock, 1, dir, cache); err != nil {
		t.Fatal(err)
	}
	// ...extends it with its own signature and seeds the extension.
	mine := base.Extend(signers[2])
	if err := mine.SeedVerified(lock, 1, dir, cache); err != nil {
		t.Fatalf("SeedVerified: %v", err)
	}

	before := cache.Stats()
	if err := mine.VerifyCryptoExtended(lock, 1, dir, cache); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("seeded extension not a pure hit: before %+v after %+v", before, after)
	}
	if after.Fastpath != before.Fastpath {
		t.Fatalf("seeded extension took the fast path: %+v", after)
	}

	// Seeding refuses structural garbage and unknown signers: trust can
	// only be asserted over material the lock/leader/directory name.
	if err := mine.SeedVerified(lock, 3, dir, cache); !errors.Is(err, ErrWrongLeader) {
		t.Fatalf("wrong leader seeded: %v", err)
	}
	delete(dir, 2)
	if err := mine.SeedVerified(lock, 1, dir, cache); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("unknown signer seeded: %v", err)
	}
	// A nil cache is a no-op, not an error.
	if err := mine.SeedVerified(lock, 1, dir, nil); err != nil {
		t.Fatalf("nil cache: %v", err)
	}
}

func TestCachePoisoning(t *testing.T) {
	d, signers, dir := cacheBench(t)
	secret, suffix := chainOfLen(t, signers, 3) // valid path (0,1,2,3)
	lock := secret.Lock()
	cache := NewVerifyCache(0)
	if err := suffix.VerifyExtended(lock, d, 3, dir, cache); err != nil {
		t.Fatalf("seeding suffix: %v", err)
	}

	// A forger at vertex 4 wants to present (4,0,1,2,3) without signing.
	t.Run("missing-outer-sig", func(t *testing.T) {
		bad := suffix.Clone()
		bad.Path = bad.Path.Prepend(4)
		// Reuse the old outer signature instead of signing: chain length
		// mismatch must reject before any cache lookup can help.
		if err := bad.VerifyExtended(lock, d, 3, dir, cache); !errors.Is(err, ErrChainLength) {
			t.Errorf("got %v, want ErrChainLength", err)
		}
	})

	t.Run("forged-outer-sig", func(t *testing.T) {
		bad := suffix.Clone()
		bad.Path = bad.Path.Prepend(4)
		forged := make([][]byte, 0, len(bad.Sigs)+1)
		forged = append(forged, make([]byte, SigSize)) // zero signature
		forged = append(forged, bad.Sigs...)
		bad.Sigs = forged
		if err := bad.VerifyExtended(lock, d, 3, dir, cache); !errors.Is(err, ErrBadSignature) {
			t.Errorf("got %v, want ErrBadSignature", err)
		}
		// And the failure must not have been cached: still rejected.
		if err := bad.VerifyExtended(lock, d, 3, dir, cache); !errors.Is(err, ErrBadSignature) {
			t.Errorf("second attempt: got %v, want ErrBadSignature", err)
		}
	})

	t.Run("outer-sig-by-wrong-key", func(t *testing.T) {
		// Vertex 4 signs, but the path claims vertex 2 (whose directory
		// key differs) — the content address binds the directory key, so
		// the extension cannot ride the cached suffix.
		bad := suffix.Extend(signers[4])
		bad.Path[0] = 2
		err := bad.VerifyExtended(lock, d, 3, dir, cache)
		if err == nil {
			t.Fatal("tampered presenter vertex accepted")
		}
	})

	t.Run("tampered-secret", func(t *testing.T) {
		bad := suffix.Extend(signers[4])
		bad.Secret[0] ^= 0xff
		if err := bad.VerifyExtended(lock, d, 3, dir, cache); !errors.Is(err, ErrWrongSecret) {
			t.Errorf("got %v, want ErrWrongSecret", err)
		}
	})

	t.Run("tampered-lock", func(t *testing.T) {
		bad := suffix.Extend(signers[4])
		wrongLock := lock
		wrongLock[0] ^= 0xff
		if err := bad.VerifyExtended(wrongLock, d, 3, dir, cache); !errors.Is(err, ErrWrongSecret) {
			t.Errorf("got %v, want ErrWrongSecret", err)
		}
	})

	t.Run("tampered-path-order", func(t *testing.T) {
		bad := suffix.Extend(signers[4])
		bad.Path[1], bad.Path[2] = bad.Path[2], bad.Path[1]
		if err := bad.VerifyExtended(lock, d, 3, dir, cache); err == nil {
			t.Error("reordered path accepted")
		}
	})

	t.Run("valid-extension-still-accepted", func(t *testing.T) {
		good := suffix.Extend(signers[4])
		if err := good.VerifyCryptoExtended(lock, 3, dir, cache); err != nil {
			t.Errorf("valid extension rejected after poisoning attempts: %v", err)
		}
	})
}

// TestCacheKeyCollision checks the content address binds the directory:
// the same bytes (secret, path, sigs) verified under directory A must not
// satisfy verification under directory B where a path vertex has a
// different public key — an attacker who can influence directory contents
// must not inherit cache entries across directories.
func TestCacheKeyCollision(t *testing.T) {
	d, signers, dir := cacheBench(t)
	secret, key := chainOfLen(t, signers, 3)
	lock := secret.Lock()
	cache := NewVerifyCache(0)
	if err := key.VerifyExtended(lock, d, 3, dir, cache); err != nil {
		t.Fatalf("seeding: %v", err)
	}

	// Directory with vertex 1 rebound to a different keypair.
	evil, err := NewSigner(1, detRand(77))
	if err != nil {
		t.Fatal(err)
	}
	dir2 := Directory{}
	for v, pk := range dir {
		dir2[v] = pk
	}
	dir2[1] = evil.Public()
	if err := key.VerifyExtended(lock, d, 3, dir2, cache); err == nil {
		t.Fatal("cache entry leaked across directories: chain accepted under a directory it never verified against")
	}
	// The original context must still hit, untouched by the failed probe.
	before := cache.Stats().Hits
	if err := key.VerifyExtended(lock, d, 3, dir, cache); err != nil {
		t.Fatalf("original context broken: %v", err)
	}
	if cache.Stats().Hits != before+1 {
		t.Error("original context did not hit the cache")
	}
}

// TestCacheRotation exercises the two-generation bound: correctness must
// survive evictions (entries fall out, verification falls back to the
// full walk).
func TestCacheRotation(t *testing.T) {
	d, signers, dir := cacheBench(t)
	cache := NewVerifyCache(2) // tiny: rotates constantly
	for seed := int64(0); seed < 6; seed++ {
		secret, err := NewSecret(detRand(100 + seed))
		if err != nil {
			t.Fatal(err)
		}
		key := New(secret, signers[4])
		for i := 3; i >= 0; i-- {
			key = key.Extend(signers[i])
			if err := key.VerifyExtended(secret.Lock(), d, 4, dir, cache); err != nil {
				t.Fatalf("seed %d ext %d: %v", seed, i, err)
			}
		}
	}
	if st := cache.Stats(); st.Entries > 4 {
		t.Errorf("entries = %d, want bounded by 2 generations × max 2", st.Entries)
	}
}
