package hashkey

import (
	"fmt"
	"io"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Fixture is the standard verification micro-benchmark scenario, shared by
// BenchmarkHashkey and `swapbench -bench-json` so the committed trajectory
// numbers and the in-repo benchmarks measure the identical workload.
type Fixture struct {
	D       *digraph.Digraph
	Dir     Directory
	Lock    Lock
	Key     Hashkey // path length Hops, ending at leader vertex 0
	Signers []*Signer
}

// NewFixture builds a hops+2-vertex cycle digraph (arcs i -> i-1 plus a
// closing arc), one signer per vertex from r, and a hashkey extended to
// path length hops whose leader is vertex 0.
func NewFixture(hops int, r io.Reader) (*Fixture, error) {
	n := hops + 2
	d := digraph.New()
	for i := 0; i < n; i++ {
		d.AddVertex("")
	}
	for i := n - 1; i > 0; i-- {
		d.MustAddArc(digraph.Vertex(i), digraph.Vertex(i-1))
	}
	d.MustAddArc(0, digraph.Vertex(n-1))
	signers := make([]*Signer, n)
	for i := range signers {
		s, err := NewSigner(digraph.Vertex(i), r)
		if err != nil {
			return nil, fmt.Errorf("hashkey: fixture: %w", err)
		}
		signers[i] = s
	}
	secret, err := NewSecret(r)
	if err != nil {
		return nil, fmt.Errorf("hashkey: fixture: %w", err)
	}
	key := New(secret, signers[0])
	for i := 1; i <= hops; i++ {
		key = key.Extend(signers[i])
	}
	return &Fixture{
		D:       d,
		Dir:     NewDirectory(signers...),
		Lock:    secret.Lock(),
		Key:     key,
		Signers: signers,
	}, nil
}
