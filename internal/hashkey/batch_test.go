package hashkey

import (
	"errors"
	"strings"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// batchFixture builds n valid chains of varying length over one signer
// ring; chains share inner suffixes the way follower re-presentations do,
// so link dedup has something to collapse.
func batchFixture(t *testing.T, n int) (Directory, []*Signer, []BatchItem) {
	t.Helper()
	_, signers, dir := cacheBench(t)
	items := make([]BatchItem, 0, n)
	for i := 0; i < n; i++ {
		leader := 2 + i%3 // leaders 2..4: chains of 3..5 links
		secret, key := chainOfLen(t, signers, leader)
		items = append(items, BatchItem{Key: key, Lock: secret.Lock(), Leader: digraph.Vertex(leader)})
	}
	return dir, signers, items
}

func TestBatchAllValid(t *testing.T) {
	for _, workers := range []int{1, 4} {
		dir, _, items := batchFixture(t, 6)
		cache := NewVerifyCache(0)
		b := NewBatch(dir, workers)
		for _, it := range items {
			b.Add(it.Key, it.Lock, it.Leader)
		}
		if got := b.Settle(cache); got != 0 {
			t.Fatalf("workers=%d: Settle failures = %d, want 0", workers, got)
		}
		for i, it := range b.Items() {
			if it.Err != nil {
				t.Fatalf("workers=%d: item %d: %v", workers, i, it.Err)
			}
		}
		// Every settled chain must have been seeded: a second settle of the
		// same chains answers entirely from the cache.
		before := cache.Stats()
		b2 := NewBatch(dir, workers)
		for _, it := range items {
			b2.Add(it.Key, it.Lock, it.Leader)
		}
		if got := b2.Settle(cache); got != 0 {
			t.Fatalf("workers=%d: re-Settle failures = %d, want 0", workers, got)
		}
		after := cache.Stats()
		if hits := after.Hits - before.Hits; hits != uint64(len(items)) {
			t.Fatalf("workers=%d: re-settle hits = %d, want %d", workers, hits, len(items))
		}
		if after.Misses != before.Misses || after.Fastpath != before.Fastpath {
			t.Fatalf("workers=%d: re-settle did signature work: before %+v after %+v", workers, before, after)
		}
	}
}

// TestBatchCorruptSignatureIsolated is the batch-verify fallback contract:
// one corrupt signature inside a batch is attributed to the exact link and
// vertex, every other batch member still verifies, and the cache is not
// poisoned by the corrupt chain.
func TestBatchCorruptSignatureIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		dir, signers, items := batchFixture(t, 5)
		cache := NewVerifyCache(0)

		// Corrupt exactly link 1 of item 2's chain: vertex 1 signs garbage
		// instead of the inner signature, and vertex 0 (honestly) wraps the
		// garbage — so the outer link verifies and the middle one is the
		// first invalid link, as in a real mid-path forgery.
		bad := items[2].Key.Clone()
		bad.Sigs[1] = signers[1].Sign([]byte("forged middle link"))
		bad.Sigs[0] = signers[0].Sign(bad.Sigs[1])
		items[2].Key = bad

		b := NewBatch(dir, workers)
		for _, it := range items {
			b.Add(it.Key, it.Lock, it.Leader)
		}
		if got := b.Settle(cache); got != 1 {
			t.Fatalf("workers=%d: Settle failures = %d, want 1", workers, got)
		}
		for i, it := range b.Items() {
			if i == 2 {
				if !errors.Is(it.Err, ErrBadSignature) {
					t.Fatalf("workers=%d: corrupt item error = %v, want ErrBadSignature", workers, it.Err)
				}
				if !strings.Contains(it.Err.Error(), "link 1 (vertex 1)") {
					t.Fatalf("workers=%d: corrupt item error %q does not attribute link 1 (vertex 1)", workers, it.Err)
				}
				continue
			}
			if it.Err != nil {
				t.Fatalf("workers=%d: innocent item %d failed: %v", workers, i, it.Err)
			}
		}

		// Not poisoned: the corrupt chain still fails through the cached
		// verifier, and so does a batch retry.
		if err := bad.VerifyCryptoExtended(items[2].Lock, items[2].Leader, dir, cache); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("workers=%d: corrupt chain accepted after batch: %v", workers, err)
		}
		b2 := NewBatch(dir, workers)
		b2.Add(bad, items[2].Lock, items[2].Leader)
		if got := b2.Settle(cache); got != 1 {
			t.Fatalf("workers=%d: corrupt chain accepted on batch retry", workers)
		}
	}
}

// TestBatchAgreesWithSingleVerify pins the fallback error semantics: for
// every corruption class, the batch item error matches what a lone
// VerifyCrypto returns.
func TestBatchAgreesWithSingleVerify(t *testing.T) {
	dir, signers, items := batchFixture(t, 1)
	base, lock, leader := items[0].Key, items[0].Lock, items[0].Leader

	corrupt := map[string]func() (Hashkey, Lock, digraph.Vertex){
		"valid":        func() (Hashkey, Lock, digraph.Vertex) { return base, lock, leader },
		"bad-sig":      func() (Hashkey, Lock, digraph.Vertex) { k := base.Clone(); k.Sigs[0][1] ^= 1; return k, lock, leader },
		"wrong-secret": func() (Hashkey, Lock, digraph.Vertex) { k := base.Clone(); k.Secret[0] ^= 1; return k, lock, leader },
		"wrong-leader": func() (Hashkey, Lock, digraph.Vertex) { return base, lock, leader - 1 },
		"chain-length": func() (Hashkey, Lock, digraph.Vertex) { k := base.Clone(); k.Sigs = k.Sigs[1:]; return k, lock, leader },
		"unknown-signer": func() (Hashkey, Lock, digraph.Vertex) {
			k := base.Clone()
			k.Path = k.Path.Clone()
			k.Path[0] = 99
			return k, lock, leader
		},
	}
	_ = signers
	for name, mk := range corrupt {
		key, l, ld := mk()
		single := key.VerifyCrypto(l, ld, dir)
		b := NewBatch(dir, 2)
		b.Add(key, l, ld)
		b.Settle(nil)
		batch := b.Items()[0].Err
		if (single == nil) != (batch == nil) {
			t.Fatalf("%s: single=%v batch=%v", name, single, batch)
		}
		if single != nil && batch.Error() != single.Error() {
			t.Fatalf("%s: error mismatch: single %q, batch %q", name, single, batch)
		}
	}
}

// TestBatchNilCache settles without a cache: pure verification, dedup
// still applies, outcomes unchanged.
func TestBatchNilCache(t *testing.T) {
	dir, _, items := batchFixture(t, 4)
	b := NewBatch(dir, 4)
	for _, it := range items {
		b.Add(it.Key, it.Lock, it.Leader)
	}
	if got := b.Settle(nil); got != 0 {
		t.Fatalf("Settle(nil) failures = %d, want 0", got)
	}
}

// TestVerifyCacheBatchWorkers pins that the miss path agrees with the
// serial walk when links fan out across workers.
func TestVerifyCacheBatchWorkers(t *testing.T) {
	dir, _, items := batchFixture(t, 1)
	key, lock, leader := items[0].Key, items[0].Lock, items[0].Leader

	cache := NewVerifyCache(0)
	cache.SetBatchWorkers(4)
	if got := cache.BatchWorkers(); got != 4 {
		t.Fatalf("BatchWorkers = %d, want 4", got)
	}
	if err := key.VerifyCryptoExtended(lock, leader, dir, cache); err != nil {
		t.Fatalf("parallel miss walk rejected a valid chain: %v", err)
	}
	bad := key.Clone()
	bad.Sigs[2][0] ^= 1
	err := bad.VerifyCryptoExtended(lock, leader, dir, NewVerifyCache(0))
	werr := func() error {
		c := NewVerifyCache(0)
		c.SetBatchWorkers(4)
		return bad.VerifyCryptoExtended(lock, leader, dir, c)
	}()
	if !errors.Is(werr, ErrBadSignature) || err.Error() != werr.Error() {
		t.Fatalf("parallel miss walk error %v, serial %v", werr, err)
	}
}
