package hashkey

import (
	"crypto/ed25519"
	"fmt"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Batch collects pending hashkey-chain verifications and settles them in
// one pass. Batching wins twice over verifying each chain alone:
//
//   - Link dedup. Chains in one batch overlap heavily in practice — every
//     follower of a lock re-presents the same inner chain under one new
//     outer link — and identical (public key, message, signature) links
//     are verified once for the whole batch instead of once per chain.
//   - Pool parallelism. The deduped links are independent ed25519
//     verifications, so a batch spreads them across a worker pool. On a
//     single-core host this is neutral (see DESIGN.md §10); with cores to
//     spare it divides the batch's critical path.
//
// Failure isolation is the contract that makes batching safe: a batch
// that contains an invalid chain settles by falling back to individual
// verification for exactly the affected chains, so the error names the
// same link and vertex a lone VerifyCrypto would have named, the other
// chains in the batch still verify, and only fully-valid chains are
// seeded into the cache — a corrupt batch member can never poison it.
type Batch struct {
	dir     Directory
	workers int
	items   []BatchItem
}

// BatchItem is one pending verification. Err holds the outcome after
// Settle: nil if the chain verified.
type BatchItem struct {
	Key    Hashkey
	Lock   Lock
	Leader digraph.Vertex
	Err    error
}

// NewBatch returns an empty batch verifying against dir, settling on up
// to workers goroutines (workers <= 1 settles serially).
func NewBatch(dir Directory, workers int) *Batch {
	if workers < 1 {
		workers = 1
	}
	return &Batch{dir: dir, workers: workers}
}

// Add queues one chain verification and returns its item index.
func (b *Batch) Add(key Hashkey, lock Lock, leader digraph.Vertex) int {
	b.items = append(b.items, BatchItem{Key: key, Lock: lock, Leader: leader})
	return len(b.items) - 1
}

// Len reports the number of queued items.
func (b *Batch) Len() int { return len(b.items) }

// Items exposes the batch entries; after Settle each carries its outcome.
func (b *Batch) Items() []BatchItem { return b.items }

// link is one pending ed25519 verification, deduped across the batch.
type link struct {
	pub ed25519.PublicKey
	msg []byte
	sig []byte
	ok  bool
}

// chainLinks appends the (pub, msg, sig) triples of h's signature chain
// outermost-first: link i signs Sigs[i+1], the innermost signs the secret.
func chainLinks(h *Hashkey, pubs []ed25519.PublicKey, from, to int) []link {
	out := make([]link, 0, to-from)
	k := len(h.Path) - 1
	for i := from; i < to; i++ {
		msg := h.Secret[:]
		if i < k {
			msg = h.Sigs[i+1]
		}
		out = append(out, link{pub: pubs[i], msg: msg, sig: h.Sigs[i]})
	}
	return out
}

// linkKey is the dedup identity of a link. Public key (32 bytes) and
// signature (64 bytes) are fixed-size, so concatenation is unambiguous.
func linkKey(l link) string {
	buf := make([]byte, 0, len(l.pub)+len(l.sig)+len(l.msg))
	buf = append(buf, l.pub...)
	buf = append(buf, l.sig...)
	buf = append(buf, l.msg...)
	return string(buf)
}

// verifyLinks checks every link, setting ok per link, fanning out across
// up to workers goroutines when the batch is large enough to amortize the
// goroutine cost. It reports whether all links verified.
func verifyLinks(links []link, workers int) bool {
	const minPerWorker = 2
	if n := len(links) / minPerWorker; workers > n {
		workers = n
	}
	if workers <= 1 {
		allOK := true
		for i := range links {
			links[i].ok = ed25519.Verify(links[i].pub, links[i].msg, links[i].sig)
			allOK = allOK && links[i].ok
		}
		return allOK
	}
	var wg sync.WaitGroup
	chunk := (len(links) + workers - 1) / workers
	for lo := 0; lo < len(links); lo += chunk {
		hi := lo + chunk
		if hi > len(links) {
			hi = len(links)
		}
		wg.Add(1)
		go func(ls []link) {
			defer wg.Done()
			for i := range ls {
				ls[i].ok = ed25519.Verify(ls[i].pub, ls[i].msg, ls[i].sig)
			}
		}(links[lo:hi])
	}
	wg.Wait()
	for i := range links {
		if !links[i].ok {
			return false
		}
	}
	return true
}

// Settle verifies every queued chain and returns the number of failures;
// per-item outcomes land in Items. The cache (nil allowed) short-circuits
// chains — or chain suffixes — verified before, and is seeded with every
// chain (and computed suffix) that verified, exactly as the single-chain
// VerifyCryptoExtended would.
func (b *Batch) Settle(cache *VerifyCache) int {
	type pending struct {
		idx   int // index into b.items
		pubs  []ed25519.PublicKey
		digs  [][32]byte // full digest then suffix digests down to the cached one
		fresh int        // links 0..fresh-1 need verification
		slots []int      // indices into uniq for this item's fresh links
	}
	var (
		pend     []pending
		uniq     []link
		uniqIdx  = map[string]int{}
		failures = 0
	)

	for i := range b.items {
		it := &b.items[i]
		h := &it.Key
		if it.Err = h.checkStructure(it.Lock, it.Leader); it.Err != nil {
			failures++
			continue
		}
		pubs, err := resolvePubs(h.Path, b.dir)
		if err != nil {
			it.Err = err
			failures++
			continue
		}
		p := pending{idx: i, pubs: pubs, fresh: len(h.Path)}
		if cache != nil {
			full := chainDigest(h.Secret, it.Lock, h.Path, h.Sigs, pubs)
			if cache.contains(full) {
				cache.noteHit()
				continue
			}
			p.digs = append(p.digs, full)
			// Walk inward until a cached suffix bounds the fresh prefix.
			for j := 1; j < len(h.Path); j++ {
				d := chainDigest(h.Secret, it.Lock, h.Path[j:], h.Sigs[j:], pubs[j:])
				if cache.contains(d) {
					p.fresh = j
					break
				}
				p.digs = append(p.digs, d)
			}
		}
		for _, l := range chainLinks(h, pubs, 0, p.fresh) {
			k := linkKey(l)
			slot, ok := uniqIdx[k]
			if !ok {
				slot = len(uniq)
				uniqIdx[k] = slot
				uniq = append(uniq, l)
			}
			p.slots = append(p.slots, slot)
		}
		pend = append(pend, p)
	}

	verifyLinks(uniq, b.workers)

	for _, p := range pend {
		it := &b.items[p.idx]
		ok := true
		for _, s := range p.slots {
			ok = ok && uniq[s].ok
		}
		if !ok {
			// Fallback isolation: re-walk just this chain individually so
			// the error attributes the exact bad link and vertex. Nothing
			// is cached for it.
			it.Err = it.Key.VerifyCrypto(it.Lock, it.Leader, b.dir)
			failures++
			if cache != nil {
				cache.noteMiss()
			}
			continue
		}
		if cache != nil {
			switch len(p.slots) {
			case 1:
				cache.noteFastpath()
			default:
				cache.noteMiss()
			}
			for _, d := range p.digs {
				cache.add(d)
			}
		}
	}
	return failures
}

// resolvePubs maps every path vertex to its directory key.
func resolvePubs(path digraph.Path, dir Directory) ([]ed25519.PublicKey, error) {
	pubs := make([]ed25519.PublicKey, len(path))
	for i, v := range path {
		pub, ok := dir[v]
		if !ok {
			return nil, unknownSigner(v)
		}
		pubs[i] = pub
	}
	return pubs, nil
}

func unknownSigner(v digraph.Vertex) error {
	return fmt.Errorf("%w: vertex %d", ErrUnknownSigner, v)
}
