package hashkey

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// detRand returns a deterministic randomness source for tests.
func detRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// testBench builds the Figure-1 three-cycle with one signer per vertex.
func testBench(t *testing.T) (*digraph.Digraph, []*Signer, Directory) {
	t.Helper()
	d := digraph.New()
	a := d.AddVertex("Alice")
	b := d.AddVertex("Bob")
	c := d.AddVertex("Carol")
	d.MustAddArc(a, b)
	d.MustAddArc(b, c)
	d.MustAddArc(c, a)
	r := detRand(1)
	signers := make([]*Signer, 3)
	for i := range signers {
		s, err := NewSigner(digraph.Vertex(i), r)
		if err != nil {
			t.Fatalf("NewSigner: %v", err)
		}
		signers[i] = s
	}
	return d, signers, NewDirectory(signers...)
}

func TestSecretLock(t *testing.T) {
	s, err := NewSecret(detRand(7))
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	if !s.Matches(s.Lock()) {
		t.Error("secret should match its own lock")
	}
	other, _ := NewSecret(detRand(8))
	if s.Matches(other.Lock()) {
		t.Error("secret should not match another secret's lock")
	}
}

func TestSecretDeterministicFromSeed(t *testing.T) {
	a, _ := NewSecret(detRand(3))
	b, _ := NewSecret(detRand(3))
	if a != b {
		t.Error("same seed should give the same secret")
	}
	c, _ := NewSecret(detRand(4))
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestSecretStringRedacts(t *testing.T) {
	s, _ := NewSecret(detRand(5))
	str := s.String()
	if len(str) > 20 {
		t.Errorf("Secret.String() = %q leaks too much", str)
	}
}

func TestLeaderHashkey(t *testing.T) {
	d, signers, dir := testBench(t)
	secret, _ := NewSecret(detRand(10))
	hk := New(secret, signers[0])

	if hk.PathLen() != 0 {
		t.Errorf("leader hashkey PathLen = %d, want 0", hk.PathLen())
	}
	if hk.Leader() != 0 || hk.Presenter() != 0 {
		t.Errorf("leader/presenter = %d/%d, want 0/0", hk.Leader(), hk.Presenter())
	}
	if err := hk.Verify(secret.Lock(), d, 0, dir); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestExtendAndVerify(t *testing.T) {
	d, signers, dir := testBench(t)
	secret, _ := NewSecret(detRand(11))
	lock := secret.Lock()

	// Alice (leader, vertex 0) -> extended by Carol (2) -> by Bob (1):
	// Bob presents path B > C > A, as in Figure 2's propagation.
	hk := New(secret, signers[0]).Extend(signers[2]).Extend(signers[1])
	if hk.PathLen() != 2 {
		t.Fatalf("PathLen = %d, want 2", hk.PathLen())
	}
	if got := hk.Path.String(); got != "1>2>0" {
		t.Fatalf("path = %s, want 1>2>0", got)
	}
	if err := hk.Verify(lock, d, 0, dir); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestExtendDoesNotMutate(t *testing.T) {
	_, signers, _ := testBench(t)
	secret, _ := NewSecret(detRand(12))
	base := New(secret, signers[0])
	ext := base.Extend(signers[2])
	if base.PathLen() != 0 || len(base.Sigs) != 1 {
		t.Error("Extend mutated the receiver")
	}
	if ext.PathLen() != 1 || len(ext.Sigs) != 2 {
		t.Error("Extend result malformed")
	}
}

func TestVerifyRejections(t *testing.T) {
	d, signers, dir := testBench(t)
	secret, _ := NewSecret(detRand(13))
	lock := secret.Lock()
	valid := New(secret, signers[0]).Extend(signers[2])

	tests := []struct {
		name    string
		mutate  func(Hashkey) Hashkey
		lock    Lock
		leader  digraph.Vertex
		wantErr error
	}{
		{
			name:    "wrong secret",
			mutate:  func(h Hashkey) Hashkey { h.Secret[0] ^= 1; return h },
			lock:    lock,
			leader:  0,
			wantErr: ErrWrongSecret,
		},
		{
			name:    "wrong lock",
			mutate:  func(h Hashkey) Hashkey { return h },
			lock:    Lock{1, 2, 3},
			leader:  0,
			wantErr: ErrWrongSecret,
		},
		{
			name:    "wrong leader",
			mutate:  func(h Hashkey) Hashkey { return h },
			lock:    lock,
			leader:  1,
			wantErr: ErrWrongLeader,
		},
		{
			name: "tampered signature",
			mutate: func(h Hashkey) Hashkey {
				h = h.Clone()
				h.Sigs[0][0] ^= 1
				return h
			},
			lock:    lock,
			leader:  0,
			wantErr: ErrBadSignature,
		},
		{
			name: "tampered inner signature",
			mutate: func(h Hashkey) Hashkey {
				h = h.Clone()
				h.Sigs[1][5] ^= 1
				return h
			},
			lock:    lock,
			leader:  0,
			wantErr: ErrBadSignature,
		},
		{
			name: "truncated chain",
			mutate: func(h Hashkey) Hashkey {
				h = h.Clone()
				h.Sigs = h.Sigs[:1]
				return h
			},
			lock:    lock,
			leader:  0,
			wantErr: ErrChainLength,
		},
		{
			name: "empty path",
			mutate: func(h Hashkey) Hashkey {
				h = h.Clone()
				h.Path = nil
				return h
			},
			lock:    lock,
			leader:  0,
			wantErr: ErrEmptyPath,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			hk := tt.mutate(valid)
			err := hk.Verify(tt.lock, d, tt.leader, dir)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Verify err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestVerifyRejectsNonPath(t *testing.T) {
	d, signers, dir := testBench(t)
	secret, _ := NewSecret(detRand(14))
	// Carol extends Alice's hashkey giving path C > A — but then Bob is
	// skipped: a forged path B > A (no arc B->A in the 3-cycle... there is
	// B->C only). Build a chain with correct signatures but invalid path.
	hk := New(secret, signers[0])
	forged := Hashkey{
		Secret: hk.Secret,
		Path:   digraph.Path{1, 0}, // B > A: no arc B->A in D
		Sigs:   [][]byte{signers[1].Sign(hk.Sigs[0]), hk.Sigs[0]},
	}
	if err := forged.Verify(secret.Lock(), d, 0, dir); err == nil {
		t.Error("Verify should reject a non-path")
	}
}

func TestVerifyRejectsUnknownSigner(t *testing.T) {
	d, signers, dir := testBench(t)
	secret, _ := NewSecret(detRand(15))
	hk := New(secret, signers[0]).Extend(signers[2])
	delete(dir, 2)
	if err := hk.Verify(secret.Lock(), d, 0, dir); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("Verify err = %v, want ErrUnknownSigner", err)
	}
}

func TestVerifyRejectsSignerSubstitution(t *testing.T) {
	// A party cannot impersonate another on the path: Bob extends, but the
	// path claims Carol did.
	d, signers, dir := testBench(t)
	secret, _ := NewSecret(detRand(16))
	base := New(secret, signers[0])
	hk := base.Extend(signers[1]) // Bob signs
	hk.Path[0] = 2                // but path says Carol
	if err := hk.Verify(secret.Lock(), d, 0, dir); !errors.Is(err, ErrBadSignature) {
		t.Errorf("Verify err = %v, want ErrBadSignature", err)
	}
}

func TestWireSizeGrowsWithPath(t *testing.T) {
	_, signers, _ := testBench(t)
	secret, _ := NewSecret(detRand(17))
	hk := New(secret, signers[0])
	size0 := hk.WireSize()
	hk = hk.Extend(signers[2])
	size1 := hk.WireSize()
	if size1 <= size0 {
		t.Errorf("WireSize did not grow: %d -> %d", size0, size1)
	}
	if want := SecretSize + 4 + SigSize; size0 != want {
		t.Errorf("degenerate WireSize = %d, want %d", size0, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	_, signers, _ := testBench(t)
	secret, _ := NewSecret(detRand(18))
	hk := New(secret, signers[0]).Extend(signers[2])
	c := hk.Clone()
	c.Sigs[0][0] ^= 1
	c.Path[0] = 9
	if hk.Sigs[0][0] == c.Sigs[0][0] {
		t.Error("Clone shares signature storage")
	}
	if hk.Path[0] == 9 {
		t.Error("Clone shares path storage")
	}
}

// TestChainPropertyRandomPaths verifies that any chain built by successive
// Extend calls along a real path verifies, for random path lengths.
func TestChainPropertyRandomPaths(t *testing.T) {
	f := func(seed int64, pathLen uint8) bool {
		n := int(pathLen%8) + 2
		r := detRand(seed)
		// Build a directed line n-1 -> n-2 -> ... -> 0 plus closing arc to
		// make vertex 0 the "leader" reachable from all.
		d := digraph.New()
		for i := 0; i < n; i++ {
			d.AddVertex("")
		}
		for i := n - 1; i > 0; i-- {
			d.MustAddArc(digraph.Vertex(i), digraph.Vertex(i-1))
		}
		d.MustAddArc(digraph.Vertex(0), digraph.Vertex(n-1)) // close the cycle
		signers := make([]*Signer, n)
		for i := range signers {
			s, err := NewSigner(digraph.Vertex(i), r)
			if err != nil {
				return false
			}
			signers[i] = s
		}
		dir := NewDirectory(signers...)
		secret, err := NewSecret(r)
		if err != nil {
			return false
		}
		hk := New(secret, signers[0])
		for i := 1; i < n; i++ {
			hk = hk.Extend(signers[i])
			if hk.PathLen() != i {
				return false
			}
		}
		return hk.Verify(secret.Lock(), d, 0, dir) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
