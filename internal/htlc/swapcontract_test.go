package htlc

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// bench is a ready-made Figure-1 three-cycle with Alice as the single
// leader, Δ = 10, start = 100, diam = 2.
type bench struct {
	d       *digraph.Digraph
	signers []*hashkey.Signer
	dir     hashkey.Directory
	secret  hashkey.Secret
	lock    hashkey.Lock
}

const (
	benchStart vtime.Ticks    = 100
	benchDelta vtime.Duration = 10
	benchDiam                 = 2
)

func newBench(t *testing.T) *bench {
	t.Helper()
	d := digraph.New()
	a := d.AddVertex("Alice")
	b := d.AddVertex("Bob")
	c := d.AddVertex("Carol")
	d.MustAddArc(a, b) // arc 0: alt-coin
	d.MustAddArc(b, c) // arc 1: bitcoin
	d.MustAddArc(c, a) // arc 2: title
	r := rand.New(rand.NewSource(9))
	signers := make([]*hashkey.Signer, 3)
	for i := range signers {
		s, err := hashkey.NewSigner(digraph.Vertex(i), r)
		if err != nil {
			t.Fatalf("NewSigner: %v", err)
		}
		signers[i] = s
	}
	secret, err := hashkey.NewSecret(r)
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	return &bench{
		d:       d,
		signers: signers,
		dir:     hashkey.NewDirectory(signers...),
		secret:  secret,
		lock:    secret.Lock(),
	}
}

// arc0Params returns the contract params for arc 0 (Alice -> Bob), whose
// counterparty Bob has longest path B>C>A of length 2 to the leader.
func (b *bench) arc0Params() SwapParams {
	return SwapParams{
		ID:        "arc0@altcoin",
		ArcID:     0,
		Digraph:   b.d,
		Leaders:   []digraph.Vertex{0},
		Locks:     []hashkey.Lock{b.lock},
		Timelocks: []vtime.Ticks{benchStart.Add(vtime.Scale(benchDiam+2, benchDelta))}, // 140
		Party:     "alice",
		PartyV:    0,
		Counter:   "bob",
		CounterV:  1,
		Asset:     "altcoin",
		Start:     benchStart,
		Delta:     benchDelta,
		DiamBound: benchDiam,
		Directory: b.dir,
	}
}

// bobKey is Bob's full-path hashkey: leader Alice, extended by Carol, then
// Bob — path B>C>A, |p| = 2.
func (b *bench) bobKey() hashkey.Hashkey {
	return hashkey.New(b.secret, b.signers[0]).Extend(b.signers[2]).Extend(b.signers[1])
}

func call(method string, sender chain.PartyID, now vtime.Ticks, args any) chain.Call {
	return chain.Call{Method: method, Sender: sender, Now: now, Args: args}
}

func TestNewSwapValidation(t *testing.T) {
	b := newBench(t)
	good := b.arc0Params()
	if _, err := NewSwap(good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*SwapParams)
	}{
		{"nil digraph", func(p *SwapParams) { p.Digraph = nil }},
		{"no leaders", func(p *SwapParams) { p.Leaders = nil; p.Locks = nil; p.Timelocks = nil }},
		{"length mismatch", func(p *SwapParams) { p.Locks = append(p.Locks, hashkey.Lock{}) }},
		{"zero delta", func(p *SwapParams) { p.Delta = 0 }},
		{"arc endpoint mismatch", func(p *SwapParams) { p.PartyV, p.CounterV = 2, 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := b.arc0Params()
			tt.mutate(&p)
			if _, err := NewSwap(p); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestUnlockHappyPath(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	res, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{LockIndex: 0, Key: b.bobKey()}))
	if err != nil {
		t.Fatalf("unlock: %v", err)
	}
	ev, ok := res.Event.(UnlockedEvent)
	if !ok || ev.ArcID != 0 || ev.LockIndex != 0 {
		t.Errorf("event = %+v, want UnlockedEvent{arc 0, lock 0}", res.Event)
	}
	if !s.AllUnlocked() {
		t.Error("single lock should be fully unlocked")
	}
	if got := s.Unlocked(); !got[0] {
		t.Error("Unlocked()[0] should be true")
	}
	if s.UnlockKey(0).PathLen() != 2 {
		t.Error("UnlockKey should return the presented hashkey")
	}
}

func TestUnlockDeadlineIsPathDependent(t *testing.T) {
	b := newBench(t)

	// |p| = 2: valid through the inclusive deadline start + (2+2)Δ = 140.
	s, _ := NewSwap(b.arc0Params())
	if _, err := s.Invoke(call(MethodUnlock, "bob", 140, UnlockArgs{Key: b.bobKey()})); err != nil {
		t.Errorf("unlock at the inclusive deadline 140 with |p|=2: %v", err)
	}
	s2, _ := NewSwap(b.arc0Params())
	if _, err := s2.Invoke(call(MethodUnlock, "bob", 141, UnlockArgs{Key: b.bobKey()})); !errors.Is(err, ErrHashkeyExpired) {
		t.Errorf("unlock at 141 err = %v, want ErrHashkeyExpired", err)
	}
}

func TestUnlockRejections(t *testing.T) {
	b := newBench(t)
	key := b.bobKey()
	tests := []struct {
		name string
		call chain.Call
		want error
	}{
		{"wrong sender", call(MethodUnlock, "mallory", 110, UnlockArgs{Key: key}), ErrNotCounterparty},
		{"party cannot unlock", call(MethodUnlock, "alice", 110, UnlockArgs{Key: key}), ErrNotCounterparty},
		{"bad args type", call(MethodUnlock, "bob", 110, "zzz"), ErrBadArgs},
		{"lock index", call(MethodUnlock, "bob", 110, UnlockArgs{LockIndex: 5, Key: key}), ErrLockIndex},
		{"negative index", call(MethodUnlock, "bob", 110, UnlockArgs{LockIndex: -1, Key: key}), ErrLockIndex},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, _ := NewSwap(b.arc0Params())
			if _, err := s.Invoke(tt.call); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUnlockRejectsWrongPresenter(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	// Carol's hashkey (path C>A) presented on Bob's arc: valid chain, but
	// the path does not start at the counterparty.
	carolKey := hashkey.New(b.secret, b.signers[0]).Extend(b.signers[2])
	_, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: carolKey}))
	if !errors.Is(err, ErrWrongPresenter) {
		t.Errorf("err = %v, want ErrWrongPresenter", err)
	}
}

func TestUnlockRejectsTamperedKey(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	key := b.bobKey()
	key.Sigs[1][0] ^= 1
	if _, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: key})); err == nil {
		t.Error("tampered signature chain should be rejected")
	}
	// Wrong secret.
	other, _ := hashkey.NewSecret(rand.New(rand.NewSource(77)))
	badKey := hashkey.New(other, b.signers[0]).Extend(b.signers[2]).Extend(b.signers[1])
	if _, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: badKey})); err == nil {
		t.Error("wrong secret should be rejected")
	}
}

func TestUnlockTwiceRejected(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	if _, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: b.bobKey()})); err != nil {
		t.Fatalf("first unlock: %v", err)
	}
	if _, err := s.Invoke(call(MethodUnlock, "bob", 111, UnlockArgs{Key: b.bobKey()})); !errors.Is(err, ErrAlreadyUnlocked) {
		t.Errorf("second unlock err = %v, want ErrAlreadyUnlocked", err)
	}
}

func TestClaim(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())

	if _, err := s.Invoke(call(MethodClaim, "bob", 110, nil)); !errors.Is(err, ErrLocksOutstanding) {
		t.Errorf("claim before unlock err = %v, want ErrLocksOutstanding", err)
	}
	if _, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: b.bobKey()})); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	if _, err := s.Invoke(call(MethodClaim, "alice", 111, nil)); !errors.Is(err, ErrNotCounterparty) {
		t.Errorf("claim by party err = %v, want ErrNotCounterparty", err)
	}
	res, err := s.Invoke(call(MethodClaim, "bob", 111, nil))
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if res.Transfer == nil || *res.Transfer != chain.ByParty("bob") {
		t.Errorf("claim transfer = %v, want bob", res.Transfer)
	}
	// Claim has no deadline: far-future claim also works on a fresh copy.
	s2, _ := NewSwap(b.arc0Params())
	s2.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: b.bobKey()}))
	if _, err := s2.Invoke(call(MethodClaim, "bob", 10_000, nil)); err != nil {
		t.Errorf("late claim: %v", err)
	}
}

func TestRefund(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params()) // timelock 140

	if _, err := s.Invoke(call(MethodRefund, "bob", 150, nil)); !errors.Is(err, ErrNotParty) {
		t.Errorf("refund by counterparty err = %v, want ErrNotParty", err)
	}
	if _, err := s.Invoke(call(MethodRefund, "alice", 140, nil)); !errors.Is(err, ErrNotRefundable) {
		t.Errorf("refund at the inclusive unlock deadline err = %v, want ErrNotRefundable", err)
	}
	res, err := s.Invoke(call(MethodRefund, "alice", 141, nil))
	if err != nil {
		t.Fatalf("refund just past the deadline: %v", err)
	}
	if res.Transfer == nil || *res.Transfer != chain.ByParty("alice") {
		t.Errorf("refund transfer = %v, want alice", res.Transfer)
	}
}

func TestRefundBlockedByFullUnlock(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	if _, err := s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: b.bobKey()})); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	// All locks open: never refundable, even long after the timelock.
	if _, err := s.Invoke(call(MethodRefund, "alice", 10_000, nil)); !errors.Is(err, ErrNotRefundable) {
		t.Errorf("refund after full unlock err = %v, want ErrNotRefundable", err)
	}
	if s.Refundable(10_000) {
		t.Error("Refundable should be false once all locks are open")
	}
}

func TestUnknownMethod(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	if _, err := s.Invoke(call("steal", "bob", 110, nil)); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("err = %v, want ErrUnknownMethod", err)
	}
}

func TestStorageSizeDominatedByDigraph(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	if s.StorageSize() <= b.d.EncodedSize() {
		t.Errorf("StorageSize %d should exceed the digraph encoding %d",
			s.StorageSize(), b.d.EncodedSize())
	}
}

func TestParamsReturnsCopies(t *testing.T) {
	b := newBench(t)
	s, _ := NewSwap(b.arc0Params())
	p := s.Params()
	p.Locks[0] = hashkey.Lock{9}
	p.Timelocks[0] = 1
	p.Leaders[0] = 9
	p2 := s.Params()
	if p2.Locks[0] == (hashkey.Lock{9}) || p2.Timelocks[0] == 1 || p2.Leaders[0] == 9 {
		t.Error("Params should return copies of its slices")
	}
}

// TestLifecycleOnChain runs the contract through a real chain: publish
// escrows, unlock+claim transfers to Bob.
func TestLifecycleOnChain(t *testing.T) {
	b := newBench(t)
	now := vtime.Ticks(105)
	clock := vtime.ClockFunc(func() vtime.Ticks { return now })
	ch := chain.New("altcoin", clock)
	if err := ch.RegisterAsset(chain.Asset{ID: "altcoin", Amount: 100}, "alice"); err != nil {
		t.Fatal(err)
	}
	s, _ := NewSwap(b.arc0Params())
	if err := ch.PublishContract("alice", s); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if owner, _ := ch.OwnerOf("altcoin"); owner != chain.ByEscrow("arc0@altcoin") {
		t.Fatalf("asset not escrowed: %v", owner)
	}
	args := UnlockArgs{Key: b.bobKey()}
	if err := ch.Invoke("bob", "arc0@altcoin", MethodUnlock, args, args.WireSize()); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	now = 112
	if err := ch.Invoke("bob", "arc0@altcoin", MethodClaim, nil, 0); err != nil {
		t.Fatalf("claim: %v", err)
	}
	if owner, _ := ch.OwnerOf("altcoin"); owner != chain.ByParty("bob") {
		t.Errorf("owner = %v, want bob", owner)
	}
	if !ch.VerifyLedger() {
		t.Error("ledger should verify")
	}
}

// TestMultiLockContract exercises a two-leader hashlock vector: both locks
// must open before claim.
func TestMultiLockContract(t *testing.T) {
	// Two-leader triangle: A and B lead; contract on arc A->C... use the
	// complete digraph on {A, B, C} with arcs both ways.
	d := digraph.New()
	a := d.AddVertex("A")
	bv := d.AddVertex("B")
	c := d.AddVertex("C")
	d.MustAddArc(a, bv)
	d.MustAddArc(bv, a)
	d.MustAddArc(bv, c)
	d.MustAddArc(c, bv)
	d.MustAddArc(c, a)
	arcAC := d.MustAddArc(a, c)

	r := rand.New(rand.NewSource(13))
	signers := make([]*hashkey.Signer, 3)
	for i := range signers {
		s, err := hashkey.NewSigner(digraph.Vertex(i), r)
		if err != nil {
			t.Fatal(err)
		}
		signers[i] = s
	}
	dir := hashkey.NewDirectory(signers...)
	sa, _ := hashkey.NewSecret(r)
	sb, _ := hashkey.NewSecret(r)

	diam := 2
	start := vtime.Ticks(100)
	delta := vtime.Duration(10)
	deadline := func(maxPath int) vtime.Ticks { return start.Add(vtime.Scale(diam+maxPath, delta)) }
	s, err := NewSwap(SwapParams{
		ID:      "ac",
		ArcID:   arcAC,
		Digraph: d,
		Leaders: []digraph.Vertex{a, bv},
		Locks:   []hashkey.Lock{sa.Lock(), sb.Lock()},
		// Longest paths from counterparty C: C>B>A (2) to leader A,
		// C>A... wait for leader B: C>A>B (2).
		Timelocks: []vtime.Ticks{deadline(2), deadline(2)},
		Party:     "A", PartyV: a,
		Counter: "C", CounterV: c,
		Asset: "x", Start: start, Delta: delta, DiamBound: diam,
		Directory: dir,
	})
	if err != nil {
		t.Fatalf("NewSwap: %v", err)
	}

	// C unlocks lock 0 with path C>A (leader A).
	keyA := hashkey.New(sa, signers[0]).Extend(signers[2])
	if _, err := s.Invoke(call(MethodUnlock, "C", 110, UnlockArgs{LockIndex: 0, Key: keyA})); err != nil {
		t.Fatalf("unlock A-lock: %v", err)
	}
	if s.AllUnlocked() {
		t.Fatal("one of two locks open should not be AllUnlocked")
	}
	if _, err := s.Invoke(call(MethodClaim, "C", 111, nil)); !errors.Is(err, ErrLocksOutstanding) {
		t.Fatalf("claim with one lock open err = %v, want ErrLocksOutstanding", err)
	}
	// C unlocks lock 1 with path C>B (leader B).
	keyB := hashkey.New(sb, signers[1]).Extend(signers[2])
	if _, err := s.Invoke(call(MethodUnlock, "C", 112, UnlockArgs{LockIndex: 1, Key: keyB})); err != nil {
		t.Fatalf("unlock B-lock: %v", err)
	}
	if _, err := s.Invoke(call(MethodClaim, "C", 113, nil)); err != nil {
		t.Fatalf("claim: %v", err)
	}
	// Partial unlock + expiry of the other lock means refundable on a
	// fresh contract.
	s2, _ := NewSwap(SwapParams{
		ID: "ac2", ArcID: arcAC, Digraph: d,
		Leaders:   []digraph.Vertex{a, bv},
		Locks:     []hashkey.Lock{sa.Lock(), sb.Lock()},
		Timelocks: []vtime.Ticks{deadline(2), deadline(2)},
		Party:     "A", PartyV: a, Counter: "C", CounterV: c,
		Asset: "x", Start: start, Delta: delta, DiamBound: diam,
		Directory: dir,
	})
	if _, err := s2.Invoke(call(MethodUnlock, "C", 110, UnlockArgs{LockIndex: 0, Key: keyA})); err != nil {
		t.Fatal(err)
	}
	if !s2.Refundable(deadline(2).Add(1)) {
		t.Error("lock 1 still closed past its deadline: contract should be refundable")
	}
}
