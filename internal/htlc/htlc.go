package htlc

import (
	"errors"
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// HTLCParams configures a classic hashed-timelock contract: one hashlock,
// one absolute timelock. The single-leader protocol of Section 4.6 uses
// these with the staircase deadlines (diam(D) + D(v, leader) + 1)·Δ; the
// baseline protocols use them with their own (possibly broken) deadlines.
type HTLCParams struct {
	ID      chain.ContractID
	ArcID   int
	Lock    hashkey.Lock
	Timeout vtime.Ticks // absolute: redeem strictly before, refund at or after
	Party   chain.PartyID
	Counter chain.PartyID
	Asset   chain.AssetID
}

// RedeemArgs is the payload of a redeem call.
type RedeemArgs struct {
	Secret hashkey.Secret
}

// WireSize returns the bytes this call occupies on-chain.
func (a RedeemArgs) WireSize() int { return hashkey.SecretSize }

// RedeemedEvent is emitted when a classic HTLC is redeemed, revealing the
// secret to everyone watching the chain.
type RedeemedEvent struct {
	ArcID  int
	Secret hashkey.Secret
}

// HTLC is the classic two-method hashed timelock contract: redeem(secret)
// by the counterparty before the timeout transfers the asset and reveals
// the secret; refund() by the party at or after the timeout reclaims it.
type HTLC struct {
	p        HTLCParams
	redeemed bool
}

// Compile-time interface check.
var _ chain.Contract = (*HTLC)(nil)

// NewHTLC constructs a classic HTLC.
func NewHTLC(p HTLCParams) (*HTLC, error) {
	if p.Timeout <= 0 {
		return nil, errors.New("htlc: non-positive timeout")
	}
	return &HTLC{p: p}, nil
}

// ContractID implements chain.Contract.
func (h *HTLC) ContractID() chain.ContractID { return h.p.ID }

// Party implements chain.Contract.
func (h *HTLC) Party() chain.PartyID { return h.p.Party }

// AssetID implements chain.Contract.
func (h *HTLC) AssetID() chain.AssetID { return h.p.Asset }

// StorageSize implements chain.Contract.
func (h *HTLC) StorageSize() int {
	return len(h.p.ID) + len(h.p.Party) + len(h.p.Counter) + len(h.p.Asset) +
		len(hashkey.Lock{}) + 8
}

// Params returns the contract's public parameters.
func (h *HTLC) Params() HTLCParams { return h.p }

// ArcID returns the swap-digraph arc this contract settles.
func (h *HTLC) ArcID() int { return h.p.ArcID }

// Redeemed reports whether the secret has been presented.
func (h *HTLC) Redeemed() bool { return h.redeemed }

// Invoke implements chain.Contract.
func (h *HTLC) Invoke(call chain.Call) (chain.Result, error) {
	switch call.Method {
	case MethodRedeem:
		return h.invokeRedeem(call)
	case MethodRefund:
		return h.invokeRefund(call)
	default:
		return chain.Result{}, fmt.Errorf("%w: %q", ErrUnknownMethod, call.Method)
	}
}

func (h *HTLC) invokeRedeem(call chain.Call) (chain.Result, error) {
	if call.Sender != h.p.Counter {
		return chain.Result{}, fmt.Errorf("%w: sender %s", ErrNotCounterparty, call.Sender)
	}
	args, ok := call.Args.(RedeemArgs)
	if !ok {
		return chain.Result{}, fmt.Errorf("%w: redeem wants RedeemArgs", ErrBadArgs)
	}
	if !call.Now.Before(h.p.Timeout) {
		return chain.Result{}, fmt.Errorf("%w: now %d, timeout %d", ErrExpired, call.Now, h.p.Timeout)
	}
	if !args.Secret.Matches(h.p.Lock) {
		return chain.Result{}, ErrWrongSecret
	}
	h.redeemed = true
	to := chain.ByParty(h.p.Counter)
	return chain.Result{
		Transfer: &to,
		Note:     fmt.Sprintf("arc %d redeemed by %s", h.p.ArcID, h.p.Counter),
		Event:    RedeemedEvent{ArcID: h.p.ArcID, Secret: args.Secret},
	}, nil
}

func (h *HTLC) invokeRefund(call chain.Call) (chain.Result, error) {
	if call.Sender != h.p.Party {
		return chain.Result{}, fmt.Errorf("%w: sender %s", ErrNotParty, call.Sender)
	}
	if call.Now.Before(h.p.Timeout) {
		return chain.Result{}, fmt.Errorf("%w: now %d, timeout %d", ErrNotRefundable, call.Now, h.p.Timeout)
	}
	to := chain.ByParty(h.p.Party)
	return chain.Result{
		Transfer: &to,
		Note:     fmt.Sprintf("arc %d refunded to %s", h.p.ArcID, h.p.Party),
	}, nil
}
