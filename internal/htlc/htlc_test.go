package htlc

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func newHTLC(t *testing.T) (*HTLC, hashkey.Secret) {
	t.Helper()
	secret, err := hashkey.NewSecret(rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHTLC(HTLCParams{
		ID:      "h1",
		ArcID:   3,
		Lock:    secret.Lock(),
		Timeout: 160,
		Party:   "carol",
		Counter: "alice",
		Asset:   "title",
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, secret
}

func TestNewHTLCValidation(t *testing.T) {
	if _, err := NewHTLC(HTLCParams{Timeout: 0}); err == nil {
		t.Error("zero timeout should be rejected")
	}
}

func TestRedeemHappyPath(t *testing.T) {
	h, secret := newHTLC(t)
	res, err := h.Invoke(call(MethodRedeem, "alice", 150, RedeemArgs{Secret: secret}))
	if err != nil {
		t.Fatalf("redeem: %v", err)
	}
	if res.Transfer == nil || *res.Transfer != chain.ByParty("alice") {
		t.Errorf("transfer = %v, want alice", res.Transfer)
	}
	ev, ok := res.Event.(RedeemedEvent)
	if !ok || ev.Secret != secret || ev.ArcID != 3 {
		t.Errorf("event = %+v, want RedeemedEvent with the secret", res.Event)
	}
	if !h.Redeemed() {
		t.Error("Redeemed should report true")
	}
}

func TestRedeemRejections(t *testing.T) {
	_, secret := newHTLC(t)
	wrong, _ := hashkey.NewSecret(rand.New(rand.NewSource(22)))
	tests := []struct {
		name string
		call chain.Call
		want error
	}{
		{"wrong sender", call(MethodRedeem, "carol", 150, RedeemArgs{Secret: secret}), ErrNotCounterparty},
		{"bad args", call(MethodRedeem, "alice", 150, 42), ErrBadArgs},
		{"at timeout", call(MethodRedeem, "alice", 160, RedeemArgs{Secret: secret}), ErrExpired},
		{"after timeout", call(MethodRedeem, "alice", 999, RedeemArgs{Secret: secret}), ErrExpired},
		{"wrong secret", call(MethodRedeem, "alice", 150, RedeemArgs{Secret: wrong}), ErrWrongSecret},
		{"unknown method", call("claim", "alice", 150, nil), ErrUnknownMethod},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, _ := newHTLC(t)
			if _, err := h.Invoke(tt.call); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestHTLCRefund(t *testing.T) {
	h, _ := newHTLC(t)
	if _, err := h.Invoke(call(MethodRefund, "alice", 200, nil)); !errors.Is(err, ErrNotParty) {
		t.Errorf("refund by counterparty err = %v, want ErrNotParty", err)
	}
	if _, err := h.Invoke(call(MethodRefund, "carol", 159, nil)); !errors.Is(err, ErrNotRefundable) {
		t.Errorf("early refund err = %v, want ErrNotRefundable", err)
	}
	res, err := h.Invoke(call(MethodRefund, "carol", 160, nil))
	if err != nil {
		t.Fatalf("refund at timeout: %v", err)
	}
	if res.Transfer == nil || *res.Transfer != chain.ByParty("carol") {
		t.Errorf("transfer = %v, want carol", res.Transfer)
	}
}

// TestSection1Race documents the boundary the intro warns about: redeem
// strictly before the timeout, refund at it — the same tick can never
// satisfy both.
func TestSection1Race(t *testing.T) {
	h, secret := newHTLC(t)
	if _, err := h.Invoke(call(MethodRedeem, "alice", 159, RedeemArgs{Secret: secret})); err != nil {
		t.Errorf("redeem at timeout-1: %v", err)
	}
	h2, secret2 := newHTLC(t)
	_ = secret2
	if _, err := h2.Invoke(call(MethodRedeem, "alice", 160, RedeemArgs{Secret: secret2})); !errors.Is(err, ErrExpired) {
		t.Errorf("redeem at timeout err = %v, want ErrExpired", err)
	}
	if _, err := h2.Invoke(call(MethodRefund, "carol", 160, nil)); err != nil {
		t.Errorf("refund at timeout: %v", err)
	}
}

func TestHTLCOnChainLifecycle(t *testing.T) {
	secret, _ := hashkey.NewSecret(rand.New(rand.NewSource(23)))
	clock := vtime.ClockFunc(func() vtime.Ticks { return 150 })
	ch := chain.New("title", clock)
	if err := ch.RegisterAsset(chain.Asset{ID: "cadillac"}, "carol"); err != nil {
		t.Fatal(err)
	}
	h, _ := NewHTLC(HTLCParams{
		ID: "t", ArcID: 2, Lock: secret.Lock(), Timeout: 160,
		Party: "carol", Counter: "alice", Asset: "cadillac",
	})
	if err := ch.PublishContract("carol", h); err != nil {
		t.Fatal(err)
	}
	args := RedeemArgs{Secret: secret}
	if err := ch.Invoke("alice", "t", MethodRedeem, args, args.WireSize()); err != nil {
		t.Fatalf("redeem: %v", err)
	}
	if owner, _ := ch.OwnerOf("cadillac"); owner != chain.ByParty("alice") {
		t.Errorf("owner = %v, want alice", owner)
	}
}

func TestHTLCAccessors(t *testing.T) {
	h, _ := newHTLC(t)
	if h.ContractID() != "h1" || h.Party() != "carol" || h.AssetID() != "title" || h.ArcID() != 3 {
		t.Error("accessor mismatch")
	}
	if h.StorageSize() <= 0 {
		t.Error("StorageSize should be positive")
	}
	if h.Params().Timeout != 160 {
		t.Error("Params mismatch")
	}
	if (RedeemArgs{}).WireSize() != hashkey.SecretSize {
		t.Error("RedeemArgs wire size")
	}
}
