// Package htlc implements the hashed-timelock contracts of the swap
// protocol: the general multi-leader Swap contract of the paper's
// Figures 4 and 5, whose hashlock vector is opened by path-signed
// hashkeys, and the classic single-hashlock HTLC used by the single-leader
// protocol of Section 4.6 and by the baseline protocols.
package htlc

import (
	"errors"
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Contract method names, mirroring Figure 5.
const (
	MethodUnlock = "unlock"
	MethodClaim  = "claim"
	MethodRefund = "refund"
	// MethodRedeem is the classic HTLC's combined unlock-and-claim.
	MethodRedeem = "redeem"
)

// Errors returned by contract invocations.
var (
	ErrNotCounterparty  = errors.New("htlc: only the counterparty may call this")
	ErrNotParty         = errors.New("htlc: only the party may call this")
	ErrUnknownMethod    = errors.New("htlc: unknown method")
	ErrBadArgs          = errors.New("htlc: malformed arguments")
	ErrLockIndex        = errors.New("htlc: hashlock index out of range")
	ErrAlreadyUnlocked  = errors.New("htlc: hashlock already unlocked")
	ErrHashkeyExpired   = errors.New("htlc: hashkey past its path deadline")
	ErrWrongPresenter   = errors.New("htlc: hashkey path does not start at the counterparty")
	ErrLocksOutstanding = errors.New("htlc: not all hashlocks are unlocked")
	ErrNotRefundable    = errors.New("htlc: no hashlock is both locked and timed out")
	ErrExpired          = errors.New("htlc: contract timelock has passed")
	ErrWrongSecret      = errors.New("htlc: secret does not open the hashlock")
)

// SwapParams carries everything a Swap contract stores on-chain
// (Figure 4's long-lived state). All parties derive identical params from
// the published swap plan, which is how contract verification works.
type SwapParams struct {
	ID      chain.ContractID
	ArcID   int
	Digraph *digraph.Digraph
	Leaders []digraph.Vertex // leader vertex per hashlock index
	Locks   []hashkey.Lock
	// Timelocks holds the absolute per-lock deadlines: a hashkey for lock i
	// is valid while now ≤ Start + (DiamBound + |p|)·Δ, so lock i is dead
	// (and the contract refundable) once now > Timelocks[i] while i is
	// still locked. Timelocks[i] equals Start + (DiamBound +
	// maxpath(counterparty, leader_i))·Δ. Deadlines are inclusive because
	// the paper's timing is exactly tight: with worst-case Δ latencies the
	// leader detects its last entering contract precisely at
	// Start + diam·Δ, the deadline of its own degenerate hashkey.
	Timelocks []vtime.Ticks
	Party     chain.PartyID
	PartyV    digraph.Vertex
	Counter   chain.PartyID
	CounterV  digraph.Vertex
	Asset     chain.AssetID
	Start     vtime.Ticks
	Delta     vtime.Duration
	DiamBound int
	Directory hashkey.Directory
	// Broadcast admits the virtual length-1 hashkey path
	// (counterparty, leader) of the Section 4.5 optimization, where
	// followers learn secrets from a shared broadcast chain as if a direct
	// arc to the leader existed.
	Broadcast bool
	// Cache is the node-local hashkey verification cache. It is not part
	// of the on-chain contract state (a real chain's validator would hold
	// its own): plan verification ignores it, StorageSize does not charge
	// it, and nil simply disables amortized verification.
	Cache *hashkey.VerifyCache
}

// UnlockArgs is the payload of an unlock call: which hashlock, opened by
// which hashkey.
type UnlockArgs struct {
	LockIndex int
	Key       hashkey.Hashkey
}

// WireSize returns the bytes this call occupies on-chain.
func (a UnlockArgs) WireSize() int { return 4 + a.Key.WireSize() }

// UnlockedEvent is emitted to chain observers when a hashlock opens; it is
// how secrets propagate in Phase Two — the hashkey is public on the ledger
// and the next party extends it.
type UnlockedEvent struct {
	ArcID     int
	LockIndex int
	Key       hashkey.Hashkey
}

// Swap is the paper's swap contract (Figures 4 and 5). It implements
// chain.Contract; all state transitions flow through Invoke.
type Swap struct {
	p          SwapParams
	unlocked   []bool
	unlockedAt []vtime.Ticks     // chain time each lock opened (public state)
	keys       []hashkey.Hashkey // the hashkey that opened each lock
}

// Compile-time interface checks.
var (
	_ chain.Contract           = (*Swap)(nil)
	_ chain.RevertibleContract = (*Swap)(nil)
)

// NewSwap validates params and constructs the contract.
func NewSwap(p SwapParams) (*Swap, error) {
	if p.Digraph == nil {
		return nil, errors.New("htlc: nil digraph")
	}
	if len(p.Leaders) == 0 || len(p.Leaders) != len(p.Locks) || len(p.Locks) != len(p.Timelocks) {
		return nil, fmt.Errorf("htlc: leaders/locks/timelocks lengths %d/%d/%d must match and be positive",
			len(p.Leaders), len(p.Locks), len(p.Timelocks))
	}
	if p.Delta <= 0 {
		return nil, errors.New("htlc: non-positive delta")
	}
	arc := p.Digraph.Arc(p.ArcID)
	if arc.Head != p.PartyV || arc.Tail != p.CounterV {
		return nil, fmt.Errorf("htlc: arc %d runs %d->%d, contract names %d->%d",
			p.ArcID, arc.Head, arc.Tail, p.PartyV, p.CounterV)
	}
	return &Swap{
		p:          p,
		unlocked:   make([]bool, len(p.Locks)),
		unlockedAt: make([]vtime.Ticks, len(p.Locks)),
		keys:       make([]hashkey.Hashkey, len(p.Locks)),
	}, nil
}

// ContractID implements chain.Contract.
func (s *Swap) ContractID() chain.ContractID { return s.p.ID }

// Party implements chain.Contract.
func (s *Swap) Party() chain.PartyID { return s.p.Party }

// AssetID implements chain.Contract.
func (s *Swap) AssetID() chain.AssetID { return s.p.Asset }

// StorageSize implements chain.Contract: the dominant term is the digraph
// copy every contract carries (Figure 4 line 3), which is what makes total
// storage O(|A|²) across |A| contracts.
func (s *Swap) StorageSize() int {
	n := len(s.p.ID) + len(s.p.Party) + len(s.p.Counter) + len(s.p.Asset)
	n += s.p.Digraph.EncodedSize()
	n += 4 * len(s.p.Leaders)
	n += len(s.p.Locks) * len(hashkey.Lock{})
	n += 8 * len(s.p.Timelocks)
	n += len(s.p.Directory) * (4 + 32) // vertex id + public key
	n += 8 + 8 + 4 + len(s.unlocked)   // start, delta, diam bound, unlocked flags
	return n
}

// Params returns a copy of the contract's public parameters; parties read
// them to verify a published contract against the swap plan.
func (s *Swap) Params() SwapParams {
	p := s.p
	p.Leaders = append([]digraph.Vertex(nil), s.p.Leaders...)
	p.Locks = append([]hashkey.Lock(nil), s.p.Locks...)
	p.Timelocks = append([]vtime.Ticks(nil), s.p.Timelocks...)
	return p
}

// ArcID returns the swap-digraph arc this contract settles.
func (s *Swap) ArcID() int { return s.p.ArcID }

// swapSnapshot is a Swap's mutable state — exactly the per-lock unlock
// columns; everything in SwapParams is immutable after construction.
type swapSnapshot struct {
	unlocked   []bool
	unlockedAt []vtime.Ticks
	keys       []hashkey.Hashkey
}

// StateSnapshot implements chain.RevertibleContract: the hosting chain
// captures the unlock columns before applying an invocation, so a
// commitment-model reorg can roll the invocation back. Called under the
// chain lock, like Invoke.
func (s *Swap) StateSnapshot() any {
	return swapSnapshot{
		unlocked:   append([]bool(nil), s.unlocked...),
		unlockedAt: append([]vtime.Ticks(nil), s.unlockedAt...),
		keys:       append([]hashkey.Hashkey(nil), s.keys...),
	}
}

// StateRestore implements chain.RevertibleContract.
func (s *Swap) StateRestore(snap any) {
	ss := snap.(swapSnapshot)
	s.unlocked = append([]bool(nil), ss.unlocked...)
	s.unlockedAt = append([]vtime.Ticks(nil), ss.unlockedAt...)
	s.keys = append([]hashkey.Hashkey(nil), ss.keys...)
}

// Unlocked returns a copy of the per-lock unlocked flags.
func (s *Swap) Unlocked() []bool {
	return append([]bool(nil), s.unlocked...)
}

// AllUnlocked reports whether every hashlock is open (the contract is
// claimable — "triggered" in the paper's terms).
func (s *Swap) AllUnlocked() bool {
	for _, u := range s.unlocked {
		if !u {
			return false
		}
	}
	return true
}

// UnlockKey returns the hashkey that opened lock i, valid only when
// Unlocked()[i].
func (s *Swap) UnlockKey(i int) hashkey.Hashkey { return s.keys[i].Clone() }

// UnlockTime returns the chain time lock i opened and whether it has.
func (s *Swap) UnlockTime(i int) (vtime.Ticks, bool) {
	if i < 0 || i >= len(s.unlocked) || !s.unlocked[i] {
		return 0, false
	}
	return s.unlockedAt[i], true
}

// Refundable reports whether some hashlock is still locked strictly past
// its (inclusive) deadline, i.e. can never be opened again.
func (s *Swap) Refundable(now vtime.Ticks) bool {
	for i, u := range s.unlocked {
		if !u && now.After(s.p.Timelocks[i]) {
			return true
		}
	}
	return false
}

// Invoke implements chain.Contract, dispatching Figure 5's three methods.
func (s *Swap) Invoke(call chain.Call) (chain.Result, error) {
	switch call.Method {
	case MethodUnlock:
		return s.invokeUnlock(call)
	case MethodClaim:
		return s.invokeClaim(call)
	case MethodRefund:
		return s.invokeRefund(call)
	default:
		return chain.Result{}, fmt.Errorf("%w: %q", ErrUnknownMethod, call.Method)
	}
}

// invokeUnlock is Figure 5 lines 26–34: callable only by the counterparty,
// with a live, correctly signed hashkey whose path runs from the
// counterparty to the lock's leader.
func (s *Swap) invokeUnlock(call chain.Call) (chain.Result, error) {
	if call.Sender != s.p.Counter {
		return chain.Result{}, fmt.Errorf("%w: sender %s", ErrNotCounterparty, call.Sender)
	}
	args, ok := call.Args.(UnlockArgs)
	if !ok {
		return chain.Result{}, fmt.Errorf("%w: unlock wants UnlockArgs", ErrBadArgs)
	}
	i := args.LockIndex
	if i < 0 || i >= len(s.p.Locks) {
		return chain.Result{}, fmt.Errorf("%w: %d of %d", ErrLockIndex, i, len(s.p.Locks))
	}
	if s.unlocked[i] {
		return chain.Result{}, fmt.Errorf("%w: index %d", ErrAlreadyUnlocked, i)
	}
	// Hashkey deadline: now ≤ start + (diam(D) + |p|)·Δ (inclusive; see
	// the SwapParams.Timelocks comment).
	deadline := s.p.Start.Add(vtime.Scale(s.p.DiamBound+args.Key.PathLen(), s.p.Delta))
	if call.Now.After(deadline) {
		return chain.Result{}, fmt.Errorf("%w: now %d, deadline %d (|p|=%d)",
			ErrHashkeyExpired, call.Now, deadline, args.Key.PathLen())
	}
	if args.Key.Presenter() != s.p.CounterV {
		return chain.Result{}, fmt.Errorf("%w: path starts at %d, counterparty is %d",
			ErrWrongPresenter, args.Key.Presenter(), s.p.CounterV)
	}
	if !s.pathOK(args.Key.Path, s.p.Leaders[i]) {
		return chain.Result{}, fmt.Errorf("htlc: unlock %d: %v is not a valid hashkey path", i, args.Key.Path)
	}
	if err := args.Key.VerifyCryptoExtended(s.p.Locks[i], s.p.Leaders[i], s.p.Directory, s.p.Cache); err != nil {
		return chain.Result{}, fmt.Errorf("htlc: unlock %d: %w", i, err)
	}
	s.unlocked[i] = true
	s.unlockedAt[i] = call.Now
	// One defensive clone, shared by the stored key and the event: both are
	// read-only from here (re-presentations Clone again before extending).
	key := args.Key.Clone()
	s.keys[i] = key
	return chain.Result{
		Note:  fmt.Sprintf("hashlock %d opened, path %v", i, args.Key.Path),
		Event: UnlockedEvent{ArcID: s.p.ArcID, LockIndex: i, Key: key},
	}, nil
}

// pathOK accepts simple paths of the swap digraph and, when the broadcast
// optimization is on, the virtual length-1 path (counterparty, leader).
func (s *Swap) pathOK(p digraph.Path, leader digraph.Vertex) bool {
	if s.p.Digraph.IsPath(p) {
		return true
	}
	return s.p.Broadcast && len(p) == 2 && p[0] != p[1] && p[1] == leader
}

// invokeClaim is Figure 5 lines 42–48: the counterparty takes the asset
// once every hashlock is open. There is no deadline on claiming — a fully
// unlocked contract is a bearer right.
func (s *Swap) invokeClaim(call chain.Call) (chain.Result, error) {
	if call.Sender != s.p.Counter {
		return chain.Result{}, fmt.Errorf("%w: sender %s", ErrNotCounterparty, call.Sender)
	}
	if !s.AllUnlocked() {
		return chain.Result{}, ErrLocksOutstanding
	}
	to := chain.ByParty(s.p.Counter)
	return chain.Result{
		Transfer: &to,
		Note:     fmt.Sprintf("arc %d claimed by %s", s.p.ArcID, s.p.Counter),
	}, nil
}

// invokeRefund is Figure 5 lines 35–41 (with the evident intent of line
// 37): the party reclaims the asset once some hashlock is still locked at
// its deadline, because no hashkey can ever open it again.
func (s *Swap) invokeRefund(call chain.Call) (chain.Result, error) {
	if call.Sender != s.p.Party {
		return chain.Result{}, fmt.Errorf("%w: sender %s", ErrNotParty, call.Sender)
	}
	if !s.Refundable(call.Now) {
		return chain.Result{}, ErrNotRefundable
	}
	to := chain.ByParty(s.p.Party)
	return chain.Result{
		Transfer: &to,
		Note:     fmt.Sprintf("arc %d refunded to %s", s.p.ArcID, s.p.Party),
	}, nil
}
