package htlc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// TestUnlockMutationProperty: any single-bit corruption of a valid unlock
// payload (secret, a signature byte, a path vertex) is rejected, across
// random corruption positions.
func TestUnlockMutationProperty(t *testing.T) {
	b := newBench(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := b.bobKey()
		switch rng.Intn(3) {
		case 0: // flip a secret bit
			key.Secret[rng.Intn(hashkey.SecretSize)] ^= 1 << uint(rng.Intn(8))
		case 1: // flip a signature bit
			key = key.Clone()
			i := rng.Intn(len(key.Sigs))
			key.Sigs[i][rng.Intn(len(key.Sigs[i]))] ^= 1 << uint(rng.Intn(8))
		default: // swap two path vertexes (breaks path or signatures)
			key = key.Clone()
			key.Path[0], key.Path[1] = key.Path[1], key.Path[0]
		}
		s, err := NewSwap(b.arc0Params())
		if err != nil {
			return false
		}
		_, err = s.Invoke(call(MethodUnlock, "bob", 110, UnlockArgs{Key: key}))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestContractStateMachineProperty: whatever sequence of random calls is
// thrown at a Swap contract, the asset can transfer at most once, and
// only via a legitimate claim or refund.
func TestContractStateMachineProperty(t *testing.T) {
	b := newBench(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSwap(b.arc0Params())
		if err != nil {
			return false
		}
		transfers := 0
		senders := []chain.PartyID{"alice", "bob", "mallory"}
		for i := 0; i < 30; i++ {
			method := []string{MethodUnlock, MethodClaim, MethodRefund}[rng.Intn(3)]
			sender := senders[rng.Intn(len(senders))]
			now := 90 + rng.Intn(120)
			var args any
			if method == MethodUnlock {
				args = UnlockArgs{Key: b.bobKey()}
			}
			res, err := s.Invoke(call(method, sender, vtime.Ticks(now), args))
			if err != nil {
				continue
			}
			if res.Transfer != nil {
				transfers++
				// Claims go to the counterparty, refunds to the party.
				dest := *res.Transfer
				if dest != chain.ByParty("bob") && dest != chain.ByParty("alice") {
					return false
				}
				break // a real chain closes the contract here
			}
		}
		return transfers <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
