package vtime

import (
	"testing"
	"testing/quick"
)

func TestTicksArithmetic(t *testing.T) {
	tests := []struct {
		name string
		base Ticks
		d    Duration
		want Ticks
	}{
		{name: "zero plus zero", base: 0, d: 0, want: 0},
		{name: "positive offset", base: 10, d: 5, want: 15},
		{name: "negative offset", base: 10, d: -3, want: 7},
		{name: "large values", base: 1 << 40, d: 1 << 20, want: 1<<40 + 1<<20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.base.Add(tt.d); got != tt.want {
				t.Errorf("Add(%d, %d) = %d, want %d", tt.base, tt.d, got, tt.want)
			}
		})
	}
}

func TestSubInvertsAdd(t *testing.T) {
	f := func(base int64, d int32) bool {
		b := Ticks(base)
		dur := Duration(d)
		return b.Add(dur).Sub(b) == dur
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBeforeAfter(t *testing.T) {
	if !Ticks(1).Before(2) {
		t.Error("1 should be before 2")
	}
	if Ticks(2).Before(2) {
		t.Error("2 should not be before itself")
	}
	if !Ticks(3).After(2) {
		t.Error("3 should be after 2")
	}
	if Ticks(2).After(2) {
		t.Error("2 should not be after itself")
	}
}

func TestScale(t *testing.T) {
	if got := Scale(3, 10); got != 30 {
		t.Errorf("Scale(3, 10) = %d, want 30", got)
	}
	if got := Scale(0, 10); got != 0 {
		t.Errorf("Scale(0, 10) = %d, want 0", got)
	}
}

func TestInDelta(t *testing.T) {
	tests := []struct {
		name  string
		d     Duration
		delta Duration
		want  string
	}{
		{name: "exact multiple", d: 30, delta: 10, want: "3Δ"},
		{name: "zero", d: 0, delta: 10, want: "0Δ"},
		{name: "half", d: 25, delta: 10, want: "2.5Δ"},
		{name: "rounds up to next whole", d: 29, delta: 10, want: "2.9Δ"},
		{name: "rounding carries", d: 2999, delta: 1000, want: "3Δ"},
		{name: "degenerate delta", d: 17, delta: 0, want: "17"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InDelta(tt.d, tt.delta); got != tt.want {
				t.Errorf("InDelta(%d, %d) = %q, want %q", tt.d, tt.delta, got, tt.want)
			}
		})
	}
}

func TestClockFunc(t *testing.T) {
	var now Ticks = 42
	var c Clock = ClockFunc(func() Ticks { return now })
	if c.Now() != 42 {
		t.Errorf("Now() = %d, want 42", c.Now())
	}
	now = 43
	if c.Now() != 43 {
		t.Errorf("Now() = %d, want 43", c.Now())
	}
}

func TestTicksString(t *testing.T) {
	if got := Ticks(123).String(); got != "123" {
		t.Errorf("String() = %q, want %q", got, "123")
	}
}
