// Package vtime provides the virtual-time primitives shared by the swap
// protocol, the mock blockchains, and the discrete-event simulator.
//
// The paper's timing model is built around a single known duration Δ: long
// enough for one party to publish a smart contract on any blockchain (or
// change a contract's state) and for another party to detect the change.
// All protocol deadlines are integer multiples of Δ measured from a start
// time, so time is modeled as integer ticks rather than wall-clock time.
package vtime

import "strconv"

// Ticks is an absolute instant in virtual time.
type Ticks int64

// Duration is a span of virtual time.
type Duration int64

// Add returns the instant d after t.
func (t Ticks) Add(d Duration) Ticks { return t + Ticks(d) }

// Sub returns the duration elapsed from u to t.
func (t Ticks) Sub(u Ticks) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Ticks) Before(u Ticks) bool { return t < u }

// After reports whether t follows u.
func (t Ticks) After(u Ticks) bool { return t > u }

// String renders the instant as a plain tick count.
func (t Ticks) String() string { return strconv.FormatInt(int64(t), 10) }

// Scale returns n·d. It is the usual way to express protocol deadlines such
// as (diam(D) + |p|)·Δ.
func Scale(n int, d Duration) Duration { return Duration(n) * d }

// InDelta renders a duration as a multiple of the given Δ, e.g. "3Δ" or
// "2.5Δ", for human-readable traces and experiment tables.
func InDelta(d, delta Duration) string {
	if delta <= 0 {
		return strconv.FormatInt(int64(d), 10)
	}
	whole := d / delta
	rem := d % delta
	if rem == 0 {
		return strconv.FormatInt(int64(whole), 10) + "Δ"
	}
	// One decimal of precision is enough for traces.
	tenths := (rem*10 + delta/2) / delta
	if tenths == 10 {
		whole++
		tenths = 0
	}
	if tenths == 0 {
		return strconv.FormatInt(int64(whole), 10) + "Δ"
	}
	return strconv.FormatInt(int64(whole), 10) + "." + strconv.FormatInt(int64(tenths), 10) + "Δ"
}

// Clock supplies the current virtual time. The discrete-event simulator
// implements it for deterministic runs; a real deployment would adapt
// wall-clock time.
type Clock interface {
	Now() Ticks
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() Ticks

// Now implements Clock.
func (f ClockFunc) Now() Ticks { return f() }
