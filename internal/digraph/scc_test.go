package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCsCycle(t *testing.T) {
	d := cycle3()
	comps := d.SCCs()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("SCCs = %v, want one component of 3", comps)
	}
	if !d.StronglyConnected() {
		t.Error("3-cycle should be strongly connected")
	}
}

func TestSCCsChain(t *testing.T) {
	// 0 -> 1 -> 2: three singleton components.
	d := FromArcs(3, [2]int{0, 1}, [2]int{1, 2})
	comps := d.SCCs()
	if len(comps) != 3 {
		t.Fatalf("SCCs = %v, want 3 singletons", comps)
	}
	if d.StronglyConnected() {
		t.Error("chain should not be strongly connected")
	}
}

func TestSCCsMixed(t *testing.T) {
	// Two 2-cycles joined by a one-way arc: {0,1} -> {2,3}.
	d := FromArcs(4,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{2, 3}, [2]int{3, 2},
		[2]int{1, 2},
	)
	comps := d.SCCs()
	if len(comps) != 2 {
		t.Fatalf("SCCs = %v, want 2 components", comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 2 {
		t.Errorf("components = %v, want two of size 2", comps)
	}
	// Reverse topological order: the component that is reached ({2,3})
	// must be emitted before the component that reaches it ({0,1}).
	if comps[0][0] != 2 {
		t.Errorf("first component = %v, want {2,3} (reverse topological)", comps[0])
	}
}

func TestStronglyConnectedTrivial(t *testing.T) {
	if !New().StronglyConnected() {
		t.Error("empty digraph is trivially strongly connected")
	}
	d := New()
	d.AddVertex("solo")
	if !d.StronglyConnected() {
		t.Error("single vertex is trivially strongly connected")
	}
	two := FromArcs(2, [2]int{0, 1})
	if two.StronglyConnected() {
		t.Error("one-way pair is not strongly connected")
	}
}

func TestReachable(t *testing.T) {
	d := FromArcs(4, [2]int{0, 1}, [2]int{1, 2})
	tests := []struct {
		u, v Vertex
		want bool
	}{
		{0, 2, true},
		{2, 0, false},
		{0, 0, true},
		{0, 3, false},
		{3, 3, true},
	}
	for _, tt := range tests {
		if got := d.Reachable(tt.u, tt.v); got != tt.want {
			t.Errorf("Reachable(%d, %d) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

// TestSCCMatchesBruteForce checks Tarjan against the definition: u and v are
// in the same component iff mutually reachable.
func TestSCCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 8, 0.3)
		comps := d.SCCs()
		compOf := make(map[Vertex]int)
		for i, c := range comps {
			for _, v := range c {
				compOf[v] = i
			}
		}
		n := d.NumVertices()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := compOf[Vertex(u)] == compOf[Vertex(v)]
				mutual := d.Reachable(Vertex(u), Vertex(v)) && d.Reachable(Vertex(v), Vertex(u))
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSCCCoversAllVertices(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 10, 0.25)
		seen := make(map[Vertex]int)
		for _, c := range d.SCCs() {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != d.NumVertices() {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
