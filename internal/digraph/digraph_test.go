package digraph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// cycle3 is the paper's Figure 1 digraph: Alice -> Bob -> Carol -> Alice.
func cycle3() *Digraph {
	d := New()
	a := d.AddVertex("Alice")
	b := d.AddVertex("Bob")
	c := d.AddVertex("Carol")
	d.MustAddArc(a, b)
	d.MustAddArc(b, c)
	d.MustAddArc(c, a)
	return d
}

func TestAddVertexAndArc(t *testing.T) {
	d := New()
	a := d.AddVertex("A")
	b := d.AddVertex("")
	if a != 0 || b != 1 {
		t.Fatalf("vertex indexes = %d, %d, want 0, 1", a, b)
	}
	if d.Name(a) != "A" {
		t.Errorf("Name(a) = %q, want A", d.Name(a))
	}
	if d.Name(b) != "v1" {
		t.Errorf("Name(b) = %q, want default v1", d.Name(b))
	}
	id, err := d.AddArc(a, b)
	if err != nil {
		t.Fatalf("AddArc: %v", err)
	}
	if id != 0 {
		t.Errorf("arc ID = %d, want 0", id)
	}
	arc := d.Arc(id)
	if arc.Head != a || arc.Tail != b {
		t.Errorf("Arc(0) = %+v, want head=0 tail=1", arc)
	}
	if d.NumVertices() != 2 || d.NumArcs() != 1 {
		t.Errorf("sizes = (%d, %d), want (2, 1)", d.NumVertices(), d.NumArcs())
	}
}

func TestAddArcErrors(t *testing.T) {
	d := New()
	a := d.AddVertex("A")
	tests := []struct {
		name       string
		head, tail Vertex
		want       error
	}{
		{name: "self loop", head: a, tail: a, want: ErrSelfLoop},
		{name: "head out of range", head: 5, tail: a, want: ErrVertexRange},
		{name: "tail out of range", head: a, tail: -1, want: ErrVertexRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := d.AddArc(tt.head, tt.tail); !errors.Is(err, tt.want) {
				t.Errorf("AddArc(%d, %d) err = %v, want %v", tt.head, tt.tail, err, tt.want)
			}
		})
	}
}

func TestParallelArcs(t *testing.T) {
	d := New()
	a := d.AddVertex("A")
	b := d.AddVertex("B")
	id1 := d.MustAddArc(a, b)
	id2 := d.MustAddArc(a, b)
	if id1 == id2 {
		t.Fatal("parallel arcs must have distinct IDs")
	}
	if got := d.ArcsBetween(a, b); len(got) != 2 {
		t.Errorf("ArcsBetween = %v, want 2 arcs", got)
	}
	if d.OutDegree(a) != 2 || d.InDegree(b) != 2 {
		t.Errorf("degrees = (%d, %d), want (2, 2)", d.OutDegree(a), d.InDegree(b))
	}
}

func TestOutInCopies(t *testing.T) {
	d := cycle3()
	out := d.Out(0)
	out[0] = 99
	if d.Out(0)[0] == 99 {
		t.Error("Out returned a live reference to internal state")
	}
	in := d.In(0)
	in[0] = 99
	if d.In(0)[0] == 99 {
		t.Error("In returned a live reference to internal state")
	}
}

func TestVertexByName(t *testing.T) {
	d := cycle3()
	v, ok := d.VertexByName("Bob")
	if !ok || v != 1 {
		t.Errorf("VertexByName(Bob) = (%d, %v), want (1, true)", v, ok)
	}
	if _, ok := d.VertexByName("Mallory"); ok {
		t.Error("VertexByName(Mallory) should not be found")
	}
}

func TestTranspose(t *testing.T) {
	d := cycle3()
	tr := d.Transpose()
	if tr.NumArcs() != d.NumArcs() || tr.NumVertices() != d.NumVertices() {
		t.Fatal("transpose changed sizes")
	}
	for _, a := range d.Arcs() {
		ta := tr.Arc(a.ID)
		if ta.Head != a.Tail || ta.Tail != a.Head {
			t.Errorf("arc %d not reversed: %+v vs %+v", a.ID, a, ta)
		}
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 8, 0.4)
		tt := d.Transpose().Transpose()
		if !StructuralEqual(d, tt) {
			return false
		}
		// Arc IDs must also be preserved exactly.
		for _, a := range d.Arcs() {
			b := tt.Arc(a.ID)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	d := cycle3()
	c := d.Clone()
	if !StructuralEqual(d, c) {
		t.Fatal("clone not structurally equal")
	}
	c.MustAddArc(0, 2)
	if d.NumArcs() == c.NumArcs() {
		t.Error("mutating clone affected original")
	}
}

func TestWithoutVertices(t *testing.T) {
	d := cycle3()
	sub := d.WithoutVertices(map[Vertex]bool{0: true})
	if sub.NumVertices() != 3 {
		t.Errorf("vertex slots should be preserved, got %d", sub.NumVertices())
	}
	if sub.NumArcs() != 1 { // only Bob->Carol survives
		t.Errorf("NumArcs = %d, want 1", sub.NumArcs())
	}
	if !sub.HasArcBetween(1, 2) {
		t.Error("Bob->Carol should survive deleting Alice")
	}
}

func TestStructuralEqual(t *testing.T) {
	a := FromArcs(3, [2]int{0, 1}, [2]int{1, 2})
	b := FromArcs(3, [2]int{1, 2}, [2]int{0, 1}) // same arcs, other order
	c := FromArcs(3, [2]int{0, 1}, [2]int{2, 1})
	if !StructuralEqual(a, b) {
		t.Error("arc order should not matter")
	}
	if StructuralEqual(a, c) {
		t.Error("different arcs should not be equal")
	}
	if StructuralEqual(a, FromArcs(4, [2]int{0, 1}, [2]int{1, 2})) {
		t.Error("different vertex counts should not be equal")
	}
}

func TestString(t *testing.T) {
	s := cycle3().String()
	for _, want := range []string{"Alice->Bob", "Bob->Carol", "Carol->Alice"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestDOT(t *testing.T) {
	d := cycle3()
	dot := d.DOT("", map[Vertex]bool{0: true})
	for _, want := range []string{"digraph swap", `"Alice" [shape=doublecircle]`, `"Bob" [shape=circle]`, `"Alice" -> "Bob"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomDigraph builds a random simple digraph (no parallel arcs here;
// those are covered separately) for property tests.
func randomDigraph(r *rand.Rand, maxN int, density float64) *Digraph {
	n := 2 + r.Intn(maxN-1)
	d := New()
	for i := 0; i < n; i++ {
		d.AddVertex("")
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && r.Float64() < density {
				d.MustAddArc(Vertex(u), Vertex(v))
			}
		}
	}
	return d
}
