package digraph

import "fmt"

// Path is a sequence of vertexes connected by arcs, following the paper's
// definition: the vertexes of a simple path are distinct. The length of a
// path is its number of arcs, len(p)-1.
type Path []Vertex

// Len returns the number of arcs on the path (|p| in the paper). The empty
// and single-vertex paths have length 0.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// First returns the starting vertex; it panics on an empty path.
func (p Path) First() Vertex { return p[0] }

// Last returns the final vertex; it panics on an empty path.
func (p Path) Last() Vertex { return p[len(p)-1] }

// Contains reports whether v appears on the path.
func (p Path) Contains(v Vertex) bool {
	for _, u := range p {
		if u == v {
			return true
		}
	}
	return false
}

// Prepend returns the path v + p. This is the hashkey-extension operation:
// a party prepends itself before re-presenting a secret on its entering
// arcs. The receiver is not modified.
func (p Path) Prepend(v Vertex) Path {
	out := make(Path, 0, len(p)+1)
	out = append(out, v)
	out = append(out, p...)
	return out
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// String renders the path as "A>B>C" using vertex indexes.
func (p Path) String() string {
	s := ""
	for i, v := range p {
		if i > 0 {
			s += ">"
		}
		s += fmt.Sprintf("%d", int(v))
	}
	return s
}

// IsPath reports whether p is a valid simple path in d: non-empty, all
// vertexes in range and distinct, with an arc between each consecutive
// pair. A single vertex is a valid (degenerate) path — the paper's leaders
// present their own secrets with such a path.
func (d *Digraph) IsPath(p Path) bool {
	if len(p) == 0 {
		return false
	}
	seen := make(map[Vertex]bool, len(p))
	for _, v := range p {
		if !d.valid(v) || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i+1 < len(p); i++ {
		if !d.HasArcBetween(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// AllSimplePaths returns every simple path from 'from' to 'to', in
// deterministic (lexicographic by vertex index) order. If limit > 0, at
// most limit paths are returned. The single-vertex path is returned when
// from == to.
func (d *Digraph) AllSimplePaths(from, to Vertex, limit int) []Path {
	var (
		out  []Path
		cur  Path
		seen = make([]bool, d.NumVertices())
	)
	// Successor vertexes in sorted order for determinism.
	succ := func(v Vertex) []Vertex {
		var ws []Vertex
		for _, id := range d.out[v] {
			w := d.arcs[id].Tail
			dup := false
			for _, x := range ws {
				if x == w {
					dup = true
					break
				}
			}
			if !dup {
				ws = append(ws, w)
			}
		}
		sortVertices(ws)
		return ws
	}
	var dfs func(v Vertex) bool // returns false when the limit was reached
	dfs = func(v Vertex) bool {
		cur = append(cur, v)
		seen[v] = true
		defer func() {
			cur = cur[:len(cur)-1]
			seen[v] = false
		}()
		if v == to {
			out = append(out, cur.Clone())
			return limit <= 0 || len(out) < limit
		}
		for _, w := range succ(v) {
			if seen[w] {
				continue
			}
			if !dfs(w) {
				return false
			}
		}
		return true
	}
	if d.valid(from) && d.valid(to) {
		dfs(from)
	}
	return out
}
