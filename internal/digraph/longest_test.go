package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongestPathsFromCycle(t *testing.T) {
	d := cycle3()
	best, exact := d.LongestPathsFrom(0)
	if !exact {
		t.Fatal("3 vertexes should be exact")
	}
	want := []int{0, 1, 2} // A: itself 0, A->B 1, A->B->C 2
	for v, w := range want {
		if best[v] != w {
			t.Errorf("longest 0->%d = %d, want %d", v, best[v], w)
		}
	}
}

func TestLongestPathsFromUnreachable(t *testing.T) {
	d := FromArcs(3, [2]int{0, 1})
	best, _ := d.LongestPathsFrom(0)
	if best[2] != -1 {
		t.Errorf("unreachable vertex should be -1, got %d", best[2])
	}
}

func TestLongestPathLenCompleteDigraph(t *testing.T) {
	// Complete digraph on 4 vertexes: longest simple path between any two
	// distinct vertexes visits all 4 vertexes, length 3.
	d := New()
	for i := 0; i < 4; i++ {
		d.AddVertex("")
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				d.MustAddArc(Vertex(u), Vertex(v))
			}
		}
	}
	got, exact := d.LongestPathLen(0, 3)
	if !exact || got != 3 {
		t.Errorf("LongestPathLen = (%d, %v), want (3, true)", got, exact)
	}
	diam, exact := d.Diameter()
	if !exact || diam != 3 {
		t.Errorf("Diameter = (%d, %v), want (3, true)", diam, exact)
	}
}

func TestDiameterCases(t *testing.T) {
	tests := []struct {
		name string
		d    *Digraph
		want int
	}{
		{name: "empty", d: New(), want: 0},
		{name: "3-cycle", d: cycle3(), want: 2},
		{name: "chain of 4", d: FromArcs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}), want: 3},
		{name: "two-leader triangle", d: FromArcs(3,
			[2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}, [2]int{2, 1}, [2]int{0, 2}, [2]int{2, 0}), want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, exact := tt.d.Diameter()
			if !exact || got != tt.want {
				t.Errorf("Diameter = (%d, %v), want (%d, true)", got, exact, tt.want)
			}
		})
	}
}

// TestLongestPathsMatchEnumeration cross-checks the bitmask DP against
// explicit path enumeration.
func TestLongestPathsMatchEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 7, 0.35)
		n := d.NumVertices()
		for u := 0; u < n; u++ {
			best, exact := d.LongestPathsFrom(Vertex(u))
			if !exact {
				return false
			}
			for v := 0; v < n; v++ {
				want := -1
				for _, p := range d.AllSimplePaths(Vertex(u), Vertex(v), 0) {
					if p.Len() > want {
						want = p.Len()
					}
				}
				if best[v] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiameterMatchesPairwiseLongest(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 7, 0.35)
		diam, _ := d.Diameter()
		want := 0
		for u := 0; u < d.NumVertices(); u++ {
			best, _ := d.LongestPathsFrom(Vertex(u))
			for _, b := range best {
				if b > want {
					want = b
				}
			}
		}
		return diam == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargeGraphFallback(t *testing.T) {
	// A directed cycle bigger than MaxExactVertices: values are the n-1
	// upper bound and flagged inexact.
	n := MaxExactVertices + 3
	d := New()
	for i := 0; i < n; i++ {
		d.AddVertex("")
	}
	for i := 0; i < n; i++ {
		d.MustAddArc(Vertex(i), Vertex((i+1)%n))
	}
	best, exact := d.LongestPathsFrom(0)
	if exact {
		t.Error("large graph should not claim exactness")
	}
	for v, b := range best {
		if b != n-1 {
			t.Errorf("fallback bound for %d = %d, want %d", v, b, n-1)
		}
	}
	diam, exact := d.Diameter()
	if exact || diam != n-1 {
		t.Errorf("Diameter = (%d, %v), want (%d, false)", diam, exact, n-1)
	}
	if d.DiameterBound() != n-1 {
		t.Errorf("DiameterBound = %d, want %d", d.DiameterBound(), n-1)
	}
}

func TestLongestPathsToSink(t *testing.T) {
	// Figure 1's 3-cycle with leader A (= vertex 0): follower subgraph
	// B->C is acyclic. D(A,A)=0, D(B,A)=2 (B->C->A), D(C,A)=1.
	d := cycle3()
	dist, ok := d.LongestPathsToSink(0)
	if !ok {
		t.Fatal("single leader of a 3-cycle is an FVS")
	}
	want := []int{0, 2, 1}
	for v, w := range want {
		if dist[v] != w {
			t.Errorf("D(%d, leader) = %d, want %d", v, dist[v], w)
		}
	}
}

func TestLongestPathsToSinkNotFVS(t *testing.T) {
	// Two disjoint cycles sharing no vertex: one leader cannot break both.
	d := FromArcs(4,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{2, 3}, [2]int{3, 2},
	)
	if _, ok := d.LongestPathsToSink(0); ok {
		t.Error("vertex 0 is not an FVS for two disjoint cycles")
	}
}

func TestLongestPathsToSinkMatchesDP(t *testing.T) {
	// On single-leader graphs, the polynomial sink computation must agree
	// with the exponential exact DP.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a flower: k petal cycles sharing vertex 0.
		d := New()
		center := d.AddVertex("L")
		k := 1 + r.Intn(3)
		for p := 0; p < k; p++ {
			prev := center
			petal := 1 + r.Intn(3)
			for i := 0; i < petal; i++ {
				v := d.AddVertex("")
				d.MustAddArc(prev, v)
				prev = v
			}
			d.MustAddArc(prev, center)
		}
		if d.NumVertices() > MaxExactVertices {
			return true
		}
		dist, ok := d.LongestPathsToSink(center)
		if !ok {
			return false
		}
		for v := 0; v < d.NumVertices(); v++ {
			want, _ := d.LongestPathLen(Vertex(v), center)
			if dist[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
