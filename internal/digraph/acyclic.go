package digraph

// TopoSort returns a topological order of the vertexes and true when the
// digraph is acyclic, or nil and false when it contains a cycle. Kahn's
// algorithm with deterministic (index-ordered) tie-breaking.
func (d *Digraph) TopoSort() ([]Vertex, bool) {
	n := d.NumVertices()
	indeg := make([]int, n)
	for _, a := range d.arcs {
		indeg[a.Tail]++
	}
	// A sorted worklist keeps the order deterministic.
	var ready []Vertex
	for v := n - 1; v >= 0; v-- {
		if indeg[v] == 0 {
			ready = append(ready, Vertex(v))
		}
	}
	order := make([]Vertex, 0, n)
	for len(ready) > 0 {
		// Pop the smallest-index ready vertex (list is kept descending).
		v := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, id := range d.out[v] {
			w := d.arcs[id].Tail
			indeg[w]--
			if indeg[w] == 0 {
				// Insert keeping the list sorted descending.
				i := len(ready)
				ready = append(ready, w)
				for i > 0 && ready[i-1] < w {
					ready[i] = ready[i-1]
					i--
				}
				ready[i] = w
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// IsAcyclic reports whether the digraph has no directed cycle.
func (d *Digraph) IsAcyclic() bool {
	_, ok := d.TopoSort()
	return ok
}

// FindCycle returns the vertexes of some directed cycle in visiting order
// (without repeating the first vertex), or nil if the digraph is acyclic.
func (d *Digraph) FindCycle() []Vertex {
	n := d.NumVertices()
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := make([]int, n)
	parent := make([]Vertex, n)

	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		type frame struct {
			v   Vertex
			arc int
		}
		frames := []frame{{v: Vertex(start)}}
		color[start] = gray
		parent[start] = -1
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.arc < len(d.out[v]) {
				w := d.arcs[d.out[v][f.arc]].Tail
				f.arc++
				switch color[w] {
				case white:
					color[w] = gray
					parent[w] = v
					frames = append(frames, frame{v: w})
				case gray:
					// Found a back arc v -> w: recover the cycle w..v.
					cycle := []Vertex{w}
					for x := v; x != w; x = parent[x] {
						cycle = append(cycle, x)
					}
					// Reverse into visiting order w, ..., v.
					for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return cycle
				}
				continue
			}
			color[v] = black
			frames = frames[:len(frames)-1]
		}
	}
	return nil
}
