package digraph

import (
	"testing"
)

func TestPathBasics(t *testing.T) {
	p := Path{2, 0, 1}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if p.First() != 2 || p.Last() != 1 {
		t.Errorf("First/Last = %d/%d, want 2/1", p.First(), p.Last())
	}
	if !p.Contains(0) || p.Contains(5) {
		t.Error("Contains misreported membership")
	}
	if (Path{}).Len() != 0 || (Path{3}).Len() != 0 {
		t.Error("degenerate paths have length 0")
	}
}

func TestPathPrepend(t *testing.T) {
	p := Path{1, 2}
	q := p.Prepend(0)
	if q.String() != "0>1>2" {
		t.Errorf("Prepend = %v, want 0>1>2", q)
	}
	if p.String() != "1>2" {
		t.Errorf("Prepend mutated receiver: %v", p)
	}
	// The returned path must not share backing storage in a way that lets
	// later appends corrupt the original.
	q2 := q.Prepend(3)
	if q.String() != "0>1>2" || q2.String() != "3>0>1>2" {
		t.Errorf("chained Prepend corrupted paths: %v, %v", q, q2)
	}
}

func TestPathClone(t *testing.T) {
	p := Path{0, 1}
	c := p.Clone()
	c[0] = 9
	if p[0] == 9 {
		t.Error("Clone shares storage")
	}
}

func TestIsPath(t *testing.T) {
	d := cycle3() // A->B->C->A
	tests := []struct {
		name string
		p    Path
		want bool
	}{
		{name: "single vertex", p: Path{0}, want: true},
		{name: "one arc", p: Path{0, 1}, want: true},
		{name: "two arcs", p: Path{0, 1, 2}, want: true},
		{name: "wraps full cycle", p: Path{0, 1, 2, 0}, want: false}, // repeats vertex
		{name: "no such arc", p: Path{0, 2}, want: false},
		{name: "empty", p: Path{}, want: false},
		{name: "out of range", p: Path{0, 7}, want: false},
		{name: "repeat vertex", p: Path{0, 1, 0}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := d.IsPath(tt.p); got != tt.want {
				t.Errorf("IsPath(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestIsPathUsesParallelArcs(t *testing.T) {
	d := New()
	a := d.AddVertex("A")
	b := d.AddVertex("B")
	d.MustAddArc(a, b)
	d.MustAddArc(a, b)
	if !d.IsPath(Path{a, b}) {
		t.Error("path across parallel arcs should be valid")
	}
}

func TestAllSimplePaths(t *testing.T) {
	// Complete digraph on 3 vertexes (the Figure 7 two-leader digraph).
	d := FromArcs(3,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{1, 2}, [2]int{2, 1},
		[2]int{0, 2}, [2]int{2, 0},
	)
	paths := d.AllSimplePaths(0, 2, 0)
	// 0>2 and 0>1>2.
	if len(paths) != 2 {
		t.Fatalf("paths 0->2 = %v, want 2", paths)
	}
	if paths[0].String() != "0>1>2" || paths[1].String() != "0>2" {
		t.Errorf("deterministic order violated: %v", paths)
	}

	self := d.AllSimplePaths(1, 1, 0)
	if len(self) != 1 || self[0].Len() != 0 {
		t.Errorf("self paths = %v, want the single degenerate path", self)
	}
}

func TestAllSimplePathsLimit(t *testing.T) {
	d := FromArcs(3,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{1, 2}, [2]int{2, 1},
		[2]int{0, 2}, [2]int{2, 0},
	)
	paths := d.AllSimplePaths(0, 2, 1)
	if len(paths) != 1 {
		t.Errorf("limit=1 returned %d paths", len(paths))
	}
}

func TestAllSimplePathsUnreachable(t *testing.T) {
	d := FromArcs(3, [2]int{0, 1})
	if paths := d.AllSimplePaths(1, 0, 0); len(paths) != 0 {
		t.Errorf("paths 1->0 = %v, want none", paths)
	}
	if paths := d.AllSimplePaths(0, 2, 0); len(paths) != 0 {
		t.Errorf("paths 0->2 = %v, want none", paths)
	}
}

func TestAllSimplePathsAreValid(t *testing.T) {
	d := FromArcs(5,
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4},
		[2]int{0, 2}, [2]int{1, 3}, [2]int{2, 4}, [2]int{4, 0},
	)
	for _, p := range d.AllSimplePaths(0, 4, 0) {
		if !d.IsPath(p) {
			t.Errorf("returned invalid path %v", p)
		}
		if p.First() != 0 || p.Last() != 4 {
			t.Errorf("path %v has wrong endpoints", p)
		}
	}
}
