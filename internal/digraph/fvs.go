package digraph

// Feedback vertex sets.
//
// The protocol's leaders L must form a feedback vertex set: deleting L
// leaves D acyclic (Theorem 4.12 shows this is necessary for any uniform
// hashed-timelock protocol). Finding a minimum FVS is NP-complete (Karp),
// so we provide an exact solver for the small digraphs real swaps use, and
// a greedy heuristic with minimalization for larger graphs. The paper
// mentions a 2-approximation for the undirected problem; no constant-factor
// approximation is known for directed FVS, so the heuristic carries no
// worst-case guarantee — tests quantify its quality against the exact
// solver instead (experiment E14).

// IsFeedbackVertexSet reports whether deleting the given vertexes leaves
// the digraph acyclic.
func (d *Digraph) IsFeedbackVertexSet(set []Vertex) bool {
	deleted := make(map[Vertex]bool, len(set))
	for _, v := range set {
		if !d.valid(v) {
			return false
		}
		deleted[v] = true
	}
	return d.WithoutVertices(deleted).IsAcyclic()
}

// cycleVertices returns the sorted vertexes that lie on at least one cycle:
// exactly the vertexes of non-trivial strongly connected components. Only
// these are candidates for a minimum FVS.
func (d *Digraph) cycleVertices() []Vertex {
	var out []Vertex
	for _, comp := range d.SCCs() {
		if len(comp) > 1 {
			out = append(out, comp...)
			continue
		}
		// A singleton component is on a cycle only via a self-loop, which
		// this package forbids, so it never qualifies.
	}
	sortVertices(out)
	return out
}

// ExactMinFVS returns a minimum feedback vertex set, computed by
// enumerating candidate subsets in order of size. Candidates are restricted
// to vertexes on cycles. The empty set is returned for acyclic digraphs.
// Cost is exponential in the candidate count; it is intended for the small
// digraphs of real swaps and for grading the heuristic.
func (d *Digraph) ExactMinFVS() []Vertex {
	if d.IsAcyclic() {
		return []Vertex{}
	}
	cands := d.cycleVertices()
	// Enumerate subsets of cands by increasing size.
	for k := 1; k <= len(cands); k++ {
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		for {
			set := make([]Vertex, k)
			for i, j := range idx {
				set[i] = cands[j]
			}
			if d.IsFeedbackVertexSet(set) {
				return set
			}
			// Advance the combination.
			i := k - 1
			for i >= 0 && idx[i] == len(cands)-k+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	// Unreachable: the full candidate set is always an FVS.
	return cands
}

// GreedyFVS returns a feedback vertex set found by repeatedly deleting the
// vertex with the largest in-degree × out-degree product among vertexes
// still on cycles, then minimalizing the result (dropping members that are
// not needed). The result is always a valid FVS but not necessarily
// minimum.
func (d *Digraph) GreedyFVS() []Vertex {
	var chosen []Vertex
	deleted := make(map[Vertex]bool)
	cur := d.Clone()
	for {
		sub := cur.WithoutVertices(deleted)
		if sub.IsAcyclic() {
			break
		}
		// Restrict attention to vertexes on cycles of the remaining graph.
		best := Vertex(-1)
		bestScore := -1
		for _, v := range sub.cycleVertices() {
			score := sub.InDegree(v) * sub.OutDegree(v)
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		deleted[best] = true
		chosen = append(chosen, best)
	}
	// Minimalize: drop any member whose removal keeps the set an FVS.
	// Iterate in reverse so early (high-value) picks are kept.
	for i := len(chosen) - 1; i >= 0; i-- {
		trial := make([]Vertex, 0, len(chosen)-1)
		trial = append(trial, chosen[:i]...)
		trial = append(trial, chosen[i+1:]...)
		if d.IsFeedbackVertexSet(trial) {
			chosen = trial
		}
	}
	sortVertices(chosen)
	return chosen
}

// MinFVS returns a small feedback vertex set: exact when the digraph has at
// most MaxExactVertices vertexes on cycles, greedy otherwise. The second
// result reports whether the set is provably minimum.
func (d *Digraph) MinFVS() ([]Vertex, bool) {
	if len(d.cycleVertices()) <= MaxExactVertices {
		return d.ExactMinFVS(), true
	}
	return d.GreedyFVS(), false
}
