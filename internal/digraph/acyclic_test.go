package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopoSortDAG(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3.
	d := FromArcs(4, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{2, 3})
	order, ok := d.TopoSort()
	if !ok {
		t.Fatal("diamond is acyclic")
	}
	pos := make(map[Vertex]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, a := range d.Arcs() {
		if pos[a.Head] >= pos[a.Tail] {
			t.Errorf("arc %v violates topological order %v", a, order)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	d := FromArcs(4, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{2, 3})
	first, _ := d.TopoSort()
	for i := 0; i < 5; i++ {
		again, _ := d.TopoSort()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("TopoSort not deterministic: %v vs %v", first, again)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	if _, ok := cycle3().TopoSort(); ok {
		t.Error("cycle should not topo-sort")
	}
	if cycle3().IsAcyclic() {
		t.Error("cycle3 is not acyclic")
	}
}

func TestIsAcyclicEmpty(t *testing.T) {
	if !New().IsAcyclic() {
		t.Error("empty digraph is acyclic")
	}
}

func TestFindCycle(t *testing.T) {
	tests := []struct {
		name string
		d    *Digraph
		want bool
	}{
		{name: "3-cycle", d: cycle3(), want: true},
		{name: "chain", d: FromArcs(3, [2]int{0, 1}, [2]int{1, 2}), want: false},
		{name: "2-cycle", d: FromArcs(2, [2]int{0, 1}, [2]int{1, 0}), want: true},
		{name: "dag with diamond", d: FromArcs(4, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{2, 3}), want: false},
		{name: "cycle behind a tail", d: FromArcs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 1}), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cyc := tt.d.FindCycle()
			if (cyc != nil) != tt.want {
				t.Fatalf("FindCycle = %v, want cycle: %v", cyc, tt.want)
			}
			if cyc == nil {
				return
			}
			// Verify it is a real cycle: consecutive arcs plus closing arc.
			for i := 0; i < len(cyc); i++ {
				next := cyc[(i+1)%len(cyc)]
				if !tt.d.HasArcBetween(cyc[i], next) {
					t.Errorf("returned cycle %v missing arc %d->%d", cyc, cyc[i], next)
				}
			}
		})
	}
}

// TestFindCycleAgreesWithTopoSort cross-checks the two cycle detectors.
func TestFindCycleAgreesWithTopoSort(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 9, 0.2)
		_, acyclic := d.TopoSort()
		cyc := d.FindCycle()
		return acyclic == (cyc == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
