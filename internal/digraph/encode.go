package digraph

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding of the digraph structure.
//
// Every swap contract stores a copy of the digraph (Figure 4, line 3),
// which is what drives the paper's O(|A|²) bound on total space across all
// blockchains (Theorem 4.10: |A| contracts × O(|A|) bits each). The mock
// chains charge contracts for their encoded size, so the experiment for
// Theorem 4.10 measures real bytes of this encoding. Display names are not
// part of the on-chain structure.

// ErrEncoding reports a malformed digraph encoding.
var ErrEncoding = errors.New("digraph: malformed encoding")

// Encode serializes the digraph structure (vertex count plus arc list) with
// varints. Arc IDs are implicit in the order of the arc list.
func (d *Digraph) Encode() []byte {
	buf := make([]byte, 0, 2+3*len(d.arcs))
	buf = binary.AppendUvarint(buf, uint64(d.NumVertices()))
	buf = binary.AppendUvarint(buf, uint64(d.NumArcs()))
	for _, a := range d.arcs {
		buf = binary.AppendUvarint(buf, uint64(a.Head))
		buf = binary.AppendUvarint(buf, uint64(a.Tail))
	}
	return buf
}

// EncodedSize returns len(Encode()) without allocating the full buffer
// (beyond a small accumulator).
func (d *Digraph) EncodedSize() int { return len(d.Encode()) }

// Decode reconstructs a digraph from Encode output. Vertex names are the
// defaults ("v0", "v1", ...).
func Decode(data []byte) (*Digraph, error) {
	nv, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: vertex count", ErrEncoding)
	}
	data = data[n:]
	na, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: arc count", ErrEncoding)
	}
	data = data[n:]
	d := New()
	for i := uint64(0); i < nv; i++ {
		d.AddVertex("")
	}
	for i := uint64(0); i < na; i++ {
		head, hn := binary.Uvarint(data)
		if hn <= 0 {
			return nil, fmt.Errorf("%w: arc %d head", ErrEncoding, i)
		}
		data = data[hn:]
		tail, tn := binary.Uvarint(data)
		if tn <= 0 {
			return nil, fmt.Errorf("%w: arc %d tail", ErrEncoding, i)
		}
		data = data[tn:]
		if _, err := d.AddArc(Vertex(head), Vertex(tail)); err != nil {
			return nil, fmt.Errorf("%w: arc %d: %v", ErrEncoding, i, err)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrEncoding, len(data))
	}
	return d, nil
}
