package digraph

// Longest-simple-path machinery.
//
// The paper's timeouts are expressed in terms of diam(D) — the length of
// the longest (simple) path between any two vertexes — and D(v, l), the
// longest path from a vertex to a leader. Longest simple path is NP-hard
// on general digraphs, so this file provides:
//
//   - an exact bitmask dynamic program for graphs with at most
//     MaxExactVertices vertexes (every graph in the paper, and every graph
//     a realistic swap would use — swaps are small multi-party deals);
//   - safe upper bounds for larger graphs. The protocol remains correct
//     with any consistently-used upper bound: deadlines stretch but every
//     safety and liveness argument still goes through.
//
// The single-leader special case (Section 4.6) needs D(v, leader) where the
// follower subdigraph is acyclic; LongestPathsToSink computes that exactly
// in polynomial time at any scale.

// MaxExactVertices is the largest vertex count for which the exact
// longest-path dynamic program is attempted. Beyond it the O(2^n·m)
// state space stops being laptop-friendly.
const MaxExactVertices = 15

// LongestPathsFrom returns, for every vertex v, the length (arc count) of
// the longest simple path from start to v, with -1 for unreachable
// vertexes and 0 for start itself. The second result reports whether the
// values are exact: when the graph has more than MaxExactVertices vertexes
// the function falls back to the safe upper bound n-1 for every reachable
// vertex.
func (d *Digraph) LongestPathsFrom(start Vertex) ([]int, bool) {
	n := d.NumVertices()
	best := make([]int, n)
	for i := range best {
		best[i] = -1
	}
	if !d.valid(start) {
		return best, true
	}
	if n > MaxExactVertices {
		for v := range best {
			if d.Reachable(start, Vertex(v)) {
				best[v] = n - 1
			}
		}
		best[start] = n - 1
		return best, false
	}
	// dp[mask] is the set of end vertexes reachable by a simple path from
	// start visiting exactly the vertexes in mask. Masks grow monotonically,
	// so iterating masks in increasing order is a valid evaluation order.
	size := 1 << n
	dp := make([]uint32, size)
	startBit := uint32(1) << uint(start)
	dp[startBit] = startBit
	best[start] = 0
	for mask := 1; mask < size; mask++ {
		ends := dp[mask]
		if ends == 0 {
			continue
		}
		pathLen := popcount(uint32(mask)) - 1
		for v := 0; v < n; v++ {
			if ends&(1<<uint(v)) == 0 {
				continue
			}
			if pathLen > best[v] {
				best[v] = pathLen
			}
			for _, id := range d.out[v] {
				w := d.arcs[id].Tail
				wBit := 1 << uint(w)
				if mask&wBit != 0 {
					continue
				}
				dp[mask|wBit] |= uint32(wBit)
			}
		}
	}
	return best, true
}

// LongestPathLen returns the length of the longest simple path from u to v
// (-1 when v is unreachable from u) and whether the value is exact.
func (d *Digraph) LongestPathLen(u, v Vertex) (int, bool) {
	best, exact := d.LongestPathsFrom(u)
	if !d.valid(v) {
		return -1, exact
	}
	return best[v], exact
}

// Diameter returns the length of the longest simple path between any two
// vertexes and whether the value is exact. For graphs larger than
// MaxExactVertices it returns the safe upper bound n-1.
func (d *Digraph) Diameter() (int, bool) {
	n := d.NumVertices()
	if n == 0 {
		return 0, true
	}
	if n > MaxExactVertices {
		return n - 1, false
	}
	// Start-free DP: dp[mask] = end vertexes of simple paths visiting
	// exactly mask, over every possible starting vertex.
	size := 1 << n
	dp := make([]uint32, size)
	for v := 0; v < n; v++ {
		dp[1<<uint(v)] = 1 << uint(v)
	}
	diam := 0
	for mask := 1; mask < size; mask++ {
		ends := dp[mask]
		if ends == 0 {
			continue
		}
		pathLen := popcount(uint32(mask)) - 1
		if pathLen > diam {
			diam = pathLen
		}
		for v := 0; v < n; v++ {
			if ends&(1<<uint(v)) == 0 {
				continue
			}
			for _, id := range d.out[v] {
				w := d.arcs[id].Tail
				wBit := 1 << uint(w)
				if mask&wBit != 0 {
					continue
				}
				dp[mask|wBit] |= uint32(wBit)
			}
		}
	}
	return diam, true
}

// DiameterBound returns an upper bound on diam(D): the exact diameter when
// the graph is small enough, n-1 otherwise. All parties to a swap must use
// the same bound; Spec pins it.
func (d *Digraph) DiameterBound() int {
	b, _ := d.Diameter()
	return b
}

// LongestPathsToSink computes, for every vertex v, the longest path length
// from v to sink under the assumption that removing sink's leaving arcs
// makes the digraph acyclic — exactly the single-leader situation of
// Section 4.6, where the subdigraph of followers is acyclic and every cycle
// passes through the leader. Paths may not revisit sink, so the computation
// runs on the digraph with sink's leaving arcs removed, which must be a
// DAG. It returns ok=false (and no values) if that graph still has a cycle,
// i.e. {sink} is not a feedback vertex set.
//
// The result is exact and polynomial at any graph size, unlike the general
// bitmask DP.
func (d *Digraph) LongestPathsToSink(sink Vertex) ([]int, bool) {
	if !d.valid(sink) {
		return nil, false
	}
	stripped := New()
	for _, n := range d.names {
		stripped.AddVertex(n)
	}
	for _, a := range d.arcs {
		if a.Head == sink {
			continue
		}
		stripped.MustAddArc(a.Head, a.Tail)
	}
	order, ok := stripped.TopoSort()
	if !ok {
		return nil, false
	}
	n := d.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[sink] = 0
	// Process in reverse topological order: all successors first.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		for _, id := range stripped.out[v] {
			w := stripped.arcs[id].Tail
			if dist[w] >= 0 && dist[w]+1 > dist[v] {
				dist[v] = dist[w] + 1
			}
		}
	}
	return dist, true
}

func popcount(x uint32) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}
