package digraph

import (
	"fmt"
	"strings"
)

// DOT renders the digraph in Graphviz DOT syntax. Vertexes in highlight
// (the leaders, usually) are drawn with a double circle.
func (d *Digraph) DOT(name string, highlight map[Vertex]bool) string {
	if name == "" {
		name = "swap"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for v, n := range d.names {
		shape := "circle"
		if highlight[Vertex(v)] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", n, shape)
	}
	for _, a := range d.arcs {
		fmt.Fprintf(&b, "  %q -> %q [label=\"a%d\"];\n", d.names[a.Head], d.names[a.Tail], a.ID)
	}
	b.WriteString("}\n")
	return b.String()
}
