package digraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 10, 0.3)
		got, err := Decode(d.Encode())
		if err != nil {
			return false
		}
		if !StructuralEqual(d, got) {
			return false
		}
		// Arc IDs (list order) must round-trip exactly, since contracts
		// reference arcs by ID.
		for _, a := range d.Arcs() {
			b := got.Arc(a.ID)
			if a.Head != b.Head || a.Tail != b.Tail {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSize(t *testing.T) {
	d := cycle3()
	if d.EncodedSize() != len(d.Encode()) {
		t.Error("EncodedSize must equal len(Encode())")
	}
	// Size grows linearly-ish with arcs: the O(|A|) per-contract storage
	// that drives Theorem 4.10.
	small := cycle3().EncodedSize()
	big := FromArcs(6,
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4}, [2]int{4, 5}, [2]int{5, 0},
	).EncodedSize()
	if big <= small {
		t.Errorf("encoding of larger digraph (%d) should exceed smaller (%d)", big, small)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "missing arc count", data: []byte{3}},
		{name: "truncated arcs", data: []byte{3, 2, 0}},
		{name: "self loop arc", data: []byte{2, 1, 0, 0}},
		{name: "vertex out of range", data: []byte{2, 1, 0, 7}},
		{name: "trailing bytes", data: append(cycle3().Encode(), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.data); !errors.Is(err, ErrEncoding) {
				t.Errorf("Decode(%v) err = %v, want ErrEncoding", tt.data, err)
			}
		})
	}
}

func TestDecodePreservesEmptyGraph(t *testing.T) {
	got, err := Decode(New().Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NumVertices() != 0 || got.NumArcs() != 0 {
		t.Errorf("empty graph round-trip = (%d, %d)", got.NumVertices(), got.NumArcs())
	}
}
