package digraph

// SCCs returns the strongly connected components of the digraph using an
// iterative Tarjan algorithm. Components are returned in reverse
// topological order of the condensation (a component appears before the
// components it can reach); vertexes within a component are sorted.
func (d *Digraph) SCCs() [][]Vertex {
	n := d.NumVertices()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []Vertex
		comps   [][]Vertex
		counter int
	)

	// Iterative DFS frames: vertex plus position in its out-arc list.
	type frame struct {
		v   Vertex
		arc int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: Vertex(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, Vertex(start))
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.arc < len(d.out[v]) {
				w := d.arcs[d.out[v][f.arc]].Tail
				f.arc++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// All successors explored: close the frame.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []Vertex
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortVertices(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// StronglyConnected reports whether every vertex is reachable from every
// other. Graphs with zero or one vertex are trivially strongly connected.
func (d *Digraph) StronglyConnected() bool {
	if d.NumVertices() <= 1 {
		return true
	}
	return len(d.SCCs()) == 1
}

// ReachableFrom returns the set of vertexes reachable from start (including
// start itself) via a breadth-first search.
func (d *Digraph) ReachableFrom(start Vertex) map[Vertex]bool {
	seen := map[Vertex]bool{start: true}
	queue := []Vertex{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range d.out[v] {
			w := d.arcs[id].Tail
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// Reachable reports whether there is a directed path from u to v.
// Every vertex is reachable from itself.
func (d *Digraph) Reachable(u, v Vertex) bool {
	return d.ReachableFrom(u)[v]
}

func sortVertices(vs []Vertex) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
