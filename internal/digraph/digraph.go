// Package digraph implements the directed-graph model underlying the swap
// protocol of Herlihy's "Atomic Cross-Chain Swaps" (PODC 2018), together
// with every graph algorithm the protocol and its analysis need: strong
// connectivity, acyclicity, feedback vertex sets, simple-path enumeration,
// and longest-path/diameter computation.
//
// A swap is a digraph D = (V, A): vertexes are parties, and an arc (u, v)
// is a proposed transfer of an asset from u (the head) to v (the tail) on a
// shared blockchain. Parallel arcs between the same pair of vertexes are
// allowed (the directed-multigraph extension from the paper's Section 5),
// so arcs carry identifiers and all per-arc state is keyed by arc ID.
package digraph

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Vertex identifies a party in the swap digraph. Vertexes are dense indexes
// starting at 0 in creation order.
type Vertex int

// Arc is a proposed asset transfer from Head to Tail.
type Arc struct {
	ID   int
	Head Vertex
	Tail Vertex
}

// Errors returned by graph construction.
var (
	ErrVertexRange = errors.New("digraph: vertex out of range")
	ErrSelfLoop    = errors.New("digraph: self-loops are not allowed")
)

// Digraph is a directed multigraph. The zero value is an empty graph ready
// to use; vertexes and arcs are added with AddVertex and AddArc.
type Digraph struct {
	names []string
	arcs  []Arc
	out   [][]int // out[v] lists IDs of arcs with Head == v
	in    [][]int // in[v] lists IDs of arcs with Tail == v
}

// New returns an empty digraph.
func New() *Digraph { return &Digraph{} }

// FromArcs builds a digraph with n anonymous vertexes and one arc per
// (head, tail) pair, in order. It panics on invalid input; it is intended
// for tests and generators where the input is known-good.
func FromArcs(n int, pairs ...[2]int) *Digraph {
	d := New()
	for i := 0; i < n; i++ {
		d.AddVertex("")
	}
	for _, p := range pairs {
		if _, err := d.AddArc(Vertex(p[0]), Vertex(p[1])); err != nil {
			panic(fmt.Sprintf("digraph.FromArcs(%v): %v", p, err))
		}
	}
	return d
}

// AddVertex adds a vertex with the given display name (a default name is
// chosen when empty) and returns its index.
func (d *Digraph) AddVertex(name string) Vertex {
	v := Vertex(len(d.names))
	if name == "" {
		name = "v" + strconv.Itoa(int(v))
	}
	d.names = append(d.names, name)
	d.out = append(d.out, nil)
	d.in = append(d.in, nil)
	return v
}

// AddArc adds an arc from head to tail and returns its ID. Parallel arcs
// are allowed; self-loops are not (a party does not transfer to itself).
func (d *Digraph) AddArc(head, tail Vertex) (int, error) {
	if !d.valid(head) || !d.valid(tail) {
		return 0, fmt.Errorf("%w: arc (%d, %d) with %d vertexes", ErrVertexRange, head, tail, len(d.names))
	}
	if head == tail {
		return 0, fmt.Errorf("%w: vertex %d", ErrSelfLoop, head)
	}
	id := len(d.arcs)
	d.arcs = append(d.arcs, Arc{ID: id, Head: head, Tail: tail})
	d.out[head] = append(d.out[head], id)
	d.in[tail] = append(d.in[tail], id)
	return id, nil
}

// MustAddArc is AddArc that panics on error, for tests and generators.
func (d *Digraph) MustAddArc(head, tail Vertex) int {
	id, err := d.AddArc(head, tail)
	if err != nil {
		panic(err)
	}
	return id
}

func (d *Digraph) valid(v Vertex) bool { return v >= 0 && int(v) < len(d.names) }

// NumVertices reports the number of vertexes.
func (d *Digraph) NumVertices() int { return len(d.names) }

// NumArcs reports the number of arcs.
func (d *Digraph) NumArcs() int { return len(d.arcs) }

// Arc returns the arc with the given ID. It panics if the ID is out of
// range, mirroring slice indexing.
func (d *Digraph) Arc(id int) Arc { return d.arcs[id] }

// Arcs returns a copy of all arcs in ID order.
func (d *Digraph) Arcs() []Arc {
	out := make([]Arc, len(d.arcs))
	copy(out, d.arcs)
	return out
}

// Out returns a copy of the IDs of arcs leaving v.
func (d *Digraph) Out(v Vertex) []int {
	out := make([]int, len(d.out[v]))
	copy(out, d.out[v])
	return out
}

// In returns a copy of the IDs of arcs entering v.
func (d *Digraph) In(v Vertex) []int {
	in := make([]int, len(d.in[v]))
	copy(in, d.in[v])
	return in
}

// OutDegree reports the number of arcs leaving v.
func (d *Digraph) OutDegree(v Vertex) int { return len(d.out[v]) }

// InDegree reports the number of arcs entering v.
func (d *Digraph) InDegree(v Vertex) int { return len(d.in[v]) }

// Name returns the display name of v.
func (d *Digraph) Name(v Vertex) string { return d.names[v] }

// VertexByName returns the first vertex with the given display name.
func (d *Digraph) VertexByName(name string) (Vertex, bool) {
	for i, n := range d.names {
		if n == name {
			return Vertex(i), true
		}
	}
	return 0, false
}

// Vertices returns all vertexes in index order.
func (d *Digraph) Vertices() []Vertex {
	out := make([]Vertex, len(d.names))
	for i := range out {
		out[i] = Vertex(i)
	}
	return out
}

// HasArcBetween reports whether at least one arc runs from head to tail.
func (d *Digraph) HasArcBetween(head, tail Vertex) bool {
	if !d.valid(head) || !d.valid(tail) {
		return false
	}
	for _, id := range d.out[head] {
		if d.arcs[id].Tail == tail {
			return true
		}
	}
	return false
}

// ArcsBetween returns the IDs of all arcs from head to tail, in ID order.
func (d *Digraph) ArcsBetween(head, tail Vertex) []int {
	var ids []int
	for _, id := range d.out[head] {
		if d.arcs[id].Tail == tail {
			ids = append(ids, id)
		}
	}
	return ids
}

// Transpose returns the digraph with every arc reversed. Arc IDs are
// preserved, so per-arc state carries over between D and its transpose —
// the protocol's Phase Two disseminates secrets along the transpose.
func (d *Digraph) Transpose() *Digraph {
	t := New()
	for _, n := range d.names {
		t.AddVertex(n)
	}
	t.arcs = make([]Arc, len(d.arcs))
	for _, a := range d.arcs {
		t.arcs[a.ID] = Arc{ID: a.ID, Head: a.Tail, Tail: a.Head}
		t.out[a.Tail] = append(t.out[a.Tail], a.ID)
		t.in[a.Head] = append(t.in[a.Head], a.ID)
	}
	return t
}

// Clone returns a deep copy of the digraph.
func (d *Digraph) Clone() *Digraph {
	c := &Digraph{
		names: append([]string(nil), d.names...),
		arcs:  append([]Arc(nil), d.arcs...),
		out:   make([][]int, len(d.out)),
		in:    make([][]int, len(d.in)),
	}
	for v := range d.out {
		c.out[v] = append([]int(nil), d.out[v]...)
		c.in[v] = append([]int(nil), d.in[v]...)
	}
	return c
}

// WithoutVertices returns the subdigraph induced by deleting the given
// vertexes: the vertex set is unchanged (indexes remain stable) but every
// arc incident to a deleted vertex is removed. Arc IDs are renumbered.
func (d *Digraph) WithoutVertices(deleted map[Vertex]bool) *Digraph {
	s := New()
	for _, n := range d.names {
		s.AddVertex(n)
	}
	for _, a := range d.arcs {
		if deleted[a.Head] || deleted[a.Tail] {
			continue
		}
		s.MustAddArc(a.Head, a.Tail)
	}
	return s
}

// StructuralEqual reports whether two digraphs have the same vertex count
// and the same multiset of (head, tail) arcs, ignoring names and arc IDs.
func StructuralEqual(a, b *Digraph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		return false
	}
	key := func(d *Digraph) []string {
		ks := make([]string, 0, d.NumArcs())
		for _, arc := range d.arcs {
			ks = append(ks, strconv.Itoa(int(arc.Head))+">"+strconv.Itoa(int(arc.Tail)))
		}
		sort.Strings(ks)
		return ks
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// String renders the digraph compactly, e.g. "D(3 vertexes: A->B B->C C->A)".
func (d *Digraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "D(%d vertexes:", len(d.names))
	for _, a := range d.arcs {
		fmt.Fprintf(&b, " %s->%s", d.names[a.Head], d.names[a.Tail])
	}
	b.WriteString(")")
	return b.String()
}
