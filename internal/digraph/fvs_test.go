package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsFeedbackVertexSet(t *testing.T) {
	d := cycle3()
	tests := []struct {
		name string
		set  []Vertex
		want bool
	}{
		{name: "single vertex breaks cycle", set: []Vertex{0}, want: true},
		{name: "empty set on cyclic graph", set: []Vertex{}, want: false},
		{name: "all vertexes", set: []Vertex{0, 1, 2}, want: true},
		{name: "out of range vertex", set: []Vertex{9}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := d.IsFeedbackVertexSet(tt.set); got != tt.want {
				t.Errorf("IsFeedbackVertexSet(%v) = %v, want %v", tt.set, got, tt.want)
			}
		})
	}
}

func TestIsFeedbackVertexSetAcyclic(t *testing.T) {
	d := FromArcs(3, [2]int{0, 1}, [2]int{1, 2})
	if !d.IsFeedbackVertexSet(nil) {
		t.Error("empty set is an FVS of an acyclic digraph")
	}
}

func TestExactMinFVS(t *testing.T) {
	tests := []struct {
		name string
		d    *Digraph
		size int
	}{
		{name: "acyclic", d: FromArcs(3, [2]int{0, 1}, [2]int{1, 2}), size: 0},
		{name: "3-cycle", d: cycle3(), size: 1},
		{name: "two disjoint cycles", d: FromArcs(4,
			[2]int{0, 1}, [2]int{1, 0}, [2]int{2, 3}, [2]int{3, 2}), size: 2},
		{name: "complete on 3", d: FromArcs(3,
			[2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}, [2]int{2, 1}, [2]int{0, 2}, [2]int{2, 0}), size: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fvs := tt.d.ExactMinFVS()
			if len(fvs) != tt.size {
				t.Fatalf("ExactMinFVS = %v, want size %d", fvs, tt.size)
			}
			if !tt.d.IsFeedbackVertexSet(fvs) {
				t.Errorf("ExactMinFVS returned non-FVS %v", fvs)
			}
		})
	}
}

func TestGreedyFVSValidAndMinimal(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 9, 0.3)
		fvs := d.GreedyFVS()
		if !d.IsFeedbackVertexSet(fvs) {
			return false
		}
		// Minimality: no member is redundant.
		for i := range fvs {
			trial := make([]Vertex, 0, len(fvs)-1)
			trial = append(trial, fvs[:i]...)
			trial = append(trial, fvs[i+1:]...)
			if d.IsFeedbackVertexSet(trial) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGreedyNeverSmallerThanExact(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 8, 0.3)
		return len(d.GreedyFVS()) >= len(d.ExactMinFVS())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinFVS(t *testing.T) {
	d := cycle3()
	fvs, exact := d.MinFVS()
	if !exact || len(fvs) != 1 {
		t.Errorf("MinFVS = (%v, %v), want exact size 1", fvs, exact)
	}

	// A graph whose cycle-vertex count exceeds the exact threshold routes
	// to the greedy path.
	n := MaxExactVertices + 4
	big := New()
	for i := 0; i < n; i++ {
		big.AddVertex("")
	}
	for i := 0; i < n; i++ {
		big.MustAddArc(Vertex(i), Vertex((i+1)%n))
	}
	fvs, exact = big.MinFVS()
	if exact {
		t.Error("large graph should use the heuristic")
	}
	if !big.IsFeedbackVertexSet(fvs) {
		t.Errorf("heuristic returned non-FVS %v", fvs)
	}
}

func TestFVSAlsoWorksOnTranspose(t *testing.T) {
	// The paper notes any FVS for D is an FVS for the transpose.
	f := func(seed int64) bool {
		d := randomDigraph(rand.New(rand.NewSource(seed)), 8, 0.3)
		fvs := d.GreedyFVS()
		return d.Transpose().IsFeedbackVertexSet(fvs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
