package metrics

import (
	"math"
	"testing"
)

// TestEconomicsAccumulate pins the fold rules: lock integrals and
// griefing cost sum, the bribery extremes are per-swap MAXIMA (the
// margin asks about the single most profitable deviation, not the
// campaign total), and only deviant-carrying swaps contribute their
// conforming lock to the griefing cost.
func TestEconomicsAccumulate(t *testing.T) {
	a := NewAggregate()
	// A clean swap: conforming capital locked, nobody deviant.
	a.AddEconomics(SwapEconomics{ConformingLock: 500})
	// A griefed swap: 300 conforming token-ticks wasted against 40 of
	// adversarial stake, the cohort netting 25 out of it.
	a.AddEconomics(SwapEconomics{
		ConformingLock: 300, DeviantLock: 40, Deviant: true, CoalitionGain: 25,
	})
	// A second griefed swap with a smaller gain: must not lower the max.
	a.AddEconomics(SwapEconomics{
		ConformingLock: 200, DeviantLock: 60, Deviant: true, CoalitionGain: 10,
	})

	e := a.Snapshot().Economics
	if e == nil {
		t.Fatal("economics report missing")
	}
	if e.ConformingLockTokenTicks != 1000 || e.DeviantLockTokenTicks != 100 {
		t.Fatalf("lock integrals: %+v", e)
	}
	if e.GriefingCostTokenTicks != 500 || e.GriefedSwaps != 2 {
		t.Fatalf("griefing (clean swap's lock must not count): %+v", e)
	}
	if math.Abs(e.GriefingFactor-5.0) > 1e-9 {
		t.Fatalf("griefing factor %v, want 500/100 = 5", e.GriefingFactor)
	}
	if e.BestCoalitionGain != 25 || e.WorstConformingLoss != 0 {
		t.Fatalf("bribery extremes are maxima, not sums: %+v", e)
	}
	if e.BriberySafetyMargin != 25 {
		t.Fatalf("bribery margin %d, want gain 25 - loss 0", e.BriberySafetyMargin)
	}
}

// TestEconomicsMergePreservesCounters is the sharded-clearing contract:
// folding shard aggregates must preserve the economic counters — sums
// for the integrals and griefing cost, maxima for the bribery extremes —
// so a sharded run reports the same economics a serial one would.
func TestEconomicsMergePreservesCounters(t *testing.T) {
	shard1 := NewAggregate()
	shard1.AddEconomics(SwapEconomics{
		ConformingLock: 100, DeviantLock: 10, Deviant: true, CoalitionGain: 7,
	})
	shard2 := NewAggregate()
	shard2.AddEconomics(SwapEconomics{ConformingLock: 50})
	shard2.AddEconomics(SwapEconomics{
		ConformingLock: 30, DeviantLock: 20, Deviant: true, CoalitionGain: 3, ConformingLoss: 2,
	})

	total := NewAggregate()
	total.Merge(shard1)
	total.Merge(shard2)
	e := total.Snapshot().Economics
	if e == nil {
		t.Fatal("merged economics missing")
	}
	if e.ConformingLockTokenTicks != 180 || e.DeviantLockTokenTicks != 30 {
		t.Fatalf("merged lock integrals: %+v", e)
	}
	if e.GriefingCostTokenTicks != 130 || e.GriefedSwaps != 2 {
		t.Fatalf("merged griefing: %+v", e)
	}
	if e.BestCoalitionGain != 7 || e.WorstConformingLoss != 2 {
		t.Fatalf("merged extremes must be cross-shard maxima: %+v", e)
	}
	if e.BriberySafetyMargin != 5 {
		t.Fatalf("merged bribery margin %d, want 7-2", e.BriberySafetyMargin)
	}
}

// TestEconomicsEmptyIsAbsent pins the compatibility contract: a run that
// never locked capital reports no economics block at all (nil, omitted
// from JSON), and the empty coalition — deviant-free swaps, however much
// they lock — griefs exactly nothing.
func TestEconomicsEmptyIsAbsent(t *testing.T) {
	if e := NewAggregate().Snapshot().Economics; e != nil {
		t.Fatalf("empty aggregate reported economics: %+v", e)
	}
	a := NewAggregate()
	a.AddEconomics(SwapEconomics{ConformingLock: 999})
	e := a.Snapshot().Economics
	if e == nil {
		t.Fatal("locked capital must surface a report")
	}
	if e.GriefingCostTokenTicks != 0 || e.GriefedSwaps != 0 || e.BriberySafetyMargin != 0 {
		t.Fatalf("empty coalition griefed: %+v", e)
	}
}
