package metrics

import (
	"strings"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddPublish(100)
	c.AddPublish(50)
	c.AddUnlock(32)
	c.AddClaim()
	c.AddRefund()
	c.AddFailed()

	if c.PublishCalls != 2 || c.PublishBytes != 150 {
		t.Errorf("publish = (%d, %d), want (2, 150)", c.PublishCalls, c.PublishBytes)
	}
	if c.UnlockCalls != 1 || c.UnlockBytes != 32 {
		t.Errorf("unlock = (%d, %d), want (1, 32)", c.UnlockCalls, c.UnlockBytes)
	}
	if c.ClaimCalls != 1 || c.RefundCalls != 1 || c.FailedCalls != 1 {
		t.Errorf("claim/refund/failed = %d/%d/%d, want 1/1/1", c.ClaimCalls, c.RefundCalls, c.FailedCalls)
	}
}

func TestCountersString(t *testing.T) {
	var c Counters
	c.AddPublish(10)
	s := c.String()
	for _, want := range []string{"publishes=1", "10B", "unlocks=0", "failed=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTimingDeltas(t *testing.T) {
	tm := Timing{Start: 100, Delta: 10, DeployDone: 120, AllDone: 140}
	if got := tm.DeployDelta(); got != "2Δ" {
		t.Errorf("DeployDelta = %q, want 2Δ", got)
	}
	if got := tm.TotalDelta(); got != "4Δ" {
		t.Errorf("TotalDelta = %q, want 4Δ", got)
	}
}

func TestZeroValueReady(t *testing.T) {
	var c Counters
	if c.String() == "" {
		t.Error("zero counters should render")
	}
}
