package metrics

import (
	"encoding/json"
	"fmt"
)

// SwapEconomics is one settled swap's economic outcome, computed by the
// engine from the run's escrow spans and final transfers:
//
//   - Lock integrals: for each arc whose contract published, the escrowed
//     amount × the ticks it stayed locked (publish → resolve, or the
//     run's horizon when stranded), attributed to the arc's escrowing
//     party and split by whether that party was conforming or an
//     injected deviant. This is the 4-Swap paper's griefing measure —
//     capital × time — in token-ticks.
//   - Net transfers: value each side actually gained or lost once the
//     swap settled, for the bribery-safety extremes. Theorem 4.9 says a
//     conforming party never ends Underwater, so ConformingLoss should
//     stay 0 on every run; CoalitionGain is the most any deviant cohort
//     walked away with in a single swap.
//
// All quantities are tick-domain and therefore identical across replays
// of a deterministic run.
type SwapEconomics struct {
	// ConformingLock and DeviantLock are the swap's capital-lock
	// integrals (token-ticks) split by the escrowing party's side.
	ConformingLock uint64
	DeviantLock    uint64
	// Deviant marks a swap that carried at least one injected deviating
	// party — the conforming lock inside such swaps is the swap's
	// griefing cost (capital the coalition forced conforming parties to
	// commit and wait out).
	Deviant bool
	// ConformingLoss is the summed value conforming parties netted OUT of
	// the swap (0 when Theorem 4.9 holds); CoalitionGain is the summed
	// value deviating parties netted IN.
	ConformingLoss uint64
	CoalitionGain  uint64
}

// EconomicsTotals accumulates SwapEconomics across a run. Plain data so
// the sharded engine's Merge can fold shard totals without extra locks
// (the owning Aggregate's mutex guards it).
type EconomicsTotals struct {
	ConformingLock uint64
	DeviantLock    uint64
	// GriefingCost = Σ ConformingLock over deviant-carrying swaps. The
	// empty coalition griefs nothing: with no deviants anywhere this is
	// exactly 0 no matter how much conforming capital locked.
	GriefingCost uint64
	GriefedSwaps int
	// WorstConformingLoss and BestCoalitionGain are per-swap maxima, not
	// sums: the bribery margin asks about the single most profitable
	// deviation available, not the campaign total.
	WorstConformingLoss uint64
	BestCoalitionGain   uint64
}

func (t *EconomicsTotals) add(se SwapEconomics) {
	t.ConformingLock += se.ConformingLock
	t.DeviantLock += se.DeviantLock
	if se.Deviant {
		t.GriefingCost += se.ConformingLock
		t.GriefedSwaps++
	}
	if se.ConformingLoss > t.WorstConformingLoss {
		t.WorstConformingLoss = se.ConformingLoss
	}
	if se.CoalitionGain > t.BestCoalitionGain {
		t.BestCoalitionGain = se.CoalitionGain
	}
}

func (t *EconomicsTotals) fold(other *EconomicsTotals) {
	t.ConformingLock += other.ConformingLock
	t.DeviantLock += other.DeviantLock
	t.GriefingCost += other.GriefingCost
	t.GriefedSwaps += other.GriefedSwaps
	if other.WorstConformingLoss > t.WorstConformingLoss {
		t.WorstConformingLoss = other.WorstConformingLoss
	}
	if other.BestCoalitionGain > t.BestCoalitionGain {
		t.BestCoalitionGain = other.BestCoalitionGain
	}
}

func (t *EconomicsTotals) empty() bool {
	return t.ConformingLock == 0 && t.DeviantLock == 0 && t.GriefingCost == 0 &&
		t.GriefedSwaps == 0 && t.WorstConformingLoss == 0 && t.BestCoalitionGain == 0
}

// AddEconomics folds one settled swap's economic outcome into the
// aggregate.
func (a *Aggregate) AddEconomics(se SwapEconomics) {
	a.mu.Lock()
	a.econ.add(se)
	a.mu.Unlock()
}

// EconomicsReport is the run-level economic summary: capital-lock
// integrals, griefing cost, and the bribery-safety margin.
type EconomicsReport struct {
	// ConformingLockTokenTicks / DeviantLockTokenTicks are the run's
	// capital-lock integrals split by side.
	ConformingLockTokenTicks uint64 `json:"conforming_lock_token_ticks"`
	DeviantLockTokenTicks    uint64 `json:"deviant_lock_token_ticks,omitempty"`
	// GriefingCostTokenTicks is the conforming capital-lock integral
	// inside deviant-carrying swaps — what the adversary cost honest
	// parties — over GriefedSwaps swaps.
	GriefingCostTokenTicks uint64 `json:"griefing_cost_token_ticks,omitempty"`
	GriefedSwaps           int    `json:"griefed_swaps,omitempty"`
	// GriefingFactor normalizes griefing cost by the deviants' own
	// locked capital: how many token-ticks of conforming lockup one
	// token-tick of adversarial stake buys (the 4-Swap paper's ratio).
	GriefingFactor float64 `json:"griefing_factor,omitempty"`
	// WorstConformingLoss is the largest per-swap net loss any
	// conforming cohort suffered (Theorem 4.9 predicts 0);
	// BestCoalitionGain is the largest per-swap net value any deviating
	// cohort extracted. BriberySafetyMargin = gain − loss: the most an
	// adversary could rationally offer as bribes while conforming
	// parties still lose nothing by staying honest.
	WorstConformingLoss uint64 `json:"worst_conforming_loss,omitempty"`
	BestCoalitionGain   uint64 `json:"best_coalition_gain,omitempty"`
	BriberySafetyMargin int64  `json:"bribery_safety_margin,omitempty"`
}

// report builds the snapshot view, or nil when nothing economic happened
// (keeps pre-economics reports byte-stable for callers that never lock
// capital, e.g. pure micro-bench paths).
func (t *EconomicsTotals) report() *EconomicsReport {
	if t.empty() {
		return nil
	}
	r := &EconomicsReport{
		ConformingLockTokenTicks: t.ConformingLock,
		DeviantLockTokenTicks:    t.DeviantLock,
		GriefingCostTokenTicks:   t.GriefingCost,
		GriefedSwaps:             t.GriefedSwaps,
		WorstConformingLoss:      t.WorstConformingLoss,
		BestCoalitionGain:        t.BestCoalitionGain,
		BriberySafetyMargin:      int64(t.BestCoalitionGain) - int64(t.WorstConformingLoss),
	}
	if t.DeviantLock > 0 {
		r.GriefingFactor = float64(t.GriefingCost) / float64(t.DeviantLock)
	}
	return r
}

// JSON renders the report as one JSON object.
func (r *EconomicsReport) JSON() string {
	b, _ := json.Marshal(r)
	return string(b)
}

func (r *EconomicsReport) String() string {
	return fmt.Sprintf("econ:   %d token-ticks conforming lock, %d deviant; griefing %d over %d swaps (factor %.2f), bribery margin %d",
		r.ConformingLockTokenTicks, r.DeviantLockTokenTicks,
		r.GriefingCostTokenTicks, r.GriefedSwaps, r.GriefingFactor,
		r.BriberySafetyMargin)
}
