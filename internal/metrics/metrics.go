// Package metrics collects the quantities the paper's complexity claims
// are stated in: bytes stored across all blockchains (Theorem 4.10's
// O(|A|²) bound), bytes moved by unlock calls (the O(|A|·|L|)
// communication claim), call counts, and protocol duration in Δ units.
package metrics

import (
	"fmt"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Counters accumulates protocol-level measurements during a run. The zero
// value is ready to use.
type Counters struct {
	PublishCalls int
	PublishBytes int
	UnlockCalls  int
	UnlockBytes  int
	ClaimCalls   int
	RefundCalls  int
	FailedCalls  int
}

// AddPublish records a successful contract publication of the given size.
func (c *Counters) AddPublish(bytes int) {
	c.PublishCalls++
	c.PublishBytes += bytes
}

// AddUnlock records a successful unlock (or redeem) call of the given size.
func (c *Counters) AddUnlock(bytes int) {
	c.UnlockCalls++
	c.UnlockBytes += bytes
}

// AddClaim records a successful claim.
func (c *Counters) AddClaim() { c.ClaimCalls++ }

// AddRefund records a successful refund.
func (c *Counters) AddRefund() { c.RefundCalls++ }

// AddFailed records a rejected call (reverted, nothing stored).
func (c *Counters) AddFailed() { c.FailedCalls++ }

// Timing describes when a run's phases completed, in ticks and Δ units.
type Timing struct {
	Start      vtime.Ticks
	Delta      vtime.Duration
	DeployDone vtime.Ticks // last contract publication
	AllDone    vtime.Ticks // last claim/refund settlement
}

// DeployDelta returns the deployment duration as a Δ string.
func (t Timing) DeployDelta() string {
	return vtime.InDelta(t.DeployDone.Sub(t.Start), t.Delta)
}

// TotalDelta returns the full-run duration as a Δ string.
func (t Timing) TotalDelta() string {
	return vtime.InDelta(t.AllDone.Sub(t.Start), t.Delta)
}

// String summarizes the counters.
func (c *Counters) String() string {
	return fmt.Sprintf("publishes=%d (%dB) unlocks=%d (%dB) claims=%d refunds=%d failed=%d",
		c.PublishCalls, c.PublishBytes, c.UnlockCalls, c.UnlockBytes,
		c.ClaimCalls, c.RefundCalls, c.FailedCalls)
}
