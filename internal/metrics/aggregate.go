package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Aggregate accumulates service-level measurements across many concurrent
// swaps — the clearing engine's counterpart to the per-run Counters. All
// methods are safe for concurrent use.
type Aggregate struct {
	mu        sync.Mutex
	startedAt time.Time

	offersSubmitted int
	offersCleared   int
	offersRejected  int

	swapsStarted  int
	swapsFinished int
	swapsFailed   int

	inflight     int
	peakInflight int

	outcomes map[string]int

	latencyCount int
	latencySum   time.Duration
	latencyMax   time.Duration

	reservationConflicts int
}

// NewAggregate starts an aggregate; elapsed time (and therefore the /sec
// rates) count from this moment.
func NewAggregate() *Aggregate {
	return &Aggregate{startedAt: time.Now(), outcomes: make(map[string]int)}
}

// AddSubmitted records offers entering the intake queue.
func (a *Aggregate) AddSubmitted(n int) {
	a.mu.Lock()
	a.offersSubmitted += n
	a.mu.Unlock()
}

// AddCleared records offers matched into a swap.
func (a *Aggregate) AddCleared(n int) {
	a.mu.Lock()
	a.offersCleared += n
	a.mu.Unlock()
}

// AddRejected records offers the engine refused (invalid, spent asset,
// unmatched at drain).
func (a *Aggregate) AddRejected(n int) {
	a.mu.Lock()
	a.offersRejected += n
	a.mu.Unlock()
}

// AddReservationConflict records a clearing round deferred because another
// in-flight swap held an asset — the contention the reservation layer
// turns into waiting instead of double-spending.
func (a *Aggregate) AddReservationConflict() {
	a.mu.Lock()
	a.reservationConflicts++
	a.mu.Unlock()
}

// SwapStarted records one swap entering execution and returns the current
// in-flight count.
func (a *Aggregate) SwapStarted() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.swapsStarted++
	a.inflight++
	if a.inflight > a.peakInflight {
		a.peakInflight = a.inflight
	}
	return a.inflight
}

// SwapFinished records one swap leaving execution. failed marks runs that
// errored outright (not protocol aborts, which are counted per outcome).
func (a *Aggregate) SwapFinished(failed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	a.swapsFinished++
	if failed {
		a.swapsFailed++
	}
}

// AddOutcome tallies one order's terminal payoff class and its
// submit-to-settle latency.
func (a *Aggregate) AddOutcome(class string, latency time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.outcomes[class]++
	a.latencyCount++
	a.latencySum += latency
	if latency > a.latencyMax {
		a.latencyMax = latency
	}
}

// Throughput is a point-in-time summary of an Aggregate, JSON-ready for
// the benchmark trajectory.
type Throughput struct {
	ElapsedSec      float64        `json:"elapsed_sec"`
	OffersSubmitted int            `json:"offers_submitted"`
	OffersCleared   int            `json:"offers_cleared"`
	OffersRejected  int            `json:"offers_rejected"`
	SwapsStarted    int            `json:"swaps_started"`
	SwapsFinished   int            `json:"swaps_finished"`
	SwapsFailed     int            `json:"swaps_failed"`
	InFlight        int            `json:"in_flight"`
	PeakConcurrent  int            `json:"peak_concurrent"`
	OffersPerSec    float64        `json:"offers_per_sec"`
	SwapsPerSec     float64        `json:"swaps_per_sec"`
	AvgLatencyMs    float64        `json:"avg_latency_ms"`
	MaxLatencyMs    float64        `json:"max_latency_ms"`
	Outcomes        map[string]int `json:"outcomes"`
	ResvConflicts   int            `json:"reservation_conflicts"`
}

// Snapshot captures the aggregate now.
func (a *Aggregate) Snapshot() Throughput {
	a.mu.Lock()
	defer a.mu.Unlock()
	elapsed := time.Since(a.startedAt).Seconds()
	t := Throughput{
		ElapsedSec:      elapsed,
		OffersSubmitted: a.offersSubmitted,
		OffersCleared:   a.offersCleared,
		OffersRejected:  a.offersRejected,
		SwapsStarted:    a.swapsStarted,
		SwapsFinished:   a.swapsFinished,
		SwapsFailed:     a.swapsFailed,
		InFlight:        a.inflight,
		PeakConcurrent:  a.peakInflight,
		Outcomes:        make(map[string]int, len(a.outcomes)),
		ResvConflicts:   a.reservationConflicts,
	}
	for k, v := range a.outcomes {
		t.Outcomes[k] = v
	}
	if elapsed > 0 {
		t.OffersPerSec = float64(a.offersCleared) / elapsed
		t.SwapsPerSec = float64(a.swapsFinished) / elapsed
	}
	if a.latencyCount > 0 {
		t.AvgLatencyMs = float64(a.latencySum.Milliseconds()) / float64(a.latencyCount)
		t.MaxLatencyMs = float64(a.latencyMax.Milliseconds())
	}
	return t
}

// JSON renders the snapshot as one JSON object.
func (t Throughput) JSON() string {
	b, _ := json.Marshal(t)
	return string(b)
}

// String renders a human-readable multi-line summary.
func (t Throughput) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offers: %d submitted, %d cleared, %d rejected\n",
		t.OffersSubmitted, t.OffersCleared, t.OffersRejected)
	fmt.Fprintf(&b, "swaps:  %d finished (%d failed), peak %d concurrent\n",
		t.SwapsFinished, t.SwapsFailed, t.PeakConcurrent)
	fmt.Fprintf(&b, "rate:   %.1f offers/sec, %.1f swaps/sec over %.2fs\n",
		t.OffersPerSec, t.SwapsPerSec, t.ElapsedSec)
	fmt.Fprintf(&b, "latency: avg %.1fms, max %.1fms\n", t.AvgLatencyMs, t.MaxLatencyMs)
	keys := make([]string, 0, len(t.Outcomes))
	for k := range t.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, t.Outcomes[k])
	}
	fmt.Fprintf(&b, "outcomes: %s (reservation conflicts: %d)",
		strings.Join(parts, " "), t.ResvConflicts)
	return b.String()
}
